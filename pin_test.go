package rpcvalet_test

// Pinned-result regression tests: the exact numbers below were produced by
// the simulators *before* the arrival-process refactor (PR 2). With Arrival
// unset, Run, RunCluster, and RunQueueModel must keep reproducing them
// byte-for-byte — the nil-means-Poisson compatibility rule. If a change
// legitimately alters the simulation (new RNG consumer, protocol change),
// regenerate the pins and say so in the commit; if these fail unexpectedly,
// determinism or compatibility broke.

import (
	"fmt"
	"testing"

	"rpcvalet"
)

// pin compares a measured float against its pre-refactor value exactly.
func pin(t *testing.T, name string, got float64, want string) {
	t.Helper()
	if s := fmt.Sprintf("%.17g", got); s != want {
		t.Errorf("%s = %s, pinned %s", name, s, want)
	}
}

func TestPinnedMachineResult(t *testing.T) {
	res, err := rpcvalet.Run(rpcvalet.Config{
		Params:   rpcvalet.DefaultParams(),
		Workload: rpcvalet.HERD(),
		RateMRPS: 12,
		Warmup:   200,
		Measure:  3000,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	pin(t, "p50", res.Latency.P50, "533.80200000000002")
	pin(t, "p99", res.Latency.P99, "935.976")
	pin(t, "mean", res.Latency.Mean, "558.4071656666672")
	pin(t, "throughput", res.ThroughputMRPS, "11.650664652936626")
	if res.Latency.Count != 3000 {
		t.Errorf("count = %d, pinned 3000", res.Latency.Count)
	}
}

// TestPinnedModesThroughPlans pins all four legacy modes — values produced
// by the pre-plan-refactor simulator — and requires the new dispatch-plan
// layer to reproduce them byte-for-byte through BOTH configuration paths:
// the legacy Mode enum and the canned plan PlanForMode returns. If a change
// legitimately alters a mode's stream, regenerate these pins and say so in
// the commit.
func TestPinnedModesThroughPlans(t *testing.T) {
	pins := map[rpcvalet.Mode]struct{ p50, p99, mean, thr string }{
		rpcvalet.ModeSingleQueue: {"533.67999999999995", "931.61099999999999", "558.33773333333386", "3.8826925102546874"},
		rpcvalet.ModeGrouped:     {"529.351", "927.53300000000002", "554.17760633333376", "3.8827226711447866"},
		rpcvalet.ModePartitioned: {"546.61000000000001", "1204.229", "596.86514033333344", "3.884789642047684"},
		rpcvalet.ModeSoftware:    {"762.16499999999996", "1898.097", "860.30818100000124", "3.8833932536552886"},
	}
	for mode, want := range pins {
		run := func(path string, mutate func(*rpcvalet.Params)) {
			p := rpcvalet.DefaultParams()
			mutate(&p)
			res, err := rpcvalet.Run(rpcvalet.Config{
				Params:   p,
				Workload: rpcvalet.HERD(),
				RateMRPS: 4,
				Warmup:   200,
				Measure:  3000,
				Seed:     1,
			})
			if err != nil {
				t.Fatalf("%v via %s: %v", mode, path, err)
			}
			name := fmt.Sprintf("%v via %s", mode, path)
			pin(t, name+" p50", res.Latency.P50, want.p50)
			pin(t, name+" p99", res.Latency.P99, want.p99)
			pin(t, name+" mean", res.Latency.Mean, want.mean)
			pin(t, name+" throughput", res.ThroughputMRPS, want.thr)
		}
		run("mode", func(p *rpcvalet.Params) { p.Mode = mode })
		run("plan", func(p *rpcvalet.Params) {
			pl, err := rpcvalet.PlanForMode(mode)
			if err != nil {
				t.Fatal(err)
			}
			p.Plan = pl
		})
	}
}

func TestPinnedClusterResult(t *testing.T) {
	pol, err := rpcvalet.ClusterPolicyByName("jsq2")
	if err != nil {
		t.Fatal(err)
	}
	wl, err := rpcvalet.Synthetic("exp")
	if err != nil {
		t.Fatal(err)
	}
	cfg := rpcvalet.DefaultCluster(2, wl, pol)
	cfg.Warmup = 200
	cfg.Measure = 3000
	cfg.Seed = 1
	res, err := rpcvalet.RunCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pin(t, "rate", res.RateMRPS, "28")
	pin(t, "p50", res.Latency.P50, "1246.367")
	pin(t, "p99", res.Latency.P99, "2532.9679999999998")
	pin(t, "mean", res.Latency.Mean, "1345.7348943333366")
	pin(t, "throughput", res.ThroughputMRPS, "27.184915274526762")
	pin(t, "imbalance", res.Imbalance, "1.0018750000000001")

	// Shards: 1 must take the historical single-clock path and keep
	// reproducing the same pre-shard pins byte-for-byte — the sharded
	// engine's compatibility contract.
	cfg.Policy, err = rpcvalet.ClusterPolicyByName("jsq2")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Shards = 1
	res, err = rpcvalet.RunCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pin(t, "shards=1 p50", res.Latency.P50, "1246.367")
	pin(t, "shards=1 p99", res.Latency.P99, "2532.9679999999998")
	pin(t, "shards=1 mean", res.Latency.Mean, "1345.7348943333366")
	pin(t, "shards=1 throughput", res.ThroughputMRPS, "27.184915274526762")
	pin(t, "shards=1 imbalance", res.Imbalance, "1.0018750000000001")
}

// TestPinnedHierClusterResult: the degenerate two-tier topology — one rack
// holding every node, zero-latency global hop — must reproduce the flat
// cluster pins byte-for-byte, with and without an explicit global policy.
// This is the hierarchical refactor's flat-equivalence contract: stacking
// the dispatch tier adds no observable events when the topology collapses.
func TestPinnedHierClusterResult(t *testing.T) {
	base := func() rpcvalet.Cluster {
		pol, err := rpcvalet.ClusterPolicyByName("jsq2")
		if err != nil {
			t.Fatal(err)
		}
		wl, err := rpcvalet.Synthetic("exp")
		if err != nil {
			t.Fatal(err)
		}
		cfg := rpcvalet.DefaultCluster(2, wl, pol)
		cfg.Warmup = 200
		cfg.Measure = 3000
		cfg.Seed = 1
		cfg.Racks = 1
		cfg.GlobalHop = 0
		return cfg
	}

	check := func(label string, cfg rpcvalet.Cluster) {
		res, err := rpcvalet.RunCluster(cfg)
		if err != nil {
			t.Fatal(err)
		}
		pin(t, label+" p50", res.Latency.P50, "1246.367")
		pin(t, label+" p99", res.Latency.P99, "2532.9679999999998")
		pin(t, label+" mean", res.Latency.Mean, "1345.7348943333366")
		pin(t, label+" throughput", res.ThroughputMRPS, "27.184915274526762")
		pin(t, label+" imbalance", res.Imbalance, "1.0018750000000001")
	}

	check("racks=1", base())

	cfg := base()
	gpol, err := rpcvalet.ClusterPolicyByName("random")
	if err != nil {
		t.Fatal(err)
	}
	cfg.GlobalPolicy = gpol
	check("racks=1 global=random", cfg)
}

func TestPinnedQueueModelResult(t *testing.T) {
	wl, err := rpcvalet.Synthetic("exp")
	if err != nil {
		t.Fatal(err)
	}
	res, err := rpcvalet.RunQueueModel(rpcvalet.QueueModel{
		Queues: 16, ServersPerQueue: 1,
		Service: wl.Classes[0].Service,
		Load:    0.8, Warmup: 500, Measure: 5000, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	pin(t, "p50", res.Latency.P50, "1665.4970000000001")
	pin(t, "p99", res.Latency.P99, "10776.795")
	pin(t, "mean", res.Latency.Mean, "2425.5924571999976")
	pin(t, "wait mean", res.Wait.Mean, "1821.5947565999995")
	pin(t, "throughput", res.Throughput, "0.021813549914815232")
}

// TestExplicitPoissonMatchesNil: spelling the default out as
// ArrivalPoisson(rate) must reproduce the nil-Arrival stream exactly.
func TestExplicitPoissonMatchesNil(t *testing.T) {
	cfg := rpcvalet.Config{
		Params:   rpcvalet.DefaultParams(),
		Workload: rpcvalet.HERD(),
		RateMRPS: 12,
		Warmup:   200,
		Measure:  2000,
		Seed:     5,
	}
	implicit, err := rpcvalet.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Arrival = rpcvalet.ArrivalPoisson(12)
	explicit, err := rpcvalet.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if implicit.Latency != explicit.Latency || implicit.ThroughputMRPS != explicit.ThroughputMRPS {
		t.Fatal("explicit poisson differs from nil default")
	}
}

// TestArrivalAPI exercises the root-level arrival constructors end to end.
func TestArrivalAPI(t *testing.T) {
	kinds := rpcvalet.ArrivalKinds()
	if len(kinds) != 4 {
		t.Fatalf("kinds = %v", kinds)
	}
	for _, kind := range kinds {
		arr, err := rpcvalet.ArrivalByName(kind, 10)
		if err != nil {
			t.Fatal(err)
		}
		res, err := rpcvalet.Run(rpcvalet.Config{
			Params:   rpcvalet.DefaultParams(),
			Workload: rpcvalet.HERD(),
			RateMRPS: 10,
			Arrival:  arr,
			Warmup:   100,
			Measure:  2000,
			Seed:     2,
		})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if res.Latency.Count == 0 {
			t.Fatalf("%s: no measurements", kind)
		}
	}
	if _, err := rpcvalet.ArrivalByName("bogus", 10); err == nil {
		t.Fatal("unknown arrival kind accepted")
	}
}
