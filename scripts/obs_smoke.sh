#!/bin/sh
# obs_smoke.sh — end-to-end check of the live observability endpoints.
#
# Starts rpcvalet-live with -obs, scrapes /metrics and /healthz WHILE the
# serving window is still in flight, and asserts:
#   1. /healthz answers "ok";
#   2. /metrics is Prometheus text format (# TYPE lines, counter samples);
#   3. the completed-requests counter is nonzero mid-run (the instruments
#      update live, not at the end of the window).
#
# Sleep emulation keeps the check honest on oversubscribed CI runners: the
# queueing is wall-clock real but service consumes no CPU.
set -eu

ADDR="${OBS_ADDR:-127.0.0.1:19090}"
BIN="$(mktemp -d)/rpcvalet-live"
LOG="$(mktemp)"

cleanup() {
    [ -n "${PID:-}" ] && kill "$PID" 2>/dev/null || true
    [ -n "${PID:-}" ] && wait "$PID" 2>/dev/null || true
    rm -rf "$(dirname "$BIN")" "$LOG"
}
trap cleanup EXIT INT TERM

go build -o "$BIN" ./cmd/rpcvalet-live

"$BIN" -plan 1x16 -emulation sleep -workers 4 -duration 6s -obs "$ADDR" >"$LOG" 2>&1 &
PID=$!

# Wait for the server to come up (it binds before the first run starts).
i=0
until curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "obs-smoke: server never came up on $ADDR" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.1
done

# Give the in-flight run time to complete some requests, then scrape.
sleep 2

HEALTH="$(curl -sf "http://$ADDR/healthz")"
[ "$HEALTH" = "ok" ] || { echo "obs-smoke: /healthz said '$HEALTH', want 'ok'" >&2; exit 1; }

METRICS="$(curl -sf "http://$ADDR/metrics")"
echo "$METRICS" | grep -q '^# TYPE rpcvalet_requests_completed_total counter$' || {
    echo "obs-smoke: /metrics missing counter TYPE line" >&2
    echo "$METRICS" >&2
    exit 1
}
echo "$METRICS" | grep -q '^# TYPE rpcvalet_request_latency_seconds histogram$' || {
    echo "obs-smoke: /metrics missing latency histogram" >&2
    exit 1
}

COMPLETED="$(echo "$METRICS" | sed -n 's/^rpcvalet_requests_completed_total[^ ]* //p' | head -1)"
case "$COMPLETED" in
'' | 0)
    echo "obs-smoke: completed counter is '${COMPLETED:-absent}' mid-run, want > 0" >&2
    echo "$METRICS" | grep '^rpcvalet' >&2
    exit 1
    ;;
esac

curl -sf "http://$ADDR/debug/pprof/" >/dev/null || {
    echo "obs-smoke: /debug/pprof/ not serving" >&2
    exit 1
}

kill "$PID" 2>/dev/null || true
wait "$PID" 2>/dev/null || true
PID=""

echo "obs-smoke: ok (completed=$COMPLETED mid-run on $ADDR)"
