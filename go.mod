module rpcvalet

go 1.24
