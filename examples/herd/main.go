// HERD scenario: reproduce the shape of the paper's Fig 7a — a key-value
// store with ~330ns RPCs served under the three hardware load-balancing
// configurations, sweeping offered load and reporting throughput under a
// 10×S̄ tail SLO.
//
//	go run ./examples/herd
package main

import (
	"fmt"
	"log"

	"rpcvalet"
)

func main() {
	wl := rpcvalet.HERD()
	capacity := rpcvalet.CapacityMRPS(rpcvalet.DefaultParams(), wl)
	rates := rpcvalet.RateGrid(capacity, 0.15, 0.95, 8)

	modes := []struct {
		name string
		mode rpcvalet.Mode
	}{
		{"16x1 (RSS baseline)", rpcvalet.ModePartitioned},
		{"4x4  (grouped)", rpcvalet.ModeGrouped},
		{"1x16 (RPCValet)", rpcvalet.ModeSingleQueue},
	}

	fmt.Printf("HERD workload: mean handler 330ns, capacity ≈ %.1f MRPS\n\n", capacity)
	fmt.Printf("%-22s", "p99 (ns) at MRPS:")
	for _, r := range rates {
		fmt.Printf("%8.1f", r)
	}
	fmt.Println()

	curves := make([]rpcvalet.Curve, len(modes))
	for i, m := range modes {
		p := rpcvalet.DefaultParams()
		p.Mode = m.mode
		curve, err := rpcvalet.Sweep(rpcvalet.Config{
			Params:   p,
			Workload: wl,
			Warmup:   2000,
			Measure:  25000,
			Seed:     42,
		}, rates, m.name)
		if err != nil {
			log.Fatal(err)
		}
		curves[i] = curve
		fmt.Printf("%-22s", m.name)
		for _, pt := range curve.Points {
			fmt.Printf("%8.0f", pt.P99)
		}
		fmt.Println()
	}

	fmt.Println("\nthroughput under SLO (10× measured S̄):")
	for i, m := range modes {
		fmt.Printf("  %-22s %6.2f MRPS\n", m.name, curves[i].ThroughputUnderSLO())
	}
	fmt.Println("\nExpected shape (paper Fig 7a): 1x16 > 4x4 > 16x1, with 1x16")
	fmt.Println("delivering up to ~4x lower p99 before the baselines saturate.")
}
