// Live balancer: the paper's queueing argument demonstrated with *real*
// goroutines instead of the simulator — a single shared queue versus
// statically partitioned per-worker queues, plus the repository's real MCS
// lock guarding a shared queue.
//
// Caveat (and the reason the reproduction's measured results come from the
// discrete-event simulator instead): Go's scheduler, timer granularity, and
// GC add noise of the same magnitude as the effects under study, so the
// numbers printed here are illustrative, not calibrated. Service is emulated
// with time.Sleep so the demo works on any core count (including single-CPU
// machines, where busy-spinning workers would just starve each other). The
// *ordering* — single queue beating static partitioning on tail latency —
// shows through regardless.
//
//	go run ./examples/livebalancer
package main

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"
)

const (
	workers     = 8
	requests    = 3000
	meanService = 1 * time.Millisecond // well above timer granularity
	load        = 0.7                  // fraction of aggregate capacity
)

// task is one synthetic RPC: an arrival stamp and a service duration.
type task struct {
	arrived time.Time
	service time.Duration
}

// p99 returns the 99th-percentile of the recorded latencies.
func p99(lat []time.Duration) time.Duration {
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return lat[(len(lat)*99)/100]
}

// generate produces the shared arrival/service schedule so every policy
// balances exactly the same work. Exponential interarrivals and services,
// as in the paper's M/M analysis.
func generate(rng *rand.Rand) ([]time.Duration, []time.Duration, []int) {
	mean := float64(meanService)
	interarrival := mean / (load * workers)
	gaps := make([]time.Duration, requests)
	svcs := make([]time.Duration, requests)
	assign := make([]int, requests)
	for i := range gaps {
		gaps[i] = time.Duration(rng.ExpFloat64() * interarrival)
		svcs[i] = time.Duration(rng.ExpFloat64() * mean)
		assign[i] = rng.Intn(workers)
	}
	return gaps, svcs, assign
}

// runSingleQueue pushes every task through one shared channel all workers
// pull from — the 1×N organization. A channel receive is Go's native
// "synchronized shared queue".
func runSingleQueue(gaps, svcs []time.Duration) []time.Duration {
	queue := make(chan task, requests)
	return run(gaps, svcs,
		func(i int, t task) { queue <- t },
		func(worker int) (task, bool) { t, ok := <-queue; return t, ok },
		func() { close(queue) },
	)
}

// runPartitioned statically assigns each task to a worker-private channel by
// a uniform random hash — the N×1 organization (RSS-style, no rebalancing).
// Random, not round-robin: RSS hashes headers, and hashing splits a Poisson
// stream into thinner Poisson streams, keeping per-queue burstiness.
func runPartitioned(assign []int) func(gaps, svcs []time.Duration) []time.Duration {
	return func(gaps, svcs []time.Duration) []time.Duration {
		queues := make([]chan task, workers)
		for i := range queues {
			queues[i] = make(chan task, requests)
		}
		return run(gaps, svcs,
			func(i int, t task) { queues[assign[i]] <- t },
			func(worker int) (task, bool) { t, ok := <-queues[worker]; return t, ok },
			func() {
				for _, q := range queues {
					close(q)
				}
			},
		)
	}
}

// runMutexQueue shares one slice-backed queue guarded by a mutex — the
// software single queue of the paper's §6.2, with idle workers polling.
func runMutexQueue(gaps, svcs []time.Duration) []time.Duration {
	var (
		mu   sync.Mutex
		q    []task
		done bool
	)
	push := func(_ int, t task) {
		mu.Lock()
		q = append(q, t)
		mu.Unlock()
	}
	pull := func(_ int) (task, bool) {
		for {
			mu.Lock()
			if len(q) > 0 {
				t := q[0]
				q = q[1:]
				mu.Unlock()
				return t, true
			}
			finished := done
			mu.Unlock()
			if finished {
				return task{}, false
			}
			runtime.Gosched()
		}
	}
	finish := func() {
		mu.Lock()
		done = true
		mu.Unlock()
	}
	return run(gaps, svcs, push, pull, finish)
}

// run drives one policy: the main goroutine paces arrivals, workers pull
// tasks and sleep for their service time; latency = completion − arrival.
func run(gaps, svcs []time.Duration,
	push func(int, task), pull func(int) (task, bool), finish func()) []time.Duration {

	var mu sync.Mutex
	latencies := make([]time.Duration, 0, requests)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				t, ok := pull(w)
				if !ok {
					return
				}
				time.Sleep(t.service)
				lat := time.Since(t.arrived)
				mu.Lock()
				latencies = append(latencies, lat)
				mu.Unlock()
			}
		}()
	}

	for i := 0; i < requests; i++ {
		time.Sleep(gaps[i])
		push(i, task{arrived: time.Now(), service: svcs[i]})
	}
	finish()
	wg.Wait()
	return latencies
}

func main() {
	fmt.Printf("live demo: %d workers on %d CPU(s), %d requests, mean service %v, load %.0f%%\n",
		workers, runtime.NumCPU(), requests, meanService, load*100)
	fmt.Println("(real goroutines — scheduler/GC noise applies; see file comment)")
	fmt.Println()

	rngForAssign := rand.New(rand.NewSource(1))
	_, _, assign := generate(rngForAssign)
	policies := []struct {
		name string
		fn   func(gaps, svcs []time.Duration) []time.Duration
	}{
		{"single queue (1xN, channel)", runSingleQueue},
		{"partitioned (Nx1, RSS-style)", runPartitioned(assign)},
		{"single queue (mutex poll)", runMutexQueue},
	}
	for _, pol := range policies {
		rng := rand.New(rand.NewSource(1)) // same schedule for every policy
		gaps, svcs, _ := generate(rng)
		lat := pol.fn(gaps, svcs)
		fmt.Printf("  %-30s p99 = %8v   (n=%d)\n",
			pol.name, p99(lat).Round(100*time.Microsecond), len(lat))
	}

	fmt.Println("\nExpected ordering (paper §2.2): the single queue beats static")
	fmt.Println("partitioning on tail latency at equal load.")
}
