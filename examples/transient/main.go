// Transient walkthrough: the time-resolved telemetry layer in action. Every
// Result carries an epoch-sliced Timeline, so instead of one steady-state
// number per run, each experiment below watches latency, queue depth, and
// utilization move through a disturbance:
//
//  1. Load pulse: a 2× rate pulse drives a single server past capacity for
//     200 µs. The single-queue NI dispatch (1×16) drains the backlog with
//     the whole chip; the partitioned 16×1 baseline drains core by core and
//     its tail stays elevated for several times as many epochs.
//
//  2. GC pause: a 100 µs whole-machine stall. The timeline shows the
//     throughput hole, the depth spike, and the drain.
//
//  3. Degraded node: one of four cluster nodes runs at 2/3 speed. Blind
//     random routing keeps overloading it; JSQ(2) routes around it — the
//     per-node sparklines make the difference visible at a glance.
//
// All runs are deterministic: re-running prints identical numbers.
//
//	go run ./examples/transient
package main

import (
	"fmt"
	"os"

	"rpcvalet"
	"rpcvalet/internal/report"
)

func must[T any](v T, err error) T {
	if err != nil {
		fmt.Fprintln(os.Stderr, "transient example:", err)
		os.Exit(1)
	}
	return v
}

func main() {
	wl := must(rpcvalet.Synthetic("exp"))
	capacity := rpcvalet.CapacityMRPS(rpcvalet.DefaultParams(), wl)
	baseRate := 0.55 * capacity

	// --- 1. Load pulse: 1×16 vs 16×1 ------------------------------------
	pulse := rpcvalet.EnvelopePulse(400_000, 200_000, 2) // [400µs, 600µs) at 2×
	runPulse := func(mode rpcvalet.Mode) rpcvalet.Result {
		p := rpcvalet.DefaultParams()
		p.Mode = mode
		return must(rpcvalet.Run(rpcvalet.Config{
			Params:   p,
			Workload: wl,
			RateMRPS: baseRate,
			Arrival:  rpcvalet.ArrivalModulated(rpcvalet.ArrivalPoisson(baseRate), pulse),
			Warmup:   500,
			Measure:  17500,
			Seed:     1,
			Epoch:    25 * rpcvalet.Microsecond,
		}))
	}
	fmt.Printf("1) 2x load pulse at %.1f MRPS base (capacity %.1f): 400us–600us\n\n", baseRate, capacity)
	for _, mode := range []rpcvalet.Mode{rpcvalet.ModeSingleQueue, rpcvalet.ModePartitioned} {
		res := runPulse(mode)
		fmt.Printf("%s  steady p99=%.0fns\n%s\n\n", res.Dispatch, res.Latency.P99,
			report.TimelineSpark(res.Timeline))
	}

	// --- 2. GC pause on a single machine --------------------------------
	fmt.Println("2) 100us whole-machine pause at 400us (1x16, same load):")
	pausedCfg := rpcvalet.Config{
		Params:   rpcvalet.DefaultParams(),
		Workload: wl,
		RateMRPS: baseRate,
		Warmup:   500,
		Measure:  12000,
		Seed:     1,
		Epoch:    25 * rpcvalet.Microsecond,
		Pauses:   []rpcvalet.Pause{{Start: 400 * rpcvalet.Microsecond, Dur: 100 * rpcvalet.Microsecond}},
	}
	paused := must(rpcvalet.Run(pausedCfg))
	fmt.Printf("%s\n\n", report.TimelineSpark(paused.Timeline))
	tl := paused.Timeline
	spike := tl.Epochs[tl.EpochIndex(500_000)]
	fmt.Printf("   epoch at pause end: p99=%.0fns, max depth %d, utilization %.2f\n\n",
		spike.Latency.P99, spike.MaxDepth, spike.Utilization)

	// --- 3. Degraded node in a cluster ----------------------------------
	fmt.Println("3) 4-node rack, node 0 at 1.5x service slowdown, 70% load:")
	for _, polName := range []string{"random", "jsq2"} {
		pol := must(rpcvalet.ClusterPolicyByName(polName))
		cfg := rpcvalet.DefaultCluster(4, wl, pol)
		cfg.Faults = []rpcvalet.NodeFault{{Node: 0, Slowdown: 1.5}}
		cfg.Measure = 16000
		cfg.Epoch = 25 * rpcvalet.Microsecond
		res := must(rpcvalet.RunCluster(cfg))
		fmt.Printf("\n%s: cluster p99=%.0fns, node completions %v\n", polName, res.Latency.P99, res.NodeCompleted)
		for i, ntl := range res.NodeTimelines {
			util := 0.0
			if n := len(ntl.Epochs); n > 0 {
				for _, e := range ntl.Epochs {
					util += e.Utilization
				}
				util /= float64(n)
			}
			fmt.Printf("  node %d (%s): mean util %.2f\n", i, res.NodeFaults[i], util)
		}
	}
	fmt.Println("\nJSQ sheds load off the slow node (lower node-0 completions), keeping the tail flat;")
	fmt.Println("random keeps feeding it and the cluster tail pays for the hottest queue.")
}
