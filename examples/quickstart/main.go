// Quickstart: simulate the RPCValet server once and print what the paper's
// headline metric looks like — 99th-percentile latency under a tail SLO.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"rpcvalet"
)

func main() {
	cfg := rpcvalet.Config{
		Params:   rpcvalet.DefaultParams(), // 16 cores, Manycore NI, Table 1 timing
		Workload: rpcvalet.HERD(),          // ~330ns key-value RPCs (Fig 6b)
		RateMRPS: 15,                       // offered load: 15M requests/s
		Warmup:   5000,
		Measure:  50000,
		Seed:     1,
	}

	res, err := rpcvalet.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("configuration:   %s\n", res.Mode)
	fmt.Printf("offered load:    %.1f MRPS (capacity ≈ %.1f MRPS)\n",
		cfg.RateMRPS, rpcvalet.CapacityMRPS(cfg.Params, cfg.Workload))
	fmt.Printf("throughput:      %.2f MRPS\n", res.ThroughputMRPS)
	fmt.Printf("mean service S̄: %.0f ns\n", res.ServiceMeanNanos)
	fmt.Printf("p50 / p99:       %.0f / %.0f ns\n", res.Latency.P50, res.Latency.P99)
	fmt.Printf("SLO (10×S̄):     %.0f ns — meets: %v\n", res.SLONanos, res.MeetsSLO)

	// The same run with the RSS-style partitioned baseline (Model 16×1):
	// no rebalancing, so the tail inflates at the same offered load.
	cfg.Params.Mode = rpcvalet.ModePartitioned
	base, err := rpcvalet.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n16x1 baseline:   p99 %.0f ns (%.1f× RPCValet's %.0f ns)\n",
		base.Latency.P99, base.Latency.P99/res.Latency.P99, res.Latency.P99)
}
