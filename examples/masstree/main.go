// Masstree scenario: reproduce the paper's scan-interference result
// (Fig 7b). 99% of requests are ~1.25µs gets with a strict 12.5µs tail SLO;
// 1% are 60–120µs ordered scans that occupy cores for hundreds of
// get-lengths. Static partitioning (16×1) traps gets behind scans; RPCValet's
// occupancy-driven dispatch routes around busy cores.
//
//	go run ./examples/masstree
package main

import (
	"fmt"
	"log"

	"rpcvalet"
)

func main() {
	wl := rpcvalet.Masstree()
	const rate = 2 // MRPS — the paper's observation point: 16x1 fails even here

	fmt.Println("Masstree: 99% gets (mean 1.25µs) + 1% scans (60-120µs)")
	fmt.Printf("offered load %.0f MRPS, SLO on gets: 12.5µs\n\n", float64(rate))
	fmt.Printf("%-20s %12s %12s %12s %8s\n", "mode", "get p50(µs)", "get p99(µs)", "scan p50(µs)", "SLO?")

	for _, m := range []struct {
		name string
		mode rpcvalet.Mode
	}{
		{"16x1 (RSS)", rpcvalet.ModePartitioned},
		{"4x4 (grouped)", rpcvalet.ModeGrouped},
		{"1x16 (RPCValet)", rpcvalet.ModeSingleQueue},
	} {
		p := rpcvalet.DefaultParams()
		p.Mode = m.mode
		res, err := rpcvalet.Run(rpcvalet.Config{
			Params:   p,
			Workload: wl,
			RateMRPS: rate,
			Warmup:   3000,
			Measure:  30000,
			Seed:     7,
		})
		if err != nil {
			log.Fatal(err)
		}
		get := res.ClassLatency["get"]
		scan := res.ClassLatency["scan"]
		fmt.Printf("%-20s %12.2f %12.2f %12.1f %8v\n",
			m.name, get.P50/1000, get.P99/1000, scan.P50/1000, res.MeetsSLO)
	}

	fmt.Println("\nExpected shape (paper Fig 7b): 16x1 violates the SLO even at")
	fmt.Println("this low load; RPCValet keeps the get tail two orders of")
	fmt.Println("magnitude below it by steering gets away from scan-occupied cores.")
}
