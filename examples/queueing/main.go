// Queueing-theory explorer: reproduce the paper's §2.2 analysis (Fig 2)
// directly from the theoretical models — no machine simulation involved —
// and validate the simulator against closed-form results on the way.
//
//	go run ./examples/queueing
package main

import (
	"fmt"
	"log"

	"rpcvalet"
	"rpcvalet/internal/dist"
	"rpcvalet/internal/queueing"
)

func main() {
	// Part 1: pooling. Five ways to organize 16 serving units, exponential
	// service, same total capacity — only the queue structure differs.
	fmt.Println("Fig 2a: p99 sojourn (×S̄) vs load — Q×U organizations, exp service")
	shapes := []struct{ q, u int }{{1, 16}, {2, 8}, {4, 4}, {8, 2}, {16, 1}}
	loads := []float64{0.3, 0.5, 0.7, 0.9}
	fmt.Printf("%8s", "load")
	for _, s := range shapes {
		fmt.Printf("%8s", fmt.Sprintf("%dx%d", s.q, s.u))
	}
	fmt.Println()
	for _, load := range loads {
		fmt.Printf("%8.2f", load)
		for _, s := range shapes {
			res, err := rpcvalet.RunQueueModel(rpcvalet.QueueModel{
				Queues: s.q, ServersPerQueue: s.u,
				Service: dist.Exponential{MeanValue: 1},
				Load:    load, Warmup: 5000, Measure: 60000, Seed: 1,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%8.2f", res.Latency.P99)
		}
		fmt.Println()
	}

	// Part 2: service-time variance. The same 1×16 system under the four
	// paper distributions — variance drives the tail.
	fmt.Println("\nFig 2b: p99 (×S̄) at load 0.7, Model 1x16, by distribution")
	dists := map[string]dist.Sampler{
		"fixed":   dist.Fixed{Value: 1},
		"uniform": dist.Uniform{Lo: 0, Hi: 2},
		"exp":     dist.Exponential{MeanValue: 1},
		"gev":     dist.Normalized(dist.GEV{Loc: 363, Scale: 100, Shape: 0.65}),
	}
	for _, name := range []string{"fixed", "uniform", "exp", "gev"} {
		res, err := rpcvalet.RunQueueModel(rpcvalet.QueueModel{
			Queues: 1, ServersPerQueue: 16,
			Service: dists[name],
			Load:    0.7, Warmup: 5000, Measure: 60000, Seed: 2,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s %6.2f\n", name, res.Latency.P99)
	}

	// Part 3: trust, but verify. The discrete-event simulator against
	// closed-form queueing theory.
	fmt.Println("\nValidation: simulation vs closed form")
	res, err := rpcvalet.RunQueueModel(rpcvalet.QueueModel{
		Queues: 1, ServersPerQueue: 1,
		Service: dist.Exponential{MeanValue: 1},
		Load:    0.8, Warmup: 20000, Measure: 200000, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  M/M/1 ρ=0.8 mean sojourn: sim %.3f, analytic %.3f\n",
		res.Latency.Mean, queueing.MM1MeanSojourn(0.8, 1))
	fmt.Printf("  M/M/1 ρ=0.8 p99 sojourn:  sim %.3f, analytic %.3f\n",
		res.Latency.P99, queueing.MM1SojournQuantile(0.8, 1, 0.99))

	res16, err := rpcvalet.RunQueueModel(rpcvalet.QueueModel{
		Queues: 1, ServersPerQueue: 16,
		Service: dist.Exponential{MeanValue: 1},
		Load:    0.8, Warmup: 20000, Measure: 200000, Seed: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  M/M/16 ρ=0.8 mean wait:   sim %.4f, Erlang-C %.4f\n",
		res16.Wait.Mean, queueing.MMcMeanWait(16, 0.8*16, 1))
}
