// Cluster walkthrough: a rack of four RPCValet servers behind a
// cluster-level load balancer, exercising the two-tier balancing question
// the single-node model cannot ask — how inter-node policy (random /
// round-robin / JSQ(2) / bounded-load) composes with intra-node NI dispatch
// (1×16 vs 16×1).
//
// The demo runs three short experiments, all on the shared virtual clock
// (deterministic; re-running prints identical numbers):
//
//  1. One cluster run in full detail: per-node completion counts,
//     utilization, and the end-to-end tail including the network hop.
//
//  2. Policy face-off at 80% load on the heavy-ish HERD workload: the
//     queue-aware policies versus blind random routing.
//
//  3. The composition grid at 85% load: the best and worst pairing of
//     {cluster policy} × {node dispatch mode}, showing blind balancing at
//     both tiers compounding into the partitioned pathology.
//
//  4. The traffic-shape grid at 60% load: the same cluster under each
//     arrival process (poisson, det, mmpp2, lognormal) at identical mean
//     rate — burstiness, not rate, is what separates the dispatch modes.
//
//     go run ./examples/cluster
package main

import (
	"fmt"
	"os"

	"rpcvalet"
)

func must[T any](v T, err error) T {
	if err != nil {
		fmt.Fprintln(os.Stderr, "cluster example:", err)
		os.Exit(1)
	}
	return v
}

func main() {
	// --- 1. One run in detail -------------------------------------------
	jsq := must(rpcvalet.ClusterPolicyByName("jsq2"))
	cfg := rpcvalet.DefaultCluster(4, rpcvalet.HERD(), jsq)
	cfg.Measure = 20000
	res := must(rpcvalet.RunCluster(cfg))
	fmt.Printf("cluster of %d nodes, %s, policy %s @ %.1f MRPS\n",
		res.Nodes, "herd", res.Policy, res.RateMRPS)
	fmt.Printf("  p50=%.0fns p99=%.0fns (hop included)  throughput=%.1f MRPS\n",
		res.Latency.P50, res.Latency.P99, res.ThroughputMRPS)
	fmt.Printf("  per-node completions=%v (imbalance %.3f)\n", res.NodeCompleted, res.Imbalance)
	for i, u := range res.NodeUtilization {
		fmt.Printf("  node %d mean core utilization %.0f%%\n", i, u*100)
	}

	// --- 2. Policy face-off at 80% load ---------------------------------
	fmt.Println("\npolicy face-off, herd workload, 80% of cluster capacity:")
	rate := 0.8 * rpcvalet.ClusterCapacityMRPS(cfg)
	for _, name := range rpcvalet.ClusterPolicies() {
		pol := must(rpcvalet.ClusterPolicyByName(name))
		c := rpcvalet.DefaultCluster(4, rpcvalet.HERD(), pol)
		c.RateMRPS = rate
		c.Measure = 20000
		r := must(rpcvalet.RunCluster(c))
		fmt.Printf("  %-8s p99=%6.0fns  imbalance=%.3f\n", name, r.Latency.P99, r.Imbalance)
	}

	// --- 3. Composition grid: cluster policy × node dispatch mode -------
	fmt.Println("\ncomposition at 85% load, synthetic-exp: p99 (ns)")
	wl := must(rpcvalet.Synthetic("exp"))
	modes := []struct {
		name string
		mode rpcvalet.Mode
	}{
		{"16x1", rpcvalet.ModePartitioned},
		{"1x16", rpcvalet.ModeSingleQueue},
	}
	fmt.Printf("  %-8s", "policy")
	for _, m := range modes {
		fmt.Printf("  %8s", m.name)
	}
	fmt.Println()
	for _, name := range []string{"random", "jsq2"} {
		fmt.Printf("  %-8s", name)
		for _, m := range modes {
			pol := must(rpcvalet.ClusterPolicyByName(name))
			c := rpcvalet.DefaultCluster(4, wl, pol)
			c.Node.Params.Mode = m.mode
			c.RateMRPS = 0.85 * rpcvalet.ClusterCapacityMRPS(c)
			c.Measure = 15000
			r := must(rpcvalet.RunCluster(c))
			fmt.Printf("  %8.0f", r.Latency.P99)
		}
		fmt.Println()
	}
	fmt.Println("\nblind routing onto partitioned nodes compounds the tail;")
	fmt.Println("queue-aware routing onto NI-balanced nodes tames it.")

	// --- 4. Traffic shape: arrival process × node dispatch mode ---------
	fmt.Println("\ntraffic shape at 60% load, jsq2, synthetic-exp: p99 (ns)")
	fmt.Printf("  %-10s", "arrival")
	for _, m := range modes {
		fmt.Printf("  %8s", m.name)
	}
	fmt.Println()
	for _, kind := range rpcvalet.ArrivalKinds() {
		fmt.Printf("  %-10s", kind)
		for _, m := range modes {
			pol := must(rpcvalet.ClusterPolicyByName("jsq2"))
			c := rpcvalet.DefaultCluster(4, wl, pol)
			c.Node.Params.Mode = m.mode
			c.RateMRPS = 0.6 * rpcvalet.ClusterCapacityMRPS(c)
			c.Arrival = must(rpcvalet.ArrivalByName(kind, c.RateMRPS))
			c.Measure = 15000
			r := must(rpcvalet.RunCluster(c))
			fmt.Printf("  %8.0f", r.Latency.P99)
		}
		fmt.Println()
	}
	fmt.Println("\nsame mean rate, different burstiness: MMPP2 bursts blow up the")
	fmt.Println("partitioned nodes while the NI-balanced single queue rides them out.")
}
