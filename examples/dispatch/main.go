// Dispatch-plan walkthrough: the NI dispatch stage as a policy point.
//
// The paper's four evaluated configurations are canned instances of a
// declarative plan (core grouping × policy × outstanding threshold ×
// queue placement); this demo exercises the combinations the old Mode enum
// could not express. All runs are deterministic — re-running prints
// identical numbers.
//
//  1. Policies on the single queue: blind first-available vs occupancy
//     feedback vs power-of-two-choices vs mesh-row locality, at high load
//     on the heavy-tailed GEV workload.
//
//  2. JBSQ(n): the bounded-outstanding single queue. n=1 is the strict
//     single-queue ideal with the dispatch round-trip bubble; n=2 is the
//     paper's default; large n approaches an unbounded shared queue.
//
//  3. A heterogeneous rack: half the nodes running RPCValet 1×16, half the
//     RSS-partitioned baseline, behind one JSQ(2) front end — per-node
//     plans through Cluster.NodePlans.
//
//     go run ./examples/dispatch
package main

import (
	"fmt"
	"os"

	"rpcvalet"
)

func must[T any](v T, err error) T {
	if err != nil {
		fmt.Fprintln(os.Stderr, "dispatch example:", err)
		os.Exit(1)
	}
	return v
}

func main() {
	wl := must(rpcvalet.Synthetic("gev"))
	cap := rpcvalet.CapacityMRPS(rpcvalet.DefaultParams(), wl)

	runPlan := func(spec string, rate float64) rpcvalet.Result {
		p := rpcvalet.DefaultParams()
		p.Plan = must(rpcvalet.ParseDispatchPlan(spec))
		return must(rpcvalet.Run(rpcvalet.Config{
			Params: p, Workload: wl, RateMRPS: rate,
			Warmup: 2000, Measure: 20000, Seed: 1,
		}))
	}

	// --- 1. Policies on the single queue --------------------------------
	rate := 0.85 * cap
	fmt.Printf("NI policy on the 1x16 single queue, synthetic-gev @ 85%% load (%.1f MRPS):\n", rate)
	for _, spec := range []string{
		"1x16", // default: least-outstanding-rr
		"1x16:first-available",
		"1x16:least-outstanding",
		"1x16:random2",
		"1x16:local",
	} {
		r := runPlan(spec, rate)
		fmt.Printf("  %-26s p50=%5.0fns  p99=%6.0fns\n", r.Dispatch, r.Latency.P50, r.Latency.P99)
	}

	// --- 2. JBSQ(n): the outstanding bound as a dial --------------------
	fmt.Printf("\nJBSQ(n) at 90%% load (%.1f MRPS): the bound trades bubble for balance:\n", 0.9*cap)
	for _, n := range []int{1, 2, 4} {
		r := runPlan(fmt.Sprintf("jbsq%d", n), 0.9*cap)
		fmt.Printf("  jbsq%d  thr=%6.2f MRPS  p99=%6.0fns\n", n, r.ThroughputMRPS, r.Latency.P99)
	}
	part := runPlan("16x1", 0.9*cap)
	fmt.Printf("  16x1   thr=%6.2f MRPS  p99=%6.0fns   (partitioned baseline)\n",
		part.ThroughputMRPS, part.Latency.P99)

	// --- 3. Heterogeneous rack: per-node plans --------------------------
	pol := must(rpcvalet.ClusterPolicyByName("jsq2"))
	cfg := rpcvalet.DefaultCluster(4, wl, pol)
	cfg.NodePlans = []*rpcvalet.DispatchPlan{
		must(rpcvalet.ParseDispatchPlan("1x16")),
		must(rpcvalet.ParseDispatchPlan("1x16")),
		must(rpcvalet.ParseDispatchPlan("16x1")),
		must(rpcvalet.ParseDispatchPlan("16x1")),
	}
	cfg.RateMRPS = 0.8 * rpcvalet.ClusterCapacityMRPS(cfg)
	cfg.Measure = 20000
	res := must(rpcvalet.RunCluster(cfg))
	fmt.Printf("\nheterogeneous rack (%v) behind jsq2 @ %.1f MRPS:\n", res.NodeDispatch, res.RateMRPS)
	fmt.Printf("  end-to-end p99=%.0fns  imbalance=%.3f\n", res.Latency.P99, res.Imbalance)
	for i, u := range res.NodeUtilization {
		fmt.Printf("  node %d (%s): %d done, %.0f%% busy\n",
			i, res.NodeDispatch[i], res.NodeCompleted[i], u*100)
	}
	fmt.Println("\nthe queue-aware front end routes around the partitioned nodes — their")
	fmt.Println("per-core queues back up, JSQ sees the depth, and the NI-balanced nodes")
	fmt.Println("end up carrying the load. Bad intra-node dispatch taxes the whole rack.")
}
