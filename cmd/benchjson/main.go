// Command benchjson converts `go test -bench` text output (stdin) into a
// JSON array (stdout), one object per benchmark with its iteration count and
// every reported metric (ns/op, B/op, allocs/op, and custom b.ReportMetric
// units like claims_ok_ratio). `make bench-json` pipes the repository's
// benchmark suite through it to produce the BENCH_*.json artifacts CI
// uploads, seeding the performance trajectory.
//
// Usage:
//
//	go test -run='^$' -bench=. -benchmem . | go run ./cmd/benchjson > BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Entry is one benchmark's parsed result.
type Entry struct {
	Name       string             `json:"name"`
	Package    string             `json:"package,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var entries []Entry
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg:"); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iterations, then (value, unit) pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		e := Entry{
			Name:       strings.SplitN(fields[0], "-", 2)[0],
			Package:    pkg,
			Iterations: iters,
			Metrics:    map[string]float64{},
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			e.Metrics[fields[i+1]] = v
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if entries == nil {
		entries = []Entry{}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(entries); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
