// Command rpcvalet-sim runs a single full-machine simulation and prints the
// measured result in detail: latency percentiles (per request class), the
// derived SLO, throughput, and per-core/backend utilization.
//
// Usage:
//
//	rpcvalet-sim -mode 1x16 -workload herd -rate 10 [-measure 50000]
//	             [-arrival poisson] [-threshold 2] [-seed 1]
//	             [-dispatch jbsq2] [-modulate pulse@400us+200us:x2]
//	             [-degrade x1.5] [-epoch 25us] [-timeline]
//	             [-tail 32] [-trace-sample 1024] [-trace-jsonl spans.jsonl]
//	             [-format text|json]
//
// Modes: 1x16 (RPCValet), 4x4, 16x1 (RSS baseline), sw (MCS software queue).
// -dispatch overrides -mode with a full dispatch plan:
// "1x16" | "4x4" | "16x1" | "sw" | "jbsqN" | "GxM", optionally ":policy"
// (first-available, round-robin, least-outstanding, least-outstanding-rr,
// randomN, local) — e.g. -dispatch 1x16:least-outstanding, -dispatch
// 2x8:random2, -dispatch jbsq1.
// Workloads: herd, masstree, fixed, uniform, exp, gev.
// Arrivals: poisson (default), det, mmpp2, lognormal — same mean rate,
// different burstiness.
// -modulate wraps the arrival process in a rate envelope ("step@AT:xF",
// "pulse@START+DUR:xF", "ramp@START+DUR:xF", "square@PERIOD/HIGH:xF");
// -degrade injects machine faults ("x1.5" slowdown, "pause@200us+100us"
// stall windows, comma-combinable); -timeline prints the epoch-sliced
// timeline (sparkline + table) alongside the summary.
//
// Observability: -tail retains the K slowest requests with full span
// breakdowns (queue wait / dispatch / service, core attribution, queue depth
// at arrival) and prints them as a table (JSON output embeds them as
// TailSpans); -trace-jsonl writes sampled request spans (1-in-N by
// -trace-sample) as JSON lines. Tracing is passive: results are
// byte-identical with it on or off.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"rpcvalet"
	"rpcvalet/internal/report"
	"rpcvalet/internal/sim"
)

func main() {
	var (
		mode      = flag.String("mode", "1x16", "load-balancing mode: 1x16, 4x4, 16x1, sw")
		dispatch  = flag.String("dispatch", "", "dispatch plan (overrides -mode): 1x16|4x4|16x1|sw|jbsqN|GxM[:policy]")
		wlName    = flag.String("workload", "herd", "workload: herd, masstree, fixed, uniform, exp, gev")
		rate      = flag.Float64("rate", 10, "offered load in MRPS")
		arrName   = flag.String("arrival", "poisson", "arrival process: poisson, det, mmpp2, lognormal")
		warmup    = flag.Int("warmup", 5000, "completions discarded before measuring")
		measure   = flag.Int("measure", 50000, "completions measured")
		threshold = flag.Int("threshold", 2, "outstanding requests per core")
		seed      = flag.Uint64("seed", 1, "simulation seed")
		format    = flag.String("format", "text", "output format: text or json")
		modulate  = flag.String("modulate", "", "rate envelope: step@AT:xF, pulse@START+DUR:xF, ramp@START+DUR:xF, square@PERIOD/HIGH:xF")
		degrade   = flag.String("degrade", "", "machine fault: x<factor> slowdown and/or pause@START+DUR, comma-separated")
		epoch     = flag.String("epoch", "", "timeline epoch length (e.g. 25us; empty = auto)")
		timeline  = flag.Bool("timeline", false, "print the epoch-sliced timeline (text format only; json output always embeds it as Timeline)")

		tailK       = flag.Int("tail", 0, "retain the K slowest requests with span breakdowns")
		traceSample = flag.Int("trace-sample", 0, "trace 1 in N requests (0/1 = every request; used with -trace-jsonl)")
		traceJSONL  = flag.String("trace-jsonl", "", "write sampled request spans as JSON lines to this file")
	)
	flag.Parse()

	params := rpcvalet.DefaultParams()
	switch *mode {
	case "1x16":
		params.Mode = rpcvalet.ModeSingleQueue
	case "4x4":
		params.Mode = rpcvalet.ModeGrouped
	case "16x1":
		params.Mode = rpcvalet.ModePartitioned
	case "sw":
		params.Mode = rpcvalet.ModeSoftware
	default:
		fmt.Fprintf(os.Stderr, "rpcvalet-sim: unknown mode %q\n", *mode)
		os.Exit(2)
	}
	params.Threshold = *threshold
	if *dispatch != "" {
		pl, err := rpcvalet.ParseDispatchPlan(*dispatch)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rpcvalet-sim: %v\n", err)
			os.Exit(2)
		}
		params.Plan = pl
	}

	var wl rpcvalet.Profile
	switch *wlName {
	case "herd":
		wl = rpcvalet.HERD()
	case "masstree":
		wl = rpcvalet.Masstree()
	default:
		var err error
		wl, err = rpcvalet.Synthetic(*wlName)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rpcvalet-sim: %v\n", err)
			os.Exit(2)
		}
	}

	arr, err := rpcvalet.ArrivalByName(*arrName, *rate)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rpcvalet-sim: %v\n", err)
		os.Exit(2)
	}
	if *modulate != "" {
		env, err := rpcvalet.ParseEnvelope(*modulate)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rpcvalet-sim: %v\n", err)
			os.Exit(2)
		}
		arr = rpcvalet.ArrivalModulated(arr, env)
	}

	cfg := rpcvalet.Config{
		Params:   params,
		Workload: wl,
		RateMRPS: *rate,
		Arrival:  arr,
		Warmup:   *warmup,
		Measure:  *measure,
		Seed:     *seed,
	}
	if *degrade != "" {
		f, err := rpcvalet.ParseFault(*degrade)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rpcvalet-sim: %v\n", err)
			os.Exit(2)
		}
		cfg.Slowdown = f.Slowdown
		cfg.Pauses = f.Pauses
	}
	if *epoch != "" {
		d, err := sim.ParseDuration(*epoch)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rpcvalet-sim: %v\n", err)
			os.Exit(2)
		}
		cfg.Epoch = d
	}
	cfg.TailSamples = *tailK
	var collector *rpcvalet.TraceCollector
	if *traceJSONL != "" {
		collector = rpcvalet.NewTraceCollector()
		cfg.Trace = collector
		cfg.TraceSample = *traceSample
	}

	res, err := rpcvalet.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rpcvalet-sim: %v\n", err)
		os.Exit(1)
	}
	if collector != nil {
		f, err := os.Create(*traceJSONL)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rpcvalet-sim: %v\n", err)
			os.Exit(1)
		}
		if err := rpcvalet.WriteSpansJSONL(f, collector.Spans()); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "rpcvalet-sim: %v\n", err)
			os.Exit(1)
		}
	}

	if *format == "json" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintf(os.Stderr, "rpcvalet-sim: %v\n", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("%s  workload=%s  offered=%.2f MRPS  seed=%d\n\n",
		res.Dispatch, res.Workload, res.RateMRPS, res.Seed)

	sum := report.NewTable("measurement", "metric", "value")
	sum.AddRowf("throughput (MRPS)", res.ThroughputMRPS)
	sum.AddRowf("mean service S̄ (ns)", res.ServiceMeanNanos)
	sum.AddRowf("SLO (ns)", res.SLONanos)
	sum.AddRowf("meets SLO", res.MeetsSLO)
	sum.AddRowf("completions", res.Completed)
	sum.AddRowf("max queue depth", res.DispatcherMaxDepth)
	sum.AddRowf("blocked arrivals", res.BlockedArrivals)
	sum.AddRowf("reply stalls", res.ReplyStalls)
	sum.AddRowf("timed out", res.TimedOut)
	if err := sum.WriteText(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println()

	lat := report.NewTable("latency (ns)", "class", "count", "mean", "p50", "p99", "p99.9", "max")
	lat.AddRowf("measured", res.Latency.Count, res.Latency.Mean, res.Latency.P50,
		res.Latency.P99, res.Latency.P999, res.Latency.Max)
	classes := make([]string, 0, len(res.ClassLatency))
	for name := range res.ClassLatency {
		classes = append(classes, name)
	}
	sort.Strings(classes)
	for _, name := range classes {
		s := res.ClassLatency[name]
		lat.AddRowf(name, s.Count, s.Mean, s.P50, s.P99, s.P999, s.Max)
	}
	if err := lat.WriteText(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println()

	util := report.NewTable("utilization", "unit", "busy fraction")
	for i, u := range res.CoreUtilization {
		util.AddRowf(fmt.Sprintf("core %d", i), u)
	}
	for i, u := range res.BackendUtilization {
		util.AddRowf(fmt.Sprintf("backend %d", i), u)
	}
	if err := util.WriteText(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *tailK > 0 {
		fmt.Println()
		if err := report.SpanTable("slowest requests", res.TailSpans).WriteText(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	if *timeline {
		fmt.Println()
		fmt.Println(report.TimelineSpark(res.Timeline))
		fmt.Println()
		if err := report.TimelineTable("timeline", res.Timeline).WriteText(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
