// Command rpcvalet-live runs the dispatch plans on real hardware: goroutine
// workers serving synthesized service times on wall-clock time, behind a
// shared MPMC queue (1x16), per-worker RSS-partitioned queues (16x1), or a
// bounded JBSQ(n) dispatcher — the live counterpart of rpcvalet-sim.
//
// Usage:
//
//	rpcvalet-live [-plan 1x16,jbsq2,16x1] [-workload gev] [-rate 0]
//	              [-duration 1s] [-workers 8] [-emulation auto|spin|sleep]
//	              [-scale 0] [-seed 1] [-format text|json] [-timeline]
//	              [-obs :9090] [-tail 32] [-trace-sample 1024]
//	              [-trace-jsonl spans.jsonl]
//
// -plan takes a comma-separated list of live-supported dispatch plans
// ("1x16"/"single"/"sw" = shared queue, "16x1"/"partitioned" = per-worker
// RSS, "jbsqN" = bounded dispatch); the shapes run sequentially, each owning
// the machine for its window, and print as one comparison table.
// -rate is the offered load in MRPS; 0 picks 65% of the estimated live
// capacity. -scale multiplies every sampled service time; 0 picks the
// emulation's recommended lift above its noise floor (see DESIGN.md §6).
// Latencies are wall-clock measurements: the offered schedule is
// deterministic in -seed, the measured tails are not.
//
// Observability: -obs serves /metrics (Prometheus text format, counters and
// latency histograms labeled by plan, updated live while the runs are in
// flight), /healthz, and /debug/pprof on the given address for the life of
// the process. -tail retains each plan's K slowest requests with full span
// breakdowns and prints them as a table; -trace-jsonl appends each plan's
// sampled request spans (1-in-N by -trace-sample) as JSON lines.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"rpcvalet"
	"rpcvalet/internal/live"
	"rpcvalet/internal/report"
)

func fail(err error) {
	fmt.Fprintf(os.Stderr, "rpcvalet-live: %v\n", err)
	os.Exit(2)
}

func main() {
	var (
		plans    = flag.String("plan", "1x16,jbsq2,16x1", "comma-separated dispatch plans: 1x16|sw|16x1|jbsqN")
		wlName   = flag.String("workload", "gev", "workload: herd, masstree, fixed, uniform, exp, gev")
		rate     = flag.Float64("rate", 0, "offered load in MRPS (0 = 65% of estimated live capacity)")
		duration = flag.Duration("duration", time.Second, "offered-load window per plan (wall clock)")
		workers  = flag.Int("workers", 0, "serving goroutines (0 = 8)")
		emu      = flag.String("emulation", "auto", "service emulation: auto, spin, sleep")
		scale    = flag.Float64("scale", 0, "service-time multiplier (0 = emulation's recommended lift)")
		seed     = flag.Uint64("seed", 1, "offered-schedule seed")
		format   = flag.String("format", "text", "output format: text or json")
		timeline = flag.Bool("timeline", false, "print each plan's epoch-sliced timeline (text format)")

		obsAddr     = flag.String("obs", "", "serve /metrics, /healthz, /debug/pprof on this address (e.g. :9090) while runs are in flight")
		tailK       = flag.Int("tail", 0, "retain each plan's K slowest requests with span breakdowns")
		traceSample = flag.Int("trace-sample", 0, "trace 1 in N requests (0/1 = every request; used with -trace-jsonl)")
		traceJSONL  = flag.String("trace-jsonl", "", "append sampled request spans as JSON lines to this file")
	)
	flag.Parse()

	var wl rpcvalet.Profile
	switch *wlName {
	case "herd":
		wl = rpcvalet.HERD()
	case "masstree":
		wl = rpcvalet.Masstree()
	default:
		var err error
		if wl, err = rpcvalet.Synthetic(*wlName); err != nil {
			fail(err)
		}
	}
	em, err := live.ParseEmulation(*emu)
	if err != nil {
		fail(err)
	}
	if *format != "text" && *format != "json" {
		fail(fmt.Errorf("unknown format %q (want text or json)", *format))
	}

	base := rpcvalet.LiveConfig{
		Workload:     wl,
		Workers:      *workers,
		Duration:     *duration,
		Seed:         *seed,
		ServiceScale: *scale,
		Emulation:    em,
	}
	base.RateMRPS = *rate
	if base.RateMRPS <= 0 {
		base.RateMRPS = 0.65 * rpcvalet.LiveCapacityMRPS(base)
	}
	base.TailSamples = *tailK

	var reg *rpcvalet.ObsRegistry
	if *obsAddr != "" {
		reg = rpcvalet.NewObsRegistry()
		srv, err := rpcvalet.ServeObs(*obsAddr, reg, nil)
		if err != nil {
			fail(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "rpcvalet-live: observability on http://%s (/metrics, /healthz, /debug/pprof)\n", srv.Addr())
	}
	var jsonl *os.File
	if *traceJSONL != "" {
		var err error
		if jsonl, err = os.Create(*traceJSONL); err != nil {
			fail(err)
		}
		defer jsonl.Close()
	}

	var results []rpcvalet.LiveResult
	for _, spec := range strings.Split(*plans, ",") {
		pl, err := rpcvalet.ParseDispatchPlan(strings.TrimSpace(spec))
		if err != nil {
			fail(err)
		}
		cfg := base
		cfg.Plan = pl
		if reg != nil {
			cfg.Obs = rpcvalet.NewObsRunMetrics(reg, rpcvalet.ObsLabels{"plan": pl.Name})
		}
		var collector *rpcvalet.TraceCollector
		if jsonl != nil {
			collector = rpcvalet.NewTraceCollector()
			cfg.Trace = collector
			cfg.TraceSample = *traceSample
		}
		res, err := rpcvalet.RunLive(cfg)
		if err != nil {
			fail(err)
		}
		if collector != nil {
			if err := rpcvalet.WriteSpansJSONL(jsonl, collector.Spans()); err != nil {
				fail(err)
			}
		}
		results = append(results, res)
	}

	if *format == "json" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fail(err)
		}
		return
	}

	r0 := results[0]
	fmt.Printf("live runtime: %d workers, %s emulation, service ×%.1f, workload=%s, offered=%.4f MRPS, %v per plan\n",
		r0.Workers, r0.Emulation, r0.ServiceScale, r0.Workload, r0.RateMRPS, *duration)
	if r0.SpinsPerNs > 0 {
		fmt.Printf("spin calibration: %.2f rounds/ns\n", r0.SpinsPerNs)
	}
	fmt.Println()

	tbl := report.NewTable("wall-clock measurement by plan",
		"plan", "completed", "dropped", "thr_mrps", "p50_ns", "p99_ns", "p99.9_ns", "svc_mean_ns", "slo_ns", "meets")
	for _, r := range results {
		tbl.AddRowf(r.Plan, r.Completed, r.Dropped, r.ThroughputMRPS,
			r.Latency.P50, r.Latency.P99, r.Latency.P999, r.ServiceMeanNanos, r.SLONanos, r.MeetsSLO)
	}
	if err := tbl.WriteText(os.Stdout); err != nil {
		fail(err)
	}

	if *tailK > 0 {
		for _, r := range results {
			fmt.Println()
			if err := report.SpanTable(r.Plan+" slowest requests", r.TailSpans).WriteText(os.Stdout); err != nil {
				fail(err)
			}
		}
	}

	if *timeline {
		for _, r := range results {
			fmt.Printf("\n%s p99 %s\n", r.Plan, report.TimelineSpark(r.Timeline))
			if err := report.TimelineTable(r.Plan+" timeline", r.Timeline).WriteText(os.Stdout); err != nil {
				fail(err)
			}
		}
	}
}
