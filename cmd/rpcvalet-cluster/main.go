// Command rpcvalet-cluster sweeps a rack of simulated RPCValet servers
// behind a cluster-level load balancer and prints the policy × load report
// table: p99 latency (and optionally throughput/imbalance) at each offered
// load for every requested balancing policy. Identical flags and seed
// reproduce identical tables.
//
// Usage:
//
//	rpcvalet-cluster [-nodes 4] [-mode 1x16] [-dispatch jbsq2] [-workload exp]
//	                 [-policies random,rr,jsq2,bounded] [-arrival poisson]
//	                 [-points 8] [-lo 0.3] [-hi 0.9] [-hop 500] [-sample 0]
//	                 [-racks 8] [-global-policy jsqfull] [-global-hop 500]
//	                 [-global-sample 0]
//	                 [-modulate pulse@400us+200us:x2] [-degrade 0:x1.5]
//	                 [-epoch 25us] [-timeline]
//	                 [-tail 32] [-trace-sample 1024] [-trace-jsonl spans.jsonl]
//	                 [-warmup 2000] [-measure 20000] [-seed 1] [-workers N]
//	                 [-shards N] [-format text|csv|json] [-detail]
//
// Modes name the per-node NI dispatch model: 1x16 (RPCValet), 4x4, 16x1
// (RSS baseline), sw (MCS software queue). -dispatch overrides -mode with a
// full dispatch plan ("1x16" | "4x4" | "16x1" | "sw" | "jbsqN" |
// "GxM"[:policy]); a comma-separated list assigns plans node by node — a
// heterogeneous rack — and must name one plan per node (e.g. -nodes 2
// -dispatch 1x16,16x1). Workloads: herd, masstree, fixed, uniform, exp,
// gev. Arrivals shape the aggregate traffic: poisson (default), det,
// mmpp2, lognormal. Loads are fractions of the cluster's estimated
// aggregate capacity.
//
// -racks splits the node set into R racks, each behind its own rack
// balancer, with a global balancer dispatching over rack aggregate depths —
// the two-tier datacenter topology. -global-policy picks the global tier's
// policy (same grammar as -policies; the -policies list still names the
// rack-level policy of each curve), -global-hop the global→rack network
// latency in ns, and -global-sample a stale-scrape period for the global
// depth view (0 = live). -racks 0 keeps the flat single-tier cluster.
//
// -modulate wraps the aggregate arrival stream in a rate envelope
// ("step@AT:xF", "pulse@START+DUR:xF", "ramp@START+DUR:xF",
// "square@PERIOD/HIGH:xF"); -degrade injects per-node or per-rack faults
// ("0:x1.5;3:pause@500us+100us", "rack0:pause@1ms+500us" — rack scopes
// need -racks); -timeline prints the highest-load point's aggregate and
// per-node timelines for the first policy.
//
// -shards runs each simulation on N parallel engine shards — per-node-group
// event wheels plus a balancer shard, synchronized conservatively at the
// network hop (the lookahead window). 0 or 1 selects the serial single-clock
// engine, byte-identical to all pinned results; N > 1 is deterministic for a
// fixed (seed, shards) pair. Sweep fan-out narrows so -workers still caps
// total goroutines.
//
// Observability: -tail and -trace-jsonl re-run the highest-load point for
// the first policy (the same run -timeline inspects) with request tracing
// on. -tail prints the K slowest requests with their full cross-node span
// breakdowns — balancer receive, forward, node arrival, dispatch, service —
// and -trace-jsonl writes sampled request spans (1-in-N by -trace-sample) as
// JSON lines.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rpcvalet"
	"rpcvalet/internal/report"
	"rpcvalet/internal/sim"
)

func main() {
	var (
		nodes    = flag.Int("nodes", 4, "servers behind the balancer")
		mode     = flag.String("mode", "1x16", "per-node dispatch mode: 1x16, 4x4, 16x1, sw")
		dispatch = flag.String("dispatch", "", "dispatch plan(s), overriding -mode: one spec for all nodes, or a comma-separated per-node list")
		wlName   = flag.String("workload", "exp", "workload: herd, masstree, fixed, uniform, exp, gev")
		policies = flag.String("policies", strings.Join(rpcvalet.ClusterPolicies(), ","),
			"comma-separated balancing policies (random, rr, jsqD, jsqfull, bounded)")
		arrName  = flag.String("arrival", "poisson", "arrival process: poisson, det, mmpp2, lognormal")
		points   = flag.Int("points", 8, "offered-load points per policy")
		lo       = flag.Float64("lo", 0.3, "lowest load fraction of cluster capacity")
		hi       = flag.Float64("hi", 0.9, "highest load fraction of cluster capacity")
		hop      = flag.Float64("hop", 500, "balancer→node network hop, ns")
		sample   = flag.Float64("sample", 0, "balancer depth-view refresh period, ns (0 = live)")
		racks    = flag.Int("racks", 0, "split nodes into R racks behind a global balancer (0 = flat)")
		gpolName = flag.String("global-policy", "jsqfull", "global balancer policy over racks (used with -racks)")
		ghop     = flag.Float64("global-hop", 500, "global balancer→rack balancer hop, ns (used with -racks)")
		gsample  = flag.Float64("global-sample", 0, "global rack-depth scrape period, ns (0 = live; used with -racks)")
		warmup   = flag.Int("warmup", 2000, "completions discarded before measuring")
		measure  = flag.Int("measure", 20000, "completions measured per point")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		format   = flag.String("format", "text", "output format: text, csv, or json")
		detail   = flag.Bool("detail", false, "also print throughput and imbalance tables")
		modulate = flag.String("modulate", "", "aggregate rate envelope: step@AT:xF, pulse@START+DUR:xF, ramp@START+DUR:xF, square@PERIOD/HIGH:xF")
		degrade  = flag.String("degrade", "", "per-node or per-rack faults: SCOPE:FAULT list, e.g. 0:x1.5;3:pause@500us+100us or rack0:x2")
		epoch    = flag.String("epoch", "", "timeline epoch length (e.g. 25us; empty = auto)")
		timeline = flag.Bool("timeline", false, "print the highest-load point's timelines (first policy)")
		workers  = flag.Int("workers", 0, "concurrent simulations per sweep (0 = NumCPU)")
		shards   = flag.Int("shards", 0, "parallel engine shards per simulation (0/1 = serial single-clock engine)")

		tailK       = flag.Int("tail", 0, "retain the K slowest requests of the highest-load point (first policy) with cross-node span breakdowns")
		traceSample = flag.Int("trace-sample", 0, "trace 1 in N requests (0/1 = every request; used with -trace-jsonl)")
		traceJSONL  = flag.String("trace-jsonl", "", "write the highest-load point's sampled request spans as JSON lines to this file")
	)
	flag.Parse()

	params := rpcvalet.DefaultParams()
	switch *mode {
	case "1x16":
		params.Mode = rpcvalet.ModeSingleQueue
	case "4x4":
		params.Mode = rpcvalet.ModeGrouped
	case "16x1":
		params.Mode = rpcvalet.ModePartitioned
	case "sw":
		params.Mode = rpcvalet.ModeSoftware
	default:
		fmt.Fprintf(os.Stderr, "rpcvalet-cluster: unknown mode %q\n", *mode)
		os.Exit(2)
	}

	var nodePlans []*rpcvalet.DispatchPlan
	if *dispatch != "" {
		specs := strings.Split(*dispatch, ",")
		plans := make([]*rpcvalet.DispatchPlan, len(specs))
		for i, spec := range specs {
			pl, err := rpcvalet.ParseDispatchPlan(strings.TrimSpace(spec))
			if err != nil {
				fmt.Fprintf(os.Stderr, "rpcvalet-cluster: %v\n", err)
				os.Exit(2)
			}
			plans[i] = pl
		}
		switch len(plans) {
		case 1:
			params.Plan = plans[0]
		case *nodes:
			nodePlans = plans
		default:
			fmt.Fprintf(os.Stderr, "rpcvalet-cluster: %d dispatch plans for %d nodes (want 1 or %d)\n",
				len(plans), *nodes, *nodes)
			os.Exit(2)
		}
	}

	var wl rpcvalet.Profile
	switch *wlName {
	case "herd":
		wl = rpcvalet.HERD()
	case "masstree":
		wl = rpcvalet.Masstree()
	default:
		var err error
		wl, err = rpcvalet.Synthetic(*wlName)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rpcvalet-cluster: %v\n", err)
			os.Exit(2)
		}
	}

	var faults []rpcvalet.NodeFault
	if *degrade != "" {
		var err error
		if faults, err = rpcvalet.ParseNodeFaults(*degrade); err != nil {
			fmt.Fprintf(os.Stderr, "rpcvalet-cluster: %v\n", err)
			os.Exit(2)
		}
	}
	var env rpcvalet.Envelope
	if *modulate != "" {
		var err error
		if env, err = rpcvalet.ParseEnvelope(*modulate); err != nil {
			fmt.Fprintf(os.Stderr, "rpcvalet-cluster: %v\n", err)
			os.Exit(2)
		}
	}
	var epochDur sim.Duration
	if *epoch != "" {
		var err error
		if epochDur, err = sim.ParseDuration(*epoch); err != nil {
			fmt.Fprintf(os.Stderr, "rpcvalet-cluster: %v\n", err)
			os.Exit(2)
		}
	}

	names := strings.Split(*policies, ",")
	curves := make([]rpcvalet.ClusterCurve, 0, len(names))
	var loads []float64
	var capacity float64
	var lastCfg rpcvalet.Cluster // first policy's config, for -timeline
	for pi, name := range names {
		name = strings.TrimSpace(name)
		pol, err := rpcvalet.ClusterPolicyByName(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rpcvalet-cluster: %v\n", err)
			os.Exit(2)
		}
		cfg := rpcvalet.DefaultCluster(*nodes, wl, pol)
		cfg.Node.Params = params
		cfg.NodePlans = nodePlans
		cfg.Faults = faults
		cfg.Epoch = epochDur
		// The sweep re-rates the process to each point's aggregate rate.
		cfg.Arrival, err = rpcvalet.ArrivalByName(*arrName, cfg.RateMRPS)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rpcvalet-cluster: %v\n", err)
			os.Exit(2)
		}
		if env != nil {
			cfg.Arrival = rpcvalet.ArrivalModulated(cfg.Arrival, env)
		}
		cfg.Hop = sim.FromNanos(*hop)
		cfg.SampleEvery = sim.FromNanos(*sample)
		if *racks > 0 {
			cfg.Racks = *racks
			cfg.GlobalPolicy, err = rpcvalet.ClusterPolicyByName(*gpolName)
			if err != nil {
				fmt.Fprintf(os.Stderr, "rpcvalet-cluster: %v\n", err)
				os.Exit(2)
			}
			cfg.GlobalHop = sim.FromNanos(*ghop)
			cfg.GlobalSampleEvery = sim.FromNanos(*gsample)
		}
		cfg.Warmup = *warmup
		cfg.Measure = *measure
		cfg.Seed = *seed
		cfg.Shards = *shards
		capacity = rpcvalet.ClusterCapacityMRPS(cfg)
		if loads == nil {
			loads = fractions(*lo, *hi, *points)
		}
		rates := make([]float64, len(loads))
		for i, f := range loads {
			rates[i] = f * capacity
		}
		curve, err := rpcvalet.ClusterSweepWorkers(cfg, rates, name, *workers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rpcvalet-cluster: %v\n", err)
			os.Exit(1)
		}
		curves = append(curves, curve)
		if pi == 0 {
			lastCfg = cfg
			lastCfg.RateMRPS = rates[len(rates)-1]
		}
	}

	dispLabel := *mode
	if *dispatch != "" {
		dispLabel = *dispatch
	}
	topo := ""
	if *racks > 0 {
		topo = fmt.Sprintf(" in %d racks (%s global, %.0f ns global hop)", *racks, *gpolName, *ghop)
	}
	fmt.Printf("# cluster: %d × %s nodes%s, %s workload, capacity ≈ %.1f MRPS, hop %.0f ns, seed %d\n\n",
		*nodes, dispLabel, topo, wl.Name, capacity, *hop, *seed)
	emit := func(title string, value func(rpcvalet.ClusterPoint) float64) {
		cols := []string{"load", "rate_mrps"}
		for _, c := range curves {
			cols = append(cols, c.Label)
		}
		tbl := report.NewTable(title, cols...)
		for i, f := range loads {
			row := []any{f, curves[0].Points[i].RateMRPS}
			for _, c := range curves {
				row = append(row, value(c.Points[i]))
			}
			tbl.AddRowf(row...)
		}
		if err := tbl.Format(os.Stdout, *format); err != nil {
			fmt.Fprintf(os.Stderr, "rpcvalet-cluster: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
	}
	emit("p99 latency (ns) by policy", func(p rpcvalet.ClusterPoint) float64 { return p.P99 })
	if *detail {
		emit("throughput (MRPS) by policy", func(p rpcvalet.ClusterPoint) float64 { return p.ThroughputMRPS })
		emit("completion imbalance (max/mean) by policy", func(p rpcvalet.ClusterPoint) float64 { return p.Imbalance })
	}

	if *timeline || *tailK > 0 || *traceJSONL != "" {
		// One extra run of the highest-load point, first policy, with the
		// requested instrumentation. The balancing policy may be stateful
		// (round-robin rotation, bounded-load counters), so give the rerun a
		// fresh instance rather than the swept one.
		lastCfg.Policy = lastCfg.Policy.Clone()
		lastCfg.TailSamples = *tailK
		var collector *rpcvalet.TraceCollector
		if *traceJSONL != "" {
			collector = rpcvalet.NewTraceCollector()
			lastCfg.Trace = collector
			lastCfg.TraceSample = *traceSample
		}
		res, err := rpcvalet.RunCluster(lastCfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rpcvalet-cluster: %v\n", err)
			os.Exit(1)
		}
		if collector != nil {
			f, err := os.Create(*traceJSONL)
			if err == nil {
				if err = rpcvalet.WriteSpansJSONL(f, collector.Spans()); err == nil {
					err = f.Close()
				} else {
					f.Close()
				}
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "rpcvalet-cluster: %v\n", err)
				os.Exit(1)
			}
		}
		if *tailK > 0 {
			fmt.Printf("# slowest requests: policy %s at %.1f MRPS\n\n", curves[0].Label, lastCfg.RateMRPS)
			if err := report.SpanTable("slowest requests", res.TailSpans).WriteText(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Println()
		}
		if !*timeline {
			return
		}
		fmt.Printf("# timelines: policy %s at %.1f MRPS\n\n", curves[0].Label, lastCfg.RateMRPS)
		fmt.Println(report.TimelineSpark(res.Timeline))
		fmt.Println()
		if err := report.TimelineTable("aggregate timeline", res.Timeline).WriteText(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for i, tl := range res.NodeTimelines {
			fmt.Printf("\nnode %d (%s, %s): %s\n", i, res.NodeDispatch[i], res.NodeFaults[i], report.TimelineSpark(tl))
		}
	}
}

// fractions builds n evenly spaced load fractions in [lo, hi].
func fractions(lo, hi float64, n int) []float64 {
	if n < 2 {
		return []float64{hi}
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + (hi-lo)*float64(i)/float64(n-1)
	}
	return out
}
