// Command rpcvalet-bench regenerates the paper's tables and figures from the
// reproduction's models and prints the measured data alongside pass/fail
// checks of the paper's headline claims.
//
// Usage:
//
//	rpcvalet-bench [-fig 7a] [-quick] [-format text|csv|json] [-seed N]
//	               [-workers N] [-shards N]
//
// -shards runs every cluster simulation on N parallel engine shards
// synchronized at the balancer hop (0/1 = the serial engine, byte-identical
// to the pinned figures); sweep fan-out narrows so -workers still caps total
// goroutines.
//
// Without -fig it regenerates every registered figure in order. EXPERIMENTS.md
// is produced from this command's output.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"rpcvalet/internal/core"
)

func main() {
	var (
		fig     = flag.String("fig", "", "figure to regenerate (e.g. 2a, 7c, table1); empty = all")
		quick   = flag.Bool("quick", false, "use small sample counts (noisier, much faster)")
		format  = flag.String("format", "text", "output format: text, csv, or json")
		seed    = flag.Uint64("seed", 42, "experiment seed")
		points  = flag.Int("points", 0, "points per curve (0 = scale default)")
		workers = flag.Int("workers", 0, "concurrent simulations per sweep (0 = NumCPU)")
		shards  = flag.Int("shards", 0, "parallel engine shards per cluster simulation (0/1 = serial engine; cluster figures only)")
	)
	flag.Parse()

	opts := core.DefaultOptions()
	if *quick {
		opts = core.QuickOptions()
	}
	opts.Seed = *seed
	if *points > 0 {
		opts.Points = *points
	}
	if *workers > 0 {
		opts.Workers = *workers
	}
	opts.Shards = *shards

	ids := core.FigureIDs
	if *fig != "" {
		ids = strings.Split(*fig, ",")
	}
	exit := 0
	for _, id := range ids {
		gen, ok := core.Figures[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "rpcvalet-bench: unknown figure %q (known: %s)\n",
				id, strings.Join(core.FigureIDs, ", "))
			os.Exit(2)
		}
		start := time.Now()
		f, err := gen(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rpcvalet-bench: figure %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("== %s — %s (%.1fs)\n\n", f.ID, f.Title, time.Since(start).Seconds())
		for _, tbl := range f.Tables {
			if err := tbl.Format(os.Stdout, *format); err != nil {
				fmt.Fprintf(os.Stderr, "rpcvalet-bench: %v\n", err)
				os.Exit(1)
			}
			fmt.Println()
		}
		for _, c := range f.Claims {
			fmt.Println(c)
			if !c.Ok {
				exit = 3
			}
		}
		if len(f.Claims) > 0 {
			fmt.Println()
		}
	}
	os.Exit(exit)
}
