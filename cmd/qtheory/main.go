// Command qtheory explores the §2.2 queueing models directly: it simulates a
// Q×U system at one load or across a load sweep, and — where closed forms
// exist — prints the analytic expectation next to the simulation so the two
// can be compared.
//
// Usage:
//
//	qtheory -q 1 -u 16 -dist exp -load 0.8
//	qtheory -q 16 -u 1 -dist gev -sweep -points 10
package main

import (
	"flag"
	"fmt"
	"os"

	"rpcvalet/internal/dist"
	"rpcvalet/internal/queueing"
	"rpcvalet/internal/report"
)

func main() {
	var (
		q       = flag.Int("q", 1, "number of FIFO queues")
		u       = flag.Int("u", 16, "serving units per queue")
		distStr = flag.String("dist", "exp", "service distribution: fixed, uniform, exp, gev")
		load    = flag.Float64("load", 0.8, "offered load in (0,1)")
		sweep   = flag.Bool("sweep", false, "sweep loads instead of a single point")
		points  = flag.Int("points", 10, "sweep points")
		measure = flag.Int("measure", 100000, "requests measured per point")
		seed    = flag.Uint64("seed", 1, "simulation seed")
	)
	flag.Parse()

	var service dist.Sampler
	switch *distStr {
	case "fixed":
		service = dist.Fixed{Value: 1}
	case "uniform":
		service = dist.Uniform{Lo: 0, Hi: 2}
	case "exp":
		service = dist.Exponential{MeanValue: 1}
	case "gev":
		service = dist.Normalized(dist.GEV{Loc: 363, Scale: 100, Shape: 0.65})
	default:
		fmt.Fprintf(os.Stderr, "qtheory: unknown distribution %q\n", *distStr)
		os.Exit(2)
	}

	cfg := queueing.Config{
		Queues:          *q,
		ServersPerQueue: *u,
		Service:         service,
		Warmup:          *measure / 10,
		Measure:         *measure,
		Seed:            *seed,
	}

	if *sweep {
		loads := make([]float64, *points)
		for i := range loads {
			loads[i] = 0.05 + 0.90*float64(i)/float64(*points-1)
		}
		label := fmt.Sprintf("%dx%d-%s", *q, *u, *distStr)
		curve, err := queueing.Sweep(cfg, loads, label)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qtheory: %v\n", err)
			os.Exit(1)
		}
		tbl := report.NewTable(fmt.Sprintf("Model %dx%d, %s service (latency in ×S̄)", *q, *u, *distStr),
			"load", "throughput", "mean", "p50", "p99")
		for _, p := range curve.Points {
			tbl.AddRowf(p.Load, p.Throughput, p.Mean, p.P50, p.P99)
		}
		if err := tbl.WriteText(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\nthroughput under 10×S̄ SLO: %.3f servers' worth\n",
			queueing.ThroughputUnderSLO(curve, 10))
		return
	}

	cfg.Load = *load
	res, err := queueing.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qtheory: %v\n", err)
		os.Exit(1)
	}
	tbl := report.NewTable(fmt.Sprintf("Model %dx%d at load %.2f, %s service", *q, *u, *load, *distStr),
		"metric", "simulated", "analytic")
	c := *u
	lambda := *load * float64(c) // per-queue arrival rate, E[S]=1
	analyticMean := "-"
	analyticWait := "-"
	if *distStr == "exp" {
		analyticMean = fmt.Sprintf("%.4g", queueing.MMcMeanSojourn(c, lambda, 1))
		analyticWait = fmt.Sprintf("%.4g", queueing.MMcMeanWait(c, lambda, 1))
	}
	if *distStr == "fixed" && c == 1 {
		analyticWait = fmt.Sprintf("%.4g", queueing.MD1MeanWait(lambda, 1))
	}
	tbl.AddRow("mean sojourn (×S̄)", fmt.Sprintf("%.4g", res.Latency.Mean), analyticMean)
	tbl.AddRow("mean wait (×S̄)", fmt.Sprintf("%.4g", res.Wait.Mean), analyticWait)
	tbl.AddRow("p99 sojourn (×S̄)", fmt.Sprintf("%.4g", res.Latency.P99), "-")
	tbl.AddRow("throughput", fmt.Sprintf("%.4g", res.Throughput), "-")
	if err := tbl.WriteText(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
