// Command benchdiff compares two BENCH_*.json snapshots produced by
// cmd/benchjson and reports the per-metric delta for every benchmark present
// in both. It is the regression gate of the performance trajectory: CI runs
// it (non-blocking) against the committed snapshot, and `make bench-diff`
// runs the same comparison locally.
//
// Usage:
//
//	go run ./cmd/benchdiff [-threshold pct] OLD.json NEW.json
//
// The exit status is 1 when any directional metric regressed by more than
// threshold percent: ns/op, B/op and allocs/op regress upward, while rate
// metrics such as sim_mrps and claims_ok_ratio regress downward. All other
// metrics (p99_ns, tables, ...) are informational — they describe the
// simulated system, not the simulator, so the gate ignores them.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// entry mirrors cmd/benchjson's output object.
type entry struct {
	Name       string             `json:"name"`
	Package    string             `json:"package,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// direction classifies how a metric regresses: +1 means bigger is worse,
// -1 means smaller is worse, 0 means informational only.
func direction(metric string) int {
	switch metric {
	case "ns/op", "B/op", "allocs/op":
		return +1
	case "sim_mrps", "claims_ok_ratio":
		return -1
	}
	return 0
}

func load(path string) (map[string]entry, []string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var entries []entry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	byKey := make(map[string]entry, len(entries))
	var order []string
	for _, e := range entries {
		key := e.Package + "." + e.Name
		if _, dup := byKey[key]; !dup {
			order = append(order, key)
		}
		byKey[key] = e
	}
	return byKey, order, nil
}

func main() {
	threshold := flag.Float64("threshold", 10, "regression threshold in percent for directional metrics")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: benchdiff [-threshold pct] OLD.json NEW.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	oldBy, _, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newBy, newOrder, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	regressions := 0
	fmt.Printf("%-44s %-16s %14s %14s %9s\n", "benchmark", "metric", "old", "new", "delta")
	for _, key := range newOrder {
		ne := newBy[key]
		oe, ok := oldBy[key]
		if !ok {
			fmt.Printf("%-44s %-16s %14s %14s %9s\n", ne.Name, "(new benchmark)", "-", "-", "-")
			continue
		}
		metrics := make([]string, 0, len(ne.Metrics))
		for m := range ne.Metrics {
			if _, both := oe.Metrics[m]; both {
				metrics = append(metrics, m)
			}
		}
		sort.Strings(metrics)
		for _, m := range metrics {
			ov, nv := oe.Metrics[m], ne.Metrics[m]
			var pct float64
			if ov != 0 {
				pct = (nv - ov) / ov * 100
			} else if nv != 0 {
				pct = 100
			}
			mark := ""
			if d := direction(m); d != 0 && float64(d)*pct > *threshold {
				mark = "  REGRESSION"
				regressions++
			}
			fmt.Printf("%-44s %-16s %14.4g %14.4g %+8.1f%%%s\n", ne.Name, m, ov, nv, pct, mark)
		}
	}
	for key, oe := range oldBy {
		if _, ok := newBy[key]; !ok {
			fmt.Printf("%-44s %-16s %14s %14s %9s\n", oe.Name, "(removed)", "-", "-", "-")
		}
	}
	if regressions > 0 {
		fmt.Printf("\n%d metric(s) regressed beyond %.0f%%\n", regressions, *threshold)
		os.Exit(1)
	}
	fmt.Printf("\nno regressions beyond %.0f%%\n", *threshold)
}
