package rpcvalet_test

// This file is the benchmark harness required by the reproduction: one
// testing.B benchmark per paper table/figure, each regenerating that
// figure's data at reduced scale and reporting the headline measurement as
// a custom metric. Run all of them with:
//
//	go test -bench=. -benchmem
//
// Full-scale regeneration (larger samples, denser grids) is done by
// cmd/rpcvalet-bench; EXPERIMENTS.md records its output. The benchmarks
// here exist so `go test -bench` exercises every experiment end to end.

import (
	"strconv"
	"strings"
	"testing"

	"rpcvalet"
)

// benchOptions shrinks runs so the full -bench=. sweep stays in CI budget.
func benchOptions() rpcvalet.Options {
	o := rpcvalet.QuickOptions()
	o.Warmup = 500
	o.Measure = 6000
	o.QGen = 12000
	o.Points = 5
	return o
}

// regen runs one figure per benchmark iteration and reports how many of its
// paper claims were matched.
func regen(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		fig, err := rpcvalet.RegenerateFigure(id, benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		ok := 0
		for _, c := range fig.Claims {
			if c.Ok {
				ok++
			}
		}
		if len(fig.Claims) > 0 {
			b.ReportMetric(float64(ok)/float64(len(fig.Claims)), "claims_ok_ratio")
		}
		b.ReportMetric(float64(len(fig.Tables)), "tables")
	}
}

// --- One benchmark per paper figure/table --------------------------------

func BenchmarkFig2aQueueShapes(b *testing.B)       { regen(b, "2a") }
func BenchmarkFig2bSingleQueueDists(b *testing.B)  { regen(b, "2b") }
func BenchmarkFig2cPartitionedDists(b *testing.B)  { regen(b, "2c") }
func BenchmarkFig6ServiceTimePDFs(b *testing.B)    { regen(b, "6") }
func BenchmarkFig7aHERD(b *testing.B)              { regen(b, "7a") }
func BenchmarkFig7bMasstree(b *testing.B)          { regen(b, "7b") }
func BenchmarkFig7cSynthetic(b *testing.B)         { regen(b, "7c") }
func BenchmarkFig8HardwareVsSoftware(b *testing.B) { regen(b, "8") }
func BenchmarkFig9ModelComparison(b *testing.B)    { regen(b, "9") }
func BenchmarkTable1Parameters(b *testing.B)       { regen(b, "table1") }
func BenchmarkFigBurstArrivals(b *testing.B)       { regen(b, "burst") }
func BenchmarkFigPolicyPlans(b *testing.B)         { regen(b, "policy") }
func BenchmarkFigTransient(b *testing.B)           { regen(b, "transient") }
func BenchmarkFigAnatomy(b *testing.B)             { regen(b, "anatomy") }
func BenchmarkFigCluster(b *testing.B)             { regen(b, "cluster") }

// BenchmarkFigRack regenerates the rack-scaling figure (up to 1000 nodes per
// point); the depth-indexed balancer is what keeps it inside bench budget.
func BenchmarkFigRack(b *testing.B) { regen(b, "rack") }

// BenchmarkFigHier regenerates the two-tier datacenter figure: flat vs
// hierarchical topologies at up to 1000 nodes, plus the degraded-rack and
// rack-failover studies, all through the stacked dispatch tier.
func BenchmarkFigHier(b *testing.B) { regen(b, "hier") }

// BenchmarkFigLive regenerates the live-runtime figure: wall-clock goroutine
// runs, so its ns/op measures real serving windows, not simulator speed.
func BenchmarkFigLive(b *testing.B) { regen(b, "live") }

// --- Ablation benchmarks (design choices called out in DESIGN.md) --------

func BenchmarkAblationOutstanding(b *testing.B)    { regen(b, "ablation-outstanding") }
func BenchmarkAblationDispatcherHops(b *testing.B) { regen(b, "ablation-dispatcher") }
func BenchmarkAblationRSSKeying(b *testing.B)      { regen(b, "ablation-rss") }
func BenchmarkAblationPolicy(b *testing.B)         { regen(b, "ablation-policy") }

// --- Simulator micro-benchmarks -------------------------------------------

// reportSimRate attaches the simulator-speed metric shared by the hot-path
// benchmarks: simulated completions per wall-clock second, in millions
// (sim_mrps). completions is the total the run simulated (warmup included —
// the simulator pays for every one).
func reportSimRate(b *testing.B, completions int) {
	b.Helper()
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(completions)/s/1e6, "sim_mrps")
	}
}

// BenchmarkMachineThroughput measures simulator speed itself: simulated
// RPCs per wall-clock second for the full 1×16 machine.
func BenchmarkMachineThroughput(b *testing.B) {
	cfg := rpcvalet.Config{
		Params:   rpcvalet.DefaultParams(),
		Workload: rpcvalet.HERD(),
		RateMRPS: 20,
		Warmup:   100,
		Seed:     7,
	}
	cfg.Measure = b.N
	if cfg.Measure < 1000 {
		cfg.Measure = 1000
	}
	b.ReportAllocs()
	res, err := rpcvalet.Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.Latency.P99, "p99_ns")
	reportSimRate(b, cfg.Warmup+cfg.Measure)
}

// BenchmarkMachineSteadyState is the single-node hot-path benchmark: one
// long machine run with tracing off, so with -benchmem the allocs/op column
// reads as allocations per simulated request (b.N requests measured; the
// pooled request path should hold it at ~0) and sim_mrps reads the
// simulator's own throughput.
func BenchmarkMachineSteadyState(b *testing.B) {
	cfg := rpcvalet.Config{
		Params:   rpcvalet.DefaultParams(),
		Workload: rpcvalet.HERD(),
		RateMRPS: 20,
		Warmup:   2000,
		Seed:     11,
	}
	cfg.Measure = b.N
	if cfg.Measure < 2000 {
		cfg.Measure = 2000
	}
	b.ReportAllocs()
	res, err := rpcvalet.Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.Latency.P99, "p99_ns")
	reportSimRate(b, cfg.Warmup+cfg.Measure)
}

// BenchmarkClusterSteadyState is the rack-level hot-path benchmark: four
// RPCValet nodes behind the JSQ balancer on the single-engine path, measured
// the same way (allocs/op ≈ allocations per simulated request).
func BenchmarkClusterSteadyState(b *testing.B) {
	policy, err := rpcvalet.ClusterPolicyByName("jsq2")
	if err != nil {
		b.Fatal(err)
	}
	cfg := rpcvalet.DefaultCluster(4, rpcvalet.HERD(), policy)
	cfg.Warmup = 2000
	cfg.Measure = b.N
	if cfg.Measure < 2000 {
		cfg.Measure = 2000
	}
	b.ReportAllocs()
	res, err := rpcvalet.RunCluster(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.Latency.P99, "p99_ns")
	reportSimRate(b, cfg.Warmup+cfg.Measure)
}

// BenchmarkModeComparison reports the p99 each mode delivers at a fixed
// mid-saturation load, as a quick regression canary on the headline result.
func BenchmarkModeComparison(b *testing.B) {
	for _, mode := range []rpcvalet.Mode{
		rpcvalet.ModeSingleQueue, rpcvalet.ModeGrouped,
		rpcvalet.ModePartitioned, rpcvalet.ModeSoftware,
	} {
		name := strings.ReplaceAll(mode.String(), "/", "-")
		b.Run(name, func(b *testing.B) {
			var p99 float64
			for i := 0; i < b.N; i++ {
				p := rpcvalet.DefaultParams()
				p.Mode = mode
				res, err := rpcvalet.Run(rpcvalet.Config{
					Params:   p,
					Workload: rpcvalet.HERD(),
					RateMRPS: 4,
					Warmup:   300,
					Measure:  5000,
					Seed:     uint64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				p99 = res.Latency.P99
			}
			b.ReportMetric(p99, "p99_ns")
		})
	}
}

// BenchmarkQueueModel measures the raw queueing-model simulation rate.
func BenchmarkQueueModel(b *testing.B) {
	n := b.N
	if n < 1000 {
		n = 1000
	}
	res, err := rpcvalet.RunQueueModel(rpcvalet.QueueModel{
		Queues: 1, ServersPerQueue: 16,
		Service: mustSynthetic(b, "exp").Classes[0].Service,
		Load:    0.8, Warmup: 100, Measure: n, Seed: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.Latency.P99, "p99_ns")
}

func mustSynthetic(b *testing.B, kind string) rpcvalet.Profile {
	b.Helper()
	p, err := rpcvalet.Synthetic(kind)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkSweepParallel measures the harness's parallel sweep machinery:
// sim_mrps aggregates the simulated completions of every point in the sweep
// against the wall-clock of the whole fan-out.
func BenchmarkSweepParallel(b *testing.B) {
	cfg := rpcvalet.Config{
		Params:   rpcvalet.DefaultParams(),
		Workload: rpcvalet.HERD(),
		Warmup:   200,
		Measure:  2000,
		Seed:     5,
	}
	const points = 4
	cap := rpcvalet.CapacityMRPS(cfg.Params, cfg.Workload)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := rpcvalet.Sweep(cfg, rpcvalet.RateGrid(cap, 0.2, 0.9, points), strconv.Itoa(i)); err != nil {
			b.Fatal(err)
		}
	}
	reportSimRate(b, b.N*points*(cfg.Warmup+cfg.Measure))
}
