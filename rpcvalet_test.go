package rpcvalet_test

import (
	"fmt"
	"math"
	"testing"
	"time"

	"rpcvalet"
)

func TestRunFacade(t *testing.T) {
	cfg := rpcvalet.Config{
		Params:   rpcvalet.DefaultParams(),
		Workload: rpcvalet.HERD(),
		RateMRPS: 8,
		Warmup:   500,
		Measure:  8000,
		Seed:     1,
	}
	res, err := rpcvalet.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency.P99 <= 0 || res.ThroughputMRPS <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
}

func TestSweepFacade(t *testing.T) {
	cfg := rpcvalet.Config{
		Params:   rpcvalet.DefaultParams(),
		Workload: rpcvalet.HERD(),
		Warmup:   300,
		Measure:  4000,
		Seed:     2,
	}
	cap := rpcvalet.CapacityMRPS(cfg.Params, cfg.Workload)
	curve, err := rpcvalet.Sweep(cfg, rpcvalet.RateGrid(cap, 0.2, 0.8, 3), "herd")
	if err != nil {
		t.Fatal(err)
	}
	if len(curve.Points) != 3 {
		t.Fatalf("points = %d", len(curve.Points))
	}
	if curve.ThroughputUnderSLO() <= 0 {
		t.Fatal("no point met SLO at moderate load")
	}
}

func TestModesExported(t *testing.T) {
	modes := []rpcvalet.Mode{
		rpcvalet.ModeSingleQueue, rpcvalet.ModeGrouped,
		rpcvalet.ModePartitioned, rpcvalet.ModeSoftware,
	}
	seen := map[string]bool{}
	for _, m := range modes {
		seen[m.String()] = true
	}
	if len(seen) != 4 {
		t.Fatalf("modes collapse: %v", seen)
	}
}

func TestProfilesExported(t *testing.T) {
	if rpcvalet.HERD().Name != "herd" || rpcvalet.Masstree().Name != "masstree" {
		t.Fatal("profile names wrong")
	}
	p, err := rpcvalet.Synthetic("gev")
	if err != nil || math.Abs(p.MeanService()-600) > 6 {
		t.Fatalf("synthetic gev: %v mean=%v", err, p.MeanService())
	}
	if _, err := rpcvalet.Synthetic("nope"); err == nil {
		t.Fatal("unknown synthetic accepted")
	}
}

func TestQueueModelFacade(t *testing.T) {
	res, err := rpcvalet.RunQueueModel(rpcvalet.QueueModel{
		Queues: 1, ServersPerQueue: 16,
		Service: nil, Load: 0.5, Measure: 100,
	})
	if err == nil {
		t.Fatalf("nil service accepted: %+v", res)
	}
}

func TestRegenerateFigure(t *testing.T) {
	opts := rpcvalet.QuickOptions()
	opts.Points = 3
	opts.Measure = 3000
	opts.QGen = 5000
	fig, err := rpcvalet.RegenerateFigure("table1", opts)
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "table1" || len(fig.Tables) == 0 {
		t.Fatalf("figure malformed: %+v", fig)
	}
	if _, err := rpcvalet.RegenerateFigure("nope", opts); err == nil {
		t.Fatal("unknown figure accepted")
	}
	ids := rpcvalet.FigureIDs()
	if len(ids) < 10 {
		t.Fatalf("only %d figures registered", len(ids))
	}
}

func TestRunClusterFacade(t *testing.T) {
	pol, err := rpcvalet.ClusterPolicyByName("jsq2")
	if err != nil {
		t.Fatal(err)
	}
	cfg := rpcvalet.DefaultCluster(4, rpcvalet.HERD(), pol)
	cfg.Measure = 8000
	res, err := rpcvalet.RunCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency.P99 <= 0 || res.ThroughputMRPS <= 0 || res.Policy != "jsq2" {
		t.Fatalf("degenerate result: %+v", res)
	}
	if len(res.NodeCompleted) != 4 || res.Imbalance < 1 {
		t.Fatalf("node accounting wrong: %+v", res)
	}
}

func TestClusterSweepFacade(t *testing.T) {
	pol, err := rpcvalet.ClusterPolicyByName("rr")
	if err != nil {
		t.Fatal(err)
	}
	cfg := rpcvalet.DefaultCluster(2, rpcvalet.HERD(), pol)
	cfg.Warmup, cfg.Measure = 300, 4000
	cap := rpcvalet.ClusterCapacityMRPS(cfg)
	curve, err := rpcvalet.ClusterSweep(cfg, rpcvalet.RateGrid(cap, 0.2, 0.8, 3), "rr")
	if err != nil {
		t.Fatal(err)
	}
	if len(curve.Points) != 3 || curve.Label != "rr" {
		t.Fatalf("curve malformed: %+v", curve)
	}
}

func TestClusterPoliciesExported(t *testing.T) {
	names := rpcvalet.ClusterPolicies()
	if len(names) < 4 {
		t.Fatalf("only %d policies: %v", len(names), names)
	}
	for _, n := range names {
		if _, err := rpcvalet.ClusterPolicyByName(n); err != nil {
			t.Errorf("%s: %v", n, err)
		}
	}
	if _, err := rpcvalet.ClusterPolicyByName("nope"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// TestDispatchPlanAPI exercises the root-level dispatch-plan surface: named
// policies, the plan grammar, JBSQ, and per-node cluster plans.
func TestDispatchPlanAPI(t *testing.T) {
	names := rpcvalet.DispatchPolicies()
	if len(names) != 6 {
		t.Fatalf("policies = %v", names)
	}
	for _, name := range names {
		spec, err := rpcvalet.DispatchPolicyByName(name)
		if err != nil || spec.New == nil {
			t.Fatalf("%s: %+v, %v", name, spec, err)
		}
	}
	if _, err := rpcvalet.DispatchPolicyByName("bogus"); err == nil {
		t.Fatal("unknown policy accepted")
	}

	p := rpcvalet.DefaultParams()
	p.Plan = rpcvalet.JBSQ(2)
	res, err := rpcvalet.Run(rpcvalet.Config{
		Params: p, Workload: rpcvalet.HERD(),
		RateMRPS: 8, Warmup: 200, Measure: 3000, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dispatch != "jbsq2" || res.Latency.Count == 0 {
		t.Fatalf("jbsq2 run: dispatch=%q count=%d", res.Dispatch, res.Latency.Count)
	}

	if _, err := rpcvalet.ParseDispatchPlan("nope"); err == nil {
		t.Fatal("bad plan spec accepted")
	}
	pl, err := rpcvalet.ParseDispatchPlan("2x8:random2")
	if err != nil {
		t.Fatal(err)
	}
	pol, err := rpcvalet.ClusterPolicyByName("jsq2")
	if err != nil {
		t.Fatal(err)
	}
	cfg := rpcvalet.DefaultCluster(2, rpcvalet.HERD(), pol)
	cfg.NodePlans = []*rpcvalet.DispatchPlan{pl, nil}
	cfg.Warmup, cfg.Measure = 200, 3000
	cres, err := rpcvalet.RunCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cres.NodeDispatch) != 2 || cres.NodeDispatch[0] != "2x8:random2" {
		t.Fatalf("NodeDispatch = %v", cres.NodeDispatch)
	}
}

// ExampleRun demonstrates the minimal API path. Determinism of the seeded
// simulation makes the output stable.
func ExampleRun() {
	cfg := rpcvalet.Config{
		Params:   rpcvalet.DefaultParams(),
		Workload: rpcvalet.HERD(),
		RateMRPS: 5,
		Warmup:   500,
		Measure:  5000,
		Seed:     42,
	}
	res, err := rpcvalet.Run(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("mode=%s meets SLO=%v\n", res.Mode, res.MeetsSLO)
	// Output: mode=rpcvalet-1x16 meets SLO=true
}

// TestTransientAPI exercises the transient-telemetry surface end to end
// through the public facade: modulated arrivals, fault injection, duration
// parsing, and the Timeline every Result carries.
func TestTransientAPI(t *testing.T) {
	env, err := rpcvalet.ParseEnvelope("pulse@200us+100us:x2")
	if err != nil {
		t.Fatal(err)
	}
	epoch, err := rpcvalet.ParseDuration("25us")
	if err != nil || epoch != 25*rpcvalet.Microsecond {
		t.Fatalf("ParseDuration: %v %v", epoch, err)
	}
	fault, err := rpcvalet.ParseFault("x1.3,pause@350us+50us")
	if err != nil {
		t.Fatal(err)
	}
	cfg := rpcvalet.Config{
		Params:   rpcvalet.DefaultParams(),
		Workload: rpcvalet.HERD(),
		RateMRPS: 8,
		Arrival:  rpcvalet.ArrivalModulated(rpcvalet.ArrivalPoisson(8), env),
		Warmup:   300,
		Measure:  6000,
		Seed:     3,
		Epoch:    epoch,
		Slowdown: fault.Slowdown,
		Pauses:   fault.Pauses,
	}
	res, err := rpcvalet.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Timeline.EpochNanos != 25000 || len(res.Timeline.Epochs) == 0 {
		t.Fatalf("timeline not populated: %+v", res.Timeline)
	}
	total := 0
	for _, e := range res.Timeline.Epochs {
		total += e.Completions
	}
	if total != res.Completed {
		t.Fatalf("timeline completions %d != %d", total, res.Completed)
	}

	faults, err := rpcvalet.ParseNodeFaults("0:x1.5")
	if err != nil {
		t.Fatal(err)
	}
	pol, err := rpcvalet.ClusterPolicyByName("jsq2")
	if err != nil {
		t.Fatal(err)
	}
	wl, err := rpcvalet.Synthetic("exp")
	if err != nil {
		t.Fatal(err)
	}
	ccfg := rpcvalet.DefaultCluster(2, wl, pol)
	ccfg.Faults = faults
	ccfg.Warmup, ccfg.Measure = 300, 4000
	ccfg.Epoch = epoch
	cres, err := rpcvalet.RunCluster(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cres.Timeline.Epochs) == 0 || len(cres.NodeTimelines) != 2 {
		t.Fatalf("cluster timelines missing: %d agg epochs, %d nodes",
			len(cres.Timeline.Epochs), len(cres.NodeTimelines))
	}
	if cres.NodeFaults[0] != "x1.5" || cres.NodeFaults[1] != "healthy" {
		t.Fatalf("node fault labels = %v", cres.NodeFaults)
	}
	found := false
	for _, id := range rpcvalet.FigureIDs() {
		if id == "transient" {
			found = true
		}
	}
	if !found {
		t.Fatalf("transient figure not in FigureIDs: %v", rpcvalet.FigureIDs())
	}
}

func TestRunLiveFacade(t *testing.T) {
	pl, err := rpcvalet.ParseDispatchPlan("jbsq2")
	if err != nil {
		t.Fatal(err)
	}
	cfg := rpcvalet.LiveConfig{
		Plan:      pl,
		Workload:  rpcvalet.HERD(),
		Workers:   4,
		Emulation: rpcvalet.LiveSleep,
		Duration:  80 * time.Millisecond,
		Seed:      3,
	}
	cfg.RateMRPS = 0.4 * rpcvalet.LiveCapacityMRPS(cfg)
	res, err := rpcvalet.RunLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 || res.Completed+res.Dropped != res.Offered {
		t.Fatalf("live bookkeeping: %+v", res)
	}
	if res.Shape != "jbsq" || res.Workers != 4 {
		t.Fatalf("live shape/workers: %s/%d", res.Shape, res.Workers)
	}
	found := false
	for _, id := range rpcvalet.FigureIDs() {
		if id == "live" {
			found = true
		}
	}
	if !found {
		t.Fatalf("live figure not in FigureIDs: %v", rpcvalet.FigureIDs())
	}
}
