GO ?= go

.PHONY: all build fmt vet test race bench bench-json

all: build test

build:
	$(GO) build ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

test: fmt vet
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

# bench-json emits machine-readable benchmark results (BENCH_*.json) for the
# performance trajectory: the engine's scheduling hot path and the two
# figure-regeneration benches that exercise the dispatch-plan and
# transient-telemetry layers end to end. CI uploads these as artifacts.
bench-json:
	$(GO) test -run='^$$' -bench='^BenchmarkEngineSchedule$$' -benchmem ./internal/sim \
		| $(GO) run ./cmd/benchjson > BENCH_engine.json
	$(GO) test -run='^$$' -bench='^(BenchmarkFigPolicyPlans|BenchmarkFigTransient)$$' -benchtime=1x . \
		| $(GO) run ./cmd/benchjson > BENCH_figures.json
