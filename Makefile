GO ?= go

.PHONY: all build fmt vet test race bench

all: build test

build:
	$(GO) build ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

test: fmt vet
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run='^$$' .
