GO ?= go

.PHONY: all build fmt vet test bench

all: build test

build:
	$(GO) build ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

test: fmt vet
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem -run='^$$' .
