GO ?= go

.PHONY: all build fmt vet lint test race bench bench-json live-smoke obs-smoke shard-smoke

# Pinned so CI and local runs agree on what "clean" means.
STATICCHECK_VERSION = 2025.1.1

all: build test

build:
	$(GO) build ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# lint runs staticcheck when it is on PATH and explains how to get it when it
# isn't (offline builds must not fail for lack of a linter).
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; run:"; \
		echo "  go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)"; \
	fi

test: fmt vet
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run='^$$' ./...

# live-smoke runs the live goroutine runtime's rate-limited smoke tests:
# every queue shape end to end in ~100 ms windows, asserting completion
# counts only, so it stays green on noisy or single-core machines.
live-smoke:
	$(GO) test -short -run 'TestLive' -v ./internal/live

# shard-smoke runs a short sharded figCluster under the race detector: the
# full harness path (budgeted fan-out → sharded cluster.Run → conservative
# pdes rounds) with cross-shard traffic on every policy × mode cell, run
# twice to smoke run-to-run determinism. CI's race job runs it.
shard-smoke:
	$(GO) test -race -run '^TestShardSmoke$$' -v ./internal/core

# obs-smoke proves the observability endpoints end to end: it starts
# rpcvalet-live with -obs, scrapes /metrics and /healthz while the run is in
# flight, and asserts Prometheus text format plus a nonzero completed
# counter. See scripts/obs_smoke.sh.
obs-smoke:
	./scripts/obs_smoke.sh

# bench-json emits machine-readable benchmark results (BENCH_*.json) for the
# performance trajectory: the engine's scheduling hot path, the
# figure-regeneration benches that exercise the dispatch-plan,
# transient-telemetry, cluster, anatomy, and live layers end to end, the
# sharded-engine (nodes × shards) throughput matrix, and the live runtime's
# wall-clock shape comparison. CI uploads these as artifacts.
bench-json:
	$(GO) test -run='^$$' -bench='^BenchmarkEngineSchedule$$' -benchmem ./internal/sim \
		| $(GO) run ./cmd/benchjson > BENCH_engine.json
	$(GO) test -run='^$$' -bench='^(BenchmarkFigPolicyPlans|BenchmarkFigTransient|BenchmarkFigCluster|BenchmarkFigLive|BenchmarkFigAnatomy)$$' -benchtime=1x . \
		| $(GO) run ./cmd/benchjson > BENCH_figures.json
	$(GO) test -run='^$$' -bench='^BenchmarkClusterSharded$$' -benchtime=5x ./internal/cluster \
		| $(GO) run ./cmd/benchjson > BENCH_cluster.json
	$(GO) test -run='^$$' -bench='^BenchmarkLiveShapes$$' -benchtime=1x ./internal/live \
		| $(GO) run ./cmd/benchjson > BENCH_live.json
	{ $(GO) test -run='^$$' -bench='^BenchmarkTraceOverhead$$' -benchmem ./internal/machine; \
	  $(GO) test -run='^$$' -bench='^BenchmarkLiveTraceOverhead$$' -benchtime=1x ./internal/live; } \
		| $(GO) run ./cmd/benchjson > BENCH_obs.json
