GO ?= go

.PHONY: all build fmt vet lint test race bench bench-json bench-diff profile live-smoke obs-smoke shard-smoke rack-smoke hier-smoke

# Pinned so CI and local runs agree on what "clean" means.
STATICCHECK_VERSION = 2025.1.1

all: build test

build:
	$(GO) build ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# lint runs staticcheck when it is on PATH and explains how to get it when it
# isn't (offline builds must not fail for lack of a linter).
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; run:"; \
		echo "  go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)"; \
	fi

test: fmt vet
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run='^$$' ./...

# live-smoke runs the live goroutine runtime's rate-limited smoke tests:
# every queue shape end to end in ~100 ms windows, asserting completion
# counts only, so it stays green on noisy or single-core machines.
live-smoke:
	$(GO) test -short -run 'TestLive' -v ./internal/live

# shard-smoke runs a short sharded figCluster under the race detector: the
# full harness path (budgeted fan-out → sharded cluster.Run → conservative
# pdes rounds) with cross-shard traffic on every policy × mode cell, run
# twice to smoke run-to-run determinism. CI's race job runs it.
shard-smoke:
	$(GO) test -race -run '^TestShardSmoke$$' -v ./internal/core

# rack-smoke runs the rack figure at its full 1000-node width (reduced
# completion counts) under the race detector, generated twice and compared
# cell by cell: the depth-indexed balancer's determinism at the scale that
# motivated it. CI's race job runs it.
rack-smoke:
	$(GO) test -race -run '^TestRackSmoke$$' -v ./internal/core

# hier-smoke runs the two-tier figure at its full 1000-node width (reduced
# completion counts) under the race detector, generated twice and compared
# cell by cell: the global balancer stacked over eight rack balancers —
# including the degraded-rack and rack-failover studies — must stay
# deterministic run to run. CI's race job runs it.
hier-smoke:
	$(GO) test -race -run '^TestHierSmoke$$' -v ./internal/core

# obs-smoke proves the observability endpoints end to end: it starts
# rpcvalet-live with -obs, scrapes /metrics and /healthz while the run is in
# flight, and asserts Prometheus text format plus a nonzero completed
# counter. See scripts/obs_smoke.sh.
obs-smoke:
	./scripts/obs_smoke.sh

# bench-json emits machine-readable benchmark results (BENCH_*.json) for the
# performance trajectory: the engine's scheduling hot path, the
# figure-regeneration benches that exercise the dispatch-plan,
# transient-telemetry, cluster, anatomy, and live layers end to end, the
# sharded-engine (nodes × shards) throughput matrix, the live runtime's
# wall-clock shape comparison, the rack-scale balancer decision engine
# (ns per 1000-node policy pick plus end-to-end 1000-node runs), and the
# two-tier datacenter path (hier figure regeneration plus end-to-end
# 1000-node serial and racks-as-shards runs). CI uploads these as artifacts.
bench-json:
	$(GO) test -run='^$$' -bench='^BenchmarkEngineSchedule$$' -benchmem ./internal/sim \
		| $(GO) run ./cmd/benchjson > BENCH_engine.json
	$(GO) test -run='^$$' -bench='^(BenchmarkFigPolicyPlans|BenchmarkFigTransient|BenchmarkFigCluster|BenchmarkFigLive|BenchmarkFigAnatomy)$$' -benchtime=1x . \
		| $(GO) run ./cmd/benchjson > BENCH_figures.json
	$(GO) test -run='^$$' -bench='^BenchmarkClusterSharded$$' -benchtime=5x ./internal/cluster \
		| $(GO) run ./cmd/benchjson > BENCH_cluster.json
	$(GO) test -run='^$$' -bench='^BenchmarkLiveShapes$$' -benchtime=1x ./internal/live \
		| $(GO) run ./cmd/benchjson > BENCH_live.json
	{ $(GO) test -run='^$$' -bench='^BenchmarkTraceOverhead$$' -benchmem ./internal/machine; \
	  $(GO) test -run='^$$' -bench='^BenchmarkLiveTraceOverhead$$' -benchtime=1x ./internal/live; } \
		| $(GO) run ./cmd/benchjson > BENCH_obs.json
	$(GO) test -run='^$$' -bench='$(HOTPATH_BENCHES)' -benchmem . \
		| $(GO) run ./cmd/benchjson > BENCH_machine.json
	{ $(GO) test -run='^$$' -bench='^BenchmarkPolicyPick$$' -benchmem ./internal/cluster; \
	  $(GO) test -run='^$$' -bench='^BenchmarkClusterRack$$' -benchtime=2x ./internal/cluster; } \
		| $(GO) run ./cmd/benchjson > BENCH_rack.json
	{ $(GO) test -run='^$$' -bench='^BenchmarkFigHier$$' -benchtime=1x .; \
	  $(GO) test -run='^$$' -bench='^BenchmarkClusterHier$$' -benchtime=2x ./internal/cluster; } \
		| $(GO) run ./cmd/benchjson > BENCH_hier.json

# The hot-path benchmark set: steady-state per-request cost (allocs/op reads
# as allocations per simulated request) and simulator throughput (sim_mrps).
HOTPATH_BENCHES = ^(BenchmarkMachineSteadyState|BenchmarkClusterSteadyState|BenchmarkMachineThroughput|BenchmarkSweepParallel)$$

# bench-diff regenerates the hot-path benchmark set and compares it against
# the committed BENCH_machine.json snapshot, flagging any directional metric
# (ns/op, B/op, allocs/op, sim_mrps) that moved past the threshold. Override
# OLD/NEW to diff arbitrary snapshots, THRESHOLD to tune sensitivity.
BENCH_DIFF_OLD ?= BENCH_machine.json
BENCH_DIFF_NEW ?= /tmp/BENCH_machine.new.json
BENCH_DIFF_THRESHOLD ?= 20

bench-diff:
	$(GO) test -run='^$$' -bench='$(HOTPATH_BENCHES)' -benchmem . \
		| $(GO) run ./cmd/benchjson > $(BENCH_DIFF_NEW)
	$(GO) run ./cmd/benchdiff -threshold $(BENCH_DIFF_THRESHOLD) $(BENCH_DIFF_OLD) $(BENCH_DIFF_NEW)
	$(GO) test -run='^$$' -bench='^BenchmarkPolicyPick$$' -benchmem ./internal/cluster \
		| $(GO) run ./cmd/benchjson > /tmp/BENCH_rack.new.json
	$(GO) run ./cmd/benchdiff -threshold $(BENCH_DIFF_THRESHOLD) BENCH_rack.json /tmp/BENCH_rack.new.json
	$(GO) test -run='^$$' -bench='^BenchmarkClusterHier$$' -benchtime=2x ./internal/cluster \
		| $(GO) run ./cmd/benchjson > /tmp/BENCH_hier.new.json
	$(GO) run ./cmd/benchdiff -threshold $(BENCH_DIFF_THRESHOLD) BENCH_hier.json /tmp/BENCH_hier.new.json

# profile captures CPU and heap profiles of the heaviest end-to-end figure
# (figCluster) and prints the top flat-cost functions of each — the data
# behind EXPERIMENTS.md's hot-path anatomy study.
PROFILE_DIR ?= /tmp/rpcvalet-profile

profile:
	mkdir -p $(PROFILE_DIR)
	$(GO) test -run='^$$' -bench='^BenchmarkFigCluster$$' -benchtime=1x \
		-o $(PROFILE_DIR)/rpcvalet.test \
		-cpuprofile $(PROFILE_DIR)/cpu.prof -memprofile $(PROFILE_DIR)/mem.prof .
	$(GO) tool pprof -top -nodecount=10 $(PROFILE_DIR)/cpu.prof
	$(GO) tool pprof -top -nodecount=10 -sample_index=alloc_objects $(PROFILE_DIR)/mem.prof
