// Package rpcvalet is a library-scale reproduction of "RPCValet: NI-Driven
// Tail-Aware Balancing of µs-Scale RPCs" (Daglis, Sutherland, Falsafi —
// ASPLOS 2019).
//
// The paper proposes dispatching incoming RPCs to the cores of a manycore
// server from an on-chip integrated network interface (NI), using real-time
// per-core occupancy to emulate the theoretically optimal single-queue
// system without software synchronization. This package exposes the
// reproduction's full pipeline:
//
//   - a deterministic discrete-event model of the 16-core soNUMA server with
//     Manycore NIs (the paper's evaluation platform), including the native
//     messaging protocol extension (send/replenish), NI dispatchers, the
//     RSS-style partitioned baseline, and the MCS-locked software single
//     queue;
//   - the paper's workload profiles (synthetic fixed/uniform/exponential/GEV,
//     HERD-like, Masstree-like);
//   - the §2.2 queueing-theory models and closed-form validation;
//   - the experiment harness that regenerates every evaluation figure.
//
// # Quick start
//
//	cfg := rpcvalet.Config{
//	    Params:   rpcvalet.DefaultParams(),
//	    Workload: rpcvalet.HERD(),
//	    RateMRPS: 10,
//	    Warmup:   1000,
//	    Measure:  20000,
//	    Seed:     1,
//	}
//	res, err := rpcvalet.Run(cfg)
//	// res.Latency.P99 is the 99th-percentile RPC latency in nanoseconds.
//
// All simulated latencies are virtual-time measurements: the Go runtime
// never contaminates them. Identical seeds produce identical results.
//
// # Arrival processes
//
// Every simulator accepts an optional Arrival field selecting the traffic
// model: Poisson (the default), MMPP2 (bursty), Deterministic (fixed-gap),
// or LognormalGap (heavy-tailed gaps). The compatibility rule is that a nil
// Arrival means Poisson at the configured rate and reproduces byte-identical
// result streams for existing seeds; setting Arrival changes only the shape
// of the traffic, with the mean rate still taken from RateMRPS (or Load for
// queueing models). Build processes with ArrivalByName or the Arrival*
// constructors.
//
// # Dispatch plans
//
// The NI dispatch stage is a policy point (§4.3): the paper's four
// evaluated configurations are canned instances of a declarative
// DispatchPlan — core grouping × dispatch policy × outstanding threshold ×
// hardware-vs-software queue placement. Set Params.Plan to go beyond the
// legacy Mode enum: JBSQ(n) bounded-outstanding dispatch (rpcvalet.JBSQ),
// alternate groupings ("2x8"), and per-dispatcher policies
// ("least-outstanding", "random2", "local", ...). A nil Plan means the
// canned plan for Params.Mode, byte-for-byte reproducing historical result
// streams. Build plans with ParseDispatchPlan or the machine constructors;
// Cluster.NodePlans assigns plans node by node for heterogeneous racks.
//
// # Transients & faults
//
// Every Result carries a Timeline: the run sliced into fixed virtual-time
// epochs, each with its own throughput, latency percentiles, queue depth,
// and utilization — the time-resolved view that makes transients visible.
// Two scenario axes drive them: ArrivalModulated wraps any arrival process
// with a rate Envelope (Step, Pulse, Ramp, SquareWave), and degraded-node
// injection (Config.Slowdown/Pauses on a machine, Cluster.Faults per node)
// models slow or stalling servers. The "transient" figure checks that
// single-queue NI dispatch recovers from a 2× load pulse in fewer epochs
// than the partitioned baseline, and that queue-aware cluster balancing
// widens its advantage when a node degrades.
//
// # Sharded simulation
//
// Cluster runs can execute on parallel engine shards: Cluster.Shards > 1
// partitions the node set into per-shard event wheels, each on its own
// goroutine, plus a balancer shard, all advanced in conservative lockstep
// rounds exactly one Hop wide — the network hop is the lookahead bound, so
// no cross-shard event can take effect inside the round that emitted it.
// Shards ≤ 1 (the zero value) runs the historical single-clock engine,
// byte-identical to every pinned result; sharded runs are themselves
// deterministic for a fixed (Seed, Shards) pair and partition-independent
// across shard counts ≥ 2. Core Options.Shards and the CLIs' -shards flag
// thread the knob through every cluster sweep, with worker budgeting that
// keeps Workers the cap on total goroutines. See DESIGN.md §8.
//
// # Observability
//
// Every runtime can explain its tail request by request. Setting
// Config.TailSamples (or the cluster/live equivalents) retains the K slowest
// requests as Spans — per-request latency decomposed into balancer hop,
// queue wait, dispatch, and service legs, with core/node attribution and the
// queue depth each request arrived into — on Result.TailSpans. A
// TraceRecorder on Config.Trace streams every lifecycle event (sampled 1-in-N
// via TraceSample); tracing is passive, costs zero allocations when disabled,
// and never perturbs the simulated schedule — traced and untraced runs are
// byte-identical. The obs exports serve live runs' counters and latency
// histograms in Prometheus text format (ServeObs: /metrics, /healthz,
// /debug/pprof), and WriteSpansJSONL exports span sets for offline analysis.
// See DESIGN.md §7.
package rpcvalet

import (
	"fmt"
	"io"

	"rpcvalet/internal/arrival"
	"rpcvalet/internal/cluster"
	"rpcvalet/internal/core"
	"rpcvalet/internal/live"
	"rpcvalet/internal/machine"
	"rpcvalet/internal/metrics"
	"rpcvalet/internal/ni"
	"rpcvalet/internal/obs"
	"rpcvalet/internal/queueing"
	"rpcvalet/internal/sim"
	"rpcvalet/internal/trace"
	"rpcvalet/internal/workload"
)

// Mode selects the load-balancing configuration under test (§6 of the
// paper). See the constants below.
type Mode = machine.Mode

// The four evaluated configurations.
const (
	// ModeSingleQueue is RPCValet: NI-driven dispatch of all cores from
	// one queue (Model 1×16).
	ModeSingleQueue = machine.ModeSingleQueue
	// ModeGrouped restricts each NI backend to its mesh row (Model 4×4).
	ModeGrouped = machine.ModeGrouped
	// ModePartitioned is the RSS-style static baseline (Model 16×1).
	ModePartitioned = machine.ModePartitioned
	// ModeSoftware is the MCS-locked software single queue.
	ModeSoftware = machine.ModeSoftware
)

// Params are the architectural parameters of the modeled server.
type Params = machine.Params

// DispatchPlan declaratively describes the NI dispatch architecture: core
// grouping × policy × outstanding threshold × hardware-vs-software queue
// placement. Set it on Params.Plan (it overrides Mode) or per node via
// Cluster.NodePlans. The four legacy modes are canned plans; JBSQ and
// ParseDispatchPlan build the rest.
type DispatchPlan = machine.Plan

// DispatchPolicy selects which available core a dispatcher hands the head
// message to — the paper's "sophisticated, even microcoded, policies" hook.
// Implement it directly, or name a built-in via DispatchPolicyByName.
type DispatchPolicy = ni.Policy

// DispatchPolicySpec names a dispatch policy and builds a fresh,
// deterministically seeded instance per dispatcher.
type DispatchPolicySpec = ni.Spec

// DispatchPolicies lists the built-in dispatch-policy names in report
// order: first-available, round-robin, least-outstanding,
// least-outstanding-rr, random2 (randomN for any N ≥ 2), local.
func DispatchPolicies() []string { return append([]string(nil), ni.PolicyNames...) }

// DispatchPolicyByName resolves a built-in dispatch-policy name.
func DispatchPolicyByName(name string) (DispatchPolicySpec, error) { return ni.SpecByName(name) }

// ParseDispatchPlan builds a plan from the compact spec grammar shared with
// the CLIs' -dispatch flags: "1x16" | "4x4" | "16x1" | "sw" | "jbsqN" |
// "GxM", optionally suffixed ":policy" (e.g. "1x16:least-outstanding",
// "2x8:random2").
func ParseDispatchPlan(spec string) (*DispatchPlan, error) { return machine.ParsePlan(spec) }

// PlanForMode returns the canned plan reproducing a legacy Mode,
// byte-for-byte.
func PlanForMode(m Mode) (*DispatchPlan, error) { return machine.PlanForMode(m) }

// JBSQ returns the nanoPU-style JBSQ(n) plan: one shared queue, at most n
// outstanding requests per core, shortest-bounded-queue arbitration. JBSQ(1)
// is the strict single-queue ideal (with the dispatch round-trip bubble);
// n=2 matches the paper's default threshold.
func JBSQ(n int) *DispatchPlan { return machine.PlanJBSQ(n) }

// DefaultParams returns the paper-calibrated parameter set (Table 1 plus
// the calibrated NI/core costs documented in DESIGN.md).
func DefaultParams() Params { return machine.Defaults() }

// Config describes one machine simulation.
type Config = machine.Config

// Result is the measured outcome of one simulation.
type Result = machine.Result

// Run simulates one configuration and returns its measurements.
func Run(cfg Config) (Result, error) { return machine.Run(cfg) }

// Profile describes a workload: request classes, sizes, and SLO.
type Profile = workload.Profile

// HERD returns the HERD-like key-value-store profile (Fig 6b; mean 330 ns).
func HERD() Profile { return workload.HERD() }

// Masstree returns the Masstree-like profile: 99% gets (mean 1.25 µs) and 1%
// scans (60–120 µs), with a 12.5 µs SLO on gets (Fig 6c, §6.1).
func Masstree() Profile { return workload.Masstree() }

// Synthetic returns one of the §5 synthetic profiles: "fixed", "uniform",
// "exp", or "gev" — a 300 ns base plus a 300 ns (mean) distributed extra.
func Synthetic(kind string) (Profile, error) { return workload.Synthetic(kind) }

// ArrivalProcess generates the interarrival gaps of an open-loop traffic
// stream. Set it on Config.Arrival, Cluster.Arrival, or QueueModel.Arrival
// to replace the default Poisson stream; the process's shape is preserved
// while its mean rate follows the configuration's RateMRPS (or Load).
type ArrivalProcess = arrival.Process

// ArrivalKinds lists the built-in arrival process names in report order:
// "poisson", "det", "mmpp2", "lognormal".
func ArrivalKinds() []string { return append([]string(nil), arrival.Names...) }

// ArrivalByName builds a named arrival process at the given mean rate with
// default shape parameters. See ArrivalKinds.
func ArrivalByName(name string, rateMRPS float64) (ArrivalProcess, error) {
	return arrival.ByName(name, rateMRPS)
}

// ArrivalPoisson returns the memoryless default arrival process at rateMRPS.
func ArrivalPoisson(rateMRPS float64) ArrivalProcess { return arrival.PoissonAtMRPS(rateMRPS) }

// ArrivalDeterministic returns fixed-gap (D/·/·) arrivals at rateMRPS.
func ArrivalDeterministic(rateMRPS float64) ArrivalProcess {
	return arrival.DeterministicAtMRPS(rateMRPS)
}

// ArrivalMMPP2 returns a two-state Markov-modulated Poisson process with
// overall mean rate rateMRPS, burst rate burstRatio times the calm rate, and
// the given mean state dwells in nanoseconds.
func ArrivalMMPP2(rateMRPS, burstRatio, calmDwellNanos, burstDwellNanos float64) ArrivalProcess {
	return arrival.NewMMPP2(rateMRPS, burstRatio, calmDwellNanos, burstDwellNanos)
}

// ArrivalLognormal returns heavy-tailed lognormal interarrival gaps with
// mean rate rateMRPS and the given sigma (gap CV = sqrt(e^sigma² − 1)).
func ArrivalLognormal(rateMRPS, sigma float64) ArrivalProcess {
	return arrival.LognormalAtMRPS(rateMRPS, sigma)
}

// Duration is a span of virtual time in integer picoseconds — the type of
// every duration-valued config field (Epoch, MaxSimTime, Cluster.Hop,
// Pause windows).
type Duration = sim.Duration

// Virtual-time units for duration-valued config fields.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
)

// ParseDuration parses a virtual-time span with an optional unit suffix:
// "500ns", "50us", "1.5ms", "2s", or a bare nanosecond count.
func ParseDuration(s string) (Duration, error) { return sim.ParseDuration(s) }

// Envelope is a deterministic rate-modulation profile over virtual time — a
// factor multiplying a base arrival process's instantaneous rate. Build one
// with EnvelopeStep/Pulse/Ramp/SquareWave or ParseEnvelope, then wrap any
// arrival process with ArrivalModulated.
type Envelope = arrival.Envelope

// ArrivalModulated wraps base with a rate envelope: the traffic's shape (gap
// CV, burst structure) is preserved while its instantaneous rate follows
// base-rate × envelope factor. Config.RateMRPS keeps meaning the factor-1
// rate, so sweeps re-rate the base as usual.
func ArrivalModulated(base ArrivalProcess, env Envelope) ArrivalProcess {
	return arrival.NewModulated(base, env)
}

// EnvelopeStep holds factor 1 until atNanos, then factor forever — a load
// step.
func EnvelopeStep(atNanos, factor float64) Envelope { return arrival.NewStep(atNanos, factor) }

// EnvelopePulse holds factor over [startNanos, startNanos+durNanos) — a
// bounded overload burst.
func EnvelopePulse(startNanos, durNanos, factor float64) Envelope {
	return arrival.NewPulse(startNanos, durNanos, factor)
}

// EnvelopeRamp interpolates from 1× to factor× over durNanos starting at
// startNanos, holding factor afterward.
func EnvelopeRamp(startNanos, durNanos, factor float64) Envelope {
	return arrival.NewRamp(startNanos, durNanos, factor)
}

// EnvelopeSquareWave alternates factor (for highNanos at the start of each
// period) with 1 — sustained periodic bursting.
func EnvelopeSquareWave(periodNanos, highNanos, factor float64) Envelope {
	return arrival.NewSquareWave(periodNanos, highNanos, factor)
}

// ParseEnvelope parses the CLI -modulate grammar: "step@400us:x2",
// "pulse@400us+200us:x2", "ramp@100us+500us:x3", "square@200us/50us:x2.5".
func ParseEnvelope(spec string) (Envelope, error) { return arrival.ParseEnvelope(spec) }

// Timeline is the epoch-sliced, time-resolved view every Result now carries:
// per-epoch throughput, latency and wait percentiles, queue depth, and
// utilization over the whole run.
type Timeline = metrics.Timeline

// EpochStats is one Timeline slice.
type EpochStats = metrics.EpochStats

// Pause is a stall window: a core beginning work inside it stalls until the
// window ends (a GC pause or power event). Set on Config.Pauses or a
// cluster NodeFault.
type Pause = machine.Pause

// Fault bundles one machine's degradation (service slowdown + pauses);
// ParseFault reads the "-degrade" grammar ("x1.5", "pause@200us+100us").
type Fault = machine.Fault

// ParseFault parses the single-machine -degrade grammar.
func ParseFault(spec string) (Fault, error) { return machine.ParseFault(spec) }

// NodeFault assigns one cluster node a fault. Set on Cluster.Faults.
type NodeFault = cluster.NodeFault

// ParseNodeFaults parses the cluster -degrade grammar: semicolon-separated
// "SCOPE:FAULT" entries where a scope is a node index or "rackR" for a whole
// rack (hierarchical runs), e.g. "0:x1.5;3:pause@500us+100us" or
// "rack0:pause@1ms+500us".
func ParseNodeFaults(spec string) ([]NodeFault, error) { return cluster.ParseFaults(spec) }

// Curve is a measured latency-throughput series for one configuration.
type Curve = core.Curve

// CurvePoint is one point of a Curve.
type CurvePoint = core.CurvePoint

// Sweep runs cfg at each offered rate (in MRPS) and returns the curve.
// Points run concurrently on up to NumCPU workers; results are deterministic
// for a given seed regardless of the worker count.
func Sweep(cfg Config, ratesMRPS []float64, label string) (Curve, error) {
	return core.MachineSweep(cfg, ratesMRPS, label, 0)
}

// SweepWorkers is Sweep with an explicit cap on concurrently running
// simulations (0 = NumCPU).
func SweepWorkers(cfg Config, ratesMRPS []float64, label string, workers int) (Curve, error) {
	return core.MachineSweep(cfg, ratesMRPS, label, workers)
}

// CapacityMRPS estimates the configuration's saturation throughput.
func CapacityMRPS(p Params, wl Profile) float64 { return core.CapacityMRPS(p, wl) }

// RateGrid builds n offered-load points spanning lo..hi fractions of a
// capacity estimate, for use with Sweep.
func RateGrid(capacity, lo, hi float64, n int) []float64 {
	return core.RateGrid(capacity, lo, hi, n)
}

// Cluster describes a rack-scale simulation: N independent server models
// sharing one virtual clock behind a front-end balancer that routes an
// aggregate Poisson arrival stream node by node, charging each RPC a network
// hop. Set Shards > 1 to run the node set on parallel per-shard engines
// synchronized conservatively at the hop (see "Sharded simulation" above).
// Set Racks >= 1 (with GlobalPolicy and GlobalHop) to stack a second
// dispatch tier: a global balancer routing over per-rack balancers by rack
// aggregate queue depth — the two-tier datacenter topology. One rack with a
// zero global hop reproduces the flat cluster byte-for-byte. See
// DefaultCluster for a ready-made starting point.
type Cluster = cluster.Config

// ClusterResult is the measured outcome of one cluster run.
type ClusterResult = cluster.Result

// ClusterPolicy routes RPCs to nodes at the cluster front end. Built-ins
// (random, round-robin, JSQ(d), bounded-load) come from ClusterPolicyByName;
// custom policies implement the interface directly.
type ClusterPolicy = cluster.Policy

// ClusterCurve is a measured latency-vs-load series for one cluster
// configuration.
type ClusterCurve = cluster.Curve

// ClusterPoint is one point of a ClusterCurve.
type ClusterPoint = cluster.Point

// ClusterPolicyByName builds a fresh balancing policy: "random", "rr",
// "jsqD" for any d ≥ 2 (e.g. "jsq2"), "jsqfull" (whole-cluster JSQ, served
// by the balancer's depth index at O(N/64) per decision), or "bounded".
func ClusterPolicyByName(name string) (ClusterPolicy, error) {
	return cluster.PolicyByName(name)
}

// ClusterPolicies lists the canonical policy names in report order.
func ClusterPolicies() []string { return append([]string(nil), cluster.PolicyNames...) }

// DefaultCluster builds a cluster of n paper-default servers serving wl
// behind policy, with a 500 ns balancer→node hop, 70% of the estimated
// aggregate capacity offered, and measurement sizing that matches the
// single-node quick start. Override fields as needed before RunCluster —
// in particular, set Arrival (e.g. via ArrivalByName) to drive the cluster
// with non-Poisson traffic at the same aggregate rate.
func DefaultCluster(n int, wl Profile, policy ClusterPolicy) Cluster {
	cfg := Cluster{
		Nodes:   n,
		Node:    machine.Config{Params: machine.Defaults(), Workload: wl},
		Policy:  policy,
		Hop:     500 * sim.Nanosecond,
		Warmup:  1000,
		Measure: 20000,
		Seed:    1,
	}
	cfg.RateMRPS = 0.7 * ClusterCapacityMRPS(cfg)
	return cfg
}

// RunCluster simulates one cluster configuration and returns its
// measurements. Identical configurations produce identical results.
func RunCluster(cfg Cluster) (ClusterResult, error) { return cluster.Run(cfg) }

// ClusterSweep runs cfg at each aggregate offered rate (in MRPS) and returns
// the curve. Points run concurrently on up to NumCPU workers; results are
// deterministic for a given seed regardless of the worker count.
func ClusterSweep(cfg Cluster, ratesMRPS []float64, label string) (ClusterCurve, error) {
	return core.ClusterSweep(cfg, ratesMRPS, label, 0)
}

// ClusterSweepWorkers is ClusterSweep with an explicit cap on concurrently
// running simulations (0 = NumCPU).
func ClusterSweepWorkers(cfg Cluster, ratesMRPS []float64, label string, workers int) (ClusterCurve, error) {
	return core.ClusterSweep(cfg, ratesMRPS, label, workers)
}

// ClusterCapacityMRPS estimates the cluster's aggregate saturation
// throughput: node count × single-node capacity.
func ClusterCapacityMRPS(cfg Cluster) float64 { return core.ClusterCapacityMRPS(cfg) }

// LiveConfig describes one run of the live goroutine runtime: the dispatch
// plan's queue shape executed with real goroutines on wall-clock time,
// serving calibrated spin-work (or timer-sleep, on oversubscribed hosts)
// service times synthesized from a workload Profile, under an open-loop load
// generator. See internal/live's package documentation and DESIGN.md §6 for
// what wall-clock measurements do and do not validate.
type LiveConfig = live.Config

// LiveResult is the measured outcome of one live run, in the same shapes the
// simulator results use (stats.Summary percentiles, a metrics.Timeline).
type LiveResult = live.Result

// LiveEmulation selects how a sampled service time occupies a live worker:
// calibrated spin-work or a timer sleep.
type LiveEmulation = live.Emulation

// The live service-emulation modes.
const (
	// LiveAuto picks spin when the host has two cores beyond the worker
	// count, else sleep.
	LiveAuto = live.EmulationAuto
	// LiveSpin burns calibrated busy-work: service genuinely occupies a CPU.
	LiveSpin = live.EmulationSpin
	// LiveSleep parks the goroutine on a timer: queueing stays wall-clock
	// real while service consumes no CPU (the only honest option when
	// workers outnumber cores).
	LiveSleep = live.EmulationSleep
)

// RunLive executes one live configuration — real goroutines, wall-clock
// time — and returns its measurements. The offered schedule (arrivals,
// classes, service draws) is deterministic in the seed; the measured
// latencies are not.
func RunLive(cfg LiveConfig) (LiveResult, error) { return live.Run(cfg) }

// LiveCapacityMRPS estimates the live configuration's saturation throughput:
// workers over the scaled mean service time.
func LiveCapacityMRPS(cfg LiveConfig) float64 { return live.CapacityMRPS(cfg) }

// Span is the end-to-end anatomy of one request: its lifecycle milestones
// (balancer receive, forward, arrival, dispatch, service start, completion)
// with derived legs (HopNs, QueueWaitNs, DispatchNs, ServiceNs, WaitShare)
// and attribution (node, core, queue depth at arrival). Unobserved
// milestones are TraceUnset; fields a runtime cannot measure stay that way
// (the live runtime has no dispatch timestamp, single-machine runs have no
// balancer phases).
type Span = trace.Span

// TraceEvent is one request-lifecycle milestone emitted by a simulator or
// reconstructed by the live runtime.
type TraceEvent = trace.Event

// TracePhase names a lifecycle milestone; phases order causally via Rank.
type TracePhase = trace.Phase

// The request-lifecycle phases, in causal order.
const (
	TraceBalancerRecv = trace.PhaseBalancerRecv
	TraceForward      = trace.PhaseForward
	TraceArrive       = trace.PhaseArrive
	TraceDispatch     = trace.PhaseDispatch
	TraceStart        = trace.PhaseStart
	TraceComplete     = trace.PhaseComplete
)

// TraceUnset marks a span milestone that was never observed.
const TraceUnset = trace.Unset

// TraceRecorder consumes lifecycle events. Set one on Config.Trace,
// Cluster.Trace, or LiveConfig.Trace; thin the stream with the matching
// TraceSample field (1-in-N by request ID).
type TraceRecorder = trace.Recorder

// TraceFunc adapts a function to a TraceRecorder.
type TraceFunc = trace.Func

// TraceBuffer is a bounded ring of the most recent trace events.
type TraceBuffer = trace.Buffer

// NewTraceBuffer builds a trace ring holding the last capacity events.
func NewTraceBuffer(capacity int) *TraceBuffer { return trace.NewBuffer(capacity) }

// TraceCollector assembles a full event stream into completed Spans.
type TraceCollector = trace.Collector

// NewTraceCollector builds an empty span collector.
func NewTraceCollector() *TraceCollector { return trace.NewCollector() }

// AssembleSpans folds an event slice into Spans, one per request, in
// first-seen order.
func AssembleSpans(events []TraceEvent) []Span { return trace.Spans(events) }

// SortSpansSlowestFirst orders spans by descending end-to-end latency
// (request ID breaks ties deterministically).
func SortSpansSlowestFirst(spans []Span) { trace.SortSlowestFirst(spans) }

// ObsRegistry holds named Prometheus-style instruments (counters, gauges,
// latency histograms) and writes them in text exposition format v0.0.4.
type ObsRegistry = obs.Registry

// NewObsRegistry builds an empty instrument registry.
func NewObsRegistry() *ObsRegistry { return obs.NewRegistry() }

// ObsLabels are the label set attached to an instrument.
type ObsLabels = obs.Labels

// ObsRunMetrics bundles the standard per-run instruments (offered /
// completed / dropped counters, inflight gauge, latency and wait
// histograms). Set it on LiveConfig.Obs to have a live run feed them while
// serving.
type ObsRunMetrics = obs.RunMetrics

// NewObsRunMetrics registers the standard run instruments under the given
// labels (e.g. the dispatch plan).
func NewObsRunMetrics(reg *ObsRegistry, labels ObsLabels) *ObsRunMetrics {
	return obs.NewRunMetrics(reg, labels)
}

// ObsServer is a live observability HTTP server.
type ObsServer = obs.Server

// ServeObs serves /metrics (Prometheus text format), /healthz, and
// /debug/pprof on addr. A nil healthz reports healthy; a non-nil one turns
// errors into 503s. Close the returned server when done.
func ServeObs(addr string, reg *ObsRegistry, healthz func() error) (*ObsServer, error) {
	return obs.Serve(addr, reg, healthz)
}

// WriteSpansJSONL writes spans one JSON object per line — the stable
// offline-analysis export (unset milestones encode as -1).
func WriteSpansJSONL(w io.Writer, spans []Span) error { return obs.WriteSpansJSONL(w, spans) }

// QueueModel describes a theoretical Q×U queueing simulation (§2.2).
type QueueModel = queueing.Config

// QueueResult is the outcome of a QueueModel run.
type QueueResult = queueing.Result

// RunQueueModel simulates a theoretical queueing system.
func RunQueueModel(cfg QueueModel) (QueueResult, error) { return queueing.Run(cfg) }

// Figure is the regenerated data for one paper figure or table.
type Figure = core.Figure

// Options scales figure regeneration.
type Options = core.Options

// DefaultOptions sizes runs for full figure regeneration.
func DefaultOptions() Options { return core.DefaultOptions() }

// QuickOptions sizes runs for fast, noisier regeneration.
func QuickOptions() Options { return core.QuickOptions() }

// FigureIDs lists the regenerable figures in presentation order.
func FigureIDs() []string { return append([]string(nil), core.FigureIDs...) }

// RegenerateFigure reproduces one paper figure ("2a", "7c", "table1", ...)
// at the given scale.
func RegenerateFigure(id string, opts Options) (Figure, error) {
	gen, ok := core.Figures[id]
	if !ok {
		return Figure{}, fmt.Errorf("rpcvalet: unknown figure %q", id)
	}
	return gen(opts)
}
