package noc

import (
	"testing"
	"testing/quick"

	"rpcvalet/internal/sim"
)

func TestDefaultMatchesTable1(t *testing.T) {
	m := Default()
	if m.Width != 4 || m.Height != 4 || m.CyclesPerHop != 3 || m.LinkBytes != 16 || m.FreqGHz != 2 {
		t.Fatalf("default mesh %+v does not match Table 1", m)
	}
	if m.Tiles() != 16 {
		t.Fatalf("tiles = %d", m.Tiles())
	}
	// One hop = 3 cycles @ 2GHz = 1.5ns.
	if got := m.HopLatency(); got != sim.FromNanos(1.5) {
		t.Fatalf("hop latency = %v, want 1.5ns", got)
	}
	if m.MaxHops() != 6 {
		t.Fatalf("diameter = %d, want 6", m.MaxHops())
	}
}

func TestTileCoordRoundTrip(t *testing.T) {
	m := Default()
	for i := 0; i < m.Tiles(); i++ {
		if got := m.TileIndex(m.TileCoord(i)); got != i {
			t.Fatalf("round trip %d -> %d", i, got)
		}
	}
}

func TestTileCoordPanics(t *testing.T) {
	m := Default()
	for _, bad := range []int{-1, 16, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("TileCoord(%d) did not panic", bad)
				}
			}()
			m.TileCoord(bad)
		}()
	}
}

func TestTileIndexPanics(t *testing.T) {
	m := Default()
	defer func() {
		if recover() == nil {
			t.Error("TileIndex outside mesh did not panic")
		}
	}()
	m.TileIndex(Coord{X: 4, Y: 0})
}

func TestHops(t *testing.T) {
	m := Default()
	cases := []struct {
		a, b Coord
		want int
	}{
		{Coord{0, 0}, Coord{0, 0}, 0},
		{Coord{0, 0}, Coord{1, 0}, 1},
		{Coord{0, 0}, Coord{3, 3}, 6},
		{Coord{2, 1}, Coord{0, 3}, 4},
	}
	for _, c := range cases {
		if got := m.Hops(c.a, c.b); got != c.want {
			t.Errorf("Hops(%+v,%+v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestHopsSymmetric(t *testing.T) {
	m := Default()
	f := func(a1, a2, b1, b2 uint8) bool {
		a := Coord{int(a1 % 4), int(a2 % 4)}
		b := Coord{int(b1 % 4), int(b2 % 4)}
		return m.Hops(a, b) == m.Hops(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: hop distance obeys the triangle inequality (it's a metric).
func TestHopsTriangle(t *testing.T) {
	m := Default()
	f := func(p [6]uint8) bool {
		a := Coord{int(p[0] % 4), int(p[1] % 4)}
		b := Coord{int(p[2] % 4), int(p[3] % 4)}
		c := Coord{int(p[4] % 4), int(p[5] % 4)}
		return m.Hops(a, c) <= m.Hops(a, b)+m.Hops(b, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLatency(t *testing.T) {
	m := Default()
	a, b := Coord{0, 0}, Coord{3, 0}
	// 3 hops × 3 cycles + (64/16 - 1) serialization cycles = 12 cycles = 6ns.
	if got := m.Latency(a, b, 64); got != sim.FromNanos(6) {
		t.Fatalf("latency = %v, want 6ns", got)
	}
	// Tiny control message: serialization is a single flit.
	if got := m.Latency(a, b, 8); got != sim.FromNanos(4.5) {
		t.Fatalf("control latency = %v, want 4.5ns", got)
	}
	// Zero-byte counts as one flit.
	if got := m.Latency(a, b, 0); got != sim.FromNanos(4.5) {
		t.Fatalf("empty latency = %v, want 4.5ns", got)
	}
}

func TestLatencyMonotoneInSize(t *testing.T) {
	m := Default()
	a, b := Coord{0, 0}, Coord{2, 2}
	prev := sim.Duration(0)
	for size := 0; size <= 512; size += 16 {
		l := m.Latency(a, b, size)
		if l < prev {
			t.Fatalf("latency decreased at size %d", size)
		}
		prev = l
	}
}
