// Package noc models the on-chip interconnect of the simulated manycore
// server: a 2D mesh with dimension-ordered routing, per Table 1 of the paper
// (16 B links, 3 cycles/hop, 2 GHz).
//
// The model is first-order: latency is hop count × per-hop delay plus link
// serialization for the payload. This is the cost RPCValet's paper argues is
// negligible for the NI-backend→NI-dispatcher indirection ("a couple of
// on-chip interconnect hops, adding just a few ns"); the ablation bench
// measures exactly that sensitivity.
package noc

import (
	"fmt"

	"rpcvalet/internal/sim"
)

// Coord is a tile position on the mesh.
type Coord struct{ X, Y int }

// Mesh describes a W×H tiled mesh interconnect.
type Mesh struct {
	Width, Height int
	CyclesPerHop  int     // router + link traversal per hop
	LinkBytes     int     // link width; one flit per cycle
	FreqGHz       float64 // clock frequency
}

// Default returns the paper's Table 1 mesh: 4×4 tiles, 16-byte links,
// 3 cycles/hop at 2 GHz.
func Default() Mesh {
	return Mesh{Width: 4, Height: 4, CyclesPerHop: 3, LinkBytes: 16, FreqGHz: 2}
}

// Tiles returns the number of tiles in the mesh.
func (m Mesh) Tiles() int { return m.Width * m.Height }

// TileCoord maps a tile index (row-major) to its coordinate. It panics on an
// out-of-range index: tile identity errors are wiring bugs, not run-time
// conditions.
func (m Mesh) TileCoord(tile int) Coord {
	if tile < 0 || tile >= m.Tiles() {
		panic(fmt.Sprintf("noc: tile %d out of range [0,%d)", tile, m.Tiles()))
	}
	return Coord{X: tile % m.Width, Y: tile / m.Width}
}

// TileIndex maps a coordinate back to its row-major tile index.
func (m Mesh) TileIndex(c Coord) int {
	if c.X < 0 || c.X >= m.Width || c.Y < 0 || c.Y >= m.Height {
		panic(fmt.Sprintf("noc: coord %+v outside %dx%d mesh", c, m.Width, m.Height))
	}
	return c.Y*m.Width + c.X
}

// Hops returns the dimension-ordered (XY) routing distance between tiles.
func (m Mesh) Hops(a, b Coord) int {
	dx := a.X - b.X
	if dx < 0 {
		dx = -dx
	}
	dy := a.Y - b.Y
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// cycle returns the duration of n cycles at the mesh clock.
func (m Mesh) cycles(n int) sim.Duration {
	return sim.FromNanos(float64(n) / m.FreqGHz)
}

// HopLatency returns the latency of a single hop.
func (m Mesh) HopLatency() sim.Duration { return m.cycles(m.CyclesPerHop) }

// Latency returns the delivery latency for a payload of the given size
// between two tiles: routing (hops × cycles/hop) plus serialization
// (one flit per cycle beyond the first, which overlaps with routing).
func (m Mesh) Latency(a, b Coord, payloadBytes int) sim.Duration {
	hops := m.Hops(a, b)
	flits := (payloadBytes + m.LinkBytes - 1) / m.LinkBytes
	if flits < 1 {
		flits = 1
	}
	return m.cycles(hops*m.CyclesPerHop + (flits - 1))
}

// MaxHops returns the mesh diameter (corner to corner).
func (m Mesh) MaxHops() int { return m.Width - 1 + m.Height - 1 }
