package sonuma

import "fmt"

// SendSlot is the bookkeeping record for one outstanding outbound message
// (§4.2 "Buffer provisioning"): a valid bit, a pointer to the payload in
// local memory (abstracted to an opaque token here), and the payload size.
type SendSlot struct {
	Valid   bool
	Payload uint64 // opaque local-buffer token; the simulator doesn't move real bytes
	Size    int
}

// SendBuffer is a node's send-side bookkeeping: N sets of S slots, one set
// per destination node. A slot is acquired when a core initiates a send and
// released when the destination's replenish arrives.
type SendBuffer struct {
	cfg   DomainConfig
	slots [][]SendSlot // [dest][slot]
	used  []int        // per-destination count of valid slots
}

// NewSendBuffer allocates the send-side slot bookkeeping for a domain.
func NewSendBuffer(cfg DomainConfig) (*SendBuffer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	b := &SendBuffer{
		cfg:   cfg,
		slots: make([][]SendSlot, cfg.Nodes),
		used:  make([]int, cfg.Nodes),
	}
	for i := range b.slots {
		b.slots[i] = make([]SendSlot, cfg.Slots)
	}
	return b, nil
}

// Acquire claims a free slot toward dest for a message of the given size.
// It reports false when all S slots toward dest are in flight — the
// end-to-end flow-control condition that back-pressures senders.
func (b *SendBuffer) Acquire(dest NodeID, payload uint64, size int) (int, bool) {
	if int(dest) < 0 || int(dest) >= b.cfg.Nodes {
		panic(fmt.Sprintf("sonuma: Acquire dest %d outside domain", dest))
	}
	if size > b.cfg.MaxMsgSize {
		panic(fmt.Sprintf("sonuma: Acquire size %d exceeds max inline %d; use rendezvous", size, b.cfg.MaxMsgSize))
	}
	set := b.slots[dest]
	for i := range set {
		if !set[i].Valid {
			set[i] = SendSlot{Valid: true, Payload: payload, Size: size}
			b.used[dest]++
			return i, true
		}
	}
	return 0, false
}

// Release frees a slot toward dest — the effect of an arriving replenish,
// which in the protocol is a remote write resetting the slot's valid bit.
// Releasing a slot that is not in flight is a protocol violation and
// returns an error.
func (b *SendBuffer) Release(dest NodeID, slot int) error {
	if int(dest) < 0 || int(dest) >= b.cfg.Nodes {
		return fmt.Errorf("sonuma: Release dest %d outside domain", dest)
	}
	if slot < 0 || slot >= b.cfg.Slots {
		return fmt.Errorf("sonuma: Release slot %d outside [0,%d)", slot, b.cfg.Slots)
	}
	if !b.slots[dest][slot].Valid {
		return fmt.Errorf("sonuma: Release of already-free slot %d toward node %d", slot, dest)
	}
	b.slots[dest][slot] = SendSlot{}
	b.used[dest]--
	return nil
}

// InFlight reports the number of outstanding sends toward dest.
func (b *SendBuffer) InFlight(dest NodeID) int { return b.used[dest] }

// Slot returns a copy of the bookkeeping record for inspection.
func (b *SendBuffer) Slot(dest NodeID, slot int) SendSlot { return b.slots[dest][slot] }

// recvState tracks assembly of one in-flight inbound message.
type recvState struct {
	busy     bool   // payload present, not yet freed by replenish
	counter  int    // packets received so far (the slot's counter field)
	expected int    // total packets, from the packet headers
	src      NodeID // sending node
	size     int    // message payload size
}

// ReceiveBuffer is a node's receive-side state: N×S slots, each with the
// counter field the NI uses to detect that all packets of a send have
// arrived (§4.2 "Send operation").
type ReceiveBuffer struct {
	cfg   DomainConfig
	slots []recvState
}

// NewReceiveBuffer allocates receive-side state for a domain.
func NewReceiveBuffer(cfg DomainConfig) (*ReceiveBuffer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &ReceiveBuffer{cfg: cfg, slots: make([]recvState, cfg.TotalSlots())}, nil
}

// OnPacket records the arrival of one packet of a send targeting the given
// global receive-slot index. totalPackets is carried in every packet header
// (the paper's network-layer extension). It returns complete=true when the
// fetch-and-increment brings the counter up to the message's packet count.
//
// Protocol violations — a packet for a slot still occupied by a fully
// received, unprocessed message, or headers disagreeing about the message —
// are returned as errors so the caller can surface corrupted traffic
// instead of silently miscounting.
func (b *ReceiveBuffer) OnPacket(index int, src NodeID, size, totalPackets int) (complete bool, err error) {
	if index < 0 || index >= len(b.slots) {
		return false, fmt.Errorf("sonuma: packet targets slot %d outside [0,%d)", index, len(b.slots))
	}
	if totalPackets <= 0 {
		return false, fmt.Errorf("sonuma: packet header claims %d total packets", totalPackets)
	}
	st := &b.slots[index]
	if st.busy && st.counter == st.expected {
		return false, fmt.Errorf("sonuma: packet for slot %d which holds an unconsumed message", index)
	}
	if st.counter == 0 {
		// First packet of a new message claims the slot.
		st.busy = true
		st.expected = totalPackets
		st.src = src
		st.size = size
	} else if st.expected != totalPackets || st.src != src || st.size != size {
		return false, fmt.Errorf("sonuma: slot %d header mismatch: have (%d pkts, src %d, %dB), got (%d, %d, %dB)",
			index, st.expected, st.src, st.size, totalPackets, src, size)
	}
	st.counter++ // the NI pipeline's fetch-and-increment
	return st.counter == st.expected, nil
}

// Message returns the (src, size) recorded for a fully assembled message.
// It errors if the slot does not hold a complete message.
func (b *ReceiveBuffer) Message(index int) (NodeID, int, error) {
	if index < 0 || index >= len(b.slots) {
		return 0, 0, fmt.Errorf("sonuma: Message slot %d out of range", index)
	}
	st := &b.slots[index]
	if !st.busy || st.counter != st.expected {
		return 0, 0, fmt.Errorf("sonuma: slot %d does not hold a complete message", index)
	}
	return st.src, st.size, nil
}

// Free releases a receive slot after the serving core has processed the
// message and issued its replenish, resetting the counter for reuse.
func (b *ReceiveBuffer) Free(index int) error {
	if index < 0 || index >= len(b.slots) {
		return fmt.Errorf("sonuma: Free slot %d out of range", index)
	}
	st := &b.slots[index]
	if !st.busy {
		return fmt.Errorf("sonuma: Free of idle slot %d", index)
	}
	*st = recvState{}
	return nil
}

// Busy reports whether a slot currently holds an in-flight or unconsumed
// message.
func (b *ReceiveBuffer) Busy(index int) bool { return b.slots[index].busy }

// InUse counts slots currently busy, for occupancy accounting in tests.
func (b *ReceiveBuffer) InUse() int {
	n := 0
	for i := range b.slots {
		if b.slots[i].busy {
			n++
		}
	}
	return n
}
