package sonuma

import "fmt"

// Delivery is how a message is carried to the receiver.
type Delivery int

const (
	// DeliveryInline writes the payload directly into a receive-buffer
	// slot as a series of MTU-sized packets (the common case).
	DeliveryInline Delivery = iota
	// DeliveryRendezvous sends only a descriptor; the receiver pulls the
	// payload with a one-sided read (§4.2's mechanism for messages larger
	// than max_msg_size).
	DeliveryRendezvous
)

func (d Delivery) String() string {
	if d == DeliveryRendezvous {
		return "rendezvous"
	}
	return "inline"
}

// RendezvousDescriptorBytes is the size of the descriptor exchanged for
// oversized messages: remote address (8), length (8), plus context/key
// metadata rounded to 32 bytes.
const RendezvousDescriptorBytes = 32

// DomainConfig describes a messaging domain (§4.2): N nodes that may
// exchange messages, S send/receive slots per node pair, a maximum inline
// message size, and the link MTU (one cache block for integrated NIs).
type DomainConfig struct {
	Nodes      int // N
	Slots      int // S: concurrent outstanding messages per node pair
	MaxMsgSize int // largest inline message payload, bytes
	MTU        int // link-layer packet payload, bytes (64 for soNUMA)
}

// Validate reports whether the configuration is usable.
func (c DomainConfig) Validate() error {
	switch {
	case c.Nodes <= 0:
		return fmt.Errorf("sonuma: domain needs at least 1 node, got %d", c.Nodes)
	case c.Slots <= 0:
		return fmt.Errorf("sonuma: domain needs at least 1 slot per node, got %d", c.Slots)
	case c.MaxMsgSize <= 0:
		return fmt.Errorf("sonuma: max message size %d must be positive", c.MaxMsgSize)
	case c.MTU <= 0:
		return fmt.Errorf("sonuma: MTU %d must be positive", c.MTU)
	default:
		return nil
	}
}

// Packets returns the number of MTU-sized packets needed to carry an inline
// payload of size bytes. Every message occupies at least one packet.
func (c DomainConfig) Packets(size int) int {
	if size <= 0 {
		return 1
	}
	return (size + c.MTU - 1) / c.MTU
}

// Classify chooses the delivery mode for a message of the given size.
func (c DomainConfig) Classify(size int) Delivery {
	if size > c.MaxMsgSize {
		return DeliveryRendezvous
	}
	return DeliveryInline
}

// RendezvousReadPackets returns how many packets the receiver-issued
// one-sided read pulls for an oversized message.
func (c DomainConfig) RendezvousReadPackets(size int) int { return c.Packets(size) }

// TotalSlots returns the number of receive (equivalently send) slots a node
// provisions: N×S.
func (c DomainConfig) TotalSlots() int { return c.Nodes * c.Slots }

// RecvSlotIndex maps (source node, per-pair slot) to the node-global receive
// slot index. The sender computes this address itself — that is the trick
// that lets multi-packet messages land without NI reassembly state.
func (c DomainConfig) RecvSlotIndex(src NodeID, slot int) int {
	if int(src) < 0 || int(src) >= c.Nodes {
		panic(fmt.Sprintf("sonuma: source node %d outside domain of %d nodes", src, c.Nodes))
	}
	if slot < 0 || slot >= c.Slots {
		panic(fmt.Sprintf("sonuma: slot %d outside per-pair range [0,%d)", slot, c.Slots))
	}
	return int(src)*c.Slots + slot
}

// SlotOwner inverts RecvSlotIndex: it returns the source node and per-pair
// slot for a node-global receive slot index.
func (c DomainConfig) SlotOwner(index int) (NodeID, int) {
	if index < 0 || index >= c.TotalSlots() {
		panic(fmt.Sprintf("sonuma: receive slot %d outside [0,%d)", index, c.TotalSlots()))
	}
	return NodeID(index / c.Slots), index % c.Slots
}

// FootprintBytes returns the per-node memory footprint of the messaging
// mechanism, using the paper's formula (§4.2):
//
//	32·N·S + (max_msg_size + 64)·N·S
//
// 32 bytes of send-slot bookkeeping per slot, plus a receive slot sized for
// the payload and a full cache block for the packet counter (overprovisioned
// to keep payloads aligned).
func (c DomainConfig) FootprintBytes() int {
	ns := c.Nodes * c.Slots
	return 32*ns + (c.MaxMsgSize+64)*ns
}
