package sonuma

import (
	"testing"
	"testing/quick"

	"rpcvalet/internal/rng"
)

func domain() DomainConfig {
	return DomainConfig{Nodes: 4, Slots: 3, MaxMsgSize: 512, MTU: 64}
}

func TestOpCodeString(t *testing.T) {
	cases := map[OpCode]string{
		OpRead: "read", OpWrite: "write", OpSend: "send", OpReplenish: "replenish",
		OpInvalid: "opcode(0)",
	}
	for op, want := range cases {
		if op.String() != want {
			t.Errorf("OpCode(%d).String() = %q, want %q", op, op.String(), want)
		}
	}
}

func TestRingBasics(t *testing.T) {
	r := NewRing[int](3)
	if !r.Empty() || r.Full() || r.Len() != 0 || r.Cap() != 3 {
		t.Fatal("fresh ring state wrong")
	}
	for i := 1; i <= 3; i++ {
		if !r.Push(i) {
			t.Fatalf("push %d failed", i)
		}
	}
	if !r.Full() || r.Push(4) {
		t.Fatal("overfull push succeeded")
	}
	if v, ok := r.Peek(); !ok || v != 1 {
		t.Fatalf("peek = %v,%v", v, ok)
	}
	for i := 1; i <= 3; i++ {
		v, ok := r.Pop()
		if !ok || v != i {
			t.Fatalf("pop = %v,%v, want %d", v, ok, i)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("pop from empty succeeded")
	}
	if _, ok := r.Peek(); ok {
		t.Fatal("peek on empty succeeded")
	}
}

func TestRingWrapAround(t *testing.T) {
	r := NewRing[int](2)
	for i := 0; i < 100; i++ {
		if !r.Push(i) {
			t.Fatalf("push %d failed", i)
		}
		v, ok := r.Pop()
		if !ok || v != i {
			t.Fatalf("pop = %v, want %d", v, i)
		}
	}
}

func TestRingPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRing(0) did not panic")
		}
	}()
	NewRing[int](0)
}

// Property: a ring behaves exactly like a bounded FIFO queue.
func TestPropertyRingFIFO(t *testing.T) {
	f := func(seed uint64, capacity uint8) bool {
		capn := int(capacity%16) + 1
		r := NewRing[int](capn)
		var model []int
		src := rng.New(seed)
		for step := 0; step < 500; step++ {
			if src.IntN(2) == 0 {
				v := src.IntN(1000)
				pushed := r.Push(v)
				if pushed != (len(model) < capn) {
					return false
				}
				if pushed {
					model = append(model, v)
				}
			} else {
				v, ok := r.Pop()
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					if v != model[0] {
						return false
					}
					model = model[1:]
				}
			}
			if r.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestNewQP(t *testing.T) {
	qp := NewQP(8)
	if qp.WQ.Cap() != 8 || qp.CQ.Cap() != 8 {
		t.Fatal("QP depth wrong")
	}
}

func TestDomainValidate(t *testing.T) {
	good := domain()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid domain rejected: %v", err)
	}
	bad := []DomainConfig{
		{Nodes: 0, Slots: 1, MaxMsgSize: 64, MTU: 64},
		{Nodes: 1, Slots: 0, MaxMsgSize: 64, MTU: 64},
		{Nodes: 1, Slots: 1, MaxMsgSize: 0, MTU: 64},
		{Nodes: 1, Slots: 1, MaxMsgSize: 64, MTU: 0},
	}
	for i, cfg := range bad {
		if cfg.Validate() == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestPackets(t *testing.T) {
	c := domain()
	cases := []struct{ size, want int }{
		{0, 1}, {1, 1}, {64, 1}, {65, 2}, {512, 8}, {500, 8}, {513, 9},
	}
	for _, tc := range cases {
		if got := c.Packets(tc.size); got != tc.want {
			t.Errorf("Packets(%d) = %d, want %d", tc.size, got, tc.want)
		}
	}
}

func TestClassify(t *testing.T) {
	c := domain()
	if c.Classify(512) != DeliveryInline {
		t.Fatal("512B should be inline")
	}
	if c.Classify(513) != DeliveryRendezvous {
		t.Fatal("513B should be rendezvous")
	}
	if DeliveryInline.String() != "inline" || DeliveryRendezvous.String() != "rendezvous" {
		t.Fatal("delivery strings wrong")
	}
	if got := c.RendezvousReadPackets(1024); got != 16 {
		t.Fatalf("rendezvous read packets = %d, want 16", got)
	}
}

// TestFootprintFormula checks the paper's formula with its own example
// parameters: a rack-scale domain should land in the tens of MBs.
func TestFootprintFormula(t *testing.T) {
	c := DomainConfig{Nodes: 200, Slots: 32, MaxMsgSize: 1024, MTU: 64}
	want := 32*200*32 + (1024+64)*200*32
	if got := c.FootprintBytes(); got != want {
		t.Fatalf("footprint = %d, want %d", got, want)
	}
	if mb := float64(want) / (1 << 20); mb > 64 {
		t.Fatalf("footprint %v MB exceeds the paper's 'few tens of MBs' envelope", mb)
	}
}

func TestSlotIndexBijection(t *testing.T) {
	c := domain()
	seen := map[int]bool{}
	for src := 0; src < c.Nodes; src++ {
		for slot := 0; slot < c.Slots; slot++ {
			idx := c.RecvSlotIndex(NodeID(src), slot)
			if seen[idx] {
				t.Fatalf("duplicate slot index %d", idx)
			}
			seen[idx] = true
			gotSrc, gotSlot := c.SlotOwner(idx)
			if gotSrc != NodeID(src) || gotSlot != slot {
				t.Fatalf("SlotOwner(%d) = (%d,%d), want (%d,%d)", idx, gotSrc, gotSlot, src, slot)
			}
		}
	}
	if len(seen) != c.TotalSlots() {
		t.Fatalf("indices cover %d slots, want %d", len(seen), c.TotalSlots())
	}
}

func TestSlotIndexPanics(t *testing.T) {
	c := domain()
	for name, fn := range map[string]func(){
		"srcHigh":  func() { c.RecvSlotIndex(NodeID(c.Nodes), 0) },
		"srcNeg":   func() { c.RecvSlotIndex(-1, 0) },
		"slotHigh": func() { c.RecvSlotIndex(0, c.Slots) },
		"ownerOut": func() { c.SlotOwner(c.TotalSlots()) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSendBufferAcquireRelease(t *testing.T) {
	b, err := NewSendBuffer(domain())
	if err != nil {
		t.Fatal(err)
	}
	dest := NodeID(2)
	var slots []int
	for i := 0; i < 3; i++ {
		s, ok := b.Acquire(dest, uint64(i), 128)
		if !ok {
			t.Fatalf("acquire %d failed", i)
		}
		slots = append(slots, s)
	}
	if b.InFlight(dest) != 3 {
		t.Fatalf("in flight = %d", b.InFlight(dest))
	}
	// All S slots used: flow control kicks in.
	if _, ok := b.Acquire(dest, 9, 128); ok {
		t.Fatal("acquire beyond S slots succeeded")
	}
	// Other destinations are unaffected.
	if _, ok := b.Acquire(NodeID(1), 9, 128); !ok {
		t.Fatal("acquire toward a different destination failed")
	}
	if err := b.Release(dest, slots[1]); err != nil {
		t.Fatal(err)
	}
	if b.InFlight(dest) != 2 {
		t.Fatalf("in flight after release = %d", b.InFlight(dest))
	}
	// The freed slot is reusable.
	if s, ok := b.Acquire(dest, 10, 64); !ok || s != slots[1] {
		t.Fatalf("reacquire = (%d,%v), want slot %d", s, ok, slots[1])
	}
}

func TestSendBufferReleaseErrors(t *testing.T) {
	b, _ := NewSendBuffer(domain())
	if err := b.Release(0, 0); err == nil {
		t.Fatal("release of free slot should error")
	}
	if err := b.Release(-1, 0); err == nil {
		t.Fatal("release with bad dest should error")
	}
	if err := b.Release(0, 99); err == nil {
		t.Fatal("release with bad slot should error")
	}
}

func TestSendBufferPanics(t *testing.T) {
	b, _ := NewSendBuffer(domain())
	for name, fn := range map[string]func(){
		"destOut":  func() { b.Acquire(NodeID(99), 0, 10) },
		"oversize": func() { b.Acquire(0, 0, 513) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSendBufferRejectsBadConfig(t *testing.T) {
	if _, err := NewSendBuffer(DomainConfig{}); err == nil {
		t.Fatal("bad config accepted")
	}
	if _, err := NewReceiveBuffer(DomainConfig{}); err == nil {
		t.Fatal("bad config accepted")
	}
}

// Property: the flow-control invariant — in-flight sends toward any
// destination never exceed S, and acquire fails exactly when the set is full.
func TestPropertySendBufferFlowControl(t *testing.T) {
	f := func(seed uint64) bool {
		cfg := domain()
		b, err := NewSendBuffer(cfg)
		if err != nil {
			return false
		}
		src := rng.New(seed)
		held := make([][]int, cfg.Nodes)
		for step := 0; step < 2000; step++ {
			dest := NodeID(src.IntN(cfg.Nodes))
			if src.IntN(2) == 0 {
				s, ok := b.Acquire(dest, 0, src.IntN(cfg.MaxMsgSize+1))
				if ok != (len(held[dest]) < cfg.Slots) {
					return false
				}
				if ok {
					held[dest] = append(held[dest], s)
				}
			} else if n := len(held[dest]); n > 0 {
				i := src.IntN(n)
				if err := b.Release(dest, held[dest][i]); err != nil {
					return false
				}
				held[dest] = append(held[dest][:i], held[dest][i+1:]...)
			}
			if b.InFlight(dest) != len(held[dest]) || b.InFlight(dest) > cfg.Slots {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestReceiveSinglePacketMessage(t *testing.T) {
	b, err := NewReceiveBuffer(domain())
	if err != nil {
		t.Fatal(err)
	}
	done, err := b.OnPacket(5, 1, 64, 1)
	if err != nil || !done {
		t.Fatalf("single-packet message: done=%v err=%v", done, err)
	}
	src, size, err := b.Message(5)
	if err != nil || src != 1 || size != 64 {
		t.Fatalf("Message = (%d,%d,%v)", src, size, err)
	}
	if err := b.Free(5); err != nil {
		t.Fatal(err)
	}
	if b.Busy(5) {
		t.Fatal("slot busy after free")
	}
}

func TestReceiveMultiPacketAssembly(t *testing.T) {
	b, _ := NewReceiveBuffer(domain())
	const idx, packets = 2, 8
	for i := 0; i < packets; i++ {
		done, err := b.OnPacket(idx, 3, 512, packets)
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		if done != (i == packets-1) {
			t.Fatalf("packet %d: done=%v", i, done)
		}
	}
	if _, _, err := b.Message(idx); err != nil {
		t.Fatal(err)
	}
}

func TestReceiveInterleavedSlots(t *testing.T) {
	// Packets for different slots interleave freely: two 2-packet
	// messages assemble simultaneously into slots 0 and 1.
	b, _ := NewReceiveBuffer(domain())
	steps := []struct {
		slot     int
		wantDone bool
	}{
		{0, false}, {1, false}, {0, true}, {1, true},
	}
	for i, s := range steps {
		done, err := b.OnPacket(s.slot, 0, 128, 2)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if done != s.wantDone {
			t.Fatalf("step %d: done=%v, want %v", i, done, s.wantDone)
		}
	}
	if b.InUse() != 2 {
		t.Fatalf("in use = %d, want 2", b.InUse())
	}
}

func TestReceiveErrors(t *testing.T) {
	b, _ := NewReceiveBuffer(domain())
	if _, err := b.OnPacket(-1, 0, 64, 1); err == nil {
		t.Fatal("negative slot accepted")
	}
	if _, err := b.OnPacket(999, 0, 64, 1); err == nil {
		t.Fatal("out-of-range slot accepted")
	}
	if _, err := b.OnPacket(0, 0, 64, 0); err == nil {
		t.Fatal("zero total packets accepted")
	}
	// Header mismatch mid-assembly.
	if _, err := b.OnPacket(3, 0, 128, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := b.OnPacket(3, 0, 128, 3); err == nil {
		t.Fatal("total-packet mismatch accepted")
	}
	if _, err := b.OnPacket(3, 1, 128, 2); err == nil {
		t.Fatal("source mismatch accepted")
	}
	// Complete the message, then poke it again.
	if done, err := b.OnPacket(3, 0, 128, 2); err != nil || !done {
		t.Fatalf("completion failed: %v %v", done, err)
	}
	if _, err := b.OnPacket(3, 0, 128, 2); err == nil {
		t.Fatal("packet for unconsumed message accepted")
	}
	// Message/Free error paths.
	if _, _, err := b.Message(0); err == nil {
		t.Fatal("Message on incomplete slot accepted")
	}
	if _, _, err := b.Message(-1); err == nil {
		t.Fatal("Message out of range accepted")
	}
	if err := b.Free(99); err == nil {
		t.Fatal("Free out of range accepted")
	}
	if err := b.Free(7); err == nil {
		t.Fatal("Free of idle slot accepted")
	}
}

// Property: random interleavings of packets from many messages assemble each
// message exactly once, with completion on exactly the last packet.
func TestPropertyAssemblyUnderInterleaving(t *testing.T) {
	f := func(seed uint64) bool {
		cfg := domain()
		b, err := NewReceiveBuffer(cfg)
		if err != nil {
			return false
		}
		src := rng.New(seed)
		type msg struct {
			idx, total, sent int
			src              NodeID
			done             bool
		}
		// One message per slot, random sizes.
		var msgs []*msg
		for i := 0; i < cfg.TotalSlots(); i++ {
			owner, _ := cfg.SlotOwner(i)
			size := 1 + src.IntN(cfg.MaxMsgSize)
			msgs = append(msgs, &msg{idx: i, total: cfg.Packets(size), src: owner})
		}
		// Deliver all packets in random global order.
		var order []*msg
		for _, m := range msgs {
			for p := 0; p < m.total; p++ {
				order = append(order, m)
			}
		}
		for i := len(order) - 1; i > 0; i-- {
			j := src.IntN(i + 1)
			order[i], order[j] = order[j], order[i]
		}
		for _, m := range order {
			done, err := b.OnPacket(m.idx, m.src, m.total*cfg.MTU, m.total)
			if err != nil {
				return false
			}
			m.sent++
			if done != (m.sent == m.total) || (done && m.done) {
				return false
			}
			if done {
				m.done = true
			}
		}
		for _, m := range msgs {
			if !m.done {
				return false
			}
		}
		return b.InUse() == cfg.TotalSlots()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
