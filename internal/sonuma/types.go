// Package sonuma models the Scale-Out NUMA protocol substrate that RPCValet
// extends (§4): queue pairs (QPs) for CPU–NI interaction, one-sided remote
// read/write operations, and the paper's lightweight native-messaging
// extension — the send and replenish operations, messaging domains, and the
// send/receive buffer provisioning that lets multi-packet messages be
// reassembled without NI-side reassembly state.
//
// The package is a set of protocol state machines with no notion of time;
// the NI and machine models (internal/ni, internal/machine) drive it from
// the discrete-event simulator and attach latencies to each transition.
package sonuma

import "fmt"

// NodeID identifies a node in the cluster (0-based).
type NodeID int

// OpCode enumerates the protocol operations a work-queue entry can carry.
type OpCode uint8

// Protocol operations. Read and Write are soNUMA's original one-sided
// operations. Send and Replenish are the paper's messaging extension: a send
// is a remote write with two-sided semantics the NI can recognize and load
// balance; a replenish frees the corresponding send-buffer slot at the
// sender and signals request completion to the NI dispatcher.
const (
	OpInvalid OpCode = iota
	OpRead
	OpWrite
	OpSend
	OpReplenish
)

func (o OpCode) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpSend:
		return "send"
	case OpReplenish:
		return "replenish"
	default:
		return fmt.Sprintf("opcode(%d)", uint8(o))
	}
}

// WQE is a work-queue entry: a command written by a core for its NI.
type WQE struct {
	Op   OpCode
	Dest NodeID // target node
	Slot int    // destination receive-slot index (send) or remote send-slot to free (replenish)
	Size int    // payload size in bytes (send); 0 for replenish
}

// CQE is a completion-queue entry: a notification written by the NI for a
// core. For an incoming send, Slot names the receive-buffer slot holding the
// fully assembled message.
type CQE struct {
	Slot int
	Src  NodeID
	Size int
}

// Ring is a bounded FIFO ring buffer used for WQs, CQs and the NI
// dispatcher's shared CQ. The zero value is unusable; create rings with
// NewRing so capacity is explicit.
type Ring[T any] struct {
	buf        []T
	head, tail int
	n          int
}

// NewRing returns a ring with the given capacity. It panics on a
// non-positive capacity, which would make every Push fail.
func NewRing[T any](capacity int) *Ring[T] {
	if capacity <= 0 {
		panic(fmt.Sprintf("sonuma: ring capacity %d must be positive", capacity))
	}
	return &Ring[T]{buf: make([]T, capacity)}
}

// Len reports the number of queued entries.
func (r *Ring[T]) Len() int { return r.n }

// Cap reports the ring's capacity.
func (r *Ring[T]) Cap() int { return len(r.buf) }

// Full reports whether the ring has no free entries.
func (r *Ring[T]) Full() bool { return r.n == len(r.buf) }

// Empty reports whether the ring has no queued entries.
func (r *Ring[T]) Empty() bool { return r.n == 0 }

// Push appends v. It reports false (leaving the ring unchanged) when full —
// queue-full is back-pressure, not an error, in the protocol.
func (r *Ring[T]) Push(v T) bool {
	if r.Full() {
		return false
	}
	r.buf[r.tail] = v
	r.tail = (r.tail + 1) % len(r.buf)
	r.n++
	return true
}

// Pop removes and returns the oldest entry.
func (r *Ring[T]) Pop() (T, bool) {
	var zero T
	if r.n == 0 {
		return zero, false
	}
	v := r.buf[r.head]
	r.buf[r.head] = zero
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return v, true
}

// Peek returns the oldest entry without removing it.
func (r *Ring[T]) Peek() (T, bool) {
	var zero T
	if r.n == 0 {
		return zero, false
	}
	return r.buf[r.head], true
}

// QP is a queue pair: the per-core virtual interface of the VIA programming
// model. The core writes WQEs into WQ; the NI writes CQEs into CQ.
type QP struct {
	WQ *Ring[WQE]
	CQ *Ring[CQE]
}

// NewQP returns a QP whose queues each hold depth entries.
func NewQP(depth int) *QP {
	return &QP{WQ: NewRing[WQE](depth), CQ: NewRing[CQE](depth)}
}
