package live

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// spinUnit is one xorshift round — the unit of calibrated busy-work. The
// calibration measures how many of these rounds fit in a nanosecond on the
// host; serving a request then spins for serviceNanos × spinsPerNs rounds.
// Xorshift keeps the loop's dependency chain serial (the compiler cannot
// vectorize or elide it through the returned value), so the iteration rate
// is stable across inputs.
func spinRounds(n int64, seed uint64) uint64 {
	x := seed | 1
	for i := int64(0); i < n; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	return x
}

// spinSink defeats dead-code elimination of spinRounds results. Workers fold
// their private sinks into it once, at run end.
var spinSink atomic.Uint64

var (
	calOnce    sync.Once
	calSpinsNs float64
)

// calibrateSpin measures the host's spin rate in rounds per nanosecond. It
// runs several ~100 µs probes and keeps the fastest: preemption and frequency
// ramp-up only ever make a probe slower, so the max is the closest estimate
// of the unobstructed rate (the same reasoning perf calibration loops in
// spin-benchmark harnesses use). The result is cached for the process.
func calibrateSpin() float64 {
	calOnce.Do(func() {
		const probe = 1 << 18 // ~100 µs at a few rounds/ns
		best := 0.0
		for r := 0; r < 7; r++ {
			t0 := time.Now()
			spinSink.Add(spinRounds(probe, uint64(r)+1))
			el := time.Since(t0).Nanoseconds()
			if el > 0 {
				if rate := float64(probe) / float64(el); rate > best {
					best = rate
				}
			}
		}
		if best <= 0 {
			best = 1 // pathological clock; keep spin durations finite
		}
		calSpinsNs = best
	})
	return calSpinsNs
}

// waitUntil blocks until the wall clock reaches t. Far targets sleep (giving
// the timer a margin so oversleep cannot push the release late by a full
// quantum); near targets yield-spin, which keeps the release tight at µs
// scale and — critically on machines with fewer cores than goroutines —
// still lets the scheduler run workers and fire their timers between checks.
func waitUntil(t time.Time) {
	for {
		d := time.Until(t)
		switch {
		case d <= 0:
			return
		case d > 2*time.Millisecond:
			time.Sleep(d - time.Millisecond)
		default:
			runtime.Gosched()
		}
	}
}
