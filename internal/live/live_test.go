package live

import (
	"testing"
	"time"

	"rpcvalet/internal/machine"
	"rpcvalet/internal/ni"
	"rpcvalet/internal/workload"
)

// smokeConfig is a rate-limited ~100 ms run: sleep emulation (safe on any
// core count, including the 1-CPU CI runners), low offered load, fixed
// service. Assertions stay on completion counts and structural invariants —
// never on latencies — so wall-clock noise cannot flake CI.
func smokeConfig(plan string, t *testing.T) Config {
	t.Helper()
	pl, err := machine.ParsePlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Plan:      pl,
		Workload:  workload.SyntheticFixed(),
		Workers:   4,
		Emulation: EmulationSleep,
		Duration:  100 * time.Millisecond,
		Seed:      7,
	}
	// ~40% of sleep-mode capacity: 4 workers / 300 µs mean.
	cfg.RateMRPS = 0.4 * CapacityMRPS(cfg)
	return cfg
}

// TestLiveSmoke runs all three queue shapes end to end and checks the
// counting invariants: work was completed, every accepted arrival was served
// (no hidden losses), and the result's bookkeeping is self-consistent.
func TestLiveSmoke(t *testing.T) {
	for _, plan := range []string{"1x16", "16x1", "jbsq2"} {
		t.Run(plan, func(t *testing.T) {
			res, err := Run(smokeConfig(plan, t))
			if err != nil {
				t.Fatal(err)
			}
			if res.Completed == 0 {
				t.Fatal("no completions in 100ms at 40% load")
			}
			if res.Completed+res.Dropped != res.Offered {
				t.Fatalf("lost work: offered=%d completed=%d dropped=%d",
					res.Offered, res.Completed, res.Dropped)
			}
			if res.Dropped != 0 {
				t.Fatalf("dropped %d arrivals far below capacity", res.Dropped)
			}
			if res.Latency.Count <= 0 || res.Latency.Count > res.Completed {
				t.Fatalf("latency sample count %d vs completed %d", res.Latency.Count, res.Completed)
			}
			if res.Emulation != "sleep" {
				t.Fatalf("emulation = %q, want sleep", res.Emulation)
			}
			if len(res.Timeline.Epochs) == 0 {
				t.Fatal("empty timeline")
			}
		})
	}
}

// TestLiveScheduleDeterministic: the offered schedule is a pure function of
// (seed, rate, duration) — two runs release the same number of arrivals even
// though their latencies differ. With the queue far from its cap nothing
// drops, so completions match too.
func TestLiveScheduleDeterministic(t *testing.T) {
	a, err := Run(smokeConfig("1x16", t))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smokeConfig("1x16", t))
	if err != nil {
		t.Fatal(err)
	}
	if a.Offered != b.Offered || a.Completed != b.Completed {
		t.Fatalf("schedule not deterministic: %d/%d vs %d/%d arrivals/completions",
			a.Offered, a.Completed, b.Offered, b.Completed)
	}
}

// TestLiveOverloadSheds soaks each shape well past saturation with a tiny
// backlog cap: the open loop must shed (Dropped > 0) instead of blocking,
// and the accounting must still balance. Skipped under -short — this is the
// slow half that `make live-smoke` leaves out.
func TestLiveOverloadSheds(t *testing.T) {
	if testing.Short() {
		t.Skip("overload soak")
	}
	for _, plan := range []string{"1x16", "16x1", "jbsq2"} {
		t.Run(plan, func(t *testing.T) {
			cfg := smokeConfig(plan, t)
			cfg.Duration = 300 * time.Millisecond
			cfg.QueueCap = 32
			cfg.RateMRPS = 4 * CapacityMRPS(cfg) // far past saturation
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Completed+res.Dropped != res.Offered {
				t.Fatalf("lost work: offered=%d completed=%d dropped=%d",
					res.Offered, res.Completed, res.Dropped)
			}
			if res.Dropped == 0 {
				t.Fatalf("no drops at 4× capacity with a 32-slot backlog (offered %d)", res.Offered)
			}
		})
	}
}

func TestShapeForPlan(t *testing.T) {
	mustPlan := func(spec string) *machine.Plan {
		pl, err := machine.ParsePlan(spec)
		if err != nil {
			t.Fatal(err)
		}
		return pl
	}
	cases := []struct {
		spec  string
		shape Shape
		bound int
	}{
		{"1x16", ShapeShared, 0},
		{"single", ShapeShared, 0},
		{"sw", ShapeShared, 0},
		{"16x1", ShapePartitioned, 0},
		{"partitioned", ShapePartitioned, 0},
		{"jbsq1", ShapeJBSQ, 1},
		{"jbsq4", ShapeJBSQ, 4},
	}
	for _, c := range cases {
		shape, bound, err := ShapeForPlan(mustPlan(c.spec), 8)
		if err != nil {
			t.Fatalf("%s: %v", c.spec, err)
		}
		if shape != c.shape || bound != c.bound {
			t.Fatalf("%s: shape=%v bound=%d, want %v/%d", c.spec, shape, bound, c.shape, c.bound)
		}
	}
	if shape, _, err := ShapeForPlan(nil, 8); err != nil || shape != ShapeShared {
		t.Fatalf("nil plan: %v/%v", shape, err)
	}
	// A plan whose group count equals the worker count is partitioned.
	if shape, _, err := ShapeForPlan(&machine.Plan{Groups: 8}, 8); err != nil || shape != ShapePartitioned {
		t.Fatalf("8 groups / 8 workers: %v/%v", shape, err)
	}
	// Unsupported: grouped plans and explicit policies.
	if _, _, err := ShapeForPlan(mustPlan("4x4"), 8); err == nil {
		t.Fatal("grouped plan should be rejected")
	}
	if _, _, err := ShapeForPlan(mustPlan("1x16:random2"), 8); err == nil {
		t.Fatal("policy plan should be rejected")
	}
	// An unlimited threshold on one group is still the shared queue.
	if shape, _, err := ShapeForPlan(&machine.Plan{Groups: 1, Threshold: ni.Unlimited}, 8); err != nil || shape != ShapeShared {
		t.Fatalf("unlimited threshold: %v/%v", shape, err)
	}
}

func TestLiveValidation(t *testing.T) {
	base := smokeConfig("1x16", t)
	bad := base
	bad.RateMRPS = 0
	if _, err := Run(bad); err == nil {
		t.Fatal("zero rate accepted")
	}
	bad = base
	bad.Duration = 0
	if _, err := Run(bad); err == nil {
		t.Fatal("zero duration accepted")
	}
	bad = base
	bad.Warmup = base.Duration
	if _, err := Run(bad); err == nil {
		t.Fatal("warmup >= duration accepted")
	}
	bad = base
	bad.Workload = workload.Profile{}
	if _, err := Run(bad); err == nil {
		t.Fatal("empty workload accepted")
	}
}

func TestCalibrateSpin(t *testing.T) {
	if rate := calibrateSpin(); !(rate > 0) {
		t.Fatalf("spin calibration rate = %v", rate)
	}
}

func TestRecommendedScale(t *testing.T) {
	wl := workload.SyntheticFixed() // mean 600 ns
	if s := RecommendedScale(EmulationSleep, 4, wl); s*wl.MeanService() != SleepTargetServiceNanos {
		t.Fatalf("sleep scale %v lifts mean to %v", s, s*wl.MeanService())
	}
	if s := RecommendedScale(EmulationSpin, 4, wl); s*wl.MeanService() != SpinTargetServiceNanos {
		t.Fatalf("spin scale %v lifts mean to %v", s, s*wl.MeanService())
	}
	// A profile already above the target is left alone.
	big := workload.Masstree() // mean ≈ 1.8 µs... still below; scale must be ≥ 1 anyway
	if s := RecommendedScale(EmulationSpin, 4, big); s < 1 {
		t.Fatalf("scale %v shrank the profile", s)
	}
}

func TestParseEmulation(t *testing.T) {
	for s, want := range map[string]Emulation{"auto": EmulationAuto, "": EmulationAuto, "spin": EmulationSpin, "sleep": EmulationSleep} {
		got, err := ParseEmulation(s)
		if err != nil || got != want {
			t.Fatalf("ParseEmulation(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseEmulation("warp"); err == nil {
		t.Fatal("bad emulation accepted")
	}
}

// BenchmarkLiveShapes is the live counterpart of the figure benchmarks: one
// short run per shape, reporting completion throughput. CI pipes it through
// cmd/benchjson into BENCH_live.json.
func BenchmarkLiveShapes(b *testing.B) {
	for _, plan := range []string{"1x16", "16x1", "jbsq2"} {
		b.Run(plan, func(b *testing.B) {
			pl, err := machine.ParsePlan(plan)
			if err != nil {
				b.Fatal(err)
			}
			cfg := Config{
				Plan:     pl,
				Workload: workload.SyntheticExp(),
				Workers:  4,
				Duration: 100 * time.Millisecond,
				Seed:     42,
			}
			cfg.RateMRPS = 0.5 * CapacityMRPS(cfg)
			for i := 0; i < b.N; i++ {
				res, err := Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Completed), "completions")
				b.ReportMetric(res.ThroughputMRPS*1e6, "rps")
			}
		})
	}
}
