// Package live executes the machine model's dispatch shapes with real
// goroutines on wall-clock time — the reproduction's first step from
// simulation toward the ROADMAP's production-scale serving system, and the
// same methodological move nanoPU and Dagger make when they back the
// single-queue-versus-partitioned argument with measured hardware.
//
// Three queue shapes cover the argument:
//
//   - Shared: one MPMC queue all workers pull from — the 1×16 analogue, the
//     work-conserving single-queue ideal. (The software/MCS variant collapses
//     onto this shape too: a Go channel is a lock-guarded shared queue.)
//   - Partitioned: one private queue per worker, each request statically
//     assigned by an RSS-style hash of its ID at arrival — the 16×1 baseline.
//   - JBSQ(n): a dispatcher goroutine pushes from the shared queue to bounded
//     per-worker queues, at most n outstanding per worker, least-outstanding
//     arbitration — the NI dispatch loop of machine.PlanJBSQ, on real threads.
//
// Service times are synthesized from internal/workload profiles exactly as
// the simulator samples them (same distributions, deterministic rng streams)
// and emulated either as calibrated spin-work (when the host has cores to
// spare) or as timer sleeps (when workers would oversubscribe the CPUs and
// spinning would corrupt the measurement — see DESIGN.md §6). An open-loop
// generator paces arrivals on the wall clock; latency is measured from each
// request's *scheduled* arrival instant, so generator lateness counts against
// the system rather than being silently absorbed (no coordinated omission).
//
// Results flow through the same stats/metrics shapes the simulator uses:
// stats.Summary for the headline percentiles and a metrics.Timeline for the
// epoch-sliced view. Wall-clock runs are NOT deterministic — the offered
// schedule (arrival gaps, classes, service draws) is reproducible from the
// seed, but latencies carry scheduler, timer, and frequency noise. What
// survives that noise is the paper's ordering claims, which the "live"
// figure in internal/core checks; calibrated magnitudes stay the simulator's
// job.
package live

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"rpcvalet/internal/arrival"
	"rpcvalet/internal/machine"
	"rpcvalet/internal/metrics"
	"rpcvalet/internal/ni"
	"rpcvalet/internal/obs"
	"rpcvalet/internal/rng"
	"rpcvalet/internal/sim"
	"rpcvalet/internal/stats"
	"rpcvalet/internal/trace"
	"rpcvalet/internal/workload"
)

// Shape is the concrete queue topology a plan resolves to on the live
// runtime.
type Shape int

const (
	// ShapeShared is the single MPMC queue (1×16 and sw plans).
	ShapeShared Shape = iota
	// ShapePartitioned is per-worker private queues fed by an RSS hash
	// (16×1 plans).
	ShapePartitioned
	// ShapeJBSQ is bounded-outstanding dispatch through a least-outstanding
	// dispatcher goroutine (jbsqN plans).
	ShapeJBSQ
)

func (s Shape) String() string {
	switch s {
	case ShapeShared:
		return "shared"
	case ShapePartitioned:
		return "partitioned"
	case ShapeJBSQ:
		return "jbsq"
	}
	return fmt.Sprintf("shape(%d)", int(s))
}

// Emulation selects how a sampled service time occupies a worker.
type Emulation int

const (
	// EmulationAuto picks spin when the host has at least two cores beyond
	// the worker count (generator + dispatcher need to breathe), else sleep.
	EmulationAuto Emulation = iota
	// EmulationSpin burns calibrated busy-work — the real-hardware mode:
	// service genuinely occupies a CPU, contention and all.
	EmulationSpin
	// EmulationSleep parks the goroutine on a timer. Queueing dynamics stay
	// real wall-clock while service consumes no CPU, which is the only
	// honest option when workers outnumber cores (the repo's livebalancer
	// example documents the starvation trap this avoids).
	EmulationSleep
)

func (e Emulation) String() string {
	switch e {
	case EmulationAuto:
		return "auto"
	case EmulationSpin:
		return "spin"
	case EmulationSleep:
		return "sleep"
	}
	return fmt.Sprintf("emulation(%d)", int(e))
}

// ParseEmulation reads an -emulation flag value.
func ParseEmulation(s string) (Emulation, error) {
	switch s {
	case "auto", "":
		return EmulationAuto, nil
	case "spin":
		return EmulationSpin, nil
	case "sleep":
		return EmulationSleep, nil
	}
	return 0, fmt.Errorf("live: unknown emulation %q (want auto, spin, or sleep)", s)
}

// DefaultWorkers is the default serving-goroutine count: enough queues to
// make the partitioned pathology visible, small enough to spin on commodity
// multicores.
const DefaultWorkers = 8

// Target mean service times per emulation, ns: comfortably above each mode's
// noise floor (≈1 µs of channel+scheduler cost for spin; tens of µs of timer
// slack for sleep). RecommendedScale lifts profiles up to these.
const (
	SpinTargetServiceNanos  = 12_000
	SleepTargetServiceNanos = 300_000
)

// RecommendedScale returns a service-time multiplier lifting the profile's
// mean service to the emulation's target, or 1 when it is already there.
// Scaling preserves the distribution's shape (every draw is multiplied), so
// the balancing comparison is unchanged — only the noise floor moves.
func RecommendedScale(e Emulation, workers int, wl workload.Profile) float64 {
	target := float64(SpinTargetServiceNanos)
	if resolveEmulation(e, workers) == EmulationSleep {
		target = SleepTargetServiceNanos
	}
	m := wl.MeanService()
	if m <= 0 || m >= target {
		return 1
	}
	return target / m
}

func resolveEmulation(e Emulation, workers int) Emulation {
	if e != EmulationAuto {
		return e
	}
	if runtime.NumCPU() >= workers+2 {
		return EmulationSpin
	}
	return EmulationSleep
}

// Config describes one live run.
type Config struct {
	// Plan selects the dispatch shape. The live runtime executes the subset
	// of the plan grammar with a faithful goroutine analogue: "1x16"/"single"
	// and "sw" (shared), "16x1"/"partitioned" (per-worker RSS), and "jbsqN"
	// (bounded dispatch). Nil means shared. Grouped (4×4, GxM) plans and
	// explicit NI policies have no live counterpart and are rejected.
	Plan *machine.Plan

	Workload workload.Profile

	// Workers is the serving-goroutine count (0 = DefaultWorkers). It plays
	// the role of Params.Cores: the partitioned shape builds one queue per
	// worker.
	Workers int

	// RateMRPS is the open-loop offered rate in millions of requests per
	// second of wall-clock time. CapacityMRPS estimates saturation.
	RateMRPS float64

	// Arrival optionally reshapes the traffic (nil = Poisson at RateMRPS),
	// with the same re-rating convention as machine.Config.
	Arrival arrival.Process

	// Duration is how long the generator offers load. Workers then drain
	// the backlog, so a run can outlive Duration under overload.
	Duration time.Duration

	// Warmup excludes the run's first stretch from the summary statistics
	// (0 = 10% of Duration). The timeline always covers the whole run.
	Warmup time.Duration

	Seed uint64

	// ServiceScale multiplies every sampled service time. 0 picks
	// RecommendedScale for the resolved emulation; set 1 explicitly to run
	// the profile's nanosecond-scale times as-is (spin mode only makes
	// sense there, and even then channel costs rival service).
	ServiceScale float64

	// Emulation selects spin-work or timer-sleep service (default auto).
	Emulation Emulation

	// QueueCap bounds the total queued backlog (0 = 1<<15). The generator
	// never blocks: arrivals beyond the cap are counted as dropped, keeping
	// the loop open under deep overload.
	QueueCap int

	// Epoch sets the timeline's initial epoch length and MaxEpochs its
	// slice bound (0 = metrics defaults, doubling as the run outgrows it).
	Epoch     sim.Duration
	MaxEpochs int

	// Trace, when non-nil, receives wall-clock lifecycle events
	// (arrive/start/complete; the live runtime has no dispatch timestamp)
	// for every TraceSample'th request. The events are assembled after the
	// run from the per-worker completion buffers the runtime already
	// keeps, so the serving path records nothing extra — tracing costs the
	// hot path nothing beyond one integer field per completion record.
	// Timestamps are nanoseconds since run start on the sim.Time axis.
	Trace trace.Recorder
	// TraceSample forwards only every Nth request (by sequence number) to
	// Trace; 0 and 1 both mean every request.
	TraceSample int
	// TailSamples, when positive, retains the K slowest completed
	// requests on Result.TailSpans — selected from the full completion
	// set, never sampled.
	TailSamples int

	// Obs, when non-nil, streams run progress into the observability
	// instrument set (internal/obs) *while the run is in flight*: the
	// generator counts offered/dropped arrivals, workers count
	// completions and observe latency histograms. Updates are atomic;
	// leave nil to keep the serving path free of them.
	Obs *obs.RunMetrics
}

func (c Config) workers() int {
	if c.Workers <= 0 {
		return DefaultWorkers
	}
	return c.Workers
}

func (c Config) queueCap() int {
	if c.QueueCap <= 0 {
		return 1 << 15
	}
	return c.QueueCap
}

// ShapeForPlan resolves a dispatch plan to a live queue shape and (for JBSQ)
// its per-worker outstanding bound.
func ShapeForPlan(pl *machine.Plan, workers int) (Shape, int, error) {
	if pl == nil {
		return ShapeShared, 0, nil
	}
	if pl.Policy.Name != "" && pl.Policy.Name != "least-outstanding" {
		return 0, 0, fmt.Errorf("live: plan policy %q has no live counterpart (the JBSQ dispatcher is least-outstanding by construction)", pl.Policy.Name)
	}
	if pl.Software {
		// A Go channel is a lock-guarded shared in-memory queue — the
		// software single queue and the hardware-shared shape coincide here.
		return ShapeShared, 0, nil
	}
	switch g := pl.Groups; {
	case g == 0 || g == 1:
		if t := pl.Threshold; t > 0 && t != ni.Unlimited {
			return ShapeJBSQ, t, nil
		}
		return ShapeShared, 0, nil
	case g == machine.GroupsPerCore || g == workers:
		return ShapePartitioned, 0, nil
	default:
		label := pl.Name
		if label == "" {
			label = fmt.Sprintf("%d groups", g)
		}
		return 0, 0, fmt.Errorf("live: grouped plan %q has no live counterpart with %d workers (want shared, partitioned, or jbsqN)", label, workers)
	}
}

// CapacityMRPS estimates the live configuration's saturation throughput:
// workers / scaled mean service. Dispatch overhead (≈1 µs/req of channel and
// scheduling cost) is not modeled; stay below ~0.8 of this estimate.
func CapacityMRPS(cfg Config) float64 {
	scale := cfg.ServiceScale
	if scale <= 0 {
		scale = RecommendedScale(cfg.Emulation, cfg.workers(), cfg.Workload)
	}
	m := cfg.Workload.MeanService() * scale
	if m <= 0 {
		return 0
	}
	return float64(cfg.workers()) / m * 1000
}

// Result is the measured outcome of one live run, in the same shapes the
// simulator's results use (stats.Summary, metrics.Timeline).
type Result struct {
	Plan         string
	Shape        string
	Workload     string
	Workers      int
	Emulation    string
	ServiceScale float64
	SpinsPerNs   float64 // calibrated spin rate (0 in sleep mode)
	RateMRPS     float64 // offered

	Offered   int // arrivals the generator released
	Completed int
	Dropped   int // arrivals shed at the queue cap (overload guard)

	ThroughputMRPS float64       // completions over the measurement window
	Latency        stats.Summary // end-to-end wall-clock latency, measured classes, ns
	Wait           stats.Summary // scheduled-arrival → service-start, ns
	ClassLatency   map[string]stats.Summary

	ServiceMeanNanos float64 // measured wall-clock occupancy per request
	TargetSvcNanos   float64 // scaled profile mean — the emulation's target
	SLONanos         float64
	MeetsSLO         bool

	DurationNanos float64 // configured offered-load window
	ElapsedNanos  float64 // wall time until the backlog drained

	Timeline metrics.Timeline

	// TailSpans holds the Config.TailSamples slowest requests of the run,
	// slowest first, on the wall clock: scheduled arrival, service start,
	// and completion (the live runtime has no dispatch timestamp), with
	// the serving worker as Core. Nil unless TailSamples was set.
	TailSpans []trace.Span
}

func (r Result) String() string {
	return fmt.Sprintf("live %s/%s ×%d (%s) @%.3fMRPS: thr=%.3fMRPS p50=%.0fns p99=%.0fns done=%d/%d drop=%d",
		r.Shape, r.Workload, r.Workers, r.Emulation, r.RateMRPS,
		r.ThroughputMRPS, r.Latency.P50, r.Latency.P99, r.Completed, r.Offered, r.Dropped)
}

// task is one live RPC: its deterministic pre-sampled identity plus the
// scheduled arrival instant.
type task struct {
	seq      uint64
	class    int
	svcNanos float64
	arrived  time.Time // scheduled release (open-loop clock)
}

// rec is one completion, recorded contention-free in a per-worker buffer and
// merged into the metrics.Recorder after the run. seq identifies the request
// so post-run span assembly (tail capture, sampled tracing) can attribute
// it.
type rec struct {
	atNs   float64 // completion time since run start
	latNs  float64
	waitNs float64
	svcNs  float64
	class  int
	seq    uint64
}

func (c Config) validate() (Shape, int, error) {
	if err := c.Workload.Validate(); err != nil {
		return 0, 0, err
	}
	shape, bound, err := ShapeForPlan(c.Plan, c.workers())
	if err != nil {
		return 0, 0, err
	}
	if !(c.RateMRPS > 0) && c.Arrival == nil {
		return 0, 0, fmt.Errorf("live: rate %v MRPS must be positive", c.RateMRPS)
	}
	if c.Duration <= 0 {
		return 0, 0, fmt.Errorf("live: duration %v must be positive", c.Duration)
	}
	if c.Warmup < 0 || c.Warmup >= c.Duration {
		return 0, 0, fmt.Errorf("live: warmup %v must be in [0, duration)", c.Warmup)
	}
	if c.ServiceScale < 0 {
		return 0, 0, fmt.Errorf("live: negative service scale %v", c.ServiceScale)
	}
	return shape, bound, nil
}

// Run executes one live configuration: it spins up the workers (and, for
// JBSQ, the dispatcher), offers load for cfg.Duration, drains the backlog,
// and assembles the Result. The goroutines it creates are joined before it
// returns.
func Run(cfg Config) (Result, error) {
	shape, bound, err := cfg.validate()
	if err != nil {
		return Result{}, err
	}
	workers := cfg.workers()
	em := resolveEmulation(cfg.Emulation, workers)
	scale := cfg.ServiceScale
	if scale <= 0 {
		scale = RecommendedScale(cfg.Emulation, workers, cfg.Workload)
	}
	spinsNs := 0.0
	if em == EmulationSpin {
		spinsNs = calibrateSpin()
	}
	warmup := cfg.Warmup
	if warmup == 0 {
		warmup = cfg.Duration / 10
	}

	// Deterministic offered schedule: independent streams per component,
	// mirroring machine.build's split order of intent (arrivals, class,
	// service, RSS assignment).
	root := rng.New(cfg.Seed)
	arrRNG, classRNG, svcRNG := root.Split(), root.Split(), root.Split()
	arr := arrival.Resolve(cfg.Arrival, cfg.RateMRPS)

	bufs := make([][]rec, workers)
	for w := range bufs {
		bufs[w] = make([]rec, 0, 1024)
	}
	start := time.Now()

	serve := func(w int, t *task, sink *uint64) rec {
		svcStart := time.Now()
		switch em {
		case EmulationSpin:
			*sink ^= spinRounds(int64(t.svcNanos*spinsNs), t.seq+1)
		default:
			time.Sleep(time.Duration(t.svcNanos))
		}
		end := time.Now()
		r := rec{
			atNs:   float64(end.Sub(start).Nanoseconds()),
			latNs:  float64(end.Sub(t.arrived).Nanoseconds()),
			waitNs: float64(svcStart.Sub(t.arrived).Nanoseconds()),
			svcNs:  float64(end.Sub(svcStart).Nanoseconds()),
			class:  t.class,
			seq:    t.seq,
		}
		if cfg.Obs != nil {
			cfg.Obs.OnCompleted(r.latNs, r.waitNs)
		}
		return r
	}

	// Wire the shape: enqueue() routes one task (reporting acceptance),
	// finish() closes the intake, done joins the serving side.
	var enqueue func(*task) bool
	var finish func()
	done := make(chan struct{})
	qcap := cfg.queueCap()

	worker := func(w int, ch <-chan *task, completions chan<- int) {
		var sink uint64
		for t := range ch {
			bufs[w] = append(bufs[w], serve(w, t, &sink))
			if completions != nil {
				completions <- w
			}
		}
		spinSink.Add(sink)
	}

	switch shape {
	case ShapeShared:
		shared := make(chan *task, qcap)
		go func() {
			defer close(done)
			var join []chan struct{}
			for w := 0; w < workers; w++ {
				j := make(chan struct{})
				join = append(join, j)
				go func(w int) { defer close(j); worker(w, shared, nil) }(w)
			}
			for _, j := range join {
				<-j
			}
		}()
		enqueue = func(t *task) bool {
			select {
			case shared <- t:
				return true
			default:
				return false
			}
		}
		finish = func() { close(shared) }

	case ShapePartitioned:
		// The configured cap bounds the *total* backlog, so it splits
		// across the private queues rather than flooring each one.
		per := qcap / workers
		if per < 1 {
			per = 1
		}
		qs := make([]chan *task, workers)
		for w := range qs {
			qs[w] = make(chan *task, per)
		}
		go func() {
			defer close(done)
			var join []chan struct{}
			for w := 0; w < workers; w++ {
				j := make(chan struct{})
				join = append(join, j)
				go func(w int) { defer close(j); worker(w, qs[w], nil) }(w)
			}
			for _, j := range join {
				<-j
			}
		}()
		enqueue = func(t *task) bool {
			// RSS-style static assignment: a stateless hash of the request
			// ID picks the queue at arrival, load-oblivious — the 16×1
			// baseline's defining property.
			q := qs[ni.RSSQueue(t.seq, workers)]
			select {
			case q <- t:
				return true
			default:
				return false
			}
		}
		finish = func() {
			for _, q := range qs {
				close(q)
			}
		}

	case ShapeJBSQ:
		shared := make(chan *task, qcap)
		work := make([]chan *task, workers)
		for w := range work {
			work[w] = make(chan *task, bound)
		}
		// completions is sized so a worker's send can never block even if
		// the dispatcher exits first (post-drain replenishes park in the
		// buffer instead).
		completions := make(chan int, workers*bound+1)
		go func() {
			defer close(done)
			var join []chan struct{}
			for w := 0; w < workers; w++ {
				j := make(chan struct{})
				join = append(join, j)
				go func(w int) { defer close(j); worker(w, work[w], completions) }(w)
			}
			// Dispatcher: the ni.Dispatcher loop on real threads — pop the
			// shared CQ head for the least-outstanding worker under the
			// bound, replenish on completion tokens.
			outstanding := make([]int, workers)
			var pending *task
			open := true
			for open || pending != nil {
				if pending == nil {
					select {
					case w := <-completions:
						outstanding[w]--
						continue
					case t, ok := <-shared:
						if !ok {
							open = false
							continue
						}
						pending = t
					}
				}
				best := -1
				for w, o := range outstanding {
					if o < bound && (best < 0 || o < outstanding[best]) {
						best = w
					}
				}
				if best < 0 {
					w := <-completions
					outstanding[w]--
					continue
				}
				work[best] <- pending
				outstanding[best]++
				pending = nil
			}
			for _, q := range work {
				close(q)
			}
			for _, j := range join {
				<-j
			}
		}()
		enqueue = func(t *task) bool {
			select {
			case shared <- t:
				return true
			default:
				return false
			}
		}
		finish = func() { close(shared) }
	}

	// Open-loop generator: pace the deterministic schedule on the wall
	// clock. Arrivals are stamped with their *scheduled* instant, so if the
	// generator falls behind, the lateness shows up as measured latency
	// instead of quietly stretching the offered rate.
	offered, dropped := 0, 0
	deadline := start.Add(cfg.Duration)
	next := start
	var seq uint64
	for {
		gap := arr.Next(arrRNG)
		next = next.Add(time.Duration(gap.Nanos()))
		if next.After(deadline) {
			break
		}
		class := cfg.Workload.PickClass(classRNG)
		t := &task{
			seq:      seq,
			class:    class,
			svcNanos: cfg.Workload.Classes[class].Service.Sample(svcRNG) * scale,
			arrived:  next,
		}
		seq++
		waitUntil(next)
		offered++ // accepted + dropped: every release the open loop made
		if cfg.Obs != nil {
			cfg.Obs.OnOffered()
		}
		if !enqueue(t) {
			dropped++
			if cfg.Obs != nil {
				cfg.Obs.OnDropped()
			}
		}
	}
	finish()
	<-done
	elapsed := time.Since(start)

	return assemble(cfg, shape, bound, em, scale, spinsNs, warmup, offered, dropped, elapsed, bufs), nil
}

// at converts a wall-clock offset in nanoseconds since run start to the
// recorder's virtual-time axis.
func at(ns float64) sim.Time { return sim.Time(sim.FromNanos(ns)) }

// assemble merges the per-worker completion buffers through a
// metrics.Recorder — the same measurement layer the simulators use — and
// builds the Result.
func assemble(cfg Config, shape Shape, bound int, em Emulation, scale, spinsNs float64,
	warmup time.Duration, offered, dropped int, elapsed time.Duration, bufs [][]rec) Result {

	workers := cfg.workers()
	classes := make([]string, len(cfg.Workload.Classes))
	for i, cl := range cfg.Workload.Classes {
		classes[i] = cl.Name
	}
	recorder := metrics.NewRecorder(metrics.Config{
		Classes:    classes,
		Servers:    workers,
		EpochNanos: cfg.Epoch.Nanos(),
		MaxEpochs:  cfg.MaxEpochs,
	})

	// Interleave the buffers into completion order so the recorder's window
	// gating sees time-sorted events, as it would in a simulation.
	type wrec struct {
		rec
		worker int
	}
	all := make([]wrec, 0, offered)
	for w, buf := range bufs {
		for _, r := range buf {
			all = append(all, wrec{r, w})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].atNs < all[j].atNs })

	// The window opens in event order, exactly as the simulators do it: the
	// recorder gates summaries on a flag, so opening before the replay
	// would let every pre-warmup completion contaminate them.
	winStart := float64(warmup.Nanoseconds())
	winEnd := winStart
	inWindow := 0
	opened := false
	for _, r := range all {
		t := at(r.atNs)
		if r.atNs >= winStart {
			if !opened {
				recorder.OpenWindow(at(winStart))
				opened = true
			}
			inWindow++
			winEnd = r.atNs
		}
		recorder.Busy(t, r.worker, sim.FromNanos(r.svcNs))
		recorder.Complete(t, metrics.Completion{
			Class:     r.class,
			Measured:  cfg.Workload.Classes[r.class].Measured,
			LatencyNs: r.latNs,
			WaitNs:    r.waitNs,
			ServiceNs: r.svcNs,
			Depth:     -1,
		})
	}
	recorder.CloseWindow(at(winEnd))

	// liveSpan reconstructs a request's wall-clock span from its completion
	// record: arrive = complete − latency, start = arrive + wait. Dispatch
	// has no live timestamp and stays Unset.
	liveSpan := func(r wrec) trace.Span {
		arriveNs := r.atNs - r.latNs
		return trace.Span{
			ReqID: r.seq, Node: 0, Core: r.worker, Rack: -1,
			DepthAtArrival: -1, DepthAtForward: -1, DepthAtGlobalForward: -1,
			GlobalRecv: trace.Unset, GlobalForward: trace.Unset,
			BalancerRecv: trace.Unset, Forward: trace.Unset, Dispatch: trace.Unset,
			Arrive:   at(arriveNs),
			Start:    at(arriveNs + r.waitNs),
			Complete: at(r.atNs),
		}
	}

	var tailSpans []trace.Span
	if cfg.TailSamples > 0 && len(all) > 0 {
		// Select on the measured latency (exact), then materialize spans.
		byLat := append([]wrec(nil), all...)
		sort.Slice(byLat, func(i, j int) bool {
			if byLat[i].latNs != byLat[j].latNs {
				return byLat[i].latNs > byLat[j].latNs
			}
			return byLat[i].seq < byLat[j].seq
		})
		k := cfg.TailSamples
		if k > len(byLat) {
			k = len(byLat)
		}
		for _, r := range byLat[:k] {
			tailSpans = append(tailSpans, liveSpan(r))
		}
	}

	if cfg.Trace != nil {
		// Replay the sampled requests' lifecycles in completion order. This
		// is the post-run export pass; the serving path never sees it.
		sampleN := uint64(1)
		if cfg.TraceSample > 1 {
			sampleN = uint64(cfg.TraceSample)
		}
		for _, r := range all {
			if r.seq%sampleN != 0 {
				continue
			}
			s := liveSpan(r)
			cfg.Trace.Record(trace.Event{ReqID: r.seq, Phase: trace.PhaseArrive, At: s.Arrive, Core: -1, Depth: -1})
			cfg.Trace.Record(trace.Event{ReqID: r.seq, Phase: trace.PhaseStart, At: s.Start, Core: r.worker, Depth: -1})
			cfg.Trace.Record(trace.Event{ReqID: r.seq, Phase: trace.PhaseComplete, At: s.Complete, Core: r.worker, Depth: -1})
		}
	}

	planName := shape.String()
	if shape == ShapeJBSQ {
		planName = fmt.Sprintf("jbsq%d", bound)
	}
	if cfg.Plan != nil && cfg.Plan.Name != "" {
		planName = cfg.Plan.Name
	}

	res := Result{
		Plan:         planName,
		Shape:        shape.String(),
		Workload:     cfg.Workload.Name,
		Workers:      workers,
		Emulation:    em.String(),
		ServiceScale: scale,
		SpinsPerNs:   spinsNs,
		RateMRPS:     cfg.RateMRPS,
		Offered:      offered,
		Completed:    len(all),
		Dropped:      dropped,
		Latency:      recorder.Latency(),
		Wait:         recorder.Wait(),
		ClassLatency: make(map[string]stats.Summary, len(classes)),

		ServiceMeanNanos: recorder.ServiceMean(),
		TargetSvcNanos:   cfg.Workload.MeanService() * scale,
		DurationNanos:    float64(cfg.Duration.Nanoseconds()),
		ElapsedNanos:     float64(elapsed.Nanoseconds()),
		Timeline:         recorder.Timeline(),
		TailSpans:        tailSpans,
	}
	for i, name := range classes {
		res.ClassLatency[name] = recorder.Class(i)
	}
	if span := winEnd - winStart; span > 0 && inWindow > 1 {
		res.ThroughputMRPS = float64(inWindow) / span * 1000
	}
	if cfg.Workload.SLONanos > 0 {
		res.SLONanos = cfg.Workload.SLONanos * scale
	} else {
		res.SLONanos = cfg.Workload.SLOFactor * res.ServiceMeanNanos
	}
	res.MeetsSLO = res.Latency.Count > 0 && res.Latency.P99 <= res.SLONanos
	return res
}
