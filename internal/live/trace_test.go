package live

import (
	"testing"
	"time"

	"rpcvalet/internal/machine"
	"rpcvalet/internal/obs"
	"rpcvalet/internal/trace"
	"rpcvalet/internal/workload"
)

// TestLiveTailSpans: a traced live run surfaces exactly K completed spans,
// slowest first, with sane wall-clock structure (wait + service ≈ total,
// worker attribution in range). Assertions are structural — never absolute
// latencies — so scheduler noise cannot flake CI.
func TestLiveTailSpans(t *testing.T) {
	cfg := smokeConfig("1x16", t)
	cfg.TailSamples = 8
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TailSpans) != 8 {
		t.Fatalf("tail spans = %d, want 8", len(res.TailSpans))
	}
	for i, s := range res.TailSpans {
		if !s.Completed() {
			t.Fatalf("span %d incomplete", i)
		}
		if s.Core < 0 || s.Core >= cfg.workers() {
			t.Fatalf("span %d worker %d out of range", i, s.Core)
		}
		if s.Dispatch != trace.Unset || s.BalancerRecv != trace.Unset {
			t.Fatalf("span %d carries phases the live runtime cannot measure: %+v", i, s)
		}
		if s.TotalNs() <= 0 || s.ServiceNs() <= 0 {
			t.Fatalf("span %d degenerate: %v", i, s)
		}
		if got, want := s.QueueWaitNs()+s.ServiceNs(), s.TotalNs(); got != want {
			t.Fatalf("span %d legs don't add up: wait+svc=%v total=%v", i, got, want)
		}
		if i > 0 && s.TotalNs() > res.TailSpans[i-1].TotalNs() {
			t.Fatal("tail not slowest-first")
		}
	}
	// The slowest retained span is the run's maximum latency.
	if res.TailSpans[0].TotalNs() < res.Latency.P99 {
		t.Fatalf("slowest span %.0fns below p99 %.0fns", res.TailSpans[0].TotalNs(), res.Latency.P99)
	}
}

// TestLiveTraceSampling: the post-run trace replay respects the sampling
// rate and stays causally ordered per request.
func TestLiveTraceSampling(t *testing.T) {
	cfg := smokeConfig("jbsq2", t)
	cfg.TraceSample = 4
	var events []trace.Event
	cfg.Trace = trace.Func(func(e trace.Event) { events = append(events, e) })
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no trace events")
	}
	byReq := make(map[uint64][]trace.Event)
	for _, e := range events {
		if e.ReqID%4 != 0 {
			t.Fatalf("sampled stream leaked req %d", e.ReqID)
		}
		byReq[e.ReqID] = append(byReq[e.ReqID], e)
	}
	for id, evs := range byReq {
		if len(evs) != 3 {
			t.Fatalf("req %d: %d events, want arrive/start/complete", id, len(evs))
		}
		for i := 1; i < len(evs); i++ {
			if evs[i].Phase.Rank() <= evs[i-1].Phase.Rank() || evs[i].At < evs[i-1].At {
				t.Fatalf("req %d: out of order: %v then %v", id, evs[i-1], evs[i])
			}
		}
	}
	// Roughly 1-in-4 of completions traced (sequence numbering is exact, so
	// this is a hard bound, not a statistical one).
	if traced, max := len(byReq), res.Completed/4+1; traced > max {
		t.Fatalf("traced %d of %d completions at 1/4 sampling", traced, res.Completed)
	}
}

// TestLiveObsHooks: a run wired to RunMetrics leaves the counters consistent
// with the Result and the inflight gauge drained to zero.
func TestLiveObsHooks(t *testing.T) {
	cfg := smokeConfig("16x1", t)
	reg := obs.NewRegistry()
	cfg.Obs = obs.NewRunMetrics(reg, obs.Labels{"plan": "16x1"})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := cfg.Obs.Offered.Value(); got != uint64(res.Offered) {
		t.Fatalf("offered counter %d, result %d", got, res.Offered)
	}
	if got := cfg.Obs.Completed.Value(); got != uint64(res.Completed) {
		t.Fatalf("completed counter %d, result %d", got, res.Completed)
	}
	if got := cfg.Obs.Dropped.Value(); got != uint64(res.Dropped) {
		t.Fatalf("dropped counter %d, result %d", got, res.Dropped)
	}
	if v := cfg.Obs.Inflight.Value(); v != 0 {
		t.Fatalf("inflight gauge %v after drain", v)
	}
	if got := cfg.Obs.Latency.Count(); got != uint64(res.Completed) {
		t.Fatalf("latency observations %d, completed %d", got, res.Completed)
	}
}

// BenchmarkLiveTraceOverhead quantifies tracing's live-throughput cost: the
// same run untraced, then with tail capture + 1/1024-sampled tracing + obs
// instruments all on. Compare the rps metrics across sub-benchmarks — the
// instrumented run's throughput should sit within ~2% of baseline (the
// serving path only gains one integer per completion record and a few
// atomics). CI pipes this through cmd/benchjson into BENCH_obs.json.
func BenchmarkLiveTraceOverhead(b *testing.B) {
	base := func(b *testing.B) Config {
		pl, err := machine.ParsePlan("1x16")
		if err != nil {
			b.Fatal(err)
		}
		cfg := Config{
			Plan:     pl,
			Workload: workload.SyntheticExp(),
			Workers:  4,
			Duration: 100 * time.Millisecond,
			Seed:     42,
		}
		cfg.RateMRPS = 0.5 * CapacityMRPS(cfg)
		return cfg
	}
	run := func(b *testing.B, mutate func(*Config)) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			cfg := base(b)
			mutate(&cfg)
			res, err := Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.Completed), "completions")
			b.ReportMetric(res.ThroughputMRPS*1e6, "rps")
		}
	}
	b.Run("untraced", func(b *testing.B) {
		run(b, func(*Config) {})
	})
	b.Run("traced-1in1024", func(b *testing.B) {
		run(b, func(cfg *Config) {
			cfg.TailSamples = 64
			cfg.TraceSample = 1024
			cfg.Trace = trace.Func(func(trace.Event) {})
			cfg.Obs = obs.NewRunMetrics(obs.NewRegistry(), obs.Labels{"plan": "1x16"})
		})
	})
}
