package machine

import (
	"testing"

	"rpcvalet/internal/sim"
	"rpcvalet/internal/workload"
)

func TestParseFault(t *testing.T) {
	f, err := ParseFault("x1.5")
	if err != nil || f.Slowdown != 1.5 || len(f.Pauses) != 0 {
		t.Fatalf("x1.5 -> %+v, %v", f, err)
	}
	f, err = ParseFault("pause@200us+100us")
	if err != nil || f.Slowdown != 0 || len(f.Pauses) != 1 {
		t.Fatalf("pause -> %+v, %v", f, err)
	}
	if f.Pauses[0].Start != sim.FromMicros(200) || f.Pauses[0].Dur != sim.FromMicros(100) {
		t.Fatalf("pause window = %+v", f.Pauses[0])
	}
	f, err = ParseFault("x2,pause@50us+10us,pause@500us+10us")
	if err != nil || f.Slowdown != 2 || len(f.Pauses) != 2 {
		t.Fatalf("combined -> %+v, %v", f, err)
	}
	for _, bad := range []string{"y1.5", "x0", "x-1", "pause@50us", "pause@+10us", "pause@zz+10us", "1.5"} {
		if _, err := ParseFault(bad); err == nil {
			t.Errorf("ParseFault(%q) accepted", bad)
		}
	}
}

func TestPauseStall(t *testing.T) {
	pauses := []Pause{
		{Start: sim.FromNanos(100), Dur: sim.FromNanos(50)},
		{Start: sim.FromNanos(120), Dur: sim.FromNanos(100)},
	}
	cases := []struct {
		at   float64
		want sim.Duration
	}{
		{0, 0},
		{99, 0},
		{100, sim.FromNanos(50)}, // first window only
		{130, sim.FromNanos(90)}, // overlapping: deeper window wins
		{219, sim.FromNanos(1)},  // tail of second window
		{220, 0},                 // window end is exclusive
		{1000, 0},
	}
	for _, c := range cases {
		if got := pauseStall(pauses, sim.Time(0).Add(sim.FromNanos(c.at))); got != c.want {
			t.Errorf("pauseStall at %gns = %v, want %v", c.at, got, c.want)
		}
	}
}

// TestSlowdownStretchesService checks that a degraded machine's measured S̄
// scales by the slowdown factor and its SLO-relative tail worsens.
func TestSlowdownStretchesService(t *testing.T) {
	cfg := testConfig(ModeSingleQueue, workload.SyntheticExp(), 6)
	cfg.Warmup, cfg.Measure = 500, 6000
	healthy := mustRun(t, cfg)

	cfg.Slowdown = 1.5
	slow := mustRun(t, cfg)

	ratio := slow.ServiceMeanNanos / healthy.ServiceMeanNanos
	// S̄ = fixed overhead + 1.5 × handler; with exp(300)+300ns handlers and
	// ~200ns overhead the expected ratio is ≈ 1.39. Allow sampling slack.
	if ratio < 1.25 || ratio > 1.5 {
		t.Fatalf("S̄ ratio under 1.5x slowdown = %.3f (healthy %.0f, slow %.0f)",
			ratio, healthy.ServiceMeanNanos, slow.ServiceMeanNanos)
	}
	if slow.Latency.P99 <= healthy.Latency.P99 {
		t.Fatalf("slowdown did not hurt the tail: %v vs %v", slow.Latency.P99, healthy.Latency.P99)
	}
}

// TestSlowdownOneIsHealthy: Slowdown 1 (and 0) must reproduce the healthy
// machine's result stream bit for bit.
func TestSlowdownOneIsHealthy(t *testing.T) {
	cfg := testConfig(ModeSingleQueue, workload.HERD(), 8)
	cfg.Warmup, cfg.Measure = 300, 3000
	base := mustRun(t, cfg)
	for _, s := range []float64{0, 1} {
		cfg.Slowdown = s
		got := mustRun(t, cfg)
		if got.Latency != base.Latency || got.ThroughputMRPS != base.ThroughputMRPS {
			t.Fatalf("slowdown %g diverged from healthy run", s)
		}
	}
}

// TestPauseWindowBacklog: a pause stalls work beginning inside the window,
// building a backlog visible as a latency spike in the timeline epochs
// covering the pause — and the spike drains afterward.
func TestPauseWindowBacklog(t *testing.T) {
	cfg := testConfig(ModeSingleQueue, workload.SyntheticExp(), 8)
	cfg.Warmup, cfg.Measure = 500, 12000
	cfg.Epoch = 50 * sim.Microsecond
	base := mustRun(t, cfg)

	pauseStart, pauseDur := 400*sim.Microsecond, 100*sim.Microsecond
	cfg.Pauses = []Pause{{Start: pauseStart, Dur: pauseDur}}
	paused := mustRun(t, cfg)

	if paused.Latency.P99 <= base.Latency.P99 {
		t.Fatalf("pause did not raise p99: %v vs %v", paused.Latency.P99, base.Latency.P99)
	}
	tl := paused.Timeline
	if len(tl.Epochs) == 0 {
		t.Fatal("timeline empty")
	}
	// The epoch containing the pause's end sees the stalled backlog drain:
	// its p99 must tower over the first epoch after warmup settles.
	spikeIdx := tl.EpochIndex((pauseStart + pauseDur).Nanos())
	calm := tl.Epochs[tl.EpochIndex(200_000)] // well before the pause
	spike := tl.Epochs[spikeIdx]
	if spike.Latency.P99 < 4*calm.Latency.P99 {
		t.Fatalf("pause spike not visible: spike p99 %.0f vs calm %.0f",
			spike.Latency.P99, calm.Latency.P99)
	}
	// And the last epoch has recovered to within an order of magnitude of calm.
	last := tl.Epochs[len(tl.Epochs)-1]
	if last.Latency.Count > 0 && last.Latency.P99 > 10*calm.Latency.P99 {
		t.Fatalf("tail never recovered after pause: last p99 %.0f vs calm %.0f",
			last.Latency.P99, calm.Latency.P99)
	}
}

// TestTimelinePopulated: every run's Result carries a coherent timeline —
// epochs tile the run, completions sum to the total, and utilization and
// throughput are sane.
func TestTimelinePopulated(t *testing.T) {
	cfg := testConfig(ModeSingleQueue, workload.HERD(), 10)
	cfg.Warmup, cfg.Measure = 300, 5000
	res := mustRun(t, cfg)
	tl := res.Timeline
	if tl.EpochNanos <= 0 || len(tl.Epochs) == 0 {
		t.Fatalf("timeline unpopulated: %+v", tl)
	}
	total := 0
	for i, e := range tl.Epochs {
		total += e.Completions
		if e.StartNanos != float64(i)*tl.EpochNanos || e.EndNanos-e.StartNanos != tl.EpochNanos {
			t.Fatalf("epoch %d does not tile: %+v", i, e)
		}
		if e.Utilization < 0 || e.MeanDepth < 0 {
			t.Fatalf("epoch %d has negative stats: %+v", i, e)
		}
	}
	if total != res.Completed {
		t.Fatalf("timeline completions %d != run completions %d", total, res.Completed)
	}
}

// TestTimelineDeterministic: identical configs produce identical timelines.
func TestTimelineDeterministic(t *testing.T) {
	cfg := testConfig(ModeGrouped, workload.SyntheticExp(), 9)
	cfg.Warmup, cfg.Measure = 200, 3000
	a, b := mustRun(t, cfg), mustRun(t, cfg)
	if a.Timeline.EpochNanos != b.Timeline.EpochNanos || len(a.Timeline.Epochs) != len(b.Timeline.Epochs) {
		t.Fatal("timeline shape nondeterministic")
	}
	for i := range a.Timeline.Epochs {
		if a.Timeline.Epochs[i] != b.Timeline.Epochs[i] {
			t.Fatalf("epoch %d differs between identical runs", i)
		}
	}
}
