package machine

import (
	"testing"

	"rpcvalet/internal/workload"
)

// marginalAllocsPerRequest measures the steady-state allocation cost of one
// simulated request by differencing two run lengths: total allocations grow
// with Measure only through the per-request hot path, so
// (allocs(big) - allocs(base)) / (big - base) isolates it from the fixed
// setup cost (machine build, buffers, pre-sized queues) that dominates any
// absolute count. Pre-sizing from Config.Measure stays O(1) allocations per
// run — bigger runs allocate bigger slices, not more of them — so it cancels
// too.
func marginalAllocsPerRequest(t *testing.T, run func(measure int)) float64 {
	t.Helper()
	const base, big = 4000, 24000
	baseAllocs := testing.AllocsPerRun(2, func() { run(base) })
	bigAllocs := testing.AllocsPerRun(2, func() { run(big) })
	return (bigAllocs - baseAllocs) / float64(big-base)
}

// TestSteadyStateAllocsPerRequest pins the tentpole invariant: with tracing
// off, the per-request simulation path allocates nothing. The measured
// marginal cost is ~0.09 allocations per request, all amortized growth of
// the epoch-timeline latency samples (slice doubling plus the pairwise
// merges when the timeline re-buckets) — there is no O(1)-per-request
// allocation left. The 0.15 budget holds that line while catching any real
// regression: a single closure, boxed value, or map insert per request
// would read ≥1.0.
func TestSteadyStateAllocsPerRequest(t *testing.T) {
	for _, mode := range []Mode{ModeSingleQueue, ModePartitioned, ModeSoftware} {
		t.Run(mode.String(), func(t *testing.T) {
			per := marginalAllocsPerRequest(t, func(measure int) {
				cfg := testConfig(mode, workload.HERD(), 5)
				cfg.Warmup = 500
				cfg.Measure = measure
				if _, err := Run(cfg); err != nil {
					t.Fatal(err)
				}
			})
			if per > 0.15 {
				t.Errorf("steady-state allocations per request = %.4f, budget 0.15", per)
			}
		})
	}
}
