// Package machine is the full-system model of the paper's evaluation
// platform (§5): a 16-core server chip with integrated Manycore NIs running
// the RPC microbenchmark, fed by a traffic generator emulating a 200-node
// cluster. It composes the protocol substrate (internal/sonuma), the NI
// dispatch machinery (internal/ni), the interconnect and memory models
// (internal/noc, internal/mem), and the workload profiles
// (internal/workload) on top of the discrete-event engine (internal/sim).
//
// The model is first-order rather than cycle-accurate: every architectural
// interaction is an explicit latency or occupancy derived from Table 1
// (see Defaults), so the experiments reproduce the paper's comparative
// results — which configuration wins, by what factor, where the knees fall —
// without simulating pipelines microarchitecturally. DESIGN.md details the
// substitution and its rationale.
package machine

import (
	"fmt"

	"rpcvalet/internal/mem"
	"rpcvalet/internal/ni"
	"rpcvalet/internal/noc"
	"rpcvalet/internal/sim"
	"rpcvalet/internal/sonuma"
)

// Mode selects one of the paper's four evaluated configurations (§6). Modes
// are now a facade: each resolves to a canned dispatch Plan (PlanForMode)
// with byte-identical results, and Params.Plan expresses everything in
// between (JBSQ(n), 2×8 groupings, per-dispatcher policies, ...).
type Mode int

const (
	// ModeSingleQueue is RPCValet proper: one NI dispatcher balancing all
	// cores from a single shared CQ (Model 1×16).
	ModeSingleQueue Mode = iota
	// ModeGrouped gives each NI backend its own dispatcher restricted to
	// the four cores of its mesh row (Model 4×4).
	ModeGrouped
	// ModePartitioned statically assigns each message to a core at
	// arrival time, RSS-style, with no rebalancing (Model 16×1) — the
	// partitioned-dataplane baseline.
	ModePartitioned
	// ModeSoftware implements the 1×16 queue in software: NIs append to a
	// single in-memory queue and cores pull from it under an MCS lock
	// (§6.2's baseline).
	ModeSoftware
)

func (m Mode) String() string {
	switch m {
	case ModeSingleQueue:
		return "rpcvalet-1x16"
	case ModeGrouped:
		return "grouped-4x4"
	case ModePartitioned:
		return "partitioned-16x1"
	case ModeSoftware:
		return "software-1x16"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Params collects the architectural parameters of the modeled server.
// Zero values are invalid; start from Defaults and override.
type Params struct {
	Cores    int // serving cores (16 in the paper)
	Backends int // NI backends on the mesh edge (4)

	Mesh   noc.Mesh
	Mem    mem.Hierarchy
	Domain sonuma.DomainConfig // messaging domain: cluster size, slots, MTU

	// Mode names a canned dispatch architecture; Plan, when non-nil, takes
	// precedence and describes the architecture declaratively (grouping ×
	// policy × outstanding threshold × queue placement). See Plan.
	Mode      Mode
	Plan      *Plan
	Threshold int       // outstanding requests per core (§4.3; paper default 2)
	Policy    ni.Policy // dispatch policy shared by all dispatchers; nil = per-dispatcher default (ni.LeastOutstandingRR). Prefer Plan.Policy, which gives each dispatcher a fresh instance.

	// RSSByFlow makes ModePartitioned key its static hash on the source
	// node (true flow affinity, like real RSS). When false, each message
	// is assigned uniformly at random, matching the paper's 16×1 queueing
	// model. The ablation benches compare both.
	RSSByFlow bool

	// NI and interconnect occupancies/latencies.
	PacketProc    sim.Duration // backend pipeline occupancy per 64B packet
	MemWrite      sim.Duration // payload write visible in memory after last packet
	DispatchCycle sim.Duration // dispatcher stage occupancy per decision
	CQEDeliver    sim.Duration // frontend writing a CQE into a core's CQ
	WQERead       sim.Duration // frontend reading a WQE a core posted
	// DispatchExtra injects additional latency on every backend→dispatcher
	// and core→dispatcher control message. The paper argues the dispatcher
	// indirection costs "just a few ns" and is negligible (§4.3); the
	// ablation bench sweeps this knob to test that claim.
	DispatchExtra sim.Duration

	// Core-side per-request costs (the microbenchmark's S̄ − D component).
	PollDetect    sim.Duration // CQ poll loop detection delay when idle
	BufRead       sim.Duration // reading the request payload from the receive buffer
	LoopOverhead  sim.Duration // event-loop bookkeeping around the handler
	SendPost      sim.Duration // composing + posting the reply send
	ReplenishPost sim.Duration // posting the replenish WQE

	// Software single-queue (MCS) cost model (§6.2).
	LockUncontended sim.Duration // acquire when the lock is free
	LockHandoff     sim.Duration // cache-line handoff when contended
	LockCrit        sim.Duration // critical section: dequeue from shared CQ

	// Cluster network.
	NetRTT sim.Duration // round trip to a remote node (credit return time)
}

// Defaults returns the paper-calibrated parameter set.
//
// Interconnect and memory follow Table 1 exactly. The NI and core-side
// costs are first-order calibrations chosen so that the measured mean
// service time S̄ reproduces the paper's: HERD's 330 ns processing-time
// distribution must yield S̄ ≈ 550 ns (§6.1), i.e. ≈200 ns of microbenchmark
// overhead around the handler. The MCS costs are set so the software
// single queue serializes at ≈190 ns per dequeue, reproducing Fig 8's
// 2.3–2.7× gap. EXPERIMENTS.md records the resulting measurements.
func Defaults() Params {
	return Params{
		Cores:    16,
		Backends: 4,
		Mesh:     noc.Default(),
		Mem:      mem.Default(),
		Domain:   sonuma.DomainConfig{Nodes: 200, Slots: 32, MaxMsgSize: 2048, MTU: 64},

		Mode:      ModeSingleQueue,
		Threshold: 2,

		PacketProc:    3 * sim.Nanosecond,
		MemWrite:      6 * sim.Nanosecond,
		DispatchCycle: 1 * sim.Nanosecond,
		CQEDeliver:    2 * sim.Nanosecond,
		WQERead:       2 * sim.Nanosecond,

		PollDetect:    20 * sim.Nanosecond,
		BufRead:       30 * sim.Nanosecond,
		LoopOverhead:  100 * sim.Nanosecond,
		SendPost:      50 * sim.Nanosecond,
		ReplenishPost: 20 * sim.Nanosecond,

		LockUncontended: 15 * sim.Nanosecond,
		LockHandoff:     120 * sim.Nanosecond,
		LockCrit:        70 * sim.Nanosecond,

		NetRTT: sim.FromNanos(1000),
	}
}

// CoreOverheadNanos returns the fixed per-request core occupancy added
// around the workload's handler time: the S̄ − D component of §6.3.
func (p Params) CoreOverheadNanos() float64 {
	return (p.BufRead + p.LoopOverhead + p.SendPost + p.ReplenishPost).Nanos()
}

// Validate reports whether the parameter set is internally consistent.
func (p Params) Validate() error {
	switch {
	case p.Cores <= 0:
		return fmt.Errorf("machine: need at least one core")
	case p.Backends <= 0:
		return fmt.Errorf("machine: need at least one backend")
	case p.Cores%p.Backends != 0:
		return fmt.Errorf("machine: cores (%d) must divide evenly among backends (%d)", p.Cores, p.Backends)
	case p.Mesh.Tiles() < p.Cores:
		return fmt.Errorf("machine: mesh has %d tiles for %d cores", p.Mesh.Tiles(), p.Cores)
	case p.Threshold < 1:
		return fmt.Errorf("machine: outstanding threshold %d must be >= 1", p.Threshold)
	case p.Mode < ModeSingleQueue || p.Mode > ModeSoftware:
		return fmt.Errorf("machine: unknown mode %d", p.Mode)
	}
	if err := p.Domain.Validate(); err != nil {
		return err
	}
	if p.Mem.BlockBytes != p.Domain.MTU {
		return fmt.Errorf("machine: cache block (%dB) and MTU (%dB) must agree in soNUMA",
			p.Mem.BlockBytes, p.Domain.MTU)
	}
	if p.Plan != nil {
		return p.Plan.validate(p)
	}
	return nil
}
