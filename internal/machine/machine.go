package machine

import (
	"fmt"

	"rpcvalet/internal/arrival"
	"rpcvalet/internal/fifo"
	"rpcvalet/internal/metrics"
	"rpcvalet/internal/ni"
	"rpcvalet/internal/noc"
	"rpcvalet/internal/rng"
	"rpcvalet/internal/sim"
	"rpcvalet/internal/sonuma"
	"rpcvalet/internal/trace"
	"rpcvalet/internal/workload"
)

// request tracks one RPC through the machine. Requests are pooled: complete
// recycles them onto a free-list once the last trailing event (reply-credit
// return, replenish) has fired, so steady state allocates no request objects.
// The stage fields (backend, disp, core, svcStart, replySlot) carry the state
// the hot path's arg-form events need, replacing per-event closures; every
// stage field is written before the stage that reads it.
type request struct {
	id       uint64
	src      sonuma.NodeID
	pairSlot int // slot within the (src → us) slot set
	slot     int // global receive-buffer slot index
	class    int
	svcNanos float64  // handler time, sampled at admission for determinism
	arrive   sim.Time // message fully received at the NI (measurement start)
	// onDone, when non-nil, fires at completion time. Externally injected
	// requests (multi-node simulations) carry their measurement callback
	// here instead of using the machine's internal counters. onDoneFn is the
	// allocation-free form: onDoneFn(onDoneArg, class, measured).
	onDone    func(class int, measured bool)
	onDoneFn  func(arg any, class int, measured bool)
	onDoneArg any

	backend   int      // NI backend ingesting this request
	disp      int      // dispatcher routing the completion token
	core      *core    // serving core, set at dispatch/begin
	svcStart  sim.Time // handler start (after poll detection and stalls)
	replySlot int      // send-buffer slot the reply occupies
	refs      int      // trailing events still holding this request
}

// core is one serving core's state. Busy-time accounting lives in the
// machine's metrics.Recorder, keyed by core ID.
type core struct {
	id   int
	tile noc.Coord
	busy bool
	// cq is the private completion queue: dispatched messages awaiting
	// processing.
	cq fifo.Queue[*request]
}

// Machine is one instantiated simulation of the server. Create it with new
// state per run; it is not reusable.
type Machine struct {
	p    Params
	plan execPlan // the resolved dispatch plan driving every dispatch path
	wl   workload.Profile
	cfg  Config
	eng  *sim.Engine

	arrRNG, srcRNG, classRNG, svcRNG, rssRNG *rng.Source

	cores       []*core
	backends    []*sim.Server
	backendTile []noc.Coord
	dispatchers []*ni.Dispatcher
	dispServer  []*sim.Server
	dispTile    []noc.Coord
	coreDisp    []int // core ID -> dispatcher index

	recvBuf  *sonuma.ReceiveBuffer
	replyBuf *sonuma.SendBuffer

	// Inflight tracking: a dense table keyed by receive-buffer slot (unique
	// per admitted request — §4.2's N×S flow control guarantees a slot is
	// never reused before its replenish) plus a plain counter covering both
	// admitted and flow-control-parked requests, preserving the depth
	// semantics of the hashmap this replaces.
	reqBySlot     []*request
	inflightCount int
	pool          []*request // recycled request objects

	freeSlots    []fifo.Queue[int]      // per source node: free per-pair slots, FIFO ring order
	pendingBySrc []fifo.Queue[*request] // arrivals blocked on slot flow control

	// Software single-queue state.
	swQueue    fifo.Queue[*request]
	swMaxDepth int
	idleCores  fifo.Queue[int]
	lock       *sim.Server

	replyWaiters []fifo.Queue[*request] // indexed by requester node

	arr    arrival.Process
	nextID uint64

	// Batched RNG draws (see internal/rng batch contract: each stream is
	// private to its consumer and values are handed out in draw order, so
	// batching is byte-identical to per-call draws).
	arrBatch   *arrival.Batch
	srcBatch   *rng.IntBatch
	classBatch *rng.FloatBatch
	rssBatch   *rng.IntBatch
	classTotal float64
	reqPkts    int // packets per request message (fixed per workload)
	replyPkts  int // packets per reply message

	// Hot-path event callbacks, bound once at build so steady-state
	// scheduling allocates no closures (sim.Engine.ScheduleArg).
	fnSelfArrival func(any)
	fnIngested    func(any)
	fnArrived     func(any)
	fnRouteWire   func(any)
	fnRouteSubmit func(any)
	fnDelivered   func(any)
	fnFinish      func(any)
	fnReplySent   func(any)
	fnReplyCredit func(any)
	fnReplenish   func(any)
	fnNotifyWire  func(any)
	fnNotifyDone  func(any)
	fnSWEnqueue   func(any)
	fnLockDone    func(any)

	// Tracing: tail retains the K slowest spans (always unsampled);
	// sampleN gates cfg.Trace to one request in N. Both nil/1 by default —
	// the hot path stays allocation-free and byte-identical when off.
	tail    *trace.TailSampler
	sampleN uint64

	// external marks a machine embedded in a larger simulation
	// (internal/cluster): arrivals are injected by the owner, and the
	// machine neither measures nor stops the shared engine itself.
	external bool

	// slow is the resolved service-slowdown factor (1 = healthy).
	slow float64

	// Measurement: all samples, the epoch timeline, and the measurement
	// window live in the recorder; the machine keeps only run control.
	rec             *metrics.Recorder
	completed       int
	target          int
	blockedArrivals uint64
	replyStalls     uint64
	timedOut        bool
}

// Config describes one machine run.
type Config struct {
	Params   Params
	Workload workload.Profile
	RateMRPS float64 // offered arrival rate, millions of requests per second
	// Arrival, when non-nil, selects the traffic model driving the open
	// loop. Nil means Poisson at RateMRPS — the historical behavior,
	// byte-for-byte identical result streams for existing seeds. When set
	// alongside a positive RateMRPS, the process is re-rated to RateMRPS
	// (its shape — burst ratio, gap CV — is preserved); with RateMRPS
	// zero it is used exactly as constructed.
	Arrival arrival.Process
	Warmup  int // completions discarded before measuring
	Measure int // completions measured
	Seed    uint64
	// MaxSimTime aborts the run after this much virtual time (0 = none),
	// a safety valve for overload points that crawl toward completion.
	MaxSimTime sim.Duration
	// Trace, when non-nil, receives per-request lifecycle events
	// (arrive/dispatch/start/complete). It runs inline on the simulation
	// path; use a bounded trace.Buffer for long runs.
	Trace trace.Recorder
	// TraceSample records only every Nth request (by request ID) to Trace;
	// 0 and 1 both mean every request. Sampling gates Trace only — the
	// tail sampler below always sees the full stream, so the retained
	// K-slowest set stays exact at any sampling rate.
	TraceSample int
	// TailSamples, when positive, retains the K slowest requests of the
	// run with full span breakdowns on Result.TailSpans. Passive: it never
	// perturbs the simulation's RNG streams or event order.
	TailSamples int
	// Slowdown multiplies every sampled handler service time — a degraded
	// (thermally throttled, misconfigured) server. 0 and 1 both mean full
	// speed, byte-for-byte reproducing historical result streams.
	Slowdown float64
	// Pauses lists stall windows: a core beginning work inside one stalls
	// until the window ends (GC pause, power event). See Pause.
	Pauses []Pause
	// Epoch sets the Result timeline's initial epoch length; 0 uses the
	// metrics default (1 µs, doubling as the run outgrows it). MaxEpochs
	// bounds the timeline's slice count (0 = metrics default, 64);
	// experiments that compare timelines across runs pin both so a long
	// run cannot silently double its granularity.
	Epoch     sim.Duration
	MaxEpochs int
}

func (c Config) validate() error {
	if err := c.Params.Validate(); err != nil {
		return err
	}
	if err := c.Workload.Validate(); err != nil {
		return err
	}
	switch {
	case !(c.RateMRPS > 0) && c.Arrival == nil:
		return fmt.Errorf("machine: rate %v MRPS must be positive", c.RateMRPS)
	case c.Measure <= 0:
		return fmt.Errorf("machine: Measure must be positive")
	case c.Warmup < 0:
		return fmt.Errorf("machine: negative warmup")
	case c.Epoch < 0:
		return fmt.Errorf("machine: negative epoch length")
	case c.MaxEpochs < 0:
		return fmt.Errorf("machine: negative epoch bound")
	default:
		return c.fault().validate()
	}
}

// fault bundles the config's degradation fields.
func (c Config) fault() Fault { return Fault{Slowdown: c.Slowdown, Pauses: c.Pauses} }

// New wires up a machine for the given configuration.
func New(cfg Config) (*Machine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return build(cfg, sim.New(), false)
}

// NewShared wires a machine onto an existing engine, for multi-node
// simulations (internal/cluster) that run several servers under one virtual
// clock. A shared machine generates no arrivals of its own — drive it with
// Inject — and never stops the engine; cfg.RateMRPS, Warmup, Measure, and
// MaxSimTime are ignored.
func NewShared(cfg Config, eng *sim.Engine) (*Machine, error) {
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Workload.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.fault().validate(); err != nil {
		return nil, err
	}
	return build(cfg, eng, true)
}

// build assembles the machine's components on the given engine.
func build(cfg Config, eng *sim.Engine, external bool) (*Machine, error) {
	p := cfg.Params
	plan, err := resolvePlan(p)
	if err != nil {
		return nil, err
	}
	root := rng.New(cfg.Seed)
	m := &Machine{
		p:         p,
		plan:      plan,
		wl:        cfg.Workload,
		cfg:       cfg,
		eng:       eng,
		external:  external,
		arrRNG:    root.Split(),
		srcRNG:    root.Split(),
		classRNG:  root.Split(),
		svcRNG:    root.Split(),
		rssRNG:    root.Split(),
		reqBySlot: make([]*request, p.Domain.TotalSlots()),
		target:    cfg.Warmup + cfg.Measure,
		slow:      1,
		sampleN:   1,
	}
	if cfg.TraceSample > 1 {
		m.sampleN = uint64(cfg.TraceSample)
	}
	if cfg.TailSamples > 0 {
		m.tail = trace.NewTailSampler(cfg.TailSamples)
	}
	if cfg.Slowdown > 0 {
		m.slow = cfg.Slowdown
	}
	classes := make([]string, len(cfg.Workload.Classes))
	for i, cl := range cfg.Workload.Classes {
		classes[i] = cl.Name
	}
	expect := 0
	if !external {
		expect = cfg.Measure
	}
	m.rec = metrics.NewRecorder(metrics.Config{
		Classes:    classes,
		Servers:    p.Cores,
		EpochNanos: cfg.Epoch.Nanos(),
		MaxEpochs:  cfg.MaxEpochs,
		Expect:     expect,
	})
	m.arr = arrival.Resolve(cfg.Arrival, cfg.RateMRPS)

	// Batched draws and precomputed per-message constants for the hot path.
	m.srcBatch = rng.NewIntBatch(m.srcRNG, p.Domain.Nodes, 0)
	m.classBatch = rng.NewFloatBatch(m.classRNG, 0)
	m.classTotal = cfg.Workload.TotalWeight()
	m.reqPkts = p.Domain.Packets(cfg.Workload.RequestBytes)
	m.replyPkts = p.Domain.Packets(cfg.Workload.ReplyBytes)
	if !plan.software && plan.route == RouteRSS && !p.RSSByFlow {
		m.rssBatch = rng.NewIntBatch(m.rssRNG, plan.groups, 0)
	}

	m.bindCallbacks()

	// Pre-size the steady-state queues so warmup is the only growth phase:
	// occupancy bound plus the compaction threshold's consumed prefix.
	const margin = fifo.DefaultCompactAfter + 2
	m.swQueue.CompactAfter = 1024
	cqDepth := m.plan.threshold
	if cqDepth > p.Domain.TotalSlots() {
		cqDepth = p.Domain.TotalSlots()
	}
	for i := 0; i < p.Cores; i++ {
		c := &core{id: i, tile: p.Mesh.TileCoord(i)}
		c.cq.Grow(cqDepth + margin)
		m.cores = append(m.cores, c)
	}
	m.idleCores.Grow(p.Cores + margin)
	// Backends sit on the left mesh edge, one per group of rows.
	for b := 0; b < p.Backends; b++ {
		m.backends = append(m.backends, sim.NewServer(m.eng))
		row := b * p.Mesh.Height / p.Backends
		m.backendTile = append(m.backendTile, noc.Coord{X: 0, Y: row})
	}

	if m.recvBuf, err = sonuma.NewReceiveBuffer(p.Domain); err != nil {
		return nil, err
	}
	if m.replyBuf, err = sonuma.NewSendBuffer(p.Domain); err != nil {
		return nil, err
	}
	m.freeSlots = make([]fifo.Queue[int], p.Domain.Nodes)
	m.pendingBySrc = make([]fifo.Queue[*request], p.Domain.Nodes)
	m.replyWaiters = make([]fifo.Queue[*request], p.Domain.Nodes)
	for n := range m.freeSlots {
		m.freeSlots[n].Grow(p.Domain.Slots + margin)
		for s := 0; s < p.Domain.Slots; s++ {
			m.freeSlots[n].Push(s)
		}
	}

	if err := m.wireDispatchers(); err != nil {
		return nil, err
	}
	m.lock = sim.NewServer(m.eng)
	if m.plan.software {
		// Every core starts out idle, spinning on the shared queue.
		for _, c := range m.cores {
			m.idleCores.Push(c.id)
		}
	}
	return m, nil
}

// bindCallbacks binds the hot path's event callbacks once, so every
// steady-state Schedule/Submit uses the arg-carrying form and allocates
// neither a closure nor an interface box (the args are pointers).
func (m *Machine) bindCallbacks() {
	m.fnSelfArrival = m.selfArrival
	m.fnIngested = m.ingested
	m.fnArrived = m.arrived
	m.fnRouteWire = m.routeWire
	m.fnRouteSubmit = m.routeSubmit
	m.fnDelivered = m.delivered
	m.fnFinish = m.finishReq
	m.fnReplySent = m.replySent
	m.fnReplyCredit = m.replyCredit
	m.fnReplenish = m.replenish
	m.fnNotifyWire = m.notifyWire
	m.fnNotifyDone = m.notifyDone
	m.fnSWEnqueue = m.swEnqueueArg
	m.fnLockDone = m.lockDone
}

// getRequest pops a recycled request from the pool, or allocates one while
// the pool is still warming up. The caller overwrites every live field.
func (m *Machine) getRequest() *request {
	if n := len(m.pool); n > 0 {
		req := m.pool[n-1]
		m.pool = m.pool[:n-1]
		return req
	}
	return &request{}
}

// decRef drops one trailing-event reference; at zero the request returns to
// the pool. Pointer-shaped fields are cleared so a pooled request never pins
// its old callback or core.
func (m *Machine) decRef(req *request) {
	req.refs--
	if req.refs > 0 {
		return
	}
	req.onDone = nil
	req.onDoneFn = nil
	req.onDoneArg = nil
	req.core = nil
	m.pool = append(m.pool, req)
}

// policySeed derives the deterministic stream seed for a dispatcher's policy
// instance. It is a pure function of the run seed and the group index —
// independent of the root RNG's split sequence, so adding randomized
// policies never perturbs the streams existing components draw from.
func policySeed(runSeed uint64, group int) uint64 {
	return (runSeed+1)*0x9e3779b97f4a7c15 ^ (uint64(group)+1)*0x94d049bb133111eb
}

// wireDispatchers builds the dispatcher topology the plan describes: the
// cores split contiguously into plan.groups equal groups, each group's
// dispatcher living in the NI backend serving its mesh slice, running its
// own policy instance under the plan's outstanding threshold.
func (m *Machine) wireDispatchers() error {
	p := m.p
	if m.plan.software {
		// No hardware dispatcher; cores share the in-memory queue.
		return nil
	}
	m.coreDisp = make([]int, p.Cores)
	per := p.Cores / m.plan.groups
	for g := 0; g < m.plan.groups; g++ {
		cores := make([]int, per)
		for i := range cores {
			cores[i] = g*per + i
		}
		tile := m.backendTile[g*p.Backends/m.plan.groups]
		var policy ni.Policy
		switch {
		case m.plan.policy.New != nil:
			// Every dispatcher gets a fresh, deterministically seeded
			// instance: policies carry state (rotation counters, RNG
			// streams) that must not be entangled across groups.
			policy = m.plan.policy.New(ni.Group{
				Index:     g,
				Cores:     cores,
				Row:       tile.Y,
				MeshWidth: p.Mesh.Width,
				Seed:      policySeed(m.cfg.Seed, g),
			})
		case p.Policy != nil:
			policy = p.Policy
		default:
			// Default to occupancy-feedback dispatch: idle cores first,
			// rotating among equals. With the outstanding threshold at 2
			// a blind arbiter would queue requests behind long-running
			// RPCs (Masstree scans) while other cores sit idle. Each
			// dispatcher needs its own instance because the policy
			// carries rotation state.
			policy = &ni.LeastOutstandingRR{}
		}
		d, err := ni.NewDispatcher(cores, m.plan.threshold, policy)
		if err != nil {
			return err
		}
		m.dispatchers = append(m.dispatchers, d)
		m.dispServer = append(m.dispServer, sim.NewServer(m.eng))
		m.dispTile = append(m.dispTile, tile)
		for _, c := range cores {
			m.coreDisp[c] = g
		}
	}
	return nil
}

// record emits a lifecycle event to the tracing sinks. The tail sampler sees
// every request; the user Recorder sees one in sampleN. depth carries the
// queue-depth signal for arrive events (-1 elsewhere). With tracing off both
// branches fall through without constructing the event — zero allocations,
// zero side effects.
func (m *Machine) record(id uint64, phase trace.Phase, core, depth int) {
	if m.cfg.Trace == nil && m.tail == nil {
		return
	}
	e := trace.Event{ReqID: id, Phase: phase, At: m.eng.Now(), Core: core, Depth: depth}
	if m.tail != nil {
		m.tail.Record(e)
	}
	if m.cfg.Trace != nil && id%m.sampleN == 0 {
		m.cfg.Trace.Record(e)
	}
}

// ctrlBytes is the size of control messages (completion tokens, CQEs,
// replenishes) crossing the mesh.
const ctrlBytes = 16

// Run executes the simulation until the target completion count (or
// MaxSimTime) is reached and returns the measured Result.
func (m *Machine) Run() (Result, error) {
	if m.external {
		return Result{}, fmt.Errorf("machine: Run on a shared machine; the owning simulation drives the engine")
	}
	if m.cfg.MaxSimTime > 0 {
		m.eng.Schedule(m.cfg.MaxSimTime, func() {
			m.timedOut = true
			m.eng.Stop()
		})
	}
	m.arrBatch = arrival.NewBatch(m.arr, m.arrRNG, 0)
	m.scheduleArrival()
	m.eng.Run()
	return m.result(), nil
}

func (m *Machine) scheduleArrival() {
	m.eng.ScheduleArg(m.arrBatch.Next(), m.fnSelfArrival, nil)
}

// selfArrival is the open-loop generator's event: inject one RPC, schedule
// the next gap.
func (m *Machine) selfArrival(any) {
	m.inject(nil, nil, nil)
	m.scheduleArrival()
}

// Inject admits one externally generated RPC as if it had just arrived from
// the cluster network. onDone, if non-nil, fires at the RPC's completion
// with its class index and whether that class is latency-measured. This is
// the entry point multi-node simulations drive in place of the machine's
// own Poisson process.
func (m *Machine) Inject(onDone func(class int, measured bool)) {
	m.inject(onDone, nil, nil)
}

// InjectArg is Inject's allocation-free form: fn(arg, class, measured) fires
// at completion. fn should be a long-lived function value bound once by the
// owning simulation; arg carries the per-request state (a pointer boxes into
// the interface without allocating).
func (m *Machine) InjectArg(fn func(arg any, class int, measured bool), arg any) {
	m.inject(nil, fn, arg)
}

func (m *Machine) inject(onDone func(class int, measured bool), onDoneFn func(arg any, class int, measured bool), onDoneArg any) {
	src := sonuma.NodeID(m.srcBatch.Next())
	class := m.wl.PickClassAt(m.classBatch.Next() * m.classTotal)
	req := m.getRequest()
	req.id = m.nextID
	req.src = src
	req.class = class
	req.svcNanos = m.wl.Classes[class].Service.Sample(m.svcRNG)
	req.onDone = onDone
	req.onDoneFn = onDoneFn
	req.onDoneArg = onDoneArg
	if m.slow != 1 {
		// Degraded-node injection: the handler runs slower, the sampled
		// distribution's shape intact. Guarded so healthy machines keep
		// bit-identical service streams.
		req.svcNanos *= m.slow
	}
	m.nextID++
	m.inflightCount++
	if m.freeSlots[src].Len() == 0 {
		m.blockedArrivals++
		m.pendingBySrc[src].Push(req)
		return
	}
	m.admit(req)
}

// InFlight reports the number of RPCs admitted (or parked on flow control)
// but not yet completed — the queue-depth signal a cluster-level balancer
// samples when comparing nodes.
func (m *Machine) InFlight() int { return m.inflightCount }

// DispatchLabel names the resolved dispatch plan driving this machine
// ("rpcvalet-1x16", "jbsq2", "plan-2x8/random2", ...).
func (m *Machine) DispatchLabel() string { return m.plan.label }

// MeanCoreUtilization reports the average busy fraction across the serving
// cores, measured against the engine's current clock.
func (m *Machine) MeanCoreUtilization() float64 {
	return m.rec.MeanUtilization(m.eng.Now())
}

// Timeline renders the machine's epoch-sliced measurement timeline so far:
// per-epoch throughput, latency, queue depth, and core utilization over the
// whole run (warmup included). For shared machines (internal/cluster) this
// is the per-node view the owning simulation aggregates.
func (m *Machine) Timeline() metrics.Timeline { return m.rec.Timeline() }

// admit claims a receive slot and runs the message through an NI backend.
// Slots are consumed FIFO, matching the ring the sender's send buffer keeps
// (§4.2's per-destination head/tail pointers); this also spreads messages
// evenly over the address-interleaved NI backends.
func (m *Machine) admit(req *request) {
	slot, ok := m.freeSlots[req.src].Pop()
	if !ok {
		panic(fmt.Sprintf("machine: admit from node %d with no free slot", req.src))
	}
	req.pairSlot = slot
	req.slot = m.p.Domain.RecvSlotIndex(req.src, req.pairSlot)
	m.reqBySlot[req.slot] = req

	b := req.slot % len(m.backends)
	switch m.p.Domain.Classify(m.wl.RequestBytes) {
	case sonuma.DeliveryInline:
		req.backend = b
		m.backends[b].SubmitArg(sim.Duration(m.reqPkts)*m.p.PacketProc, m.fnIngested, req)
	case sonuma.DeliveryRendezvous:
		// Descriptor lands first — that is when the message is
		// "received" and the latency clock starts. The NI then pulls
		// the payload with a one-sided read costing a network round
		// trip plus the payload's backend occupancy (§4.2). This path
		// keeps its closures: large-payload workloads are not the
		// allocation-sensitive steady state, and every event here fires
		// before completion, so pooling stays safe.
		m.backends[b].Submit(m.p.PacketProc, func() {
			// The descriptor is a single-packet message occupying the
			// receive slot; the pulled payload lands in an app buffer.
			if done, err := m.recvBuf.OnPacket(req.slot, req.src, m.wl.RequestBytes, 1); err != nil || !done {
				panic(fmt.Sprintf("machine: rendezvous descriptor: done=%v err=%v", done, err))
			}
			req.arrive = m.eng.Now()
			m.record(req.id, trace.PhaseArrive, -1, m.inflightCount-1)
			m.eng.Schedule(m.p.NetRTT, func() {
				pkts := m.p.Domain.RendezvousReadPackets(m.wl.RequestBytes)
				m.backends[b].Submit(sim.Duration(pkts)*m.p.PacketProc, func() {
					m.eng.Schedule(m.p.MemWrite, func() {
						m.routeCompletion(req, b)
					})
				})
			})
		})
	}
}

// ingested runs when the NI backend has written the request's packets: mark
// the message received, then charge the memory write before routing the
// completion token.
func (m *Machine) ingested(arg any) {
	req := arg.(*request)
	pkts := m.reqPkts
	for i := 0; i < pkts; i++ {
		done, err := m.recvBuf.OnPacket(req.slot, req.src, m.wl.RequestBytes, pkts)
		if err != nil {
			panic(fmt.Sprintf("machine: receive protocol violation: %v", err))
		}
		if done != (i == pkts-1) {
			panic("machine: receive counter out of sync")
		}
	}
	m.eng.ScheduleArg(m.p.MemWrite, m.fnArrived, req)
}

// arrived stamps the measurement start and routes the completion token.
func (m *Machine) arrived(arg any) {
	req := arg.(*request)
	req.arrive = m.eng.Now()
	m.record(req.id, trace.PhaseArrive, -1, m.inflightCount-1)
	m.routeCompletion(req, req.backend)
}

// routeCompletion forwards a message-completion token from backend b to the
// dispatch mechanism the plan selects.
func (m *Machine) routeCompletion(req *request, b int) {
	if m.plan.software {
		// The NI appends directly to the shared in-memory queue.
		wire := m.p.CQEDeliver + m.p.Mem.LLC(2, m.p.Mesh.HopLatency())
		m.eng.ScheduleArg(wire, m.fnSWEnqueue, req)
		return
	}
	di := m.dispatcherFor(req, b)
	req.disp = di
	wire := m.p.Mesh.Latency(m.backendTile[b], m.dispTile[di], ctrlBytes) + m.p.DispatchExtra
	m.eng.ScheduleArg(wire, m.fnRouteWire, req)
}

// routeWire runs when the completion token reaches its dispatcher tile.
func (m *Machine) routeWire(arg any) {
	req := arg.(*request)
	m.dispServer[req.disp].SubmitArg(m.p.DispatchCycle, m.fnRouteSubmit, req)
}

// routeSubmit runs when the dispatch stage has cycled the token: enqueue it
// on the shared CQ and deliver any dispatch it triggers.
func (m *Machine) routeSubmit(arg any) {
	req := arg.(*request)
	msg := ni.Msg{Slot: req.slot, Src: req.src, Size: m.wl.RequestBytes, Tag: req.id}
	if d, ok := m.dispatchers[req.disp].Enqueue(msg); ok {
		m.deliver(req.disp, d)
	}
}

// dispatcherFor picks the dispatcher index for a completion token, per the
// plan's routing: RSS statically assigns the message (flow hash or uniform
// draw); local routing forwards to the dispatcher co-located with the
// receiving backend's mesh slice.
func (m *Machine) dispatcherFor(req *request, b int) int {
	if m.plan.route == RouteRSS {
		if m.p.RSSByFlow {
			return ni.RSSQueue(uint64(req.src), m.plan.groups)
		}
		return m.rssBatch.Next()
	}
	return b * m.plan.groups / m.p.Backends
}

// deliver carries a dispatch decision to the chosen core's private CQ. The
// inflight request is found through the dense slot table: the message's
// receive slot is unique among admitted requests, and the Tag cross-check
// turns any slot-identity violation into a loud failure.
func (m *Machine) deliver(di int, d ni.Dispatch) {
	req := m.reqBySlot[d.Msg.Slot]
	if req == nil || req.id != d.Msg.Tag {
		panic(fmt.Sprintf("machine: dispatch of unknown request %d (slot %d)", d.Msg.Tag, d.Msg.Slot))
	}
	c := m.cores[d.Core]
	m.record(req.id, trace.PhaseDispatch, d.Core, -1)
	req.core = c
	wire := m.p.Mesh.Latency(m.dispTile[di], c.tile, ctrlBytes) + m.p.CQEDeliver
	m.eng.ScheduleArg(wire, m.fnDelivered, req)
}

// delivered lands a dispatched message in its core's private CQ; an idle
// core notices after a fraction of a poll iteration.
func (m *Machine) delivered(arg any) {
	req := arg.(*request)
	c := req.core
	c.cq.Push(req)
	if !c.busy {
		m.begin(c, m.p.PollDetect)
	}
}

// begin starts processing the head of the core's private CQ. pollDelay is
// the CQ-detection cost: nonzero when the core was idle-polling, zero when
// it rolls directly from the previous request (the threshold-2 case that
// eliminates the execution bubble, §4.3). Work beginning inside a configured
// pause window stalls (still occupying the core) until the window ends.
func (m *Machine) begin(c *core, pollDelay sim.Duration) {
	req, ok := c.cq.Pop()
	if !ok {
		panic(fmt.Sprintf("machine: core %d began with empty CQ", c.id))
	}
	c.busy = true
	now := m.eng.Now()
	stall := pauseStall(m.cfg.Pauses, now)
	req.core = c
	req.svcStart = now.Add(pollDelay + stall)
	m.record(req.id, trace.PhaseStart, c.id, -1)
	occupied := pollDelay + stall + m.p.BufRead + sim.FromNanos(req.svcNanos) +
		m.p.LoopOverhead + m.p.SendPost + m.p.ReplenishPost
	m.rec.Busy(now, c.id, occupied)
	m.eng.ScheduleArg(occupied, m.fnFinish, req)
}

// finishReq unwraps the finish event's argument.
func (m *Machine) finishReq(arg any) { m.finish(arg.(*request)) }

// finish runs when the core has executed the handler and posted the reply
// send and replenish. The reply consumes a send slot toward the requester;
// if none is free the core stalls (flow control) until a credit returns.
func (m *Machine) finish(req *request) {
	slot, ok := m.replyBuf.Acquire(req.src, req.id, m.wl.ReplyBytes)
	if !ok {
		m.replyStalls++
		m.replyWaiters[req.src].Push(req)
		return
	}
	m.complete(req, slot)
}

// complete finalizes a request: measurement, reply transmission, replenish
// propagation, and moving the core onto its next unit of work. The request
// stays alive (refs) until its two trailing events — the reply-credit return
// and the replenish — have both fired, then returns to the pool.
func (m *Machine) complete(req *request, replySlot int) {
	c := req.core
	now := m.eng.Now()
	m.record(req.id, trace.PhaseComplete, c.id, -1)

	m.completed++
	if req.onDoneFn != nil {
		req.onDoneFn(req.onDoneArg, req.class, m.wl.Classes[req.class].Measured)
	} else if req.onDone != nil {
		req.onDone(req.class, m.wl.Classes[req.class].Measured)
	}
	if !m.external && m.completed == m.cfg.Warmup+1 {
		m.rec.OpenWindow(now)
	}
	// The recorder always slices the completion into its epoch timeline
	// (shared machines included — the owning cluster reads the per-node
	// view); the summary collectors only see it while the window is open,
	// the historical gating.
	m.rec.Complete(now, metrics.Completion{
		Class:     req.class,
		Measured:  m.wl.Classes[req.class].Measured,
		LatencyNs: now.Sub(req.arrive).Nanos(),
		WaitNs:    req.svcStart.Sub(req.arrive).Nanos(),
		ServiceNs: now.Sub(req.svcStart).Nanos(),
		Depth:     m.inflightCount - 1, // admitted-but-incomplete, this one excluded
	})
	if !m.external && m.completed >= m.target {
		m.rec.CloseWindow(now)
		m.eng.Stop()
		return
	}

	// Reply transmission through this core's row backend; the remote node
	// consumes it and returns the send-slot credit a round trip later.
	req.replySlot = replySlot
	req.refs = 2 // reply-credit chain + replenish
	rb := c.id * len(m.backends) / len(m.cores)
	m.backends[rb].SubmitArg(sim.Duration(m.replyPkts)*m.p.PacketProc, m.fnReplySent, req)

	// Replenish: free the receive slot now; the sender regains the credit
	// after the replenish message crosses the network.
	if err := m.recvBuf.Free(req.slot); err != nil {
		panic(fmt.Sprintf("machine: replenish: %v", err))
	}
	m.reqBySlot[req.slot] = nil
	m.inflightCount--
	m.eng.ScheduleArg(m.p.NetRTT/2, m.fnReplenish, req)

	// Tell the dispatcher this core finished one request. The argument is
	// the core, not the request: by the time these events fire the request
	// may already be recycled.
	if !m.plan.software {
		di := m.coreDisp[c.id]
		wire := m.p.WQERead + m.p.Mesh.Latency(c.tile, m.dispTile[di], ctrlBytes) + m.p.DispatchExtra
		m.eng.ScheduleArg(wire, m.fnNotifyWire, c)
	}

	// The core rolls onto queued work, or goes idle.
	c.busy = false
	if c.cq.Len() > 0 {
		m.begin(c, 0)
	} else if m.plan.software {
		m.swIdle(c)
	}
}

// replySent runs when the reply's packets have left the backend: the remote
// node consumes them and the send-slot credit returns a round trip later.
func (m *Machine) replySent(arg any) {
	m.eng.ScheduleArg(m.p.NetRTT, m.fnReplyCredit, arg)
}

// replyCredit returns the reply send-slot credit and unblocks a core stalled
// on reply flow control toward the same requester, if one is parked.
func (m *Machine) replyCredit(arg any) {
	req := arg.(*request)
	src := req.src
	if err := m.replyBuf.Release(src, req.replySlot); err != nil {
		panic(fmt.Sprintf("machine: reply credit return: %v", err))
	}
	m.decRef(req)
	if w, ok := m.replyWaiters[src].Pop(); ok {
		s, ok := m.replyBuf.Acquire(src, w.id, m.wl.ReplyBytes)
		if !ok {
			panic("machine: freed reply slot immediately unavailable")
		}
		m.complete(w, s)
	}
}

// replenish returns the receive-slot credit to the sender and admits a
// parked arrival, if one is waiting on the freed slot.
func (m *Machine) replenish(arg any) {
	req := arg.(*request)
	src, pairSlot := req.src, req.pairSlot
	m.decRef(req)
	m.freeSlots[src].Push(pairSlot)
	if next, ok := m.pendingBySrc[src].Pop(); ok {
		m.admit(next)
	}
}

// notifyWire runs when a core's replenish token reaches its dispatcher tile.
func (m *Machine) notifyWire(arg any) {
	c := arg.(*core)
	m.dispServer[m.coreDisp[c.id]].SubmitArg(m.p.DispatchCycle, m.fnNotifyDone, c)
}

// notifyDone records the core's completion at its dispatcher and delivers
// any follow-on dispatch.
func (m *Machine) notifyDone(arg any) {
	c := arg.(*core)
	di := m.coreDisp[c.id]
	if d, ok := m.dispatchers[di].Complete(c.id); ok {
		m.deliver(di, d)
	}
}

// --- Software single-queue (MCS) path -----------------------------------

// swEnqueueArg unwraps the NI-append event's argument.
func (m *Machine) swEnqueueArg(arg any) { m.swEnqueue(arg.(*request)) }

// swEnqueue appends a message to the shared in-memory queue and pairs it
// with an idle core if one is waiting.
func (m *Machine) swEnqueue(req *request) {
	m.swQueue.Push(req)
	if d := m.swQueue.Len(); d > m.swMaxDepth {
		m.swMaxDepth = d
	}
	m.swTryPair()
}

// swIdle registers a core as idle and hungry for work.
func (m *Machine) swIdle(c *core) {
	m.idleCores.Push(c.id)
	m.swTryPair()
}

// swTryPair matches queued messages with idle cores. Each dequeue acquires
// the MCS lock: lock acquisitions serialize through a single FIFO resource,
// costing the uncontended latency when the lock is free and a cache-line
// handoff when it is not — the contention that caps the software design's
// throughput (§6.2).
func (m *Machine) swTryPair() {
	for m.swQueue.Len() > 0 && m.idleCores.Len() > 0 {
		req, _ := m.swQueue.Pop()
		coreID, _ := m.idleCores.Pop()
		c := m.cores[coreID]
		c.busy = true // waiting on the lock counts as unavailable
		cost := m.p.LockCrit
		if m.lock.Delay() > 0 {
			cost += m.p.LockHandoff
		} else {
			cost += m.p.LockUncontended
		}
		m.record(req.id, trace.PhaseDispatch, coreID, -1)
		req.core = c
		m.lock.SubmitArg(cost, m.fnLockDone, req)
	}
}

// lockDone runs when a core's dequeue critical section completes: the
// message lands in the core's private CQ and processing begins.
func (m *Machine) lockDone(arg any) {
	req := arg.(*request)
	c := req.core
	c.cq.Push(req)
	c.busy = false
	m.begin(c, 0)
}
