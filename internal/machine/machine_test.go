package machine

import (
	"math"
	"testing"

	"rpcvalet/internal/arrival"
	"rpcvalet/internal/ni"
	"rpcvalet/internal/sim"
	"rpcvalet/internal/trace"
	"rpcvalet/internal/workload"
)

// testConfig returns a fast-running configuration for unit tests.
func testConfig(mode Mode, wl workload.Profile, rate float64) Config {
	p := Defaults()
	p.Mode = mode
	return Config{
		Params:   p,
		Workload: wl,
		RateMRPS: rate,
		Warmup:   2000,
		Measure:  20000,
		Seed:     1,
	}
}

func mustRun(t *testing.T, cfg Config) Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestConfigValidation(t *testing.T) {
	good := testConfig(ModeSingleQueue, workload.HERD(), 5)
	mutations := map[string]func(*Config){
		"zeroRate":    func(c *Config) { c.RateMRPS = 0 },
		"zeroMeasure": func(c *Config) { c.Measure = 0 },
		"negWarmup":   func(c *Config) { c.Warmup = -1 },
		"badCores":    func(c *Config) { c.Params.Cores = 0 },
		"badBackends": func(c *Config) { c.Params.Backends = 0 },
		"unevenSplit": func(c *Config) { c.Params.Backends = 3 },
		"badThresh":   func(c *Config) { c.Params.Threshold = 0 },
		"smallMesh":   func(c *Config) { c.Params.Cores = 32 },
		"badMode":     func(c *Config) { c.Params.Mode = Mode(99) },
		"mtuMismatch": func(c *Config) { c.Params.Domain.MTU = 32 },
		"badDomain":   func(c *Config) { c.Params.Domain.Nodes = 0 },
		"badWorkload": func(c *Config) { c.Workload.Classes = nil },
	}
	for name, mutate := range mutations {
		cfg := good
		mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: invalid config accepted", name)
		}
	}
}

func TestModeStrings(t *testing.T) {
	names := map[Mode]string{
		ModeSingleQueue: "rpcvalet-1x16",
		ModeGrouped:     "grouped-4x4",
		ModePartitioned: "partitioned-16x1",
		ModeSoftware:    "software-1x16",
		Mode(42):        "mode(42)",
	}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("Mode(%d).String() = %q, want %q", int(m), m.String(), want)
		}
	}
}

// TestAllModesSmoke runs every mode at moderate load and checks basic sanity.
func TestAllModesSmoke(t *testing.T) {
	for _, mode := range []Mode{ModeSingleQueue, ModeGrouped, ModePartitioned, ModeSoftware} {
		res := mustRun(t, testConfig(mode, workload.HERD(), 5))
		if res.Latency.Count == 0 {
			t.Fatalf("%v: no latency samples", mode)
		}
		if res.Latency.P99 < res.Latency.P50 || res.Latency.P50 < res.Latency.Min {
			t.Fatalf("%v: percentile ordering broken: %+v", mode, res.Latency)
		}
		if res.Latency.Min <= 0 {
			t.Fatalf("%v: non-positive latency", mode)
		}
		// Offered 5 MRPS is far below saturation; throughput must track it.
		if math.Abs(res.ThroughputMRPS-5)/5 > 0.05 {
			t.Fatalf("%v: throughput %.2f, offered 5", mode, res.ThroughputMRPS)
		}
		if res.TimedOut {
			t.Fatalf("%v: unexpected timeout", mode)
		}
		if res.Completed != 22000 {
			t.Fatalf("%v: completed %d, want 22000", mode, res.Completed)
		}
	}
}

// TestServiceTimeCalibration checks the §6.1 anchor: HERD's measured S̄ must
// land near 550 ns (330 ns handler + ≈200 ns microbenchmark overhead).
func TestServiceTimeCalibration(t *testing.T) {
	res := mustRun(t, testConfig(ModeSingleQueue, workload.HERD(), 5))
	if res.ServiceMeanNanos < 500 || res.ServiceMeanNanos > 600 {
		t.Fatalf("HERD S̄ = %.0fns, want ~530-550", res.ServiceMeanNanos)
	}
	// SLO is 10× S̄.
	if math.Abs(res.SLONanos-10*res.ServiceMeanNanos) > 1 {
		t.Fatalf("SLO %.0f != 10×S̄ %.0f", res.SLONanos, res.ServiceMeanNanos)
	}
}

// TestLatencyLowerBound: end-to-end latency can never be below the fixed
// per-request core costs plus the minimum handler time.
func TestLatencyLowerBound(t *testing.T) {
	p := Defaults()
	res := mustRun(t, testConfig(ModeSingleQueue, workload.SyntheticFixed(), 2))
	floor := p.CoreOverheadNanos() + 600 // fixed 600ns handler
	if res.Latency.Min < floor {
		t.Fatalf("min latency %.0f below physical floor %.0f", res.Latency.Min, floor)
	}
}

// TestSingleQueueBeatsPartitioned is the paper's headline comparison at a
// load where imbalance hurts: 1×16 must show a materially lower p99 than
// 16×1 under the heavy-tailed GEV workload.
func TestSingleQueueBeatsPartitioned(t *testing.T) {
	const rate = 12 // ~60% of saturation for the synthetic profiles
	sq := mustRun(t, testConfig(ModeSingleQueue, workload.SyntheticGEV(), rate))
	pt := mustRun(t, testConfig(ModePartitioned, workload.SyntheticGEV(), rate))
	if !(sq.Latency.P99 < pt.Latency.P99*0.8) {
		t.Fatalf("1x16 p99 %.0f not clearly below 16x1 p99 %.0f", sq.Latency.P99, pt.Latency.P99)
	}
}

// TestGroupedBetween: 4×4 falls between 1×16 and 16×1.
func TestGroupedBetween(t *testing.T) {
	const rate = 12
	sq := mustRun(t, testConfig(ModeSingleQueue, workload.SyntheticGEV(), rate))
	gr := mustRun(t, testConfig(ModeGrouped, workload.SyntheticGEV(), rate))
	pt := mustRun(t, testConfig(ModePartitioned, workload.SyntheticGEV(), rate))
	if !(sq.Latency.P99 <= gr.Latency.P99*1.05 && gr.Latency.P99 <= pt.Latency.P99*1.05) {
		t.Fatalf("ordering violated: 1x16=%.0f 4x4=%.0f 16x1=%.0f",
			sq.Latency.P99, gr.Latency.P99, pt.Latency.P99)
	}
}

// TestSoftwareSaturatesEarly: at a rate the hardware single queue absorbs
// easily, the MCS-locked software queue must already be past saturation
// (its lock serializes dequeues at ≈190ns → ≈5.3 MRPS capacity).
func TestSoftwareSaturatesEarly(t *testing.T) {
	cfg := testConfig(ModeSoftware, workload.SyntheticFixed(), 8)
	cfg.MaxSimTime = 50 * sim.Millisecond
	sw := mustRun(t, cfg)
	hw := mustRun(t, testConfig(ModeSingleQueue, workload.SyntheticFixed(), 8))
	if hw.Latency.P99 > hw.SLONanos {
		t.Fatalf("hardware should meet SLO at 8 MRPS: p99=%.0f slo=%.0f", hw.Latency.P99, hw.SLONanos)
	}
	if sw.ThroughputMRPS > 6.5 {
		t.Fatalf("software throughput %.2f MRPS exceeds lock-bound capacity", sw.ThroughputMRPS)
	}
}

// TestSoftwareCompetitiveAtLowLoad (§6.2): at low load the software
// implementation's latency is close to hardware's.
func TestSoftwareCompetitiveAtLowLoad(t *testing.T) {
	sw := mustRun(t, testConfig(ModeSoftware, workload.SyntheticFixed(), 1))
	hw := mustRun(t, testConfig(ModeSingleQueue, workload.SyntheticFixed(), 1))
	// The software tail carries occasional lock-contention bursts even at
	// low load (two Poisson arrivals inside one lock-hold window), so
	// "competitive" means within ~1.5×, not equal.
	if sw.Latency.P99 > hw.Latency.P99*1.5 {
		t.Fatalf("software p99 %.0f not competitive with hardware %.0f at low load",
			sw.Latency.P99, hw.Latency.P99)
	}
	if sw.Latency.P50 > hw.Latency.P50*1.25 {
		t.Fatalf("software median %.0f should be close to hardware %.0f at low load",
			sw.Latency.P50, hw.Latency.P50)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := testConfig(ModeSingleQueue, workload.SyntheticGEV(), 10)
	cfg.Measure = 8000
	a := mustRun(t, cfg)
	b := mustRun(t, cfg)
	if a.Latency != b.Latency || a.ThroughputMRPS != b.ThroughputMRPS {
		t.Fatal("identical seeds differ")
	}
	cfg.Seed = 99
	c := mustRun(t, cfg)
	if a.Latency == c.Latency {
		t.Fatal("different seeds identical")
	}
}

// TestMasstreeClassSeparation: scans must be excluded from the measured
// latency but still occupy cores (pushing get tails up), and the reported
// SLO must be the absolute 12.5µs.
func TestMasstreeClassSeparation(t *testing.T) {
	cfg := testConfig(ModeSingleQueue, workload.Masstree(), 2)
	res := mustRun(t, cfg)
	if res.SLONanos != 12500 {
		t.Fatalf("SLO = %v", res.SLONanos)
	}
	get, ok := res.ClassLatency["get"]
	if !ok || get.Count == 0 {
		t.Fatal("no get latencies")
	}
	scan, ok := res.ClassLatency["scan"]
	if !ok || scan.Count == 0 {
		t.Fatal("no scan latencies")
	}
	if scan.Min < 60000 {
		t.Fatalf("scan min %.0f below 60µs", scan.Min)
	}
	// The top-level latency summary covers only gets.
	if res.Latency.Count != get.Count {
		t.Fatalf("measured count %d != get count %d", res.Latency.Count, get.Count)
	}
	// Scan interference: get p99 well above isolated get latency.
	if res.Latency.P99 < 2000 {
		t.Fatalf("get p99 %.0f suspiciously low given scan interference", res.Latency.P99)
	}
}

// TestFlowControlBackpressure: with a tiny messaging domain the traffic
// generator must park arrivals instead of overflowing slots, and the run
// still completes with conservation intact.
func TestFlowControlBackpressure(t *testing.T) {
	cfg := testConfig(ModeSingleQueue, workload.SyntheticFixed(), 18)
	cfg.Params.Domain.Nodes = 4
	cfg.Params.Domain.Slots = 2
	cfg.Warmup, cfg.Measure = 500, 5000
	res := mustRun(t, cfg)
	if res.BlockedArrivals == 0 {
		t.Fatal("expected blocked arrivals under a tiny domain at overload")
	}
	if res.Completed != 5500 {
		t.Fatalf("completed %d", res.Completed)
	}
}

// TestReplyCreditStall: with one slot per pair and a long credit RTT, cores
// must stall on reply credits; the run still finishes.
func TestReplyCreditStall(t *testing.T) {
	cfg := testConfig(ModeSingleQueue, workload.SyntheticFixed(), 15)
	cfg.Params.Domain.Nodes = 2
	cfg.Params.Domain.Slots = 1
	cfg.Params.NetRTT = sim.FromMicros(20)
	cfg.Warmup, cfg.Measure = 100, 2000
	res := mustRun(t, cfg)
	if res.ReplyStalls == 0 {
		t.Fatal("expected reply-credit stalls")
	}
}

// TestRendezvousDelivery: oversized requests take the descriptor + one-sided
// read path, adding roughly a network round trip to their latency.
func TestRendezvousDelivery(t *testing.T) {
	big := workload.SyntheticFixed()
	big.RequestBytes = 4096 // > MaxMsgSize 2048 → rendezvous
	inline := workload.SyntheticFixed()

	cfgBig := testConfig(ModeSingleQueue, big, 2)
	cfgBig.Warmup, cfgBig.Measure = 500, 5000
	cfgIn := testConfig(ModeSingleQueue, inline, 2)
	cfgIn.Warmup, cfgIn.Measure = 500, 5000

	rb := mustRun(t, cfgBig)
	ri := mustRun(t, cfgIn)
	extra := rb.Latency.P50 - ri.Latency.P50
	rtt := Defaults().NetRTT.Nanos()
	if extra < rtt*0.9 {
		t.Fatalf("rendezvous added %.0fns, want >= ~%.0fns (one RTT)", extra, rtt)
	}
}

// TestThresholdAblation (§4.3, §6.1): threshold 2 eliminates the dispatch
// round-trip bubble, so at saturation it must not be slower than threshold 1
// and should shave the mean latency.
func TestThresholdAblation(t *testing.T) {
	mk := func(k int) Result {
		cfg := testConfig(ModeSingleQueue, workload.HERD(), 25)
		cfg.Params.Threshold = k
		cfg.MaxSimTime = 100 * sim.Millisecond
		return mustRun(t, cfg)
	}
	k1, k2 := mk(1), mk(2)
	if k2.ThroughputMRPS < k1.ThroughputMRPS*0.995 {
		t.Fatalf("threshold 2 throughput %.3f below threshold 1 %.3f",
			k2.ThroughputMRPS, k1.ThroughputMRPS)
	}
}

// TestRSSByFlowSkew: hashing 200 flows onto 16 cores creates static load
// skew, so per-flow RSS must not beat the uniform per-message split.
func TestRSSByFlowSkew(t *testing.T) {
	mk := func(byFlow bool) Result {
		cfg := testConfig(ModePartitioned, workload.SyntheticExp(), 12)
		cfg.Params.RSSByFlow = byFlow
		return mustRun(t, cfg)
	}
	flow, uniform := mk(true), mk(false)
	if flow.Latency.P99 < uniform.Latency.P99*0.9 {
		t.Fatalf("per-flow RSS p99 %.0f unexpectedly beats uniform %.0f",
			flow.Latency.P99, uniform.Latency.P99)
	}
}

func TestTimeout(t *testing.T) {
	cfg := testConfig(ModeSingleQueue, workload.SyntheticFixed(), 0.001)
	cfg.MaxSimTime = sim.FromMicros(100) // far too short for any completion
	res := mustRun(t, cfg)
	if !res.TimedOut {
		t.Fatal("expected timeout")
	}
	if res.MeetsSLO {
		t.Fatal("timed-out run cannot meet SLO")
	}
}

func TestUtilizationTracksLoad(t *testing.T) {
	// Fixed 600ns handler + ~200ns overhead = ~800ns occupancy; at 10 MRPS
	// over 16 cores utilization should be ~0.5.
	res := mustRun(t, testConfig(ModeSingleQueue, workload.SyntheticFixed(), 10))
	var sum float64
	for _, u := range res.CoreUtilization {
		sum += u
	}
	avg := sum / float64(len(res.CoreUtilization))
	if avg < 0.42 || avg > 0.58 {
		t.Fatalf("avg core utilization %.3f, want ~0.5", avg)
	}
	for _, u := range res.BackendUtilization {
		if u < 0 || u > 1 {
			t.Fatalf("backend utilization %v out of range", u)
		}
	}
}

// TestBalancedUtilization: the 1×16 dispatcher must spread load evenly —
// no core should sit far from the mean.
func TestBalancedUtilization(t *testing.T) {
	res := mustRun(t, testConfig(ModeSingleQueue, workload.SyntheticExp(), 10))
	var sum float64
	for _, u := range res.CoreUtilization {
		sum += u
	}
	avg := sum / float64(len(res.CoreUtilization))
	for i, u := range res.CoreUtilization {
		if math.Abs(u-avg)/avg > 0.1 {
			t.Fatalf("core %d utilization %.3f deviates from mean %.3f", i, u, avg)
		}
	}
}

func TestResultString(t *testing.T) {
	res := mustRun(t, testConfig(ModeSingleQueue, workload.HERD(), 2))
	if res.String() == "" {
		t.Fatal("empty result string")
	}
}

// TestSaturationThroughputCap: offered load beyond capacity must be clipped
// at roughly 16 cores / S̄ regardless of mode (for the hardware modes).
func TestSaturationThroughputCap(t *testing.T) {
	cfg := testConfig(ModeSingleQueue, workload.SyntheticFixed(), 40) // >> capacity
	cfg.MaxSimTime = 100 * sim.Millisecond
	res := mustRun(t, cfg)
	capacity := 16.0 / (res.ServiceMeanNanos / 1000) // MRPS
	if res.ThroughputMRPS > capacity*1.02 {
		t.Fatalf("throughput %.2f exceeds physical capacity %.2f", res.ThroughputMRPS, capacity)
	}
	if res.ThroughputMRPS < capacity*0.93 {
		t.Fatalf("throughput %.2f far below capacity %.2f at overload", res.ThroughputMRPS, capacity)
	}
}

// TestWaitDecomposition: the reported Wait is the pre-service component of
// latency — near the NI pipeline floor at low load, growing as queueing
// appears, and always bounded by total latency minus service.
func TestWaitDecomposition(t *testing.T) {
	low := mustRun(t, testConfig(ModeSingleQueue, workload.SyntheticFixed(), 2))
	high := mustRun(t, testConfig(ModeSingleQueue, workload.SyntheticFixed(), 18))
	if low.Wait.Count == 0 {
		t.Fatal("no wait samples")
	}
	// At 10% load, dispatch is the only delay: tens of ns.
	if low.Wait.P50 > 100 {
		t.Fatalf("low-load median wait %.0fns, want < 100ns", low.Wait.P50)
	}
	// At ~90% load, queueing dominates the wait.
	if high.Wait.P99 < low.Wait.P99*2 {
		t.Fatalf("wait did not grow with load: %.0f -> %.0f", low.Wait.P99, high.Wait.P99)
	}
	// Wait + minimum service cannot exceed measured latency means.
	if low.Wait.Mean > low.Latency.Mean {
		t.Fatalf("mean wait %.0f exceeds mean latency %.0f", low.Wait.Mean, low.Latency.Mean)
	}
}

// TestSingleCoreMachine: the model degenerates cleanly to one core and one
// backend (an M/G/1-like system).
func TestSingleCoreMachine(t *testing.T) {
	cfg := testConfig(ModeSingleQueue, workload.SyntheticFixed(), 0.6)
	cfg.Params.Cores = 1
	cfg.Params.Backends = 1
	cfg.Warmup, cfg.Measure = 500, 5000
	res := mustRun(t, cfg)
	if res.Latency.Count == 0 || res.TimedOut {
		t.Fatalf("single-core run failed: %+v", res)
	}
	if len(res.CoreUtilization) != 1 {
		t.Fatalf("utilization entries = %d", len(res.CoreUtilization))
	}
	// Offered 0.6 MRPS × ~0.8µs ≈ 48% utilization.
	if res.CoreUtilization[0] < 0.35 || res.CoreUtilization[0] > 0.6 {
		t.Fatalf("utilization = %v", res.CoreUtilization[0])
	}
}

// TestEightBackends: more backends than the default still wire correctly in
// every hardware mode.
func TestEightBackends(t *testing.T) {
	for _, mode := range []Mode{ModeSingleQueue, ModeGrouped, ModePartitioned} {
		cfg := testConfig(mode, workload.HERD(), 5)
		cfg.Params.Backends = 8
		cfg.Warmup, cfg.Measure = 300, 3000
		res := mustRun(t, cfg)
		if len(res.BackendUtilization) != 8 {
			t.Fatalf("%v: backend count %d", mode, len(res.BackendUtilization))
		}
	}
}

// TestCustomPolicyInjection: a caller-supplied policy is honored.
func TestCustomPolicyInjection(t *testing.T) {
	cfg := testConfig(ModeSingleQueue, workload.HERD(), 3)
	cfg.Params.Policy = ni.FirstAvailable{}
	cfg.Warmup, cfg.Measure = 300, 3000
	res := mustRun(t, cfg)
	// First-available concentrates work: core 0 must be the busiest.
	max := 0
	for i, u := range res.CoreUtilization {
		if u > res.CoreUtilization[max] {
			max = i
		}
	}
	if max != 0 {
		t.Fatalf("busiest core = %d, want 0 under first-available", max)
	}
}

// TestTraceLifecycle: with a tracer attached, every completed request must
// show the four milestones in causal order on a consistent core.
func TestTraceLifecycle(t *testing.T) {
	buf := trace.NewBuffer(1 << 16)
	cfg := testConfig(ModeSingleQueue, workload.HERD(), 5)
	cfg.Warmup, cfg.Measure = 100, 1000
	cfg.Trace = buf
	mustRun(t, cfg)

	byReq := buf.ByRequest()
	complete := 0
	for id, evs := range byReq {
		var arrive, dispatch, start, done *trace.Event
		for i := range evs {
			e := &evs[i]
			switch e.Phase {
			case trace.PhaseArrive:
				arrive = e
			case trace.PhaseDispatch:
				dispatch = e
			case trace.PhaseStart:
				start = e
			case trace.PhaseComplete:
				done = e
			}
		}
		if done == nil {
			continue // still in flight when the run stopped
		}
		complete++
		if arrive == nil || dispatch == nil || start == nil {
			t.Fatalf("req %d completed without full lifecycle: %v", id, evs)
		}
		if !(arrive.At <= dispatch.At && dispatch.At <= start.At && start.At < done.At) {
			t.Fatalf("req %d milestones out of order: %v", id, evs)
		}
		if dispatch.Core != start.Core || start.Core != done.Core {
			t.Fatalf("req %d changed cores mid-flight: %v", id, evs)
		}
		if arrive.Core != -1 {
			t.Fatalf("req %d arrival already bound to core %d", id, arrive.Core)
		}
	}
	if complete < 1000 {
		t.Fatalf("only %d complete lifecycles traced", complete)
	}
}

// TestTraceSoftwareMode: the software path emits the same milestones.
func TestTraceSoftwareMode(t *testing.T) {
	buf := trace.NewBuffer(1 << 15)
	cfg := testConfig(ModeSoftware, workload.SyntheticFixed(), 3)
	cfg.Warmup, cfg.Measure = 50, 500
	cfg.Trace = buf
	mustRun(t, cfg)
	phases := map[trace.Phase]int{}
	for _, e := range buf.Events() {
		phases[e.Phase]++
	}
	for _, ph := range []trace.Phase{trace.PhaseArrive, trace.PhaseDispatch, trace.PhaseStart, trace.PhaseComplete} {
		if phases[ph] == 0 {
			t.Fatalf("software mode emitted no %v events", ph)
		}
	}
}

// TestArrivalKindsDeterministic: every built-in arrival process must yield
// identical results across runs of the same configuration, and actually
// change the traffic (a non-Poisson process differs from the default).
func TestArrivalKindsDeterministic(t *testing.T) {
	base := testConfig(ModeSingleQueue, workload.HERD(), 10)
	base.Warmup, base.Measure = 500, 6000
	def := mustRun(t, base)
	for _, kind := range arrival.Names {
		arr, err := arrival.ByName(kind, base.RateMRPS)
		if err != nil {
			t.Fatal(err)
		}
		cfg := base
		cfg.Arrival = arr
		a := mustRun(t, cfg)
		b := mustRun(t, cfg)
		if a.Latency != b.Latency || a.ThroughputMRPS != b.ThroughputMRPS {
			t.Fatalf("%s: identical configs differ", kind)
		}
		if kind != "poisson" && a.Latency == def.Latency {
			t.Fatalf("%s: produced the exact Poisson result — process not wired in", kind)
		}
		if kind == "poisson" && a.Latency != def.Latency {
			t.Fatal("explicit poisson differs from nil default")
		}
	}
}

// TestArrivalRerating: a process built at the wrong rate is re-rated to the
// config's RateMRPS, so throughput tracks the config, not the constructor.
func TestArrivalRerating(t *testing.T) {
	cfg := testConfig(ModeSingleQueue, workload.HERD(), 10)
	cfg.Warmup, cfg.Measure = 500, 6000
	cfg.Arrival = arrival.DeterministicAtMRPS(1) // 10× too slow; must be re-rated
	res := mustRun(t, cfg)
	if math.Abs(res.ThroughputMRPS-10)/10 > 0.05 {
		t.Fatalf("throughput %v MRPS, want ~10 (re-rated)", res.ThroughputMRPS)
	}
}

// TestArrivalWithoutRate: Arrival set and RateMRPS zero uses the process
// exactly as constructed.
func TestArrivalWithoutRate(t *testing.T) {
	cfg := testConfig(ModeSingleQueue, workload.HERD(), 0)
	cfg.Warmup, cfg.Measure = 500, 6000
	cfg.Arrival = arrival.DeterministicAtMRPS(8)
	res := mustRun(t, cfg)
	if math.Abs(res.ThroughputMRPS-8)/8 > 0.05 {
		t.Fatalf("throughput %v MRPS, want ~8", res.ThroughputMRPS)
	}
}
