package machine

import (
	"fmt"

	"rpcvalet/internal/metrics"
	"rpcvalet/internal/stats"
	"rpcvalet/internal/trace"
)

// Result is the measured outcome of one machine run.
type Result struct {
	// Dispatch names the dispatch plan that ran ("rpcvalet-1x16", "jbsq2",
	// "plan-2x8/random2", ...). Mode is the legacy enum and is meaningful
	// only when the run was configured through it; Dispatch is always set.
	Dispatch string
	Mode     Mode
	Workload string
	RateMRPS float64 // offered load
	Seed     uint64

	ThroughputMRPS float64       // measured completion rate over the window
	Latency        stats.Summary // end-to-end latency of measured classes, ns
	ClassLatency   map[string]stats.Summary
	// Wait decomposes latency: the delay between a message's complete
	// reception at the NI and the serving core starting its handler —
	// dispatch plus queueing, the component load balancing controls.
	Wait stats.Summary

	ServiceMeanNanos float64 // measured S̄: mean per-request core occupancy
	SLONanos         float64 // derived SLO (absolute, or factor × S̄)
	MeetsSLO         bool

	CoreUtilization    []float64
	BackendUtilization []float64
	DispatcherMaxDepth int // deepest shared-CQ (or software queue) observed

	BlockedArrivals uint64 // arrivals parked by sender-side flow control
	ReplyStalls     uint64 // completions stalled on reply-send credits
	Completed       int
	TimedOut        bool

	// Timeline is the epoch-sliced view of the whole run (warmup included):
	// per-epoch throughput, latency and wait percentiles, queue depth, and
	// core utilization. The summary fields above stay the steady-state
	// window; the timeline is where transients — load steps, bursts, pause
	// windows — become visible.
	Timeline metrics.Timeline

	// TailSpans holds the Config.TailSamples slowest requests of the run,
	// slowest first, each with its full span breakdown (queue wait,
	// dispatch, service, depth at arrival, serving core) — the anatomy of
	// the tail. Nil unless TailSamples was set.
	TailSpans []trace.Span
}

func (r Result) String() string {
	return fmt.Sprintf("%s/%s @%.2fMRPS: thr=%.2fMRPS p99=%.0fns slo=%.0fns meets=%v",
		r.Dispatch, r.Workload, r.RateMRPS, r.ThroughputMRPS, r.Latency.P99, r.SLONanos, r.MeetsSLO)
}

// result assembles the Result after the engine stops.
func (m *Machine) result() Result {
	r := Result{
		Dispatch:     m.plan.label,
		Mode:         m.p.Mode,
		Workload:     m.wl.Name,
		RateMRPS:     m.cfg.RateMRPS,
		Seed:         m.cfg.Seed,
		Latency:      m.rec.Latency(),
		ClassLatency: make(map[string]stats.Summary, len(m.wl.Classes)),
		Completed:    m.completed,
		TimedOut:     m.timedOut,

		ServiceMeanNanos: m.rec.ServiceMean(),
		Wait:             m.rec.Wait(),
		BlockedArrivals:  m.blockedArrivals,
		ReplyStalls:      m.replyStalls,
		Timeline:         m.rec.Timeline(),
	}
	for i, cl := range m.wl.Classes {
		r.ClassLatency[cl.Name] = m.rec.Class(i)
	}

	if start, end := m.rec.Window(); end > start {
		// The window spans completion Warmup+1 through Warmup+Measure:
		// measured−1 inter-completion intervals, the same convention the
		// queueing and cluster models use.
		measured := m.completed - m.cfg.Warmup
		span := end.Sub(start).Nanos()
		r.ThroughputMRPS = float64(measured-1) / span * 1000
	}

	if m.wl.SLONanos > 0 {
		r.SLONanos = m.wl.SLONanos
	} else {
		r.SLONanos = m.wl.SLOFactor * r.ServiceMeanNanos
	}
	r.MeetsSLO = !m.timedOut && r.Latency.Count > 0 && r.Latency.P99 <= r.SLONanos

	now := m.eng.Now()
	for _, c := range m.cores {
		u := 0.0
		if now > 0 {
			u = float64(m.rec.BusyTotal(c.id)) / float64(now)
		}
		r.CoreUtilization = append(r.CoreUtilization, u)
	}
	for _, b := range m.backends {
		r.BackendUtilization = append(r.BackendUtilization, b.Utilization())
	}
	for _, d := range m.dispatchers {
		if d.MaxQueueDepth() > r.DispatcherMaxDepth {
			r.DispatcherMaxDepth = d.MaxQueueDepth()
		}
	}
	if m.swMaxDepth > r.DispatcherMaxDepth {
		r.DispatcherMaxDepth = m.swMaxDepth
	}
	if m.tail != nil {
		r.TailSpans = m.tail.Spans()
	}
	return r
}

// Run is the one-call entry point: build a Machine from cfg and run it.
func Run(cfg Config) (Result, error) {
	m, err := New(cfg)
	if err != nil {
		return Result{}, err
	}
	return m.Run()
}
