package machine

import (
	"testing"

	"rpcvalet/internal/ni"
	"rpcvalet/internal/workload"
)

// planConfig builds a fast test config driven by an explicit plan.
func planConfig(pl *Plan, wl workload.Profile, rate float64) Config {
	cfg := testConfig(ModeSingleQueue, wl, rate)
	cfg.Params.Plan = pl
	cfg.Warmup, cfg.Measure = 500, 6000
	return cfg
}

// sameResult compares the measurement-bearing fields of two results exactly
// (Result holds maps, so == on the whole struct is unavailable).
func sameResult(t *testing.T, name string, a, b Result) {
	t.Helper()
	if a.Latency != b.Latency || a.Wait != b.Wait ||
		a.ThroughputMRPS != b.ThroughputMRPS ||
		a.ServiceMeanNanos != b.ServiceMeanNanos ||
		a.Completed != b.Completed ||
		a.DispatcherMaxDepth != b.DispatcherMaxDepth {
		t.Fatalf("%s: results differ:\n  a=%+v\n  b=%+v", name, a, b)
	}
}

// TestPlanReproducesSingleQueue: a 1-group plan inheriting the params
// threshold is, request for request, the legacy ModeSingleQueue machine.
func TestPlanReproducesSingleQueue(t *testing.T) {
	legacy := mustRun(t, planConfig(nil, workload.SyntheticGEV(), 12))
	cfg := planConfig(&Plan{Groups: 1}, workload.SyntheticGEV(), 12)
	sameResult(t, "1-group plan vs ModeSingleQueue", legacy, mustRun(t, cfg))
}

// TestPlanReproducesPartitioned: a per-core, unlimited-threshold plan (with
// routing left on auto, which resolves to RSS) is the legacy
// ModePartitioned machine.
func TestPlanReproducesPartitioned(t *testing.T) {
	base := testConfig(ModePartitioned, workload.SyntheticGEV(), 12)
	base.Warmup, base.Measure = 500, 6000
	legacy := mustRun(t, base)
	cfg := planConfig(&Plan{Groups: 16, Threshold: ni.Unlimited}, workload.SyntheticGEV(), 12)
	sameResult(t, "16x1 plan vs ModePartitioned", legacy, mustRun(t, cfg))
}

// TestCannedPlansReproduceAllModes: PlanForMode must reproduce every legacy
// mode exactly, software queue included.
func TestCannedPlansReproduceAllModes(t *testing.T) {
	for _, mode := range []Mode{ModeSingleQueue, ModeGrouped, ModePartitioned, ModeSoftware} {
		rate := 5.0
		if mode == ModeSoftware {
			rate = 3 // below the MCS lock's saturation
		}
		base := testConfig(mode, workload.HERD(), rate)
		base.Warmup, base.Measure = 300, 4000
		legacy := mustRun(t, base)

		pl, err := PlanForMode(mode)
		if err != nil {
			t.Fatal(err)
		}
		cfg := base
		cfg.Params.Plan = pl
		viaPlan := mustRun(t, cfg)
		sameResult(t, mode.String(), legacy, viaPlan)
		if viaPlan.Dispatch != mode.String() {
			t.Fatalf("%v: dispatch label %q", mode, viaPlan.Dispatch)
		}
	}
}

// TestPlanPolicyDeterminism: every built-in policy (and the plans that carry
// them) must be fully deterministic — same seed, same Result — and actually
// reachable (randomized and stateful policies included).
func TestPlanPolicyDeterminism(t *testing.T) {
	specs := []string{
		"1x16:first-available",
		"1x16:round-robin",
		"1x16:least-outstanding",
		"1x16:least-outstanding-rr",
		"1x16:random2",
		"1x16:random3",
		"4x4:local",
		"2x8:random2",
		"jbsq1",
		"jbsq3",
	}
	for _, spec := range specs {
		pl, err := ParsePlan(spec)
		if err != nil {
			t.Fatal(err)
		}
		cfg := planConfig(pl, workload.SyntheticGEV(), 10)
		cfg.Measure = 4000
		a, b := mustRun(t, cfg), mustRun(t, cfg)
		sameResult(t, spec, a, b)
		if a.Latency.Count == 0 {
			t.Fatalf("%s: no measurements", spec)
		}
		if a.Dispatch != spec && pl.Name != a.Dispatch {
			t.Fatalf("%s: dispatch label %q", spec, a.Dispatch)
		}
		cfg.Seed = 99
		c := mustRun(t, cfg)
		if a.Latency == c.Latency {
			t.Fatalf("%s: different seeds produced identical latency streams", spec)
		}
	}
}

// TestPlanGroupings: alternate groupings the Mode enum could not express
// wire up, run, and keep every core busy.
func TestPlanGroupings(t *testing.T) {
	for _, spec := range []string{"2x8", "8x2"} {
		pl, err := ParsePlan(spec)
		if err != nil {
			t.Fatal(err)
		}
		cfg := planConfig(pl, workload.SyntheticExp(), 10)
		res := mustRun(t, cfg)
		if res.Latency.Count == 0 || res.TimedOut {
			t.Fatalf("%s: run failed: %v", spec, res)
		}
		for i, u := range res.CoreUtilization {
			if u <= 0 {
				t.Fatalf("%s: core %d never worked", spec, i)
			}
		}
	}
}

// TestJBSQBound: JBSQ(n) must never hold more than n outstanding per core.
// JBSQ(1)'s strict bound shows up as a throughput cost at saturation versus
// the bubble-hiding threshold 2 — the §4.3 effect, now expressible as data.
func TestJBSQBound(t *testing.T) {
	j1 := mustRun(t, planConfig(PlanJBSQ(1), workload.HERD(), 25))
	j2 := mustRun(t, planConfig(PlanJBSQ(2), workload.HERD(), 25))
	if j2.ThroughputMRPS < j1.ThroughputMRPS*0.995 {
		t.Fatalf("jbsq2 throughput %.3f below jbsq1 %.3f — the bubble should cost jbsq1",
			j2.ThroughputMRPS, j1.ThroughputMRPS)
	}
}

// TestParsePlan covers the spec grammar's error paths and shapes.
func TestParsePlan(t *testing.T) {
	good := map[string]func(pl *Plan) bool{
		"1x16":        func(pl *Plan) bool { return pl.Groups == 1 && !pl.Software },
		"single":      func(pl *Plan) bool { return pl.Groups == 1 },
		"4x4":         func(pl *Plan) bool { return pl.Groups == GroupsPerBackend },
		"16x1":        func(pl *Plan) bool { return pl.Groups == GroupsPerCore && pl.Threshold == ni.Unlimited },
		"partitioned": func(pl *Plan) bool { return pl.Route == RouteRSS },
		"sw":          func(pl *Plan) bool { return pl.Software },
		"software":    func(pl *Plan) bool { return pl.Software },
		"jbsq4":       func(pl *Plan) bool { return pl.Threshold == 4 && pl.Policy.Name == "least-outstanding" },
		"2x8:local":   func(pl *Plan) bool { return pl.Groups == 2 && pl.Policy.Name == "local" },
	}
	for spec, check := range good {
		pl, err := ParsePlan(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if !check(pl) {
			t.Fatalf("%s: parsed to %+v", spec, pl)
		}
	}
	for _, spec := range []string{"", "bogus", "jbsq0", "jbsqx", "0x16", "ax4", "sw:local", "1x16:bogus"} {
		if _, err := ParsePlan(spec); err == nil {
			t.Fatalf("%q: accepted", spec)
		}
	}
}

// TestPlanValidation: plans that do not fit the machine must be rejected at
// construction, not at dispatch time.
func TestPlanValidation(t *testing.T) {
	bad := map[string]*Plan{
		"unsplittable groups": {Groups: 3},
		"too many groups":     {Groups: 32},
		"literal mismatch":    {Groups: 2, groupSize: 4}, // 2×4 ≠ 16 cores
		"negative threshold":  {Groups: 1, Threshold: -1},
		"bad route":           {Groups: 1, Route: Route(9)},
		"starving local":      {Groups: 16, Threshold: ni.Unlimited, Route: RouteLocal},
	}
	for name, pl := range bad {
		cfg := planConfig(pl, workload.HERD(), 5)
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := ParsePlan("5x3"); err != nil {
		t.Fatal(err)
	} else if pl, _ := ParsePlan("5x3"); pl != nil {
		cfg := planConfig(pl, workload.HERD(), 5)
		if _, err := Run(cfg); err == nil {
			t.Error("5x3 on a 16-core machine: accepted")
		}
	}
}

// TestPlanLabels: synthesized names describe the resolved shape.
func TestPlanLabels(t *testing.T) {
	p := Defaults()
	cases := map[string]*Plan{
		"plan-2x8":         {Groups: 2},
		"plan-2x8/random2": {Groups: 2, Policy: mustSpec("random2")},
		"software-1x16":    {Software: true},
		"named":            {Name: "named", Groups: 1},
	}
	for want, pl := range cases {
		if got := pl.label(p); got != want {
			t.Errorf("label = %q, want %q", got, want)
		}
	}
}
