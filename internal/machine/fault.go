package machine

import (
	"fmt"
	"strconv"
	"strings"

	"rpcvalet/internal/sim"
)

// Pause is a stall window [Start, Start+Dur) in virtual time: any core that
// would begin work inside the window instead stalls until it ends — a
// first-order model of whole-node freezes (garbage collection, power
// capping, firmware SMIs). Work already in flight when the window opens is
// not interrupted.
type Pause struct {
	Start sim.Duration // offset from simulation start
	Dur   sim.Duration
}

func (p Pause) String() string {
	return fmt.Sprintf("pause@%gus+%gus", p.Start.Micros(), p.Dur.Micros())
}

// PauseStall returns how long work beginning at time t must stall to clear
// every pause window containing t — the shared semantics for paused cores
// here and paused rack balancers in internal/cluster.
func PauseStall(pauses []Pause, t sim.Time) sim.Duration { return pauseStall(pauses, t) }

// pauseStall returns how long work beginning at time t must stall to clear
// every pause window containing t.
func pauseStall(pauses []Pause, t sim.Time) sim.Duration {
	var stall sim.Duration
	for _, p := range pauses {
		start := sim.Time(0).Add(p.Start)
		end := start.Add(p.Dur)
		if t >= start && t < end && end.Sub(t) > stall {
			stall = end.Sub(t)
		}
	}
	return stall
}

// Fault bundles one server's degradation: a service-time slowdown factor
// and/or stall windows. The zero value means a healthy server.
type Fault struct {
	// Slowdown multiplies every sampled handler service time. 0 and 1 both
	// mean full speed; 1.5 models a server running at 2/3 speed.
	Slowdown float64
	Pauses   []Pause
}

func (f Fault) validate() error {
	if f.Slowdown < 0 {
		return fmt.Errorf("machine: negative slowdown %g", f.Slowdown)
	}
	for _, p := range f.Pauses {
		if p.Start < 0 || p.Dur < 0 {
			return fmt.Errorf("machine: negative pause window %v", p)
		}
	}
	return nil
}

func (f Fault) String() string {
	var parts []string
	if f.Slowdown > 0 && f.Slowdown != 1 {
		parts = append(parts, fmt.Sprintf("x%g", f.Slowdown))
	}
	for _, p := range f.Pauses {
		parts = append(parts, p.String())
	}
	if len(parts) == 0 {
		return "healthy"
	}
	return strings.Join(parts, ",")
}

// ParseFault parses the degradation grammar shared by the CLIs' -degrade
// flags: a comma-separated list of terms, each either a slowdown factor
// "x1.5" or a stall window "pause@START+DUR" with durations in the
// sim.ParseDuration grammar (e.g. "pause@200us+100us").
func ParseFault(spec string) (Fault, error) {
	var f Fault
	for _, term := range strings.Split(spec, ",") {
		term = strings.TrimSpace(term)
		switch {
		case term == "":
			continue
		case strings.HasPrefix(term, "x"):
			v, err := strconv.ParseFloat(term[1:], 64)
			if err != nil || v <= 0 {
				return Fault{}, fmt.Errorf("machine: bad slowdown %q (want e.g. x1.5)", term)
			}
			f.Slowdown = v
		case strings.HasPrefix(term, "pause@"):
			body := term[len("pause@"):]
			at, dur, ok := strings.Cut(body, "+")
			if !ok {
				return Fault{}, fmt.Errorf("machine: bad pause %q (want pause@START+DUR)", term)
			}
			start, err := sim.ParseDuration(at)
			if err != nil {
				return Fault{}, err
			}
			d, err := sim.ParseDuration(dur)
			if err != nil {
				return Fault{}, err
			}
			f.Pauses = append(f.Pauses, Pause{Start: start, Dur: d})
		default:
			return Fault{}, fmt.Errorf("machine: bad fault term %q (want x<factor> or pause@START+DUR)", term)
		}
	}
	return f, f.validate()
}
