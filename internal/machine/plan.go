package machine

import (
	"fmt"
	"strconv"
	"strings"

	"rpcvalet/internal/ni"
)

// A Plan declaratively describes the machine's dispatch architecture: how
// the serving cores are grouped under NI dispatchers, which policy each
// dispatcher runs, the per-core outstanding threshold, how NI backends route
// message-completion tokens to dispatchers, and whether dispatch happens in
// NI hardware at all or through the software (MCS-locked) in-memory queue.
//
// The four legacy Mode constants are now just canned plans (PlanForMode);
// every combination the Mode enum could not express — JBSQ(n)
// bounded-outstanding dispatch, 2×8 groupings, per-dispatcher policies,
// locality-aware arbitration — is an ordinary Plan value. Set Params.Plan to
// use one; when Plan is nil the machine builds the canned plan for
// Params.Mode, byte-for-byte reproducing the historical result streams
// (pinned in pin_test.go).
type Plan struct {
	// Name labels results and reports. Empty means a name is synthesized
	// from the resolved shape ("plan-2x8/random2").
	Name string

	// Groups is the number of NI dispatcher groups the cores are split
	// into, contiguously and evenly (it must divide Params.Cores). 1 is the
	// full single-queue machine; Params.Cores is per-core (partitioned)
	// dispatch. Two negative sentinels resolve against Params at build
	// time: GroupsPerBackend and GroupsPerCore. Zero means 1.
	Groups int

	// Threshold is the per-core outstanding limit the dispatchers enforce
	// (JBSQ(n)'s bound). Zero inherits Params.Threshold; ni.Unlimited
	// removes the bound, which turns each dispatcher into a static router.
	Threshold int

	// Policy selects the arbiter each dispatcher runs; every dispatcher
	// gets its own instance via Spec.New. The zero Spec falls back to
	// Params.Policy when set, else the default occupancy-feedback arbiter
	// (ni.LeastOutstandingRR).
	Policy ni.Spec

	// Route chooses how a backend forwards a completion token to a
	// dispatcher. RouteAuto picks RouteLocal when dispatchers are no more
	// numerous than backends, RouteRSS otherwise.
	Route Route

	// Software replaces the NI dispatchers entirely: backends append to the
	// shared in-memory queue that cores drain under the MCS lock (§6.2's
	// baseline). Groups, Threshold, Policy, and Route are ignored.
	Software bool

	// groupSize, when nonzero, records the per-group core count of a
	// literal GxM ParsePlan spec so validation can reject groupings that
	// don't match the machine. Programmatic plans express the same
	// constraint through Groups alone.
	groupSize int
}

// Sentinel Groups values, resolved against Params at build time so canned
// plans stay correct for any core/backend count.
const (
	// GroupsPerBackend gives each NI backend its own dispatcher over its
	// share of the cores (the legacy grouped mode).
	GroupsPerBackend = -1
	// GroupsPerCore gives every core a private dispatcher (the legacy
	// partitioned/RSS mode).
	GroupsPerCore = -2
)

// Route selects how backends route completion tokens to dispatchers.
type Route int

const (
	// RouteAuto resolves to RouteLocal when Groups <= Backends, RouteRSS
	// otherwise.
	RouteAuto Route = iota
	// RouteLocal forwards each token to the dispatcher co-located with the
	// receiving backend's mesh slice (dispatcher = backend × groups /
	// backends) — the wiring of the legacy single-queue and grouped modes.
	RouteLocal
	// RouteRSS statically assigns each message to a dispatcher at arrival:
	// a flow hash of the source node when Params.RSSByFlow is set,
	// otherwise a uniform random draw — the legacy partitioned behaviour.
	RouteRSS
)

// PlanSingleQueue is the canned RPCValet plan: one dispatcher balancing all
// cores from a single shared CQ (the legacy ModeSingleQueue).
func PlanSingleQueue() *Plan {
	return &Plan{Name: ModeSingleQueue.String(), Groups: 1}
}

// PlanGrouped restricts each NI backend to its own core group (the legacy
// ModeGrouped).
func PlanGrouped() *Plan {
	return &Plan{Name: ModeGrouped.String(), Groups: GroupsPerBackend}
}

// PlanPartitioned statically assigns each message to a core, RSS-style, with
// no outstanding limit and no rebalancing (the legacy ModePartitioned).
func PlanPartitioned() *Plan {
	return &Plan{
		Name:      ModePartitioned.String(),
		Groups:    GroupsPerCore,
		Threshold: ni.Unlimited,
		Route:     RouteRSS,
	}
}

// PlanSoftware implements the single queue in software: NIs append to one
// in-memory queue drained under an MCS lock (the legacy ModeSoftware).
func PlanSoftware() *Plan {
	return &Plan{Name: ModeSoftware.String(), Software: true}
}

// PlanJBSQ is the nanoPU-style JBSQ(n) plan: one shared queue, at most n
// outstanding per core, shortest-(bounded-)queue arbitration. JBSQ(1) is the
// strict single-queue ideal (with the dispatch-round-trip bubble the paper's
// threshold-2 default exists to hide); larger n trades queueing imbalance
// for bubble-free handoff.
func PlanJBSQ(n int) *Plan {
	return &Plan{
		Name:      fmt.Sprintf("jbsq%d", n),
		Groups:    1,
		Threshold: n,
		Policy:    mustSpec("least-outstanding"),
	}
}

// PlanForMode returns the canned plan reproducing a legacy Mode.
func PlanForMode(m Mode) (*Plan, error) {
	switch m {
	case ModeSingleQueue:
		return PlanSingleQueue(), nil
	case ModeGrouped:
		return PlanGrouped(), nil
	case ModePartitioned:
		return PlanPartitioned(), nil
	case ModeSoftware:
		return PlanSoftware(), nil
	}
	return nil, fmt.Errorf("machine: no plan for mode %d", int(m))
}

func mustSpec(name string) ni.Spec {
	s, err := ni.SpecByName(name)
	if err != nil {
		panic(err)
	}
	return s
}

// ParsePlan builds a Plan from a compact spec string, the grammar behind the
// CLIs' -dispatch flags:
//
//	spec   := base [":" policy]
//	base   := "1x16" | "single"      (one dispatcher over all cores)
//	        | "4x4"  | "grouped"     (one dispatcher per NI backend)
//	        | "16x1" | "partitioned" (per-core static RSS dispatch)
//	        | "sw"   | "software"    (MCS-locked software queue)
//	        | "jbsq" N               (JBSQ(N): bounded-outstanding single queue)
//	        | G "x" M                (G dispatchers of M cores each)
//	policy := any ni.SpecByName name ("least-outstanding", "random2", "local", ...)
//
// The well-known names resolve to the canned plans (so they adapt to any
// core/backend count); a literal GxM grouping is validated against
// Params.Cores when the machine is built.
func ParsePlan(spec string) (*Plan, error) {
	base, polName, hasPol := strings.Cut(spec, ":")
	var pl *Plan
	switch base {
	case "1x16", "single":
		pl = PlanSingleQueue()
	case "4x4", "grouped":
		pl = PlanGrouped()
	case "16x1", "partitioned", "rss":
		pl = PlanPartitioned()
	case "sw", "software":
		pl = PlanSoftware()
	default:
		if ns, ok := strings.CutPrefix(base, "jbsq"); ok {
			n, err := strconv.Atoi(ns)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("machine: bad JBSQ plan %q (want jbsq1, jbsq2, ...)", base)
			}
			pl = PlanJBSQ(n)
			break
		}
		gs, ms, ok := strings.Cut(base, "x")
		if !ok {
			return nil, fmt.Errorf("machine: bad dispatch plan %q (want 1x16, 4x4, 16x1, sw, jbsqN, or GxM)", spec)
		}
		g, err1 := strconv.Atoi(gs)
		m, err2 := strconv.Atoi(ms)
		if err1 != nil || err2 != nil || g < 1 || m < 1 {
			return nil, fmt.Errorf("machine: bad dispatch grouping %q", base)
		}
		pl = &Plan{Name: base, Groups: g, groupSize: m}
	}
	if hasPol {
		if pl.Software {
			return nil, fmt.Errorf("machine: plan %q: the software queue takes no NI policy", spec)
		}
		s, err := ni.SpecByName(polName)
		if err != nil {
			return nil, err
		}
		pl.Policy = s
		pl.Name = spec
	}
	return pl, nil
}

// validate checks the plan against the machine's parameters.
func (pl *Plan) validate(p Params) error {
	if pl.Software {
		return nil
	}
	groups, err := pl.resolveGroups(p)
	if err != nil {
		return err
	}
	if pl.groupSize != 0 && groups*pl.groupSize != p.Cores {
		return fmt.Errorf("machine: plan %s: %d groups × %d cores ≠ %d machine cores",
			pl.label(p), groups, pl.groupSize, p.Cores)
	}
	if t := pl.Threshold; t != 0 && t != ni.Unlimited && t < 1 {
		return fmt.Errorf("machine: plan %s: outstanding threshold %d must be >= 1", pl.label(p), t)
	}
	if pl.Route < RouteAuto || pl.Route > RouteRSS {
		return fmt.Errorf("machine: plan %s: unknown route %d", pl.label(p), int(pl.Route))
	}
	if pl.Route == RouteLocal && groups > p.Backends {
		// Local routing can only ever name one dispatcher per backend;
		// with more groups than backends the rest would silently starve.
		return fmt.Errorf("machine: plan %s: local routing cannot reach %d dispatcher groups from %d backends (use RouteRSS)",
			pl.label(p), groups, p.Backends)
	}
	return nil
}

// resolveGroups maps the Groups field (including sentinels) to a concrete
// dispatcher count for this machine.
func (pl *Plan) resolveGroups(p Params) (int, error) {
	g := pl.Groups
	switch g {
	case 0:
		g = 1
	case GroupsPerBackend:
		g = p.Backends
	case GroupsPerCore:
		g = p.Cores
	}
	if g < 1 {
		return 0, fmt.Errorf("machine: plan group count %d invalid", pl.Groups)
	}
	if p.Cores%g != 0 {
		return 0, fmt.Errorf("machine: %d cores do not split into %d dispatcher groups", p.Cores, g)
	}
	return g, nil
}

// resolveThreshold maps the Threshold field to the concrete per-core bound.
func (pl *Plan) resolveThreshold(p Params) int {
	if pl.Threshold == 0 {
		return p.Threshold
	}
	return pl.Threshold
}

// resolveRoute maps RouteAuto to a concrete routing given the group count.
func (pl *Plan) resolveRoute(p Params, groups int) Route {
	if pl.Route != RouteAuto {
		return pl.Route
	}
	if groups > p.Backends {
		return RouteRSS
	}
	return RouteLocal
}

// execPlan is a Plan resolved against concrete Params: every sentinel and
// zero-means-inherit field replaced by its concrete value. The machine's
// construction and dispatch paths consult only this.
type execPlan struct {
	groups    int
	threshold int
	route     Route
	software  bool
	policy    ni.Spec // zero Spec = legacy fallback (Params.Policy or default)
	label     string
}

// resolvePlan picks the effective plan for the parameters — the explicit
// Params.Plan when set, else the canned plan for the legacy Params.Mode —
// and resolves it.
func resolvePlan(p Params) (execPlan, error) {
	pl := p.Plan
	if pl == nil {
		var err error
		if pl, err = PlanForMode(p.Mode); err != nil {
			return execPlan{}, err
		}
	}
	if err := pl.validate(p); err != nil {
		return execPlan{}, err
	}
	if pl.Software {
		return execPlan{software: true, label: pl.label(p)}, nil
	}
	groups, err := pl.resolveGroups(p)
	if err != nil {
		return execPlan{}, err
	}
	return execPlan{
		groups:    groups,
		threshold: pl.resolveThreshold(p),
		route:     pl.resolveRoute(p, groups),
		policy:    pl.Policy,
		label:     pl.label(p),
	}, nil
}

// label is the display name of the plan under the given parameters.
func (pl *Plan) label(p Params) string {
	if pl.Name != "" {
		return pl.Name
	}
	if pl.Software {
		return ModeSoftware.String()
	}
	groups, err := pl.resolveGroups(p)
	if err != nil {
		return "plan(invalid)"
	}
	name := fmt.Sprintf("plan-%dx%d", groups, p.Cores/groups)
	if pl.Policy.Name != "" {
		name += "/" + pl.Policy.Name
	}
	return name
}
