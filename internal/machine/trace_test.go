package machine

import (
	"testing"

	"rpcvalet/internal/trace"
	"rpcvalet/internal/workload"
)

// TestMachineTailSpans: tail capture on the single-machine simulator — K
// completed spans, slowest first, depth-at-arrival tracked, and the slowest
// at least as slow as the window's p99 (the sampler saw every request).
func TestMachineTailSpans(t *testing.T) {
	cfg := testConfig(ModeSingleQueue, workload.HERD(), 8)
	cfg.Warmup, cfg.Measure = 100, 2000
	cfg.TailSamples = 16
	res := mustRun(t, cfg)
	if len(res.TailSpans) != 16 {
		t.Fatalf("tail spans = %d, want 16", len(res.TailSpans))
	}
	for i, s := range res.TailSpans {
		if !s.Completed() {
			t.Fatalf("span %d incomplete", i)
		}
		if s.DepthAtArrival < 0 {
			t.Fatalf("span %d missing depth-at-arrival", i)
		}
		if s.Core < 0 || s.Core >= cfg.Params.Cores {
			t.Fatalf("span %d core %d", i, s.Core)
		}
		if s.Dispatch == trace.Unset || s.Start == trace.Unset {
			t.Fatalf("span %d missing milestones: %+v", i, s)
		}
		if i > 0 && s.TotalNs() > res.TailSpans[i-1].TotalNs() {
			t.Fatal("tail not slowest-first")
		}
	}
	if res.TailSpans[0].TotalNs() < res.Latency.P99 {
		t.Fatalf("slowest span %.0fns below p99 %.0fns",
			res.TailSpans[0].TotalNs(), res.Latency.P99)
	}
}

// TestMachineTraceSampling: TraceSample thins the user stream by request ID
// while leaving results and the tail set untouched.
func TestMachineTraceSampling(t *testing.T) {
	base := testConfig(ModeSingleQueue, workload.SyntheticFixed(), 3)
	base.Warmup, base.Measure = 50, 1000
	base.TailSamples = 8
	full := mustRun(t, base)

	sampled := 0
	cfg := base
	cfg.TraceSample = 16
	cfg.Trace = trace.Func(func(e trace.Event) {
		if e.ReqID%16 != 0 {
			t.Fatalf("sampled stream leaked req %d", e.ReqID)
		}
		sampled++
	})
	got := mustRun(t, cfg)
	if sampled == 0 {
		t.Fatal("sampling recorded nothing")
	}
	if got.Latency != full.Latency || got.ThroughputMRPS != full.ThroughputMRPS {
		t.Fatal("tracing perturbed the result stream")
	}
	if len(got.TailSpans) != len(full.TailSpans) {
		t.Fatalf("tail size changed under sampling: %d vs %d", len(got.TailSpans), len(full.TailSpans))
	}
	for i := range got.TailSpans {
		if got.TailSpans[i] != full.TailSpans[i] {
			t.Fatalf("tail span %d changed under sampling", i)
		}
	}
}

// TestMachineDepthAtArrival: arrive events carry the number of other
// in-flight requests, and it is consistent with a non-negative bound.
func TestMachineDepthAtArrival(t *testing.T) {
	var arrives, withDepth int
	cfg := testConfig(ModePartitioned, workload.SyntheticFixed(), 3)
	cfg.Warmup, cfg.Measure = 20, 400
	cfg.Trace = trace.Func(func(e trace.Event) {
		switch e.Phase {
		case trace.PhaseArrive:
			arrives++
			if e.Depth >= 0 {
				withDepth++
			}
		default:
			if e.Depth != -1 {
				t.Fatalf("%v carries depth %d", e.Phase, e.Depth)
			}
		}
	})
	mustRun(t, cfg)
	if arrives == 0 || withDepth != arrives {
		t.Fatalf("depth tracked on %d of %d arrivals", withDepth, arrives)
	}
}

// BenchmarkTraceOverhead measures the machine hot path's tracing cost.
// The disabled case is the acceptance gate: record() with no sinks must be
// 0 allocs/op (guarded by TestRecordDisabledZeroAllocs below, which fails
// the suite rather than needing a human to read benchmark output).
func BenchmarkTraceOverhead(b *testing.B) {
	bench := func(b *testing.B, mutate func(*Config)) {
		cfg := testConfig(ModeSingleQueue, workload.SyntheticFixed(), 3)
		cfg.Warmup, cfg.Measure = 10, 100
		mutate(&cfg)
		m, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.record(uint64(i), trace.PhaseArrive, -1, 3)
		}
	}
	b.Run("disabled", func(b *testing.B) {
		bench(b, func(*Config) {})
	})
	b.Run("buffer", func(b *testing.B) {
		bench(b, func(c *Config) { c.Trace = trace.NewBuffer(1 << 10) })
	})
	b.Run("sampled-1in1024", func(b *testing.B) {
		bench(b, func(c *Config) {
			c.Trace = trace.NewBuffer(1 << 10)
			c.TraceSample = 1024
		})
	})
	b.Run("tail64", func(b *testing.B) {
		bench(b, func(c *Config) { c.TailSamples = 64 })
	})
}

// TestRecordDisabledZeroAllocs enforces the disabled-path contract in the
// test suite: the machine's per-event hook allocates nothing when no tracer
// is configured.
func TestRecordDisabledZeroAllocs(t *testing.T) {
	cfg := testConfig(ModeSingleQueue, workload.SyntheticFixed(), 3)
	cfg.Warmup, cfg.Measure = 10, 100
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	id := uint64(0)
	allocs := testing.AllocsPerRun(1000, func() {
		m.record(id, trace.PhaseArrive, -1, 3)
		id++
	})
	if allocs != 0 {
		t.Fatalf("disabled record() allocates %.1f per op, want 0", allocs)
	}
}
