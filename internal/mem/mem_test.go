package mem

import (
	"testing"

	"rpcvalet/internal/sim"
)

func TestDefaultMatchesTable1(t *testing.T) {
	h := Default()
	if h.L1Cycles != 3 || h.LLCCycles != 6 || h.DRAMNanos != 50 || h.BlockBytes != 64 || h.FreqGHz != 2 {
		t.Fatalf("default hierarchy %+v does not match Table 1", h)
	}
}

func TestLatencies(t *testing.T) {
	h := Default()
	if got := h.L1(); got != sim.FromNanos(1.5) {
		t.Fatalf("L1 = %v, want 1.5ns", got)
	}
	// LLC local bank: 6 cycles = 3ns.
	if got := h.LLC(0, sim.FromNanos(1.5)); got != sim.FromNanos(3) {
		t.Fatalf("LLC local = %v, want 3ns", got)
	}
	// LLC 2 hops away: 3ns + 2×1.5ns = 6ns.
	if got := h.LLC(2, sim.FromNanos(1.5)); got != sim.FromNanos(6) {
		t.Fatalf("LLC remote = %v, want 6ns", got)
	}
	if got := h.DRAM(); got != sim.FromNanos(50) {
		t.Fatalf("DRAM = %v, want 50ns", got)
	}
}

func TestBlocks(t *testing.T) {
	h := Default()
	cases := []struct{ bytes, want int }{
		{0, 1}, {-5, 1}, {1, 1}, {64, 1}, {65, 2}, {512, 8}, {513, 9},
	}
	for _, c := range cases {
		if got := h.Blocks(c.bytes); got != c.want {
			t.Errorf("Blocks(%d) = %d, want %d", c.bytes, got, c.want)
		}
	}
}

func TestCacheLineTransfer(t *testing.T) {
	h := Default()
	hop := sim.FromNanos(1.5)
	// 6 cycles (3ns) + 2×3 hops×1.5ns = 12ns.
	if got := h.CacheLineTransfer(3, hop); got != sim.FromNanos(12) {
		t.Fatalf("transfer = %v, want 12ns", got)
	}
	// Transfers between distant tiles cost more.
	if !(h.CacheLineTransfer(6, hop) > h.CacheLineTransfer(1, hop)) {
		t.Fatal("transfer cost not monotone in distance")
	}
}

func TestString(t *testing.T) {
	if Default().String() == "" {
		t.Fatal("empty string representation")
	}
}
