// Package mem is the first-order memory-hierarchy cost model for the
// simulated server, parameterised after Table 1 of the paper: 3-cycle L1,
// 6-cycle NUCA LLC (plus mesh distance to the bank), 50 ns DRAM, 64-byte
// blocks at 2 GHz.
//
// The RPCValet design leans on the NI's "fast access to its local memory
// hierarchy": receive buffers and queue-pair entries live in LLC/DRAM and the
// NI reads/writes them coherently. This package supplies those access costs
// to the NI and core models.
package mem

import (
	"fmt"

	"rpcvalet/internal/sim"
)

// Hierarchy describes the chip's memory system costs.
type Hierarchy struct {
	FreqGHz    float64
	L1Cycles   int     // L1 hit latency (tag+data)
	LLCCycles  int     // LLC bank access, excluding NUCA routing
	DRAMNanos  float64 // DRAM access latency
	BlockBytes int     // cache block (and network MTU) size
}

// Default returns Table 1's memory parameters.
func Default() Hierarchy {
	return Hierarchy{FreqGHz: 2, L1Cycles: 3, LLCCycles: 6, DRAMNanos: 50, BlockBytes: 64}
}

func (h Hierarchy) cycles(n int) sim.Duration {
	return sim.FromNanos(float64(n) / h.FreqGHz)
}

// L1 returns the L1 hit latency.
func (h Hierarchy) L1() sim.Duration { return h.cycles(h.L1Cycles) }

// LLC returns the latency of an LLC access whose bank is bankHops mesh hops
// away, each hop costing hopLatency (taken from the NOC model so the two
// stay consistent).
func (h Hierarchy) LLC(bankHops int, hopLatency sim.Duration) sim.Duration {
	return h.cycles(h.LLCCycles) + sim.Duration(bankHops)*hopLatency
}

// DRAM returns the DRAM access latency.
func (h Hierarchy) DRAM() sim.Duration { return sim.FromNanos(h.DRAMNanos) }

// Blocks returns how many cache blocks a payload of n bytes occupies. A
// zero-byte payload still occupies one block (headers travel somewhere).
func (h Hierarchy) Blocks(n int) int {
	if n <= 0 {
		return 1
	}
	return (n + h.BlockBytes - 1) / h.BlockBytes
}

// CacheLineTransfer returns the cost of moving one dirty cache line between
// two cores' private caches via the coherence protocol — the dominant cost
// of lock handoffs and shared-queue manipulation in the software
// load-balancing baseline (§6.2). First order: an LLC directory access plus
// the round trip between the two tiles.
func (h Hierarchy) CacheLineTransfer(hops int, hopLatency sim.Duration) sim.Duration {
	return h.cycles(h.LLCCycles) + 2*sim.Duration(hops)*hopLatency
}

func (h Hierarchy) String() string {
	return fmt.Sprintf("mem{L1=%dcy LLC=%dcy DRAM=%gns block=%dB @%gGHz}",
		h.L1Cycles, h.LLCCycles, h.DRAMNanos, h.BlockBytes, h.FreqGHz)
}
