package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("sequence diverged at %d: %d != %d", i, av, bv)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical outputs out of 100", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	// Children must differ from each other.
	diff := false
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("two Split children produced identical sequences")
	}
}

func TestSplitReproducible(t *testing.T) {
	mk := func() *Source { return New(99).Split() }
	a, b := mk(), mk()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split is not deterministic")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 100000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestOpenFloat64NeverZero(t *testing.T) {
	s := New(4)
	for i := 0; i < 100000; i++ {
		if v := s.OpenFloat64(); v <= 0 || v >= 1 {
			t.Fatalf("OpenFloat64 out of (0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(5)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntNRange(t *testing.T) {
	if err := quick.Check(func(seed uint64, n16 uint16) bool {
		n := int(n16%1000) + 1
		s := New(seed)
		for i := 0; i < 50; i++ {
			v := s.IntN(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntNUniform(t *testing.T) {
	s := New(6)
	const n, draws = 8, 400000
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[s.IntN(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.02 {
			t.Fatalf("bucket %d has %d draws, want ~%v", i, c, want)
		}
	}
}

func TestIntNPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("IntN(0) did not panic")
		}
	}()
	New(1).IntN(0)
}

func TestExpFloat64Mean(t *testing.T) {
	s := New(8)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.ExpFloat64()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean = %v, want ~1", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(9)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	if err := quick.Check(func(seed uint64, n8 uint8) bool {
		n := int(n8 % 64)
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		x, y, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul64(c.x, c.y)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.x, c.y, hi, lo, c.hi, c.lo)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += s.Uint64()
	}
	_ = sink
}

func BenchmarkFloat64(b *testing.B) {
	s := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += s.Float64()
	}
	_ = sink
}
