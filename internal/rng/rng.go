// Package rng provides small, fast, deterministic random number generators
// for the simulator.
//
// Every stochastic component of an experiment (arrival process, service-time
// sampler, RSS hash, ...) draws from its own Source, split off a single
// experiment seed with Split. Streams produced by Split are statistically
// independent, so adding a new component to a simulation does not perturb the
// random sequence seen by existing components. This is what makes experiment
// results reproducible run-to-run and stable across refactorings.
//
// The generator is xoshiro256**, seeded through SplitMix64, following the
// reference construction by Blackman and Vigna. Both are public-domain
// algorithms, implemented here from the specification so the module stays
// dependency-free.
package rng

import "math"

// Source is a deterministic pseudo-random number generator. It is not safe
// for concurrent use; give each goroutine (or each simulated component) its
// own Source via Split.
type Source struct {
	s [4]uint64
}

// splitMix64 advances a SplitMix64 state and returns the next output. It is
// used to expand a 64-bit seed into the 256-bit xoshiro state and to derive
// independent child seeds.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from seed. Two Sources created with the same
// seed produce identical sequences.
func New(seed uint64) *Source {
	var s Source
	sm := seed
	for i := range s.s {
		s.s[i] = splitMix64(&sm)
	}
	// xoshiro256** requires a state that is not all zero; SplitMix64 cannot
	// produce four consecutive zeros, so the state is always valid.
	return &s
}

// Split derives a new, statistically independent Source from s. The parent
// advances, so successive Split calls yield distinct children.
func (s *Source) Split() *Source {
	return New(s.Uint64() ^ 0xd1b54a32d192ed03)
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	result := rotl(s.s[1]*5, 7) * 9
	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = rotl(s.s[3], 45)
	return result
}

// Float64 returns a uniformly distributed value in [0, 1) with 53 bits of
// precision.
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// OpenFloat64 returns a uniformly distributed value in the open interval
// (0, 1). It never returns exactly 0, which makes it safe to pass to
// logarithms and inverse CDFs with poles at the origin.
func (s *Source) OpenFloat64() float64 {
	for {
		if v := s.Float64(); v > 0 {
			return v
		}
	}
}

// IntN returns a uniformly distributed int in [0, n). It panics if n <= 0.
// The implementation uses Lemire's multiply-shift rejection method, which is
// unbiased.
func (s *Source) IntN(n int) int {
	if n <= 0 {
		panic("rng: IntN called with n <= 0")
	}
	un := uint64(n)
	// Fast path avoiding 128-bit arithmetic for small n.
	for {
		v := s.Uint64()
		hi, lo := mul64(v, un)
		if lo >= un || lo >= (-un)%un {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t&mask32 + x0*y1
	hi = x1*y1 + t>>32 + w1>>32
	lo = x * y
	return hi, lo
}

// ExpFloat64 returns an exponentially distributed value with mean 1.
func (s *Source) ExpFloat64() float64 {
	return -math.Log(s.OpenFloat64())
}

// NormFloat64 returns a normally distributed value with mean 0 and standard
// deviation 1, using the Marsaglia polar method.
func (s *Source) NormFloat64() float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q > 0 && q < 1 {
			return u * math.Sqrt(-2*math.Log(q)/q)
		}
	}
}

// Perm returns a pseudo-random permutation of the integers [0, n) as a slice.
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := s.IntN(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
