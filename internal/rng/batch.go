package rng

// Batched draw buffers: the simulators' hot loops consume one value per
// simulated request from several independent streams (source-node picks,
// class picks, policy choices). Drawing them one call at a time keeps the
// generator state hot but pays a call per value; a batch pre-draws a block
// into a scratch buffer and hands values out from there.
//
// Correctness contract: a batch draws from exactly one Source that has no
// other consumer, and hands values out in exactly the order they were
// drawn. Pre-drawing therefore never reorders or perturbs the stream — the
// k-th value a consumer sees is byte-identical to the k-th value the
// unbatched code would have drawn. Values still buffered when a run ends
// are discarded; since the stream is private, nothing else observes the
// extra consumption.

// DefaultBatch is the block size batches pre-draw when size is left 0:
// large enough to amortize refill overhead, small enough that the scratch
// stays cache-resident.
const DefaultBatch = 64

// IntBatch pre-draws uniform ints in [0, n) from a private Source.
type IntBatch struct {
	src *Source
	n   int
	buf []int
	pos int
}

// NewIntBatch builds a batch of uniform [0, n) draws over src. size is the
// block length (0 = DefaultBatch). src must have no other consumer.
func NewIntBatch(src *Source, n, size int) *IntBatch {
	if size <= 0 {
		size = DefaultBatch
	}
	b := &IntBatch{src: src, n: n, buf: make([]int, size)}
	b.pos = size // force a refill on first Next
	return b
}

// Next returns the next draw, refilling the scratch block when it runs dry.
func (b *IntBatch) Next() int {
	if b.pos == len(b.buf) {
		for i := range b.buf {
			b.buf[i] = b.src.IntN(b.n)
		}
		b.pos = 0
	}
	v := b.buf[b.pos]
	b.pos++
	return v
}

// FloatBatch pre-draws uniform [0, 1) float64s from a private Source.
type FloatBatch struct {
	src *Source
	buf []float64
	pos int
}

// NewFloatBatch builds a batch of Float64 draws over src. size is the block
// length (0 = DefaultBatch). src must have no other consumer.
func NewFloatBatch(src *Source, size int) *FloatBatch {
	if size <= 0 {
		size = DefaultBatch
	}
	b := &FloatBatch{src: src, buf: make([]float64, size)}
	b.pos = size
	return b
}

// Next returns the next draw, refilling the scratch block when it runs dry.
func (b *FloatBatch) Next() float64 {
	if b.pos == len(b.buf) {
		for i := range b.buf {
			b.buf[i] = b.src.Float64()
		}
		b.pos = 0
	}
	v := b.buf[b.pos]
	b.pos++
	return v
}
