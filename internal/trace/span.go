package trace

import (
	"container/heap"
	"fmt"
	"sort"

	"rpcvalet/internal/sim"
)

// Unset marks a span timestamp whose phase was never observed.
const Unset = sim.Time(-1)

// Span is one request's assembled lifecycle: every recorded milestone plus
// the attribution needed to explain where the request spent its time. A span
// is built from Events by a TailSampler, a Collector, or Spans; fields whose
// phase was never recorded hold Unset (times) or -1 (attributions).
//
// The paper's tail-anatomy argument reads off a span directly: QueueWaitNs
// is the component dispatch policy controls (imbalance wait), ServiceNs is
// the handler itself, and HopNs is the cluster fabric. For a tail request,
// comparing WaitShare across dispatch plans shows whether its latency came
// from waiting behind a busy core (partitioned pathology) or from its own
// work (irreducible).
type Span struct {
	ReqID uint64
	Node  int // serving node (0 for single-machine runs, -1 unknown)
	Core  int // serving core/worker (-1 unknown)
	// Rack is the rack the global tier routed the request to (-1 for flat
	// and single-machine runs).
	Rack int
	// DepthAtArrival is the number of other requests outstanding at the
	// serving node when this one arrived (-1 untracked) — the congestion
	// the request walked into.
	DepthAtArrival int
	// DepthAtForward is the balancer's queue-depth view of the chosen node
	// at forward time (-1 for single-machine runs).
	DepthAtForward int
	// DepthAtGlobalForward is the global tier's aggregate-depth view of the
	// chosen rack at global-forward time (-1 off-hierarchy).
	DepthAtGlobalForward int

	GlobalRecv    sim.Time // global balancer ingress (Unset off-hierarchy)
	GlobalForward sim.Time // global balancer picked the rack (Unset off-hierarchy)
	BalancerRecv  sim.Time // cluster/rack balancer ingress (Unset off-cluster)
	Forward       sim.Time // balancer picked the node (Unset off-cluster)
	Arrive        sim.Time // message fully received at the node's NI
	Dispatch      sim.Time // NI dispatcher assigned a core
	Start         sim.Time // core began the handler
	Complete      sim.Time // replenish posted (latency clock stops)
}

// newSpan returns a span with every field at its "unobserved" sentinel.
func newSpan(id uint64) Span {
	return Span{
		ReqID: id, Node: -1, Core: -1, Rack: -1,
		DepthAtArrival: -1, DepthAtForward: -1, DepthAtGlobalForward: -1,
		GlobalRecv: Unset, GlobalForward: Unset,
		BalancerRecv: Unset, Forward: Unset, Arrive: Unset,
		Dispatch: Unset, Start: Unset, Complete: Unset,
	}
}

// observe folds one event into the span.
func (s *Span) observe(e Event) {
	switch e.Phase {
	case PhaseGlobalRecv:
		s.GlobalRecv = e.At
	case PhaseGlobalForward:
		s.GlobalForward = e.At
		s.Rack = e.Node
		s.DepthAtGlobalForward = e.Depth
		return // Node carries the rack index here, not a serving core's node
	case PhaseBalancerRecv:
		s.BalancerRecv = e.At
	case PhaseForward:
		s.Forward = e.At
		s.Node = e.Node
		s.DepthAtForward = e.Depth
	case PhaseArrive:
		s.Arrive = e.At
		s.Node = e.Node
		s.DepthAtArrival = e.Depth
	case PhaseDispatch:
		s.Dispatch = e.At
		s.Node = e.Node
	case PhaseStart:
		s.Start = e.At
		s.Node = e.Node
	case PhaseComplete:
		s.Complete = e.At
		s.Node = e.Node
	}
	if e.Core >= 0 {
		s.Core = e.Core
	}
}

// spanGap returns the nanoseconds from a to b, or 0 when either end was
// never observed.
func spanGap(a, b sim.Time) float64 {
	if a == Unset || b == Unset {
		return 0
	}
	return b.Sub(a).Nanos()
}

// Begin is the span's measurement origin: global-balancer ingress for
// two-tier requests, rack/cluster balancer ingress for flat cluster
// requests, NI arrival otherwise.
func (s Span) Begin() sim.Time {
	if s.GlobalRecv != Unset {
		return s.GlobalRecv
	}
	if s.BalancerRecv != Unset {
		return s.BalancerRecv
	}
	return s.Arrive
}

// TotalNs is the end-to-end latency: Begin → Complete.
func (s Span) TotalNs() float64 { return spanGap(s.Begin(), s.Complete) }

// GlobalHopNs is the global→rack leg (global forward decision through rack
// balancer ingress), 0 off-hierarchy. It includes any time the request spent
// waiting at a stalled rack balancer — a paused rack balancer shows up here.
func (s Span) GlobalHopNs() float64 { return spanGap(s.GlobalForward, s.BalancerRecv) }

// HopNs is the balancer→NI leg (forward decision through full reception at
// the node), 0 for single-machine runs.
func (s Span) HopNs() float64 { return spanGap(s.Forward, s.Arrive) }

// QueueWaitNs is the pre-service delay at the node — NI arrival until the
// core begins the handler: dispatch plus queue-imbalance wait, the component
// load balancing controls. It matches the machine Result's Wait sample up to
// the poll-detect sliver (which the machine books into service).
func (s Span) QueueWaitNs() float64 { return spanGap(s.Arrive, s.Start) }

// DispatchNs is the NI-internal leg: arrival until the dispatcher assigned a
// core.
func (s Span) DispatchNs() float64 { return spanGap(s.Arrive, s.Dispatch) }

// ServiceNs is the serving leg: handler start through replenish.
func (s Span) ServiceNs() float64 { return spanGap(s.Start, s.Complete) }

// WaitShare is QueueWaitNs as a fraction of the node-local latency
// (arrive → complete): ≈1 means the request's latency was queueing the
// dispatch plan could have removed, ≈0 means it was the request's own work.
func (s Span) WaitShare() float64 {
	total := spanGap(s.Arrive, s.Complete)
	if total <= 0 {
		return 0
	}
	return s.QueueWaitNs() / total
}

// Complete reports whether the span observed its terminal phase.
func (s Span) Completed() bool { return s.Complete != Unset }

func (s Span) String() string {
	return fmt.Sprintf("req %d node=%d core=%d depth=%d wait=%.0fns svc=%.0fns total=%.0fns",
		s.ReqID, s.Node, s.Core, s.DepthAtArrival, s.QueueWaitNs(), s.ServiceNs(), s.TotalNs())
}

// Spans assembles per-request spans from an event stream, in first-seen
// request order. Incomplete spans (requests still in flight when the stream
// ends) are included; filter with Completed when only finished requests
// matter.
func Spans(events []Event) []Span {
	idx := make(map[uint64]int)
	var out []Span
	for _, e := range events {
		i, ok := idx[e.ReqID]
		if !ok {
			i = len(out)
			idx[e.ReqID] = i
			out = append(out, newSpan(e.ReqID))
		}
		out[i].observe(e)
	}
	return out
}

// SortSlowestFirst orders spans by descending total latency, request ID
// breaking ties deterministically.
func SortSlowestFirst(spans []Span) {
	sort.Slice(spans, func(i, j int) bool {
		ti, tj := spans[i].TotalNs(), spans[j].TotalNs()
		if ti != tj {
			return ti > tj
		}
		return spans[i].ReqID < spans[j].ReqID
	})
}

// spanHeap is a min-heap on total latency (ties broken by descending request
// ID so the eviction order is deterministic), keeping the K slowest spans.
type spanHeap []Span

func (h spanHeap) Len() int { return len(h) }
func (h spanHeap) Less(i, j int) bool {
	ti, tj := h[i].TotalNs(), h[j].TotalNs()
	if ti != tj {
		return ti < tj
	}
	return h[i].ReqID > h[j].ReqID
}
func (h spanHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *spanHeap) Push(x any)        { *h = append(*h, x.(Span)) }
func (h *spanHeap) Pop() any          { old := *h; n := len(old); s := old[n-1]; *h = old[:n-1]; return s }
func (h spanHeap) peekTotal() float64 { return h[0].TotalNs() }

// TailSampler is a Recorder retaining the K slowest completed requests of a
// run with their full span breakdowns — the anatomy of the tail. It consumes
// the full event stream (never sample it: a sampled stream would miss tail
// requests), assembles spans request by request, and keeps a bounded heap,
// so memory is O(K + in-flight), independent of run length.
type TailSampler struct {
	k         int
	open      map[uint64]Span
	tail      spanHeap
	completed uint64
}

// NewTailSampler returns a sampler keeping the k slowest requests. It panics
// on non-positive k.
func NewTailSampler(k int) *TailSampler {
	if k <= 0 {
		panic("trace: tail sampler capacity must be positive")
	}
	return &TailSampler{k: k, open: make(map[uint64]Span)}
}

// Record implements Recorder.
func (t *TailSampler) Record(e Event) {
	sp, ok := t.open[e.ReqID]
	if !ok {
		sp = newSpan(e.ReqID)
	}
	sp.observe(e)
	if e.Phase != PhaseComplete {
		t.open[e.ReqID] = sp
		return
	}
	delete(t.open, e.ReqID)
	t.completed++
	if len(t.tail) < t.k {
		heap.Push(&t.tail, sp)
		return
	}
	if sp.TotalNs() > t.tail.peekTotal() {
		t.tail[0] = sp
		heap.Fix(&t.tail, 0)
	}
}

// Completed reports how many finished requests the sampler has seen.
func (t *TailSampler) Completed() uint64 { return t.completed }

// Spans returns the retained tail, slowest first. The heap is untouched; the
// sampler can keep recording.
func (t *TailSampler) Spans() []Span {
	out := append([]Span(nil), t.tail...)
	SortSlowestFirst(out)
	return out
}

// Collector is a Recorder assembling every completed span, in completion
// order — the export path behind JSONL trace dumps. Unlike TailSampler it
// grows with the run; pair it with sampling (machine/cluster/live
// TraceSample) on long runs.
type Collector struct {
	open map[uint64]Span
	done []Span
}

// NewCollector returns an empty span collector.
func NewCollector() *Collector { return &Collector{open: make(map[uint64]Span)} }

// Record implements Recorder.
func (c *Collector) Record(e Event) {
	sp, ok := c.open[e.ReqID]
	if !ok {
		sp = newSpan(e.ReqID)
	}
	sp.observe(e)
	if e.Phase != PhaseComplete {
		c.open[e.ReqID] = sp
		return
	}
	delete(c.open, e.ReqID)
	c.done = append(c.done, sp)
}

// Spans returns the completed spans in completion order (shared backing
// array; callers that mutate should copy).
func (c *Collector) Spans() []Span { return c.done }

// Tee fans one event stream out to several recorders (nils are skipped).
func Tee(recorders ...Recorder) Recorder {
	var live []Recorder
	for _, r := range recorders {
		if r != nil {
			live = append(live, r)
		}
	}
	return Func(func(e Event) {
		for _, r := range live {
			r.Record(e)
		}
	})
}
