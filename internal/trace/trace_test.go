package trace

import (
	"testing"

	"rpcvalet/internal/sim"
)

func TestPhaseStrings(t *testing.T) {
	cases := map[Phase]string{
		PhaseArrive:   "arrive",
		PhaseDispatch: "dispatch",
		PhaseStart:    "start",
		PhaseComplete: "complete",
		Phase(9):      "phase(9)",
	}
	for p, want := range cases {
		if p.String() != want {
			t.Errorf("Phase(%d) = %q, want %q", p, p.String(), want)
		}
	}
}

func TestEventString(t *testing.T) {
	e := Event{ReqID: 3, Phase: PhaseStart, At: sim.Time(1500), Core: 2}
	if e.String() == "" {
		t.Fatal("empty event string")
	}
}

func TestBufferBasics(t *testing.T) {
	b := NewBuffer(4)
	for i := 0; i < 3; i++ {
		b.Record(Event{ReqID: uint64(i)})
	}
	evs := b.Events()
	if len(evs) != 3 || b.Total() != 3 {
		t.Fatalf("events=%d total=%d", len(evs), b.Total())
	}
	for i, e := range evs {
		if e.ReqID != uint64(i) {
			t.Fatalf("order broken: %v", evs)
		}
	}
}

func TestBufferWraparound(t *testing.T) {
	b := NewBuffer(3)
	for i := 0; i < 10; i++ {
		b.Record(Event{ReqID: uint64(i)})
	}
	evs := b.Events()
	if len(evs) != 3 || b.Total() != 10 {
		t.Fatalf("events=%d total=%d", len(evs), b.Total())
	}
	// Retains the most recent three, in order.
	for i, want := range []uint64{7, 8, 9} {
		if evs[i].ReqID != want {
			t.Fatalf("wraparound order: %v", evs)
		}
	}
}

func TestBufferByRequest(t *testing.T) {
	b := NewBuffer(16)
	b.Record(Event{ReqID: 1, Phase: PhaseArrive})
	b.Record(Event{ReqID: 2, Phase: PhaseArrive})
	b.Record(Event{ReqID: 1, Phase: PhaseComplete})
	m := b.ByRequest()
	if len(m) != 2 || len(m[1]) != 2 || len(m[2]) != 1 {
		t.Fatalf("grouping wrong: %v", m)
	}
	if m[1][0].Phase != PhaseArrive || m[1][1].Phase != PhaseComplete {
		t.Fatal("per-request order broken")
	}
}

func TestBufferPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBuffer(0) did not panic")
		}
	}()
	NewBuffer(0)
}

func TestFuncAdapter(t *testing.T) {
	var got []Event
	r := Func(func(e Event) { got = append(got, e) })
	r.Record(Event{ReqID: 5})
	if len(got) != 1 || got[0].ReqID != 5 {
		t.Fatal("Func adapter did not record")
	}
}
