// Package trace records per-request lifecycle events from every runtime in
// the repository: when a message was fully received by the NI, when the
// dispatcher assigned it to a core, when the core's handler started, and when
// the replenish was posted — plus, for multi-node simulations
// (internal/cluster), the balancer-side hop milestones that precede them. It
// exists for observability — debugging dispatch behaviour, and letting
// downstream users audit exactly where a tail request spent its time — and
// for the test suite, which uses it to assert causal ordering through the
// pipeline.
//
// Events are the raw stream; Span (span.go) is the assembled per-request
// view, decomposing one RPC's end-to-end latency into hop, queue-wait, and
// service components. TailSampler retains the K slowest spans of a run —
// the anatomy of the tail — and Collector keeps every completed span for
// offline export (JSONL via internal/obs).
package trace

import (
	"fmt"

	"rpcvalet/internal/sim"
)

// Phase identifies a lifecycle milestone.
type Phase uint8

// The milestones of one RPC through the server, in causal order.
const (
	// PhaseArrive: the message's last packet was written and the NI
	// considers it received (the latency clock starts here).
	PhaseArrive Phase = iota
	// PhaseDispatch: the NI dispatcher assigned the message to a core.
	PhaseDispatch
	// PhaseStart: the core began executing the handler.
	PhaseStart
	// PhaseComplete: the core posted the replenish (latency clock stops).
	PhaseComplete
)

// Cluster-hop milestones (multi-node runs). They precede PhaseArrive
// causally but carry larger constant values so the original four phases keep
// their historical encoding; use Rank for causal comparisons.
const (
	// PhaseBalancerRecv: the cluster balancer accepted the request — the
	// end-to-end latency clock of a cluster run starts here. In a two-tier
	// topology this is the *rack* balancer's ingress.
	PhaseBalancerRecv Phase = iota + 4
	// PhaseForward: the balancer picked a node and forwarded the request
	// onto the balancer→node hop.
	PhaseForward
)

// Global-tier milestones (two-tier topologies, Config.Racks > 0). They
// precede PhaseBalancerRecv causally; like the cluster-hop phases they carry
// fresh constant values so every earlier encoding is untouched.
const (
	// PhaseGlobalRecv: the global (datacenter) balancer accepted the
	// request — the end-to-end latency clock of a hierarchical run starts
	// here.
	PhaseGlobalRecv Phase = iota + 6
	// PhaseGlobalForward: the global balancer picked a rack and forwarded
	// the request onto the global→rack hop. Event.Node carries the rack
	// index, Event.Depth the global tier's view of that rack.
	PhaseGlobalForward
)

func (p Phase) String() string {
	switch p {
	case PhaseArrive:
		return "arrive"
	case PhaseDispatch:
		return "dispatch"
	case PhaseStart:
		return "start"
	case PhaseComplete:
		return "complete"
	case PhaseBalancerRecv:
		return "balancer-recv"
	case PhaseForward:
		return "forward"
	case PhaseGlobalRecv:
		return "global-recv"
	case PhaseGlobalForward:
		return "global-forward"
	default:
		return fmt.Sprintf("phase(%d)", uint8(p))
	}
}

// Rank orders phases causally: global-recv < global-forward < balancer-recv <
// forward < arrive < dispatch < start < complete. Unknown phases rank last.
func (p Phase) Rank() int {
	switch p {
	case PhaseGlobalRecv:
		return 0
	case PhaseGlobalForward:
		return 1
	case PhaseBalancerRecv:
		return 2
	case PhaseForward:
		return 3
	case PhaseArrive:
		return 4
	case PhaseDispatch:
		return 5
	case PhaseStart:
		return 6
	case PhaseComplete:
		return 7
	default:
		return 8
	}
}

// Event is one recorded milestone.
type Event struct {
	ReqID uint64
	Phase Phase
	At    sim.Time
	Core  int // serving core/worker, -1 when not yet assigned
	// Node attributes the event to a cluster node; single-machine runs
	// leave it 0, the balancer's own events carry -1.
	Node int
	// Depth is the queue-depth signal observed with the event (outstanding
	// requests at arrival, the balancer's view at forward); -1 = untracked.
	Depth int
}

func (e Event) String() string {
	s := fmt.Sprintf("req %d %s @%v core=%d", e.ReqID, e.Phase, e.At, e.Core)
	if e.Depth >= 0 {
		s += fmt.Sprintf(" depth=%d", e.Depth)
	}
	return s
}

// Recorder consumes lifecycle events. Implementations must be cheap: the
// machine invokes them inline on the simulation's hot path.
type Recorder interface {
	Record(Event)
}

// Buffer is a bounded ring Recorder keeping the most recent events. The zero
// value is unusable; create it with NewBuffer.
type Buffer struct {
	events  []Event
	next    int
	wrapped bool
	total   uint64
}

// NewBuffer returns a ring buffer holding up to capacity events. It panics
// on a non-positive capacity.
func NewBuffer(capacity int) *Buffer {
	if capacity <= 0 {
		panic("trace: buffer capacity must be positive")
	}
	return &Buffer{events: make([]Event, 0, capacity)}
}

// Record implements Recorder.
func (b *Buffer) Record(e Event) {
	b.total++
	if len(b.events) < cap(b.events) {
		b.events = append(b.events, e)
		return
	}
	b.events[b.next] = e
	b.next = (b.next + 1) % cap(b.events)
	b.wrapped = true
}

// Total reports how many events were recorded over the buffer's lifetime,
// including ones evicted by wraparound.
func (b *Buffer) Total() uint64 { return b.total }

// Events returns the retained events in recording order.
func (b *Buffer) Events() []Event {
	if !b.wrapped {
		return append([]Event(nil), b.events...)
	}
	out := make([]Event, 0, len(b.events))
	out = append(out, b.events[b.next:]...)
	out = append(out, b.events[:b.next]...)
	return out
}

// ByRequest groups the retained events by request ID, each group in
// recording order.
func (b *Buffer) ByRequest() map[uint64][]Event {
	m := make(map[uint64][]Event)
	for _, e := range b.Events() {
		m[e.ReqID] = append(m[e.ReqID], e)
	}
	return m
}

// Func adapts a function to the Recorder interface.
type Func func(Event)

// Record implements Recorder.
func (f Func) Record(e Event) { f(e) }
