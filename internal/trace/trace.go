// Package trace records per-request lifecycle events from the machine model:
// when a message was fully received by the NI, when the dispatcher assigned
// it to a core, when the core's handler started, and when the replenish was
// posted. It exists for observability — debugging dispatch behaviour, and
// letting downstream users audit exactly where a tail request spent its time
// — and for the test suite, which uses it to assert causal ordering through
// the pipeline.
package trace

import (
	"fmt"

	"rpcvalet/internal/sim"
)

// Phase identifies a lifecycle milestone.
type Phase uint8

// The milestones of one RPC through the server, in causal order.
const (
	// PhaseArrive: the message's last packet was written and the NI
	// considers it received (the latency clock starts here).
	PhaseArrive Phase = iota
	// PhaseDispatch: the NI dispatcher assigned the message to a core.
	PhaseDispatch
	// PhaseStart: the core began executing the handler.
	PhaseStart
	// PhaseComplete: the core posted the replenish (latency clock stops).
	PhaseComplete
)

func (p Phase) String() string {
	switch p {
	case PhaseArrive:
		return "arrive"
	case PhaseDispatch:
		return "dispatch"
	case PhaseStart:
		return "start"
	case PhaseComplete:
		return "complete"
	default:
		return fmt.Sprintf("phase(%d)", uint8(p))
	}
}

// Event is one recorded milestone.
type Event struct {
	ReqID uint64
	Phase Phase
	At    sim.Time
	Core  int // serving core, -1 when not yet assigned
}

func (e Event) String() string {
	return fmt.Sprintf("req %d %s @%v core=%d", e.ReqID, e.Phase, e.At, e.Core)
}

// Recorder consumes lifecycle events. Implementations must be cheap: the
// machine invokes them inline on the simulation's hot path.
type Recorder interface {
	Record(Event)
}

// Buffer is a bounded ring Recorder keeping the most recent events. The zero
// value is unusable; create it with NewBuffer.
type Buffer struct {
	events  []Event
	next    int
	wrapped bool
	total   uint64
}

// NewBuffer returns a ring buffer holding up to capacity events. It panics
// on a non-positive capacity.
func NewBuffer(capacity int) *Buffer {
	if capacity <= 0 {
		panic("trace: buffer capacity must be positive")
	}
	return &Buffer{events: make([]Event, 0, capacity)}
}

// Record implements Recorder.
func (b *Buffer) Record(e Event) {
	b.total++
	if len(b.events) < cap(b.events) {
		b.events = append(b.events, e)
		return
	}
	b.events[b.next] = e
	b.next = (b.next + 1) % cap(b.events)
	b.wrapped = true
}

// Total reports how many events were recorded over the buffer's lifetime,
// including ones evicted by wraparound.
func (b *Buffer) Total() uint64 { return b.total }

// Events returns the retained events in recording order.
func (b *Buffer) Events() []Event {
	if !b.wrapped {
		return append([]Event(nil), b.events...)
	}
	out := make([]Event, 0, len(b.events))
	out = append(out, b.events[b.next:]...)
	out = append(out, b.events[:b.next]...)
	return out
}

// ByRequest groups the retained events by request ID, each group in
// recording order.
func (b *Buffer) ByRequest() map[uint64][]Event {
	m := make(map[uint64][]Event)
	for _, e := range b.Events() {
		m[e.ReqID] = append(m[e.ReqID], e)
	}
	return m
}

// Func adapts a function to the Recorder interface.
type Func func(Event)

// Record implements Recorder.
func (f Func) Record(e Event) { f(e) }
