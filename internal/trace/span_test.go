package trace

import (
	"testing"

	"rpcvalet/internal/sim"
)

// events builds a full single-machine lifecycle for one request.
func machineLifecycle(id uint64, arrive, dispatch, start, complete int64, core, depth int) []Event {
	return []Event{
		{ReqID: id, Phase: PhaseArrive, At: sim.Time(arrive), Core: -1, Depth: depth},
		{ReqID: id, Phase: PhaseDispatch, At: sim.Time(dispatch), Core: core, Depth: -1},
		{ReqID: id, Phase: PhaseStart, At: sim.Time(start), Core: core, Depth: -1},
		{ReqID: id, Phase: PhaseComplete, At: sim.Time(complete), Core: core, Depth: -1},
	}
}

func TestSpanAssembly(t *testing.T) {
	evs := machineLifecycle(7, 100, 150, 400, 900, 3, 5)
	spans := Spans(evs)
	if len(spans) != 1 {
		t.Fatalf("spans = %d, want 1", len(spans))
	}
	s := spans[0]
	if !s.Completed() {
		t.Fatal("span not completed")
	}
	if s.ReqID != 7 || s.Core != 3 || s.DepthAtArrival != 5 {
		t.Fatalf("attribution wrong: %+v", s)
	}
	if got := s.TotalNs(); got != sim.Time(900).Sub(sim.Time(100)).Nanos() {
		t.Fatalf("total = %v", got)
	}
	if s.QueueWaitNs() != sim.Time(400).Sub(sim.Time(100)).Nanos() {
		t.Fatalf("wait = %v", s.QueueWaitNs())
	}
	if s.ServiceNs() != sim.Time(900).Sub(sim.Time(400)).Nanos() {
		t.Fatalf("service = %v", s.ServiceNs())
	}
	if s.HopNs() != 0 {
		t.Fatalf("single-machine hop = %v, want 0", s.HopNs())
	}
	ws := s.WaitShare()
	if ws <= 0 || ws >= 1 {
		t.Fatalf("wait share = %v", ws)
	}
}

func TestSpanClusterHops(t *testing.T) {
	evs := []Event{
		{ReqID: 1, Phase: PhaseBalancerRecv, At: sim.Time(10), Core: -1, Node: -1, Depth: 4},
		{ReqID: 1, Phase: PhaseForward, At: sim.Time(20), Core: -1, Node: 2, Depth: 1},
		{ReqID: 1, Phase: PhaseArrive, At: sim.Time(50), Core: -1, Node: 2, Depth: 0},
		{ReqID: 1, Phase: PhaseDispatch, At: sim.Time(60), Core: 0, Node: 2, Depth: -1},
		{ReqID: 1, Phase: PhaseStart, At: sim.Time(70), Core: 0, Node: 2, Depth: -1},
		{ReqID: 1, Phase: PhaseComplete, At: sim.Time(170), Core: 0, Node: 2, Depth: -1},
	}
	s := Spans(evs)[0]
	if s.Node != 2 || s.DepthAtForward != 1 || s.DepthAtArrival != 0 {
		t.Fatalf("cluster attribution wrong: %+v", s)
	}
	if s.Begin() != sim.Time(10) {
		t.Fatalf("begin = %v, want balancer recv", s.Begin())
	}
	if s.TotalNs() != sim.Time(170).Sub(sim.Time(10)).Nanos() {
		t.Fatalf("total = %v", s.TotalNs())
	}
	if s.HopNs() != sim.Time(50).Sub(sim.Time(20)).Nanos() {
		t.Fatalf("hop = %v", s.HopNs())
	}
}

func TestSpanUnsetFields(t *testing.T) {
	s := newSpan(1)
	if s.TotalNs() != 0 || s.QueueWaitNs() != 0 || s.ServiceNs() != 0 || s.WaitShare() != 0 {
		t.Fatal("empty span should measure zero everywhere")
	}
	if s.Completed() {
		t.Fatal("empty span reports completed")
	}
	if s.String() == "" {
		t.Fatal("empty span string")
	}
}

func TestPhaseRankCausalOrder(t *testing.T) {
	order := []Phase{PhaseGlobalRecv, PhaseGlobalForward, PhaseBalancerRecv, PhaseForward,
		PhaseArrive, PhaseDispatch, PhaseStart, PhaseComplete}
	for i := 1; i < len(order); i++ {
		if order[i-1].Rank() >= order[i].Rank() {
			t.Fatalf("%v rank %d not before %v rank %d",
				order[i-1], order[i-1].Rank(), order[i], order[i].Rank())
		}
	}
	if Phase(42).Rank() <= PhaseComplete.Rank() {
		t.Fatal("unknown phase must rank last")
	}
}

func TestNewPhaseStrings(t *testing.T) {
	if PhaseBalancerRecv.String() != "balancer-recv" || PhaseForward.String() != "forward" {
		t.Fatalf("hop phase strings: %q %q", PhaseBalancerRecv, PhaseForward)
	}
	if PhaseGlobalRecv.String() != "global-recv" || PhaseGlobalForward.String() != "global-forward" {
		t.Fatalf("global phase strings: %q %q", PhaseGlobalRecv, PhaseGlobalForward)
	}
}

func TestSpanGlobalHops(t *testing.T) {
	evs := []Event{
		{ReqID: 3, Phase: PhaseGlobalRecv, At: sim.Time(5), Core: -1, Node: -1, Depth: 9},
		{ReqID: 3, Phase: PhaseGlobalForward, At: sim.Time(5), Core: -1, Node: 1, Depth: 6},
		{ReqID: 3, Phase: PhaseBalancerRecv, At: sim.Time(30), Core: -1, Node: -1, Depth: 4},
		{ReqID: 3, Phase: PhaseForward, At: sim.Time(30), Core: -1, Node: 7, Depth: 1},
		{ReqID: 3, Phase: PhaseArrive, At: sim.Time(55), Core: -1, Node: 7, Depth: 0},
		{ReqID: 3, Phase: PhaseDispatch, At: sim.Time(60), Core: 2, Node: 7, Depth: -1},
		{ReqID: 3, Phase: PhaseStart, At: sim.Time(70), Core: 2, Node: 7, Depth: -1},
		{ReqID: 3, Phase: PhaseComplete, At: sim.Time(170), Core: 2, Node: 7, Depth: -1},
	}
	s := Spans(evs)[0]
	if s.Rack != 1 || s.Node != 7 || s.DepthAtGlobalForward != 6 {
		t.Fatalf("global attribution wrong: %+v", s)
	}
	if s.Begin() != sim.Time(5) {
		t.Fatalf("begin = %v, want global recv", s.Begin())
	}
	if s.TotalNs() != sim.Time(170).Sub(sim.Time(5)).Nanos() {
		t.Fatalf("total = %v", s.TotalNs())
	}
	if s.GlobalHopNs() != sim.Time(30).Sub(sim.Time(5)).Nanos() {
		t.Fatalf("global hop = %v", s.GlobalHopNs())
	}
	if s.HopNs() != sim.Time(55).Sub(sim.Time(30)).Nanos() {
		t.Fatalf("rack hop = %v", s.HopNs())
	}
	// The legs telescope: global hop + rack hop + wait + service spans the
	// whole latency (forward decisions are instantaneous in both tiers).
	sum := s.GlobalHopNs() + s.HopNs() + s.QueueWaitNs() + s.ServiceNs()
	if sum != s.TotalNs() {
		t.Fatalf("legs %v do not telescope to total %v", sum, s.TotalNs())
	}
	// A flat-cluster span must keep its off-hierarchy sentinels.
	flat := Spans(evs[2:])[0]
	if flat.Rack != -1 || flat.GlobalRecv != Unset || flat.GlobalHopNs() != 0 {
		t.Fatalf("flat span leaked hierarchy fields: %+v", flat)
	}
}

func TestTailSamplerKeepsSlowest(t *testing.T) {
	ts := NewTailSampler(3)
	// 10 requests with totals 100, 200, ..., 1000 ns (in ps units via sim.FromNanos).
	for i := 0; i < 10; i++ {
		total := int64(sim.FromNanos(float64((i + 1) * 100)))
		for _, e := range machineLifecycle(uint64(i), 0, total/4, total/2, total, i%4, i) {
			ts.Record(e)
		}
	}
	if ts.Completed() != 10 {
		t.Fatalf("completed = %d", ts.Completed())
	}
	spans := ts.Spans()
	if len(spans) != 3 {
		t.Fatalf("tail size = %d", len(spans))
	}
	for i, wantID := range []uint64{9, 8, 7} {
		if spans[i].ReqID != wantID {
			t.Fatalf("tail order: got %v", spans)
		}
	}
	if spans[0].TotalNs() < spans[1].TotalNs() || spans[1].TotalNs() < spans[2].TotalNs() {
		t.Fatal("tail not slowest-first")
	}
}

func TestTailSamplerDeterministicTies(t *testing.T) {
	run := func() []uint64 {
		ts := NewTailSampler(2)
		for i := 0; i < 6; i++ {
			for _, e := range machineLifecycle(uint64(i), 0, 10, 20, 1000, 0, 0) {
				ts.Record(e)
			}
		}
		var ids []uint64
		for _, s := range ts.Spans() {
			ids = append(ids, s.ReqID)
		}
		return ids
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("tie-break nondeterministic: %v vs %v", a, b)
		}
	}
	// All totals equal: lowest request IDs survive (later equal spans never
	// displace the retained ones), slowest-first sort then orders by ID.
	if a[0] != 0 || a[1] != 1 {
		t.Fatalf("tie retention: %v", a)
	}
}

func TestTailSamplerPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTailSampler(0) did not panic")
		}
	}()
	NewTailSampler(0)
}

func TestCollectorKeepsAll(t *testing.T) {
	c := NewCollector()
	for i := 0; i < 5; i++ {
		for _, e := range machineLifecycle(uint64(i), int64(i)*10, int64(i)*10+1, int64(i)*10+2, int64(i)*10+9, 0, 0) {
			c.Record(e)
		}
	}
	spans := c.Spans()
	if len(spans) != 5 {
		t.Fatalf("collected = %d", len(spans))
	}
	for i, s := range spans {
		if s.ReqID != uint64(i) || !s.Completed() {
			t.Fatalf("completion order broken: %v", spans)
		}
	}
}

func TestTeeFansOut(t *testing.T) {
	b1, b2 := NewBuffer(4), NewBuffer(4)
	r := Tee(b1, nil, b2)
	r.Record(Event{ReqID: 1, Phase: PhaseArrive})
	if b1.Total() != 1 || b2.Total() != 1 {
		t.Fatalf("tee totals: %d %d", b1.Total(), b2.Total())
	}
}

func TestSortSlowestFirstTieBreak(t *testing.T) {
	spans := []Span{
		{ReqID: 5, Arrive: 0, Complete: 100},
		{ReqID: 2, Arrive: 0, Complete: 100},
		{ReqID: 9, Arrive: 0, Complete: 200},
	}
	SortSlowestFirst(spans)
	if spans[0].ReqID != 9 || spans[1].ReqID != 2 || spans[2].ReqID != 5 {
		t.Fatalf("sort order: %v", spans)
	}
}
