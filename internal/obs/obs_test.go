package obs

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"rpcvalet/internal/sim"
	"rpcvalet/internal/trace"
)

func expose(t *testing.T, r *Registry) string {
	t.Helper()
	var b bytes.Buffer
	if err := r.Expose(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "A test counter.", nil)
	c.Inc()
	c.Add(4)
	g := r.Gauge("test_gauge", "A test gauge.", Labels{"plan": "jbsq2"})
	g.Set(2.5)
	g.Add(-0.5)

	out := expose(t, r)
	for _, want := range []string{
		"# HELP test_total A test counter.",
		"# TYPE test_total counter",
		"test_total 5",
		"# TYPE test_gauge gauge",
		`test_gauge{plan="jbsq2"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestSameNameSameInstrument(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c_total", "", Labels{"k": "v"})
	b := r.Counter("c_total", "", Labels{"k": "v"})
	if a != b {
		t.Fatal("same (name, labels) returned distinct counters")
	}
	other := r.Counter("c_total", "", Labels{"k": "w"})
	if a == other {
		t.Fatal("different labels shared an instrument")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("m", "", nil)
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "Latency.", []float64{0.001, 0.01, 0.1}, nil)
	for _, v := range []float64{0.0005, 0.002, 0.02, 0.02, 5} {
		h.Observe(v)
	}
	out := expose(t, r)
	for _, want := range []string{
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.001"} 1`,
		`lat_seconds_bucket{le="0.01"} 2`,
		`lat_seconds_bucket{le="0.1"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		"lat_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if got, want := h.Sum(), 0.0005+0.002+0.02+0.02+5; got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
}

// TestHistogramBoundaryInclusive: observations exactly on a bound land in
// that bucket (le semantics).
func TestHistogramBoundaryInclusive(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("b_seconds", "", []float64{1, 2}, nil)
	h.Observe(1)
	out := expose(t, r)
	if !strings.Contains(out, `b_seconds_bucket{le="1"} 1`) {
		t.Fatalf("boundary observation not in its le bucket:\n%s", out)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "", Labels{"path": `a"b\c`})
	out := expose(t, r)
	if !strings.Contains(out, `esc_total{path="a\"b\\c"} 0`) {
		t.Fatalf("label escaping wrong:\n%s", out)
	}
}

func TestConcurrentInstrumentUpdates(t *testing.T) {
	r := NewRegistry()
	m := NewRunMetrics(r, nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.OnOffered()
				m.OnCompleted(1e4, 1e3)
			}
		}()
	}
	wg.Wait()
	if m.Offered.Value() != 8000 || m.Completed.Value() != 8000 {
		t.Fatalf("offered=%d completed=%d", m.Offered.Value(), m.Completed.Value())
	}
	if m.Inflight.Value() != 0 {
		t.Fatalf("inflight = %v, want 0", m.Inflight.Value())
	}
	if m.Latency.Count() != 8000 {
		t.Fatalf("latency count = %d", m.Latency.Count())
	}
}

func TestExponentialBuckets(t *testing.T) {
	b := ExponentialBuckets(1, 10, 3)
	want := []float64{1, 10, 100}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("buckets = %v", b)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad bucket spec did not panic")
		}
	}()
	ExponentialBuckets(0, 2, 3)
}

// validateExposition walks the full output and asserts every non-comment
// line parses as `name{labels} value` with a numeric value — the shape a
// Prometheus scraper requires.
func validateExposition(t *testing.T, out string) {
	t.Helper()
	sc := bufio.NewScanner(strings.NewReader(out))
	lines := 0
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		lines++
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("bad sample line %q", line)
		}
		var v float64
		if _, err := fmt.Sscanf(fields[1], "%g", &v); err != nil && fields[1] != "+Inf" {
			t.Fatalf("non-numeric sample %q", line)
		}
	}
	if lines == 0 {
		t.Fatal("no sample lines")
	}
}

func TestServerEndpoints(t *testing.T) {
	r := NewRegistry()
	m := NewRunMetrics(r, Labels{"plan": "shared"})
	m.OnOffered()
	m.OnCompleted(5e4, 1e4)

	healthy := true
	srv, err := Serve("127.0.0.1:0", r, func() error {
		if !healthy {
			return errors.New("draining")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	get := func(path string) (int, string) {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.Contains(body, `rpcvalet_requests_completed_total{plan="shared"} 1`) {
		t.Fatalf("/metrics missing completed counter:\n%s", body)
	}
	validateExposition(t, body)

	code, body = get("/healthz")
	if code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	healthy = false
	if code, _ = get("/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("unhealthy /healthz status %d", code)
	}

	if code, _ = get("/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", code)
	}
	if code, _ = get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline status %d", code)
	}
}

func TestWriteSpansJSONL(t *testing.T) {
	spans := []trace.Span{
		{
			ReqID: 3, Node: 1, Core: 2, DepthAtArrival: 4, DepthAtForward: 1,
			BalancerRecv: sim.Time(0), Forward: sim.Time(sim.Nanosecond),
			Arrive:   sim.Time(3 * sim.Nanosecond),
			Dispatch: sim.Time(4 * sim.Nanosecond),
			Start:    sim.Time(6 * sim.Nanosecond),
			Complete: sim.Time(10 * sim.Nanosecond),
		},
		{ReqID: 9, Node: 0, Core: -1, DepthAtArrival: -1, DepthAtForward: -1,
			BalancerRecv: trace.Unset, Forward: trace.Unset,
			Arrive: sim.Time(0), Dispatch: trace.Unset,
			Start: sim.Time(sim.Nanosecond), Complete: sim.Time(2 * sim.Nanosecond)},
	}
	var b bytes.Buffer
	if err := WriteSpansJSONL(&b, spans); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.Contains(lines[0], `"req":3`) || !strings.Contains(lines[0], `"hop_ns":2`) {
		t.Fatalf("first line wrong: %s", lines[0])
	}
	if !strings.Contains(lines[1], `"balancer_recv_ns":-1`) || !strings.Contains(lines[1], `"dispatch_ns":-1`) {
		t.Fatalf("unset legs not -1: %s", lines[1])
	}
	if !strings.Contains(lines[1], `"total_ns":2`) {
		t.Fatalf("single-machine total wrong: %s", lines[1])
	}
}
