package obs

// RunMetrics bundles the instruments one serving run updates — the standard
// request-lifecycle set the live runtime publishes while a run is in flight.
// Every field is non-nil after NewRunMetrics; updates are atomic and safe
// from the generator and every worker concurrently.
type RunMetrics struct {
	// Offered counts every arrival the open-loop generator released.
	Offered *Counter
	// Completed counts finished requests.
	Completed *Counter
	// Dropped counts arrivals shed at the queue cap.
	Dropped *Counter
	// Inflight tracks offered-minus-finished (completed or dropped).
	Inflight *Gauge
	// Latency observes end-to-end request latency, seconds.
	Latency *Histogram
	// Wait observes scheduled-arrival → service-start delay, seconds.
	Wait *Histogram
}

// NewRunMetrics registers the run instrument set under the rpcvalet_*
// namespace, every series carrying the given labels (e.g. plan="jbsq2").
func NewRunMetrics(reg *Registry, labels Labels) *RunMetrics {
	return &RunMetrics{
		Offered: reg.Counter("rpcvalet_requests_offered_total",
			"Arrivals released by the open-loop generator.", labels),
		Completed: reg.Counter("rpcvalet_requests_completed_total",
			"Requests served to completion.", labels),
		Dropped: reg.Counter("rpcvalet_requests_dropped_total",
			"Arrivals shed at the queue cap.", labels),
		Inflight: reg.Gauge("rpcvalet_inflight_requests",
			"Requests offered and not yet finished.", labels),
		Latency: reg.Histogram("rpcvalet_request_latency_seconds",
			"End-to-end request latency.", DefLatencyBuckets, labels),
		Wait: reg.Histogram("rpcvalet_request_wait_seconds",
			"Scheduled arrival to service start.", DefLatencyBuckets, labels),
	}
}

// OnOffered records one generator release.
func (m *RunMetrics) OnOffered() {
	m.Offered.Inc()
	m.Inflight.Add(1)
}

// OnDropped records one arrival shed at the queue cap.
func (m *RunMetrics) OnDropped() {
	m.Dropped.Inc()
	m.Inflight.Add(-1)
}

// OnCompleted records one finished request with its measured latency and
// pre-service wait, both in nanoseconds (converted to the histograms'
// seconds).
func (m *RunMetrics) OnCompleted(latNs, waitNs float64) {
	m.Completed.Inc()
	m.Inflight.Add(-1)
	m.Latency.Observe(latNs / 1e9)
	m.Wait.Observe(waitNs / 1e9)
}
