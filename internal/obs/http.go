package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// NewMux assembles the observability endpoints on a fresh ServeMux:
//
//   - /metrics — the registry, Prometheus text exposition format
//   - /healthz — 200 "ok" while healthz returns nil, 503 with the error
//     otherwise (nil healthz means always healthy)
//   - /debug/pprof/... — the standard Go profiler handlers, wired
//     explicitly so the mux works without the default-mux side effects
func NewMux(reg *Registry, healthz func() error) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		if healthz != nil {
			if err := healthz(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running observability endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve binds addr (":9090", "127.0.0.1:0", ...) and serves the
// observability mux in a background goroutine. The bind happens
// synchronously so address errors surface here, not in a log line from the
// goroutine.
func Serve(addr string, reg *Registry, healthz func() error) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: %w", err)
	}
	srv := &http.Server{Handler: NewMux(reg, healthz), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &Server{ln: ln, srv: srv}, nil
}

// Addr reports the bound address — useful with ":0" in tests.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and releases the listener.
func (s *Server) Close() error { return s.srv.Close() }
