// Package obs is the repository's observability surface: a dependency-free
// Prometheus-style metrics registry (counters, gauges, latency histograms)
// with text-format exposition, an HTTP server bundling /metrics, /healthz,
// and /debug/pprof, and JSONL span export for offline trace analysis.
//
// It exists so the live runtime (internal/live, cmd/rpcvalet-live -obs) can
// be watched while a run is in flight with stock Prometheus tooling — the
// metrics/health substrate the ROADMAP's networked gateway mounts directly.
// Instruments are safe for concurrent use and updates are a handful of
// atomic operations, cheap enough for the serving path.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels attaches dimensions to an instrument. Instruments with the same
// name and different labels coexist as one exposition family.
type Labels map[string]string

// render produces the canonical sorted {k="v",...} form, or "" for no labels.
func (l Labels) render() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel applies the exposition format's label-value escaping.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can move in both directions.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add moves the gauge by delta (CAS loop; safe under concurrency).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value reads the gauge.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into cumulative le-buckets, exactly the
// Prometheus histogram type: bucket counts, a +Inf catch-all, _sum and
// _count. Observe is lock-free.
type Histogram struct {
	bounds  []float64 // ascending upper bounds, +Inf excluded
	counts  []atomic.Uint64
	inf     atomic.Uint64
	sumBits atomic.Uint64
	count   atomic.Uint64
}

func newHistogram(buckets []float64) *Histogram {
	bounds := append([]float64(nil), buckets...)
	sort.Float64s(bounds)
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds))}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	idx := sort.SearchFloat64s(h.bounds, v)
	if idx < len(h.bounds) {
		h.counts[idx].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count reports the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum reports the running sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// ExponentialBuckets returns n upper bounds starting at start and growing by
// factor — the standard latency-bucket ladder.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n <= 0 {
		panic("obs: ExponentialBuckets wants start>0, factor>1, n>0")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// DefLatencyBuckets spans 1 µs to ~8 s in doublings — wide enough for both
// spin-mode (~10 µs) and sleep-mode (~300 µs) live service times and their
// overload tails. Values are seconds, the Prometheus convention.
var DefLatencyBuckets = ExponentialBuckets(1e-6, 2, 23)

// instKind discriminates what a family holds.
type instKind int

const (
	kindCounter instKind = iota
	kindGauge
	kindHistogram
)

func (k instKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labeled instrument inside a family.
type series struct {
	labels string // canonical rendered form, registration order key
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups every series sharing one metric name.
type family struct {
	name   string
	help   string
	kind   instKind
	series []*series
	byKey  map[string]*series
}

// Registry holds instrument families and renders them in the Prometheus text
// exposition format. Get-or-create lookups are mutex-guarded (registration
// is rare); instrument updates are lock-free.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// lookup finds or creates the (family, series) pair, enforcing that a name
// keeps one kind and one help string for its lifetime.
func (r *Registry) lookup(name, help string, kind instKind, labels Labels) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, byKey: make(map[string]*series)}
		r.byName[name] = f
		r.families = append(r.families, f)
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: %s registered as %v, requested as %v", name, f.kind, kind))
	}
	key := labels.render()
	s := f.byKey[key]
	if s == nil {
		s = &series{labels: key}
		f.byKey[key] = s
		f.series = append(f.series, s)
	}
	return s
}

// Counter returns the counter for (name, labels), creating it on first use.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	s := r.lookup(name, help, kindCounter, labels)
	if s.c == nil {
		s.c = &Counter{}
	}
	return s.c
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	s := r.lookup(name, help, kindGauge, labels)
	if s.g == nil {
		s.g = &Gauge{}
	}
	return s.g
}

// Histogram returns the histogram for (name, labels), creating it with the
// given bucket bounds on first use (later calls reuse the existing buckets).
func (r *Registry) Histogram(name, help string, buckets []float64, labels Labels) *Histogram {
	s := r.lookup(name, help, kindHistogram, labels)
	if s.h == nil {
		s.h = newHistogram(buckets)
	}
	return s.h
}

// fnum renders a float the way the exposition format expects.
func fnum(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// mergeLabels splices an extra label (le=...) into a rendered label set.
func mergeLabels(rendered, extra string) string {
	if rendered == "" {
		return "{" + extra + "}"
	}
	return rendered[:len(rendered)-1] + "," + extra + "}"
}

// Expose writes every family in the Prometheus text exposition format
// (text/plain; version=0.0.4): # HELP and # TYPE headers, then one line per
// sample, histograms as cumulative le-buckets plus _sum and _count.
func (r *Registry) Expose(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, f := range r.families {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, s := range f.series {
			var err error
			switch f.kind {
			case kindCounter:
				_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, s.labels, s.c.Value())
			case kindGauge:
				_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, fnum(s.g.Value()))
			case kindHistogram:
				err = exposeHistogram(w, f.name, s)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

func exposeHistogram(w io.Writer, name string, s *series) error {
	h := s.h
	cum := uint64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		le := mergeLabels(s.labels, `le="`+fnum(bound)+`"`)
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, le, cum); err != nil {
			return err
		}
	}
	cum += h.inf.Load()
	le := mergeLabels(s.labels, `le="+Inf"`)
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, le, cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, s.labels, fnum(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, s.labels, h.Count())
	return err
}

// Handler serves the registry as a /metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.Expose(w)
	})
}
