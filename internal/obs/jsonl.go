package obs

import (
	"encoding/json"
	"io"

	"rpcvalet/internal/sim"
	"rpcvalet/internal/trace"
)

// spanJSON is the export schema: one request per line, every leg in
// nanoseconds, -1 marking legs the span never observed. Field names are
// stable — offline tooling keys on them.
type spanJSON struct {
	Req             uint64  `json:"req"`
	Rack            int     `json:"rack"`
	Node            int     `json:"node"`
	Core            int     `json:"core"`
	DepthAtArrival  int     `json:"depth_at_arrival"`
	DepthAtForward  int     `json:"depth_at_forward"`
	DepthAtGForward int     `json:"depth_at_global_forward"`
	GlobalRecvNs    float64 `json:"global_recv_ns"`
	GlobalForwardNs float64 `json:"global_forward_ns"`
	BalancerRecvNs  float64 `json:"balancer_recv_ns"`
	ForwardNs       float64 `json:"forward_ns"`
	ArriveNs        float64 `json:"arrive_ns"`
	DispatchNs      float64 `json:"dispatch_ns"`
	StartNs         float64 `json:"start_ns"`
	CompleteNs      float64 `json:"complete_ns"`
	GlobalHopNs     float64 `json:"global_hop_ns"`
	HopNs           float64 `json:"hop_ns"`
	WaitNs          float64 `json:"wait_ns"`
	ServiceNs       float64 `json:"service_ns"`
	TotalNs         float64 `json:"total_ns"`
}

// tsNs renders one span timestamp: nanoseconds since virtual time zero, or
// -1 when the phase was never observed.
func tsNs(t sim.Time) float64 {
	if t == trace.Unset {
		return -1
	}
	return t.Nanos()
}

// WriteSpansJSONL writes one JSON object per span — the trace-export format
// behind the CLIs' -trace-jsonl flags.
func WriteSpansJSONL(w io.Writer, spans []trace.Span) error {
	enc := json.NewEncoder(w)
	for _, s := range spans {
		j := spanJSON{
			Req:             s.ReqID,
			Rack:            s.Rack,
			Node:            s.Node,
			Core:            s.Core,
			DepthAtArrival:  s.DepthAtArrival,
			DepthAtForward:  s.DepthAtForward,
			DepthAtGForward: s.DepthAtGlobalForward,
			GlobalRecvNs:    tsNs(s.GlobalRecv),
			GlobalForwardNs: tsNs(s.GlobalForward),
			BalancerRecvNs:  tsNs(s.BalancerRecv),
			ForwardNs:       tsNs(s.Forward),
			ArriveNs:        tsNs(s.Arrive),
			DispatchNs:      tsNs(s.Dispatch),
			StartNs:         tsNs(s.Start),
			CompleteNs:      tsNs(s.Complete),
			GlobalHopNs:     s.GlobalHopNs(),
			HopNs:           s.HopNs(),
			WaitNs:          s.QueueWaitNs(),
			ServiceNs:       s.ServiceNs(),
			TotalNs:         s.TotalNs(),
		}
		if err := enc.Encode(j); err != nil {
			return err
		}
	}
	return nil
}
