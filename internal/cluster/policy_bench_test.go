package cluster

import (
	"runtime"
	"testing"

	"rpcvalet/internal/rng"
)

// rackPolicies is the benchmark policy set at rack scale: the two O(1)-ish
// policies (random, rr), sampled JSQ(2), and the two whole-cluster policies
// (full-scan JSQ, bounded-load) whose decision cost is the point of the
// depth-index engine. Names are fixed strings, not Policy.String(), so the
// benchmark identity survives policy-labeling changes and benchdiff can
// compare snapshots across them.
func rackPolicies(nodes int) []struct {
	name string
	mk   func() Policy
} {
	return []struct {
		name string
		mk   func() Policy
	}{
		{"random", func() Policy { return Random{} }},
		{"rr", func() Policy { return &RoundRobin{} }},
		{"jsq2", func() Policy { return JSQ{D: 2} }},
		{"jsqfull", func() Policy { return JSQ{D: FullScan} }},
		{"bounded", func() Policy { return &BoundedLoad{Factor: 1.25} }},
	}
}

// BenchmarkPolicyPick measures the balancer's per-RPC decision cost alone,
// at the ROADMAP's 1000-node rack target: one Pick plus the index updates a
// dispatch and a completion cost on the live view. The churn keeps ~4
// outstanding RPCs per node — a realistic mid-load depth distribution shaped
// by the policy itself (each pick's node is dispatched; the pick from 4N
// iterations ago completes). ns/op therefore reads as ns per balancer
// decision at steady state.
func BenchmarkPolicyPick(b *testing.B) {
	const nodes = 1000
	for _, pc := range rackPolicies(nodes) {
		b.Run("policy="+pc.name+"/nodes=1000", func(b *testing.B) {
			v := newView(nodes, true)
			r := rng.New(1)
			pol := pc.mk()
			ring := make([]int, 4*nodes)
			for i := range ring {
				c := pol.Pick(v, r)
				v.dispatched(c)
				ring[i] = c
			}
			pos := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c := pol.Pick(v, r)
				v.dispatched(c)
				v.completed(ring[pos])
				ring[pos] = c
				pos++
				if pos == len(ring) {
					pos = 0
				}
			}
		})
	}
}

// BenchmarkClusterRack is the end-to-end 1000-node steady-state benchmark:
// one full cluster.Run per iteration on the serial engine, so sim_mrps reads
// the simulator's whole-rack throughput with the decision engine on the
// arrival path. jsq2 rides along as the control: its pick cost is O(1), so
// any movement there is simulator noise, while jsqfull and bounded isolate
// the O(N)-scan-versus-index difference.
func BenchmarkClusterRack(b *testing.B) {
	const nodes = 1000
	for _, pc := range rackPolicies(nodes) {
		switch pc.name {
		case "jsq2", "jsqfull", "bounded":
		default:
			continue
		}
		b.Run("policy="+pc.name+"/nodes=1000", func(b *testing.B) {
			cfg := baseConfig(nodes, pc.mk(), 0.8)
			cfg.Warmup = 2000
			cfg.Measure = 30000
			total := cfg.Warmup + cfg.Measure
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c := cfg
				c.Policy = cfg.Policy.Clone()
				res, err := Run(c)
				if err != nil {
					b.Fatal(err)
				}
				if res.Completed != total {
					b.Fatalf("completed %d of %d", res.Completed, total)
				}
			}
			b.ReportMetric(float64(total)*float64(b.N)/b.Elapsed().Seconds()/1e6, "sim_mrps")
			b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
		})
	}
}
