package cluster

import (
	"fmt"
	"reflect"
	"testing"

	"rpcvalet/internal/machine"
	"rpcvalet/internal/trace"
	"rpcvalet/internal/workload"
)

// shardGridCell is one (policy, plan, load) equivalence-test cell.
type shardGridCell struct {
	name string
	cfg  Config
}

// shardGrid is the cell set the equivalence property is checked over —
// every balancer policy, both a shared-CQ and a partitioned node plan,
// light and heavy load.
func shardGrid() []shardGridCell {
	var grid []shardGridCell
	for _, polName := range PolicyNames {
		for _, plan := range []struct {
			label string
			wl    workload.Profile
			plan  *machine.Plan
		}{
			{"1x16-exp", workload.SyntheticExp(), machine.PlanSingleQueue()},
			{"16x1-gev", workload.SyntheticGEV(), machine.PlanPartitioned()},
		} {
			for _, load := range []float64{0.4, 0.8} {
				pol, err := PolicyByName(polName)
				if err != nil {
					panic(err)
				}
				cfg := baseConfig(8, pol, load)
				cfg.Node.Workload = plan.wl
				cfg.Node.Params.Plan = plan.plan
				cfg.RateMRPS = load * float64(cfg.Nodes) * nodeCapacityMRPS(cfg.Node)
				cfg.Warmup = 200
				cfg.Measure = 2500
				grid = append(grid, shardGridCell{
					name: fmt.Sprintf("%s/%s/%.0f%%", polName, plan.label, 100*load),
					cfg:  cfg,
				})
			}
		}
	}
	return grid
}

// TestShardEquivalence is the shard-count property: Shards ∈ {0, 1} must be
// byte-identical to each other (both take the historical single-engine
// path), and Shards ∈ {2, 4, 8} must produce byte-identical Results to each
// other at a fixed seed — the sharded protocol's message merge order and
// round width are partition-independent. Serial and sharded are compared
// structurally (same completions per node) but not byte-wise: the sharded
// balancer learns of completions one hop later by design.
func TestShardEquivalence(t *testing.T) {
	for _, cell := range shardGrid() {
		cfg := cell.cfg
		t.Run(cell.name, func(t *testing.T) {
			t.Parallel()
			results := map[int]Result{}
			for _, shards := range []int{0, 1, 2, 4, 8} {
				c := cfg
				c.Shards = shards
				c.Policy = cfg.Policy.Clone()
				results[shards] = run(t, c)
			}
			if !reflect.DeepEqual(results[0], results[1]) {
				t.Error("Shards=1 differs from the zero-value default")
			}
			for _, shards := range []int{4, 8} {
				if !reflect.DeepEqual(results[2], results[shards]) {
					t.Errorf("Shards=%d result differs from Shards=2:\n  2: %v\n  %d: %v",
						shards, results[2], shards, results[shards])
				}
			}
			// Sharded runs must stay structurally faithful to the serial
			// simulation: same request count, plausible latency scale.
			serial, sharded := results[1], results[2]
			if sharded.Completed != serial.Completed {
				t.Errorf("sharded completed %d, serial %d", sharded.Completed, serial.Completed)
			}
			if sharded.Latency.P50 <= 0 || sharded.ThroughputMRPS <= 0 {
				t.Errorf("degenerate sharded result: %v", sharded)
			}
		})
	}
}

// TestShardedDeterminism: a fixed (seed, shards) pair reproduces the
// identical Result bytes across repeated runs, including timelines, traces,
// and tail spans.
func TestShardedDeterminism(t *testing.T) {
	cfg := baseConfig(8, JSQ{D: 2}, 0.7)
	cfg.Warmup = 200
	cfg.Measure = 4000
	cfg.Shards = 4
	cfg.TailSamples = 8
	cfg.SampleEvery = cfg.Hop // stale view exercises the snapshot loop too

	runTraced := func() (Result, []trace.Event) {
		c := cfg
		c.Policy = cfg.Policy.Clone()
		var events []trace.Event
		c.Trace = trace.Func(func(e trace.Event) { events = append(events, e) })
		return run(t, c), events
	}
	a, aev := runTraced()
	b, bev := runTraced()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same (seed, shards) diverged:\n%v\n%v", a, b)
	}
	if !reflect.DeepEqual(aev, bev) {
		t.Fatalf("trace streams diverged: %d vs %d events", len(aev), len(bev))
	}
	// Different seeds must still decorrelate.
	c := cfg
	c.Policy = cfg.Policy.Clone()
	c.Seed = 2
	if other := run(t, c); other.Latency == a.Latency {
		t.Fatal("different seeds produced identical sharded results")
	}
}

// TestShardedFeaturesThread: faults, heterogeneous plans, stale sampling,
// and MaxSimTime all flow through the sharded path.
func TestShardedFeaturesThread(t *testing.T) {
	cfg := baseConfig(6, &BoundedLoad{Factor: 1.25}, 0.6)
	cfg.Warmup = 100
	cfg.Measure = 2000
	cfg.Shards = 3
	cfg.SampleEvery = 2 * cfg.Hop
	cfg.Faults = []NodeFault{{Node: 1, Slowdown: 2}}
	plans := make([]*machine.Plan, cfg.Nodes)
	plans[5] = machine.PlanPartitioned()
	cfg.NodePlans = plans
	res := run(t, cfg)
	if res.NodeFaults[1] == "healthy" {
		t.Errorf("fault label lost: %v", res.NodeFaults)
	}
	if res.NodeDispatch[5] == res.NodeDispatch[0] {
		t.Errorf("per-node plan lost: %v", res.NodeDispatch)
	}
	if len(res.NodeTimelines) != cfg.Nodes {
		t.Fatalf("%d node timelines for %d nodes", len(res.NodeTimelines), cfg.Nodes)
	}

	// A tiny MaxSimTime must abort the sharded run, flagged TimedOut.
	cfg.Policy = cfg.Policy.Clone()
	cfg.MaxSimTime = 10 * cfg.Hop
	if res := run(t, cfg); !res.TimedOut {
		t.Fatal("sharded run ignored MaxSimTime")
	}
}

// TestShardValidation: shard-specific config errors.
func TestShardValidation(t *testing.T) {
	neg := baseConfig(4, Random{}, 0.5)
	neg.Shards = -1
	if _, err := Run(neg); err == nil {
		t.Error("negative shard count accepted")
	}
	noHop := baseConfig(4, Random{}, 0.5)
	noHop.Shards = 2
	noHop.Hop = 0
	if _, err := Run(noHop); err == nil {
		t.Error("Shards>1 with zero hop accepted: no lookahead window exists")
	}
	// Clamping: more shards than nodes is not an error.
	over := baseConfig(2, Random{}, 0.5)
	over.Shards = 16
	over.Warmup, over.Measure = 50, 500
	if _, err := Run(over); err != nil {
		t.Errorf("Shards>Nodes rejected: %v", err)
	}
	// Shards>1 on a single node degrades to the serial path.
	one := baseConfig(1, Random{}, 0.5)
	one.Shards = 4
	one.Warmup, one.Measure = 50, 500
	base := baseConfig(1, Random{}, 0.5)
	base.Warmup, base.Measure = 50, 500
	if a, b := run(t, one), run(t, base); !reflect.DeepEqual(a, b) {
		t.Error("single-node sharded run differs from serial")
	}
}

// TestShardedPolicyError: a misbehaving policy fails the sharded run with an
// attributable error instead of panicking a shard goroutine.
func TestShardedPolicyError(t *testing.T) {
	cfg := baseConfig(4, roguePolicy{}, 0.5)
	cfg.Shards = 2
	if _, err := Run(cfg); err == nil {
		t.Fatal("out-of-range pick not reported")
	}
}
