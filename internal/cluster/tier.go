package cluster

// tier.go: the composable dispatch tier behind every balancer in the
// package. A tier is one balancing stage — a Policy deciding over a depth
// view of E endpoints: machines for the flat cluster balancer (cluster.go,
// shard.go) and for each rack balancer, whole racks for the global balancer
// of a two-tier datacenter (hier.go). The depth index rides inside the view,
// so the O(N/64) indexed policies work unchanged at either tier.
//
// The property that makes tiers stack is that a tier also *exposes* the
// depth-observable surface a node does: aggregate() is the tier's total
// visible outstanding — the aggregate-over-index signal (index.go keeps the
// running Σ depth, so it is O(1)). To the global balancer a rack is just one
// more balanceable endpoint publishing a queue-depth number; whether that
// number is exact, stale-sampled, or scraped periodically is the enclosing
// run's choice (Config.SampleEvery, Config.GlobalSampleEvery).

import (
	"rpcvalet/internal/rng"
	"rpcvalet/internal/sim"
)

// tier is one balancing stage: a policy, its private RNG stream, and the
// depth view it decides over.
type tier struct {
	pol Policy
	rng *rng.Source
	v   *view
}

// newTier builds a tier over `endpoints` endpoints. A nil policy is allowed
// only for a degenerate single-endpoint tier whose caller never calls pick.
func newTier(pol Policy, src *rng.Source, endpoints int, live bool) *tier {
	return &tier{pol: pol, rng: src, v: newView(endpoints, live)}
}

// pick runs the tier's policy over its current view.
func (t *tier) pick() int { return t.pol.Pick(t.v, t.rng) }

// dispatched records one RPC routed to endpoint i (always visible
// immediately — the decision happens here).
func (t *tier) dispatched(i int) { t.v.dispatched(i) }

// completed records one RPC known to have drained from endpoint i.
func (t *tier) completed(i int) { t.v.completed(i) }

// depth is the tier's visible depth of endpoint i.
func (t *tier) depth(i int) int { return t.v.Depth(i) }

// aggregate is the tier's own published depth signal: the total visible
// outstanding across its endpoints, read off the depth index's running sum in
// O(1). For a live view this is exact; for a stale view it reflects the
// tier's own sampling delay — an enclosing tier scraping it inherits that
// staleness, exactly as real telemetry pipelines compound.
func (t *tier) aggregate() int { return t.v.idx.total }

// scheduleRefresh installs the tier's periodic stale-view snapshot on eng
// (no-op for a live view): every `every`, the visible depths are reset to
// the tier's own outstanding truth.
func (t *tier) scheduleRefresh(eng *sim.Engine, every sim.Duration) {
	if t.v.live {
		return
	}
	var refresh func()
	refresh = func() {
		t.v.snapshot()
		eng.Schedule(every, refresh)
	}
	eng.Schedule(every, refresh)
}

// scheduleScrape installs a periodic snapshot that refreshes the stale view
// from an external depth source instead of the tier's own accounting — the
// global tier scraping each rack balancer's published aggregate. Endpoints
// dispatched to since the last scrape still count live (view.sent), so the
// tier never forgets its own in-flight decisions; what the scrape can miss
// is requests still crossing the global hop at snapshot time, an undercount
// bounded by rate × GlobalHop.
func (t *tier) scheduleScrape(eng *sim.Engine, every sim.Duration, depth func(i int) int) {
	if t.v.live {
		return
	}
	var refresh func()
	refresh = func() {
		t.v.snapshotFrom(depth)
		eng.Schedule(every, refresh)
	}
	eng.Schedule(every, refresh)
}

// rackGeometry resolves the rack partition of a validated hierarchical
// config: each rack's node count and starting global node index. Racks are
// contiguous: rack r owns nodes [start[r], start[r]+size[r]).
func rackGeometry(cfg Config) (size, start []int) {
	size = make([]int, cfg.Racks)
	start = make([]int, cfg.Racks)
	at := 0
	for r := 0; r < cfg.Racks; r++ {
		if len(cfg.RackNodes) > 0 {
			size[r] = cfg.RackNodes[r]
		} else {
			size[r] = cfg.Nodes / cfg.Racks
		}
		start[r] = at
		at += size[r]
	}
	return size, start
}
