package cluster

import (
	"fmt"
	"strconv"
	"strings"

	"rpcvalet/internal/rng"
)

// View is the balancer's knowledge of node state at decision time. With a
// nonzero sampling period the depths are stale snapshots, modeling the
// telemetry delay a real rack-scale balancer pays; with live sampling it is
// the cluster-level analogue of the paper's NI occupancy feedback.
type View interface {
	// Nodes reports the cluster size.
	Nodes() int
	// Depth reports the (possibly stale) queue depth of node i: RPCs
	// dispatched to it and not yet completed.
	Depth(i int) int
}

// Policy selects the destination node for each incoming RPC at the cluster
// front end. Implementations may carry state (rotation position) and are
// driven by exactly one balancer, never concurrently.
type Policy interface {
	// Pick returns the index of the node the next RPC is routed to.
	Pick(v View, r *rng.Source) int
	// Clone returns a fresh instance with the same parameters but reset
	// state, so sweeps can run points concurrently and independently.
	Clone() Policy
	String() string
}

// Random routes each RPC to a uniformly random node — the cluster-level
// analogue of the paper's uni[0,Q−1] arrival stage (Model Q×U, §2.2). It
// ignores the view, so per-node arrival bursts re-create the partitioned
// 16×1 pathology one level up.
type Random struct{}

func (Random) Pick(v View, r *rng.Source) int { return r.IntN(v.Nodes()) }
func (Random) Clone() Policy                  { return Random{} }
func (Random) String() string                 { return "random" }

// RoundRobin cycles through the nodes in order: perfectly even arrival
// counts, but oblivious to service-time variance piling work on one node.
type RoundRobin struct {
	next int
}

func (p *RoundRobin) Pick(v View, _ *rng.Source) int {
	i := p.next % v.Nodes()
	p.next = i + 1
	return i
}

func (p *RoundRobin) Clone() Policy  { return &RoundRobin{} }
func (p *RoundRobin) String() string { return "rr" }

// JSQ is join-shortest-queue over d sampled nodes (power-of-d-choices). With
// d ≥ the cluster size it degenerates to full JSQ. Ties break toward the
// earlier sampled node, which the random sampling order already
// de-biases.
type JSQ struct {
	D int // choices per decision; ≥ 2
}

func (p JSQ) Pick(v View, r *rng.Source) int {
	n := v.Nodes()
	d := p.D
	if d >= n {
		// Full scan; start at a random offset so persistent ties do not
		// all land on node 0.
		start := r.IntN(n)
		best := start
		for i := 1; i < n; i++ {
			c := (start + i) % n
			if v.Depth(c) < v.Depth(best) {
				best = c
			}
		}
		return best
	}
	best := r.IntN(n)
	for k := 1; k < d; k++ {
		c := r.IntN(n)
		if v.Depth(c) < v.Depth(best) {
			best = c
		}
	}
	return best
}

func (p JSQ) Clone() Policy  { return JSQ{D: p.D} }
func (p JSQ) String() string { return fmt.Sprintf("jsq%d", p.D) }

// BoundedLoad is round-robin with a load bound, in the spirit of consistent
// hashing with bounded loads: the rotation skips any node whose sampled
// depth exceeds Factor × the cluster-mean depth, falling back to the
// least-loaded node when every node is over the bound.
type BoundedLoad struct {
	Factor float64 // bound as a multiple of mean depth; ≥ 1 (e.g. 1.25)
	next   int
}

func (p *BoundedLoad) Pick(v View, _ *rng.Source) int {
	n := v.Nodes()
	total := 0
	for i := 0; i < n; i++ {
		total += v.Depth(i)
	}
	// The bound counts the incoming RPC, so an idle cluster admits
	// anywhere: ceil(Factor × (total+1)/n).
	bound := int(p.Factor*float64(total+1)/float64(n) + 0.999999)
	least := p.next % n
	for i := 0; i < n; i++ {
		c := (p.next + i) % n
		if v.Depth(c) < v.Depth(least) {
			least = c
		}
		if v.Depth(c) < bound {
			p.next = c + 1
			return c
		}
	}
	p.next = least + 1
	return least
}

func (p *BoundedLoad) Clone() Policy  { return &BoundedLoad{Factor: p.Factor} }
func (p *BoundedLoad) String() string { return fmt.Sprintf("bounded%g", p.Factor) }

// PolicyByName builds a fresh policy instance from its report name:
// "random", "rr", "jsqD" for any d ≥ 2 (e.g. "jsq2"), or "bounded"
// (Factor 1.25). Each call returns new state, so callers can hand every
// simulation its own rotation position.
func PolicyByName(name string) (Policy, error) {
	switch {
	case name == "random":
		return Random{}, nil
	case name == "rr":
		return &RoundRobin{}, nil
	case name == "bounded":
		return &BoundedLoad{Factor: 1.25}, nil
	case strings.HasPrefix(name, "jsq"):
		d, err := strconv.Atoi(name[len("jsq"):])
		if err != nil || d < 2 {
			return nil, fmt.Errorf("cluster: bad JSQ choices in %q (want jsq2, jsq3, ...)", name)
		}
		return JSQ{D: d}, nil
	default:
		return nil, fmt.Errorf("cluster: unknown policy %q (want random, rr, jsqD, bounded)", name)
	}
}

// PolicyNames lists the canonical policy set in report order.
var PolicyNames = []string{"random", "rr", "jsq2", "bounded"}
