package cluster

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"rpcvalet/internal/rng"
)

// View is the balancer's knowledge of node state at decision time. With a
// nonzero sampling period the depths are stale snapshots, modeling the
// telemetry delay a real rack-scale balancer pays; with live sampling it is
// the cluster-level analogue of the paper's NI occupancy feedback.
type View interface {
	// Nodes reports the cluster size.
	Nodes() int
	// Depth reports the (possibly stale) queue depth of node i: RPCs
	// dispatched to it and not yet completed.
	Depth(i int) int
}

// depthIndexed is the fast-path contract the balancer's own view satisfies:
// a View whose depths are additionally indexed by the incremental depth
// bitmap (index.go). The whole-cluster policies (full JSQ, BoundedLoad) use
// it to decide in O(N/64); any other View implementation falls back to the
// reference O(N) scans, which the equivalence grid (policy_equiv_test.go)
// proves pick-identical and RNG-draw-identical.
type depthIndexed interface {
	View
	index() *depthIndex
}

// Policy selects the destination node for each incoming RPC at the cluster
// front end. Implementations may carry state (rotation position) and are
// driven by exactly one balancer, never concurrently.
type Policy interface {
	// Pick returns the index of the node the next RPC is routed to.
	Pick(v View, r *rng.Source) int
	// Clone returns a fresh instance with the same parameters but reset
	// state, so sweeps can run points concurrently and independently.
	Clone() Policy
	String() string
}

// Random routes each RPC to a uniformly random node — the cluster-level
// analogue of the paper's uni[0,Q−1] arrival stage (Model Q×U, §2.2). It
// ignores the view, so per-node arrival bursts re-create the partitioned
// 16×1 pathology one level up.
type Random struct{}

func (Random) Pick(v View, r *rng.Source) int { return r.IntN(v.Nodes()) }
func (Random) Clone() Policy                  { return Random{} }
func (Random) String() string                 { return "random" }

// RoundRobin cycles through the nodes in order: perfectly even arrival
// counts, but oblivious to service-time variance piling work on one node.
type RoundRobin struct {
	next int
}

func (p *RoundRobin) Pick(v View, _ *rng.Source) int {
	n := v.Nodes()
	i := p.next % n
	// Keep the cursor in [0, n) so it cannot overflow on ultra-long runs;
	// byte-identical to the old ever-growing cursor because reads are mod n.
	p.next = (i + 1) % n
	return i
}

func (p *RoundRobin) Clone() Policy  { return &RoundRobin{} }
func (p *RoundRobin) String() string { return "rr" }

// FullScan, used as JSQ.D, selects whole-cluster join-shortest-queue at any
// cluster size ("jsqfull" in reports): the decision considers every node, via
// the depth index when the view provides one.
const FullScan = math.MaxInt32

// JSQ is join-shortest-queue over d sampled nodes (power-of-d-choices). With
// d ≥ the cluster size (use FullScan) it degenerates to full JSQ: the first
// least-loaded node in circular order from a random start, so persistent
// ties do not all land on node 0. Sampled ties break toward the earlier
// sampled node, which the random sampling order already de-biases.
type JSQ struct {
	D int // choices per decision; ≥ 2 (FullScan = whole cluster)
}

func (p JSQ) Pick(v View, r *rng.Source) int {
	n := v.Nodes()
	d := p.D
	if d >= n {
		// Full scan: one draw for the tie-break offset, then the first
		// minimum-depth node circularly from it. On an indexed view that is
		// a find-first-set over the min-depth bitmap row; otherwise the
		// reference wrap-around strict-min scan. Identical picks, same
		// single IntN draw (policy_equiv_test.go).
		start := r.IntN(n)
		if ix, ok := v.(depthIndexed); ok {
			return ix.index().firstAtMin(start)
		}
		best := start
		for i := 1; i < n; i++ {
			c := (start + i) % n
			if v.Depth(c) < v.Depth(best) {
				best = c
			}
		}
		return best
	}
	best := r.IntN(n)
	for k := 1; k < d; k++ {
		c := r.IntN(n)
		if v.Depth(c) < v.Depth(best) {
			best = c
		}
	}
	return best
}

func (p JSQ) Clone() Policy { return JSQ{D: p.D} }

func (p JSQ) String() string {
	if p.D >= FullScan {
		return "jsqfull"
	}
	return fmt.Sprintf("jsq%d", p.D)
}

// BoundedLoad is round-robin with a load bound, in the spirit of consistent
// hashing with bounded loads: the rotation skips any node whose sampled
// depth exceeds Factor × the cluster-mean depth, falling back to the
// least-loaded node when every node is over the bound.
type BoundedLoad struct {
	Factor float64 // bound as a multiple of mean depth; ≥ 1 (e.g. 1.25)
	next   int
}

// loadBound is BoundedLoad's admission threshold. The bound counts the
// incoming RPC, so an idle cluster admits anywhere:
// ceil(Factor × (total+1)/n).
func loadBound(factor float64, total, n int) int {
	return int(math.Ceil(factor * float64(total+1) / float64(n)))
}

func (p *BoundedLoad) Pick(v View, _ *rng.Source) int {
	n := v.Nodes()
	start := p.next % n
	if ix, ok := v.(depthIndexed); ok {
		// Indexed path: the running total replaces the O(N) depth sum, the
		// under-bound rotation scan becomes a bitmap-row pass, and the
		// everyone-over-bound fallback is the min-row's first node from the
		// cursor — exactly the reference scan's circular-first argmin.
		x := ix.index()
		c := x.firstUnder(loadBound(p.Factor, x.total, n), start)
		if c < 0 {
			c = x.firstAtMin(start)
		}
		p.next = (c + 1) % n
		return c
	}
	total := 0
	for i := 0; i < n; i++ {
		total += v.Depth(i)
	}
	bound := loadBound(p.Factor, total, n)
	least := start
	for i := 0; i < n; i++ {
		c := (start + i) % n
		if v.Depth(c) < v.Depth(least) {
			least = c
		}
		if v.Depth(c) < bound {
			p.next = (c + 1) % n
			return c
		}
	}
	p.next = (least + 1) % n
	return least
}

func (p *BoundedLoad) Clone() Policy  { return &BoundedLoad{Factor: p.Factor} }
func (p *BoundedLoad) String() string { return fmt.Sprintf("bounded%g", p.Factor) }

// PolicyByName builds a fresh policy instance from its report name:
// "random", "rr", "jsqD" for any d ≥ 2 (e.g. "jsq2"), "jsqfull"
// (whole-cluster JSQ at any size), or "bounded" (Factor 1.25). Each call
// returns new state, so callers can hand every simulation its own rotation
// position.
func PolicyByName(name string) (Policy, error) {
	switch {
	case name == "random":
		return Random{}, nil
	case name == "rr":
		return &RoundRobin{}, nil
	case name == "bounded":
		return &BoundedLoad{Factor: 1.25}, nil
	case name == "jsqfull":
		return JSQ{D: FullScan}, nil
	case strings.HasPrefix(name, "jsq"):
		d, err := strconv.Atoi(name[len("jsq"):])
		if err != nil || d < 2 {
			return nil, fmt.Errorf("cluster: bad JSQ choices in %q (want jsq2, jsq3, ..., jsqfull)", name)
		}
		return JSQ{D: d}, nil
	default:
		return nil, fmt.Errorf("cluster: unknown policy %q (want random, rr, jsqD, jsqfull, bounded)", name)
	}
}

// PolicyNames lists the canonical policy set in report order.
var PolicyNames = []string{"random", "rr", "jsq2", "bounded"}
