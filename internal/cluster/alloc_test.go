package cluster

import (
	"testing"
)

// marginalAllocsPerRequest isolates the steady-state per-request allocation
// cost from fixed setup by differencing two run lengths, exactly like the
// machine-level test (see internal/machine/alloc_test.go for the method).
func marginalAllocsPerRequest(t *testing.T, run func(measure int)) float64 {
	t.Helper()
	const base, big = 4000, 24000
	baseAllocs := testing.AllocsPerRun(2, func() { run(base) })
	bigAllocs := testing.AllocsPerRun(2, func() { run(big) })
	return (bigAllocs - baseAllocs) / float64(big-base)
}

// TestClusterAllocsPerRequest pins the single-engine cluster path: pooled
// cluster requests plus the pooled machine path underneath. The measured
// marginal cost is ~0.32 allocations per request — five recorders' worth
// (four nodes plus the balancer) of amortized epoch-timeline sample growth,
// nothing O(1) per request — so the budget sits at 0.5: any real
// per-request allocation reads ≥1.0.
func TestClusterAllocsPerRequest(t *testing.T) {
	per := marginalAllocsPerRequest(t, func(measure int) {
		cfg := baseConfig(4, JSQ{D: 2}, 0.6)
		cfg.Measure = measure
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
	})
	if per > 0.5 {
		t.Errorf("cluster steady-state allocations per request = %.4f, budget 0.5", per)
	}
}

// TestShardedAllocsPerRequest pins the sharded round loop. The parallel path
// pays per-round costs the serial path does not (barrier wakeups, channel
// operations in the goroutine runtime), and rounds scale with simulated time
// — measured ~0.70 per request with two shards — so the budget is looser,
// but still close enough to one that the pooled shardReq/doneEvt exchange
// cannot silently start allocating per message.
func TestShardedAllocsPerRequest(t *testing.T) {
	per := marginalAllocsPerRequest(t, func(measure int) {
		cfg := baseConfig(4, JSQ{D: 2}, 0.6)
		cfg.Shards = 2
		cfg.Measure = measure
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
	})
	if per > 1.2 {
		t.Errorf("sharded steady-state allocations per request = %.4f, budget 1.2", per)
	}
}
