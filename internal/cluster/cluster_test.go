package cluster

import (
	"math"
	"reflect"
	"testing"

	"rpcvalet/internal/arrival"
	"rpcvalet/internal/machine"
	"rpcvalet/internal/rng"
	"rpcvalet/internal/sim"
	"rpcvalet/internal/workload"
)

// nodeCapacityMRPS mirrors core.CapacityMRPS without importing core (which
// would cycle once core grows cluster figures).
func nodeCapacityMRPS(cfg machine.Config) float64 {
	return float64(cfg.Params.Cores) /
		(cfg.Workload.MeanService() + cfg.Params.CoreOverheadNanos()) * 1000
}

func baseConfig(nodes int, pol Policy, loadFrac float64) Config {
	node := machine.Config{Params: machine.Defaults(), Workload: workload.SyntheticExp()}
	return Config{
		Nodes:    nodes,
		Node:     node,
		Policy:   pol,
		RateMRPS: loadFrac * float64(nodes) * nodeCapacityMRPS(node),
		Hop:      500 * sim.Nanosecond,
		Warmup:   1000,
		Measure:  12000,
		Seed:     1,
	}
}

func run(t *testing.T, cfg Config) Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestValidation(t *testing.T) {
	good := baseConfig(4, Random{}, 0.5)
	cases := map[string]func(c *Config){
		"noNodes":       func(c *Config) { c.Nodes = 0 },
		"nilPolicy":     func(c *Config) { c.Policy = nil },
		"zeroRate":      func(c *Config) { c.RateMRPS = 0 },
		"noMeasure":     func(c *Config) { c.Measure = 0 },
		"negWarmup":     func(c *Config) { c.Warmup = -1 },
		"negHop":        func(c *Config) { c.Hop = -1 },
		"negSample":     func(c *Config) { c.SampleEvery = -1 },
		"badNodeCfg":    func(c *Config) { c.Node.Params.Cores = 0 },
		"planCount":     func(c *Config) { c.NodePlans = []*machine.Plan{machine.PlanSingleQueue()} },
		"badPlanGroups": func(c *Config) { c.Node.Params.Plan = &machine.Plan{Groups: 3} },
	}
	for name, mutate := range cases {
		cfg := good
		mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: invalid config accepted", name)
		}
	}
}

func TestDeterminism(t *testing.T) {
	cfg := baseConfig(4, JSQ{D: 2}, 0.7)
	cfg.Measure = 6000
	a := run(t, cfg)
	b := run(t, cfg)
	if a.Latency != b.Latency || !reflect.DeepEqual(a.NodeCompleted, b.NodeCompleted) {
		t.Fatal("identical seeds produced different results")
	}
	cfg.Seed = 2
	c := run(t, cfg)
	if a.Latency == c.Latency {
		t.Fatal("different seeds produced identical results")
	}
}

// TestJSQBeatsRandomAt80 is the subsystem's regression gate: a queue-aware
// front end must not lose to a blind one at high load. At 80% offered load
// on the synthetic-exponential workload, JSQ(2)'s cluster p99 must be at or
// below Random's.
func TestJSQBeatsRandomAt80(t *testing.T) {
	random := run(t, baseConfig(4, Random{}, 0.8))
	jsq := run(t, baseConfig(4, JSQ{D: 2}, 0.8))
	if jsq.Latency.P99 > random.Latency.P99 {
		t.Fatalf("JSQ(2) p99 %.0fns above Random %.0fns at 80%% load",
			jsq.Latency.P99, random.Latency.P99)
	}
}

// TestRoundRobinEvensArrivals: RR's completion counts must be nearly
// uniform, and strictly more even than Random's at the same load.
func TestRoundRobinEvensArrivals(t *testing.T) {
	rr := run(t, baseConfig(8, &RoundRobin{}, 0.6))
	random := run(t, baseConfig(8, Random{}, 0.6))
	if rr.Imbalance > 1.02 {
		t.Fatalf("round-robin imbalance %.3f, want ~1", rr.Imbalance)
	}
	if random.Imbalance <= rr.Imbalance {
		t.Fatalf("random imbalance %.3f not above round-robin %.3f",
			random.Imbalance, rr.Imbalance)
	}
}

// TestBoundedLoadCapsImbalance: the bounded policy must keep per-node
// completions within (roughly) its factor of the mean.
func TestBoundedLoadCapsImbalance(t *testing.T) {
	res := run(t, baseConfig(8, &BoundedLoad{Factor: 1.25}, 0.7))
	if res.Imbalance > 1.25 {
		t.Fatalf("bounded-load imbalance %.3f above factor 1.25", res.Imbalance)
	}
}

// TestHopChargesLatency: every measured RPC pays the balancer→node hop, so
// the minimum end-to-end latency must exceed it; raising the hop must move
// the whole distribution up by about the difference.
func TestHopChargesLatency(t *testing.T) {
	cfg := baseConfig(4, Random{}, 0.3)
	near := run(t, cfg)
	if near.Latency.Min < cfg.Hop.Nanos() {
		t.Fatalf("min latency %.0fns below hop %.0fns", near.Latency.Min, cfg.Hop.Nanos())
	}
	cfg.Hop = 5 * sim.Microsecond
	far := run(t, cfg)
	wantDelta := (5*sim.Microsecond - 500*sim.Nanosecond).Nanos()
	delta := far.Latency.P50 - near.Latency.P50
	if math.Abs(delta-wantDelta) > 0.1*wantDelta {
		t.Fatalf("p50 moved %.0fns for a %.0fns hop increase", delta, wantDelta)
	}
}

// TestStaleViewStillBalances: with a 10 µs sampling period JSQ works off
// stale depths; it must still complete deterministically and keep its tail
// within sight of the live-view tail (herding can cost, not diverge).
func TestStaleViewStillBalances(t *testing.T) {
	live := baseConfig(4, JSQ{D: 2}, 0.7)
	stale := live
	stale.SampleEvery = 10 * sim.Microsecond
	a := run(t, stale)
	b := run(t, stale)
	if a.Latency != b.Latency {
		t.Fatal("stale-view run not deterministic")
	}
	lv := run(t, live)
	if a.Latency.P99 > 5*lv.Latency.P99 {
		t.Fatalf("stale JSQ p99 %.0fns implausibly far above live %.0fns",
			a.Latency.P99, lv.Latency.P99)
	}
}

func TestThroughputTracksOffered(t *testing.T) {
	cfg := baseConfig(4, &RoundRobin{}, 0.5)
	cfg.Measure = 20000
	res := run(t, cfg)
	if math.Abs(res.ThroughputMRPS-cfg.RateMRPS)/cfg.RateMRPS > 0.05 {
		t.Fatalf("throughput %.2f MRPS, offered %.2f", res.ThroughputMRPS, cfg.RateMRPS)
	}
	for i, u := range res.NodeUtilization {
		if u <= 0 || u >= 1 {
			t.Fatalf("node %d utilization %v out of range", i, u)
		}
	}
}

func TestPolicyByName(t *testing.T) {
	for _, name := range PolicyNames {
		p, err := PolicyByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.String() == "" {
			t.Fatalf("%s: empty description", name)
		}
	}
	if p, err := PolicyByName("jsq5"); err != nil || p.(JSQ).D != 5 {
		t.Fatalf("jsq5 => %v, %v", p, err)
	}
	for _, bad := range []string{"", "jsq", "jsq1", "jsqx", "leastconn"} {
		if _, err := PolicyByName(bad); err == nil {
			t.Errorf("%q: accepted", bad)
		}
	}
}

func TestPolicyPickBounds(t *testing.T) {
	nodes := 5
	v := newView(nodes, false)
	copy(v.stale, []int{3, 0, 7, 2, 5})
	v.idx.rebuild(v.stale) // poked depths directly; re-sync the index
	r := rng.New(3)
	for _, p := range []Policy{Random{}, &RoundRobin{}, JSQ{D: 2}, JSQ{D: 16}, &BoundedLoad{Factor: 1.25}} {
		for i := 0; i < 200; i++ {
			if got := p.Pick(v, r); got < 0 || got >= nodes {
				t.Fatalf("%s picked out-of-range node %d", p, got)
			}
		}
	}
	// Full-scan JSQ on a static view must always find the emptiest node.
	if got := (JSQ{D: 16}).Pick(v, r); got != 1 {
		t.Fatalf("full JSQ picked %d, want 1", got)
	}
}

// TestTailGrowsWithLoad: p99 must be (noise-tolerantly) non-decreasing in
// offered load for a queue-aware cluster.
func TestTailGrowsWithLoad(t *testing.T) {
	var prev float64
	for _, frac := range []float64{0.3, 0.6, 0.9} {
		cfg := baseConfig(2, JSQ{D: 2}, frac)
		cfg.Measure = 6000
		res := run(t, cfg)
		if res.Latency.P99 < prev*0.95 {
			t.Fatalf("p99 decreased with load: %v -> %v at %v", prev, res.Latency.P99, frac)
		}
		prev = res.Latency.P99
	}
}

// TestRoguePolicyRejected: a policy returning an out-of-range node must
// surface as an attributable error, not a panic inside the event loop.
func TestRoguePolicyRejected(t *testing.T) {
	cfg := baseConfig(4, roguePolicy{}, 0.3)
	if _, err := Run(cfg); err == nil {
		t.Fatal("out-of-range pick accepted")
	}
}

type roguePolicy struct{}

func (roguePolicy) Pick(v View, _ *rng.Source) int { return v.Nodes() }
func (roguePolicy) Clone() Policy                  { return roguePolicy{} }
func (roguePolicy) String() string                 { return "rogue" }

// TestArrivalKindsDeterministic: each built-in arrival process drives the
// cluster deterministically and non-Poisson traffic actually changes the
// outcome.
func TestArrivalKindsDeterministic(t *testing.T) {
	base := baseConfig(2, JSQ{D: 2}, 0.6)
	base.Warmup, base.Measure = 500, 6000
	def := run(t, base)
	for _, kind := range arrival.Names {
		arr, err := arrival.ByName(kind, base.RateMRPS)
		if err != nil {
			t.Fatal(err)
		}
		cfg := base
		cfg.Arrival = arr
		a := run(t, cfg)
		b := run(t, cfg)
		if a.Latency != b.Latency || a.ThroughputMRPS != b.ThroughputMRPS {
			t.Fatalf("%s: identical configs differ", kind)
		}
		if kind != "poisson" && a.Latency == def.Latency {
			t.Fatalf("%s: produced the exact Poisson result — process not wired in", kind)
		}
		if kind == "poisson" && a.Latency != def.Latency {
			t.Fatal("explicit poisson differs from nil default")
		}
	}
}

// TestHeterogeneousRack: NodePlans mixes dispatch architectures within one
// rack. The run must report each node's resolved plan, stay deterministic,
// and a nil entry must keep the template's plan.
func TestHeterogeneousRack(t *testing.T) {
	cfg := baseConfig(4, JSQ{D: 2}, 0.6)
	cfg.Measure = 8000
	cfg.NodePlans = []*machine.Plan{
		machine.PlanSingleQueue(),
		machine.PlanPartitioned(),
		machine.PlanJBSQ(1),
		nil, // template default (ModeSingleQueue)
	}
	a := run(t, cfg)
	want := []string{"rpcvalet-1x16", "partitioned-16x1", "jbsq1", "rpcvalet-1x16"}
	if !reflect.DeepEqual(a.NodeDispatch, want) {
		t.Fatalf("NodeDispatch = %v, want %v", a.NodeDispatch, want)
	}
	b := run(t, cfg)
	if a.Latency != b.Latency || !reflect.DeepEqual(a.NodeCompleted, b.NodeCompleted) {
		t.Fatal("heterogeneous rack not deterministic")
	}
	for i, c := range a.NodeCompleted {
		if c == 0 {
			t.Fatalf("node %d served nothing", i)
		}
	}
}

// TestNodePlansMatchUniformRun: a NodePlans array repeating the template's
// canned plan must reproduce the plain uniform run exactly.
func TestNodePlansMatchUniformRun(t *testing.T) {
	cfg := baseConfig(3, JSQ{D: 2}, 0.5)
	cfg.Measure = 6000
	uniform := run(t, cfg)
	cfg.NodePlans = []*machine.Plan{
		machine.PlanSingleQueue(), machine.PlanSingleQueue(), machine.PlanSingleQueue(),
	}
	canned := run(t, cfg)
	if uniform.Latency != canned.Latency ||
		!reflect.DeepEqual(uniform.NodeCompleted, canned.NodeCompleted) {
		t.Fatal("canned per-node plans diverge from the uniform run")
	}
}
