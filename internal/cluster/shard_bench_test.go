package cluster

import (
	"fmt"
	"runtime"
	"testing"
)

// BenchmarkClusterSharded is the sharded-sweep study: one fixed cluster
// configuration (JSQ(2) over exponential-service nodes at 70% of aggregate
// capacity) run to completion at every (nodes, shards) cell, reporting
// simulated-RPC throughput as sim_mrps. shards=1 is the serial single-clock
// baseline every speedup is measured against; `make bench-json` records the
// matrix in BENCH_cluster.json, and EXPERIMENTS.md derives the speedups.
//
// The parallel path's wall-clock win is bounded by min(shards+1, GOMAXPROCS):
// each shard is one goroutine, so a host with fewer cores than shards
// serializes the rounds and measures only the protocol's synchronization
// overhead. gomaxprocs is reported alongside so recorded numbers are
// interpretable on any host.
func BenchmarkClusterSharded(b *testing.B) {
	for _, nodes := range []int{25, 100, 400, 1000} {
		for _, shards := range []int{1, 2, 4, 8, 16} {
			b.Run(fmt.Sprintf("nodes=%d/shards=%d", nodes, shards), func(b *testing.B) {
				cfg := baseConfig(nodes, JSQ{D: 2}, 0.7)
				cfg.Warmup = 500
				cfg.Measure = 10000
				cfg.Shards = shards
				total := cfg.Warmup + cfg.Measure
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					c := cfg
					c.Policy = cfg.Policy.Clone()
					res, err := Run(c)
					if err != nil {
						b.Fatal(err)
					}
					if res.Completed != total {
						b.Fatalf("completed %d of %d", res.Completed, total)
					}
				}
				b.ReportMetric(float64(total)*float64(b.N)/b.Elapsed().Seconds()/1e6, "sim_mrps")
				b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
			})
		}
	}
}
