package cluster

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"rpcvalet/internal/machine"
	"rpcvalet/internal/sim"
	"rpcvalet/internal/trace"
)

// hierConfig builds a two-tier config on top of baseConfig: racks of equal
// size behind a global balancer one GlobalHop away.
func hierConfig(nodes, racks int, global, rack Policy, loadFrac float64) Config {
	cfg := baseConfig(nodes, rack, loadFrac)
	cfg.Racks = racks
	cfg.GlobalPolicy = global
	cfg.GlobalHop = 500 * sim.Nanosecond
	return cfg
}

// flatten strips the hierarchy-only Result fields so a degenerate two-tier
// run can be compared byte-for-byte against a flat run.
func flatten(r Result) Result {
	r.Racks = 0
	r.GlobalPolicy = ""
	r.RackCompleted = nil
	r.RackFaults = nil
	return r
}

// TestHierFlatEquivalence is the flat-equivalence contract: one rack behind
// a zero-latency global tier must reproduce the flat cluster byte for byte —
// for every policy, at light and heavy load, with live and stale rack
// views, and regardless of whether a global policy is even installed (its
// RNG stream is split last, so its draws perturb nothing).
func TestHierFlatEquivalence(t *testing.T) {
	for _, polName := range PolicyNames {
		for _, load := range []float64{0.4, 0.8} {
			for _, stale := range []bool{false, true} {
				name := fmt.Sprintf("%s/%.0f%%/stale=%v", polName, 100*load, stale)
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					mk := func() Config {
						pol, err := PolicyByName(polName)
						if err != nil {
							t.Fatal(err)
						}
						cfg := baseConfig(6, pol, load)
						cfg.Warmup = 300
						cfg.Measure = 4000
						if stale {
							cfg.SampleEvery = 2 * cfg.Hop
						}
						return cfg
					}
					flat := run(t, mk())

					hier := mk()
					hier.Racks = 1
					hier.GlobalHop = 0
					if !reflect.DeepEqual(flat, flatten(run(t, hier))) {
						t.Fatal("one-rack/zero-global-hop run differs from the flat cluster")
					}

					// A global policy that draws from its own RNG stream must
					// not perturb the result either.
					withPol := mk()
					withPol.Racks = 1
					withPol.GlobalHop = 0
					withPol.GlobalPolicy = Random{}
					if !reflect.DeepEqual(flat, flatten(run(t, withPol))) {
						t.Fatal("global policy RNG draws perturbed the one-rack run")
					}
				})
			}
		}
	}
}

// TestHierDeterminism: a hierarchical run is a pure function of its config —
// byte-identical across reruns, including timelines, trace streams, and tail
// spans — and different seeds decorrelate.
func TestHierDeterminism(t *testing.T) {
	base := hierConfig(8, 4, JSQ{D: FullScan}, JSQ{D: 2}, 0.7)
	base.Warmup = 200
	base.Measure = 4000
	base.TailSamples = 8
	base.SampleEvery = base.Hop
	base.GlobalSampleEvery = 2 * base.Hop

	runTraced := func(seed uint64) (Result, []trace.Event) {
		c := base
		c.Seed = seed
		c.Policy = base.Policy.Clone()
		c.GlobalPolicy = base.GlobalPolicy.Clone()
		var events []trace.Event
		c.Trace = trace.Func(func(e trace.Event) { events = append(events, e) })
		return run(t, c), events
	}
	a, aev := runTraced(1)
	b, bev := runTraced(1)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%v\n%v", a, b)
	}
	if !reflect.DeepEqual(aev, bev) {
		t.Fatalf("trace streams diverged: %d vs %d events", len(aev), len(bev))
	}
	if c, _ := runTraced(2); c.Latency == a.Latency {
		t.Fatal("different seeds produced identical hierarchical results")
	}
	if a.Racks != 4 || a.GlobalPolicy == "" || len(a.RackCompleted) != 4 {
		t.Fatalf("hier result fields not populated: %+v", a)
	}
	sum := 0
	for _, c := range a.RackCompleted {
		sum += c
	}
	if sum != a.Completed {
		t.Fatalf("rack completions sum %d, completed %d", sum, a.Completed)
	}
}

// TestHierShardAgreement is the hierarchical shard property grid: for each
// (racks, policy pair, load), Shards ∈ {0, 1} take the serial engine and
// must agree byte-for-byte; every Shards > 1 maps to one shard per rack, so
// all of them must produce byte-identical Results; serial and sharded agree
// structurally (same completions — the global tier merely *learns* of them
// one GlobalHop later on the sharded path).
func TestHierShardAgreement(t *testing.T) {
	for _, tc := range []struct {
		racks  int
		global Policy
		load   float64
	}{
		{2, Random{}, 0.4},
		{2, JSQ{D: FullScan}, 0.8},
		{4, JSQ{D: 2}, 0.7},
		{4, &RoundRobin{}, 0.5},
	} {
		name := fmt.Sprintf("racks=%d/%s/%.0f%%", tc.racks, tc.global, 100*tc.load)
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			base := hierConfig(8, tc.racks, tc.global, JSQ{D: 2}, tc.load)
			base.Warmup = 200
			base.Measure = 2500
			results := map[int]Result{}
			for _, shards := range []int{0, 1, 2, tc.racks, 2 * tc.racks} {
				c := base
				c.Shards = shards
				c.Policy = base.Policy.Clone()
				c.GlobalPolicy = tc.global.Clone()
				results[shards] = run(t, c)
			}
			if !reflect.DeepEqual(results[0], results[1]) {
				t.Error("Shards=1 differs from the zero-value default")
			}
			for _, shards := range []int{tc.racks, 2 * tc.racks} {
				if !reflect.DeepEqual(results[2], results[shards]) {
					t.Errorf("Shards=%d differs from Shards=2 (both map to one shard per rack)", shards)
				}
			}
			serial, sharded := results[1], results[2]
			if sharded.Completed != serial.Completed {
				t.Errorf("sharded completed %d, serial %d", sharded.Completed, serial.Completed)
			}
			if !reflect.DeepEqual(sharded.NodeCompleted, serial.NodeCompleted) && sharded.Latency.P50 <= 0 {
				t.Errorf("degenerate sharded hier result: %v", sharded)
			}
			sum := 0
			for _, c := range sharded.RackCompleted {
				sum += c
			}
			if sum != sharded.Completed {
				t.Errorf("sharded rack completions sum %d, completed %d", sum, sharded.Completed)
			}
		})
	}
}

// TestHierShardedDeterminism: the racks-as-shards path reruns byte-identical
// with tracing and tail sampling on.
func TestHierShardedDeterminism(t *testing.T) {
	base := hierConfig(8, 4, JSQ{D: FullScan}, JSQ{D: 2}, 0.7)
	base.Warmup = 200
	base.Measure = 3000
	base.Shards = 4
	base.TailSamples = 8
	base.SampleEvery = base.Hop

	runTraced := func() (Result, []trace.Event) {
		c := base
		c.Policy = base.Policy.Clone()
		c.GlobalPolicy = base.GlobalPolicy.Clone()
		var events []trace.Event
		c.Trace = trace.Func(func(e trace.Event) { events = append(events, e) })
		return run(t, c), events
	}
	a, aev := runTraced()
	b, bev := runTraced()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("sharded hier run diverged:\n%v\n%v", a, b)
	}
	if !reflect.DeepEqual(aev, bev) {
		t.Fatalf("sharded hier trace streams diverged: %d vs %d events", len(aev), len(bev))
	}
}

// TestHierRackFaultScoping: a rack-scoped fault degrades every node in the
// rack (and only that rack), labels the rack in RackFaults, and composes
// with node-scoped entries in last-entry-wins order like flat fault lists.
func TestHierRackFaultScoping(t *testing.T) {
	cfg := hierConfig(6, 2, JSQ{D: FullScan}, JSQ{D: 2}, 0.5)
	cfg.Warmup = 200
	cfg.Measure = 2500
	cfg.Faults = []NodeFault{
		{Node: 1, Rack: true, Slowdown: 2},
		{Node: 4, Slowdown: 3}, // node 4 is in rack 1: overrides the rack entry
	}
	res := run(t, cfg)
	wantNode := []string{"healthy", "healthy", "healthy", "x2", "x3", "x2"}
	if !reflect.DeepEqual(res.NodeFaults, wantNode) {
		t.Fatalf("node fault labels = %v, want %v", res.NodeFaults, wantNode)
	}
	if !reflect.DeepEqual(res.RackFaults, []string{"healthy", "x2"}) {
		t.Fatalf("rack fault labels = %v", res.RackFaults)
	}
	// The degraded rack must complete less than the healthy one under a
	// queue-aware global tier.
	if res.RackCompleted[1] >= res.RackCompleted[0] {
		t.Fatalf("degraded rack out-completed the healthy one: %v", res.RackCompleted)
	}
}

// TestHierBalancerPause: a rack-scoped pause freezes the rack *balancer* —
// requests already routed to the rack wait out the window — so the paused
// run's extreme tail must blow up relative to the identical healthy run,
// and a queue-aware global tier must shift load off the frozen rack.
func TestHierBalancerPause(t *testing.T) {
	base := hierConfig(4, 2, JSQ{D: FullScan}, JSQ{D: FullScan}, 0.6)
	base.Warmup = 500
	base.Measure = 8000

	healthy := run(t, base)

	paused := base
	paused.Policy = base.Policy.Clone()
	paused.GlobalPolicy = base.GlobalPolicy.Clone()
	paused.Faults = []NodeFault{{Node: 0, Rack: true,
		Pauses: []machine.Pause{{Start: 50 * sim.Microsecond, Dur: 40 * sim.Microsecond}}}}
	pres := run(t, paused)

	if pres.Latency.P999 <= healthy.Latency.P999 {
		t.Fatalf("paused rack balancer did not raise p99.9: %.0f <= %.0f",
			pres.Latency.P999, healthy.Latency.P999)
	}
	if pres.RackFaults[0] == "healthy" {
		t.Fatalf("rack fault label missing: %v", pres.RackFaults)
	}
	// The frozen rack's outstanding stays high through the window, so full
	// global JSQ routes around it.
	if pres.RackCompleted[0] >= healthy.RackCompleted[0] {
		t.Fatalf("global tier did not shift load off the frozen rack: paused %v healthy %v",
			pres.RackCompleted, healthy.RackCompleted)
	}
}

// TestHierRackNodes: explicitly sized racks partition the node set
// contiguously and the whole result stays self-consistent.
func TestHierRackNodes(t *testing.T) {
	cfg := hierConfig(6, 2, JSQ{D: FullScan}, JSQ{D: 2}, 0.5)
	cfg.RackNodes = []int{4, 2}
	cfg.Warmup = 200
	cfg.Measure = 2500
	res := run(t, cfg)
	if len(res.NodeCompleted) != 6 || len(res.RackCompleted) != 2 {
		t.Fatalf("geometry lost: %v %v", res.NodeCompleted, res.RackCompleted)
	}
	sum := res.RackCompleted[0] + res.RackCompleted[1]
	if sum != res.Completed {
		t.Fatalf("rack completions sum %d, completed %d", sum, res.Completed)
	}
	// rack 0 = nodes 0..3, rack 1 = nodes 4..5.
	first := res.NodeCompleted[0] + res.NodeCompleted[1] + res.NodeCompleted[2] + res.NodeCompleted[3]
	if first != res.RackCompleted[0] {
		t.Fatalf("rack 0 node completions %d, rack counter %d", first, res.RackCompleted[0])
	}
}

// TestHierValidation: every new config rule rejects with the package's
// "cluster:"-prefixed message style.
func TestHierValidation(t *testing.T) {
	good := hierConfig(8, 2, JSQ{D: FullScan}, JSQ{D: 2}, 0.5)
	cases := []struct {
		name    string
		mutate  func(c *Config)
		wantMsg string
	}{
		{"negRacks", func(c *Config) { c.Racks = -1 }, "negative rack count"},
		{"tooManyRacks", func(c *Config) { c.Racks = 9 }, "racks for"},
		{"globalFieldsFlat", func(c *Config) { c.Racks = 0 }, "need Racks >= 1"},
		{"negGlobalHop", func(c *Config) { c.GlobalHop = -1 }, "negative global hop"},
		{"negGlobalSample", func(c *Config) { c.GlobalSampleEvery = -1 }, "negative global sampling"},
		{"noGlobalPolicy", func(c *Config) { c.GlobalPolicy = nil }, "needs a GlobalPolicy"},
		{"rackSizesCount", func(c *Config) { c.RackNodes = []int{8} }, "rack sizes for"},
		{"unevenRacks", func(c *Config) { c.Racks = 3; c.GlobalHop = 0 }, "evenly partition"},
		{"rackSizesSum", func(c *Config) { c.RackNodes = []int{4, 5} }, "RackNodes sum"},
		{"rackSizeZero", func(c *Config) { c.RackNodes = []int{8, 0} }, "rack 1 sized"},
		{"rackFaultRange", func(c *Config) { c.Faults = []NodeFault{{Node: 2, Rack: true, Slowdown: 2}} }, "fault for rack"},
		{"rackFaultFlat", func(c *Config) {
			c.Racks = 0
			c.GlobalPolicy = nil
			c.GlobalHop = 0
			c.Faults = []NodeFault{{Node: 0, Rack: true, Slowdown: 2}}
		}, "needs Racks >= 1"},
		{"shardsNoGlobalHop", func(c *Config) { c.Shards = 2; c.GlobalHop = 0 }, "positive GlobalHop"},
		{"shardsScrape", func(c *Config) { c.Shards = 2; c.GlobalSampleEvery = c.Hop }, "cannot scrape"},
	}
	for _, tc := range cases {
		cfg := good
		tc.mutate(&cfg)
		_, err := Run(cfg)
		if err == nil {
			t.Errorf("%s: invalid config accepted", tc.name)
			continue
		}
		if !strings.HasPrefix(err.Error(), "cluster:") {
			t.Errorf("%s: error %q not cluster:-prefixed", tc.name, err)
		}
		if !strings.Contains(err.Error(), tc.wantMsg) {
			t.Errorf("%s: error %q missing %q", tc.name, err, tc.wantMsg)
		}
	}
}

// TestHierGlobalScrape: a scraping global view (GlobalSampleEvery > 0) runs,
// stays deterministic, and differs from the live-view run — the staleness is
// observable.
func TestHierGlobalScrape(t *testing.T) {
	base := hierConfig(8, 4, JSQ{D: FullScan}, JSQ{D: 2}, 0.8)
	base.Warmup = 200
	base.Measure = 3000

	live := run(t, base)
	scraped := base
	scraped.Policy = base.Policy.Clone()
	scraped.GlobalPolicy = base.GlobalPolicy.Clone()
	scraped.GlobalSampleEvery = 10 * base.GlobalHop
	a := run(t, scraped)
	scraped.Policy = base.Policy.Clone()
	scraped.GlobalPolicy = base.GlobalPolicy.Clone()
	b := run(t, scraped)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("scraping global view is nondeterministic")
	}
	if reflect.DeepEqual(a.NodeCompleted, live.NodeCompleted) && a.Latency == live.Latency {
		t.Fatal("scraped global view indistinguishable from live view")
	}
}
