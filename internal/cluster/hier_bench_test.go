package cluster

import (
	"runtime"
	"testing"
)

// BenchmarkClusterHier is the end-to-end two-tier benchmark at the ROADMAP's
// 1000-node scale: one full hierarchical cluster.Run per iteration — a
// jsqfull global balancer dispatching over 8 rack balancers, each running
// whole-rack JSQ off its depth index — so sim_mrps reads the simulator's
// datacenter throughput with both dispatch tiers on the arrival path. The
// serial engine and the racks-as-shards PDES engine run as subtests: the
// serial cell is the tier abstraction's overhead against BenchmarkClusterRack
// (same nodes, one tier fewer), the sharded cell is the parallel path whose
// lookahead is the global hop.
func BenchmarkClusterHier(b *testing.B) {
	const nodes, racks = 1000, 8
	for _, bc := range []struct {
		name   string
		shards int
	}{
		{"engine=serial", 0},
		{"engine=sharded", racks},
	} {
		b.Run("topology=jsqfullxjsqfull/nodes=1000/"+bc.name, func(b *testing.B) {
			cfg := baseConfig(nodes, JSQ{D: FullScan}, 0.8)
			cfg.Racks = racks
			cfg.GlobalPolicy = JSQ{D: FullScan}
			cfg.GlobalHop = cfg.Hop
			cfg.Shards = bc.shards
			cfg.Warmup = 2000
			cfg.Measure = 30000
			total := cfg.Warmup + cfg.Measure
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c := cfg
				c.Policy = cfg.Policy.Clone()
				c.GlobalPolicy = cfg.GlobalPolicy.Clone()
				res, err := Run(c)
				if err != nil {
					b.Fatal(err)
				}
				if res.Completed != total {
					b.Fatalf("completed %d of %d", res.Completed, total)
				}
			}
			b.ReportMetric(float64(total)*float64(b.N)/b.Elapsed().Seconds()/1e6, "sim_mrps")
			b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
		})
	}
}
