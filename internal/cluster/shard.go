package cluster

// Sharded cluster execution: the conservative parallel-DES path behind
// Config.Shards > 1.
//
// Topology: the node set is split into Shards contiguous groups, each group
// running its machines on a private sim.Engine driven by its own goroutine;
// the balancer (arrival stream, policy, depth view, metrics recorder) is one
// more shard with its own engine. internal/sim/pdes advances all of them in
// lockstep rounds exactly one Hop wide — Hop is the conservative lookahead:
// every cross-shard effect (balancer→node inject, node→balancer completion
// notification) is charged one network hop, so a message emitted during a
// round can only take effect after the round's deadline, and each shard can
// simulate a whole round without observing the others.
//
// Determinism: cross-shard messages are merged between rounds by
// (timestamp, cluster-wide request id) — a key independent of how the nodes
// were partitioned — and delivered into the destination engine in that
// order; trace events are flushed per round sorted by (At, ReqID, phase
// rank). Per-node RNG seeds are split off the root in node order exactly as
// the serial path does. Together these make the Result a pure function of
// (Config, Seed): identical across repeated runs and across every shard
// count ≥ 2.
//
// Semantics vs the serial engine: the only visible difference is feedback
// latency. On the shared clock the balancer's depth view reflects a
// completion the instant it happens; here the notification physically
// crosses the network back, so the view (and the completion counters that
// close the measurement window) run one Hop behind. Per-request latency is
// still measured balancer-ingress → handler-completion, identical to the
// serial definition. Shards ≤ 1 never reaches this file.

import (
	"fmt"
	"sort"

	"rpcvalet/internal/arrival"
	"rpcvalet/internal/machine"
	"rpcvalet/internal/metrics"
	"rpcvalet/internal/rng"
	"rpcvalet/internal/sim"
	"rpcvalet/internal/sim/pdes"
	"rpcvalet/internal/trace"
)

// injectMsg is a balancer→node-shard routed RPC; it takes effect (the
// node's NI sees the message) one Hop after the balancer forwarded it.
type injectMsg struct {
	id   uint64   // cluster-wide sequence number
	node int      // destination node (global index)
	sent sim.Time // balancer ingress time, the latency epoch
}

// doneMsg is a node→balancer completion notification; it takes effect (the
// balancer's view learns of the drain) one Hop after the handler finished.
type doneMsg struct {
	node     int
	sent     sim.Time // echoed from the inject, for end-to-end latency
	measured bool
}

// nodeShard is one group of machines on a private engine.
type nodeShard struct {
	eng  *sim.Engine
	buf  []trace.Event         // this round's trace events, flushed at exchange
	done pdes.Mailbox[doneMsg] // this round's completions, drained at exchange
	pool []*shardReq           // recycled per-request trackers for this shard
}

// shardReq is the pooled per-request tracker on the sharded path: it carries
// one routed RPC from the exchange's inject delivery through the node's
// completion callback, then returns to its shard's free-list. Pools are
// per-shard: a tracker is popped during the single-threaded exchange and
// pushed back on the owning shard's goroutine, phases the PDES barrier
// already orders.
type shardReq struct {
	id   uint64
	node int
	sent sim.Time
	sh   *nodeShard
}

// doneEvt is the balancer-side pooled tracker for one completion
// notification in flight between exchange and its delivery time.
type doneEvt struct {
	at sim.Time
	d  doneMsg
}

func runSharded(cfg Config) (Result, error) {
	nshards := min(cfg.Shards, cfg.Nodes)

	// Tracing sinks mirror the serial path, but shards buffer events during
	// a round and the exchange feeds the sinks in deterministic order.
	var tail *trace.TailSampler
	if cfg.TailSamples > 0 {
		tail = trace.NewTailSampler(cfg.TailSamples)
	}
	sampleN := uint64(1)
	if cfg.TraceSample > 1 {
		sampleN = uint64(cfg.TraceSample)
	}
	tracing := cfg.Trace != nil || tail != nil

	// Seed derivation order is identical to the serial path, so node i's
	// RNG streams are the same at every shard count.
	root := rng.New(cfg.Seed)
	arrRNG := root.Split()
	polRNG := root.Split()

	faultByNode := make([]machine.Fault, cfg.Nodes)
	for _, f := range cfg.Faults {
		faultByNode[f.Node] = machine.Fault{Slowdown: f.Slowdown, Pauses: f.Pauses}
	}

	// Contiguous partition: shard s owns nodes [s·N/S, (s+1)·N/S).
	shards := make([]*nodeShard, nshards)
	shardOf := make([]int, cfg.Nodes)
	for s := range shards {
		shards[s] = &nodeShard{eng: sim.New()}
		for i := s * cfg.Nodes / nshards; i < (s+1)*cfg.Nodes/nshards; i++ {
			shardOf[i] = s
		}
	}
	nodes := make([]*machine.Machine, cfg.Nodes)
	tracers := make([]*nodeTracer, cfg.Nodes)
	for i := range nodes {
		ncfg := cfg.Node
		ncfg.Seed = root.Split().Uint64()
		ncfg.Epoch = cfg.Epoch
		ncfg.MaxEpochs = cfg.MaxEpochs
		if len(cfg.NodePlans) > 0 && cfg.NodePlans[i] != nil {
			ncfg.Params.Plan = cfg.NodePlans[i]
		}
		ncfg.Slowdown = faultByNode[i].Slowdown
		ncfg.Pauses = faultByNode[i].Pauses
		sh := shards[shardOf[i]]
		if tracing {
			tracers[i] = &nodeTracer{node: i, emit: func(e trace.Event) { sh.buf = append(sh.buf, e) }}
			ncfg.Trace = tracers[i]
			ncfg.TraceSample = 0 // sampling happens on cluster IDs at flush
			ncfg.TailSamples = 0 // the cluster-level tail splices the hop in
		}
		m, err := machine.NewShared(ncfg, sh.eng)
		if err != nil {
			return Result{}, fmt.Errorf("cluster: node %d: %w", i, err)
		}
		nodes[i] = m
	}

	// The balancer shard: arrival stream, one dispatch tier (tier.go) over
	// the node set, recorder. The tier's view carries the depth index
	// (index.go) exactly as on the serial path, so the O(N/64) indexed
	// picks apply under sharding too. The view lives on the balancer shard
	// only — node shards never touch it — so no extra synchronization is
	// needed beyond the existing mailbox protocol.
	beng := sim.New()
	var bbuf []trace.Event
	bal := newTier(cfg.Policy, polRNG, cfg.Nodes, cfg.SampleEvery == 0)
	bal.scheduleRefresh(beng, cfg.SampleEvery)
	v := bal.v
	inject := make([]*pdes.Mailbox[injectMsg], nshards)
	for s := range inject {
		inject[s] = &pdes.Mailbox[injectMsg]{}
	}

	var (
		completed     int
		totalOut      int // dispatched and not yet *known* complete
		nodeCompleted = make([]int, cfg.Nodes)
		target        = cfg.Warmup + cfg.Measure
		timedOut      bool
		halt          bool
		runErr        error
	)
	rec := metrics.NewRecorder(metrics.Config{EpochNanos: cfg.Epoch.Nanos(), MaxEpochs: cfg.MaxEpochs, Expect: cfg.Measure})
	stop := func() {
		halt = true
		beng.Stop()
	}
	if cfg.MaxSimTime > 0 {
		beng.Schedule(cfg.MaxSimTime, func() {
			timedOut = true
			stop()
		})
	}

	gaps := arrival.NewBatch(arrival.Resolve(cfg.Arrival, cfg.RateMRPS), arrRNG, 0)
	var seq uint64 // cluster-wide request sequence number
	var arrive func()
	arrive = func() {
		id := seq
		seq++
		n := bal.pick()
		if n < 0 || n >= cfg.Nodes {
			runErr = fmt.Errorf("cluster: policy %s picked node %d of %d", cfg.Policy, n, cfg.Nodes)
			stop()
			return
		}
		if tracing {
			now := beng.Now()
			bbuf = append(bbuf,
				trace.Event{ReqID: id, Phase: trace.PhaseBalancerRecv, At: now, Core: -1, Node: -1, Depth: totalOut},
				trace.Event{ReqID: id, Phase: trace.PhaseForward, At: now, Core: -1, Node: n, Depth: v.Depth(n)})
		}
		v.dispatched(n)
		totalOut++
		sent := beng.Now()
		inject[shardOf[n]].Send(sent.Add(cfg.Hop), id, injectMsg{id: id, node: n, sent: sent})
		beng.Schedule(gaps.Next(), arrive)
	}
	beng.Schedule(gaps.Next(), arrive)

	// deliver applies one completion notification on the balancer at
	// notification time `at`; the handler actually finished one Hop earlier,
	// and the measurement stream is stamped with that completion time so
	// latency and epoch slicing match the serial definitions.
	deliver := func(at sim.Time, d doneMsg) {
		c := at.Add(-cfg.Hop)
		v.completed(d.node)
		totalOut--
		completed++
		nodeCompleted[d.node]++
		if completed == cfg.Warmup+1 {
			rec.OpenWindow(c)
		}
		rec.Complete(c, metrics.Completion{
			Class:     -1,
			Measured:  d.measured,
			LatencyNs: c.Sub(d.sent).Nanos(),
			WaitNs:    -1,
			ServiceNs: -1,
			Depth:     totalOut,
		})
		if completed >= target {
			rec.CloseWindow(c)
			stop()
		}
	}

	var (
		injScratch  []pdes.Msg[injectMsg]
		doneScratch []pdes.Msg[doneMsg]
		doneBoxes   = make([]*pdes.Mailbox[doneMsg], nshards)
		evScratch   []trace.Event
		donePool    []*doneEvt
	)
	for s, sh := range shards {
		doneBoxes[s] = &sh.done
	}

	// Per-request callbacks, bound once so the exchange's steady state
	// allocates no closures: injectFn fires on the owning shard's engine at
	// the message's arrival time; nodeDoneFn fires at handler completion and
	// recycles the tracker; deliverFn applies a completion notification on
	// the balancer engine.
	var nodeDoneFn func(arg any, class int, measured bool)
	nodeDoneFn = func(arg any, _ int, measured bool) {
		r := arg.(*shardReq)
		sh := r.sh
		sh.done.Send(sh.eng.Now().Add(cfg.Hop), r.id,
			doneMsg{node: r.node, sent: r.sent, measured: measured})
		sh.pool = append(sh.pool, r)
	}
	injectFn := func(arg any) {
		r := arg.(*shardReq)
		if tracing {
			// The machine numbers this inject len(ids); remember its
			// cluster-wide identity at that index.
			tracers[r.node].ids = append(tracers[r.node].ids, r.id)
		}
		nodes[r.node].InjectArg(nodeDoneFn, r)
	}
	deliverFn := func(arg any) {
		e := arg.(*doneEvt)
		deliver(e.at, e.d)
		donePool = append(donePool, e)
	}

	// exchange runs single-threaded between rounds: deliver the round's
	// cross-shard messages in (At, request id) order and flush its trace
	// events in (At, ReqID, phase-rank) order — both partition-independent.
	exchange := func(deadline sim.Time) bool {
		for s, sh := range shards {
			injScratch = pdes.Gather(injScratch, inject[s])
			for _, m := range injScratch {
				var r *shardReq
				if np := len(sh.pool); np > 0 {
					r = sh.pool[np-1]
					sh.pool = sh.pool[:np-1]
				} else {
					r = &shardReq{sh: sh}
				}
				r.id, r.node, r.sent = m.Payload.id, m.Payload.node, m.Payload.sent
				sh.eng.ScheduleArgAt(m.At, injectFn, r)
			}
		}
		doneScratch = pdes.Gather(doneScratch, doneBoxes...)
		for _, m := range doneScratch {
			var e *doneEvt
			if np := len(donePool); np > 0 {
				e = donePool[np-1]
				donePool = donePool[:np-1]
			} else {
				e = &doneEvt{}
			}
			e.at, e.d = m.At, m.Payload
			beng.ScheduleArgAt(m.At, deliverFn, e)
		}
		if tracing {
			evScratch = append(evScratch[:0], bbuf...)
			bbuf = bbuf[:0]
			for _, sh := range shards {
				evScratch = append(evScratch, sh.buf...)
				sh.buf = sh.buf[:0]
			}
			sort.Slice(evScratch, func(i, j int) bool {
				a, b := evScratch[i], evScratch[j]
				if a.At != b.At {
					return a.At < b.At
				}
				if a.ReqID != b.ReqID {
					return a.ReqID < b.ReqID
				}
				return a.Phase.Rank() < b.Phase.Rank()
			})
			for _, e := range evScratch {
				if tail != nil {
					tail.Record(e)
				}
				if cfg.Trace != nil && e.ReqID%sampleN == 0 {
					cfg.Trace.Record(e)
				}
			}
		}
		return !halt && runErr == nil
	}

	rounds := make([]pdes.RoundFunc, 0, nshards+1)
	for _, sh := range shards {
		rounds = append(rounds, func(d sim.Time) { sh.eng.RunUntil(d) })
	}
	rounds = append(rounds, func(d sim.Time) { beng.RunUntil(d) })
	pdes.Run(cfg.Hop, rounds, exchange)
	if runErr != nil {
		return Result{}, runErr
	}
	return assemble(cfg, rec, tail, nodes, faultByNode, nodeCompleted, completed, timedOut), nil
}
