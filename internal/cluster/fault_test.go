package cluster

import (
	"strings"
	"testing"

	"rpcvalet/internal/machine"
	"rpcvalet/internal/sim"
)

func TestParseFaults(t *testing.T) {
	fs, err := ParseFaults("0:x1.5")
	if err != nil || len(fs) != 1 || fs[0].Node != 0 || fs[0].Slowdown != 1.5 {
		t.Fatalf("0:x1.5 -> %+v, %v", fs, err)
	}
	fs, err = ParseFaults("1:x2,pause@1ms+200us; 3:pause@500us+100us")
	if err != nil || len(fs) != 2 {
		t.Fatalf("two entries -> %+v, %v", fs, err)
	}
	if fs[0].Node != 1 || fs[0].Slowdown != 2 || len(fs[0].Pauses) != 1 {
		t.Fatalf("entry 0 = %+v", fs[0])
	}
	if fs[1].Node != 3 || len(fs[1].Pauses) != 1 || fs[1].Pauses[0].Start != sim.FromMicros(500) {
		t.Fatalf("entry 1 = %+v", fs[1])
	}
	for _, bad := range []string{"x1.5", "a:x1.5", "-1:x2", "0:z9"} {
		if _, err := ParseFaults(bad); err == nil {
			t.Errorf("ParseFaults(%q) accepted", bad)
		}
	}
}

// TestParseFaultsRack: the rack-scoped grammar "rackR:FAULT" parses into a
// NodeFault with Rack set, mixes freely with node-scoped entries, and
// round-trips through String.
func TestParseFaultsRack(t *testing.T) {
	fs, err := ParseFaults("rack0:pause@1ms+200us; 2:x1.5")
	if err != nil || len(fs) != 2 {
		t.Fatalf("rack+node entries -> %+v, %v", fs, err)
	}
	if !fs[0].Rack || fs[0].Node != 0 || len(fs[0].Pauses) != 1 || fs[0].Pauses[0].Start != sim.FromMicros(1000) {
		t.Fatalf("rack entry = %+v", fs[0])
	}
	if fs[1].Rack || fs[1].Node != 2 || fs[1].Slowdown != 1.5 {
		t.Fatalf("node entry = %+v", fs[1])
	}
	if got := fs[0].String(); got != "rack0:pause@1000us+200us" {
		t.Fatalf("rack fault String = %q", got)
	}
	fs, err = ParseFaults("rack3:x2,pause@500us+100us")
	if err != nil || len(fs) != 1 || !fs[0].Rack || fs[0].Node != 3 || fs[0].Slowdown != 2 {
		t.Fatalf("rack3 compound -> %+v, %v", fs, err)
	}
	for _, bad := range []string{"rack:x2", "rack-1:x2", "rackx:x2", "rack1.5:x2"} {
		_, err := ParseFaults(bad)
		if err == nil {
			t.Errorf("ParseFaults(%q) accepted", bad)
			continue
		}
		if !strings.Contains(err.Error(), "rack") {
			t.Errorf("ParseFaults(%q) error %q does not name the rack scope", bad, err)
		}
	}
}

// TestRackFaultValidation: rack-scoped faults are only legal on hierarchical
// configs and must name a rack that exists.
func TestRackFaultValidation(t *testing.T) {
	flat := baseConfig(4, Random{}, 0.5)
	flat.Faults = []NodeFault{{Node: 0, Rack: true, Slowdown: 1.5}}
	if _, err := Run(flat); err == nil {
		t.Error("rack-scoped fault accepted on a flat cluster")
	}

	hier := baseConfig(4, Random{}, 0.5)
	hier.Racks = 2
	hier.GlobalPolicy = Random{}
	hier.Faults = []NodeFault{{Node: 2, Rack: true, Slowdown: 1.5}}
	if _, err := Run(hier); err == nil {
		t.Error("out-of-range rack fault accepted")
	}
	hier.Faults = []NodeFault{{Node: -1, Rack: true, Slowdown: 1.5}}
	if _, err := Run(hier); err == nil {
		t.Error("negative rack fault accepted")
	}
}

func TestFaultValidation(t *testing.T) {
	good := baseConfig(2, Random{}, 0.5)
	for name, faults := range map[string][]NodeFault{
		"nodeOutOfRange": {{Node: 2, Slowdown: 1.5}},
		"negativeNode":   {{Node: -1, Slowdown: 1.5}},
		"negativeSlow":   {{Node: 0, Slowdown: -2}},
	} {
		cfg := good
		cfg.Faults = faults
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: invalid faults accepted", name)
		}
	}
}

// TestDegradedNodeShiftsLoadUnderJSQ: with one node slowed down, a
// queue-aware balancer routes around it — the degraded node completes less
// than its fair share — while blind random routing keeps feeding it and
// pays at the tail.
func TestDegradedNodeShiftsLoadUnderJSQ(t *testing.T) {
	jsq := baseConfig(4, JSQ{D: 2}, 0.6)
	jsq.Faults = []NodeFault{{Node: 0, Slowdown: 1.5}}
	jres := run(t, jsq)

	fair := float64(jres.Completed) / 4
	if got := float64(jres.NodeCompleted[0]); got > 0.95*fair {
		t.Fatalf("JSQ kept feeding the slow node: %v of fair %v", got, fair)
	}
	if jres.NodeFaults[0] != "x1.5" || jres.NodeFaults[1] != "healthy" {
		t.Fatalf("fault labels = %v", jres.NodeFaults)
	}

	rnd := baseConfig(4, Random{}, 0.6)
	rnd.Faults = jsq.Faults
	rres := run(t, rnd)
	if rres.Latency.P99 <= jres.Latency.P99 {
		t.Fatalf("random should pay more at the tail than JSQ under degradation: %v vs %v",
			rres.Latency.P99, jres.Latency.P99)
	}
}

// TestDegradedMarginWidens: the JSQ-over-random advantage must be wider with
// a degraded node than at uniform speed — the transient-figure claim at
// test scale.
func TestDegradedMarginWidens(t *testing.T) {
	margin := func(faults []NodeFault) float64 {
		r := baseConfig(4, Random{}, 0.65)
		r.Faults = faults
		j := baseConfig(4, JSQ{D: 2}, 0.65)
		j.Faults = faults
		rres, jres := run(t, r), run(t, j)
		return rres.Latency.P99 / jres.Latency.P99
	}
	uniform := margin(nil)
	degraded := margin([]NodeFault{{Node: 0, Slowdown: 1.5}})
	if degraded <= uniform {
		t.Fatalf("degraded margin %.2f not wider than uniform %.2f", degraded, uniform)
	}
}

// TestClusterTimelines: the aggregate and per-node timelines are populated,
// aligned, and account for every completion.
func TestClusterTimelines(t *testing.T) {
	cfg := baseConfig(3, &RoundRobin{}, 0.5)
	cfg.Epoch = 20 * sim.Microsecond
	res := run(t, cfg)

	if len(res.Timeline.Epochs) == 0 {
		t.Fatal("aggregate timeline empty")
	}
	total := 0
	for _, e := range res.Timeline.Epochs {
		total += e.Completions
	}
	if total != res.Completed {
		t.Fatalf("aggregate timeline completions %d != %d", total, res.Completed)
	}
	if len(res.NodeTimelines) != 3 {
		t.Fatalf("node timelines = %d", len(res.NodeTimelines))
	}
	nodeTotal := 0
	for i, tl := range res.NodeTimelines {
		if len(tl.Epochs) == 0 {
			t.Fatalf("node %d timeline empty", i)
		}
		for _, e := range tl.Epochs {
			nodeTotal += e.Completions
		}
	}
	if nodeTotal != res.Completed {
		t.Fatalf("node timeline completions %d != %d", nodeTotal, res.Completed)
	}
}

// TestPausedNodeVisibleInNodeTimeline: a long pause on one node shows up as
// a throughput hole in that node's timeline and nowhere else.
func TestPausedNodeVisibleInNodeTimeline(t *testing.T) {
	cfg := baseConfig(2, &RoundRobin{}, 0.4)
	cfg.Epoch = 50 * sim.Microsecond
	pause := machine.Pause{Start: 200 * sim.Microsecond, Dur: 150 * sim.Microsecond}
	cfg.Faults = []NodeFault{{Node: 1, Pauses: []machine.Pause{pause}}}
	res := run(t, cfg)

	mid := pause.Start + pause.Dur/2
	healthy, paused := res.NodeTimelines[0], res.NodeTimelines[1]
	hIdx, pIdx := healthy.EpochIndex(mid.Nanos()), paused.EpochIndex(mid.Nanos())
	if hIdx < 0 || pIdx < 0 {
		t.Fatal("pause window outside both timelines")
	}
	hThr, pThr := healthy.Epochs[hIdx].ThroughputMRPS, paused.Epochs[pIdx].ThroughputMRPS
	if pThr > 0.5*hThr {
		t.Fatalf("paused node throughput %.2f not depressed vs healthy %.2f", pThr, hThr)
	}
}
