package cluster

import (
	"testing"

	"rpcvalet/internal/rng"
)

// bruteFirstAtMin is the reference circular-first argmin over exact depths.
func bruteFirstAtMin(depth []int, start int) int {
	n := len(depth)
	best := start
	for i := 1; i < n; i++ {
		c := (start + i) % n
		if depth[c] < depth[best] {
			best = c
		}
	}
	return best
}

// bruteFirstUnder is the reference circular scan for the first node with
// depth strictly below bound (-1 when none).
func bruteFirstUnder(depth []int, bound, start int) int {
	n := len(depth)
	for i := 0; i < n; i++ {
		c := (start + i) % n
		if depth[c] < bound {
			return c
		}
	}
	return -1
}

// checkIndex verifies every structural invariant of the index against the
// exact depth slice: per-node row membership, per-row counts, the min-depth
// cursor, the running total, and the query results for a spread of starts
// and bounds (including bounds past the clamp row).
func checkIndex(t *testing.T, x *depthIndex, depth []int) {
	t.Helper()
	n := len(depth)
	total := 0
	minClamped := clampDepth
	counts := make([]int, numDepthRows)
	for i, d := range depth {
		if x.depth[i] != d {
			t.Fatalf("node %d: index depth %d, want %d", i, x.depth[i], d)
		}
		total += d
		c := clamp(d)
		counts[c]++
		if c < minClamped {
			minClamped = c
		}
		for row := 0; row < numDepthRows; row++ {
			got := x.rows[row][i>>6]&(1<<uint(i&63)) != 0
			if got != (row == c) {
				t.Fatalf("node %d (depth %d): bit in row %d = %v", i, d, row, got)
			}
		}
	}
	if x.total != total {
		t.Fatalf("total %d, want %d", x.total, total)
	}
	if n > 0 && x.minD != minClamped {
		t.Fatalf("minD %d, want %d", x.minD, minClamped)
	}
	for d, c := range counts {
		if x.count[d] != c {
			t.Fatalf("count[%d] = %d, want %d", d, x.count[d], c)
		}
	}
	starts := []int{0, 1 % n, n / 2, n - 1, 63 % n, 64 % n} // all in [0, n), as Pick guarantees
	maxD := 0
	for _, d := range depth {
		if d > maxD {
			maxD = d
		}
	}
	bounds := []int{0, 1, x.minD, x.minD + 1, maxD, maxD + 1, clampDepth, clampDepth + 1, clampDepth + 7}
	for _, s := range starts {
		if got, want := x.firstAtMin(s), bruteFirstAtMin(depth, s); got != want {
			t.Fatalf("firstAtMin(%d) = %d, want %d (depths %v)", s, got, want, depth)
		}
		for _, b := range bounds {
			if got, want := x.firstUnder(b, s), bruteFirstUnder(depth, b, s); got != want {
				t.Fatalf("firstUnder(%d, %d) = %d, want %d (depths %v)", b, s, got, want, depth)
			}
		}
	}
}

// TestDepthIndexInvariants churns indices of awkward sizes (word-boundary
// straddling, single-word, single-node) through random increments,
// decrements, and rebuilds — including depths past the clamp row — and
// checks every invariant and query against the brute-force reference after
// each operation.
func TestDepthIndexInvariants(t *testing.T) {
	for _, n := range []int{1, 3, 5, 63, 64, 65, 100, 257} {
		r := rng.New(uint64(1000 + n))
		x := newDepthIndex(n)
		depth := make([]int, n)
		checkIndex(t, x, depth)
		for step := 0; step < 400; step++ {
			switch op := r.IntN(10); {
			case op == 0:
				// Rebuild from scratch with arbitrary depths, clamped and not.
				for i := range depth {
					depth[i] = r.IntN(clampDepth * 2)
				}
				x.rebuild(depth)
			case op < 4:
				// Completion on a random busy node.
				i := r.IntN(n)
				if depth[i] > 0 {
					depth[i]--
					x.dec(i)
				}
			default:
				// Dispatch; occasionally pile deep past the clamp row.
				i := r.IntN(n)
				reps := 1
				if r.IntN(20) == 0 {
					reps = clampDepth + 3
				}
				for k := 0; k < reps; k++ {
					depth[i]++
					x.inc(i)
				}
			}
			checkIndex(t, x, depth)
		}
	}
}

// TestFirstSetFrom pins the circular visiting order of the bitmap scan:
// start's word tail, the following words with wraparound, then start's word
// head — and the empty-bitmap sentinel.
func TestFirstSetFrom(t *testing.T) {
	words := 3 // 192 node slots
	row := make([]uint64, words)
	set := func(bits ...int) {
		for i := range row {
			row[i] = 0
		}
		for _, b := range bits {
			row[b>>6] |= 1 << uint(b&63)
		}
	}
	cases := []struct {
		bits  []int
		start int
		want  int
	}{
		{nil, 0, -1},
		{nil, 100, -1},
		{[]int{0}, 0, 0},
		{[]int{0}, 1, 0}, // wraps the whole way round
		{[]int{5, 70}, 6, 70},
		{[]int{5, 70}, 71, 5},   // wrap into an earlier word
		{[]int{5, 7}, 6, 7},     // same-word, after start
		{[]int{5, 7}, 8, 5},     // same-word, wraps to the head
		{[]int{63, 64}, 63, 63}, // word boundary
		{[]int{63, 64}, 64, 64},
		{[]int{191}, 100, 191},
		{[]int{0, 191}, 191, 191},
	}
	for _, c := range cases {
		set(c.bits...)
		if got := firstSetFrom(row, words, c.start); got != c.want {
			t.Errorf("firstSetFrom(bits %v, start %d) = %d, want %d", c.bits, c.start, got, c.want)
		}
	}
}
