package cluster

// The balancer's incremental depth index: the data structure behind O(N/64)
// policy decisions at rack scale.
//
// The naive policies pay O(N) per arrival — full JSQ walks every node with
// two Depth calls per comparison, BoundedLoad sums all N depths before its
// rotation scan — which at the ROADMAP's 1000-node target makes the decision
// itself the simulation bottleneck (and models a balancer that could never
// hold a nanosecond budget; see mRPC and nanoPU in PAPERS.md). The index
// inverts the representation: instead of asking each node its depth at
// decision time, it moves each node between per-depth bitmap rows at update
// time. Updates are O(1) (dispatch, completion) or O(N/64 + rows)
// (stale-view refresh); decisions become find-first-set scans over one or a
// few []uint64 rows.
//
// Invariants (checked exhaustively by index_test.go):
//
//   - depth[i] always equals the balancer-view depth View.Depth(i); the view
//     (cluster.go) funnels every mutation — dispatch, completion on a live
//     view, snapshot on a stale one — through inc/dec/rebuild.
//   - Node i's bit is set in exactly one row: rows[min(depth[i], clampDepth)].
//     Rows above clampDepth collapse into the clamp row; exact depths are
//     kept in depth[], so clamped states degrade to exact linear fallbacks
//     rather than wrong answers.
//   - minDepth is the smallest d with a nonempty row; total is Σ depth[i],
//     maintained incrementally so BoundedLoad's mean needs no O(N) sum.
//
// Tie-break contract: every query takes a start node and answers in
// *circular* node order from it, which is exactly the order the naive
// wrap-around scans visit nodes in — so indexed picks are byte-identical to
// the brute-force ones (policy_equiv_test.go enforces this across a
// policy × nodes × load grid).

import "math/bits"

// clampDepth is the deepest exactly-indexed queue depth; rows beyond it
// collapse into the final clamp row. Depths at or past it only occur in
// saturated/aborting runs (a stable cluster's depths sit near the offered
// load), and those degrade to exact linear scans, never wrong picks.
const clampDepth = 63

// numDepthRows counts the bitmap rows: depths 0..clampDepth-1 exact, plus
// the clamp row holding every node at depth >= clampDepth.
const numDepthRows = clampDepth + 1

// depthIndex is the incremental per-depth node index. It is owned by a
// single balancer (one per view), mutated only between picks, and never
// shared across goroutines.
type depthIndex struct {
	depth   []int      // exact per-node view depth (mirrors View.Depth)
	rows    [][]uint64 // rows[d]: bitmap of nodes with min(depth, clampDepth) == d
	count   []int      // set-bit count per row
	backing []uint64   // the rows' shared storage, one allocation
	scratch []uint64   // reused union bitmap for under-bound queries
	words   int        // uint64 words per row: ceil(nodes/64)
	minD    int        // smallest d with count[d] > 0
	total   int        // running Σ depth[i]
}

func newDepthIndex(nodes int) *depthIndex {
	words := (nodes + 63) / 64
	x := &depthIndex{
		depth:   make([]int, nodes),
		rows:    make([][]uint64, numDepthRows),
		count:   make([]int, numDepthRows),
		backing: make([]uint64, numDepthRows*words),
		scratch: make([]uint64, words),
		words:   words,
	}
	for d := range x.rows {
		x.rows[d] = x.backing[d*words : (d+1)*words]
	}
	// All nodes start idle: depth 0, row 0 full.
	row := x.rows[0]
	for i := 0; i < nodes; i++ {
		row[i>>6] |= 1 << uint(i&63)
	}
	x.count[0] = nodes
	return x
}

func clamp(d int) int {
	if d > clampDepth {
		return clampDepth
	}
	return d
}

// inc and dec apply one dispatch / one completion to node i's view depth.
func (x *depthIndex) inc(i int) { x.setDepth(i, x.depth[i]+1) }
func (x *depthIndex) dec(i int) { x.setDepth(i, x.depth[i]-1) }

// setDepth moves node i to view depth d, updating its row bit, the running
// total, and the min-depth cursor. O(1) except for the cursor advance, which
// is amortized O(1) (it only ever walks depths that a prior decrease
// descended through).
func (x *depthIndex) setDepth(i, d int) {
	old := x.depth[i]
	x.depth[i] = d
	x.total += d - old
	from, to := clamp(old), clamp(d)
	if from == to {
		return // moved within the clamp row (or no clamped change)
	}
	w, b := i>>6, uint(i&63)
	x.rows[from][w] &^= 1 << b
	x.count[from]--
	x.rows[to][w] |= 1 << b
	x.count[to]++
	if to < x.minD {
		x.minD = to
	} else if from == x.minD && x.count[from] == 0 {
		for x.count[x.minD] == 0 {
			x.minD++
		}
	}
}

// rebuild resets the index to the given depths — the stale view's periodic
// snapshot, where every node's visible depth changes at once. O(N + rows).
func (x *depthIndex) rebuild(depths []int) {
	for i := range x.backing {
		x.backing[i] = 0
	}
	for d := range x.count {
		x.count[d] = 0
	}
	x.total = 0
	x.minD = clampDepth
	for i, d := range depths {
		x.depth[i] = d
		x.total += d
		c := clamp(d)
		x.rows[c][i>>6] |= 1 << uint(i&63)
		x.count[c]++
		if c < x.minD {
			x.minD = c
		}
	}
}

// firstAtMin returns the first node in circular order from start whose depth
// is the cluster minimum — exactly the pick of the naive wrap-around
// strict-less scan (full JSQ, and BoundedLoad's everyone-over-bound
// fallback). O(N/64): one find-first-set pass over the min-depth row.
func (x *depthIndex) firstAtMin(start int) int {
	if x.minD == clampDepth {
		// Degenerate overload: every node is in the clamp row, which no
		// longer separates depths. Fall back to the exact circular argmin.
		return x.argminFrom(start)
	}
	return firstSetFrom(x.rows[x.minD], x.words, start)
}

// argminFrom is the naive circular strict-less argmin over exact depths,
// used only when the whole cluster is clamped.
func (x *depthIndex) argminFrom(start int) int {
	n := len(x.depth)
	best := start
	for i := 1; i < n; i++ {
		c := start + i
		if c >= n {
			c -= n
		}
		if x.depth[c] < x.depth[best] {
			best = c
		}
	}
	return best
}

// firstUnder returns the first node in circular order from start whose depth
// is strictly below bound, or -1 when every node is at or over it. Cost: one
// row union per depth in [minD, bound) — O((bound−minD)·N/64), with the
// common single-row case short-circuited to one find-first-set pass.
func (x *depthIndex) firstUnder(bound, start int) int {
	if bound <= x.minD {
		// depth[i] >= clamp(depth[i]) >= minD >= bound for every node.
		return -1
	}
	hi := bound
	if hi > clampDepth {
		hi = clampDepth
	}
	if hi == x.minD+1 && bound <= clampDepth {
		return firstSetFrom(x.rows[x.minD], x.words, start)
	}
	s := x.scratch
	for w := range s {
		s[w] = 0
	}
	for d := x.minD; d < hi; d++ {
		if x.count[d] == 0 {
			continue
		}
		row := x.rows[d]
		for w := range s {
			s[w] |= row[w]
		}
	}
	if bound > clampDepth && x.count[clampDepth] > 0 {
		// Clamp-row nodes hold exact depths >= clampDepth; admit the ones
		// the bound still covers, one by one (saturated runs only).
		row := x.rows[clampDepth]
		for w, v := range row {
			for v != 0 {
				b := bits.TrailingZeros64(v)
				v &= v - 1
				if x.depth[w<<6+b] < bound {
					s[w] |= 1 << uint(b)
				}
			}
		}
	}
	return firstSetFrom(s, x.words, start)
}

// firstSetFrom returns the position of the first set bit of row at or after
// start in circular order, or -1 when the bitmap is empty. The three stages
// visit bits in exactly circular order: the tail of start's word, the
// following words (wrapping), then the head of start's word.
func firstSetFrom(row []uint64, words, start int) int {
	w, b := start>>6, uint(start&63)
	if v := row[w] &^ (1<<b - 1); v != 0 {
		return w<<6 + bits.TrailingZeros64(v)
	}
	for k := 1; k < words; k++ {
		ww := w + k
		if ww >= words {
			ww -= words
		}
		if v := row[ww]; v != 0 {
			return ww<<6 + bits.TrailingZeros64(v)
		}
	}
	if v := row[w] & (1<<b - 1); v != 0 {
		return w<<6 + bits.TrailingZeros64(v)
	}
	return -1
}
