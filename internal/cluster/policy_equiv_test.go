package cluster

import (
	"math"
	"testing"

	"rpcvalet/internal/rng"
)

// plainView strips the depthIndexed fast path off a view, exposing only the
// public View surface. Policies picking through it run their reference O(N)
// scans against the exact same depths the indexed twin sees.
type plainView struct{ v View }

func (p plainView) Nodes() int      { return p.v.Nodes() }
func (p plainView) Depth(i int) int { return p.v.Depth(i) }

// equivPolicies is the grid's policy set: every policy with an indexed fast
// path plus the untouched ones (their presence proves the index can't
// perturb a policy that ignores it).
func equivPolicies(nodes int) []Policy {
	return []Policy{
		Random{},
		&RoundRobin{},
		JSQ{D: 2},
		JSQ{D: min(4, nodes)},
		JSQ{D: FullScan},
		&BoundedLoad{Factor: 1.25},
		&BoundedLoad{Factor: 1.0},
		&BoundedLoad{Factor: 2.0},
	}
}

// TestPolicyIndexEquivalence is the tentpole's correctness contract: across
// policy × cluster size × load level × view staleness, the indexed pick and
// the brute-force reference pick must agree decision by decision, and both
// policy instances must leave their RNGs in identical states (same draw
// count). The churn covers idle, steady-state, and clamp-saturating loads
// (depths past the 63-deep bitmap rows) plus stale-view snapshots mid-run.
func TestPolicyIndexEquivalence(t *testing.T) {
	type level struct {
		name string
		out  int // target outstanding per node
	}
	levels := []level{{"idle", 0}, {"light", 1}, {"steady", 4}, {"clamped", clampDepth + 8}}
	for _, nodes := range []int{1, 2, 5, 64, 65, 200} {
		for _, lv := range levels {
			for _, live := range []bool{true, false} {
				seed := uint64(nodes*1000 + lv.out*10)
				for _, pol := range equivPolicies(nodes) {
					indexed := pol.Clone()
					naive := pol.Clone()
					rIdx := rng.New(seed)
					rNaive := rng.New(seed)
					churn := rng.New(seed + 1)

					v := newView(nodes, live)
					var inflight []int
					for step := 0; step < 600; step++ {
						target := lv.out * nodes
						switch {
						case len(inflight) < target && churn.IntN(3) > 0, len(inflight) == 0:
							got := indexed.Pick(v, rIdx)
							want := naive.Pick(plainView{v}, rNaive)
							if got != want {
								t.Fatalf("%s nodes=%d level=%s live=%v step %d: indexed pick %d, naive pick %d",
									pol, nodes, lv.name, live, step, got, want)
							}
							v.dispatched(got)
							inflight = append(inflight, got)
						default:
							k := churn.IntN(len(inflight))
							v.completed(inflight[k])
							inflight[k] = inflight[len(inflight)-1]
							inflight = inflight[:len(inflight)-1]
						}
						if !live && churn.IntN(40) == 0 {
							v.snapshot()
						}
					}
					// Same draws consumed: the streams must still be aligned.
					for k := 0; k < 4; k++ {
						if a, b := rIdx.Uint64(), rNaive.Uint64(); a != b {
							t.Fatalf("%s nodes=%d level=%s live=%v: RNG streams diverged (draw %d: %x vs %x)",
								pol, nodes, lv.name, live, k, a, b)
						}
					}
				}
			}
		}
	}
}

// TestPolicyDrawCount pins the RNG draw-count contract each policy must
// honor for stream alignment: a fixed number of IntN(n) draws per Pick,
// independent of the view's depths. A twin RNG replays the expected draws
// and both streams must end aligned after every pick of a churny run.
func TestPolicyDrawCount(t *testing.T) {
	const nodes = 17
	cases := []struct {
		pol   Policy
		draws int
	}{
		{Random{}, 1},
		{&RoundRobin{}, 0},
		{JSQ{D: 2}, 2},
		{JSQ{D: 5}, 5},
		{JSQ{D: nodes}, 1}, // d ≥ n: full scan, one tie-break offset
		{JSQ{D: FullScan}, 1},
		{&BoundedLoad{Factor: 1.25}, 0},
	}
	for _, c := range cases {
		r := rng.New(42)
		twin := rng.New(42)
		churn := rng.New(43)
		v := newView(nodes, true)
		var inflight []int
		for step := 0; step < 300; step++ {
			got := c.pol.Pick(v, r)
			for k := 0; k < c.draws; k++ {
				twin.IntN(nodes)
			}
			// One probe draw from each stream: equal iff the pick consumed
			// exactly the expected draws. The probe advances both streams in
			// lockstep, so the loop stays aligned.
			if a, b := r.Uint64(), twin.Uint64(); a != b {
				t.Fatalf("%s: draw count != %d per pick (streams diverged at step %d)", c.pol, c.draws, step)
			}
			v.dispatched(got)
			inflight = append(inflight, got)
			if len(inflight) > 3*nodes {
				k := churn.IntN(len(inflight))
				v.completed(inflight[k])
				inflight[k] = inflight[len(inflight)-1]
				inflight = inflight[:len(inflight)-1]
			}
		}
	}
}

// TestCursorStaysBounded asserts the satellite normalization: the rotation
// cursors of RoundRobin and BoundedLoad stay in [0, n) forever, so they
// cannot overflow on ultra-long runs.
func TestCursorStaysBounded(t *testing.T) {
	const nodes = 7
	rr := &RoundRobin{}
	bl := &BoundedLoad{Factor: 1.25}
	r := rng.New(9)
	v := newView(nodes, true)
	for step := 0; step < 5000; step++ {
		v.dispatched(rr.Pick(v, r))
		v.dispatched(bl.Pick(v, r))
		if rr.next < 0 || rr.next >= nodes {
			t.Fatalf("step %d: RoundRobin cursor %d out of [0,%d)", step, rr.next, nodes)
		}
		if bl.next < 0 || bl.next >= nodes {
			t.Fatalf("step %d: BoundedLoad cursor %d out of [0,%d)", step, bl.next, nodes)
		}
		if step%3 == 0 {
			for k := 0; k < 2; k++ {
				if c := step % nodes; v.outstanding[c] > 0 {
					v.completed(c)
				}
			}
		}
	}
}

// TestLoadBoundCeil is the regression test for the float-ceil fix: the old
// `int(x + 0.999999)` epsilon hack misrounds in both directions — down when
// x's fractional part is below the epsilon, and up at large totals where
// adding 0.999999 to x rounds (half-ulp) to the next integer. math.Ceil has
// neither failure. The table pins exact bounds for both regimes plus the
// ordinary cases, and documents which of them the old hack got wrong.
func TestLoadBoundCeil(t *testing.T) {
	oldBound := func(factor float64, total, n int) int {
		return int(factor*float64(total+1)/float64(n) + 0.999999)
	}
	cases := []struct {
		name          string
		factor        float64
		total, n      int
		want          int
		oldHackBroken bool
	}{
		// Ordinary operating points: both formulas agree.
		{"idle", 1.25, 0, 4, 1, false},
		{"steady", 1.25, 15, 4, 5, false},
		{"exact-integer", 1.25, 15, 5, 4, false},
		{"rack", 1.25, 3999, 1000, 5, false},
		// Tiny fractional part (< 1e-6): the hack rounds DOWN, losing the
		// admit-anywhere slack the +1 in total+1 is meant to guarantee.
		{"tiny-fraction", 1 + math.Pow(2, -30), 3, 4, 2, true},
		// Large totals: x = 1.25 × 2^47 / 4 is an exact integer, but
		// x + 0.999999 is within half an ulp of x+1 and rounds UP.
		{"large-total", 1.25, 1<<47 - 1, 4, 5 << 43, true},
	}
	for _, c := range cases {
		if got := loadBound(c.factor, c.total, c.n); got != c.want {
			t.Errorf("%s: loadBound(%v, %d, %d) = %d, want %d", c.name, c.factor, c.total, c.n, got, c.want)
		}
		if broken := oldBound(c.factor, c.total, c.n) != c.want; broken != c.oldHackBroken {
			t.Errorf("%s: epsilon hack broken=%v, expected broken=%v", c.name, broken, c.oldHackBroken)
		}
	}
}
