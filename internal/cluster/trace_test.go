package cluster

import (
	"testing"

	"rpcvalet/internal/sim"
	"rpcvalet/internal/trace"
)

// TestCrossNodeTraceCausality runs a traced cluster under every balancer
// policy and asserts, request by request, that the lifecycle is causally
// ordered across the balancer/node boundary: balancer-recv → forward →
// arrive → dispatch → start → complete, with monotonically non-decreasing
// timestamps, a consistent serving node from forward onward, and a positive
// hop (forward → arrive spans the configured network latency).
func TestCrossNodeTraceCausality(t *testing.T) {
	for _, name := range PolicyNames {
		t.Run(name, func(t *testing.T) {
			pol, err := PolicyByName(name)
			if err != nil {
				t.Fatal(err)
			}
			cfg := baseConfig(4, pol, 0.6)
			cfg.Warmup = 50
			cfg.Measure = 500
			var events []trace.Event
			cfg.Trace = trace.Func(func(e trace.Event) { events = append(events, e) })
			res := run(t, cfg)

			byReq := make(map[uint64][]trace.Event)
			for _, e := range events {
				byReq[e.ReqID] = append(byReq[e.ReqID], e)
			}
			if len(byReq) < res.Completed {
				t.Fatalf("traced %d requests, completed %d", len(byReq), res.Completed)
			}
			completed := 0
			for id, evs := range byReq {
				last := evs[len(evs)-1]
				if last.Phase != trace.PhaseComplete {
					continue // still in flight when the run stopped
				}
				completed++
				node := -2 // unassigned
				for i, e := range evs {
					if i == 0 {
						if e.Phase != trace.PhaseBalancerRecv {
							t.Fatalf("req %d: first phase %v, want balancer-recv", id, e.Phase)
						}
						continue
					}
					prev := evs[i-1]
					if e.Phase.Rank() <= prev.Phase.Rank() {
						t.Fatalf("req %d: %v after %v", id, e.Phase, prev.Phase)
					}
					if e.At < prev.At {
						t.Fatalf("req %d: time ran backwards at %v", id, e.Phase)
					}
					if e.Phase == trace.PhaseForward {
						node = e.Node
					} else if node != -2 && e.Node != node {
						t.Fatalf("req %d: forwarded to node %d, %v on node %d", id, node, e.Phase, e.Node)
					}
					if e.Phase == trace.PhaseArrive && e.At.Sub(prev.At) < cfg.Hop {
						t.Fatalf("req %d: hop %v shorter than configured %v", id, e.At.Sub(prev.At), cfg.Hop)
					}
				}
				if len(evs) != 6 {
					t.Fatalf("req %d: %d events, want the full 6-phase lifecycle", id, len(evs))
				}
			}
			if completed < res.Completed {
				t.Fatalf("%d fully traced completions for %d completed requests", completed, res.Completed)
			}
		})
	}
}

// checkHierLifecycles asserts, request by request, the full 8-phase
// hierarchical lifecycle: global-recv → global-forward → balancer-recv →
// forward → arrive → dispatch → start → complete, ranks strictly increasing,
// time never running backwards, the global-forward naming a real rack, the
// serving node inside that rack, and both hops at least as wide as
// configured. Returns the number of fully traced completions.
func checkHierLifecycles(t *testing.T, cfg Config, byReq map[uint64][]trace.Event) int {
	t.Helper()
	perRack := cfg.Nodes / cfg.Racks
	completed := 0
	for id, evs := range byReq {
		if evs[len(evs)-1].Phase != trace.PhaseComplete {
			continue // still in flight when the run stopped
		}
		completed++
		if evs[0].Phase != trace.PhaseGlobalRecv {
			t.Fatalf("req %d: first phase %v, want global-recv", id, evs[0].Phase)
		}
		rack, node := -1, -2 // unassigned
		for i, e := range evs {
			if i == 0 {
				continue
			}
			prev := evs[i-1]
			if e.Phase.Rank() <= prev.Phase.Rank() {
				t.Fatalf("req %d: %v after %v", id, e.Phase, prev.Phase)
			}
			if e.At < prev.At {
				t.Fatalf("req %d: time ran backwards at %v", id, e.Phase)
			}
			switch e.Phase {
			case trace.PhaseGlobalForward:
				rack = e.Node // Node carries the rack index on this phase
				if rack < 0 || rack >= cfg.Racks {
					t.Fatalf("req %d: global-forward to rack %d of %d", id, rack, cfg.Racks)
				}
			case trace.PhaseBalancerRecv:
				if hop := e.At.Sub(prev.At); hop < cfg.GlobalHop {
					t.Fatalf("req %d: global hop %v shorter than configured %v", id, hop, cfg.GlobalHop)
				}
			case trace.PhaseForward:
				node = e.Node
				if node < rack*perRack || node >= (rack+1)*perRack {
					t.Fatalf("req %d: rack %d forwarded to node %d outside [%d,%d)",
						id, rack, node, rack*perRack, (rack+1)*perRack)
				}
			case trace.PhaseArrive:
				if e.At.Sub(prev.At) < cfg.Hop {
					t.Fatalf("req %d: hop %v shorter than configured %v", id, e.At.Sub(prev.At), cfg.Hop)
				}
				fallthrough
			default:
				if node != -2 && e.Node != node {
					t.Fatalf("req %d: forwarded to node %d, %v on node %d", id, node, e.Phase, e.Node)
				}
			}
		}
		if len(evs) != 8 {
			t.Fatalf("req %d: %d events, want the full 8-phase lifecycle", id, len(evs))
		}
	}
	return completed
}

// checkHierSpanLegs asserts every tail span telescopes: the six legs between
// the eight hierarchical milestones sum exactly to the end-to-end latency,
// the added global leg is at least the configured global hop, the recorded
// rack matches the serving node, and WaitShare stays a fraction.
func checkHierSpanLegs(t *testing.T, cfg Config, spans []trace.Span) {
	t.Helper()
	perRack := cfg.Nodes / cfg.Racks
	for i, s := range spans {
		if !s.Completed() {
			t.Fatalf("tail span %d incomplete: %v", i, s)
		}
		if s.GlobalRecv == trace.Unset || s.GlobalForward == trace.Unset {
			t.Fatalf("tail span %d missing global milestones: %+v", i, s)
		}
		if s.Rack != s.Node/perRack {
			t.Fatalf("tail span %d: rack %d but node %d (per-rack %d)", i, s.Rack, s.Node, perRack)
		}
		if s.GlobalHopNs() < cfg.GlobalHop.Nanos() {
			t.Fatalf("tail span %d: global hop %.0fns < configured %.0fns", i, s.GlobalHopNs(), cfg.GlobalHop.Nanos())
		}
		legs := (s.GlobalForward.Sub(s.GlobalRecv).Nanos()) +
			s.GlobalHopNs() +
			(s.Forward.Sub(s.BalancerRecv).Nanos()) +
			s.HopNs() +
			s.QueueWaitNs() +
			s.ServiceNs()
		if diff := legs - s.TotalNs(); diff < -1e-6 || diff > 1e-6 {
			t.Fatalf("tail span %d: legs sum %.3fns != total %.3fns", i, legs, s.TotalNs())
		}
		if ws := s.WaitShare(); ws < 0 || ws > 1 {
			t.Fatalf("tail span %d: WaitShare %v outside [0,1]", i, ws)
		}
	}
}

// TestHierTraceCausality runs a traced two-tier cluster under every
// global×rack policy combination and asserts the 8-phase lifecycle is
// causally ordered across both hops: the global dispatch decision precedes
// the rack balancer's, each hop spans its configured latency, and the tail
// spans' legs still telescope to the end-to-end latency with the global leg
// added.
func TestHierTraceCausality(t *testing.T) {
	for _, globalName := range PolicyNames {
		for _, rackName := range PolicyNames {
			t.Run(globalName+"x"+rackName, func(t *testing.T) {
				gpol, err := PolicyByName(globalName)
				if err != nil {
					t.Fatal(err)
				}
				rpol, err := PolicyByName(rackName)
				if err != nil {
					t.Fatal(err)
				}
				cfg := baseConfig(4, rpol, 0.6)
				cfg.Racks = 2
				cfg.GlobalPolicy = gpol
				cfg.GlobalHop = 300 * sim.Nanosecond
				cfg.Warmup = 50
				cfg.Measure = 300
				cfg.TailSamples = 8
				var events []trace.Event
				cfg.Trace = trace.Func(func(e trace.Event) { events = append(events, e) })
				res := run(t, cfg)

				byReq := make(map[uint64][]trace.Event)
				for _, e := range events {
					byReq[e.ReqID] = append(byReq[e.ReqID], e)
				}
				if len(byReq) < res.Completed {
					t.Fatalf("traced %d requests, completed %d", len(byReq), res.Completed)
				}
				if completed := checkHierLifecycles(t, cfg, byReq); completed < res.Completed {
					t.Fatalf("%d fully traced completions for %d completed requests", completed, res.Completed)
				}
				checkHierSpanLegs(t, cfg, res.TailSpans)
			})
		}
	}
}

// TestHierShardedTraceCausality is the same 8-phase causality property on
// the racks-as-shards path: per-rack engines plus a global engine, trace
// events merged between global-hop-wide rounds, must still yield causally
// ordered lifecycles and telescoping span legs for every policy combination.
func TestHierShardedTraceCausality(t *testing.T) {
	for _, globalName := range PolicyNames {
		for _, rackName := range PolicyNames {
			t.Run(globalName+"x"+rackName, func(t *testing.T) {
				gpol, err := PolicyByName(globalName)
				if err != nil {
					t.Fatal(err)
				}
				rpol, err := PolicyByName(rackName)
				if err != nil {
					t.Fatal(err)
				}
				cfg := baseConfig(8, rpol, 0.6)
				cfg.Racks = 4
				cfg.Shards = 4
				cfg.GlobalPolicy = gpol
				cfg.GlobalHop = 300 * sim.Nanosecond
				cfg.Warmup = 50
				cfg.Measure = 400
				cfg.TailSamples = 8
				var events []trace.Event
				cfg.Trace = trace.Func(func(e trace.Event) { events = append(events, e) })
				res := run(t, cfg)

				byReq := make(map[uint64][]trace.Event)
				for _, e := range events {
					byReq[e.ReqID] = append(byReq[e.ReqID], e)
				}
				if completed := checkHierLifecycles(t, cfg, byReq); completed < res.Completed {
					t.Fatalf("%d fully traced completions for %d completed requests", completed, res.Completed)
				}
				checkHierSpanLegs(t, cfg, res.TailSpans)
			})
		}
	}
}

// TestShardedTraceCausality is the cross-shard causality property: the
// anatomy/trace path run on a *sharded* cluster — nodes split across
// parallel engines, trace events merged between hop-wide rounds — must
// still deliver, for every balancer policy, per-request lifecycles whose
// phases are causally ordered across the shard boundaries. Both views are
// checked: the merged event stream (full 6-phase lifecycle, ranks strictly
// increasing, time never running backwards, one serving node, hop-wide
// forward→arrive) and every TailSpan's milestone ranks
// (balancer-recv ≤ forward ≤ arrive ≤ dispatch ≤ start ≤ complete).
func TestShardedTraceCausality(t *testing.T) {
	for _, name := range PolicyNames {
		t.Run(name, func(t *testing.T) {
			pol, err := PolicyByName(name)
			if err != nil {
				t.Fatal(err)
			}
			cfg := baseConfig(8, pol, 0.6)
			cfg.Shards = 4
			cfg.Warmup = 50
			cfg.Measure = 800
			cfg.TailSamples = 16
			var events []trace.Event
			cfg.Trace = trace.Func(func(e trace.Event) { events = append(events, e) })
			res := run(t, cfg)

			byReq := make(map[uint64][]trace.Event)
			for _, e := range events {
				byReq[e.ReqID] = append(byReq[e.ReqID], e)
			}
			completed := 0
			for id, evs := range byReq {
				if evs[len(evs)-1].Phase != trace.PhaseComplete {
					continue // still in flight when the run stopped
				}
				completed++
				node := -2 // unassigned
				for i, e := range evs {
					if i == 0 {
						if e.Phase != trace.PhaseBalancerRecv {
							t.Fatalf("req %d: first phase %v, want balancer-recv", id, e.Phase)
						}
						continue
					}
					prev := evs[i-1]
					if e.Phase.Rank() <= prev.Phase.Rank() {
						t.Fatalf("req %d: %v after %v", id, e.Phase, prev.Phase)
					}
					if e.At < prev.At {
						t.Fatalf("req %d: time ran backwards at %v", id, e.Phase)
					}
					if e.Phase == trace.PhaseForward {
						node = e.Node
					} else if node != -2 && e.Node != node {
						t.Fatalf("req %d: forwarded to node %d, %v on node %d", id, node, e.Phase, e.Node)
					}
					if e.Phase == trace.PhaseArrive && e.At.Sub(prev.At) < cfg.Hop {
						t.Fatalf("req %d: hop %v shorter than configured %v", id, e.At.Sub(prev.At), cfg.Hop)
					}
				}
				if len(evs) != 6 {
					t.Fatalf("req %d: %d events, want the full 6-phase lifecycle", id, len(evs))
				}
			}
			if completed < res.Completed {
				t.Fatalf("%d fully traced completions for %d completed requests", completed, res.Completed)
			}

			if len(res.TailSpans) != cfg.TailSamples {
				t.Fatalf("tail spans = %d, want %d", len(res.TailSpans), cfg.TailSamples)
			}
			for i, s := range res.TailSpans {
				milestones := []struct {
					phase string
					at    sim.Time
				}{
					{"balancer-recv", s.BalancerRecv},
					{"forward", s.Forward},
					{"arrive", s.Arrive},
					{"dispatch", s.Dispatch},
					{"start", s.Start},
					{"complete", s.Complete},
				}
				for j, m := range milestones {
					if m.at == trace.Unset {
						t.Fatalf("tail span %d (req %d): %s unobserved", i, s.ReqID, m.phase)
					}
					if j > 0 && m.at < milestones[j-1].at {
						t.Fatalf("tail span %d (req %d): %s at %v before %s at %v — causality broke at a shard boundary",
							i, s.ReqID, m.phase, m.at, milestones[j-1].phase, milestones[j-1].at)
					}
				}
				if s.Node < 0 || s.Node >= cfg.Nodes {
					t.Fatalf("tail span %d: serving node %d of %d", i, s.Node, cfg.Nodes)
				}
				if s.HopNs() < cfg.Hop.Nanos() {
					t.Fatalf("tail span %d: hop %.0fns < configured %.0fns", i, s.HopNs(), cfg.Hop.Nanos())
				}
			}
		})
	}
}

// TestClusterTailSpans checks tail capture end to end: exactly K spans,
// slowest first, all completed, hops spliced in.
func TestClusterTailSpans(t *testing.T) {
	cfg := baseConfig(4, JSQ{D: 2}, 0.7)
	cfg.Warmup = 50
	cfg.Measure = 1000
	cfg.TailSamples = 8
	res := run(t, cfg)
	if len(res.TailSpans) != 8 {
		t.Fatalf("tail spans = %d, want 8", len(res.TailSpans))
	}
	for i, s := range res.TailSpans {
		if !s.Completed() {
			t.Fatalf("tail span %d incomplete: %v", i, s)
		}
		if s.BalancerRecv == trace.Unset || s.Forward == trace.Unset {
			t.Fatalf("tail span %d missing balancer hops: %+v", i, s)
		}
		if s.Node < 0 || s.Node >= cfg.Nodes {
			t.Fatalf("tail span %d node %d", i, s.Node)
		}
		if s.HopNs() < cfg.Hop.Nanos() {
			t.Fatalf("tail span %d hop %.0fns < configured %.0fns", i, s.HopNs(), cfg.Hop.Nanos())
		}
		if i > 0 && s.TotalNs() > res.TailSpans[i-1].TotalNs() {
			t.Fatal("tail spans not slowest-first")
		}
	}
	// The slowest span must be at least as slow as the measured p99: the
	// tail sampler saw every request, the summary only the window.
	if res.TailSpans[0].TotalNs() < res.Latency.P99 {
		t.Fatalf("slowest span %.0fns below p99 %.0fns", res.TailSpans[0].TotalNs(), res.Latency.P99)
	}
}

// TestClusterTraceSampling: sampling thins the user stream without touching
// results or the tail.
func TestClusterTraceSampling(t *testing.T) {
	cfg := baseConfig(2, Random{}, 0.5)
	cfg.Warmup = 20
	cfg.Measure = 400
	cfg.TailSamples = 4

	full := run(t, cfg)

	var sampled int
	cfg.TraceSample = 8
	cfg.Trace = trace.Func(func(e trace.Event) {
		if e.ReqID%8 != 0 {
			t.Fatalf("sampled stream leaked req %d", e.ReqID)
		}
		sampled++
	})
	got := run(t, cfg)
	if sampled == 0 {
		t.Fatal("sampling recorded nothing")
	}
	if got.Latency != full.Latency {
		t.Fatal("tracing perturbed the measured latency stream")
	}
	if len(got.TailSpans) != len(full.TailSpans) {
		t.Fatal("sampling changed the tail set size")
	}
	for i := range got.TailSpans {
		if got.TailSpans[i] != full.TailSpans[i] {
			t.Fatalf("sampling changed tail span %d", i)
		}
	}
}

// TestClusterTracingOffIsByteIdentical: enabling then disabling tracing must
// leave the result stream untouched.
func TestClusterTracingOffIsByteIdentical(t *testing.T) {
	cfg := baseConfig(2, &RoundRobin{}, 0.6)
	cfg.Warmup = 20
	cfg.Measure = 400
	plain := run(t, cfg)

	cfg.Policy = cfg.Policy.Clone() // RoundRobin carries rotation state
	cfg.TailSamples = 16
	cfg.Trace = trace.Func(func(trace.Event) {})
	traced := run(t, cfg)
	if plain.Latency != traced.Latency || plain.ThroughputMRPS != traced.ThroughputMRPS {
		t.Fatal("tracing changed the simulation")
	}
}
