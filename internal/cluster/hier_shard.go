package cluster

// Sharded hierarchical execution: the conservative parallel-DES path behind
// Config.Racks >= 1 with Config.Shards > 1. The shards *are* the racks —
// the PDES partition aligns with the topology's natural boundary: each rack
// balancer plus its machines runs on one private engine, the global balancer
// (arrival stream, global tier, metrics recorder) on one more, and
// internal/sim/pdes advances them in rounds exactly one GlobalHop wide.
// GlobalHop is the conservative lookahead: every cross-shard effect
// (global→rack routing, rack→global completion notification) is charged one
// global hop, while the rack-internal balancer→node hop never crosses a
// shard and needs no lookahead at all.
//
// Determinism mirrors shard.go: cross-shard messages merge by (timestamp,
// datacenter-wide request id), trace events flush per round sorted by
// (At, ReqID, phase rank), and RNG streams split off the root in the same
// order as runHier. Semantics vs the serial hierarchical engine: the global
// tier learns of completions one GlobalHop late (the notification crosses
// the fabric back), exactly the feedback-latency delta the flat sharded
// path has at the node hop. Per-request latency is still global-ingress →
// handler-completion.

import (
	"fmt"
	"sort"

	"rpcvalet/internal/arrival"
	"rpcvalet/internal/machine"
	"rpcvalet/internal/metrics"
	"rpcvalet/internal/rng"
	"rpcvalet/internal/sim"
	"rpcvalet/internal/sim/pdes"
	"rpcvalet/internal/trace"
)

// routeMsg is a global→rack routed RPC; the rack balancer sees it one
// GlobalHop after the global tier forwarded it.
type routeMsg struct {
	id   uint64
	sent sim.Time // global ingress, the latency epoch
}

// hdoneMsg is a rack→global completion notification; the global tier's view
// learns of the drain one GlobalHop after the handler finished.
type hdoneMsg struct {
	rack     int
	node     int
	sent     sim.Time
	measured bool
}

// rackShard is one rack — balancer tier plus machines — on a private engine.
type rackShard struct {
	eng    *sim.Engine
	t      *tier
	rack   int
	start  int
	size   int
	pauses []machine.Pause
	buf    []trace.Event          // this round's trace events
	done   pdes.Mailbox[hdoneMsg] // this round's completions
	pool   []*hierShardReq
	err    error // rack-local failure, surfaced at the next exchange
}

// hierShardReq is the pooled per-request tracker on the sharded
// hierarchical path, alive from route delivery through node completion.
type hierShardReq struct {
	id   uint64
	node int
	sent sim.Time
	sh   *rackShard
}

// hdoneEvt is the global-side pooled tracker for one completion
// notification between exchange and delivery.
type hdoneEvt struct {
	at sim.Time
	d  hdoneMsg
}

func runHierSharded(cfg Config) (Result, error) {
	var tail *trace.TailSampler
	if cfg.TailSamples > 0 {
		tail = trace.NewTailSampler(cfg.TailSamples)
	}
	sampleN := uint64(1)
	if cfg.TraceSample > 1 {
		sampleN = uint64(cfg.TraceSample)
	}
	tracing := cfg.Trace != nil || tail != nil

	// Seed derivation order is identical to runHier, so every stream is the
	// same whether the racks share one clock or run one per goroutine.
	root := rng.New(cfg.Seed)
	arrRNG := root.Split()
	rackRNG := make([]*rng.Source, cfg.Racks)
	for r := range rackRNG {
		rackRNG[r] = root.Split()
	}

	size, start := rackGeometry(cfg)
	faultByNode, balPauses, rackLabel := hierFaults(cfg, size, start)

	shards := make([]*rackShard, cfg.Racks)
	rackOf := make([]int, cfg.Nodes)
	for r := range shards {
		pol := cfg.Policy
		if r > 0 {
			pol = cfg.Policy.Clone()
		}
		shards[r] = &rackShard{
			eng:    sim.New(),
			rack:   r,
			start:  start[r],
			size:   size[r],
			pauses: balPauses[r],
		}
		shards[r].t = newTier(pol, rackRNG[r], size[r], cfg.SampleEvery == 0)
		shards[r].t.scheduleRefresh(shards[r].eng, cfg.SampleEvery)
		for i := start[r]; i < start[r]+size[r]; i++ {
			rackOf[i] = r
		}
	}
	nodes := make([]*machine.Machine, cfg.Nodes)
	tracers := make([]*nodeTracer, cfg.Nodes)
	for i := range nodes {
		ncfg := cfg.Node
		ncfg.Seed = root.Split().Uint64()
		ncfg.Epoch = cfg.Epoch
		ncfg.MaxEpochs = cfg.MaxEpochs
		if len(cfg.NodePlans) > 0 && cfg.NodePlans[i] != nil {
			ncfg.Params.Plan = cfg.NodePlans[i]
		}
		ncfg.Slowdown = faultByNode[i].Slowdown
		ncfg.Pauses = faultByNode[i].Pauses
		sh := shards[rackOf[i]]
		if tracing {
			tracers[i] = &nodeTracer{node: i, emit: func(e trace.Event) { sh.buf = append(sh.buf, e) }}
			ncfg.Trace = tracers[i]
			ncfg.TraceSample = 0 // sampling happens on cluster IDs at flush
			ncfg.TailSamples = 0 // the cluster-level tail splices the hops in
		}
		m, err := machine.NewShared(ncfg, sh.eng)
		if err != nil {
			return Result{}, fmt.Errorf("cluster: node %d: %w", i, err)
		}
		nodes[i] = m
	}
	globalRNG := root.Split()

	// The global shard: arrival stream, global tier over the racks (live
	// accounting only — validation rejects a scraping global view here,
	// since no engine's state may be read mid-round), metrics recorder.
	beng := sim.New()
	var bbuf []trace.Event
	g := newTier(cfg.GlobalPolicy, globalRNG, cfg.Racks, true)
	route := make([]*pdes.Mailbox[routeMsg], cfg.Racks)
	for r := range route {
		route[r] = &pdes.Mailbox[routeMsg]{}
	}

	var (
		completed     int
		totalOut      int // dispatched and not yet *known* complete
		nodeCompleted = make([]int, cfg.Nodes)
		rackCompleted = make([]int, cfg.Racks)
		target        = cfg.Warmup + cfg.Measure
		timedOut      bool
		halt          bool
		runErr        error
	)
	rec := metrics.NewRecorder(metrics.Config{EpochNanos: cfg.Epoch.Nanos(), MaxEpochs: cfg.MaxEpochs, Expect: cfg.Measure})
	stop := func() {
		halt = true
		beng.Stop()
	}
	if cfg.MaxSimTime > 0 {
		beng.Schedule(cfg.MaxSimTime, func() {
			timedOut = true
			stop()
		})
	}

	gaps := arrival.NewBatch(arrival.Resolve(cfg.Arrival, cfg.RateMRPS), arrRNG, 0)
	var seq uint64 // datacenter-wide request sequence number
	var arrive func()
	arrive = func() {
		id := seq
		seq++
		r := 0
		if g.pol != nil {
			r = g.pick()
			if r < 0 || r >= cfg.Racks {
				runErr = fmt.Errorf("cluster: global policy %s picked rack %d of %d", g.pol, r, cfg.Racks)
				stop()
				return
			}
		}
		if tracing {
			now := beng.Now()
			bbuf = append(bbuf,
				trace.Event{ReqID: id, Phase: trace.PhaseGlobalRecv, At: now, Core: -1, Node: -1, Depth: totalOut},
				trace.Event{ReqID: id, Phase: trace.PhaseGlobalForward, At: now, Core: -1, Node: r, Depth: g.depth(r)})
		}
		g.dispatched(r)
		totalOut++
		sent := beng.Now()
		route[r].Send(sent.Add(cfg.GlobalHop), id, routeMsg{id: id, sent: sent})
		beng.Schedule(gaps.Next(), arrive)
	}
	beng.Schedule(gaps.Next(), arrive)

	// deliver applies one completion notification on the global shard at
	// notification time `at`; the handler finished one GlobalHop earlier,
	// and the measurement stream is stamped with that completion time so
	// latency and epoch slicing match the serial definitions.
	deliver := func(at sim.Time, d hdoneMsg) {
		c := at.Add(-cfg.GlobalHop)
		g.completed(d.rack)
		totalOut--
		completed++
		nodeCompleted[d.node]++
		rackCompleted[d.rack]++
		if completed == cfg.Warmup+1 {
			rec.OpenWindow(c)
		}
		rec.Complete(c, metrics.Completion{
			Class:     -1,
			Measured:  d.measured,
			LatencyNs: c.Sub(d.sent).Nanos(),
			WaitNs:    -1,
			ServiceNs: -1,
			Depth:     totalOut,
		})
		if completed >= target {
			rec.CloseWindow(c)
			stop()
		}
	}

	// Per-request callbacks, bound once. recvFn is the rack balancer on the
	// rack's own engine: it handles a frozen balancer (rack-scoped pause)
	// by deferring itself to the window's end, then picks a node and runs
	// the rack-internal hop entirely intra-shard.
	var nodeDoneFn func(arg any, class int, measured bool)
	nodeDoneFn = func(arg any, _ int, measured bool) {
		q := arg.(*hierShardReq)
		sh := q.sh
		sh.done.Send(sh.eng.Now().Add(cfg.GlobalHop), q.id,
			hdoneMsg{rack: sh.rack, node: q.node, sent: q.sent, measured: measured})
		sh.pool = append(sh.pool, q)
	}
	hopFn := func(arg any) {
		q := arg.(*hierShardReq)
		if tracing {
			// The machine numbers this inject len(ids); remember its
			// cluster-wide identity at that index.
			tracers[q.node].ids = append(tracers[q.node].ids, q.id)
		}
		nodes[q.node].InjectArg(nodeDoneFn, q)
	}
	var recvFn func(arg any)
	recvFn = func(arg any) {
		q := arg.(*hierShardReq)
		sh := q.sh
		if stall := machine.PauseStall(sh.pauses, sh.eng.Now()); stall > 0 {
			sh.eng.ScheduleArg(stall, recvFn, q)
			return
		}
		local := sh.t.pick()
		if local < 0 || local >= sh.size {
			sh.err = fmt.Errorf("cluster: policy %s picked node %d of %d in rack %d", sh.t.pol, local, sh.size, sh.rack)
			sh.eng.Stop()
			return
		}
		q.node = sh.start + local
		if tracing {
			now := sh.eng.Now()
			sh.buf = append(sh.buf,
				trace.Event{ReqID: q.id, Phase: trace.PhaseBalancerRecv, At: now, Core: -1, Node: -1, Depth: sh.t.aggregate()},
				trace.Event{ReqID: q.id, Phase: trace.PhaseForward, At: now, Core: -1, Node: q.node, Depth: sh.t.depth(local)})
		}
		sh.t.dispatched(local)
		sh.eng.ScheduleArg(cfg.Hop, hopFn, q)
	}

	var (
		routeScratch []pdes.Msg[routeMsg]
		doneScratch  []pdes.Msg[hdoneMsg]
		doneBoxes    = make([]*pdes.Mailbox[hdoneMsg], cfg.Racks)
		evScratch    []trace.Event
		donePool     []*hdoneEvt
	)
	for r, sh := range shards {
		doneBoxes[r] = &sh.done
	}
	deliverFn := func(arg any) {
		e := arg.(*hdoneEvt)
		deliver(e.at, e.d)
		donePool = append(donePool, e)
	}

	// exchange runs single-threaded between rounds: deliver the round's
	// cross-shard messages in (At, request id) order and flush its trace
	// events in (At, ReqID, phase-rank) order — both partition-independent.
	exchange := func(deadline sim.Time) bool {
		for r, sh := range shards {
			if sh.err != nil && runErr == nil {
				runErr = sh.err
			}
			routeScratch = pdes.Gather(routeScratch, route[r])
			for _, m := range routeScratch {
				var q *hierShardReq
				if np := len(sh.pool); np > 0 {
					q = sh.pool[np-1]
					sh.pool = sh.pool[:np-1]
				} else {
					q = &hierShardReq{sh: sh}
				}
				q.id, q.node, q.sent = m.Payload.id, -1, m.Payload.sent
				sh.eng.ScheduleArgAt(m.At, recvFn, q)
			}
		}
		doneScratch = pdes.Gather(doneScratch, doneBoxes...)
		for _, m := range doneScratch {
			var e *hdoneEvt
			if np := len(donePool); np > 0 {
				e = donePool[np-1]
				donePool = donePool[:np-1]
			} else {
				e = &hdoneEvt{}
			}
			e.at, e.d = m.At, m.Payload
			beng.ScheduleArgAt(m.At, deliverFn, e)
		}
		if tracing {
			evScratch = append(evScratch[:0], bbuf...)
			bbuf = bbuf[:0]
			for _, sh := range shards {
				evScratch = append(evScratch, sh.buf...)
				sh.buf = sh.buf[:0]
			}
			sort.Slice(evScratch, func(i, j int) bool {
				a, b := evScratch[i], evScratch[j]
				if a.At != b.At {
					return a.At < b.At
				}
				if a.ReqID != b.ReqID {
					return a.ReqID < b.ReqID
				}
				return a.Phase.Rank() < b.Phase.Rank()
			})
			for _, e := range evScratch {
				if tail != nil {
					tail.Record(e)
				}
				if cfg.Trace != nil && e.ReqID%sampleN == 0 {
					cfg.Trace.Record(e)
				}
			}
		}
		return !halt && runErr == nil
	}

	rounds := make([]pdes.RoundFunc, 0, cfg.Racks+1)
	for _, sh := range shards {
		rounds = append(rounds, func(d sim.Time) { sh.eng.RunUntil(d) })
	}
	rounds = append(rounds, func(d sim.Time) { beng.RunUntil(d) })
	pdes.Run(cfg.GlobalHop, rounds, exchange)
	if runErr != nil {
		return Result{}, runErr
	}
	res := assemble(cfg, rec, tail, nodes, faultByNode, nodeCompleted, completed, timedOut)
	return hierResult(res, cfg, rackCompleted, rackLabel), nil
}
