// Package cluster simulates a rack of RPCValet servers behind a
// cluster-level load balancer: N independent per-node machine models
// (internal/machine) sharing one virtual clock (internal/sim), fed by an
// aggregate open-loop arrival stream (Poisson by default; any
// arrival.Process via Config.Arrival) that a front-end Policy routes node by
// node.
//
// The paper balances µs-scale RPCs across the cores of one server; this
// package composes that intra-node dispatch (16×1 / 4×4 / 1×16) with
// inter-node policy (random / round-robin / JSQ(d) / bounded-load), so
// experiments can show where cluster-level imbalance re-creates the
// single-node partitioned pathology one level up — and how much a
// queue-aware front end recovers. Every routed RPC is charged a configurable
// network hop before the chosen node's NI sees the message, and the
// balancer's queue-depth view can be delayed (periodic sampling) to model
// stale telemetry.
package cluster

import (
	"fmt"
	"strconv"
	"strings"

	"rpcvalet/internal/arrival"
	"rpcvalet/internal/machine"
	"rpcvalet/internal/metrics"
	"rpcvalet/internal/rng"
	"rpcvalet/internal/sim"
	"rpcvalet/internal/stats"
	"rpcvalet/internal/trace"
)

// Config describes one cluster simulation.
type Config struct {
	// Nodes is the number of servers behind the balancer.
	Nodes int
	// Node is the per-node machine template: architecture, NI dispatch
	// plan, and workload. Its RateMRPS/Warmup/Measure/Seed fields are
	// ignored — the cluster generates the traffic and the measurements.
	Node machine.Config
	// NodePlans, when non-empty, overrides the template's dispatch plan
	// node by node (length must equal Nodes; nil entries keep the
	// template's plan). This is how heterogeneous racks are built — e.g.
	// half the nodes running RPCValet 1×16, half the RSS baseline —
	// without duplicating the rest of the machine template.
	NodePlans []*machine.Plan
	// Policy routes each arriving RPC to a node. See PolicyByName.
	Policy Policy
	// RateMRPS is the aggregate offered load across the whole cluster, in
	// millions of requests per second.
	RateMRPS float64
	// Arrival, when non-nil, selects the traffic model of the aggregate
	// stream; it is re-rated to RateMRPS (shape preserved). Nil means
	// Poisson at RateMRPS — the historical behavior, byte-for-byte
	// identical result streams for existing seeds.
	Arrival arrival.Process
	// Hop is the one-way balancer→node network latency charged to every
	// RPC before the chosen node's NI sees the message.
	Hop sim.Duration
	// SampleEvery is the period at which the balancer refreshes its
	// per-node queue-depth view. Zero means a live (zero-staleness) view.
	SampleEvery sim.Duration
	Warmup      int // completions discarded before measuring
	Measure     int // completions measured
	Seed        uint64
	// MaxSimTime aborts the run after this much virtual time (0 = none).
	MaxSimTime sim.Duration
	// Faults injects per-node degradation — service slowdown factors and
	// pause windows — without touching the healthy nodes' result streams.
	// See NodeFault and ParseFaults.
	Faults []NodeFault
	// Epoch sets the Result timelines' initial epoch length; 0 uses the
	// metrics default (1 µs, doubling as the run outgrows it). MaxEpochs
	// bounds the timelines' slice count (0 = metrics default, 64).
	Epoch     sim.Duration
	MaxEpochs int
	// Trace, when non-nil, receives the cluster-wide lifecycle stream:
	// the balancer's hop milestones (balancer-recv, forward) plus every
	// node's machine events, with request IDs remapped to cluster-wide
	// sequence numbers and the serving node stamped on each event — one
	// causally ordered stream per request across the whole rack.
	Trace trace.Recorder
	// TraceSample records only every Nth request (by cluster sequence
	// number) to Trace; 0 and 1 both mean every request. Sampling gates
	// Trace only, never the tail sampler.
	TraceSample int
	// TailSamples, when positive, retains the K slowest requests
	// (end-to-end, hop included) on Result.TailSpans with full span
	// breakdowns. Passive: healthy result streams stay byte-identical.
	TailSamples int
	// Shards splits the simulation across parallel event engines: the
	// node set is partitioned into Shards contiguous groups, each with its
	// own clock and goroutine, plus the balancer on its own shard, all
	// synchronized conservatively in Hop-wide rounds (internal/sim/pdes).
	// 0 and 1 run the historical single-engine path, byte-identical to
	// every pinned result. Shards > 1 requires Hop > 0 (the lookahead) and
	// is clamped to Nodes; it changes when the balancer *learns* of
	// completions (one hop later — the notification crosses the network
	// back) but is itself deterministic: a fixed (Seed, Shards>1) pair
	// reproduces the identical Result at any shard count ≥ 2.
	//
	// On a hierarchical run (Racks > 0) the shards are the racks: any
	// Shards > 1 runs one engine per rack plus the global balancer's, with
	// GlobalHop as the conservative lookahead (so it must be positive),
	// and the rack-internal hop stays intra-shard. See hier_shard.go.
	Shards int

	// Racks arranges the cluster as a two-tier datacenter: a global
	// balancer dispatching over Racks rack balancers, each running the
	// full flat-cluster machinery (policy, depth index, staleness, faults,
	// traces) over its contiguous slice of the node set. 0 means the
	// historical flat topology — one balancer in front of every node —
	// and is byte-identical to every pinned result. Racks = 1 with
	// GlobalHop = 0 is the degenerate hierarchy: one rack behind a
	// pass-through global tier, byte-identical to the flat cluster (the
	// pin suite enforces it).
	Racks int
	// RackNodes, when non-empty, sizes each rack explicitly (length must
	// equal Racks, entries positive, sum = Nodes). Empty means an even
	// partition, which then requires Racks to divide Nodes.
	RackNodes []int
	// GlobalPolicy routes each arriving RPC to a rack; the rack's own
	// Policy then picks the node. Any Policy works — the global tier sees
	// each rack as one endpoint whose depth is the rack balancer's
	// aggregate outstanding. Required for Racks >= 2; with Racks = 1 it
	// may be nil (every request goes to the only rack, no RNG drawn).
	GlobalPolicy Policy
	// GlobalHop is the one-way global→rack-balancer network latency
	// charged before the rack balancer sees the request. The return
	// completion notification is charged symmetrically on the sharded
	// path, which uses GlobalHop as its lookahead window.
	GlobalHop sim.Duration
	// GlobalSampleEvery is the period at which the global balancer scrapes
	// each rack balancer's published aggregate depth. Zero means a live
	// view of its own dispatch/completion accounting. Serial runs only
	// (Shards <= 1): a sharded global tier cannot scrape engines mid-round.
	GlobalSampleEvery sim.Duration
}

// NodeFault assigns one node — or, with Rack set, one whole rack — a
// machine-level fault: a service-time slowdown and/or stall windows. Nodes
// without an entry stay healthy. A rack-scoped fault (hierarchical runs
// only) applies the fault to every node in the rack, and additionally stalls
// the rack *balancer* itself through the fault's pause windows: requests
// reaching a paused rack balancer wait for the window to end before a node
// is picked.
type NodeFault struct {
	Node     int     // node index, or rack index when Rack is set
	Rack     bool    // scope Node as a rack index (needs Config.Racks >= 1)
	Slowdown float64 // handler service-time multiplier (0 or 1 = none)
	Pauses   []machine.Pause
}

func (f NodeFault) String() string {
	scope := ""
	if f.Rack {
		scope = "rack"
	}
	return fmt.Sprintf("%s%d:%s", scope, f.Node, machine.Fault{Slowdown: f.Slowdown, Pauses: f.Pauses})
}

// ParseFaults parses the -degrade grammar: a semicolon-separated list of
// SCOPE:FAULT entries, each scope a node index ("3") or a rack index
// ("rack2"), each fault a comma-separated mix of "x<factor>" slowdowns and
// "pause@START+DUR" windows — e.g. "0:x1.5",
// "0:x2,pause@1ms+200us;3:pause@500us+100us", or "rack0:pause@1ms+500us".
func ParseFaults(spec string) ([]NodeFault, error) {
	var out []NodeFault
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		nodeStr, faultStr, ok := strings.Cut(entry, ":")
		if !ok {
			return nil, fmt.Errorf("cluster: bad fault entry %q (want NODE:FAULT or rackR:FAULT)", entry)
		}
		nodeStr = strings.TrimSpace(nodeStr)
		rack := false
		if rest, found := strings.CutPrefix(nodeStr, "rack"); found {
			rack = true
			nodeStr = rest
		}
		node, err := strconv.Atoi(nodeStr)
		if err != nil || node < 0 {
			if rack {
				return nil, fmt.Errorf("cluster: bad fault rack %q", "rack"+nodeStr)
			}
			return nil, fmt.Errorf("cluster: bad fault node %q", nodeStr)
		}
		f, err := machine.ParseFault(faultStr)
		if err != nil {
			return nil, err
		}
		out = append(out, NodeFault{Node: node, Rack: rack, Slowdown: f.Slowdown, Pauses: f.Pauses})
	}
	return out, nil
}

// Hierarchical reports whether the config describes a two-tier topology
// (Racks >= 1) rather than the flat single-balancer cluster.
func (c Config) Hierarchical() bool { return c.Racks > 0 }

func (c Config) validate() error {
	switch {
	case c.Nodes <= 0:
		return fmt.Errorf("cluster: need at least one node, got %d", c.Nodes)
	case c.Policy == nil:
		return fmt.Errorf("cluster: nil policy")
	case !(c.RateMRPS > 0):
		return fmt.Errorf("cluster: rate %v MRPS must be positive", c.RateMRPS)
	case c.Measure <= 0:
		return fmt.Errorf("cluster: Measure must be positive")
	case c.Warmup < 0:
		return fmt.Errorf("cluster: negative warmup")
	case c.Hop < 0:
		return fmt.Errorf("cluster: negative hop latency")
	case c.SampleEvery < 0:
		return fmt.Errorf("cluster: negative sampling period")
	case len(c.NodePlans) != 0 && len(c.NodePlans) != c.Nodes:
		return fmt.Errorf("cluster: %d per-node plans for %d nodes", len(c.NodePlans), c.Nodes)
	case c.Epoch < 0:
		return fmt.Errorf("cluster: negative epoch length")
	case c.MaxEpochs < 0:
		return fmt.Errorf("cluster: negative epoch bound")
	case c.Shards < 0:
		return fmt.Errorf("cluster: negative shard count %d", c.Shards)
	case c.Shards > 1 && !c.Hierarchical() && c.Hop <= 0:
		return fmt.Errorf("cluster: Shards=%d needs a positive Hop (the conservative lookahead window)", c.Shards)
	case c.Racks < 0:
		return fmt.Errorf("cluster: negative rack count %d", c.Racks)
	case c.Racks > c.Nodes:
		return fmt.Errorf("cluster: %d racks for %d nodes", c.Racks, c.Nodes)
	case !c.Hierarchical() && (c.GlobalPolicy != nil || c.GlobalHop != 0 || c.GlobalSampleEvery != 0 || len(c.RackNodes) != 0):
		return fmt.Errorf("cluster: global-tier fields (GlobalPolicy/GlobalHop/GlobalSampleEvery/RackNodes) need Racks >= 1")
	case c.GlobalHop < 0:
		return fmt.Errorf("cluster: negative global hop latency")
	case c.GlobalSampleEvery < 0:
		return fmt.Errorf("cluster: negative global sampling period")
	case c.Racks >= 2 && c.GlobalPolicy == nil:
		return fmt.Errorf("cluster: Racks=%d needs a GlobalPolicy to pick racks", c.Racks)
	case len(c.RackNodes) != 0 && len(c.RackNodes) != c.Racks:
		return fmt.Errorf("cluster: %d rack sizes for %d racks", len(c.RackNodes), c.Racks)
	case c.Hierarchical() && len(c.RackNodes) == 0 && c.Nodes%c.Racks != 0:
		return fmt.Errorf("cluster: %d nodes do not evenly partition into %d racks (size them with RackNodes)", c.Nodes, c.Racks)
	case c.Hierarchical() && c.Shards > 1 && c.GlobalHop <= 0:
		return fmt.Errorf("cluster: hierarchical Shards=%d needs a positive GlobalHop (the conservative lookahead window)", c.Shards)
	case c.Hierarchical() && c.Shards > 1 && c.GlobalSampleEvery > 0:
		return fmt.Errorf("cluster: hierarchical Shards>1 cannot scrape rack aggregates (GlobalSampleEvery must be 0)")
	}
	if len(c.RackNodes) != 0 {
		sum := 0
		for r, n := range c.RackNodes {
			if n <= 0 {
				return fmt.Errorf("cluster: rack %d sized %d nodes", r, n)
			}
			sum += n
		}
		if sum != c.Nodes {
			return fmt.Errorf("cluster: RackNodes sum %d for %d nodes", sum, c.Nodes)
		}
	}
	for _, f := range c.Faults {
		if f.Rack {
			if !c.Hierarchical() {
				return fmt.Errorf("cluster: rack-scoped fault %s needs Racks >= 1", f)
			}
			if f.Node < 0 || f.Node >= c.Racks {
				return fmt.Errorf("cluster: fault for rack %d of %d", f.Node, c.Racks)
			}
		} else if f.Node < 0 || f.Node >= c.Nodes {
			return fmt.Errorf("cluster: fault for node %d of %d", f.Node, c.Nodes)
		}
		if f.Slowdown < 0 {
			return fmt.Errorf("cluster: node %d negative slowdown %g", f.Node, f.Slowdown)
		}
	}
	return nil
}

// Result is the measured outcome of one cluster run.
type Result struct {
	Policy   string
	Nodes    int
	RateMRPS float64
	Seed     uint64

	// Racks and GlobalPolicy echo the two-tier topology of a hierarchical
	// run (0 and "" on the flat cluster). RackCompleted counts completions
	// per rack — the global balancer's routing fingerprint — and
	// RackFaults labels each rack's rack-scoped degradation ("healthy"
	// otherwise). All nil/zero on flat runs.
	Racks         int
	GlobalPolicy  string
	RackCompleted []int
	RackFaults    []string

	// Latency is end-to-end: balancer ingress → handler completion,
	// including the network hop, for latency-measured classes only. Ns.
	Latency        stats.Summary
	ThroughputMRPS float64 // measured cluster-wide completion rate

	// NodeCompleted counts completions per node over the whole run; the
	// spread is the balancer's arrival-imbalance fingerprint.
	NodeCompleted []int
	// Imbalance is max/mean of NodeCompleted — 1.0 is perfectly even.
	Imbalance float64
	// NodeUtilization is each node's mean core busy fraction.
	NodeUtilization []float64
	// NodeDispatch names each node's resolved dispatch plan — uniform
	// racks repeat one label; heterogeneous racks show the mix.
	NodeDispatch []string
	// NodeFaults labels each node's injected degradation ("healthy",
	// "x1.5", "pause@1ms+200us", ...).
	NodeFaults []string

	SLONanos float64 // workload SLO (absolute, or factor × estimated S̄)
	MeetsSLO bool

	Completed int
	TimedOut  bool

	// Timeline is the balancer's epoch-sliced view of the whole run:
	// per-epoch cluster throughput, end-to-end latency, and total
	// outstanding RPCs. NodeTimelines are the per-node recorders' views
	// (node-local latency, queue depth, core utilization), index-aligned
	// with NodeCompleted.
	Timeline      metrics.Timeline
	NodeTimelines []metrics.Timeline

	// TailSpans holds the Config.TailSamples slowest requests of the run,
	// slowest first, spans spliced across the balancer hop and the serving
	// node (balancer-recv → forward → arrive → dispatch → start →
	// complete). Nil unless TailSamples was set.
	TailSpans []trace.Span
}

func (r Result) String() string {
	return fmt.Sprintf("%s×%d @%.2fMRPS: thr=%.2fMRPS p99=%.0fns imbalance=%.2f",
		r.Policy, r.Nodes, r.RateMRPS, r.ThroughputMRPS, r.Latency.P99, r.Imbalance)
}

// view is the balancer's depth view over the node set. The balancer always
// knows its own dispatches the instant it makes them (they happen here), so
// Depth counts RPCs dispatched to a node and not yet known to be complete.
// What staleness delays is the *completion* side: with a nonzero sampling
// period, drains are only reflected at the periodic refresh, while new
// dispatches keep counting live — the herding a delayed-feedback balancer
// actually exhibits.
type view struct {
	live        bool
	outstanding []int // truth: dispatched minus completed
	stale       []int // outstanding as of the last refresh
	sent        []int // dispatches since the last refresh (always known)
	// idx mirrors Depth as an incremental per-depth bitmap index (index.go)
	// so the whole-cluster policies decide in O(N/64) instead of O(N). Every
	// mutation below keeps it in sync with the *visible* depths: dispatches
	// always count immediately, completions only on a live view (a stale
	// view learns of drains at the periodic snapshot, which rebuilds).
	idx *depthIndex
}

func newView(nodes int, live bool) *view {
	v := &view{live: live, outstanding: make([]int, nodes), idx: newDepthIndex(nodes)}
	if !live {
		v.stale = make([]int, nodes)
		v.sent = make([]int, nodes)
	}
	return v
}

func (v *view) Nodes() int { return len(v.outstanding) }

func (v *view) Depth(i int) int {
	if v.live {
		return v.outstanding[i]
	}
	return v.stale[i] + v.sent[i]
}

// index implements depthIndexed (policy.go), handing the whole-cluster
// policies the fast decision path.
func (v *view) index() *depthIndex { return v.idx }

func (v *view) dispatched(i int) {
	v.outstanding[i]++
	if !v.live {
		v.sent[i]++
	}
	v.idx.inc(i)
}

func (v *view) completed(i int) {
	v.outstanding[i]--
	if v.live {
		v.idx.dec(i)
	}
}

func (v *view) snapshot() {
	copy(v.stale, v.outstanding)
	for i := range v.sent {
		v.sent[i] = 0
	}
	// Post-snapshot the visible depth of every node is exactly outstanding
	// (stale == outstanding, sent == 0).
	v.idx.rebuild(v.outstanding)
}

// snapshotFrom refreshes the stale view from an external depth source — the
// global tier scraping each rack balancer's published aggregate — instead of
// the view's own outstanding accounting. Dispatches since the scrape keep
// counting live through sent, as in snapshot.
func (v *view) snapshotFrom(depth func(i int) int) {
	for i := range v.stale {
		v.stale[i] = depth(i)
		v.sent[i] = 0
	}
	v.idx.rebuild(v.stale)
}

// clusterReq is the balancer's pooled per-request tracker: it carries one
// RPC's identity through the hop event and its completion callback, then
// returns to the free-list (the completion callback is its last reader).
type clusterReq struct {
	id   uint64
	node int
	sent sim.Time
}

// nodeTracer adapts one node's machine-internal trace stream to the
// cluster-wide view: machines number injected requests 0,1,2,... in inject
// order, so the cluster appends each request's cluster-wide sequence number
// to ids at inject time and the machine's request ID indexes it directly.
// Every event is re-labeled with the cluster ID and the node index before
// reaching the shared sink.
type nodeTracer struct {
	node int
	ids  []uint64
	emit func(trace.Event)
}

// Record implements trace.Recorder.
func (t *nodeTracer) Record(e trace.Event) {
	e.ReqID = t.ids[e.ReqID]
	e.Node = t.node
	t.emit(e)
}

// Run simulates the configured cluster and returns its measurements.
// Identical configurations produce identical results: the nodes, the
// arrival stream, and the policy all draw from streams split off cfg.Seed,
// and the whole cluster executes on one deterministic engine — or, with
// Config.Shards > 1, on several engines advanced in deterministic
// hop-lookahead rounds (see shard.go).
func Run(cfg Config) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	if cfg.Hierarchical() {
		if cfg.Shards > 1 {
			return runHierSharded(cfg)
		}
		return runHier(cfg)
	}
	if cfg.Shards > 1 && min(cfg.Shards, cfg.Nodes) > 1 {
		return runSharded(cfg)
	}
	eng := sim.New()
	root := rng.New(cfg.Seed)
	arrRNG := root.Split()
	polRNG := root.Split()

	// Tracing sinks: tail sees every request (exact K-slowest); the user
	// Recorder sees one request in sampleN. With both off, record stays nil
	// and no trace code touches the run — byte-identical streams.
	var tail *trace.TailSampler
	if cfg.TailSamples > 0 {
		tail = trace.NewTailSampler(cfg.TailSamples)
	}
	sampleN := uint64(1)
	if cfg.TraceSample > 1 {
		sampleN = uint64(cfg.TraceSample)
	}
	var record func(trace.Event)
	if cfg.Trace != nil || tail != nil {
		record = func(e trace.Event) {
			if tail != nil {
				tail.Record(e)
			}
			if cfg.Trace != nil && e.ReqID%sampleN == 0 {
				cfg.Trace.Record(e)
			}
		}
	}

	faultByNode := make([]machine.Fault, cfg.Nodes)
	for _, f := range cfg.Faults {
		faultByNode[f.Node] = machine.Fault{Slowdown: f.Slowdown, Pauses: f.Pauses}
	}
	nodes := make([]*machine.Machine, cfg.Nodes)
	tracers := make([]*nodeTracer, cfg.Nodes)
	for i := range nodes {
		ncfg := cfg.Node
		ncfg.Seed = root.Split().Uint64()
		ncfg.Epoch = cfg.Epoch
		ncfg.MaxEpochs = cfg.MaxEpochs
		if len(cfg.NodePlans) > 0 && cfg.NodePlans[i] != nil {
			ncfg.Params.Plan = cfg.NodePlans[i]
		}
		ncfg.Slowdown = faultByNode[i].Slowdown
		ncfg.Pauses = faultByNode[i].Pauses
		if record != nil {
			tracers[i] = &nodeTracer{node: i, emit: record}
			ncfg.Trace = tracers[i]
			ncfg.TraceSample = 0 // sampling happens on cluster IDs, above
			ncfg.TailSamples = 0 // the cluster-level tail splices the hop in
		}
		m, err := machine.NewShared(ncfg, eng)
		if err != nil {
			return Result{}, fmt.Errorf("cluster: node %d: %w", i, err)
		}
		nodes[i] = m
	}

	// The balancer is one dispatch tier over the node set (tier.go) — the
	// same abstraction the hierarchical engines stack two of.
	bal := newTier(cfg.Policy, polRNG, cfg.Nodes, cfg.SampleEvery == 0)
	bal.scheduleRefresh(eng, cfg.SampleEvery)
	v := bal.v

	var (
		completed     int
		totalOut      int // RPCs dispatched and not yet complete, cluster-wide
		nodeCompleted = make([]int, cfg.Nodes)
		target        = cfg.Warmup + cfg.Measure
		timedOut      bool
	)
	rec := metrics.NewRecorder(metrics.Config{EpochNanos: cfg.Epoch.Nanos(), MaxEpochs: cfg.MaxEpochs, Expect: cfg.Measure})
	if cfg.MaxSimTime > 0 {
		eng.Schedule(cfg.MaxSimTime, func() {
			timedOut = true
			eng.Stop()
		})
	}

	var runErr error
	gaps := arrival.NewBatch(arrival.Resolve(cfg.Arrival, cfg.RateMRPS), arrRNG, 0)
	var seq uint64 // cluster-wide request sequence number

	// The per-request state rides a pooled tracker through the hop event and
	// the completion callback; the two callbacks below are bound once per
	// run, so the steady-state balancer path allocates nothing per RPC.
	var pool []*clusterReq
	doneFn := func(arg any, _ int, measured bool) {
		r := arg.(*clusterReq)
		n := r.node
		v.completed(n)
		totalOut--
		completed++
		nodeCompleted[n]++
		pool = append(pool, r)
		if completed == cfg.Warmup+1 {
			rec.OpenWindow(eng.Now())
		}
		rec.Complete(eng.Now(), metrics.Completion{
			Class:     -1,
			Measured:  measured,
			LatencyNs: eng.Now().Sub(r.sent).Nanos(),
			WaitNs:    -1,
			ServiceNs: -1,
			Depth:     totalOut,
		})
		if completed >= target {
			rec.CloseWindow(eng.Now())
			eng.Stop()
		}
	}
	hopFn := func(arg any) {
		r := arg.(*clusterReq)
		if record != nil {
			// The machine numbers this inject len(ids); remember its
			// cluster-wide identity at that index.
			tracers[r.node].ids = append(tracers[r.node].ids, r.id)
		}
		nodes[r.node].InjectArg(doneFn, r)
	}
	var arrive func()
	arrive = func() {
		id := seq
		seq++
		n := bal.pick()
		if n < 0 || n >= cfg.Nodes {
			// A custom policy misbehaved; fail attributably rather than
			// panicking deep inside a deferred engine callback.
			runErr = fmt.Errorf("cluster: policy %s picked node %d of %d", cfg.Policy, n, cfg.Nodes)
			eng.Stop()
			return
		}
		if record != nil {
			// Depths are the balancer's pre-decision view: cluster-wide
			// outstanding at ingress, the chosen node's depth at forward.
			now := eng.Now()
			record(trace.Event{ReqID: id, Phase: trace.PhaseBalancerRecv, At: now, Core: -1, Node: -1, Depth: totalOut})
			record(trace.Event{ReqID: id, Phase: trace.PhaseForward, At: now, Core: -1, Node: n, Depth: v.Depth(n)})
		}
		v.dispatched(n)
		totalOut++
		var r *clusterReq
		if np := len(pool); np > 0 {
			r = pool[np-1]
			pool = pool[:np-1]
		} else {
			r = &clusterReq{}
		}
		r.id, r.node, r.sent = id, n, eng.Now()
		eng.ScheduleArg(cfg.Hop, hopFn, r)
		eng.Schedule(gaps.Next(), arrive)
	}
	eng.Schedule(gaps.Next(), arrive)
	eng.Run()
	if runErr != nil {
		return Result{}, runErr
	}

	return assemble(cfg, rec, tail, nodes, faultByNode, nodeCompleted, completed, timedOut), nil
}

// assemble builds the Result from a finished run's recorders and machines.
// Both engine paths (single-clock Run, sharded runSharded) end here, so the
// derived fields are computed identically.
func assemble(cfg Config, rec *metrics.Recorder, tail *trace.TailSampler,
	nodes []*machine.Machine, faultByNode []machine.Fault,
	nodeCompleted []int, completed int, timedOut bool) Result {
	res := Result{
		Policy:        cfg.Policy.String(),
		Nodes:         cfg.Nodes,
		RateMRPS:      cfg.RateMRPS,
		Seed:          cfg.Seed,
		Latency:       rec.Latency(),
		NodeCompleted: nodeCompleted,
		Completed:     completed,
		TimedOut:      timedOut,
		Timeline:      rec.Timeline(),
	}
	if tail != nil {
		res.TailSpans = tail.Spans()
	}
	if start, end := rec.Window(); end > start {
		res.ThroughputMRPS = float64(cfg.Measure-1) / end.Sub(start).Nanos() * 1000
	}
	mean := float64(completed) / float64(cfg.Nodes)
	if mean > 0 {
		maxN := 0
		for _, c := range nodeCompleted {
			if c > maxN {
				maxN = c
			}
		}
		res.Imbalance = float64(maxN) / mean
	}
	for i, m := range nodes {
		res.NodeUtilization = append(res.NodeUtilization, m.MeanCoreUtilization())
		res.NodeDispatch = append(res.NodeDispatch, m.DispatchLabel())
		res.NodeFaults = append(res.NodeFaults, faultByNode[i].String())
		res.NodeTimelines = append(res.NodeTimelines, m.Timeline())
	}

	// SLO: absolute when the workload specifies one, otherwise the SLO
	// factor applied to the estimated mean service time (handler mean plus
	// fixed per-request core overhead) — the same S̄ CapacityMRPS uses.
	wl := cfg.Node.Workload
	if wl.SLONanos > 0 {
		res.SLONanos = wl.SLONanos
	} else {
		res.SLONanos = wl.SLOFactor * (wl.MeanService() + cfg.Node.Params.CoreOverheadNanos())
	}
	res.MeetsSLO = !timedOut && res.Latency.Count > 0 && res.Latency.P99 <= res.SLONanos
	return res
}

// Point is one (rate, tail) observation of a cluster latency-throughput
// curve.
type Point struct {
	RateMRPS       float64
	ThroughputMRPS float64
	P50, P99, Mean float64 // ns
	Imbalance      float64
	MeetsSLO       bool
}

// Curve is a labeled series of Points for one policy/configuration.
// Curves are produced by the experiment harness's ClusterSweep
// (internal/core), which runs points concurrently with decorrelated seeds.
type Curve struct {
	Label  string
	Points []Point
}
