package cluster

// Hierarchical (two-tier) cluster execution: the serial engine behind
// Config.Racks >= 1. The topology is a datacenter front-end: a global
// balancer dispatches every arriving RPC to one of Racks rack balancers
// (charged Config.GlobalHop of network), and each rack balancer runs the
// full flat-cluster machinery — its own Policy instance, depth index, stale
// sampling, node hop — over its contiguous slice of the node set. Both
// stages are instances of the same dispatch tier (tier.go); the global
// tier's endpoints are the racks themselves, each publishing its
// aggregate-over-index depth.
//
// Flat-equivalence contract: Racks = 1 with GlobalHop = 0 is byte-identical
// to the flat cluster (Racks = 0). Three things conspire to make that exact:
// the RNG split order (arrival, rack policies in rack order, node seeds in
// node order — the global tier's stream is split *last*, so for one rack the
// prefix matches the flat derivation and the trailing split is
// unobservable); the global tier draws from its own stream (its picks never
// perturb the rack policies' streams); and a zero global hop delivers the
// request to the rack balancer synchronously inside the arrival event — no
// intermediate engine event, so the (time, seq) interleaving of every
// scheduled event matches the flat path exactly. pin_test.go enforces this
// against the historical pinned numbers.
//
// Rack-scoped faults (NodeFault.Rack) degrade a whole rack: every node in
// the rack receives the machine-level fault, and the fault's pause windows
// additionally freeze the rack *balancer* — a request reaching a frozen
// balancer waits (in arrival order) until the window closes before a node is
// picked. The stall lands in the request's global-hop leg
// (global-forward → balancer-recv), which is exactly where a tail-anatomy
// reading wants it: fabric-plus-frozen-balancer time, not node queueing.

import (
	"fmt"

	"rpcvalet/internal/arrival"
	"rpcvalet/internal/machine"
	"rpcvalet/internal/metrics"
	"rpcvalet/internal/rng"
	"rpcvalet/internal/sim"
	"rpcvalet/internal/trace"
)

// hierReq is the pooled per-request tracker of the hierarchical path: one
// RPC's identity from global ingress through the rack hop and its completion
// callback, then back to the free-list.
type hierReq struct {
	id   uint64
	rack int
	node int      // global node index, set at the rack balancer
	sent sim.Time // global ingress, the latency epoch
}

// rackState is one rack balancer: its dispatch tier plus geometry and the
// balancer-level pause windows from rack-scoped faults.
type rackState struct {
	t      *tier
	start  int // first global node index of the rack
	size   int
	pauses []machine.Pause // freezes the balancer itself
}

// hierFaults expands Config.Faults for a hierarchical run: per-node machine
// faults (rack-scoped entries fan out to every node in the rack, later
// entries overwriting earlier ones exactly like flat fault lists),
// per-rack balancer pause windows, and the per-rack fault labels for
// Result.RackFaults.
func hierFaults(cfg Config, size, start []int) (faultByNode []machine.Fault, balPauses [][]machine.Pause, rackLabel []machine.Fault) {
	faultByNode = make([]machine.Fault, cfg.Nodes)
	balPauses = make([][]machine.Pause, cfg.Racks)
	rackLabel = make([]machine.Fault, cfg.Racks)
	for _, f := range cfg.Faults {
		mf := machine.Fault{Slowdown: f.Slowdown, Pauses: f.Pauses}
		if !f.Rack {
			faultByNode[f.Node] = mf
			continue
		}
		r := f.Node
		for i := start[r]; i < start[r]+size[r]; i++ {
			faultByNode[i] = mf
		}
		balPauses[r] = append(balPauses[r], f.Pauses...)
		rackLabel[r] = mf
	}
	return faultByNode, balPauses, rackLabel
}

// hierResult decorates an assembled flat Result with the two-tier fields.
func hierResult(res Result, cfg Config, rackCompleted []int, rackLabel []machine.Fault) Result {
	res.Racks = cfg.Racks
	if cfg.GlobalPolicy != nil {
		res.GlobalPolicy = cfg.GlobalPolicy.String()
	}
	res.RackCompleted = rackCompleted
	for r := 0; r < cfg.Racks; r++ {
		res.RackFaults = append(res.RackFaults, rackLabel[r].String())
	}
	return res
}

// runHier simulates a validated hierarchical config on one engine.
func runHier(cfg Config) (Result, error) {
	eng := sim.New()
	root := rng.New(cfg.Seed)
	arrRNG := root.Split()
	// One policy stream per rack, split in rack order; rack 0 reuses
	// cfg.Policy itself (the same stream position the flat balancer's
	// policy holds), later racks run independent clones.
	rackRNG := make([]*rng.Source, cfg.Racks)
	for r := range rackRNG {
		rackRNG[r] = root.Split()
	}

	// Tracing sinks, identical to the flat path.
	var tail *trace.TailSampler
	if cfg.TailSamples > 0 {
		tail = trace.NewTailSampler(cfg.TailSamples)
	}
	sampleN := uint64(1)
	if cfg.TraceSample > 1 {
		sampleN = uint64(cfg.TraceSample)
	}
	var record func(trace.Event)
	if cfg.Trace != nil || tail != nil {
		record = func(e trace.Event) {
			if tail != nil {
				tail.Record(e)
			}
			if cfg.Trace != nil && e.ReqID%sampleN == 0 {
				cfg.Trace.Record(e)
			}
		}
	}

	size, start := rackGeometry(cfg)
	faultByNode, balPauses, rackLabel := hierFaults(cfg, size, start)
	nodes := make([]*machine.Machine, cfg.Nodes)
	tracers := make([]*nodeTracer, cfg.Nodes)
	for i := range nodes {
		ncfg := cfg.Node
		ncfg.Seed = root.Split().Uint64()
		ncfg.Epoch = cfg.Epoch
		ncfg.MaxEpochs = cfg.MaxEpochs
		if len(cfg.NodePlans) > 0 && cfg.NodePlans[i] != nil {
			ncfg.Params.Plan = cfg.NodePlans[i]
		}
		ncfg.Slowdown = faultByNode[i].Slowdown
		ncfg.Pauses = faultByNode[i].Pauses
		if record != nil {
			tracers[i] = &nodeTracer{node: i, emit: record}
			ncfg.Trace = tracers[i]
			ncfg.TraceSample = 0 // sampling happens on cluster IDs, above
			ncfg.TailSamples = 0 // the cluster-level tail splices the hops in
		}
		m, err := machine.NewShared(ncfg, eng)
		if err != nil {
			return Result{}, fmt.Errorf("cluster: node %d: %w", i, err)
		}
		nodes[i] = m
	}

	// The global tier's RNG stream is split after every rack and node
	// stream — the tail position, so a one-rack topology's prefix matches
	// the flat derivation exactly.
	globalRNG := root.Split()

	// Rack tiers, each over its own slice of the node set.
	racks := make([]*rackState, cfg.Racks)
	for r := range racks {
		pol := cfg.Policy
		if r > 0 {
			pol = cfg.Policy.Clone()
		}
		racks[r] = &rackState{
			t:      newTier(pol, rackRNG[r], size[r], cfg.SampleEvery == 0),
			start:  start[r],
			size:   size[r],
			pauses: balPauses[r],
		}
		racks[r].t.scheduleRefresh(eng, cfg.SampleEvery)
	}

	// The global tier over the racks. Live (GlobalSampleEvery == 0) it
	// tracks its own dispatch/completion accounting exactly; stale it
	// scrapes each rack balancer's published aggregate depth periodically.
	g := newTier(cfg.GlobalPolicy, globalRNG, cfg.Racks, cfg.GlobalSampleEvery == 0)
	g.scheduleScrape(eng, cfg.GlobalSampleEvery, func(r int) int { return racks[r].t.aggregate() })

	var (
		completed     int
		totalOut      int // dispatched and not yet complete, datacenter-wide
		nodeCompleted = make([]int, cfg.Nodes)
		rackCompleted = make([]int, cfg.Racks)
		target        = cfg.Warmup + cfg.Measure
		timedOut      bool
	)
	rec := metrics.NewRecorder(metrics.Config{EpochNanos: cfg.Epoch.Nanos(), MaxEpochs: cfg.MaxEpochs, Expect: cfg.Measure})
	if cfg.MaxSimTime > 0 {
		eng.Schedule(cfg.MaxSimTime, func() {
			timedOut = true
			eng.Stop()
		})
	}

	var runErr error
	gaps := arrival.NewBatch(arrival.Resolve(cfg.Arrival, cfg.RateMRPS), arrRNG, 0)
	var seq uint64 // datacenter-wide request sequence number

	var pool []*hierReq
	doneFn := func(arg any, _ int, measured bool) {
		q := arg.(*hierReq)
		rk := racks[q.rack]
		rk.t.completed(q.node - rk.start)
		g.completed(q.rack)
		totalOut--
		completed++
		nodeCompleted[q.node]++
		rackCompleted[q.rack]++
		pool = append(pool, q)
		if completed == cfg.Warmup+1 {
			rec.OpenWindow(eng.Now())
		}
		rec.Complete(eng.Now(), metrics.Completion{
			Class:     -1,
			Measured:  measured,
			LatencyNs: eng.Now().Sub(q.sent).Nanos(),
			WaitNs:    -1,
			ServiceNs: -1,
			Depth:     totalOut,
		})
		if completed >= target {
			rec.CloseWindow(eng.Now())
			eng.Stop()
		}
	}
	hopFn := func(arg any) {
		q := arg.(*hierReq)
		if record != nil {
			// The machine numbers this inject len(ids); remember its
			// cluster-wide identity at that index.
			tracers[q.node].ids = append(tracers[q.node].ids, q.id)
		}
		nodes[q.node].InjectArg(doneFn, q)
	}
	// recvFn is the rack balancer: it fires when the request has crossed
	// the global hop. A frozen balancer (rack-scoped pause window) defers
	// the whole decision to the window's end — engine seq order keeps the
	// deferred requests FIFO — and re-checks, so chained windows compound.
	var recvFn func(arg any)
	recvFn = func(arg any) {
		q := arg.(*hierReq)
		rk := racks[q.rack]
		if stall := machine.PauseStall(rk.pauses, eng.Now()); stall > 0 {
			eng.ScheduleArg(stall, recvFn, q)
			return
		}
		local := rk.t.pick()
		if local < 0 || local >= rk.size {
			runErr = fmt.Errorf("cluster: policy %s picked node %d of %d in rack %d", rk.t.pol, local, rk.size, q.rack)
			eng.Stop()
			return
		}
		q.node = rk.start + local
		if record != nil {
			now := eng.Now()
			record(trace.Event{ReqID: q.id, Phase: trace.PhaseBalancerRecv, At: now, Core: -1, Node: -1, Depth: rk.t.aggregate()})
			record(trace.Event{ReqID: q.id, Phase: trace.PhaseForward, At: now, Core: -1, Node: q.node, Depth: rk.t.depth(local)})
		}
		rk.t.dispatched(local)
		eng.ScheduleArg(cfg.Hop, hopFn, q)
	}
	var arrive func()
	arrive = func() {
		id := seq
		seq++
		r := 0
		if g.pol != nil {
			r = g.pick()
			if r < 0 || r >= cfg.Racks {
				runErr = fmt.Errorf("cluster: global policy %s picked rack %d of %d", g.pol, r, cfg.Racks)
				eng.Stop()
				return
			}
		}
		if record != nil {
			// Depths are the global tier's pre-decision view: datacenter
			// outstanding at ingress, its view of the chosen rack at forward.
			now := eng.Now()
			record(trace.Event{ReqID: id, Phase: trace.PhaseGlobalRecv, At: now, Core: -1, Node: -1, Depth: totalOut})
			record(trace.Event{ReqID: id, Phase: trace.PhaseGlobalForward, At: now, Core: -1, Node: r, Depth: g.depth(r)})
		}
		g.dispatched(r)
		totalOut++
		var q *hierReq
		if np := len(pool); np > 0 {
			q = pool[np-1]
			pool = pool[:np-1]
		} else {
			q = &hierReq{}
		}
		q.id, q.rack, q.sent = id, r, eng.Now()
		if cfg.GlobalHop == 0 {
			// Deliver synchronously: no intermediate event, so the engine's
			// (time, seq) interleaving — and with one rack, the whole result
			// stream — matches the flat path byte for byte.
			recvFn(q)
		} else {
			eng.ScheduleArg(cfg.GlobalHop, recvFn, q)
		}
		eng.Schedule(gaps.Next(), arrive)
	}
	eng.Schedule(gaps.Next(), arrive)
	eng.Run()
	if runErr != nil {
		return Result{}, runErr
	}

	res := assemble(cfg, rec, tail, nodes, faultByNode, nodeCompleted, completed, timedOut)
	return hierResult(res, cfg, rackCompleted, rackLabel), nil
}
