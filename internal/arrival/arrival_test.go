package arrival

import (
	"math"
	"testing"

	"rpcvalet/internal/dist"
	"rpcvalet/internal/rng"
	"rpcvalet/internal/sim"
)

// TestPoissonRateConversion pins the single MRPS→interarrival conversion the
// whole repository now routes through: 1000/rate for MRPS, 1/lambda for
// per-ns rates. These must stay exactly (not approximately) these
// expressions — the machine and cluster simulators' historical byte-for-byte
// reproducibility depends on it.
func TestPoissonRateConversion(t *testing.T) {
	for _, rate := range []float64{0.5, 1, 4, 12.7, 30} {
		if got, want := PoissonAtMRPS(rate).MeanGapNanos, 1000/rate; got != want {
			t.Fatalf("PoissonAtMRPS(%v) mean gap = %v, want %v", rate, got, want)
		}
	}
	for _, lambda := range []float64{0.001, 0.004, 0.0217} {
		if got, want := PoissonAtPerNs(lambda).MeanGapNanos, 1/lambda; got != want {
			t.Fatalf("PoissonAtPerNs(%v) mean gap = %v, want %v", lambda, got, want)
		}
	}
	// 1 MRPS is one request per microsecond, i.e. 0.001 per ns.
	if PoissonAtMRPS(1).MeanGapNanos != 1000 || PoissonAtPerNs(0.001).MeanGapNanos != 1000 {
		t.Fatal("MRPS and per-ns parameterizations disagree at 1 MRPS")
	}
}

// TestPoissonMatchesLegacyExponential: the Poisson process must reproduce
// the exact gap sequence the simulators used to compute inline via
// dist.Exponential{MeanValue: 1000/rate}.
func TestPoissonMatchesLegacyExponential(t *testing.T) {
	const rate = 7.3
	p := PoissonAtMRPS(rate)
	legacy := dist.Exponential{MeanValue: 1000 / rate}
	a, b := rng.New(42), rng.New(42)
	for i := 0; i < 1000; i++ {
		want := sim.FromNanos(legacy.Sample(a))
		if got := p.Next(b); got != want {
			t.Fatalf("gap %d: %v != legacy %v", i, got, want)
		}
	}
}

// meanGap estimates a process's mean gap in ns over n draws.
func meanGap(p Process, n int, seed uint64) float64 {
	r := rng.New(seed)
	total := sim.Duration(0)
	for i := 0; i < n; i++ {
		total += p.Next(r)
	}
	return total.Nanos() / float64(n)
}

func TestMeanRates(t *testing.T) {
	const rate = 5.0 // MRPS → 200 ns mean gap
	for _, name := range Names {
		p, err := ByName(name, rate)
		if err != nil {
			t.Fatal(err)
		}
		got := meanGap(Fresh(p), 200000, 11)
		if math.Abs(got-200) > 200*0.05 {
			t.Errorf("%s: mean gap %v ns, want 200±5%%", name, got)
		}
	}
}

func TestDeterministicGap(t *testing.T) {
	p := DeterministicAtMRPS(4)
	if p.GapNanos != 250 {
		t.Fatalf("gap = %v, want 250", p.GapNanos)
	}
	r := rng.New(1)
	for i := 0; i < 10; i++ {
		if g := p.Next(r); g != sim.FromNanos(250) {
			t.Fatalf("draw %d: %v", i, g)
		}
	}
}

func TestLognormalMean(t *testing.T) {
	p := LognormalAtMRPS(2, 1.5)
	if got := p.MeanGapNanos(); math.Abs(got-500) > 1e-9 {
		t.Fatalf("analytic mean gap = %v, want 500", got)
	}
}

func TestMMPP2Construction(t *testing.T) {
	p := NewMMPP2(10, 4, 20000, 5000)
	if got := p.MeanRatePerNs(); math.Abs(got-0.01) > 1e-12 {
		t.Fatalf("mean rate = %v per ns, want 0.01", got)
	}
	if got := p.BurstRatio(); math.Abs(got-4) > 1e-12 {
		t.Fatalf("burst ratio = %v, want 4", got)
	}
	if p.BurstRate <= p.CalmRate {
		t.Fatal("burst rate not above calm rate")
	}
}

func TestMMPP2BurstierThanPoisson(t *testing.T) {
	// Squared CV of gaps: Poisson gives 1; MMPP2 must exceed it.
	scv := func(p Process, n int) float64 {
		r := rng.New(9)
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			g := p.Next(r).Nanos()
			sum += g
			sumSq += g * g
		}
		mean := sum / float64(n)
		return (sumSq/float64(n) - mean*mean) / (mean * mean)
	}
	mmpp := scv(NewMMPP2(5, DefaultBurstRatio, DefaultCalmDwellNanos, DefaultBurstDwellNanos), 200000)
	poisson := scv(PoissonAtMRPS(5), 200000)
	if mmpp < poisson*1.2 {
		t.Fatalf("MMPP2 gap SCV %v not burstier than Poisson's %v", mmpp, poisson)
	}
}

func TestFreshIsolatesMMPP2State(t *testing.T) {
	base := NewMMPP2(5, 4, 2000, 500)
	// Drive one clone far enough to likely flip into a burst phase.
	dirty := Fresh(base).(*MMPP2)
	r := rng.New(3)
	for i := 0; i < 5000; i++ {
		dirty.Next(r)
	}
	// Fresh copies of the (untouched) base must produce identical sequences.
	a, b := Fresh(base), Fresh(base)
	ra, rb := rng.New(7), rng.New(7)
	for i := 0; i < 5000; i++ {
		if a.Next(ra) != b.Next(rb) {
			t.Fatalf("fresh clones diverged at draw %d", i)
		}
	}
	if base.dwellSet || base.burst {
		t.Fatal("Fresh mutated the template process")
	}
}

func TestAtMRPSPreservesShape(t *testing.T) {
	p := NewMMPP2(5, 4, 20000, 5000)
	q := p.AtMRPS(10).(*MMPP2)
	if math.Abs(q.MeanRatePerNs()-0.01) > 1e-12 {
		t.Fatalf("re-rated mean = %v, want 0.01", q.MeanRatePerNs())
	}
	if math.Abs(q.BurstRatio()-4) > 1e-9 {
		t.Fatalf("re-rating changed burst ratio: %v", q.BurstRatio())
	}
	// Dwells scale inversely with rate: arrivals per phase are preserved.
	if math.Abs(q.CalmDwellNanos-10000) > 1e-9 || math.Abs(q.BurstDwellNanos-2500) > 1e-9 {
		t.Fatalf("dwells = %v/%v, want 10000/2500", q.CalmDwellNanos, q.BurstDwellNanos)
	}
	if math.Abs(q.CalmRate*q.CalmDwellNanos-p.CalmRate*p.CalmDwellNanos) > 1e-9 {
		t.Fatal("arrivals per calm phase not preserved")
	}
	ln := LognormalAtMRPS(5, 1.5).AtMRPS(10).(LognormalGap)
	if ln.Sigma != 1.5 || math.Abs(ln.MeanGapNanos()-100) > 1e-9 {
		t.Fatalf("lognormal re-rate: sigma=%v mean=%v", ln.Sigma, ln.MeanGapNanos())
	}
	if AtMRPS(PoissonAtMRPS(5), 10).(Poisson).MeanGapNanos != 100 {
		t.Fatal("helper AtMRPS did not re-rate poisson")
	}
	if AtMRPS(PoissonAtMRPS(5), 0).(Poisson).MeanGapNanos != 200 {
		t.Fatal("AtMRPS with zero rate should be a no-op")
	}
}

func TestByName(t *testing.T) {
	for _, name := range Names {
		p, err := ByName(name, 3)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name() != name {
			t.Fatalf("ByName(%q).Name() = %q", name, p.Name())
		}
		if p.String() == "" {
			t.Fatalf("%s: empty String()", name)
		}
	}
	if p, err := ByName("deterministic", 3); err != nil || p.Name() != "det" {
		t.Fatalf("alias deterministic: %v %v", p, err)
	}
	if _, err := ByName("bogus", 3); err == nil {
		t.Fatal("unknown name accepted")
	}
	if _, err := ByName("poisson", 0); err == nil {
		t.Fatal("zero rate accepted")
	}
}

// TestDegenerateRatesPanic: a zero or negative rate would yield infinite or
// NaN gaps and spin a simulation forever at virtual time zero, so every
// constructor must reject it loudly.
func TestDegenerateRatesPanic(t *testing.T) {
	cases := map[string]func(){
		"poissonMRPS":  func() { PoissonAtMRPS(0) },
		"poissonPerNs": func() { PoissonAtPerNs(-1) },
		"det":          func() { DeterministicAtMRPS(0) },
		"lognormal":    func() { LognormalAtMRPS(-2, 1.5) },
		"mmpp2":        func() { NewMMPP2(0, 2, 100, 100) },
	}
	for name, build := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: degenerate rate accepted", name)
				}
			}()
			build()
		}()
	}
}

func TestResolve(t *testing.T) {
	if p := Resolve(nil, 5); p.(Poisson).MeanGapNanos != 200 {
		t.Fatalf("Resolve(nil, 5) = %v", p)
	}
	if p := Resolve(nil, 0); p != nil {
		t.Fatalf("Resolve(nil, 0) = %v, want nil", p)
	}
	if p := Resolve(DeterministicAtMRPS(1), 5); p.(Deterministic).GapNanos != 200 {
		t.Fatalf("Resolve re-rate = %v", p)
	}
	mm := NewMMPP2(5, 2, 1000, 1000)
	r := rng.New(1)
	Resolve(mm, 5).Next(r) // drives the clone, not the template
	if mm.dwellSet {
		t.Fatal("Resolve shared the template's run state")
	}
	// ResolvePerNs nil path must keep the historical 1/λ conversion exact.
	if p := ResolvePerNs(nil, 0.004); p.(Poisson).MeanGapNanos != 1/0.004 {
		t.Fatalf("ResolvePerNs(nil) = %v", p)
	}
	if p := ResolvePerNs(DeterministicAtMRPS(1), 0.004); p.(Deterministic).GapNanos != 1000/(0.004*1000) {
		t.Fatalf("ResolvePerNs re-rate = %v", p)
	}
}
