package arrival

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"rpcvalet/internal/rng"
	"rpcvalet/internal/sim"
)

// Envelope is a deterministic rate-modulation profile: a dimensionless
// factor over virtual time that multiplies a base arrival process's
// instantaneous rate. Factor 1 is the base rate; a Step to 2 doubles it.
//
// Envelopes are consumed through Advance — the inverse of the factor's
// cumulative integral — which lets Modulated warp any base process exactly
// (piecewise closed form, no discretization), preserving the base's gap
// shape in "operational time" while the real-time rate follows the profile.
type Envelope interface {
	// FactorAt returns the rate factor at virtual time t (nanoseconds).
	FactorAt(tNanos float64) float64
	// Advance returns the real-time span dt ≥ 0 such that the factor's
	// integral over [t, t+dt] equals area (the gap drawn in operational
	// time). Implementations must be exact for their piecewise form.
	Advance(tNanos, area float64) float64
	// Name is the envelope's short registry name ("step", "ramp",
	// "square", "pulse").
	Name() string
	// String describes the envelope and its parameters for reports.
	String() string
}

func checkFactor(what string, f float64) {
	if !(f > 0) {
		panic(fmt.Sprintf("arrival: %s factor %g must be positive", what, f))
	}
}

// --- Step -------------------------------------------------------------------

// Step holds factor 1 until AtNanos, then Factor forever — the canonical
// load-step transient (a tenant arriving, a failover doubling a replica's
// share).
type Step struct {
	AtNanos float64
	Factor  float64
}

// NewStep builds a load step at atNanos jumping to factor× the base rate.
func NewStep(atNanos, factor float64) Step {
	checkFactor("step", factor)
	return Step{AtNanos: atNanos, Factor: factor}
}

func (e Step) FactorAt(t float64) float64 {
	if t < e.AtNanos {
		return 1
	}
	return e.Factor
}

func (e Step) Advance(t, area float64) float64 {
	if t >= e.AtNanos {
		return area / e.Factor
	}
	if pre := e.AtNanos - t; area <= pre {
		return area
	} else {
		return pre + (area-pre)/e.Factor
	}
}

func (e Step) Name() string { return "step" }

func (e Step) String() string { return fmt.Sprintf("step@%gns:x%g", e.AtNanos, e.Factor) }

// --- Pulse ------------------------------------------------------------------

// Pulse holds factor 1 except within [StartNanos, StartNanos+DurNanos),
// where the rate is Factor× — a bounded overload burst (flash crowd, retry
// storm) whose recovery the timeline can watch.
type Pulse struct {
	StartNanos, DurNanos float64
	Factor               float64
}

// NewPulse builds a factor× pulse covering [startNanos, startNanos+durNanos).
func NewPulse(startNanos, durNanos, factor float64) Pulse {
	checkFactor("pulse", factor)
	if durNanos <= 0 {
		panic(fmt.Sprintf("arrival: pulse duration %g must be positive", durNanos))
	}
	return Pulse{StartNanos: startNanos, DurNanos: durNanos, Factor: factor}
}

func (e Pulse) FactorAt(t float64) float64 {
	if t >= e.StartNanos && t < e.StartNanos+e.DurNanos {
		return e.Factor
	}
	return 1
}

func (e Pulse) Advance(t, area float64) float64 {
	dt := 0.0
	for area > 0 {
		f := e.FactorAt(t + dt)
		// Distance to the next factor boundary from the current position.
		var edge float64
		switch {
		case t+dt < e.StartNanos:
			edge = e.StartNanos - (t + dt)
		case t+dt < e.StartNanos+e.DurNanos:
			edge = e.StartNanos + e.DurNanos - (t + dt)
		default:
			return dt + area // constant 1 forever after
		}
		if span := area / f; span <= edge {
			return dt + span
		}
		dt += edge
		area -= edge * f
	}
	return dt
}

func (e Pulse) Name() string { return "pulse" }

func (e Pulse) String() string {
	return fmt.Sprintf("pulse@%gns+%gns:x%g", e.StartNanos, e.DurNanos, e.Factor)
}

// --- Ramp -------------------------------------------------------------------

// Ramp interpolates the factor linearly from 1 to Factor over
// [StartNanos, StartNanos+DurNanos), holding Factor afterward — a gradual
// load shift rather than a discontinuity.
type Ramp struct {
	StartNanos, DurNanos float64
	Factor               float64
}

// NewRamp builds a linear ramp from 1× to factor× over durNanos starting at
// startNanos.
func NewRamp(startNanos, durNanos, factor float64) Ramp {
	checkFactor("ramp", factor)
	if durNanos <= 0 {
		panic(fmt.Sprintf("arrival: ramp duration %g must be positive", durNanos))
	}
	return Ramp{StartNanos: startNanos, DurNanos: durNanos, Factor: factor}
}

func (e Ramp) FactorAt(t float64) float64 {
	switch {
	case t < e.StartNanos:
		return 1
	case t >= e.StartNanos+e.DurNanos:
		return e.Factor
	default:
		return 1 + (e.Factor-1)*(t-e.StartNanos)/e.DurNanos
	}
}

func (e Ramp) Advance(t, area float64) float64 {
	dt := 0.0
	// Segment 1: flat 1 before the ramp.
	if t < e.StartNanos {
		pre := e.StartNanos - t
		if area <= pre {
			return area
		}
		dt += pre
		area -= pre
		t = e.StartNanos
	}
	// Segment 2: the linear ramp. With u the offset into the ramp and
	// k = (Factor−1)/Dur, ∫(1+k·u)du from u0 to u1 = area solves as a
	// quadratic in u1.
	if t < e.StartNanos+e.DurNanos {
		u0 := t - e.StartNanos
		k := (e.Factor - 1) / e.DurNanos
		var u1 float64
		if k == 0 {
			u1 = u0 + area
		} else {
			c := area + u0 + k*u0*u0/2
			u1 = (math.Sqrt(1+2*k*c) - 1) / k
		}
		if u1 <= e.DurNanos {
			return dt + (u1 - u0)
		}
		// Consume the rest of the ramp exactly, continue in the hold.
		rampArea := (e.DurNanos - u0) + k*(e.DurNanos*e.DurNanos-u0*u0)/2
		dt += e.DurNanos - u0
		area -= rampArea
	}
	// Segment 3: flat Factor after the ramp.
	return dt + area/e.Factor
}

func (e Ramp) Name() string { return "ramp" }

func (e Ramp) String() string {
	return fmt.Sprintf("ramp@%gns+%gns:x%g", e.StartNanos, e.DurNanos, e.Factor)
}

// --- SquareWave ---------------------------------------------------------

// SquareWave alternates between Factor (for HighNanos at the start of each
// period) and 1 (the remainder) — sustained periodic bursting, the diurnal
// pattern scaled down to microseconds.
type SquareWave struct {
	PeriodNanos, HighNanos float64
	Factor                 float64
}

// NewSquareWave builds a square wave with the given period, high-phase
// length, and high-phase factor.
func NewSquareWave(periodNanos, highNanos, factor float64) SquareWave {
	checkFactor("square", factor)
	if !(periodNanos > 0) || !(highNanos > 0) || highNanos >= periodNanos {
		panic(fmt.Sprintf("arrival: square wave high %gns must lie inside period %gns", highNanos, periodNanos))
	}
	return SquareWave{PeriodNanos: periodNanos, HighNanos: highNanos, Factor: factor}
}

func (e SquareWave) FactorAt(t float64) float64 {
	if t < 0 {
		return 1
	}
	if mod(t, e.PeriodNanos) < e.HighNanos {
		return e.Factor
	}
	return 1
}

func (e SquareWave) Advance(t, area float64) float64 {
	// Fast-skip whole periods: each contributes a fixed area.
	perPeriod := e.HighNanos*e.Factor + (e.PeriodNanos - e.HighNanos)
	dt := 0.0
	for area > 0 {
		pos := mod(t+dt, e.PeriodNanos)
		var f, edge float64
		if pos < e.HighNanos {
			f, edge = e.Factor, e.HighNanos-pos
		} else {
			f, edge = 1, e.PeriodNanos-pos
		}
		if span := area / f; span <= edge {
			return dt + span
		}
		dt += edge
		area -= edge * f
		// At a period start with lots of area left, skip whole periods.
		if mod(t+dt, e.PeriodNanos) == 0 && area > perPeriod {
			n := float64(int(area / perPeriod))
			dt += n * e.PeriodNanos
			area -= n * perPeriod
		}
	}
	return dt
}

func (e SquareWave) Name() string { return "square" }

func (e SquareWave) String() string {
	return fmt.Sprintf("square@%gns/%gns:x%g", e.PeriodNanos, e.HighNanos, e.Factor)
}

// mod wraps math.Mod for positive operands.
func mod(a, b float64) float64 { return math.Mod(a, b) }

// --- Modulated --------------------------------------------------------------

// Modulated wraps any base Process with an Envelope: the base generates gaps
// in "operational time" at its own mean rate, and the envelope's inverse
// cumulative integral warps them into real time, so the instantaneous
// arrival rate is base-rate × FactorAt(t) while the base's gap shape (CV,
// burst structure) is preserved. Every built-in process composes — a
// modulated MMPP2 is a bursty stream riding a load step.
//
// Modulated carries run state (its position on the virtual clock, which the
// drivers advance implicitly by scheduling each gap after the previous
// arrival); Resolve/Fresh clone it per run like MMPP2. AtMRPS re-rates the
// base process, so Config.RateMRPS keeps meaning "the factor-1 rate".
type Modulated struct {
	Base Process
	Env  Envelope

	tNanos float64 // run state: the process's position in real time
}

// NewModulated wraps base with env. The base's configured rate is the
// factor-1 rate; simulators re-rate it through the usual AtMRPS path.
func NewModulated(base Process, env Envelope) *Modulated {
	if base == nil || env == nil {
		panic("arrival: NewModulated needs a base process and an envelope")
	}
	if _, nested := base.(*Modulated); nested {
		panic("arrival: nested Modulated envelopes are not supported")
	}
	return &Modulated{Base: base, Env: env}
}

func (p *Modulated) Next(r *rng.Source) sim.Duration {
	g := p.Base.Next(r).Nanos() // gap in operational time
	dt := p.Env.Advance(p.tNanos, g)
	p.tNanos += dt
	return sim.FromNanos(dt)
}

func (p *Modulated) Name() string { return "modulated" }

func (p *Modulated) String() string {
	return fmt.Sprintf("%s(%s)", p.Env, p.Base)
}

// AtMRPS re-rates the base process (the factor-1 rate), envelope unchanged.
func (p *Modulated) AtMRPS(rateMRPS float64) Process {
	return &Modulated{Base: AtMRPS(p.Base, rateMRPS), Env: p.Env}
}

func (p *Modulated) fresh() Process {
	return &Modulated{Base: Fresh(p.Base), Env: p.Env}
}

// ParseEnvelope parses the CLI -modulate grammar (durations follow
// sim.ParseDuration — "50us", "1.5ms", bare ns):
//
//	step@AT:xF          e.g. step@400us:x2
//	pulse@START+DUR:xF  e.g. pulse@400us+200us:x2
//	ramp@START+DUR:xF   e.g. ramp@100us+500us:x3
//	square@PERIOD/HIGH:xF e.g. square@200us/50us:x2.5
func ParseEnvelope(spec string) (Envelope, error) {
	kind, rest, ok := strings.Cut(strings.TrimSpace(spec), "@")
	if !ok {
		return nil, fmt.Errorf("arrival: bad envelope %q (want kind@params:xF)", spec)
	}
	params, factorStr, ok := strings.Cut(rest, ":")
	if !ok || !strings.HasPrefix(factorStr, "x") {
		return nil, fmt.Errorf("arrival: envelope %q missing \":x<factor>\"", spec)
	}
	factor, err := strconv.ParseFloat(factorStr[1:], 64)
	if err != nil || !(factor > 0) {
		return nil, fmt.Errorf("arrival: bad envelope factor %q", factorStr)
	}
	dur := func(s string) (float64, error) {
		d, err := sim.ParseDuration(s)
		return d.Nanos(), err
	}
	two := func(sep string) (float64, float64, error) {
		a, b, ok := strings.Cut(params, sep)
		if !ok {
			return 0, 0, fmt.Errorf("arrival: envelope %q wants two durations separated by %q", spec, sep)
		}
		av, err := dur(a)
		if err != nil {
			return 0, 0, err
		}
		bv, err := dur(b)
		if err != nil {
			return 0, 0, err
		}
		return av, bv, nil
	}
	switch kind {
	case "step":
		at, err := dur(params)
		if err != nil {
			return nil, err
		}
		return NewStep(at, factor), nil
	case "pulse":
		start, d, err := two("+")
		if err != nil {
			return nil, err
		}
		if d <= 0 {
			return nil, fmt.Errorf("arrival: pulse duration must be positive in %q", spec)
		}
		return NewPulse(start, d, factor), nil
	case "ramp":
		start, d, err := two("+")
		if err != nil {
			return nil, err
		}
		if d <= 0 {
			return nil, fmt.Errorf("arrival: ramp duration must be positive in %q", spec)
		}
		return NewRamp(start, d, factor), nil
	case "square":
		period, high, err := two("/")
		if err != nil {
			return nil, err
		}
		if !(period > 0) || !(high > 0) || high >= period {
			return nil, fmt.Errorf("arrival: square wave high must lie inside the period in %q", spec)
		}
		return NewSquareWave(period, high, factor), nil
	}
	return nil, fmt.Errorf("arrival: unknown envelope kind %q (want step, pulse, ramp, square)", kind)
}
