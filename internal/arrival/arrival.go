// Package arrival defines the open-loop traffic models that drive every
// simulator in this repository: the machine model (internal/machine), the
// rack-scale cluster (internal/cluster), and the theoretical queueing models
// (internal/queueing) all draw their interarrival gaps from a Process.
//
// The paper evaluates RPCValet under Poisson arrivals, but tails are
// dominated by arrival burstiness, so the reproduction makes the arrival
// process a first-class axis: Poisson (the historical default), MMPP2 (a
// two-state Markov-modulated Poisson process with calm and bursty phases),
// Deterministic (fixed gaps, the queueing-theory D/·/· arrival), and
// LognormalGap (heavy-tailed gaps: long quiet spells punctuated by clumps).
//
// Every Process draws exclusively from the rng.Source passed to Next, so a
// process driven by a deterministic Source yields a deterministic gap
// sequence — the same reproducibility contract internal/dist follows.
// Poisson built by PoissonAtMRPS or PoissonAtPerNs performs bit-for-bit the
// same computation the simulators historically inlined, so configurations
// that predate this package reproduce their exact result streams.
package arrival

import (
	"fmt"
	"math"

	"rpcvalet/internal/rng"
	"rpcvalet/internal/sim"
)

// Process generates the gaps between consecutive request arrivals of an
// open-loop traffic stream.
type Process interface {
	// Next draws the gap to the next arrival using r. Implementations may
	// carry per-run state (MMPP2's current phase); obtain a private
	// instance with Fresh before driving a run.
	Next(r *rng.Source) sim.Duration
	// Name is the process's short registry name ("poisson", "mmpp2",
	// "det", "lognormal"), used by CLI flags and report labels.
	Name() string
	// String describes the process and its parameters for reports.
	String() string
}

// Rerater is implemented by processes that can re-target their mean arrival
// rate while preserving their shape (burst ratio, gap CV). All built-in
// processes implement it; the sweep harness uses it to vary offered load
// along a curve without changing the traffic's character.
type Rerater interface {
	Process
	// AtMRPS returns a process with the same shape whose mean rate is
	// rateMRPS (millions of requests per second).
	AtMRPS(rateMRPS float64) Process
}

// AtMRPS re-targets p to the given mean rate when p supports re-rating and
// rateMRPS is positive, and returns p unchanged otherwise.
func AtMRPS(p Process, rateMRPS float64) Process {
	if rr, ok := p.(Rerater); ok && rateMRPS > 0 {
		return rr.AtMRPS(rateMRPS)
	}
	return p
}

// Fresh returns an instance of p that is safe to drive one simulation run.
// Stateless processes are returned as-is; stateful ones (MMPP2) return a
// reset clone, so a Config holding a Process can be reused across
// concurrent runs without sharing mutable state.
func Fresh(p Process) Process {
	if f, ok := p.(interface{ fresh() Process }); ok {
		return f.fresh()
	}
	return p
}

// Resolve applies the compatibility rule every simulator shares: a nil
// process means Poisson at rateMRPS (nil when the rate is unset too), and a
// non-nil process is re-rated to rateMRPS and cloned for private run state.
func Resolve(p Process, rateMRPS float64) Process {
	if p == nil {
		if rateMRPS > 0 {
			return PoissonAtMRPS(rateMRPS)
		}
		return nil
	}
	return Fresh(AtMRPS(p, rateMRPS))
}

// ResolvePerNs is Resolve for callers that derive a per-ns arrival rate λ
// (the queueing models). The nil path uses PoissonAtPerNs so the historical
// 1/λ conversion stays bit-exact.
func ResolvePerNs(p Process, lambdaPerNs float64) Process {
	if p == nil {
		return PoissonAtPerNs(lambdaPerNs)
	}
	return Fresh(AtMRPS(p, lambdaPerNs*1000))
}

// checkRate rejects rates that would produce a degenerate process — a zero
// or negative rate yields infinite or NaN gaps, which would spin the
// simulation forever at virtual time zero.
func checkRate(what string, rate float64) {
	if !(rate > 0) {
		panic(fmt.Sprintf("arrival: %s rate %g must be positive", what, rate))
	}
}

// --- Poisson --------------------------------------------------------------

// Poisson is the memoryless open-loop arrival process: exponential gaps with
// mean MeanGapNanos. It is the historical default of every simulator here.
type Poisson struct {
	MeanGapNanos float64
}

// PoissonAtMRPS returns a Poisson process offering rateMRPS millions of
// requests per second (mean gap 1000/rateMRPS ns). This is the single place
// the MRPS→interarrival conversion lives. It panics on a non-positive rate.
func PoissonAtMRPS(rateMRPS float64) Poisson {
	checkRate("poisson", rateMRPS)
	return Poisson{MeanGapNanos: 1000 / rateMRPS}
}

// PoissonAtPerNs returns a Poisson process with arrival rate lambdaPerNs
// requests per nanosecond (mean gap 1/lambdaPerNs ns), the parameterization
// the queueing models use. It panics on a non-positive rate.
func PoissonAtPerNs(lambdaPerNs float64) Poisson {
	checkRate("poisson", lambdaPerNs)
	return Poisson{MeanGapNanos: 1 / lambdaPerNs}
}

func (p Poisson) Next(r *rng.Source) sim.Duration {
	return sim.FromNanos(p.MeanGapNanos * r.ExpFloat64())
}

func (p Poisson) Name() string { return "poisson" }

func (p Poisson) String() string { return fmt.Sprintf("poisson(mean=%gns)", p.MeanGapNanos) }

func (p Poisson) AtMRPS(rateMRPS float64) Process { return PoissonAtMRPS(rateMRPS) }

// --- Deterministic --------------------------------------------------------

// Deterministic emits arrivals at fixed gaps of GapNanos — the D/·/· arrival
// of queueing theory, the lowest-variance traffic a rate can be offered at.
type Deterministic struct {
	GapNanos float64
}

// DeterministicAtMRPS returns fixed-gap arrivals at rateMRPS millions of
// requests per second. It panics on a non-positive rate.
func DeterministicAtMRPS(rateMRPS float64) Deterministic {
	checkRate("det", rateMRPS)
	return Deterministic{GapNanos: 1000 / rateMRPS}
}

func (p Deterministic) Next(*rng.Source) sim.Duration { return sim.FromNanos(p.GapNanos) }

func (p Deterministic) Name() string { return "det" }

func (p Deterministic) String() string { return fmt.Sprintf("det(gap=%gns)", p.GapNanos) }

func (p Deterministic) AtMRPS(rateMRPS float64) Process { return DeterministicAtMRPS(rateMRPS) }

// --- LognormalGap ---------------------------------------------------------

// LognormalGap draws gaps from a lognormal: exp(N(Mu, Sigma²)) nanoseconds.
// With Sigma well above 1 the gap distribution is heavy-tailed — most gaps
// are much shorter than the mean (clumps of arrivals) with occasional very
// long quiet spells, a crude model of on/off client behavior.
type LognormalGap struct {
	Mu, Sigma float64
}

// LognormalAtMRPS returns lognormal gaps with mean 1000/rateMRPS ns and the
// given sigma (gap CV = sqrt(e^sigma² − 1)). It panics on a non-positive
// rate.
func LognormalAtMRPS(rateMRPS, sigma float64) LognormalGap {
	checkRate("lognormal", rateMRPS)
	mean := 1000 / rateMRPS
	return LognormalGap{Mu: math.Log(mean) - sigma*sigma/2, Sigma: sigma}
}

func (p LognormalGap) Next(r *rng.Source) sim.Duration {
	return sim.FromNanos(math.Exp(p.Mu + p.Sigma*r.NormFloat64()))
}

// MeanGapNanos returns the analytic mean gap, exp(Mu + Sigma²/2).
func (p LognormalGap) MeanGapNanos() float64 { return math.Exp(p.Mu + p.Sigma*p.Sigma/2) }

func (p LognormalGap) Name() string { return "lognormal" }

func (p LognormalGap) String() string {
	return fmt.Sprintf("lognormal(mean=%.3gns,sigma=%g)", p.MeanGapNanos(), p.Sigma)
}

func (p LognormalGap) AtMRPS(rateMRPS float64) Process {
	return LognormalAtMRPS(rateMRPS, p.Sigma)
}

// --- MMPP2 ----------------------------------------------------------------

// MMPP2 is a two-state Markov-modulated Poisson process: arrivals are
// Poisson at CalmRate while the process is calm and at BurstRate while it
// bursts, with exponentially distributed dwell times in each state. It is
// the standard model of bursty traffic whose short-term rate exceeds the
// long-term mean — the regime where partitioned queueing systems fall apart
// at the tail while a single queue absorbs the burst.
//
// MMPP2 carries run state (current phase, residual dwell); use NewMMPP2 (or
// Fresh on an existing instance) to obtain an independent process per run.
type MMPP2 struct {
	CalmRate, BurstRate             float64 // arrivals per ns in each state
	CalmDwellNanos, BurstDwellNanos float64 // mean dwell per state, ns

	// Run state: current phase and the remaining dwell in it.
	burst          bool
	dwellLeftNanos float64
	dwellSet       bool
}

// NewMMPP2 builds a two-state MMPP with overall mean rate rateMRPS, burst
// rate burstRatio times the calm rate, and mean dwells of calmDwellNanos and
// burstDwellNanos in the two states. burstRatio must be ≥ 1 and the dwells
// positive; rateMRPS is apportioned so the long-run mean rate is exact:
// rate = (CalmRate·CalmDwell + BurstRate·BurstDwell)/(CalmDwell+BurstDwell).
func NewMMPP2(rateMRPS, burstRatio, calmDwellNanos, burstDwellNanos float64) *MMPP2 {
	if !(rateMRPS > 0) || burstRatio < 1 || !(calmDwellNanos > 0) || !(burstDwellNanos > 0) {
		panic(fmt.Sprintf("arrival: invalid MMPP2(rate=%g, ratio=%g, dwells=%g/%g)",
			rateMRPS, burstRatio, calmDwellNanos, burstDwellNanos))
	}
	mean := rateMRPS / 1000 // per ns
	calm := mean * (calmDwellNanos + burstDwellNanos) / (calmDwellNanos + burstRatio*burstDwellNanos)
	return &MMPP2{
		CalmRate:        calm,
		BurstRate:       burstRatio * calm,
		CalmDwellNanos:  calmDwellNanos,
		BurstDwellNanos: burstDwellNanos,
	}
}

// MeanRatePerNs returns the long-run mean arrival rate in requests per ns.
func (p *MMPP2) MeanRatePerNs() float64 {
	return (p.CalmRate*p.CalmDwellNanos + p.BurstRate*p.BurstDwellNanos) /
		(p.CalmDwellNanos + p.BurstDwellNanos)
}

// BurstRatio returns BurstRate/CalmRate.
func (p *MMPP2) BurstRatio() float64 { return p.BurstRate / p.CalmRate }

// Next advances the modulating chain and the arrival clock together: within
// a state both the next arrival and the state's remaining dwell are
// exponential, so the competing-clocks construction is exact.
func (p *MMPP2) Next(r *rng.Source) sim.Duration {
	gap := 0.0
	for {
		if !p.dwellSet {
			d := p.CalmDwellNanos
			if p.burst {
				d = p.BurstDwellNanos
			}
			p.dwellLeftNanos = d * r.ExpFloat64()
			p.dwellSet = true
		}
		rate := p.CalmRate
		if p.burst {
			rate = p.BurstRate
		}
		a := r.ExpFloat64() / rate
		if a <= p.dwellLeftNanos {
			p.dwellLeftNanos -= a
			return sim.FromNanos(gap + a)
		}
		gap += p.dwellLeftNanos
		p.burst = !p.burst
		p.dwellSet = false
	}
}

func (p *MMPP2) Name() string { return "mmpp2" }

func (p *MMPP2) String() string {
	return fmt.Sprintf("mmpp2(mean=%.3g/ns,ratio=%.3g,dwell=%gns/%gns)",
		p.MeanRatePerNs(), p.BurstRatio(), p.CalmDwellNanos, p.BurstDwellNanos)
}

// AtMRPS re-targets the mean rate, scaling the dwell times inversely so the
// mean number of arrivals per phase — the burst structure as the queues see
// it — is preserved along with the burst ratio. Without this, re-rating a
// process to a much faster system would leave phases spanning so many
// arrivals that a finite run never sees a state change.
func (p *MMPP2) AtMRPS(rateMRPS float64) Process {
	f := (rateMRPS / 1000) / p.MeanRatePerNs()
	return &MMPP2{
		CalmRate:        p.CalmRate * f,
		BurstRate:       p.BurstRate * f,
		CalmDwellNanos:  p.CalmDwellNanos / f,
		BurstDwellNanos: p.BurstDwellNanos / f,
	}
}

func (p *MMPP2) fresh() Process {
	q := *p
	q.burst, q.dwellLeftNanos, q.dwellSet = false, 0, false
	return &q
}

// --- Registry -------------------------------------------------------------

// Default shape parameters for ByName's processes. MMPP2 defaults spend a
// third of the time in bursts at 2.5× the calm rate, putting the short-term
// rate at 1.67× the long-run mean — bursty enough that a system at moderate
// mean load is driven to its capacity during bursts, without tipping the
// whole chip into sustained overload. The lognormal's sigma of 1.5 gives a
// gap CV ≈ 2.9 (Poisson's is 1).
const (
	DefaultBurstRatio      = 2.5
	DefaultCalmDwellNanos  = 40000.0
	DefaultBurstDwellNanos = 20000.0
	DefaultLognormalSigma  = 1.5
)

// Names lists the built-in process names in report order.
var Names = []string{"poisson", "det", "mmpp2", "lognormal"}

// ByName builds a named arrival process at the given mean rate (MRPS) with
// the package's default shape parameters: "poisson", "det" (or
// "deterministic"), "mmpp2", "lognormal".
func ByName(name string, rateMRPS float64) (Process, error) {
	if !(rateMRPS > 0) {
		return nil, fmt.Errorf("arrival: rate %g MRPS must be positive", rateMRPS)
	}
	switch name {
	case "poisson":
		return PoissonAtMRPS(rateMRPS), nil
	case "det", "deterministic":
		return DeterministicAtMRPS(rateMRPS), nil
	case "mmpp2":
		return NewMMPP2(rateMRPS, DefaultBurstRatio, DefaultCalmDwellNanos, DefaultBurstDwellNanos), nil
	case "lognormal":
		return LognormalAtMRPS(rateMRPS, DefaultLognormalSigma), nil
	}
	return nil, fmt.Errorf("arrival: unknown process %q (have %v)", name, Names)
}
