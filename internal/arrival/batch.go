package arrival

import (
	"rpcvalet/internal/rng"
	"rpcvalet/internal/sim"
)

// Batch pre-draws interarrival gaps from a Process in blocks, the simulators'
// scratch-buffer amortization of the per-arrival interface call.
//
// Correctness contract (the same one rng's batches keep): the Process and
// the Source are private to this batch, gaps are handed out in exactly the
// order they were drawn, and a Process's state (MMPP2's phase, Modulated's
// operational clock) evolves only inside Next — so the k-th gap a simulation
// consumes is byte-identical with or without batching, and leftover buffered
// gaps at run end are unobservable.
type Batch struct {
	p   Process
	r   *rng.Source
	buf []sim.Duration
	pos int
}

// NewBatch wraps p's gap stream over r in blocks of size (0 = the rng
// package's DefaultBatch). Both p and r must have no other consumer.
func NewBatch(p Process, r *rng.Source, size int) *Batch {
	if size <= 0 {
		size = rng.DefaultBatch
	}
	b := &Batch{p: p, r: r, buf: make([]sim.Duration, size)}
	b.pos = size
	return b
}

// Next returns the next gap, refilling the scratch block when it runs dry.
func (b *Batch) Next() sim.Duration {
	if b.pos == len(b.buf) {
		for i := range b.buf {
			b.buf[i] = b.p.Next(b.r)
		}
		b.pos = 0
	}
	v := b.buf[b.pos]
	b.pos++
	return v
}
