package arrival

import (
	"math"
	"testing"

	"rpcvalet/internal/rng"
)

// integrate numerically checks Advance against the factor's cumulative
// integral: FactorAt integrated over [t, t+Advance(t, area)] must equal area.
func checkAdvance(t *testing.T, e Envelope, from, area float64) {
	t.Helper()
	dt := e.Advance(from, area)
	if dt < 0 {
		t.Fatalf("%s.Advance(%g, %g) = %g < 0", e, from, area, dt)
	}
	// Trapezoidal integration at fine steps (envelopes are piecewise
	// linear, so this converges fast).
	const steps = 200000
	h := dt / steps
	sum := 0.0
	for i := 0; i < steps; i++ {
		a := from + float64(i)*h
		sum += h * (e.FactorAt(a) + e.FactorAt(a+h)) / 2
	}
	if rel := math.Abs(sum-area) / area; rel > 1e-3 {
		t.Fatalf("%s.Advance(%g, %g) = %g integrates to %g (rel err %g)", e, from, area, dt, sum, rel)
	}
}

func TestEnvelopeAdvanceInvertsIntegral(t *testing.T) {
	envs := []Envelope{
		NewStep(1000, 2),
		NewStep(1000, 0.5),
		NewPulse(1000, 500, 3),
		NewRamp(1000, 2000, 2.5),
		NewRamp(500, 1000, 0.25),
		NewSquareWave(400, 100, 2),
	}
	for _, e := range envs {
		for _, from := range []float64{0, 900, 1000, 1200, 2900, 5000} {
			for _, area := range []float64{10, 500, 1500, 6000} {
				checkAdvance(t, e, from, area)
			}
		}
	}
}

func TestEnvelopeFactors(t *testing.T) {
	s := NewStep(100, 2)
	if s.FactorAt(99) != 1 || s.FactorAt(100) != 2 || s.FactorAt(1e9) != 2 {
		t.Fatal("step factors wrong")
	}
	p := NewPulse(100, 50, 3)
	if p.FactorAt(99) != 1 || p.FactorAt(100) != 3 || p.FactorAt(149) != 3 || p.FactorAt(150) != 1 {
		t.Fatal("pulse factors wrong")
	}
	r := NewRamp(100, 100, 3)
	if r.FactorAt(0) != 1 || r.FactorAt(150) != 2 || r.FactorAt(200) != 3 || r.FactorAt(1e9) != 3 {
		t.Fatal("ramp factors wrong")
	}
	q := NewSquareWave(100, 25, 2)
	if q.FactorAt(10) != 2 || q.FactorAt(30) != 1 || q.FactorAt(110) != 2 || q.FactorAt(160) != 1 {
		t.Fatal("square factors wrong")
	}
}

// TestModulatedMeanRate: over a region where the envelope holds factor f,
// the modulated process's mean rate is f × the base rate, for every base
// shape.
func TestModulatedMeanRate(t *testing.T) {
	const rate = 10.0 // MRPS → mean gap 100ns
	for _, base := range []Process{
		PoissonAtMRPS(rate),
		DeterministicAtMRPS(rate),
		LognormalAtMRPS(rate, 1.0),
		NewMMPP2(rate, 2, 4000, 2000),
	} {
		m := Fresh(NewModulated(base, NewStep(0, 2))).(*Modulated) // factor 2 from t=0
		r := rng.New(7)
		n := 20000
		total := 0.0
		for i := 0; i < n; i++ {
			total += m.Next(r).Nanos()
		}
		meanGap := total / float64(n)
		want := 100.0 / 2 // base gap compressed 2×
		if math.Abs(meanGap-want)/want > 0.08 {
			t.Errorf("%s: mean gap %g, want ≈%g", base.Name(), meanGap, want)
		}
	}
}

// TestModulatedPulseDensity: arrivals inside a pulse come factor× denser
// than outside it.
func TestModulatedPulseDensity(t *testing.T) {
	const rate = 10.0
	pulse := NewPulse(200_000, 100_000, 3)
	m := Fresh(NewModulated(PoissonAtMRPS(rate), pulse)).(*Modulated)
	r := rng.New(3)
	tNow, inPulse, prePulse := 0.0, 0, 0
	for tNow < 500_000 {
		tNow += m.Next(r).Nanos()
		switch {
		case tNow >= 200_000 && tNow < 300_000:
			inPulse++
		case tNow < 200_000:
			prePulse++
		}
	}
	// Pre-pulse: 200µs at 10/µs ≈ 2000 arrivals; pulse: 100µs at 30/µs ≈ 3000.
	perUsIn, perUsPre := float64(inPulse)/100, float64(prePulse)/200
	if ratio := perUsIn / perUsPre; ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("pulse density ratio = %.2f, want ≈3 (in %d, pre %d)", ratio, inPulse, prePulse)
	}
}

// TestModulatedDeterminism: same seed, same gap sequence; Fresh resets run
// state so a reused config does not leak clock position across runs.
func TestModulatedDeterminism(t *testing.T) {
	cfgProcess := NewModulated(PoissonAtMRPS(5), NewSquareWave(50_000, 10_000, 2))
	gaps := func() []float64 {
		p := Fresh(cfgProcess)
		r := rng.New(42)
		out := make([]float64, 500)
		for i := range out {
			out[i] = p.Next(r).Nanos()
		}
		return out
	}
	a, b := gaps(), gaps()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("gap %d differs: %g vs %g", i, a[i], b[i])
		}
	}
	// The original wrapper's state must be untouched by the Fresh clones.
	if cfgProcess.tNanos != 0 {
		t.Fatalf("config-held process mutated: t=%g", cfgProcess.tNanos)
	}
}

// TestModulatedRerates: AtMRPS re-rates the base (the factor-1 rate) while
// keeping the envelope.
func TestModulatedRerates(t *testing.T) {
	m := NewModulated(PoissonAtMRPS(1), NewStep(0, 2))
	rr := AtMRPS(m, 20).(*Modulated)
	if rr.Base.(Poisson).MeanGapNanos != 50 {
		t.Fatalf("base not re-rated: %+v", rr.Base)
	}
	if rr.Env.(Step).Factor != 2 {
		t.Fatalf("envelope lost in re-rating: %+v", rr.Env)
	}
	// Resolve composes re-rating and freshening without losing the wrapper.
	p := Resolve(m, 20)
	if _, ok := p.(*Modulated); !ok {
		t.Fatalf("Resolve returned %T", p)
	}
}

func TestParseEnvelope(t *testing.T) {
	cases := map[string]string{
		"step@400us:x2":          "step@400000ns:x2",
		"pulse@400us+200us:x2":   "pulse@400000ns+200000ns:x2",
		"ramp@100us+500us:x3":    "ramp@100000ns+500000ns:x3",
		"square@200us/50us:x2.5": "square@200000ns/50000ns:x2.5",
		"step@1000:x0.5":         "step@1000ns:x0.5",
	}
	for spec, want := range cases {
		e, err := ParseEnvelope(spec)
		if err != nil {
			t.Errorf("ParseEnvelope(%q): %v", spec, err)
			continue
		}
		if e.String() != want {
			t.Errorf("ParseEnvelope(%q) = %s, want %s", spec, e, want)
		}
	}
	for _, bad := range []string{
		"", "step", "step@400us", "step@400us:y2", "step@400us:x0", "step@zz:x2",
		"pulse@400us:x2", "pulse@400us+0:x2", "ramp@1us+0:x2",
		"square@50us/50us:x2", "square@50us+10us:x2", "sine@50us:x2",
	} {
		if _, err := ParseEnvelope(bad); err == nil {
			t.Errorf("ParseEnvelope(%q) accepted", bad)
		}
	}
}

func TestModulatedString(t *testing.T) {
	m := NewModulated(PoissonAtMRPS(10), NewPulse(100, 50, 2))
	if m.Name() != "modulated" {
		t.Fatalf("name = %s", m.Name())
	}
	want := "pulse@100ns+50ns:x2(poisson(mean=100ns))"
	if m.String() != want {
		t.Fatalf("string = %s, want %s", m, want)
	}
}

func TestNestedModulatedRejected(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nested Modulated accepted")
		}
	}()
	NewModulated(NewModulated(PoissonAtMRPS(1), NewStep(0, 2)), NewStep(0, 2))
}

func TestParseEnvelopeRejectsTrailingGarbage(t *testing.T) {
	for _, bad := range []string{"step@400us:x2..5", "step@400us:x2x3", "pulse@1us+1us:x1e"} {
		if _, err := ParseEnvelope(bad); err == nil {
			t.Errorf("ParseEnvelope(%q) accepted", bad)
		}
	}
}
