package ni

import (
	"testing"
)

func TestSpecByNameKnown(t *testing.T) {
	for _, name := range PolicyNames {
		s, err := SpecByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Name != name || s.New == nil {
			t.Fatalf("%s: spec %+v", name, s)
		}
		p := s.New(Group{Index: 0, Cores: []int{0, 1, 2, 3}, Row: 1, MeshWidth: 4, Seed: 7})
		if p == nil {
			t.Fatalf("%s: nil policy", name)
		}
		// Every policy must pick from the available set.
		got := p.Pick(Msg{}, []int{4, 5, 6, 7}, []int{1, 0, 1, 1})
		if got < 4 || got > 7 {
			t.Fatalf("%s: picked %d outside available set", name, got)
		}
	}
}

func TestSpecByNameRandomN(t *testing.T) {
	for _, name := range []string{"random2", "random3", "random16"} {
		if _, err := SpecByName(name); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	for _, name := range []string{"random", "random1", "random0", "randomx", "bogus"} {
		if _, err := SpecByName(name); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
}

// TestRandomOfDPrefersShorter: with a large d the sample almost surely
// covers the least-loaded core, so over many trials the shortest queue must
// dominate the picks; determinism must hold for equal seeds.
func TestRandomOfDPrefersShorter(t *testing.T) {
	avail := []int{0, 1, 2, 3}
	out := []int{3, 3, 0, 3}
	a, b := NewRandomOfD(4, 42), NewRandomOfD(4, 42)
	hits := 0
	for i := 0; i < 1000; i++ {
		pa, pb := a.Pick(Msg{}, avail, out), b.Pick(Msg{}, avail, out)
		if pa != pb {
			t.Fatal("equal seeds diverged")
		}
		if pa == 2 {
			hits++
		}
	}
	if hits < 600 {
		t.Fatalf("least-loaded core picked only %d/1000 times with d=4", hits)
	}
	if NewRandomOfD(2, 1).Pick(Msg{}, []int{9}, []int{0}) != 9 {
		t.Fatal("single available core not picked")
	}
}

func TestRandomOfDRejectsD1(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("d=1 accepted")
		}
	}()
	NewRandomOfD(1, 0)
}

// TestLocalFirstPrefersHomeRow: cores on the dispatcher's mesh row win while
// any of them are available; off-row cores are the spillover.
func TestLocalFirstPrefersHomeRow(t *testing.T) {
	// MeshWidth 4: row 1 is cores 4-7.
	p := LocalFirst{HomeRow: 1, MeshWidth: 4}
	// Home-row core available with higher occupancy than an off-row core:
	// locality wins, and within the row the least-outstanding core wins.
	got := p.Pick(Msg{}, []int{0, 4, 5, 12}, []int{0, 1, 2, 0})
	if got != 4 {
		t.Fatalf("picked %d, want home-row core 4", got)
	}
	// Home row saturated: least-outstanding anywhere.
	got = p.Pick(Msg{}, []int{0, 12, 13}, []int{1, 0, 1})
	if got != 12 {
		t.Fatalf("picked %d, want least-outstanding fallback 12", got)
	}
}

func TestNewPolicyStrings(t *testing.T) {
	cases := map[string]Policy{
		"random2":      NewRandomOfD(2, 0),
		"local(row 3)": LocalFirst{HomeRow: 3, MeshWidth: 4},
	}
	for want, p := range cases {
		if got := p.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

// TestDispatcherWithBoundedPolicyQueue: a dispatcher driving LeastOutstanding
// under threshold 1 behaves as strict JBSQ(1) — never more than one
// outstanding per core.
func TestDispatcherJBSQ1Bound(t *testing.T) {
	d, err := NewDispatcher([]int{0, 1, 2}, 1, LeastOutstanding{})
	if err != nil {
		t.Fatal(err)
	}
	dispatched := 0
	for i := 0; i < 6; i++ {
		if _, ok := d.Enqueue(Msg{Tag: uint64(i)}); ok {
			dispatched++
		}
	}
	if dispatched != 3 {
		t.Fatalf("dispatched %d of 6 with 3 cores at threshold 1", dispatched)
	}
	for _, c := range []int{0, 1, 2} {
		if d.Outstanding(c) != 1 {
			t.Fatalf("core %d outstanding %d, want 1", c, d.Outstanding(c))
		}
	}
	if _, ok := d.Complete(0); !ok {
		t.Fatal("completion did not trigger the queued dispatch")
	}
}
