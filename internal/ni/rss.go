package ni

// RSS implements receive-side-scaling-style static load distribution: a
// stateless hash of a flow identifier selects one of n receive queues. This
// is the paper's Model 16×1 baseline — "the only currently existing
// NI-driven load distribution mechanism" — which spreads flows evenly but is
// oblivious to instantaneous core load.

// rssHash is a 64-bit finalizer (SplitMix64's mixing function), standing in
// for the Toeplitz hash real NICs use. What matters for the model is that it
// is deterministic per flow and spreads flows uniformly.
func rssHash(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// RSSQueue returns the queue (core) index in [0, n) for the given flow
// identifier. It panics if n <= 0.
func RSSQueue(flow uint64, n int) int {
	if n <= 0 {
		panic("ni: RSSQueue with non-positive queue count")
	}
	return int(rssHash(flow) % uint64(n))
}
