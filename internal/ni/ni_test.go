package ni

import (
	"math"
	"testing"
	"testing/quick"

	"rpcvalet/internal/rng"
)

func mustDispatcher(t *testing.T, cores []int, threshold int, p Policy) *Dispatcher {
	t.Helper()
	d, err := NewDispatcher(cores, threshold, p)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewDispatcherErrors(t *testing.T) {
	if _, err := NewDispatcher(nil, 2, nil); err == nil {
		t.Fatal("empty group accepted")
	}
	if _, err := NewDispatcher([]int{0}, 0, nil); err == nil {
		t.Fatal("zero threshold accepted")
	}
	if _, err := NewDispatcher([]int{1, 1}, 2, nil); err == nil {
		t.Fatal("duplicate core accepted")
	}
}

func TestImmediateDispatchWhenIdle(t *testing.T) {
	d := mustDispatcher(t, []int{0, 1, 2, 3}, 2, nil)
	dis, ok := d.Enqueue(Msg{Slot: 7})
	if !ok || dis.Core != 0 || dis.Msg.Slot != 7 {
		t.Fatalf("dispatch = %+v ok=%v", dis, ok)
	}
	if d.Outstanding(0) != 1 {
		t.Fatalf("outstanding = %d", d.Outstanding(0))
	}
}

func TestThresholdGate(t *testing.T) {
	d := mustDispatcher(t, []int{0, 1}, 2, nil)
	// 4 messages fill both cores to threshold 2 (first-available policy
	// fills core 0 first).
	for i := 0; i < 4; i++ {
		if _, ok := d.Enqueue(Msg{Slot: i}); !ok {
			t.Fatalf("message %d not dispatched", i)
		}
	}
	if d.Outstanding(0) != 2 || d.Outstanding(1) != 2 {
		t.Fatalf("outstanding = %d,%d", d.Outstanding(0), d.Outstanding(1))
	}
	// The 5th queues.
	if _, ok := d.Enqueue(Msg{Slot: 4}); ok {
		t.Fatal("message dispatched beyond threshold")
	}
	if d.QueueDepth() != 1 {
		t.Fatalf("queue depth = %d", d.QueueDepth())
	}
	// A completion frees capacity and dispatches the queued message FIFO.
	dis, ok := d.Complete(1)
	if !ok || dis.Msg.Slot != 4 || dis.Core != 1 {
		t.Fatalf("post-complete dispatch = %+v ok=%v", dis, ok)
	}
}

func TestFIFOOrder(t *testing.T) {
	d := mustDispatcher(t, []int{0}, 1, nil)
	d.Enqueue(Msg{Slot: 0}) // dispatched immediately
	for i := 1; i <= 5; i++ {
		d.Enqueue(Msg{Slot: i}) // queue
	}
	for i := 1; i <= 5; i++ {
		dis, ok := d.Complete(0)
		if !ok || dis.Msg.Slot != i {
			t.Fatalf("completion %d dispatched %+v ok=%v", i, dis, ok)
		}
	}
}

func TestCompletePanicsAtZero(t *testing.T) {
	d := mustDispatcher(t, []int{0}, 2, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("Complete with zero outstanding did not panic")
		}
	}()
	d.Complete(0)
}

func TestOutstandingPanicsOnForeignCore(t *testing.T) {
	d := mustDispatcher(t, []int{0, 1}, 2, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("foreign core did not panic")
		}
	}()
	d.Outstanding(5)
}

func TestUnlimitedThresholdNeverQueues(t *testing.T) {
	d := mustDispatcher(t, []int{3}, Unlimited, nil)
	for i := 0; i < 1000; i++ {
		if _, ok := d.Enqueue(Msg{Slot: i}); !ok {
			t.Fatalf("message %d queued under Unlimited threshold", i)
		}
	}
	if d.Outstanding(3) != 1000 {
		t.Fatalf("outstanding = %d", d.Outstanding(3))
	}
	if d.QueueDepth() != 0 {
		t.Fatal("queue should stay empty")
	}
}

func TestLeastOutstandingPolicy(t *testing.T) {
	d := mustDispatcher(t, []int{0, 1, 2}, 2, LeastOutstanding{})
	d.Enqueue(Msg{}) // core 0 (all zero, tie to low ID)
	d.Enqueue(Msg{}) // core 1 now least
	dis, _ := d.Enqueue(Msg{})
	if dis.Core != 2 {
		t.Fatalf("third message to core %d, want 2", dis.Core)
	}
	dis, _ = d.Enqueue(Msg{}) // all at 1; ties to 0
	if dis.Core != 0 {
		t.Fatalf("fourth message to core %d, want 0", dis.Core)
	}
}

func TestRoundRobinPolicy(t *testing.T) {
	d := mustDispatcher(t, []int{5, 6, 7}, Unlimited, &RoundRobin{})
	var got []int
	for i := 0; i < 6; i++ {
		dis, ok := d.Enqueue(Msg{})
		if !ok {
			t.Fatal("no dispatch")
		}
		got = append(got, dis.Core)
	}
	want := []int{5, 6, 7, 5, 6, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("round robin order %v, want %v", got, want)
		}
	}
}

func TestAffinityPolicy(t *testing.T) {
	p := Affinity{Preferred: map[uint64][]int{42: {2, 1}}}
	d := mustDispatcher(t, []int{0, 1, 2}, 1, p)
	// Tagged message goes to preferred core 2.
	dis, _ := d.Enqueue(Msg{Tag: 42})
	if dis.Core != 2 {
		t.Fatalf("affinity dispatched to %d, want 2", dis.Core)
	}
	// Preferred core busy: falls to next preference (1).
	dis, _ = d.Enqueue(Msg{Tag: 42})
	if dis.Core != 1 {
		t.Fatalf("affinity fallback to %d, want 1", dis.Core)
	}
	// Untagged message uses fallback policy (first available = 0).
	dis, _ = d.Enqueue(Msg{Tag: 7})
	if dis.Core != 0 {
		t.Fatalf("untagged to %d, want 0", dis.Core)
	}
}

func TestPolicyStrings(t *testing.T) {
	for _, p := range []Policy{FirstAvailable{}, LeastOutstanding{}, &LeastOutstandingRR{}, &RoundRobin{}, Affinity{}} {
		if p.String() == "" {
			t.Fatal("empty policy name")
		}
	}
}

// TestLeastOutstandingRRPrefersIdle: a core already holding one request must
// not receive another while a fully idle core exists — the occupancy
// feedback that keeps short RPCs from queueing behind long ones.
func TestLeastOutstandingRRPrefersIdle(t *testing.T) {
	d := mustDispatcher(t, []int{0, 1, 2}, 2, &LeastOutstandingRR{})
	first, _ := d.Enqueue(Msg{})
	second, _ := d.Enqueue(Msg{})
	third, _ := d.Enqueue(Msg{})
	seen := map[int]bool{first.Core: true, second.Core: true, third.Core: true}
	if len(seen) != 3 {
		t.Fatalf("first three dispatches reused a core: %v %v %v", first.Core, second.Core, third.Core)
	}
	// All cores now hold one; a fourth dispatch must still succeed (all
	// below threshold 2) and rotation must continue.
	fourth, ok := d.Enqueue(Msg{})
	if !ok {
		t.Fatal("fourth dispatch blocked below threshold")
	}
	if d.Outstanding(fourth.Core) != 2 {
		t.Fatalf("fourth core outstanding = %d", d.Outstanding(fourth.Core))
	}
}

func TestLeastOutstandingRRRotatesTies(t *testing.T) {
	d := mustDispatcher(t, []int{0, 1, 2, 3}, Unlimited, &LeastOutstandingRR{})
	counts := map[int]int{}
	for i := 0; i < 400; i++ {
		dis, _ := d.Enqueue(Msg{})
		counts[dis.Core]++
		// Immediately complete so all cores stay tied at zero.
		d.Complete(dis.Core)
	}
	for c, n := range counts {
		if n != 100 {
			t.Fatalf("core %d received %d dispatches, want 100 (fair rotation)", c, n)
		}
	}
}

func TestStatsAndMaxDepth(t *testing.T) {
	d := mustDispatcher(t, []int{0}, 1, nil)
	for i := 0; i < 5; i++ {
		d.Enqueue(Msg{Slot: i})
	}
	enq, del := d.Stats()
	if enq != 5 || del != 1 {
		t.Fatalf("stats = %d,%d", enq, del)
	}
	if d.MaxQueueDepth() != 4 {
		t.Fatalf("max depth = %d, want 4", d.MaxQueueDepth())
	}
}

// Property: under any interleaving of enqueues and completions, (a) no core
// ever exceeds the threshold, (b) messages dispatch in strict FIFO order,
// and (c) conservation holds: enqueued = delivered + queued.
func TestPropertyDispatcherInvariants(t *testing.T) {
	f := func(seed uint64, thr8, ncores8 uint8) bool {
		ncores := int(ncores8%8) + 1
		thr := int(thr8%3) + 1
		cores := make([]int, ncores)
		for i := range cores {
			cores[i] = i * 10 // non-contiguous IDs to exercise the index map
		}
		d, err := NewDispatcher(cores, thr, LeastOutstanding{})
		if err != nil {
			return false
		}
		src := rng.New(seed)
		inFlight := map[int]int{}
		nextSlot := 0
		wantNext := 0 // FIFO check: slots must dispatch in issue order
		for step := 0; step < 3000; step++ {
			if src.IntN(2) == 0 {
				dis, ok := d.Enqueue(Msg{Slot: nextSlot})
				nextSlot++
				if ok {
					if dis.Msg.Slot != wantNext {
						return false
					}
					wantNext++
					inFlight[dis.Core]++
				}
			} else {
				// Complete a random busy core.
				var busy []int
				for c, n := range inFlight {
					if n > 0 {
						busy = append(busy, c)
					}
				}
				if len(busy) == 0 {
					continue
				}
				c := busy[src.IntN(len(busy))]
				dis, ok := d.Complete(c)
				inFlight[c]--
				if ok {
					if dis.Msg.Slot != wantNext {
						return false
					}
					wantNext++
					inFlight[dis.Core]++
				}
			}
			for _, c := range cores {
				if got := d.Outstanding(c); got > thr || got != inFlight[c] {
					return false
				}
			}
			enq, del := d.Stats()
			if enq != del+uint64(d.QueueDepth()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRSSDeterministic(t *testing.T) {
	for flow := uint64(0); flow < 100; flow++ {
		a, b := RSSQueue(flow, 16), RSSQueue(flow, 16)
		if a != b {
			t.Fatal("RSS not deterministic")
		}
		if a < 0 || a >= 16 {
			t.Fatalf("RSS out of range: %d", a)
		}
	}
}

func TestRSSUniformity(t *testing.T) {
	const flows, queues = 200000, 16
	counts := make([]int, queues)
	for f := 0; f < flows; f++ {
		counts[RSSQueue(uint64(f), queues)]++
	}
	want := float64(flows) / queues
	for q, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.03 {
			t.Fatalf("queue %d has %d flows, want ~%v", q, c, want)
		}
	}
}

func TestRSSPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RSSQueue(_, 0) did not panic")
		}
	}()
	RSSQueue(1, 0)
}
