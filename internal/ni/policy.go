package ni

import (
	"fmt"
	"strconv"
	"strings"

	"rpcvalet/internal/rng"
)

// This file holds the declarative side of the dispatch-policy layer: the
// parameterized policies beyond the simple arbiters in ni.go, and the Spec
// registry that lets a dispatch plan name a policy ("least-outstanding",
// "random2", "local", ...) and have each dispatcher receive its own fresh,
// deterministically seeded instance. Policies carry state (rotation
// counters, RNG streams), so sharing one instance across dispatchers would
// entangle their decisions; Spec.New exists to prevent exactly that.

// Group describes the dispatcher a policy instance will serve: its index
// within the machine, its core IDs, and enough mesh geometry for
// locality-aware policies. Seed is a per-dispatcher deterministic stream
// seed for randomized policies — derived from the run seed and the group
// index, so identical configurations reproduce identical dispatch decisions.
type Group struct {
	Index     int   // dispatcher index within the machine
	Cores     []int // core IDs in this dispatcher's group
	Row       int   // mesh row of the dispatcher's tile
	MeshWidth int   // mesh width, for the core ID → row mapping
	Seed      uint64
}

// Spec names a dispatch policy and builds fresh instances per dispatcher.
// The zero Spec means "default": the machine falls back to its historical
// occupancy-feedback arbiter (LeastOutstandingRR).
type Spec struct {
	Name string
	New  func(Group) Policy
}

// PolicyNames lists the built-in policy names in report order. randomN is
// accepted for any N ≥ 2 ("random2", "random3", ...); the canonical list
// shows the power-of-two-choices instance.
var PolicyNames = []string{
	"first-available",
	"round-robin",
	"least-outstanding",
	"least-outstanding-rr",
	"random2",
	"local",
}

// SpecByName resolves a policy name to its Spec. Accepted names are those in
// PolicyNames, with "randomN" generalized to any N ≥ 2.
func SpecByName(name string) (Spec, error) {
	switch name {
	case "first-available":
		return Spec{Name: name, New: func(Group) Policy { return FirstAvailable{} }}, nil
	case "round-robin":
		return Spec{Name: name, New: func(Group) Policy { return &RoundRobin{} }}, nil
	case "least-outstanding":
		return Spec{Name: name, New: func(Group) Policy { return LeastOutstanding{} }}, nil
	case "least-outstanding-rr":
		return Spec{Name: name, New: func(Group) Policy { return &LeastOutstandingRR{} }}, nil
	case "local":
		return Spec{Name: name, New: func(g Group) Policy {
			return &LocalFirst{HomeRow: g.Row, MeshWidth: g.MeshWidth}
		}}, nil
	}
	if d, ok := strings.CutPrefix(name, "random"); ok {
		n, err := strconv.Atoi(d)
		if err != nil || n < 2 {
			return Spec{}, fmt.Errorf("ni: bad random-of-d policy %q (want random2, random3, ...)", name)
		}
		return Spec{Name: name, New: func(g Group) Policy { return NewRandomOfD(n, g.Seed) }}, nil
	}
	return Spec{}, fmt.Errorf("ni: unknown dispatch policy %q (have %s)",
		name, strings.Join(PolicyNames, ", "))
}

// RandomOfD is the power-of-d-choices arbiter: sample d distinct available
// cores uniformly at random (all of them when d ≥ the available count) and
// hand the message to the least-outstanding of the sample. d=2 captures
// most of the full least-outstanding benefit while probing only two
// occupancy counters — the classic Mitzenmacher result, and a plausible
// microcoded NI policy.
type RandomOfD struct {
	D   int
	rng *rng.Source

	scratch []int // reusable index buffer for without-replacement sampling
}

// NewRandomOfD builds a power-of-d-choices policy with its own
// deterministic stream.
func NewRandomOfD(d int, seed uint64) *RandomOfD {
	if d < 2 {
		panic(fmt.Sprintf("ni: RandomOfD needs d >= 2, got %d", d))
	}
	return &RandomOfD{D: d, rng: rng.New(seed)}
}

// Pick implements Policy.
func (p *RandomOfD) Pick(_ Msg, available []int, outstanding []int) int {
	n := len(available)
	if n == 1 {
		return available[0]
	}
	if p.D >= n {
		// The sample covers every available core: full least-outstanding,
		// no randomness needed.
		best := 0
		for i := 1; i < n; i++ {
			if outstanding[i] < outstanding[best] {
				best = i
			}
		}
		return available[best]
	}
	// Partial Fisher–Yates over an index scratch buffer: the first D
	// positions become a uniform without-replacement sample.
	if cap(p.scratch) < n {
		p.scratch = make([]int, n)
	}
	idx := p.scratch[:n]
	for i := range idx {
		idx[i] = i
	}
	best := -1
	for k := 0; k < p.D; k++ {
		j := k + p.rng.IntN(n-k)
		idx[k], idx[j] = idx[j], idx[k]
		if c := idx[k]; best == -1 || outstanding[c] < outstanding[best] {
			best = c
		}
	}
	return available[best]
}

func (p *RandomOfD) String() string { return fmt.Sprintf("random%d", p.D) }

// LocalFirst prefers cores on the dispatcher's own mesh row — the cores a
// CQE reaches in X-dimension hops only, without crossing rows — and falls
// back to the whole group when the home row is saturated. Within either set
// it picks the least-outstanding core (lowest ID on ties). This is the
// paper's "certain types of RPCs serviced by specific cores" sketch turned
// into a topology policy: it trades some balancing freedom for shorter
// dispatcher→core delivery paths.
type LocalFirst struct {
	HomeRow   int // mesh row of the dispatcher's tile
	MeshWidth int // core ID → row mapping: row = id / MeshWidth
}

// Pick implements Policy.
func (p LocalFirst) Pick(_ Msg, available []int, outstanding []int) int {
	best := -1
	for i, c := range available {
		if c/p.MeshWidth != p.HomeRow {
			continue
		}
		if best == -1 || outstanding[i] < outstanding[best] {
			best = i
		}
	}
	if best == -1 { // home row saturated (or not in this group): any core
		best = 0
		for i := 1; i < len(available); i++ {
			if outstanding[i] < outstanding[best] {
				best = i
			}
		}
	}
	return available[best]
}

func (p LocalFirst) String() string { return fmt.Sprintf("local(row %d)", p.HomeRow) }
