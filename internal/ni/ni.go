// Package ni implements the Manycore NI's dispatch machinery — the heart of
// RPCValet (§4.3).
//
// In the modeled chip, NI backends write incoming packets to memory and,
// once a message is fully received, forward a message-completion token to
// the NI dispatcher. The dispatcher holds the shared completion queue (CQ)
// and tracks each core's outstanding-request count; whenever a core in its
// group is below the outstanding threshold, it pops the shared CQ head and
// hands the message to that core's private CQ. Replenish operations from
// cores decrement the outstanding count and trigger further dispatches.
//
// The same state machine expresses all the paper's hardware configurations:
// one dispatcher over 16 cores is Model 1×16 (RPCValet), four dispatchers
// over 4-core groups is Model 4×4, and sixteen single-core dispatchers with
// an unlimited threshold degenerate to RSS-style partitioned queues
// (Model 16×1).
//
// This package is pure state-machine logic with no notion of time; the
// machine model drives it from the simulator and charges NOC/memory
// latencies around each transition.
package ni

import (
	"fmt"

	"rpcvalet/internal/fifo"
	"rpcvalet/internal/sonuma"
)

// Msg is a message-completion token travelling from an NI backend to a
// dispatcher: the receive slot holding the assembled message plus metadata
// used by dispatch policies and measurement.
type Msg struct {
	Slot int           // receive-buffer slot index
	Src  sonuma.NodeID // sending node
	Size int           // payload bytes
	Tag  uint64        // opaque correlation token (measurement, RPC type)
}

// Dispatch is a decision to deliver msg to a core's private CQ.
type Dispatch struct {
	Core int
	Msg  Msg
}

// Policy selects which available core receives the head message. Available
// cores are passed by core ID, always non-empty; outstanding[i] is the
// current outstanding count for core ID available[i]. The paper's
// proof-of-concept uses a simple greedy policy but argues the stage can host
// sophisticated, even microcoded, policies — hence the interface.
type Policy interface {
	Pick(msg Msg, available []int, outstanding []int) int
	String() string
}

// FirstAvailable picks the lowest-numbered available core: the simple greedy
// hardware the paper evaluates.
type FirstAvailable struct{}

// Pick implements Policy.
func (FirstAvailable) Pick(_ Msg, available []int, _ []int) int { return available[0] }

func (FirstAvailable) String() string { return "first-available" }

// LeastOutstanding picks the available core with the fewest outstanding
// requests, breaking ties toward lower core IDs. With threshold 2 this
// prefers fully idle cores over cores already holding one queued request,
// eliminating avoidable queueing.
type LeastOutstanding struct{}

// Pick implements Policy.
func (LeastOutstanding) Pick(_ Msg, available []int, outstanding []int) int {
	best := 0
	for i := 1; i < len(available); i++ {
		if outstanding[i] < outstanding[best] {
			best = i
		}
	}
	return available[best]
}

func (LeastOutstanding) String() string { return "least-outstanding" }

// LeastOutstandingRR picks among the available cores with the minimum
// outstanding count, rotating the tie-break. This is the occupancy-feedback
// policy the paper's Masstree experiment depends on (§6.1): a core occupied
// by a long-running scan still sits below the threshold, and a blind arbiter
// would park a latency-critical request behind it even while other cores are
// fully idle. Preferring minimum occupancy sends requests to idle cores
// first; the rotating tie-break spreads load evenly among equals.
type LeastOutstandingRR struct {
	next int
	ties []int // scratch, reused across Picks to keep the hot path allocation-free
}

// Pick implements Policy.
func (p *LeastOutstandingRR) Pick(_ Msg, available []int, outstanding []int) int {
	min := outstanding[0]
	for _, o := range outstanding[1:] {
		if o < min {
			min = o
		}
	}
	ties := p.ties[:0]
	for i, o := range outstanding {
		if o == min {
			ties = append(ties, available[i])
		}
	}
	p.ties = ties
	c := ties[p.next%len(ties)]
	p.next++
	return c
}

func (p *LeastOutstandingRR) String() string { return "least-outstanding-rr" }

// RoundRobin cycles through available cores, spreading dispatches without
// regard to occupancy beyond the threshold gate.
type RoundRobin struct{ next int }

// Pick implements Policy.
func (p *RoundRobin) Pick(_ Msg, available []int, _ []int) int {
	c := available[p.next%len(available)]
	p.next++
	return c
}

func (p *RoundRobin) String() string { return "round-robin" }

// Affinity steers messages to a preferred core subset keyed by the message
// Tag (e.g. RPC type), falling back to any available core. It demonstrates
// the paper's "certain types of RPCs serviced by specific cores" policy
// sketch.
type Affinity struct {
	Preferred map[uint64][]int // tag -> preferred core IDs
	Fallback  Policy
}

// Pick implements Policy.
func (a Affinity) Pick(msg Msg, available []int, outstanding []int) int {
	if pref, ok := a.Preferred[msg.Tag]; ok {
		for _, want := range pref {
			for _, c := range available {
				if c == want {
					return c
				}
			}
		}
	}
	fb := a.Fallback
	if fb == nil {
		fb = FirstAvailable{}
	}
	return fb.Pick(msg, available, outstanding)
}

func (a Affinity) String() string { return "affinity" }

// Unlimited is the threshold value meaning "no outstanding limit": every
// message dispatches immediately, which reduces the dispatcher to a static
// router (the RSS/partitioned behaviour).
const Unlimited = int(^uint(0) >> 1)

// Dispatcher is the centralized NI dispatch stage for a group of cores.
type Dispatcher struct {
	cores       []int // core IDs in this dispatcher's group
	indexOf     []int // dense core-ID → group-index table (-1 = not in group)
	outstanding []int
	threshold   int
	policy      Policy

	queue     fifo.Queue[Msg] // shared CQ; unbounded, naturally limited by N×S flow control
	maxDepth  int
	enqueued  uint64
	delivered uint64

	// Scratch for tryDispatch's available-core scan, reused across calls so
	// steady-state dispatch allocates nothing.
	avail    []int
	availOut []int
}

// NewDispatcher builds a dispatcher for the given cores. threshold is the
// per-core outstanding limit (the paper uses 2; 1 is the strict single-queue
// variant; Unlimited gives partitioned behaviour). policy may be nil, which
// selects FirstAvailable.
func NewDispatcher(cores []int, threshold int, policy Policy) (*Dispatcher, error) {
	if len(cores) == 0 {
		return nil, fmt.Errorf("ni: dispatcher needs at least one core")
	}
	if threshold < 1 {
		return nil, fmt.Errorf("ni: outstanding threshold %d must be >= 1", threshold)
	}
	if policy == nil {
		policy = FirstAvailable{}
	}
	maxCore := 0
	for _, c := range cores {
		if c < 0 {
			return nil, fmt.Errorf("ni: negative core ID %d in dispatcher group", c)
		}
		if c > maxCore {
			maxCore = c
		}
	}
	d := &Dispatcher{
		cores:       append([]int(nil), cores...),
		indexOf:     make([]int, maxCore+1),
		outstanding: make([]int, len(cores)),
		threshold:   threshold,
		policy:      policy,
		queue:       fifo.Queue[Msg]{CompactAfter: 1024},
		avail:       make([]int, 0, len(cores)),
		availOut:    make([]int, 0, len(cores)),
	}
	for i := range d.indexOf {
		d.indexOf[i] = -1
	}
	for i, c := range cores {
		if d.indexOf[c] >= 0 {
			return nil, fmt.Errorf("ni: duplicate core %d in dispatcher group", c)
		}
		d.indexOf[c] = i
	}
	return d, nil
}

// Cores returns the dispatcher's core group.
func (d *Dispatcher) Cores() []int { return d.cores }

// Outstanding reports the outstanding count for a core ID. It panics if the
// core is not in this dispatcher's group (a wiring bug).
func (d *Dispatcher) Outstanding(core int) int {
	return d.outstanding[d.mustIndex(core)]
}

func (d *Dispatcher) mustIndex(core int) int {
	if core < 0 || core >= len(d.indexOf) || d.indexOf[core] < 0 {
		panic(fmt.Sprintf("ni: core %d not in dispatcher group %v", core, d.cores))
	}
	return d.indexOf[core]
}

// QueueDepth reports the current shared-CQ depth.
func (d *Dispatcher) QueueDepth() int { return d.queue.Len() }

// MaxQueueDepth reports the highest shared-CQ depth observed.
func (d *Dispatcher) MaxQueueDepth() int { return d.maxDepth }

// Enqueue accepts a message-completion token into the shared CQ and returns
// the dispatch it triggers, if any core is below threshold.
func (d *Dispatcher) Enqueue(m Msg) (Dispatch, bool) {
	d.queue.Push(m)
	d.enqueued++
	if depth := d.QueueDepth(); depth > d.maxDepth {
		d.maxDepth = depth
	}
	return d.tryDispatch()
}

// Complete records that a core finished one request (its replenish reached
// the dispatcher) and returns the follow-on dispatch, if any.
func (d *Dispatcher) Complete(core int) (Dispatch, bool) {
	i := d.mustIndex(core)
	if d.outstanding[i] == 0 {
		panic(fmt.Sprintf("ni: Complete(core %d) with zero outstanding", core))
	}
	d.outstanding[i]--
	return d.tryDispatch()
}

// tryDispatch pops the shared CQ head for an available core, if both exist.
// FIFO order is preserved: only the head message is ever considered, exactly
// like the hardware Dispatch stage.
func (d *Dispatcher) tryDispatch() (Dispatch, bool) {
	if d.QueueDepth() == 0 {
		return Dispatch{}, false
	}
	avail, availOut := d.avail[:0], d.availOut[:0]
	for i, c := range d.cores {
		if d.outstanding[i] < d.threshold {
			avail = append(avail, c)
			availOut = append(availOut, d.outstanding[i])
		}
	}
	d.avail, d.availOut = avail, availOut
	if len(avail) == 0 {
		return Dispatch{}, false
	}
	head, _ := d.queue.Peek()
	core := d.policy.Pick(head, avail, availOut)
	if core < 0 || core >= len(d.indexOf) || d.indexOf[core] < 0 {
		panic(fmt.Sprintf("ni: policy %s picked unavailable core %d", d.policy, core))
	}
	i := d.indexOf[core]
	if d.outstanding[i] >= d.threshold {
		panic(fmt.Sprintf("ni: policy %s picked unavailable core %d", d.policy, core))
	}
	m, _ := d.queue.Pop()
	d.outstanding[i]++
	d.delivered++
	return Dispatch{Core: core, Msg: m}, true
}

// Stats reports lifetime counters: messages enqueued and delivered.
func (d *Dispatcher) Stats() (enqueued, delivered uint64) {
	return d.enqueued, d.delivered
}
