package queueing

import "math"

// This file holds closed-form queueing-theory results used to validate the
// discrete-event models. References: any standard queueing text (e.g.
// Harchol-Balter, "Performance Modeling and Design of Computer Systems").

// MM1MeanSojourn returns the mean time in system for an M/M/1 queue with
// arrival rate lambda and service rate mu. It returns +Inf for an unstable
// queue (lambda ≥ mu).
func MM1MeanSojourn(lambda, mu float64) float64 {
	if lambda >= mu {
		return math.Inf(1)
	}
	return 1 / (mu - lambda)
}

// MM1SojournQuantile returns the p-quantile of the sojourn time in an M/M/1
// queue: the sojourn time is exponential with rate mu−lambda.
func MM1SojournQuantile(lambda, mu, p float64) float64 {
	if lambda >= mu {
		return math.Inf(1)
	}
	return -math.Log(1-p) / (mu - lambda)
}

// ErlangC returns the probability that an arriving job waits in an M/M/c
// queue with c servers, arrival rate lambda, and per-server service rate mu.
func ErlangC(c int, lambda, mu float64) float64 {
	if lambda >= float64(c)*mu {
		return 1
	}
	a := lambda / mu // offered load in Erlangs
	rho := a / float64(c)
	// Sum a^k/k! computed iteratively to avoid overflow.
	term := 1.0
	sum := 1.0
	for k := 1; k < c; k++ {
		term *= a / float64(k)
		sum += term
	}
	top := term * a / float64(c) / (1 - rho)
	return top / (sum + top)
}

// MMcMeanWait returns the mean queueing delay (excluding service) in an
// M/M/c system.
func MMcMeanWait(c int, lambda, mu float64) float64 {
	if lambda >= float64(c)*mu {
		return math.Inf(1)
	}
	return ErlangC(c, lambda, mu) / (float64(c)*mu - lambda)
}

// MMcMeanSojourn returns the mean time in system for an M/M/c queue.
func MMcMeanSojourn(c int, lambda, mu float64) float64 {
	return MMcMeanWait(c, lambda, mu) + 1/mu
}

// MMcWaitQuantile returns the p-quantile of the waiting time in an M/M/c
// queue. The waiting time is 0 with probability 1−ErlangC and exponential
// with rate cµ−λ otherwise.
func MMcWaitQuantile(c int, lambda, mu, p float64) float64 {
	pc := ErlangC(c, lambda, mu)
	if 1-p >= pc {
		return 0
	}
	return -math.Log((1-p)/pc) / (float64(c)*mu - lambda)
}

// MG1MeanWait returns the Pollaczek–Khinchine mean waiting time for an M/G/1
// queue with arrival rate lambda, mean service es, and second moment es2.
func MG1MeanWait(lambda, es, es2 float64) float64 {
	rho := lambda * es
	if rho >= 1 {
		return math.Inf(1)
	}
	return lambda * es2 / (2 * (1 - rho))
}

// MD1MeanWait returns the mean waiting time for an M/D/1 queue with
// deterministic service time s.
func MD1MeanWait(lambda, s float64) float64 {
	return MG1MeanWait(lambda, s, s*s)
}
