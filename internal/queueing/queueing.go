// Package queueing implements the theoretical queuing models the paper uses
// to frame the load-balancing problem (§2.2) and to bound RPCValet's
// performance (§6.3).
//
// A Model Q×U system has Q FIFO queues with U serving units each; incoming
// requests follow a Poisson process (by default — Config.Arrival swaps in
// any other arrival.Process at the same mean rate) and are assigned to a
// queue uniformly at random (the paper's uni[0,Q-1] stage in Fig 1). Model 1×16 is the ideal
// single-queue system; Model 16×1 is a fully partitioned system with no load
// balancing.
//
// The discrete-event implementation runs on the deterministic engine in
// internal/sim. Closed-form results for M/M/1, M/M/c, and M/G/1 are provided
// for validating the simulator against textbook queueing theory.
package queueing

import (
	"fmt"
	"math"

	"rpcvalet/internal/arrival"
	"rpcvalet/internal/dist"
	"rpcvalet/internal/metrics"
	"rpcvalet/internal/rng"
	"rpcvalet/internal/sim"
	"rpcvalet/internal/stats"
)

// Config describes one queueing-model simulation.
type Config struct {
	Queues          int          // Q: number of FIFO input queues
	ServersPerQueue int          // U: serving units per queue
	Service         dist.Sampler // service time distribution, in ns
	Load            float64      // offered load ρ = λ·E[S]/(Q·U), in (0,1)
	// Arrival, when non-nil, selects the shape of the arrival stream; it
	// is re-rated to the λ that Load implies, so Load keeps its meaning
	// for every traffic model. Nil means Poisson (M/·/· arrivals) — the
	// historical behavior, byte-for-byte identical result streams for
	// existing seeds.
	Arrival arrival.Process
	Warmup  int // requests discarded before measuring
	Measure int // requests measured
	Seed    uint64
	// Epoch sets the Result timeline's initial epoch length; 0 uses the
	// metrics default (1 µs, doubling as the run outgrows it).
	Epoch sim.Duration
}

func (c Config) validate() error {
	switch {
	case c.Queues <= 0 || c.ServersPerQueue <= 0:
		return fmt.Errorf("queueing: invalid system %dx%d", c.Queues, c.ServersPerQueue)
	case c.Service == nil:
		return fmt.Errorf("queueing: nil service distribution")
	case !(c.Load > 0) || c.Load >= 1.5:
		return fmt.Errorf("queueing: load %v out of range (0, 1.5)", c.Load)
	case c.Measure <= 0:
		return fmt.Errorf("queueing: Measure must be positive")
	default:
		return nil
	}
}

// Result reports the outcome of a queueing-model run. Latency is the sojourn
// time (waiting + service); Wait is queueing delay only. Units match the
// service distribution's (ns by convention).
type Result struct {
	Config     Config
	Latency    stats.Summary
	Wait       stats.Summary
	Throughput float64 // completions per ns over the measurement window
	MeanSvc    float64 // E[S] of the service distribution used
	// Timeline is the epoch-sliced view of the whole run (warmup
	// included): per-epoch throughput, sojourn/wait percentiles, queue
	// depth, and server utilization.
	Timeline metrics.Timeline
}

// station is one FIFO queue with U servers.
type station struct {
	idle int
	fifo []sim.Time // arrival times of waiting requests
	head int
}

func (st *station) push(t sim.Time) { st.fifo = append(st.fifo, t) }

func (st *station) pop() (sim.Time, bool) {
	if st.head >= len(st.fifo) {
		return 0, false
	}
	v := st.fifo[st.head]
	st.head++
	// Compact occasionally so memory stays bounded.
	if st.head > 1024 && st.head*2 >= len(st.fifo) {
		n := copy(st.fifo, st.fifo[st.head:])
		st.fifo = st.fifo[:n]
		st.head = 0
	}
	return v, true
}

func (st *station) depth() int { return len(st.fifo) - st.head }

// Run simulates the configured Q×U system and returns its Result. It panics
// only on programmer error (invalid config is returned as an error).
func Run(cfg Config) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	meanSvc := cfg.Service.Mean()
	if !(meanSvc > 0) || math.IsInf(meanSvc, 1) {
		return Result{}, fmt.Errorf("queueing: service distribution %s has unusable mean %g", cfg.Service, meanSvc)
	}
	totalServers := cfg.Queues * cfg.ServersPerQueue
	lambda := cfg.Load * float64(totalServers) / meanSvc // arrivals per ns

	eng := sim.New()
	root := rng.New(cfg.Seed)
	arrivalRNG := root.Split()
	routeRNG := root.Split()
	svcRNG := root.Split()

	stations := make([]*station, cfg.Queues)
	for i := range stations {
		stations[i] = &station{idle: cfg.ServersPerQueue}
	}

	completed := 0
	target := cfg.Warmup + cfg.Measure
	rec := metrics.NewRecorder(metrics.Config{
		Servers:    totalServers,
		EpochNanos: cfg.Epoch.Nanos(),
	})
	arr := arrival.ResolvePerNs(cfg.Arrival, lambda)

	var startService func(st *station, arrived sim.Time)
	startService = func(st *station, arrived sim.Time) {
		st.idle--
		began := eng.Now()
		svc := sim.FromNanos(cfg.Service.Sample(svcRNG))
		rec.Busy(began, 0, svc)
		eng.Schedule(svc, func() {
			completed++
			if completed > cfg.Warmup && completed <= target && completed == cfg.Warmup+1 {
				rec.OpenWindow(eng.Now())
			}
			rec.Complete(eng.Now(), metrics.Completion{
				Class:     -1,
				Measured:  true,
				LatencyNs: eng.Now().Sub(arrived).Nanos(),
				WaitNs:    began.Sub(arrived).Nanos(),
				ServiceNs: -1,
				Depth:     st.depth(),
			})
			if completed == target {
				rec.CloseWindow(eng.Now())
				eng.Stop()
			}
			st.idle++
			if next, ok := st.pop(); ok {
				startService(st, next)
			}
		})
	}

	var arrive func()
	arrive = func() {
		st := stations[routeRNG.IntN(cfg.Queues)]
		now := eng.Now()
		if st.idle > 0 {
			startService(st, now)
		} else {
			st.push(now)
		}
		eng.Schedule(arr.Next(arrivalRNG), arrive)
	}
	eng.Schedule(arr.Next(arrivalRNG), arrive)
	eng.Run()

	res := Result{
		Config:   cfg,
		Latency:  rec.Latency(),
		Wait:     rec.Wait(),
		MeanSvc:  meanSvc,
		Timeline: rec.Timeline(),
	}
	if start, end := rec.Window(); end > start {
		res.Throughput = float64(cfg.Measure-1) / end.Sub(start).Nanos()
	}
	return res, nil
}

// Point is one (load, tail latency) observation on a latency-throughput curve.
type Point struct {
	Load       float64 // offered load in (0,1)
	Throughput float64 // measured completions per ns
	P99        float64 // 99th-percentile sojourn time, ns
	P50        float64
	Mean       float64
}

// Curve is a latency-vs-load series for one system configuration, the unit
// of data behind every figure in §2.2 and §6.3.
type Curve struct {
	Label  string
	Points []Point
}

// Sweep runs cfg at each offered load and collects the curve. Loads must be
// ascending for readable output but the function does not require it.
func Sweep(cfg Config, loads []float64, label string) (Curve, error) {
	c := Curve{Label: label}
	for i, load := range loads {
		cfg.Load = load
		cfg.Seed = cfg.Seed + uint64(i)*1e9 // decorrelate points
		res, err := Run(cfg)
		if err != nil {
			return Curve{}, fmt.Errorf("sweep %s at load %v: %w", label, load, err)
		}
		c.Points = append(c.Points, Point{
			Load:       load,
			Throughput: res.Throughput,
			P99:        res.Latency.P99,
			P50:        res.Latency.P50,
			Mean:       res.Latency.Mean,
		})
	}
	return c, nil
}

// ThroughputUnderSLO returns the highest measured throughput whose p99 meets
// slo, scanning the curve. It returns 0 if no point meets the SLO.
func ThroughputUnderSLO(c Curve, slo float64) float64 {
	best := 0.0
	for _, p := range c.Points {
		if p.P99 <= slo && p.Throughput > best {
			best = p.Throughput
		}
	}
	return best
}

// SplitService builds the §6.3 service-time construction: a fraction of the
// mean (distributedMean) follows the shape of d, and the remainder
// (totalMean − distributedMean) is fixed. This mirrors how the paper makes
// its queueing model comparable to the full-system measurement.
func SplitService(d dist.Sampler, distributedMean, totalMean float64) dist.Sampler {
	if distributedMean <= 0 || distributedMean > totalMean {
		panic(fmt.Sprintf("queueing: SplitService means invalid: D=%g, total=%g", distributedMean, totalMean))
	}
	inner := dist.Scaled{Factor: distributedMean / d.Mean(), Inner: d}
	return dist.Shifted{Base: totalMean - distributedMean, Inner: inner}
}
