package queueing

import (
	"math"
	"testing"
	"testing/quick"

	"rpcvalet/internal/arrival"
	"rpcvalet/internal/dist"
	"rpcvalet/internal/sim"
)

func run(t *testing.T, cfg Config) Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func baseConfig() Config {
	return Config{
		Queues:          1,
		ServersPerQueue: 1,
		Service:         dist.Exponential{MeanValue: 1},
		Load:            0.5,
		Warmup:          2000,
		Measure:         60000,
		Seed:            1,
	}
}

func TestValidation(t *testing.T) {
	bad := []Config{
		{Queues: 0, ServersPerQueue: 1, Service: dist.Fixed{Value: 1}, Load: 0.5, Measure: 10},
		{Queues: 1, ServersPerQueue: 0, Service: dist.Fixed{Value: 1}, Load: 0.5, Measure: 10},
		{Queues: 1, ServersPerQueue: 1, Load: 0.5, Measure: 10},
		{Queues: 1, ServersPerQueue: 1, Service: dist.Fixed{Value: 1}, Load: 0, Measure: 10},
		{Queues: 1, ServersPerQueue: 1, Service: dist.Fixed{Value: 1}, Load: 2, Measure: 10},
		{Queues: 1, ServersPerQueue: 1, Service: dist.Fixed{Value: 1}, Load: 0.5, Measure: 0},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("config %d: expected error", i)
		}
	}
}

func TestInfiniteMeanServiceRejected(t *testing.T) {
	cfg := baseConfig()
	cfg.Service = dist.GEV{Loc: 0, Scale: 1, Shape: 1.5}
	if _, err := Run(cfg); err == nil {
		t.Fatal("expected error for infinite-mean service distribution")
	}
}

// TestMM1MeanSojourn validates the DES against the closed-form M/M/1 result:
// E[T] = 1/(µ−λ).
func TestMM1MeanSojourn(t *testing.T) {
	for _, load := range []float64{0.3, 0.5, 0.7, 0.9} {
		cfg := baseConfig()
		cfg.Load = load
		// High loads relax slowly from the empty start; give them more
		// warmup and a longer measurement window.
		cfg.Warmup = 30000
		cfg.Measure = 300000
		res := run(t, cfg)
		want := MM1MeanSojourn(load, 1) // µ=1 since E[S]=1
		got := res.Latency.Mean
		if math.Abs(got-want)/want > 0.06 {
			t.Errorf("load %v: mean sojourn %v, analytic %v", load, got, want)
		}
	}
}

// TestMM1P99 validates the DES tail against the exponential sojourn
// distribution of M/M/1: p99 = ln(100)/(µ−λ).
func TestMM1P99(t *testing.T) {
	cfg := baseConfig()
	cfg.Load = 0.7
	cfg.Measure = 120000
	res := run(t, cfg)
	want := MM1SojournQuantile(0.7, 1, 0.99)
	if math.Abs(res.Latency.P99-want)/want > 0.08 {
		t.Errorf("p99 = %v, analytic %v", res.Latency.P99, want)
	}
}

// TestMMcMeanWait validates the multi-server station against Erlang-C.
func TestMMcMeanWait(t *testing.T) {
	cfg := baseConfig()
	cfg.ServersPerQueue = 16
	cfg.Load = 0.8
	cfg.Measure = 120000
	res := run(t, cfg)
	lambda := 0.8 * 16
	want := MMcMeanWait(16, lambda, 1)
	got := res.Wait.Mean
	if math.Abs(got-want) > 0.02*MMcMeanSojourn(16, lambda, 1) {
		t.Errorf("mean wait %v, Erlang-C %v", got, want)
	}
}

// TestMD1MeanWait validates deterministic service against Pollaczek–Khinchine.
func TestMD1MeanWait(t *testing.T) {
	cfg := baseConfig()
	cfg.Service = dist.Fixed{Value: 1}
	cfg.Load = 0.7
	cfg.Measure = 120000
	res := run(t, cfg)
	want := MD1MeanWait(0.7, 1)
	if math.Abs(res.Wait.Mean-want)/want > 0.06 {
		t.Errorf("M/D/1 mean wait %v, analytic %v", res.Wait.Mean, want)
	}
}

// TestMG1MeanWait validates the P-K formula with uniform service.
func TestMG1MeanWait(t *testing.T) {
	cfg := baseConfig()
	cfg.Service = dist.Uniform{Lo: 0, Hi: 2} // mean 1, E[S^2]=4/3
	cfg.Load = 0.6
	cfg.Measure = 120000
	res := run(t, cfg)
	want := MG1MeanWait(0.6, 1, 4.0/3)
	if math.Abs(res.Wait.Mean-want)/want > 0.08 {
		t.Errorf("M/G/1 mean wait %v, analytic %v", res.Wait.Mean, want)
	}
}

func TestErlangCProperties(t *testing.T) {
	// c=1 reduces to rho.
	if got, want := ErlangC(1, 0.6, 1), 0.6; math.Abs(got-want) > 1e-12 {
		t.Fatalf("ErlangC(1) = %v, want %v", got, want)
	}
	// Unstable system always waits.
	if ErlangC(4, 10, 1) != 1 {
		t.Fatal("unstable ErlangC should be 1")
	}
	// More servers at equal per-server load wait less.
	if !(ErlangC(16, 0.8*16, 1) < ErlangC(2, 0.8*2, 1)) {
		t.Fatal("ErlangC should decrease with pooling")
	}
}

func TestMMcWaitQuantile(t *testing.T) {
	// Below the no-wait probability mass, quantile is 0.
	if q := MMcWaitQuantile(16, 8, 1, 0.5); q != 0 {
		t.Fatalf("median wait at low load = %v, want 0", q)
	}
	// High quantiles are positive and increase with p.
	q90 := MMcWaitQuantile(16, 15, 1, 0.90)
	q99 := MMcWaitQuantile(16, 15, 1, 0.99)
	if !(q99 > q90 && q90 > 0) {
		t.Fatalf("wait quantiles not increasing: q90=%v q99=%v", q90, q99)
	}
}

// TestPoolingDominance is the paper's core theoretical claim (§2.2, Fig 2a):
// for the same total service capacity, fewer-queues-more-servers dominates.
// We check p99(1×16) < p99(4×4) < p99(16×1) at high load.
func TestPoolingDominance(t *testing.T) {
	shapes := []struct{ q, u int }{{1, 16}, {4, 4}, {16, 1}}
	var p99s []float64
	for _, s := range shapes {
		cfg := baseConfig()
		cfg.Queues, cfg.ServersPerQueue = s.q, s.u
		cfg.Load = 0.8
		cfg.Measure = 80000
		res := run(t, cfg)
		p99s = append(p99s, res.Latency.P99)
	}
	if !(p99s[0] < p99s[1] && p99s[1] < p99s[2]) {
		t.Fatalf("pooling dominance violated: 1x16=%v 4x4=%v 16x1=%v", p99s[0], p99s[1], p99s[2])
	}
}

// TestVarianceOrdering reproduces Fig 2b/2c's observation: the higher the
// service-time variance, the higher the tail, for both 1×16 and 16×1.
func TestVarianceOrdering(t *testing.T) {
	gev := dist.GEV{Loc: 363, Scale: 100, Shape: 0.65}
	dists := []dist.Sampler{
		dist.Fixed{Value: 1},
		dist.Normalized(dist.Uniform{Lo: 0, Hi: 2}),
		dist.Exponential{MeanValue: 1},
		dist.Normalized(gev),
	}
	for _, shape := range []struct{ q, u int }{{1, 16}, {16, 1}} {
		var prev float64
		for i, d := range dists {
			cfg := baseConfig()
			cfg.Queues, cfg.ServersPerQueue = shape.q, shape.u
			cfg.Service = d
			cfg.Load = 0.6
			cfg.Measure = 80000
			res := run(t, cfg)
			if i > 0 && res.Latency.P99 < prev*0.98 {
				t.Errorf("%dx%d: tail ordering violated at dist %d: %v < %v",
					shape.q, shape.u, i, res.Latency.P99, prev)
			}
			prev = res.Latency.P99
		}
	}
}

// TestTailGrowsWithLoad: p99 must be monotonically non-decreasing in load
// (within noise) for a 1×16 exponential system.
func TestTailGrowsWithLoad(t *testing.T) {
	cfg := baseConfig()
	cfg.Queues, cfg.ServersPerQueue = 1, 16
	cfg.Measure = 50000
	var prev float64
	for _, load := range []float64{0.2, 0.5, 0.8, 0.95} {
		cfg.Load = load
		res := run(t, cfg)
		if res.Latency.P99 < prev*0.95 {
			t.Fatalf("p99 decreased with load: %v -> %v at %v", prev, res.Latency.P99, load)
		}
		prev = res.Latency.P99
	}
}

func TestThroughputMatchesOffered(t *testing.T) {
	cfg := baseConfig()
	cfg.Queues, cfg.ServersPerQueue = 1, 16
	cfg.Load = 0.6
	cfg.Measure = 100000
	res := run(t, cfg)
	offered := 0.6 * 16 / 1.0 // λ = ρ·c/E[S] per ns
	if math.Abs(res.Throughput-offered)/offered > 0.03 {
		t.Fatalf("throughput %v, offered %v", res.Throughput, offered)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := baseConfig()
	cfg.Load = 0.8
	cfg.Measure = 20000
	a := run(t, cfg)
	b := run(t, cfg)
	if a.Latency != b.Latency || a.Throughput != b.Throughput {
		t.Fatal("identical seeds produced different results")
	}
	cfg.Seed = 2
	c := run(t, cfg)
	if a.Latency == c.Latency {
		t.Fatal("different seeds produced identical results")
	}
}

func TestLatencyAtLeastService(t *testing.T) {
	// Sojourn time can never be below the minimum service time.
	cfg := baseConfig()
	cfg.Service = dist.Shifted{Base: 0.5, Inner: dist.Exponential{MeanValue: 0.5}}
	cfg.Load = 0.7
	cfg.Measure = 30000
	res := run(t, cfg)
	if res.Latency.Min < 0.5 {
		t.Fatalf("min sojourn %v below min service 0.5", res.Latency.Min)
	}
}

func TestSweepAndSLO(t *testing.T) {
	cfg := baseConfig()
	cfg.Queues, cfg.ServersPerQueue = 1, 16
	cfg.Measure = 30000
	curve, err := Sweep(cfg, []float64{0.2, 0.5, 0.8}, "1x16")
	if err != nil {
		t.Fatal(err)
	}
	if len(curve.Points) != 3 || curve.Label != "1x16" {
		t.Fatalf("curve malformed: %+v", curve)
	}
	// SLO of 10×mean service (=10ns) should be met at least at the low loads.
	thr := ThroughputUnderSLO(curve, 10)
	if thr <= 0 {
		t.Fatal("no point met a 10x SLO at low load")
	}
	// An impossible SLO yields zero.
	if ThroughputUnderSLO(curve, 0.0001) != 0 {
		t.Fatal("impossible SLO should yield 0")
	}
}

func TestSweepPropagatesError(t *testing.T) {
	cfg := baseConfig()
	if _, err := Sweep(cfg, []float64{-1}, "bad"); err == nil {
		t.Fatal("expected error from invalid load")
	}
}

func TestSplitService(t *testing.T) {
	d := SplitService(dist.Exponential{MeanValue: 1}, 330, 550)
	if math.Abs(d.Mean()-550) > 1e-9 {
		t.Fatalf("split mean = %v, want 550", d.Mean())
	}
	// Minimum possible value is the fixed part.
	q := d.(dist.Quantiler)
	if fixed := q.Quantile(0.000001); fixed < 219 || fixed > 221 {
		t.Fatalf("fixed part = %v, want 220", fixed)
	}
}

func TestSplitServicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SplitService(dist.Fixed{Value: 1}, 10, 5)
}

// Property: the single-queue system is never (statistically) worse than the
// fully partitioned one at equal load, for any service distribution drawn
// from our menagerie.
func TestPropertySingleQueueDominates(t *testing.T) {
	dists := []dist.Sampler{
		dist.Fixed{Value: 1},
		dist.Exponential{MeanValue: 1},
		dist.Normalized(dist.GEV{Loc: 363, Scale: 100, Shape: 0.65}),
	}
	f := func(seed uint64, loadPct uint8) bool {
		load := 0.3 + float64(loadPct%60)/100 // 0.3..0.89
		d := dists[int(seed%uint64(len(dists)))]
		mk := func(q, u int) float64 {
			res, err := Run(Config{
				Queues: q, ServersPerQueue: u, Service: d,
				Load: load, Warmup: 500, Measure: 15000, Seed: seed,
			})
			if err != nil {
				return math.NaN()
			}
			return res.Latency.P99
		}
		single := mk(1, 16)
		part := mk(16, 1)
		// Allow 10% noise tolerance on a short run.
		return single <= part*1.1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestArrivalKindsDeterministic: each built-in arrival process drives the
// queueing model deterministically at the λ that Load implies, and
// non-Poisson shapes actually change the outcome.
func TestArrivalKindsDeterministic(t *testing.T) {
	base := baseConfig()
	base.Queues, base.ServersPerQueue = 4, 4
	base.Load = 0.7
	base.Measure = 20000
	def := run(t, base)
	for _, kind := range arrival.Names {
		arr, err := arrival.ByName(kind, 1) // rate irrelevant: re-rated to Load's λ
		if err != nil {
			t.Fatal(err)
		}
		cfg := base
		cfg.Arrival = arr
		a := run(t, cfg)
		b := run(t, cfg)
		if a.Latency != b.Latency || a.Wait != b.Wait || a.Throughput != b.Throughput {
			t.Fatalf("%s: identical configs differ", kind)
		}
		if kind != "poisson" && a.Latency == def.Latency {
			t.Fatalf("%s: produced the exact Poisson result — process not wired in", kind)
		}
		if kind == "poisson" && a.Latency != def.Latency {
			t.Fatal("explicit poisson differs from nil default")
		}
		// Load keeps its meaning: the measured rate must track λ within
		// sampling noise for every shape.
		if math.Abs(a.Throughput-0.7*16)/(0.7*16) > 0.06 {
			t.Fatalf("%s: throughput %v per ns, want ~%v", kind, a.Throughput, 0.7*16)
		}
	}
}

// TestDeterministicArrivalsTightenWait: D/M/c waits sit below M/M/c at the
// same load — the classic variance-reduction result, end to end.
func TestDeterministicArrivalsTightenWait(t *testing.T) {
	base := baseConfig()
	base.Load = 0.8
	base.Measure = 40000
	mmc := run(t, base)
	cfg := base
	cfg.Arrival = arrival.DeterministicAtMRPS(1)
	dmc := run(t, cfg)
	if dmc.Wait.Mean >= mmc.Wait.Mean {
		t.Fatalf("D/M/1 mean wait %v not below M/M/1's %v", dmc.Wait.Mean, mmc.Wait.Mean)
	}
}

// TestTimelinePopulated: queueing runs carry an epoch timeline accounting
// for every completion, with utilization tracking the offered load.
func TestTimelinePopulated(t *testing.T) {
	cfg := baseConfig()
	cfg.Load = 0.7
	cfg.Warmup, cfg.Measure = 500, 20000
	cfg.Epoch = 2000 * sim.Nanosecond
	res := run(t, cfg)
	tl := res.Timeline
	if tl.EpochNanos <= 0 || len(tl.Epochs) == 0 {
		t.Fatalf("timeline unpopulated: %+v", tl)
	}
	total := 0
	var utilSum float64
	for _, e := range tl.Epochs {
		total += e.Completions
		utilSum += e.Utilization
	}
	if total != cfg.Warmup+cfg.Measure {
		t.Fatalf("timeline completions = %d, want %d", total, cfg.Warmup+cfg.Measure)
	}
	// Mean epoch utilization of an M/M/1 at load 0.7 must sit near 0.7
	// (last epoch may be partial; allow slack).
	meanUtil := utilSum / float64(len(tl.Epochs))
	if meanUtil < 0.55 || meanUtil > 0.85 {
		t.Fatalf("mean epoch utilization = %.3f, want ≈0.7", meanUtil)
	}
}
