// Package report renders experiment results as aligned text tables, CSV, or
// JSON. Every figure-regeneration command and benchmark uses it so the
// output the repository produces is uniform and directly comparable with the
// paper's tables and figures.
package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-oriented result table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row. It panics if the cell count does not match the
// column count — a malformed table is a programming error in a harness.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("report: row has %d cells for %d columns", len(cells), len(t.Columns)))
	}
	t.Rows = append(t.Rows, cells)
}

// AddRowf appends a row formatting each value with %v, floats with %.4g.
func (t *Table) AddRowf(values ...any) {
	cells := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			cells[i] = fmt.Sprintf("%.4g", x)
		case float32:
			cells[i] = fmt.Sprintf("%.4g", x)
		default:
			cells[i] = fmt.Sprint(v)
		}
	}
	t.AddRow(cells...)
}

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "# %s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	rule := make([]string, len(t.Columns))
	for i, w := range widths {
		rule[i] = strings.Repeat("-", w)
	}
	writeRow(rule)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders the table as CSV (header row first, title omitted).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON renders the table as a JSON array of objects keyed by column.
func (t *Table) WriteJSON(w io.Writer) error {
	out := make([]map[string]string, 0, len(t.Rows))
	for _, row := range t.Rows {
		obj := make(map[string]string, len(t.Columns))
		for i, col := range t.Columns {
			obj[col] = row[i]
		}
		out = append(out, obj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Format selects an output encoding by name: "text", "csv", or "json".
func (t *Table) Format(w io.Writer, format string) error {
	switch format {
	case "", "text":
		return t.WriteText(w)
	case "csv":
		return t.WriteCSV(w)
	case "json":
		return t.WriteJSON(w)
	default:
		return fmt.Errorf("report: unknown format %q (want text, csv, or json)", format)
	}
}
