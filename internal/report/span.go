package report

import (
	"fmt"

	"rpcvalet/internal/trace"
)

// SpanTable renders a tail-sample set — the K slowest requests with their
// span breakdowns — as a report table: one row per request, the latency
// decomposed into hop / queue-wait / service legs plus the wait share and
// the congestion the request arrived into. Spans from a two-tier run (any
// span with a global-recv milestone) grow rack and global-hop columns; flat
// and single-machine tables keep the historical shape. Unobserved
// attributions render as "-".
func SpanTable(title string, spans []trace.Span) *Table {
	hier := false
	for _, s := range spans {
		if s.GlobalRecv != trace.Unset {
			hier = true
			break
		}
	}
	cols := []string{"req", "node", "core", "depth", "total_ns", "hop_ns", "wait_ns", "service_ns", "wait_share"}
	if hier {
		cols = []string{"req", "rack", "node", "core", "depth", "total_ns", "ghop_ns", "hop_ns", "wait_ns", "service_ns", "wait_share"}
	}
	t := NewTable(title, cols...)
	dash := func(v int) string {
		if v < 0 {
			return "-"
		}
		return fmt.Sprint(v)
	}
	for _, s := range spans {
		row := []string{fmt.Sprint(s.ReqID)}
		if hier {
			row = append(row, dash(s.Rack))
		}
		row = append(row,
			dash(s.Node),
			dash(s.Core),
			dash(s.DepthAtArrival),
			fmt.Sprintf("%.0f", s.TotalNs()),
		)
		if hier {
			row = append(row, fmt.Sprintf("%.0f", s.GlobalHopNs()))
		}
		row = append(row,
			fmt.Sprintf("%.0f", s.HopNs()),
			fmt.Sprintf("%.0f", s.QueueWaitNs()),
			fmt.Sprintf("%.0f", s.ServiceNs()),
			fmt.Sprintf("%.3f", s.WaitShare()),
		)
		t.AddRow(row...)
	}
	return t
}
