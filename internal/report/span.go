package report

import (
	"fmt"

	"rpcvalet/internal/trace"
)

// SpanTable renders a tail-sample set — the K slowest requests with their
// span breakdowns — as a report table: one row per request, the latency
// decomposed into hop / queue-wait / service legs plus the wait share and
// the congestion the request arrived into. Unobserved attributions render
// as "-".
func SpanTable(title string, spans []trace.Span) *Table {
	t := NewTable(title,
		"req", "node", "core", "depth", "total_ns", "hop_ns", "wait_ns", "service_ns", "wait_share")
	dash := func(v int) string {
		if v < 0 {
			return "-"
		}
		return fmt.Sprint(v)
	}
	for _, s := range spans {
		t.AddRow(
			fmt.Sprint(s.ReqID),
			dash(s.Node),
			dash(s.Core),
			dash(s.DepthAtArrival),
			fmt.Sprintf("%.0f", s.TotalNs()),
			fmt.Sprintf("%.0f", s.HopNs()),
			fmt.Sprintf("%.0f", s.QueueWaitNs()),
			fmt.Sprintf("%.0f", s.ServiceNs()),
			fmt.Sprintf("%.3f", s.WaitShare()),
		)
	}
	return t
}
