package report

import (
	"fmt"
	"strings"

	"rpcvalet/internal/metrics"
)

// sparkRunes are the eight block heights a sparkline cell can take.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a row of unicode block characters scaled to
// the series' maximum. Zeros (and an all-zero series) render as the lowest
// block, so a flat line still shows where observations exist.
func Sparkline(values []float64) string {
	max := 0.0
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, v := range values {
		idx := 0
		if max > 0 && v > 0 {
			idx = int(v / max * float64(len(sparkRunes)-1))
			if idx >= len(sparkRunes) {
				idx = len(sparkRunes) - 1
			}
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

// TimelineTable renders an epoch-sliced timeline as a table: one row per
// epoch with the window, throughput, latency percentiles, queue depth, and
// utilization — the time-resolved counterpart of the steady-state summary
// tables.
func TimelineTable(title string, tl metrics.Timeline) *Table {
	t := NewTable(title, "epoch", "t_us", "completions", "thr_mrps",
		"p50_ns", "p99_ns", "mean_depth", "max_depth", "util")
	for i, e := range tl.Epochs {
		t.AddRowf(i, fmt.Sprintf("%.0f–%.0f", e.StartNanos/1000, e.EndNanos/1000),
			e.Completions, e.ThroughputMRPS,
			e.Latency.P50, e.Latency.P99, e.MeanDepth, e.MaxDepth, e.Utilization)
	}
	return t
}

// TimelineSpark renders a compact two-line view of a timeline: a p99
// sparkline and a throughput sparkline, labeled with their peaks. It is the
// at-a-glance transient fingerprint CLI output leads with.
func TimelineSpark(tl metrics.Timeline) string {
	if len(tl.Epochs) == 0 {
		return "(empty timeline)"
	}
	p99s := tl.P99s()
	thr := make([]float64, len(tl.Epochs))
	maxP99, maxThr := 0.0, 0.0
	for i, e := range tl.Epochs {
		thr[i] = e.ThroughputMRPS
		if e.ThroughputMRPS > maxThr {
			maxThr = e.ThroughputMRPS
		}
		if p99s[i] > maxP99 {
			maxP99 = p99s[i]
		}
	}
	return fmt.Sprintf("p99 %s peak %.0fns\nthr %s peak %.2fMRPS (epoch %.0fus)",
		Sparkline(p99s), maxP99, Sparkline(thr), maxThr, tl.EpochNanos/1000)
}
