package report

import (
	"strings"
	"testing"

	"rpcvalet/internal/sim"
	"rpcvalet/internal/trace"
)

func TestSpanTable(t *testing.T) {
	spans := []trace.Span{
		{
			ReqID: 7, Node: 2, Core: 5, DepthAtArrival: 3, DepthAtForward: 1,
			BalancerRecv: sim.Time(0), Forward: sim.Time(100 * sim.Nanosecond),
			Arrive:   sim.Time(600 * sim.Nanosecond),
			Dispatch: sim.Time(650 * sim.Nanosecond),
			Start:    sim.Time(900 * sim.Nanosecond),
			Complete: sim.Time(1400 * sim.Nanosecond),
		},
		{
			ReqID: 9, Node: -1, Core: -1, DepthAtArrival: -1, DepthAtForward: -1,
			BalancerRecv: trace.Unset, Forward: trace.Unset, Dispatch: trace.Unset,
			Arrive: sim.Time(0), Start: sim.Time(10 * sim.Nanosecond), Complete: sim.Time(40 * sim.Nanosecond),
		},
	}
	tbl := SpanTable("tail", spans)
	if tbl.Title != "tail" {
		t.Fatalf("title = %q", tbl.Title)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	var b strings.Builder
	if err := tbl.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// First span: hop 500ns (forward→arrive), wait 300ns, service 500ns,
	// total 1400ns end to end, wait share 300/800.
	for _, want := range []string{"wait_share", "1400", "500", "300", "0.375"} {
		if !strings.Contains(out, want) {
			t.Fatalf("span table missing %q:\n%s", want, out)
		}
	}
	// Second span: unobserved attributions render as dashes.
	row := tbl.Rows[1]
	for _, col := range []int{1, 2, 3} { // node, core, depth
		if row[col] != "-" {
			t.Fatalf("untracked column %d = %q, want -", col, row[col])
		}
	}
}
