package report

import (
	"strings"
	"testing"

	"rpcvalet/internal/sim"
	"rpcvalet/internal/trace"
)

func TestSpanTable(t *testing.T) {
	spans := []trace.Span{
		{
			ReqID: 7, Node: 2, Core: 5, Rack: -1, DepthAtArrival: 3, DepthAtForward: 1,
			GlobalRecv: trace.Unset, GlobalForward: trace.Unset,
			BalancerRecv: sim.Time(0), Forward: sim.Time(100 * sim.Nanosecond),
			Arrive:   sim.Time(600 * sim.Nanosecond),
			Dispatch: sim.Time(650 * sim.Nanosecond),
			Start:    sim.Time(900 * sim.Nanosecond),
			Complete: sim.Time(1400 * sim.Nanosecond),
		},
		{
			ReqID: 9, Node: -1, Core: -1, Rack: -1, DepthAtArrival: -1, DepthAtForward: -1,
			GlobalRecv: trace.Unset, GlobalForward: trace.Unset,
			BalancerRecv: trace.Unset, Forward: trace.Unset, Dispatch: trace.Unset,
			Arrive: sim.Time(0), Start: sim.Time(10 * sim.Nanosecond), Complete: sim.Time(40 * sim.Nanosecond),
		},
	}
	tbl := SpanTable("tail", spans)
	if tbl.Title != "tail" {
		t.Fatalf("title = %q", tbl.Title)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	var b strings.Builder
	if err := tbl.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// First span: hop 500ns (forward→arrive), wait 300ns, service 500ns,
	// total 1400ns end to end, wait share 300/800.
	for _, want := range []string{"wait_share", "1400", "500", "300", "0.375"} {
		if !strings.Contains(out, want) {
			t.Fatalf("span table missing %q:\n%s", want, out)
		}
	}
	// Second span: unobserved attributions render as dashes.
	row := tbl.Rows[1]
	for _, col := range []int{1, 2, 3} { // node, core, depth
		if row[col] != "-" {
			t.Fatalf("untracked column %d = %q, want -", col, row[col])
		}
	}
	// Flat spans keep the historical column set — no hierarchy columns.
	for _, c := range tbl.Columns {
		if c == "rack" || c == "ghop_ns" {
			t.Fatalf("flat span table grew hierarchy column %q", c)
		}
	}
}

func TestSpanTableHier(t *testing.T) {
	spans := []trace.Span{{
		ReqID: 4, Node: 11, Core: 1, Rack: 2, DepthAtArrival: 0, DepthAtForward: 1,
		DepthAtGlobalForward: 6,
		GlobalRecv:           sim.Time(0),
		GlobalForward:        sim.Time(0),
		BalancerRecv:         sim.Time(500 * sim.Nanosecond),
		Forward:              sim.Time(500 * sim.Nanosecond),
		Arrive:               sim.Time(1000 * sim.Nanosecond),
		Dispatch:             sim.Time(1050 * sim.Nanosecond),
		Start:                sim.Time(1100 * sim.Nanosecond),
		Complete:             sim.Time(2100 * sim.Nanosecond),
	}}
	tbl := SpanTable("tail", spans)
	var haveRack, haveGhop bool
	for _, c := range tbl.Columns {
		haveRack = haveRack || c == "rack"
		haveGhop = haveGhop || c == "ghop_ns"
	}
	if !haveRack || !haveGhop {
		t.Fatalf("hier span table missing rack/ghop columns: %v", tbl.Columns)
	}
	row := tbl.Rows[0]
	if row[1] != "2" {
		t.Fatalf("rack column = %q, want 2", row[1])
	}
	var b strings.Builder
	if err := tbl.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	// ghop 500ns (global-forward → balancer-recv), total 2100ns.
	for _, want := range []string{"ghop_ns", "500", "2100"} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("hier span table missing %q:\n%s", want, b.String())
		}
	}
}
