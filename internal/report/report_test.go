package report

import (
	"encoding/json"
	"strings"
	"testing"
)

func sample() *Table {
	t := NewTable("demo", "load", "p99")
	t.AddRow("0.5", "3.2")
	t.AddRowf(0.75, 6.125)
	return t
}

func TestWriteText(t *testing.T) {
	var b strings.Builder
	if err := sample().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"# demo", "load", "p99", "0.5", "6.125", "----"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text output missing %q:\n%s", want, out)
		}
	}
	// Columns align: every line has the same prefix width for column 2.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("expected 5 lines, got %d", len(lines))
	}
}

func TestNoTitle(t *testing.T) {
	tb := NewTable("", "a")
	tb.AddRow("1")
	var b strings.Builder
	if err := tb.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "#") {
		t.Fatal("untitled table printed a title line")
	}
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	if err := sample().WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "load,p99\n0.5,3.2\n0.75,6.125\n"
	if b.String() != want {
		t.Fatalf("csv = %q, want %q", b.String(), want)
	}
}

func TestWriteJSON(t *testing.T) {
	var b strings.Builder
	if err := sample().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var rows []map[string]string
	if err := json.Unmarshal([]byte(b.String()), &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0]["load"] != "0.5" || rows[1]["p99"] != "6.125" {
		t.Fatalf("json rows = %+v", rows)
	}
}

func TestFormatDispatch(t *testing.T) {
	for _, f := range []string{"", "text", "csv", "json"} {
		var b strings.Builder
		if err := sample().Format(&b, f); err != nil {
			t.Fatalf("format %q: %v", f, err)
		}
		if b.Len() == 0 {
			t.Fatalf("format %q produced no output", f)
		}
	}
	var b strings.Builder
	if err := sample().Format(&b, "xml"); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestAddRowPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched row did not panic")
		}
	}()
	NewTable("t", "a", "b").AddRow("only-one")
}
