package report

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"rpcvalet/internal/metrics"
	"rpcvalet/internal/stats"
)

func sample() *Table {
	t := NewTable("demo", "load", "p99")
	t.AddRow("0.5", "3.2")
	t.AddRowf(0.75, 6.125)
	return t
}

func TestWriteText(t *testing.T) {
	var b strings.Builder
	if err := sample().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"# demo", "load", "p99", "0.5", "6.125", "----"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text output missing %q:\n%s", want, out)
		}
	}
	// Columns align: every line has the same prefix width for column 2.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("expected 5 lines, got %d", len(lines))
	}
}

func TestNoTitle(t *testing.T) {
	tb := NewTable("", "a")
	tb.AddRow("1")
	var b strings.Builder
	if err := tb.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "#") {
		t.Fatal("untitled table printed a title line")
	}
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	if err := sample().WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "load,p99\n0.5,3.2\n0.75,6.125\n"
	if b.String() != want {
		t.Fatalf("csv = %q, want %q", b.String(), want)
	}
}

func TestWriteJSON(t *testing.T) {
	var b strings.Builder
	if err := sample().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var rows []map[string]string
	if err := json.Unmarshal([]byte(b.String()), &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0]["load"] != "0.5" || rows[1]["p99"] != "6.125" {
		t.Fatalf("json rows = %+v", rows)
	}
}

func TestFormatDispatch(t *testing.T) {
	for _, f := range []string{"", "text", "csv", "json"} {
		var b strings.Builder
		if err := sample().Format(&b, f); err != nil {
			t.Fatalf("format %q: %v", f, err)
		}
		if b.Len() == 0 {
			t.Fatalf("format %q produced no output", f)
		}
	}
	var b strings.Builder
	if err := sample().Format(&b, "xml"); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestAddRowPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched row did not panic")
		}
	}()
	NewTable("t", "a", "b").AddRow("only-one")
}

func TestSparkline(t *testing.T) {
	if got := Sparkline([]float64{0, 1, 2, 4}); got != "▁▂▄█" {
		t.Fatalf("sparkline = %q", got)
	}
	if got := Sparkline([]float64{0, 0}); got != "▁▁" {
		t.Fatalf("all-zero sparkline = %q", got)
	}
	if got := Sparkline(nil); got != "" {
		t.Fatalf("empty sparkline = %q", got)
	}
}

func TestTimelineTable(t *testing.T) {
	tl := metrics.Timeline{
		EpochNanos: 1000,
		Epochs: []metrics.EpochStats{
			{StartNanos: 0, EndNanos: 1000, Completions: 10, ThroughputMRPS: 10,
				Latency: stats.Summary{P50: 100, P99: 300}, MeanDepth: 1.5, MaxDepth: 3, Utilization: 0.4},
			{StartNanos: 1000, EndNanos: 2000, Completions: 20, ThroughputMRPS: 20,
				Latency: stats.Summary{P50: 120, P99: 900}, MeanDepth: 2.5, MaxDepth: 6, Utilization: 0.8},
		},
	}
	tbl := TimelineTable("tl", tl)
	if len(tbl.Rows) != 2 || len(tbl.Columns) != 9 {
		t.Fatalf("table shape %dx%d", len(tbl.Rows), len(tbl.Columns))
	}
	var buf bytes.Buffer
	if err := tbl.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"thr_mrps", "p99_ns", "0–1", "900"} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline table missing %q:\n%s", want, out)
		}
	}
	spark := TimelineSpark(tl)
	if !strings.Contains(spark, "p99") || !strings.Contains(spark, "peak 900ns") {
		t.Fatalf("spark = %q", spark)
	}
	if TimelineSpark(metrics.Timeline{}) != "(empty timeline)" {
		t.Fatal("empty spark")
	}
}
