// Package fifo provides the amortized-compaction FIFO queue used on the
// simulator's hot paths: a growable slice with a head index, where Pop
// advances the head instead of re-slicing, and the consumed prefix is
// reclaimed only once it is both larger than a threshold and at least half
// of the backing array. Push and Pop are amortized O(1) with no per-element
// allocation in steady state, and popped slots are zeroed so the queue never
// pins dead references.
//
// The machine model's per-core completion queues, the software single
// queue, the idle-core list, and the NI dispatcher's shared CQ all use this
// one implementation (they used to hand-roll four copies of it).
package fifo

// DefaultCompactAfter is the compaction threshold used when CompactAfter is
// left zero: small enough to bound waste on per-core queues, large enough
// that compaction cost stays amortized away.
const DefaultCompactAfter = 256

// Queue is a FIFO over a growable slice. The zero value is an empty queue
// with the default compaction threshold; set CompactAfter before first use
// to tune how much consumed prefix may accumulate before it is reclaimed.
// Queue is not safe for concurrent use.
type Queue[T any] struct {
	// CompactAfter is the minimum consumed-prefix length before Pop
	// considers compacting (0 means DefaultCompactAfter). Compaction also
	// requires the prefix to cover at least half the backing slice, which
	// keeps the copy cost amortized O(1) per element.
	CompactAfter int

	buf  []T
	head int
}

// Push appends v to the tail.
func (q *Queue[T]) Push(v T) { q.buf = append(q.buf, v) }

// Grow pre-sizes the backing slice to hold at least n elements, so a queue
// whose steady-state occupancy (live elements plus the compaction
// threshold's consumed prefix) is known up front never reallocates on the
// hot path. It never shrinks and never moves queued elements.
func (q *Queue[T]) Grow(n int) {
	if n <= cap(q.buf) {
		return
	}
	buf := make([]T, len(q.buf), n)
	copy(buf, q.buf)
	q.buf = buf
}

// Pop removes and returns the head element, reporting false on an empty
// queue.
func (q *Queue[T]) Pop() (T, bool) {
	var zero T
	if q.head >= len(q.buf) {
		return zero, false
	}
	v := q.buf[q.head]
	q.buf[q.head] = zero // drop the reference for the garbage collector
	q.head++
	after := q.CompactAfter
	if after <= 0 {
		after = DefaultCompactAfter
	}
	if q.head > after && q.head*2 >= len(q.buf) {
		n := copy(q.buf, q.buf[q.head:])
		q.buf = q.buf[:n]
		q.head = 0
	}
	return v, true
}

// Peek returns the head element without removing it, reporting false on an
// empty queue.
func (q *Queue[T]) Peek() (T, bool) {
	var zero T
	if q.head >= len(q.buf) {
		return zero, false
	}
	return q.buf[q.head], true
}

// Len reports the number of queued elements.
func (q *Queue[T]) Len() int { return len(q.buf) - q.head }

// Cap reports the capacity of the backing slice — exposed for tests that
// assert the consumed prefix is actually reclaimed.
func (q *Queue[T]) Cap() int { return cap(q.buf) }
