package fifo

import "testing"

func TestEmpty(t *testing.T) {
	var q Queue[int]
	if q.Len() != 0 {
		t.Fatalf("zero-value Len = %d", q.Len())
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop on empty queue reported ok")
	}
	if _, ok := q.Peek(); ok {
		t.Fatal("Peek on empty queue reported ok")
	}
}

func TestFIFOOrder(t *testing.T) {
	var q Queue[int]
	for i := 0; i < 1000; i++ {
		q.Push(i)
	}
	if q.Len() != 1000 {
		t.Fatalf("Len = %d", q.Len())
	}
	if v, ok := q.Peek(); !ok || v != 0 {
		t.Fatalf("Peek = %d, %v", v, ok)
	}
	for i := 0; i < 1000; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("Pop #%d = %d, %v", i, v, ok)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("queue not drained")
	}
}

// TestInterleaved exercises the steady-state producer/consumer pattern the
// simulator generates: pushes and pops interleave and the queue stays short,
// so the backing slice must not grow without bound.
func TestInterleaved(t *testing.T) {
	q := Queue[int]{CompactAfter: 64}
	next, want := 0, 0
	for round := 0; round < 10000; round++ {
		q.Push(next)
		next++
		if round%3 != 0 { // drain slightly slower than fill, then catch up
			v, ok := q.Pop()
			if !ok || v != want {
				t.Fatalf("round %d: Pop = %d, %v (want %d)", round, v, ok, want)
			}
			want++
		}
	}
	for q.Len() > 0 {
		v, _ := q.Pop()
		if v != want {
			t.Fatalf("drain: got %d want %d", v, want)
		}
		want++
	}
	if want != next {
		t.Fatalf("popped %d of %d pushed", want, next)
	}
}

// TestCompactionReclaims: after consuming a long prefix the backing slice
// must shrink back instead of retaining every element ever pushed.
func TestCompactionReclaims(t *testing.T) {
	q := Queue[int]{CompactAfter: 128}
	const n = 1 << 16
	for i := 0; i < n; i++ {
		q.Push(i)
		q.Pop()
	}
	if q.Cap() >= n {
		t.Fatalf("backing slice grew to %d for a queue that never exceeded depth 1", q.Cap())
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d", q.Len())
	}
}

// TestCompactionThresholdRespected: compaction must not fire while the
// consumed prefix is at or below CompactAfter, and must fire once the prefix
// is past the threshold and covers half the slice.
func TestCompactionThresholdRespected(t *testing.T) {
	q := Queue[int]{CompactAfter: 8}
	for i := 0; i < 9; i++ {
		q.Push(i)
	}
	for i := 0; i < 8; i++ {
		q.Pop()
	}
	if q.head != 8 {
		t.Fatalf("head = %d before crossing threshold, want 8", q.head)
	}
	q.Push(100) // len 10, next pop makes head 9 > 8 and 9*2 >= 10
	if v, _ := q.Pop(); v != 8 {
		t.Fatalf("pop = %d, want 8", v)
	}
	if q.head != 0 {
		t.Fatalf("head = %d after compaction, want 0", q.head)
	}
	if v, _ := q.Pop(); v != 100 {
		t.Fatalf("post-compaction order broken: got %d", v)
	}
}

// TestPointerSlotsZeroed: popped slots must not retain references.
func TestPointerSlotsZeroed(t *testing.T) {
	var q Queue[*int]
	x := new(int)
	q.Push(x)
	q.Pop()
	if q.buf[0] != nil {
		t.Fatal("popped slot still holds the pointer")
	}
}

func TestDefaultThreshold(t *testing.T) {
	var q Queue[int]
	for i := 0; i <= DefaultCompactAfter; i++ {
		q.Push(i)
	}
	for i := 0; i < DefaultCompactAfter; i++ {
		q.Pop()
	}
	if q.head == 0 {
		t.Fatal("compacted at the threshold; must only compact past it")
	}
	q.Pop() // head crosses DefaultCompactAfter and covers the whole slice
	if q.head != 0 {
		t.Fatalf("head = %d, want compaction past the default threshold", q.head)
	}
}
