// Package metrics is the measurement layer shared by every simulator in the
// repository: the machine model (internal/machine), the rack-scale cluster
// (internal/cluster), and the queueing models (internal/queueing) all record
// through a Recorder instead of keeping ad-hoc sample fields.
//
// A Recorder collects two views of the same run:
//
//   - Summary statistics over the measurement window (warmup excluded):
//     the headline latency sample, per-class latencies, pre-service wait,
//     per-request service occupancy, and per-server busy time. These are
//     exactly the collectors the simulators historically kept inline, fed
//     the same values in the same order, so refactoring onto the Recorder
//     is byte-identical for every existing result field.
//
//   - An epoch-sliced timeline over the whole run (warmup included): virtual
//     time is cut into fixed-length epochs, and each epoch accumulates its
//     own latency and wait samples, completion count, queue-depth
//     observations, and busy time. The timeline is what makes transients
//     visible — a load step, a burst, a degraded node — which a single
//     steady-state window averages away.
//
// The slice count is bounded: when a run outgrows MaxEpochs slices, the
// epoch length doubles and adjacent epochs merge pairwise
// (stats.Sample.Merge), so the timeline stays a fixed number of rows for
// any run length while every recorded observation remains attributed to the
// slice containing it. Note the bound is on slice count, not bytes: epochs
// keep exact-order-statistics samples, so total memory scales with the
// completion count — the same order as the summary samples the simulators
// have always kept (each observation is stored twice). The whole layer is
// deterministic — it consumes no randomness and allocates no state that
// depends on wall-clock time — so identical simulations produce identical
// Timelines.
package metrics

import (
	"rpcvalet/internal/sim"
	"rpcvalet/internal/stats"
)

// Defaults for Config's zero values.
const (
	// DefaultEpochNanos is the initial epoch length: 1 µs, fine enough to
	// resolve µs-scale transients; long runs double it as needed.
	DefaultEpochNanos = 1000.0
	// DefaultMaxEpochs bounds the timeline's length; beyond it the epoch
	// length doubles and adjacent epochs merge.
	DefaultMaxEpochs = 64
)

// Config sizes a Recorder.
type Config struct {
	// Classes labels the per-class latency samples (may be empty).
	Classes []string
	// Servers is the busy-time capacity normalizer: the number of serving
	// units (cores) whose combined busy time saturates an epoch's
	// utilization at 1.0. Zero disables the utilization timeline.
	Servers int
	// EpochNanos is the initial epoch length (0 = DefaultEpochNanos).
	EpochNanos float64
	// MaxEpochs bounds the number of epoch slices (0 = DefaultMaxEpochs;
	// values below 2 are raised to 2 so doubling can make progress).
	MaxEpochs int
	// Expect pre-sizes the summary samples for a run expected to record
	// about this many completions, so steady-state recording never grows a
	// slice. Zero leaves the samples growing on demand.
	Expect int
}

// Completion describes one finished request, pre-measured by the simulator.
// Negative values mark observations the caller does not track.
type Completion struct {
	Class     int     // request-class index (ignored when out of range)
	Measured  bool    // class counts toward the headline latency sample
	LatencyNs float64 // end-to-end latency; <0 = not observed
	WaitNs    float64 // pre-service delay; <0 = not observed
	ServiceNs float64 // per-request server occupancy; <0 = not observed
	Depth     int     // queue-depth signal at completion; <0 = not observed
}

// epoch is one timeline slice's accumulators.
type epoch struct {
	lat, wait   stats.Sample
	completions int
	depthSum    int64
	depthN      int
	depthMax    int
	busy        sim.Duration
}

// merge folds o into e (the epoch-doubling step).
func (e *epoch) merge(o *epoch) {
	e.lat.Merge(&o.lat)
	e.wait.Merge(&o.wait)
	e.completions += o.completions
	e.depthSum += o.depthSum
	e.depthN += o.depthN
	if o.depthMax > e.depthMax {
		e.depthMax = o.depthMax
	}
	e.busy += o.busy
}

// Recorder accumulates one run's measurements. The zero value is not useful;
// create one with NewRecorder. Recorders are not safe for concurrent use —
// like the engine they observe, one Recorder belongs to one simulation
// goroutine.
type Recorder struct {
	cfg        Config
	epochNanos float64
	epochs     []*epoch

	// Summary collectors (measurement window only).
	latency, wait, svc stats.Sample
	class              []stats.Sample
	busyTotal          []sim.Duration
	winStart, winEnd   sim.Time
	inWindow           bool
}

// NewRecorder builds a Recorder for one run.
func NewRecorder(cfg Config) *Recorder {
	if cfg.EpochNanos <= 0 {
		cfg.EpochNanos = DefaultEpochNanos
	}
	if cfg.MaxEpochs <= 0 {
		cfg.MaxEpochs = DefaultMaxEpochs
	}
	if cfg.MaxEpochs < 2 {
		cfg.MaxEpochs = 2
	}
	r := &Recorder{
		cfg:        cfg,
		epochNanos: cfg.EpochNanos,
		class:      make([]stats.Sample, len(cfg.Classes)),
		busyTotal:  make([]sim.Duration, cfg.Servers),
	}
	if cfg.Expect > 0 {
		r.latency.Grow(cfg.Expect)
		r.wait.Grow(cfg.Expect)
		r.svc.Grow(cfg.Expect)
		for i := range r.class {
			r.class[i].Grow(cfg.Expect)
		}
	}
	return r
}

// OpenWindow starts the summary measurement window at time t (after warmup).
func (r *Recorder) OpenWindow(t sim.Time) {
	r.winStart = t
	r.inWindow = true
}

// CloseWindow ends the summary measurement window at time t.
func (r *Recorder) CloseWindow(t sim.Time) {
	r.winEnd = t
	r.inWindow = false
}

// Window returns the summary window's bounds (zero until opened/closed).
func (r *Recorder) Window() (start, end sim.Time) { return r.winStart, r.winEnd }

// epochAt returns the slice covering time t, doubling the epoch length (and
// pairwise-merging existing slices) whenever t falls beyond MaxEpochs.
func (r *Recorder) epochAt(t sim.Time) *epoch {
	ns := t.Nanos()
	if ns < 0 {
		ns = 0
	}
	idx := int(ns / r.epochNanos)
	for idx >= r.cfg.MaxEpochs {
		r.double()
		idx = int(ns / r.epochNanos)
	}
	for len(r.epochs) <= idx {
		r.epochs = append(r.epochs, &epoch{})
	}
	return r.epochs[idx]
}

// double doubles the epoch length and merges adjacent slices pairwise.
func (r *Recorder) double() {
	r.epochNanos *= 2
	half := (len(r.epochs) + 1) / 2
	merged := make([]*epoch, half)
	for i := 0; i < half; i++ {
		e := r.epochs[2*i]
		if 2*i+1 < len(r.epochs) {
			e.merge(r.epochs[2*i+1])
		}
		merged[i] = e
	}
	r.epochs = merged
}

// Complete records one finished request at virtual time t. The timeline
// always records it; the summary collectors record it only while the
// measurement window is open — the exact gating the simulators historically
// applied inline.
func (r *Recorder) Complete(t sim.Time, c Completion) {
	if r.inWindow {
		if c.Measured && c.LatencyNs >= 0 {
			r.latency.Add(c.LatencyNs)
		}
		if c.Class >= 0 && c.Class < len(r.class) && c.LatencyNs >= 0 {
			r.class[c.Class].Add(c.LatencyNs)
		}
		if c.ServiceNs >= 0 {
			r.svc.Add(c.ServiceNs)
		}
		if c.WaitNs >= 0 {
			r.wait.Add(c.WaitNs)
		}
	}
	e := r.epochAt(t)
	e.completions++
	if c.Measured && c.LatencyNs >= 0 {
		e.lat.Add(c.LatencyNs)
	}
	if c.WaitNs >= 0 {
		e.wait.Add(c.WaitNs)
	}
	if c.Depth >= 0 {
		e.depthSum += int64(c.Depth)
		e.depthN++
		if c.Depth > e.depthMax {
			e.depthMax = c.Depth
		}
	}
}

// Depth records a standalone queue-depth observation at time t (for callers
// that sample depth outside completion events).
func (r *Recorder) Depth(t sim.Time, depth int) {
	if depth < 0 {
		return
	}
	e := r.epochAt(t)
	e.depthSum += int64(depth)
	e.depthN++
	if depth > e.depthMax {
		e.depthMax = depth
	}
}

// Busy attributes d of busy time on serving unit `server` to the epoch
// containing t (by convention the time the busy span was committed). Spans
// are not split across epoch boundaries, so an epoch's utilization is a
// first-order attribution, not an integral; with epochs much longer than a
// single span the distinction is negligible.
func (r *Recorder) Busy(t sim.Time, server int, d sim.Duration) {
	if server >= 0 && server < len(r.busyTotal) {
		r.busyTotal[server] += d
	}
	r.epochAt(t).busy += d
}

// BusyTotal reports the cumulative busy time recorded for one serving unit.
func (r *Recorder) BusyTotal(server int) sim.Duration {
	if server < 0 || server >= len(r.busyTotal) {
		return 0
	}
	return r.busyTotal[server]
}

// MeanUtilization reports the average busy fraction across all serving
// units, measured against the clock value now.
func (r *Recorder) MeanUtilization(now sim.Time) float64 {
	if now == 0 || len(r.busyTotal) == 0 {
		return 0
	}
	var busy sim.Duration
	for _, b := range r.busyTotal {
		busy += b
	}
	return float64(busy) / float64(now) / float64(len(r.busyTotal))
}

// --- Summary accessors ----------------------------------------------------

// Latency summarizes the headline (measured-class) latency sample.
func (r *Recorder) Latency() stats.Summary { return r.latency.Summarize() }

// Class summarizes one request class's latency sample.
func (r *Recorder) Class(i int) stats.Summary { return r.class[i].Summarize() }

// Wait summarizes the pre-service delay sample.
func (r *Recorder) Wait() stats.Summary { return r.wait.Summarize() }

// ServiceMean reports the mean per-request service occupancy (S̄).
func (r *Recorder) ServiceMean() float64 { return r.svc.Mean() }

// --- Timeline -------------------------------------------------------------

// EpochStats is one rendered timeline slice.
type EpochStats struct {
	StartNanos     float64
	EndNanos       float64
	Completions    int
	ThroughputMRPS float64       // completions over the epoch length
	Latency        stats.Summary // measured-class latency within the epoch
	Wait           stats.Summary // pre-service delay within the epoch
	MeanDepth      float64       // mean queue-depth observation
	MaxDepth       int
	Utilization    float64 // busy time / (epoch × servers); 0 when untracked
}

// Timeline is the rendered epoch series of one run.
type Timeline struct {
	// EpochNanos is the final epoch length after any doubling.
	EpochNanos float64
	Epochs     []EpochStats
}

// Timeline renders the recorder's epoch series. Trailing empty epochs are
// trimmed; interior empty epochs (a stalled system) are kept, zero-valued,
// so indices remain proportional to time.
func (r *Recorder) Timeline() Timeline {
	last := -1
	for i, e := range r.epochs {
		if e.completions > 0 || e.depthN > 0 || e.busy > 0 {
			last = i
		}
	}
	tl := Timeline{EpochNanos: r.epochNanos}
	if last < 0 {
		return tl
	}
	tl.Epochs = make([]EpochStats, last+1)
	for i := 0; i <= last; i++ {
		e := r.epochs[i]
		es := EpochStats{
			StartNanos:     float64(i) * r.epochNanos,
			EndNanos:       float64(i+1) * r.epochNanos,
			Completions:    e.completions,
			ThroughputMRPS: float64(e.completions) / r.epochNanos * 1000,
			Latency:        e.lat.Summarize(),
			Wait:           e.wait.Summarize(),
			MaxDepth:       e.depthMax,
		}
		if e.depthN > 0 {
			es.MeanDepth = float64(e.depthSum) / float64(e.depthN)
		}
		if r.cfg.Servers > 0 {
			es.Utilization = e.busy.Nanos() / (r.epochNanos * float64(r.cfg.Servers))
		}
		tl.Epochs[i] = es
	}
	return tl
}

// EpochIndex returns the index of the epoch containing time ns, clamped to
// the timeline's bounds (-1 when the timeline is empty).
func (t Timeline) EpochIndex(ns float64) int {
	if len(t.Epochs) == 0 || t.EpochNanos <= 0 {
		return -1
	}
	i := int(ns / t.EpochNanos)
	if i < 0 {
		i = 0
	}
	if i >= len(t.Epochs) {
		i = len(t.Epochs) - 1
	}
	return i
}

// P99s extracts each epoch's p99 latency (0 for empty epochs), a convenient
// series for transient-recovery analysis and sparkline rendering.
func (t Timeline) P99s() []float64 {
	out := make([]float64, len(t.Epochs))
	for i, e := range t.Epochs {
		out[i] = e.Latency.P99
	}
	return out
}
