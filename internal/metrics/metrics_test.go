package metrics

import (
	"testing"

	"rpcvalet/internal/sim"
	"rpcvalet/internal/stats"
)

func at(ns float64) sim.Time { return sim.Time(0).Add(sim.FromNanos(ns)) }

// TestSummaryMatchesInlineCollectors replays the exact gating the machine
// model historically applied and checks the Recorder's summary equals
// inline stats.Sample collectors fed the same values.
func TestSummaryMatchesInlineCollectors(t *testing.T) {
	var latency, wait, svc stats.Sample
	classLat := make([]stats.Sample, 2)

	obs := []struct {
		t                  float64
		class              int
		measured, inWindow bool
		lat, wait, svc     float64
	}{
		{100, 0, true, false, 500, 100, 400}, // warmup: timeline only
		{200, 1, false, true, 900, 300, 600},
		{300, 0, true, true, 550, 120, 430},
		{400, 0, true, true, 700, 250, 450},
	}
	// The reference: the collectors the machine model historically kept
	// inline, with its exact gating order.
	for _, o := range obs {
		if !o.inWindow {
			continue
		}
		if o.measured {
			latency.Add(o.lat)
		}
		classLat[o.class].Add(o.lat)
		svc.Add(o.svc)
		wait.Add(o.wait)
	}
	r := NewRecorder(Config{Classes: []string{"a", "b"}, Servers: 2})
	for i, o := range obs {
		if i == 1 {
			r.OpenWindow(at(150))
		}
		r.Complete(at(o.t), Completion{Class: o.class, Measured: o.measured, LatencyNs: o.lat, WaitNs: o.wait, ServiceNs: o.svc, Depth: 3})
	}
	r.CloseWindow(at(400))

	if r.Latency() != latency.Summarize() {
		t.Fatalf("latency summary diverged: %v vs %v", r.Latency(), latency.Summarize())
	}
	if r.Wait() != wait.Summarize() {
		t.Fatalf("wait summary diverged")
	}
	if r.ServiceMean() != svc.Mean() {
		t.Fatalf("service mean diverged")
	}
	for i := range classLat {
		if r.Class(i) != classLat[i].Summarize() {
			t.Fatalf("class %d summary diverged", i)
		}
	}
	if got := r.Wait().Count; got != 3 {
		t.Fatalf("window wait count = %d, want 3", got)
	}
	// The timeline saw all four completions, the summary only three.
	tl := r.Timeline()
	total := 0
	for _, e := range tl.Epochs {
		total += e.Completions
	}
	if total != 4 {
		t.Fatalf("timeline completions = %d, want 4", total)
	}
}

func TestEpochSlicing(t *testing.T) {
	r := NewRecorder(Config{EpochNanos: 100, MaxEpochs: 64})
	// Two completions in epoch 0, one in epoch 3.
	r.Complete(at(10), Completion{Measured: true, LatencyNs: 50, WaitNs: -1, ServiceNs: -1, Depth: 2})
	r.Complete(at(90), Completion{Measured: true, LatencyNs: 70, WaitNs: -1, ServiceNs: -1, Depth: 4})
	r.Complete(at(350), Completion{Measured: true, LatencyNs: 90, WaitNs: -1, ServiceNs: -1, Depth: -1})
	tl := r.Timeline()
	if tl.EpochNanos != 100 || len(tl.Epochs) != 4 {
		t.Fatalf("timeline = %g ns × %d epochs", tl.EpochNanos, len(tl.Epochs))
	}
	e0 := tl.Epochs[0]
	if e0.Completions != 2 || e0.Latency.Count != 2 || e0.MaxDepth != 4 || e0.MeanDepth != 3 {
		t.Fatalf("epoch 0 = %+v", e0)
	}
	if e0.ThroughputMRPS != 2.0/100*1000 {
		t.Fatalf("epoch 0 throughput = %v", e0.ThroughputMRPS)
	}
	if tl.Epochs[1].Completions != 0 || tl.Epochs[2].Completions != 0 {
		t.Fatal("interior empty epochs must be kept")
	}
	if tl.Epochs[3].Latency.P99 != 90 {
		t.Fatalf("epoch 3 p99 = %v", tl.Epochs[3].Latency.P99)
	}
	if got := tl.EpochIndex(350); got != 3 {
		t.Fatalf("EpochIndex(350) = %d", got)
	}
	if got := tl.EpochIndex(1e9); got != 3 {
		t.Fatalf("EpochIndex clamps to last, got %d", got)
	}
}

// TestEpochDoubling drives the recorder past MaxEpochs and checks that
// doubling merges slices without losing observations.
func TestEpochDoubling(t *testing.T) {
	r := NewRecorder(Config{EpochNanos: 10, MaxEpochs: 4})
	n := 0
	for ns := 5.0; ns < 300; ns += 10 { // 30 completions over 300 ns
		r.Complete(at(ns), Completion{Measured: true, LatencyNs: ns, WaitNs: -1, ServiceNs: -1, Depth: 1})
		n++
	}
	tl := r.Timeline()
	if len(tl.Epochs) > 4 {
		t.Fatalf("epochs = %d, want <= 4", len(tl.Epochs))
	}
	// 300 ns needs epoch >= 75 ns with 4 slices; doubling from 10 gives 80.
	if tl.EpochNanos != 80 {
		t.Fatalf("epoch length = %g, want 80", tl.EpochNanos)
	}
	total := 0
	for _, e := range tl.Epochs {
		total += e.Completions
	}
	if total != n {
		t.Fatalf("completions after doubling = %d, want %d", total, n)
	}
	// Latency observations survive merging: the global max must be present.
	last := tl.Epochs[len(tl.Epochs)-1]
	if last.Latency.Max != 295 {
		t.Fatalf("last epoch max = %v, want 295", last.Latency.Max)
	}
}

func TestBusyAndUtilization(t *testing.T) {
	r := NewRecorder(Config{EpochNanos: 100, MaxEpochs: 8, Servers: 2})
	r.Busy(at(50), 0, sim.FromNanos(40))
	r.Busy(at(60), 1, sim.FromNanos(60))
	r.Busy(at(150), 0, sim.FromNanos(100))
	if got := r.BusyTotal(0); got != sim.FromNanos(140) {
		t.Fatalf("busy[0] = %v", got)
	}
	if got := r.BusyTotal(1); got != sim.FromNanos(60) {
		t.Fatalf("busy[1] = %v", got)
	}
	tl := r.Timeline()
	// Epoch 0: 100 ns busy over 2×100 ns capacity = 0.5.
	if u := tl.Epochs[0].Utilization; u != 0.5 {
		t.Fatalf("epoch 0 utilization = %v", u)
	}
	if u := tl.Epochs[1].Utilization; u != 0.5 {
		t.Fatalf("epoch 1 utilization = %v", u)
	}
	if got := r.MeanUtilization(at(200)); got != 0.5 {
		t.Fatalf("mean utilization = %v", got)
	}
	if got := r.MeanUtilization(0); got != 0 {
		t.Fatal("mean utilization at t=0 must be 0")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Timeline {
		r := NewRecorder(Config{EpochNanos: 50, MaxEpochs: 8, Servers: 1})
		for i := 0; i < 200; i++ {
			ns := float64(i) * 7.3
			r.Complete(at(ns), Completion{Measured: i%3 != 0, LatencyNs: float64(i%17) * 11, WaitNs: float64(i % 5), ServiceNs: 400, Depth: i % 9})
			r.Busy(at(ns), 0, sim.FromNanos(3))
		}
		return r.Timeline()
	}
	a, b := run(), run()
	if len(a.Epochs) != len(b.Epochs) || a.EpochNanos != b.EpochNanos {
		t.Fatal("timeline shape nondeterministic")
	}
	for i := range a.Epochs {
		if a.Epochs[i] != b.Epochs[i] {
			t.Fatalf("epoch %d differs", i)
		}
	}
}

func TestEmptyTimeline(t *testing.T) {
	r := NewRecorder(Config{})
	tl := r.Timeline()
	if len(tl.Epochs) != 0 {
		t.Fatalf("empty recorder produced %d epochs", len(tl.Epochs))
	}
	if tl.EpochIndex(0) != -1 {
		t.Fatal("EpochIndex on empty timeline must be -1")
	}
	if len(tl.P99s()) != 0 {
		t.Fatal("P99s on empty timeline must be empty")
	}
}
