// Package stats collects latency samples and computes the tail statistics
// the paper reports (99th-percentile latency as a function of throughput).
//
// Two collectors are provided. Sample keeps every observation and computes
// exact order statistics; it is the default for experiment-sized runs
// (hundreds of thousands of samples). Histogram is an HDR-style
// logarithmically-bucketed histogram with bounded memory and a configurable
// relative error, for very long runs. The test suite cross-validates the two
// against each other.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample accumulates float64 observations and computes exact statistics.
// The zero value is ready to use.
type Sample struct {
	values []float64
	sorted bool
	sum    float64
	sumSq  float64
	min    float64
	max    float64
}

// Add records one observation.
func (s *Sample) Add(v float64) {
	if len(s.values) == 0 || v < s.min {
		s.min = v
	}
	if len(s.values) == 0 || v > s.max {
		s.max = v
	}
	s.values = append(s.values, v)
	s.sorted = false
	s.sum += v
	s.sumSq += v * v
}

// Grow pre-sizes the sample to hold at least n observations without
// reallocating, for collectors whose expected count is known up front (a
// run's Measure target). It never shrinks and never drops observations.
func (s *Sample) Grow(n int) {
	if n <= cap(s.values) {
		return
	}
	values := make([]float64, len(s.values), n)
	copy(values, s.values)
	s.values = values
}

// Count reports the number of observations recorded.
func (s *Sample) Count() int { return len(s.values) }

// Sum returns the running sum of all observations.
func (s *Sample) Sum() float64 { return s.sum }

// Mean returns the arithmetic mean, or 0 when empty.
func (s *Sample) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	return s.sum / float64(len(s.values))
}

// Variance returns the population variance, or 0 when empty.
func (s *Sample) Variance() float64 {
	n := float64(len(s.values))
	if n == 0 {
		return 0
	}
	m := s.sum / n
	v := s.sumSq/n - m*m
	if v < 0 { // floating-point guard
		return 0
	}
	return v
}

// StdDev returns the population standard deviation.
func (s *Sample) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest observation, or 0 when empty.
func (s *Sample) Min() float64 { return s.min }

// Max returns the largest observation, or 0 when empty.
func (s *Sample) Max() float64 { return s.max }

// Quantile returns the p-quantile (0 ≤ p ≤ 1) using the nearest-rank method
// on the sorted observations. It returns 0 when the sample is empty.
func (s *Sample) Quantile(p float64) float64 {
	if len(s.values) == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.values)
		s.sorted = true
	}
	if p <= 0 {
		return s.values[0]
	}
	if p >= 1 {
		return s.values[len(s.values)-1]
	}
	rank := int(math.Ceil(p*float64(len(s.values)))) - 1
	if rank < 0 {
		rank = 0
	}
	return s.values[rank]
}

// P99 is shorthand for Quantile(0.99), the paper's tail-latency metric.
func (s *Sample) P99() float64 { return s.Quantile(0.99) }

// P50 is shorthand for Quantile(0.50).
func (s *Sample) P50() float64 { return s.Quantile(0.50) }

// Reset discards all observations.
func (s *Sample) Reset() {
	s.values = s.values[:0]
	s.sorted = false
	s.sum, s.sumSq, s.min, s.max = 0, 0, 0, 0
}

// Values returns a copy of the recorded observations (sorted if a quantile
// has been computed). The copy is the caller's to keep: mutating it cannot
// corrupt the collector's internal state.
func (s *Sample) Values() []float64 {
	out := make([]float64, len(s.values))
	copy(out, s.values)
	return out
}

// Merge folds all of o's observations into s, as if every o.Add had been
// replayed onto s in insertion order. o is unchanged. Merging an empty
// sample is a no-op.
func (s *Sample) Merge(o *Sample) {
	if o == nil || len(o.values) == 0 {
		return
	}
	if len(s.values) == 0 || o.min < s.min {
		s.min = o.min
	}
	if len(s.values) == 0 || o.max > s.max {
		s.max = o.max
	}
	s.values = append(s.values, o.values...)
	s.sorted = false
	s.sum += o.sum
	s.sumSq += o.sumSq
}

// Summary is a compact set of tail statistics, suitable for tables.
type Summary struct {
	Count          int
	Mean, Min, Max float64
	P50, P90, P99  float64
	P999           float64
	StdDev         float64
}

// Summarize computes a Summary from the sample.
func (s *Sample) Summarize() Summary {
	return Summary{
		Count:  s.Count(),
		Mean:   s.Mean(),
		Min:    s.Min(),
		Max:    s.Max(),
		P50:    s.Quantile(0.50),
		P90:    s.Quantile(0.90),
		P99:    s.Quantile(0.99),
		P999:   s.Quantile(0.999),
		StdDev: s.StdDev(),
	}
}

func (m Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.1f p50=%.1f p99=%.1f p99.9=%.1f max=%.1f",
		m.Count, m.Mean, m.P50, m.P99, m.P999, m.Max)
}

// Histogram is a log-bucketed histogram with bounded relative error,
// in the spirit of HdrHistogram. Values are assigned to buckets whose
// boundaries grow geometrically, so quantile estimates carry a relative
// error of at most the configured precision.
type Histogram struct {
	min, max    float64
	growth      float64 // bucket boundary growth factor (1 + 2·precision)
	logGrowth   float64
	counts      []uint64
	total       uint64
	underflow   uint64
	overflow    uint64
	sum         float64
	observedMax float64
	observedMin float64
}

// NewHistogram creates a Histogram covering [min, max] with the given
// relative precision (e.g. 0.01 for 1%). It panics on invalid bounds, since
// a histogram with a broken domain would silently corrupt results.
func NewHistogram(min, max, precision float64) *Histogram {
	if !(min > 0) || !(max > min) || !(precision > 0 && precision < 1) {
		panic(fmt.Sprintf("stats: invalid histogram domain [%g,%g] precision %g", min, max, precision))
	}
	growth := 1 + 2*precision
	n := int(math.Ceil(math.Log(max/min)/math.Log(growth))) + 1
	return &Histogram{
		min:       min,
		max:       max,
		growth:    growth,
		logGrowth: math.Log(growth),
		counts:    make([]uint64, n),
	}
}

// bucket returns the bucket index for v, assuming min ≤ v ≤ max.
func (h *Histogram) bucket(v float64) int {
	idx := int(math.Log(v/h.min) / h.logGrowth)
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.counts) {
		idx = len(h.counts) - 1
	}
	return idx
}

// Add records one observation. Out-of-domain values are tallied in
// underflow/overflow counters rather than dropped.
func (h *Histogram) Add(v float64) {
	if h.total == 0 || v > h.observedMax {
		h.observedMax = v
	}
	if h.total == 0 || v < h.observedMin {
		h.observedMin = v
	}
	h.total++
	h.sum += v
	switch {
	case v < h.min:
		h.underflow++
	case v > h.max:
		h.overflow++
	default:
		h.counts[h.bucket(v)]++
	}
}

// Count reports the number of observations recorded (including out-of-domain
// ones).
func (h *Histogram) Count() uint64 { return h.total }

// Mean returns the exact arithmetic mean of all recorded observations.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Max returns the largest observation recorded.
func (h *Histogram) Max() float64 { return h.observedMax }

// Min returns the smallest observation recorded.
func (h *Histogram) Min() float64 { return h.observedMin }

// Quantile estimates the p-quantile. Underflowed observations count as min,
// overflowed ones as the observed maximum.
func (h *Histogram) Quantile(p float64) float64 {
	if h.total == 0 {
		return 0
	}
	if p >= 1 {
		return h.observedMax
	}
	target := uint64(math.Ceil(p * float64(h.total)))
	if target == 0 {
		target = 1
	}
	cum := h.underflow
	if cum >= target {
		return h.observedMin
	}
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			// Geometric midpoint of the bucket bounds the relative error.
			lo := h.min * math.Pow(h.growth, float64(i))
			hi := lo * h.growth
			return math.Sqrt(lo * hi)
		}
	}
	return h.observedMax
}

// P99 is shorthand for Quantile(0.99).
func (h *Histogram) P99() float64 { return h.Quantile(0.99) }

// Merge folds all of o's observations into h, as if every o.Add had been
// replayed onto h. The two histograms must share a domain (min, max,
// precision); merging across domains would silently redistribute mass, so it
// is an error. o is unchanged; merging an empty histogram is a no-op.
func (h *Histogram) Merge(o *Histogram) error {
	if o == nil {
		return nil
	}
	if o.min != h.min || o.max != h.max || o.growth != h.growth {
		return fmt.Errorf("stats: merging histogram domain [%g,%g]×%g into [%g,%g]×%g",
			o.min, o.max, o.growth, h.min, h.max, h.growth)
	}
	if o.total == 0 {
		return nil
	}
	if h.total == 0 || o.observedMax > h.observedMax {
		h.observedMax = o.observedMax
	}
	if h.total == 0 || o.observedMin < h.observedMin {
		h.observedMin = o.observedMin
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.total += o.total
	h.underflow += o.underflow
	h.overflow += o.overflow
	h.sum += o.sum
	return nil
}

// Reset discards all observations, retaining the configured domain.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total, h.underflow, h.overflow = 0, 0, 0
	h.sum, h.observedMax, h.observedMin = 0, 0, 0
}
