package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"rpcvalet/internal/rng"
)

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.Count() != 0 || s.Mean() != 0 || s.Quantile(0.99) != 0 || s.Variance() != 0 {
		t.Fatal("empty sample should report zeros")
	}
}

func TestSampleBasic(t *testing.T) {
	var s Sample
	for _, v := range []float64{5, 1, 3, 2, 4} {
		s.Add(v)
	}
	if s.Count() != 5 {
		t.Fatalf("count = %d", s.Count())
	}
	if s.Mean() != 3 {
		t.Fatalf("mean = %v", s.Mean())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	if s.Quantile(0.5) != 3 {
		t.Fatalf("median = %v", s.Quantile(0.5))
	}
	if s.Quantile(0) != 1 || s.Quantile(1) != 5 {
		t.Fatal("extreme quantiles wrong")
	}
	if v := s.Variance(); math.Abs(v-2) > 1e-12 {
		t.Fatalf("variance = %v, want 2", v)
	}
	if sd := s.StdDev(); math.Abs(sd-math.Sqrt2) > 1e-12 {
		t.Fatalf("stddev = %v", sd)
	}
}

func TestSampleAddAfterQuantile(t *testing.T) {
	var s Sample
	s.Add(10)
	s.Add(20)
	_ = s.Quantile(0.5) // forces sort
	s.Add(5)            // must invalidate sorted flag
	if got := s.Quantile(0); got != 5 {
		t.Fatalf("min quantile after late add = %v, want 5", got)
	}
}

func TestNearestRank(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	// Nearest-rank: p99 of 1..100 is the 99th value.
	if got := s.P99(); got != 99 {
		t.Fatalf("p99 = %v, want 99", got)
	}
	if got := s.P50(); got != 50 {
		t.Fatalf("p50 = %v, want 50", got)
	}
	if got := s.Quantile(0.999); got != 100 {
		t.Fatalf("p99.9 = %v, want 100", got)
	}
}

func TestSampleReset(t *testing.T) {
	var s Sample
	s.Add(1)
	s.Add(2)
	s.Reset()
	if s.Count() != 0 || s.Mean() != 0 || s.Max() != 0 {
		t.Fatal("reset did not clear state")
	}
	s.Add(7)
	if s.Mean() != 7 || s.Min() != 7 {
		t.Fatal("sample unusable after reset")
	}
}

func TestSummary(t *testing.T) {
	var s Sample
	for i := 1; i <= 1000; i++ {
		s.Add(float64(i))
	}
	sum := s.Summarize()
	if sum.Count != 1000 || sum.P50 != 500 || sum.P99 != 990 || sum.P999 != 999 {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.String() == "" {
		t.Fatal("empty summary string")
	}
}

// Property: Quantile agrees with direct sorted-slice indexing for random data.
func TestPropertySampleQuantile(t *testing.T) {
	f := func(seed uint64, n16 uint16) bool {
		n := int(n16%2000) + 1
		r := rng.New(seed)
		var s Sample
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = r.Float64() * 1e6
			s.Add(vals[i])
		}
		sort.Float64s(vals)
		for _, p := range []float64{0.01, 0.25, 0.5, 0.9, 0.99} {
			rank := int(math.Ceil(p*float64(n))) - 1
			if rank < 0 {
				rank = 0
			}
			if s.Quantile(p) != vals[rank] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramPanicsOnBadDomain(t *testing.T) {
	for name, fn := range map[string]func(){
		"minZero":   func() { NewHistogram(0, 10, 0.01) },
		"maxBelow":  func() { NewHistogram(10, 5, 0.01) },
		"precision": func() { NewHistogram(1, 10, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(1, 1e9, 0.01)
	if h.Quantile(0.99) != 0 || h.Mean() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestHistogramExactMean(t *testing.T) {
	h := NewHistogram(1, 1e6, 0.01)
	for i := 1; i <= 1000; i++ {
		h.Add(float64(i))
	}
	if math.Abs(h.Mean()-500.5) > 1e-9 {
		t.Fatalf("mean = %v, want 500.5 (mean must be exact)", h.Mean())
	}
	if h.Min() != 1 || h.Max() != 1000 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramUnderOverflow(t *testing.T) {
	h := NewHistogram(10, 100, 0.01)
	h.Add(1)    // underflow
	h.Add(1000) // overflow
	h.Add(50)
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if q := h.Quantile(0.01); q != 1 {
		t.Fatalf("low quantile = %v, want underflow min 1", q)
	}
	if q := h.Quantile(1); q != 1000 {
		t.Fatalf("top quantile = %v, want observed max 1000", q)
	}
}

// Property: histogram quantiles agree with exact quantiles within the
// configured relative precision (plus bucket-midpoint slack).
func TestPropertyHistogramVsExact(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		h := NewHistogram(1, 1e7, 0.01)
		var s Sample
		for i := 0; i < 5000; i++ {
			// Log-uniform values spanning several decades.
			v := math.Exp(r.Float64() * math.Log(1e6))
			h.Add(v)
			s.Add(v)
		}
		for _, p := range []float64{0.5, 0.9, 0.99} {
			exact := s.Quantile(p)
			est := h.Quantile(p)
			if math.Abs(est-exact)/exact > 0.03 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram(1, 1e3, 0.01)
	h.Add(5)
	h.Add(2000)
	h.Reset()
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("reset did not clear histogram")
	}
	h.Add(10)
	if h.Quantile(0.5) < 9 || h.Quantile(0.5) > 11 {
		t.Fatalf("histogram unusable after reset: %v", h.Quantile(0.5))
	}
}

func TestHistogramP99Alias(t *testing.T) {
	h := NewHistogram(1, 1e3, 0.01)
	for i := 1; i <= 100; i++ {
		h.Add(float64(i))
	}
	if h.P99() != h.Quantile(0.99) {
		t.Fatal("P99 alias mismatch")
	}
}

func BenchmarkSampleAdd(b *testing.B) {
	var s Sample
	for i := 0; i < b.N; i++ {
		s.Add(float64(i))
	}
}

func BenchmarkHistogramAdd(b *testing.B) {
	h := NewHistogram(1, 1e9, 0.01)
	for i := 0; i < b.N; i++ {
		h.Add(float64(i%100000 + 1))
	}
}

func TestSampleValues(t *testing.T) {
	var s Sample
	s.Add(3)
	s.Add(1)
	vals := s.Values()
	if len(vals) != 2 {
		t.Fatalf("values = %v", vals)
	}
	_ = s.Quantile(0.5) // sorts in place
	vals = s.Values()
	if vals[0] != 1 || vals[1] != 3 {
		t.Fatalf("values after sort = %v", vals)
	}
}

func TestSampleValuesDefensiveCopy(t *testing.T) {
	var s Sample
	for _, v := range []float64{5, 2, 9} {
		s.Add(v)
	}
	vals := s.Values()
	vals[0], vals[1], vals[2] = -1, -1, -1 // scribble on the copy
	if got := s.Quantile(0.5); got != 5 {
		t.Fatalf("median after mutating Values() copy = %v, want 5", got)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max corrupted: %v/%v", s.Min(), s.Max())
	}
}

// TestSampleMerge cross-validates Merge against a single sample fed every
// observation directly: counts, moments, extrema, and quantiles must agree
// exactly.
func TestSampleMerge(t *testing.T) {
	r := rng.New(11)
	var whole, a, b, c Sample
	for i := 0; i < 3000; i++ {
		v := math.Exp(r.NormFloat64())
		whole.Add(v)
		switch i % 3 {
		case 0:
			a.Add(v)
		case 1:
			b.Add(v)
		default:
			c.Add(v)
		}
	}
	var merged Sample
	merged.Merge(&a)
	merged.Merge(&b)
	merged.Merge(&c)
	merged.Merge(&Sample{}) // empty merge is a no-op
	if merged.Count() != whole.Count() {
		t.Fatalf("count = %d, want %d", merged.Count(), whole.Count())
	}
	if merged.Min() != whole.Min() || merged.Max() != whole.Max() {
		t.Fatalf("extrema diverge: min %v/%v max %v/%v",
			merged.Min(), whole.Min(), merged.Max(), whole.Max())
	}
	// Summation order differs between the split and whole paths, so the
	// sums agree only to floating-point roundoff.
	if rel := math.Abs(merged.Sum()-whole.Sum()) / whole.Sum(); rel > 1e-12 {
		t.Fatalf("sum = %v, want %v (rel err %g)", merged.Sum(), whole.Sum(), rel)
	}
	for _, q := range []float64{0, 0.1, 0.5, 0.9, 0.99, 1} {
		if merged.Quantile(q) != whole.Quantile(q) {
			t.Fatalf("q%.2f = %v, want %v", q, merged.Quantile(q), whole.Quantile(q))
		}
	}
	// Merging into an empty sample adopts the source's extrema.
	var fresh Sample
	fresh.Merge(&a)
	if fresh.Min() != a.Min() || fresh.Max() != a.Max() || fresh.Count() != a.Count() {
		t.Fatal("merge into empty sample lost state")
	}
}

// TestHistogramMerge cross-validates Histogram.Merge against both a single
// histogram and an exact Sample over the same observations.
func TestHistogramMerge(t *testing.T) {
	const prec = 0.01
	r := rng.New(12)
	whole := NewHistogram(1, 1e7, prec)
	a := NewHistogram(1, 1e7, prec)
	b := NewHistogram(1, 1e7, prec)
	var exact Sample
	for i := 0; i < 5000; i++ {
		v := 100 * math.Exp(r.NormFloat64())
		whole.Add(v)
		exact.Add(v)
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	merged := NewHistogram(1, 1e7, prec)
	if err := merged.Merge(a); err != nil {
		t.Fatal(err)
	}
	if err := merged.Merge(b); err != nil {
		t.Fatal(err)
	}
	if merged.Count() != whole.Count() {
		t.Fatalf("count = %d, want %d", merged.Count(), whole.Count())
	}
	// Summation order differs between the split and whole paths, so the
	// means agree only to floating-point roundoff.
	if rel := math.Abs(merged.Mean()-whole.Mean()) / whole.Mean(); rel > 1e-12 {
		t.Fatalf("mean = %v, want %v (rel err %g)", merged.Mean(), whole.Mean(), rel)
	}
	if merged.Min() != whole.Min() || merged.Max() != whole.Max() {
		t.Fatalf("extrema = %v/%v, want %v/%v", merged.Min(), merged.Max(), whole.Min(), whole.Max())
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		if got, want := merged.Quantile(q), whole.Quantile(q); got != want {
			t.Fatalf("q%.2f = %v, want %v (merge must be exact on equal domains)", q, got, want)
		}
		// And both must stay within the configured relative error of the
		// exact order statistic.
		got, want := merged.Quantile(q), exact.Quantile(q)
		if rel := math.Abs(got-want) / want; rel > 2.5*prec {
			t.Fatalf("q%.2f = %v vs exact %v (rel err %.4f)", q, got, want, rel)
		}
	}
	// Mismatched domains must be rejected.
	if err := merged.Merge(NewHistogram(1, 1e6, prec)); err == nil {
		t.Fatal("merge across domains accepted")
	}
	if err := merged.Merge(NewHistogram(1, 1e7, 0.05)); err == nil {
		t.Fatal("merge across precisions accepted")
	}
}
