// Package dist provides the service-time and interarrival distributions used
// throughout the reproduction: the paper's four synthetic shapes (fixed,
// uniform, exponential, GEV — §5), the lognormal bodies behind the HERD-like
// and Masstree-like profiles, and the Shifted/Scaled/Normalized combinators
// the workload and queueing packages compose them with.
//
// Every distribution is a small value type implementing Sampler. Sampling is
// by inversion (or, for the lognormal, via the normal variate of the shared
// rng.Source), so a distribution driven by a deterministic Source yields a
// deterministic sequence — the property the whole simulator's
// reproducibility rests on. Distributions with a closed-form inverse CDF
// also implement Quantiler.
package dist

import (
	"fmt"
	"math"

	"rpcvalet/internal/rng"
)

// Sampler is a probability distribution the simulator can draw from.
type Sampler interface {
	// Sample draws one variate using r.
	Sample(r *rng.Source) float64
	// Mean returns the analytic expectation. Distributions without a
	// finite mean (e.g. GEV with shape ≥ 1) return +Inf; callers validate.
	Mean() float64
	// String describes the distribution for reports and error messages.
	String() string
}

// Quantiler is implemented by distributions with an (at least numerically)
// invertible CDF.
type Quantiler interface {
	Sampler
	// Quantile returns the p-quantile, p in (0, 1).
	Quantile(p float64) float64
}

// Fixed is the degenerate distribution: every sample equals Value.
type Fixed struct {
	Value float64
}

func (d Fixed) Sample(*rng.Source) float64 { return d.Value }
func (d Fixed) Mean() float64              { return d.Value }
func (d Fixed) Quantile(float64) float64   { return d.Value }
func (d Fixed) String() string             { return fmt.Sprintf("fixed(%g)", d.Value) }

// Uniform is the continuous uniform distribution on [Lo, Hi).
type Uniform struct {
	Lo, Hi float64
}

func (d Uniform) Sample(r *rng.Source) float64 { return d.Lo + (d.Hi-d.Lo)*r.Float64() }
func (d Uniform) Mean() float64                { return (d.Lo + d.Hi) / 2 }
func (d Uniform) Quantile(p float64) float64   { return d.Lo + (d.Hi-d.Lo)*p }
func (d Uniform) String() string               { return fmt.Sprintf("uniform[%g,%g)", d.Lo, d.Hi) }

// Exponential is the exponential distribution with mean MeanValue.
type Exponential struct {
	MeanValue float64
}

func (d Exponential) Sample(r *rng.Source) float64 { return d.MeanValue * r.ExpFloat64() }
func (d Exponential) Mean() float64                { return d.MeanValue }
func (d Exponential) Quantile(p float64) float64   { return -d.MeanValue * math.Log1p(-p) }
func (d Exponential) String() string               { return fmt.Sprintf("exp(mean=%g)", d.MeanValue) }

// GEV is the generalized extreme value distribution with location Loc, scale
// Scale, and shape Shape (ξ). The paper's heavy-tailed synthetic service
// time is GEV(363, 100, 0.65) in cycles (§5). For Shape ≥ 1 the mean is
// infinite; for Shape ≥ 1/2 the variance is infinite (the property the
// Fig 2 variance-ordering experiments exploit).
type GEV struct {
	Loc, Scale, Shape float64
}

// Sample draws by inversion from a uniform variate in (0, 1).
func (d GEV) Sample(r *rng.Source) float64 { return d.Quantile(r.OpenFloat64()) }

func (d GEV) Mean() float64 {
	switch {
	case d.Shape >= 1:
		return math.Inf(1)
	case d.Shape == 0:
		// Gumbel limit: Loc + Scale·γ (Euler–Mascheroni).
		const eulerGamma = 0.5772156649015329
		return d.Loc + d.Scale*eulerGamma
	default:
		return d.Loc + d.Scale*(math.Gamma(1-d.Shape)-1)/d.Shape
	}
}

func (d GEV) Quantile(p float64) float64 {
	if d.Shape == 0 {
		return d.Loc - d.Scale*math.Log(-math.Log(p))
	}
	return d.Loc + d.Scale*(math.Pow(-math.Log(p), -d.Shape)-1)/d.Shape
}

func (d GEV) String() string {
	return fmt.Sprintf("gev(loc=%g,scale=%g,shape=%g)", d.Loc, d.Scale, d.Shape)
}

// Lognormal is the log-normal distribution: exp(N(Mu, Sigma²)).
type Lognormal struct {
	Mu, Sigma float64
}

func (d Lognormal) Sample(r *rng.Source) float64 {
	return math.Exp(d.Mu + d.Sigma*r.NormFloat64())
}

func (d Lognormal) Mean() float64 { return math.Exp(d.Mu + d.Sigma*d.Sigma/2) }

func (d Lognormal) Quantile(p float64) float64 {
	return math.Exp(d.Mu + d.Sigma*probit(p))
}

func (d Lognormal) String() string {
	return fmt.Sprintf("lognormal(mu=%g,sigma=%g)", d.Mu, d.Sigma)
}

// Shifted adds a constant Base to every sample of Inner — the "300 ns fixed
// plus distributed extra" construction of the synthetic profiles.
type Shifted struct {
	Base  float64
	Inner Sampler
}

func (d Shifted) Sample(r *rng.Source) float64 { return d.Base + d.Inner.Sample(r) }
func (d Shifted) Mean() float64                { return d.Base + d.Inner.Mean() }

// Quantile requires Inner to be a Quantiler; shifting by a constant
// translates every quantile.
func (d Shifted) Quantile(p float64) float64 {
	return d.Base + d.Inner.(Quantiler).Quantile(p)
}

func (d Shifted) String() string { return fmt.Sprintf("%g+%s", d.Base, d.Inner) }

// Scaled multiplies every sample of Inner by Factor.
type Scaled struct {
	Factor float64
	Inner  Sampler
}

func (d Scaled) Sample(r *rng.Source) float64 { return d.Factor * d.Inner.Sample(r) }
func (d Scaled) Mean() float64                { return d.Factor * d.Inner.Mean() }

// Quantile requires Inner to be a Quantiler. Factor must be non-negative
// for the quantile mapping to be order-preserving; the simulator only ever
// scales by positive normalization factors.
func (d Scaled) Quantile(p float64) float64 {
	return d.Factor * d.Inner.(Quantiler).Quantile(p)
}

func (d Scaled) String() string { return fmt.Sprintf("%g*%s", d.Factor, d.Inner) }

// Normalized rescales d to mean 1, the form the §2.2 queueing experiments
// use so tails are reported in multiples of S̄. It panics when d has no
// usable finite mean, since the resulting distribution would be meaningless.
func Normalized(d Sampler) Sampler {
	m := d.Mean()
	if !(m > 0) || math.IsInf(m, 1) {
		panic(fmt.Sprintf("dist: cannot normalize %s with mean %g", d, m))
	}
	return Scaled{Factor: 1 / m, Inner: d}
}

// probit is the inverse standard normal CDF, using Acklam's rational
// approximation (relative error below 1.15e-9 across (0,1)).
func probit(p float64) float64 {
	if !(p > 0 && p < 1) {
		if p == 0 {
			return math.Inf(-1)
		}
		if p == 1 {
			return math.Inf(1)
		}
		return math.NaN()
	}
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	e := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const pLow, pHigh = 0.02425, 1 - 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((e[0]*q+e[1])*q+e[2])*q+e[3])*q + 1)
	case p > pHigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((e[0]*q+e[1])*q+e[2])*q+e[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}
