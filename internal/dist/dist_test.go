package dist

import (
	"math"
	"testing"

	"rpcvalet/internal/rng"
)

// moments draws n samples and returns the empirical mean and variance.
func moments(d Sampler, n int, seed uint64) (mean, variance float64) {
	r := rng.New(seed)
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := d.Sample(r)
		sum += v
		sumSq += v * v
	}
	mean = sum / float64(n)
	variance = sumSq/float64(n) - mean*mean
	return mean, variance
}

// TestSampleMomentsMatchClosedForm checks each distribution's empirical mean
// and variance against the analytic values.
func TestSampleMomentsMatchClosedForm(t *testing.T) {
	const n = 400000
	gev := GEV{Loc: 363, Scale: 100, Shape: 0.3} // shape < 1/2 so variance exists
	g1 := math.Gamma(1 - gev.Shape)
	g2 := math.Gamma(1 - 2*gev.Shape)
	gevVar := gev.Scale * gev.Scale * (g2 - g1*g1) / (gev.Shape * gev.Shape)
	ln := Lognormal{Mu: 5, Sigma: 0.5}
	lnVar := (math.Exp(ln.Sigma*ln.Sigma) - 1) * math.Exp(2*ln.Mu+ln.Sigma*ln.Sigma)

	cases := []struct {
		d       Sampler
		wantVar float64
		tolMean float64 // relative
		tolVar  float64 // relative
	}{
		{Fixed{Value: 42}, 0, 0, 0},
		{Uniform{Lo: 0, Hi: 600}, 600 * 600 / 12.0, 0.01, 0.02},
		{Exponential{MeanValue: 300}, 300 * 300, 0.01, 0.03},
		{gev, gevVar, 0.01, 0.1}, // heavy right tail converges slowly
		{ln, lnVar, 0.01, 0.05},
	}
	for _, c := range cases {
		mean, variance := moments(c.d, n, 7)
		wantMean := c.d.Mean()
		if c.tolMean == 0 {
			if mean != wantMean || variance != 0 {
				t.Errorf("%s: moments (%g, %g), want (%g, 0)", c.d, mean, variance, wantMean)
			}
			continue
		}
		if math.Abs(mean-wantMean)/wantMean > c.tolMean {
			t.Errorf("%s: sampled mean %g, analytic %g", c.d, mean, wantMean)
		}
		if math.Abs(variance-c.wantVar)/c.wantVar > c.tolVar {
			t.Errorf("%s: sampled variance %g, analytic %g", c.d, variance, c.wantVar)
		}
	}
}

func TestGEVInfiniteMean(t *testing.T) {
	for _, shape := range []float64{1, 1.5, 2} {
		if m := (GEV{Loc: 0, Scale: 1, Shape: shape}).Mean(); !math.IsInf(m, 1) {
			t.Errorf("GEV shape %v: mean %v, want +Inf", shape, m)
		}
	}
	// Gumbel limit: Loc + Scale·γ.
	g := GEV{Loc: 10, Scale: 2, Shape: 0}
	if want := 10 + 2*0.5772156649015329; math.Abs(g.Mean()-want) > 1e-12 {
		t.Errorf("Gumbel mean %v, want %v", g.Mean(), want)
	}
}

func TestDeterminismUnderFixedSeed(t *testing.T) {
	dists := []Sampler{
		Fixed{Value: 1},
		Uniform{Lo: 0, Hi: 2},
		Exponential{MeanValue: 1},
		GEV{Loc: 363, Scale: 100, Shape: 0.65},
		Lognormal{Mu: 1, Sigma: 0.5},
		Shifted{Base: 3, Inner: Exponential{MeanValue: 1}},
		Scaled{Factor: 2, Inner: Uniform{Lo: 0, Hi: 1}},
		Normalized(GEV{Loc: 363, Scale: 100, Shape: 0.65}),
	}
	for _, d := range dists {
		a, b := rng.New(99), rng.New(99)
		for i := 0; i < 1000; i++ {
			if x, y := d.Sample(a), d.Sample(b); x != y {
				t.Fatalf("%s: sample %d diverged under identical seeds: %v != %v", d, i, x, y)
			}
		}
	}
}

// TestCombinatorMeanAlgebra: Shifted and Scaled transform Mean() exactly as
// the algebra says, and Normalized always lands on mean 1.
func TestCombinatorMeanAlgebra(t *testing.T) {
	inner := Exponential{MeanValue: 300}
	if got, want := (Shifted{Base: 100, Inner: inner}).Mean(), 400.0; got != want {
		t.Errorf("Shifted mean %v, want %v", got, want)
	}
	if got, want := (Scaled{Factor: 2.5, Inner: inner}).Mean(), 750.0; got != want {
		t.Errorf("Scaled mean %v, want %v", got, want)
	}
	nested := Shifted{Base: 50, Inner: Scaled{Factor: 0.5, Inner: inner}}
	if got, want := nested.Mean(), 200.0; got != want {
		t.Errorf("nested mean %v, want %v", got, want)
	}
	for _, d := range []Sampler{
		Uniform{Lo: 0, Hi: 2},
		Exponential{MeanValue: 17},
		GEV{Loc: 363, Scale: 100, Shape: 0.65},
		nested,
	} {
		if m := Normalized(d).Mean(); math.Abs(m-1) > 1e-12 {
			t.Errorf("Normalized(%s).Mean() = %v, want 1", d, m)
		}
	}
}

func TestNormalizedPanicsOnUnusableMean(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for infinite-mean distribution")
		}
	}()
	Normalized(GEV{Loc: 0, Scale: 1, Shape: 1.5})
}

// TestQuantileInvertsCDF: for the invertible distributions, sampling via
// Quantile(U) and checking a few fixed points against independent formulas.
func TestQuantileInvertsCDF(t *testing.T) {
	exp := Exponential{MeanValue: 2}
	if got, want := exp.Quantile(0.5), 2*math.Ln2; math.Abs(got-want) > 1e-12 {
		t.Errorf("exp median %v, want %v", got, want)
	}
	u := Uniform{Lo: 10, Hi: 20}
	if got := u.Quantile(0.25); got != 12.5 {
		t.Errorf("uniform q25 = %v, want 12.5", got)
	}
	// Lognormal median is exp(Mu).
	ln := Lognormal{Mu: 3, Sigma: 0.7}
	if got, want := ln.Quantile(0.5), math.Exp(3.0); math.Abs(got-want)/want > 1e-6 {
		t.Errorf("lognormal median %v, want %v", got, want)
	}
	// GEV quantile round-trips through its CDF
	// F(x) = exp(-(1+ξ(x-µ)/σ)^(-1/ξ)).
	g := GEV{Loc: 363, Scale: 100, Shape: 0.65}
	for _, p := range []float64{0.1, 0.5, 0.9, 0.99} {
		x := g.Quantile(p)
		cdf := math.Exp(-math.Pow(1+g.Shape*(x-g.Loc)/g.Scale, -1/g.Shape))
		if math.Abs(cdf-p) > 1e-9 {
			t.Errorf("GEV CDF(Q(%v)) = %v", p, cdf)
		}
	}
	// Shifted/Scaled translate and scale quantiles.
	sh := Shifted{Base: 5, Inner: Scaled{Factor: 3, Inner: exp}}
	if got, want := sh.Quantile(0.5), 5+3*2*math.Ln2; math.Abs(got-want) > 1e-12 {
		t.Errorf("combined quantile %v, want %v", got, want)
	}
}

// TestProbitAccuracy spot-checks the inverse normal CDF against reference
// values (Wichura's published test points).
func TestProbitAccuracy(t *testing.T) {
	cases := map[float64]float64{
		0.5:   0,
		0.975: 1.959963984540054,
		0.025: -1.959963984540054,
		0.999: 3.090232306167814,
		0.001: -3.090232306167814,
	}
	for p, want := range cases {
		if got := probit(p); math.Abs(got-want) > 1e-8 {
			t.Errorf("probit(%v) = %v, want %v", p, got, want)
		}
	}
}
