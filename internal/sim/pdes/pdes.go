// Package pdes coordinates a conservative parallel discrete-event
// simulation: several sim.Engine instances ("shards"), each owned by one
// goroutine, advancing in lockstep rounds of a fixed lookahead window.
//
// The protocol is the classic conservative time-window scheme. Every
// cross-shard interaction must take at least `window` of virtual time to
// propagate (the lookahead — in the cluster simulation, the balancer↔node
// network hop). Under that invariant a message generated during round k
// (virtual time in (kW−W, kW]) cannot arrive before round k+1's window
// opens, so every shard can execute round k concurrently with all the
// others, knowing its inputs for the round are already in its event queue.
// Between rounds the coordinator runs a single-threaded exchange that moves
// the round's cross-shard messages into the destination engines in a
// deterministic, partition-independent order (Gather's (At, Seq) merge
// rule), which is what makes a sharded run reproduce bit-for-bit at any
// shard count.
//
// Epoch rounds were chosen over a barrier-free atomic-horizon protocol
// after profiling: a 100-node cluster run spans only ~32 hop-wide rounds
// with ~10 ms of simulation work per round, so round-granularity
// synchronization costs well under 0.1% of the run — the simpler protocol
// wins. The dependency graph is also bipartite (balancer ↔ node shards),
// so per-pair horizon tracking would degenerate into the same global
// cadence anyway.
package pdes

import (
	"fmt"
	"sort"

	"rpcvalet/internal/sim"
)

// RoundFunc advances one shard through the round ending at deadline,
// typically via its engine's RunUntil(deadline). It runs on the shard's own
// goroutine and must touch only shard-local state plus mailboxes owned by
// this shard.
type RoundFunc func(deadline sim.Time)

// ExchangeFunc runs between rounds with every shard parked at the round
// deadline. It executes single-threaded on the coordinating goroutine — the
// only place cross-shard state may be moved — and returns false to end the
// simulation after this round.
type ExchangeFunc func(deadline sim.Time) bool

// Run drives the shards in bulk-synchronous rounds of the given window: all
// shards execute round k concurrently, then exchange runs alone, then round
// k+1 begins. It returns when exchange returns false. The window must be
// positive — it is the conservative lookahead bound, and a simulation whose
// cross-shard latency can be zero cannot be sharded this way.
//
// A panic inside any shard is re-raised on the calling goroutine once the
// round's other shards have parked, so a simulation bug fails the run
// instead of deadlocking it.
func Run(window sim.Duration, shards []RoundFunc, exchange ExchangeFunc) {
	if window <= 0 {
		panic(fmt.Sprintf("pdes: non-positive lookahead window %v", window))
	}
	if len(shards) == 0 {
		return
	}
	work := make([]chan sim.Time, len(shards))
	done := make(chan any, len(shards)) // recovered panic value, nil = clean
	for i := range shards {
		work[i] = make(chan sim.Time)
		go func(run RoundFunc, work <-chan sim.Time) {
			for deadline := range work {
				done <- runRound(run, deadline)
			}
		}(shards[i], work[i])
	}
	defer func() {
		for _, w := range work {
			close(w)
		}
	}()
	for k := int64(1); ; k++ {
		deadline := sim.Time(k * int64(window))
		for _, w := range work {
			w <- deadline
		}
		var panicked any
		for range shards {
			if p := <-done; p != nil {
				panicked = p
			}
		}
		if panicked != nil {
			panic(fmt.Sprintf("pdes: shard panicked during round ending %v: %v", deadline, panicked))
		}
		if !exchange(deadline) {
			return
		}
	}
}

// runRound executes one shard round, converting a panic into a value so the
// coordinator can drain the remaining shards before re-raising.
func runRound(run RoundFunc, deadline sim.Time) (panicked any) {
	defer func() { panicked = recover() }()
	run(deadline)
	return nil
}

// Msg is one timestamped cross-shard message.
type Msg[T any] struct {
	// At is the virtual time the message takes effect at the destination
	// shard. The sending shard must guarantee At > the current round's
	// deadline (the lookahead invariant).
	At sim.Time
	// Seq is a simulation-global sequence number breaking ties among
	// messages with equal At. It must be partition-independent (e.g. a
	// request's cluster-wide sequence number), never a per-shard counter —
	// it is the deterministic cross-shard merge rule.
	Seq     uint64
	Payload T
}

// Mailbox accumulates messages from exactly one sending shard during a
// round. It is not synchronized: one goroutine appends during the round,
// and the coordinator drains it in the exchange — the round barrier is the
// synchronization.
type Mailbox[T any] struct {
	msgs []Msg[T]
}

// Send appends one message.
func (b *Mailbox[T]) Send(at sim.Time, seq uint64, payload T) {
	b.msgs = append(b.msgs, Msg[T]{At: at, Seq: seq, Payload: payload})
}

// Len reports the number of buffered messages.
func (b *Mailbox[T]) Len() int { return len(b.msgs) }

// Gather drains every mailbox into dst (reused; pass the previous round's
// slice to avoid allocation) and returns the union sorted by (At, Seq) —
// the deterministic merge order cross-shard delivery must use. Message
// order within one mailbox is already nondecreasing in At (engines execute
// in time order), but the merged order across senders is what keeps the
// destination's event sequence independent of how the simulation was
// partitioned.
func Gather[T any](dst []Msg[T], boxes ...*Mailbox[T]) []Msg[T] {
	dst = dst[:0]
	for _, b := range boxes {
		dst = append(dst, b.msgs...)
		b.msgs = b.msgs[:0]
	}
	sort.Slice(dst, func(i, j int) bool {
		if dst[i].At != dst[j].At {
			return dst[i].At < dst[j].At
		}
		return dst[i].Seq < dst[j].Seq
	})
	return dst
}
