package pdes

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"rpcvalet/internal/sim"
)

// TestGatherMergeOrder: the union of several mailboxes comes out sorted by
// (At, Seq) regardless of which sender buffered what, and the boxes drain.
func TestGatherMergeOrder(t *testing.T) {
	var a, b, c Mailbox[string]
	a.Send(30, 5, "a30/5")
	a.Send(30, 9, "a30/9")
	b.Send(10, 7, "b10/7")
	b.Send(30, 2, "b30/2")
	c.Send(20, 1, "c20/1")

	got := Gather(nil, &a, &b, &c)
	want := []string{"b10/7", "c20/1", "b30/2", "a30/5", "a30/9"}
	var names []string
	for _, m := range got {
		names = append(names, m.Payload)
	}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("merge order %v, want %v", names, want)
	}
	if a.Len()+b.Len()+c.Len() != 0 {
		t.Fatal("Gather left messages behind")
	}
	// Reuse: the returned slice is the scratch buffer for the next round.
	a.Send(1, 1, "x")
	if again := Gather(got, &a); len(again) != 1 || again[0].Payload != "x" {
		t.Fatalf("reused gather = %v", again)
	}
}

// TestRunPingPong drives two shards that volley a counter through mailboxes
// with one-window lookahead and checks the exchange sees the deadlines in
// order, every delivery lands strictly inside the next round, and the full
// event sequence is identical run to run.
func TestRunPingPong(t *testing.T) {
	const window = sim.Duration(100)
	run := func() []string {
		var log []string
		engines := [2]*sim.Engine{sim.New(), sim.New()}
		var boxes [2]Mailbox[int] // boxes[i]: messages sent by shard i
		var bounce [2]func(v int)
		for i := range bounce {
			i := i
			bounce[i] = func(v int) {
				log = append(log, fmt.Sprintf("shard%d v%d @%d", i, v, engines[i].Now()))
				// Send onward with exactly one window of lookahead.
				boxes[i].Send(engines[i].Now().Add(window), uint64(v+1), v+1)
			}
		}
		// Seed: shard 0 handles v=0 at t=30.
		engines[0].ScheduleAt(30, func() { bounce[0](0) })
		rounds := 0
		pdesRun := func() {
			Run(window,
				[]RoundFunc{
					func(d sim.Time) { engines[0].RunUntil(d) },
					func(d sim.Time) { engines[1].RunUntil(d) },
				},
				func(d sim.Time) bool {
					rounds++
					if engines[0].Now() != d || engines[1].Now() != d {
						t.Errorf("round %d: clocks %v/%v not parked at %v", rounds, engines[0].Now(), engines[1].Now(), d)
					}
					for _, m := range Gather(nil, &boxes[0], &boxes[1]) {
						if m.At <= d {
							t.Errorf("delivery at %v violates lookahead past %v", m.At, d)
						}
						dst := m.Payload % 2 // odd values handled by shard 1
						v := m.Payload
						engines[dst].ScheduleAt(m.At, func() { bounce[dst](v) })
					}
					return rounds < 6
				})
		}
		pdesRun()
		return log
	}
	first := run()
	if len(first) != 6 {
		t.Fatalf("logged %d volleys over 6 rounds, want 6: %v", len(first), first)
	}
	want := []string{
		"shard0 v0 @30", "shard1 v1 @130", "shard0 v2 @230",
		"shard1 v3 @330", "shard0 v4 @430", "shard1 v5 @530",
	}
	if !reflect.DeepEqual(first, want) {
		t.Fatalf("volley log %v, want %v", first, want)
	}
	for i := 0; i < 3; i++ {
		if again := run(); !reflect.DeepEqual(again, first) {
			t.Fatalf("run %d diverged:\n%v\n%v", i, again, first)
		}
	}
}

// TestRunShardPanicPropagates: a panic on a shard goroutine resurfaces on
// the coordinator with the shard's message, instead of deadlocking the
// barrier.
func TestRunShardPanicPropagates(t *testing.T) {
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("shard panic did not propagate")
		}
		if s := fmt.Sprint(p); !strings.Contains(s, "boom") {
			t.Fatalf("propagated panic %q lost the cause", s)
		}
	}()
	healthy := 0
	Run(10,
		[]RoundFunc{
			func(sim.Time) { healthy++ },
			func(d sim.Time) {
				if d >= 30 {
					panic("boom")
				}
			},
		},
		func(sim.Time) bool { return true })
}

// TestRunRejectsZeroWindow: a non-positive lookahead has no safe rounds.
func TestRunRejectsZeroWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero window accepted")
		}
	}()
	Run(0, []RoundFunc{func(sim.Time) {}}, func(sim.Time) bool { return false })
}
