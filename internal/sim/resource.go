package sim

// Server models a single serially-reusable resource with FIFO service: an NI
// backend's packet pipeline, a hardware dispatch stage, a lock's critical
// section. Work items submitted while the server is busy queue up in
// submission order, which is exactly the behaviour of a pipelined hardware
// unit fed by a FIFO.
//
// The implementation keeps only a "busy until" horizon: a job submitted at
// time t with service s begins at max(t, busyUntil) and completes at
// begin+s. This is equivalent to simulating the queue explicitly (for a
// work-conserving FIFO server) while costing O(1) per job.
type Server struct {
	eng       *Engine
	busyUntil Time
	jobs      uint64
	busy      Duration // cumulative busy time, for utilization reporting
}

// NewServer returns a Server that schedules completions on eng.
func NewServer(eng *Engine) *Server { return &Server{eng: eng} }

// Submit enqueues a job with the given service duration. done, if non-nil,
// runs at the job's completion time. Submit returns the completion time.
func (s *Server) Submit(service Duration, done func()) Time {
	end := s.occupy(service)
	if done != nil {
		s.eng.ScheduleAt(end, done)
	}
	return end
}

// SubmitArg is Submit with the allocation-free callback form: done(arg) runs
// at completion. done should be a long-lived function value (see
// Engine.ScheduleArg); arg carries the per-job state.
func (s *Server) SubmitArg(service Duration, done func(any), arg any) Time {
	end := s.occupy(service)
	s.eng.ScheduleArgAt(end, done, arg)
	return end
}

// occupy advances the server's busy horizon by one job of the given service
// time and returns the job's completion time.
func (s *Server) occupy(service Duration) Time {
	if service < 0 {
		service = 0
	}
	start := s.eng.Now()
	if s.busyUntil > start {
		start = s.busyUntil
	}
	end := start.Add(service)
	s.busyUntil = end
	s.jobs++
	s.busy += service
	return end
}

// Delay reports how long a job submitted now would wait before starting.
func (s *Server) Delay() Duration {
	if s.busyUntil <= s.eng.Now() {
		return 0
	}
	return s.busyUntil.Sub(s.eng.Now())
}

// Jobs reports the number of jobs submitted so far.
func (s *Server) Jobs() uint64 { return s.jobs }

// BusyTime reports the cumulative service time of all submitted jobs.
func (s *Server) BusyTime() Duration { return s.busy }

// Utilization reports the fraction of virtual time the server has been busy,
// measured against the engine's current clock. It returns 0 before any time
// has elapsed.
func (s *Server) Utilization() float64 {
	if s.eng.Now() == 0 {
		return 0
	}
	busy := s.busy
	// Work submitted but not yet completed counts only up to "now".
	if s.busyUntil > s.eng.Now() {
		busy -= s.busyUntil.Sub(s.eng.Now())
	}
	return float64(busy) / float64(s.eng.Now())
}
