package sim

import (
	"sort"
	"testing"
	"testing/quick"

	"rpcvalet/internal/rng"
)

func TestUnits(t *testing.T) {
	if Nanosecond != 1000*Picosecond {
		t.Fatal("nanosecond constant wrong")
	}
	if Microsecond != 1000*Nanosecond || Millisecond != 1000*Microsecond || Second != 1000*Millisecond {
		t.Fatal("unit ladder wrong")
	}
	if got := FromNanos(1.5); got != 1500*Picosecond {
		t.Fatalf("FromNanos(1.5) = %d, want 1500", got)
	}
	if got := FromNanos(-3); got != 0 {
		t.Fatalf("FromNanos(-3) = %d, want 0", got)
	}
	if got := FromMicros(2); got != 2*Microsecond {
		t.Fatalf("FromMicros(2) = %d", got)
	}
	if d := (1500 * Picosecond).Nanos(); d != 1.5 {
		t.Fatalf("Nanos() = %v", d)
	}
	if d := (2500 * Nanosecond).Micros(); d != 2.5 {
		t.Fatalf("Micros() = %v", d)
	}
	if s := (2 * Second).Seconds(); s != 2 {
		t.Fatalf("Seconds() = %v", s)
	}
}

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(0).Add(5 * Nanosecond)
	if t0 != Time(5000) {
		t.Fatalf("Add: %d", t0)
	}
	if d := t0.Sub(Time(1000)); d != 4*Nanosecond {
		t.Fatalf("Sub: %d", d)
	}
	if t0.Nanos() != 5 {
		t.Fatalf("Nanos: %v", t0.Nanos())
	}
	if Time(Second).Seconds() != 1 {
		t.Fatal("Seconds")
	}
	if Time(1500).String() != "1.500ns" {
		t.Fatalf("String: %q", Time(1500).String())
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	e := New()
	var fired []Time
	delays := []Duration{50, 10, 30, 10, 0, 99, 42}
	for _, d := range delays {
		d := d
		e.Schedule(d, func() { fired = append(fired, e.Now()) })
	}
	e.Run()
	if len(fired) != len(delays) {
		t.Fatalf("fired %d events, want %d", len(fired), len(delays))
	}
	for i := 1; i < len(fired); i++ {
		if fired[i] < fired[i-1] {
			t.Fatalf("events fired out of order: %v", fired)
		}
	}
}

func TestFIFOTieBreak(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5*Nanosecond, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := New()
	var trace []string
	e.Schedule(10, func() {
		trace = append(trace, "a")
		e.Schedule(5, func() { trace = append(trace, "c") })
		e.Schedule(0, func() { trace = append(trace, "b") })
	})
	e.Run()
	want := []string{"a", "b", "c"}
	for i := range want {
		if i >= len(trace) || trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestZeroDelayFiresAtCurrentTime(t *testing.T) {
	e := New()
	var at Time
	e.Schedule(7*Nanosecond, func() {
		e.Schedule(0, func() { at = e.Now() })
	})
	e.Run()
	if at != Time(7*Nanosecond) {
		t.Fatalf("zero-delay event fired at %v", at)
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	e := New()
	fired := false
	e.Schedule(-5, func() { fired = true })
	e.Run()
	if !fired {
		t.Fatal("event with negative delay never fired")
	}
	if e.Now() != 0 {
		t.Fatalf("clock advanced to %v", e.Now())
	}
}

func TestScheduleAtPastPanics(t *testing.T) {
	e := New()
	e.Schedule(10, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("ScheduleAt in the past did not panic")
		}
	}()
	e.ScheduleAt(5, func() {})
}

func TestCancel(t *testing.T) {
	e := New()
	fired := false
	ev := e.Schedule(10, func() { fired = true })
	if !e.Cancel(ev) {
		t.Fatal("Cancel returned false for a pending event")
	}
	if e.Cancel(ev) {
		t.Fatal("double Cancel returned true")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if e.Cancel(nil) {
		t.Fatal("Cancel(nil) returned true")
	}
}

func TestCancelAfterFire(t *testing.T) {
	e := New()
	ev := e.Schedule(1, func() {})
	e.Run()
	if e.Cancel(ev) {
		t.Fatal("Cancel after fire returned true")
	}
}

func TestCancelMiddleOfHeap(t *testing.T) {
	e := New()
	var fired []int
	var evs []*Event
	for i := 0; i < 20; i++ {
		i := i
		evs = append(evs, e.Schedule(Duration(i)*Nanosecond, func() { fired = append(fired, i) }))
	}
	// Cancel every third event.
	for i := 0; i < 20; i += 3 {
		e.Cancel(evs[i])
	}
	e.Run()
	for _, v := range fired {
		if v%3 == 0 {
			t.Fatalf("cancelled event %d fired", v)
		}
	}
	if len(fired) != 20-7 {
		t.Fatalf("fired %d events, want 13", len(fired))
	}
}

func TestStop(t *testing.T) {
	e := New()
	count := 0
	for i := 0; i < 10; i++ {
		e.Schedule(Duration(i), func() {
			count++
			if count == 5 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 5 {
		t.Fatalf("ran %d events after Stop, want 5", count)
	}
	if e.Pending() != 5 {
		t.Fatalf("pending = %d, want 5", e.Pending())
	}
	e.Run() // resumes
	if count != 10 {
		t.Fatalf("resume ran to %d, want 10", count)
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	var fired []Time
	for _, d := range []Duration{5, 10, 15, 20} {
		e.Schedule(d, func() { fired = append(fired, e.Now()) })
	}
	e.RunUntil(10)
	if len(fired) != 2 {
		t.Fatalf("RunUntil(10) fired %d events, want 2 (inclusive deadline)", len(fired))
	}
	if e.Now() != 10 {
		t.Fatalf("clock = %v, want 10", e.Now())
	}
	e.RunUntil(100)
	if len(fired) != 4 {
		t.Fatalf("total fired = %d, want 4", len(fired))
	}
	if e.Now() != 100 {
		t.Fatalf("clock advanced to %v, want 100", e.Now())
	}
}

func TestRunFor(t *testing.T) {
	e := New()
	e.Schedule(5, func() {})
	e.RunFor(3)
	if e.Now() != 3 {
		t.Fatalf("clock = %v, want 3", e.Now())
	}
	e.RunFor(3)
	if e.Now() != 6 {
		t.Fatalf("clock = %v, want 6", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatal("event at t=5 did not fire")
	}
}

func TestFiredCounter(t *testing.T) {
	e := New()
	for i := 0; i < 7; i++ {
		e.Schedule(Duration(i), func() {})
	}
	e.Run()
	if e.Fired() != 7 {
		t.Fatalf("Fired = %d, want 7", e.Fired())
	}
}

// Property: regardless of the (possibly duplicated) set of delays scheduled,
// execution visits them in sorted order and executes them all.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(seed uint64, n8 uint8) bool {
		n := int(n8%200) + 1
		r := rng.New(seed)
		e := New()
		delays := make([]Duration, n)
		var fired []Time
		for i := range delays {
			delays[i] = Duration(r.IntN(1000))
			e.Schedule(delays[i], func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		if len(fired) != n {
			return false
		}
		sorted := append([]Duration(nil), delays...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for i, ft := range fired {
			if ft != Time(sorted[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestServerFIFO(t *testing.T) {
	e := New()
	s := NewServer(e)
	var done []int
	var ends []Time
	for i := 0; i < 5; i++ {
		i := i
		end := s.Submit(10*Nanosecond, func() {
			done = append(done, i)
			ends = append(ends, e.Now())
		})
		if want := Time(Duration(i+1) * 10 * Nanosecond); end != want {
			t.Fatalf("job %d completion = %v, want %v", i, end, want)
		}
	}
	e.Run()
	for i, v := range done {
		if v != i {
			t.Fatalf("completions out of order: %v", done)
		}
	}
	for i, at := range ends {
		if want := Time(Duration(i+1) * 10 * Nanosecond); at != want {
			t.Fatalf("job %d completed at %v, want %v", i, at, want)
		}
	}
}

func TestServerIdleGap(t *testing.T) {
	e := New()
	s := NewServer(e)
	s.Submit(5*Nanosecond, nil)
	e.Run()
	// The server went idle at t=5ns; a job submitted at t=5ns starts now.
	end := s.Submit(3*Nanosecond, nil)
	if end != Time(8*Nanosecond) {
		t.Fatalf("end = %v, want 8ns", end)
	}
}

func TestServerDelay(t *testing.T) {
	e := New()
	s := NewServer(e)
	if s.Delay() != 0 {
		t.Fatal("idle server reports nonzero delay")
	}
	s.Submit(10*Nanosecond, nil)
	if s.Delay() != 10*Nanosecond {
		t.Fatalf("delay = %v, want 10ns", s.Delay())
	}
	s.Submit(5*Nanosecond, nil)
	if s.Delay() != 15*Nanosecond {
		t.Fatalf("delay = %v, want 15ns", s.Delay())
	}
}

func TestServerNegativeServiceClamped(t *testing.T) {
	e := New()
	s := NewServer(e)
	end := s.Submit(-4, nil)
	if end != 0 {
		t.Fatalf("end = %v, want 0", end)
	}
}

func TestServerUtilization(t *testing.T) {
	e := New()
	s := NewServer(e)
	if s.Utilization() != 0 {
		t.Fatal("utilization before time advances should be 0")
	}
	s.Submit(10*Nanosecond, nil)
	e.RunUntil(Time(20 * Nanosecond)) // busy 10ns, then idle 10ns
	u := s.Utilization()
	if u < 0.49 || u > 0.51 {
		t.Fatalf("utilization = %v, want ~0.5", u)
	}
	if s.Jobs() != 1 {
		t.Fatalf("jobs = %d", s.Jobs())
	}
	if s.BusyTime() != 10*Nanosecond {
		t.Fatalf("busy = %v", s.BusyTime())
	}
}

// Property: a FIFO server conserves work — total completion time of the last
// job equals max over arrival ordering of the standard Lindley recursion.
func TestPropertyServerLindley(t *testing.T) {
	f := func(seed uint64, n8 uint8) bool {
		n := int(n8%50) + 1
		r := rng.New(seed)
		e := New()
		s := NewServer(e)
		// Jobs arrive at random times with random service; drive arrivals
		// via scheduled events so Submit sees the right "now".
		type job struct{ arrive, service Duration }
		jobs := make([]job, n)
		for i := range jobs {
			jobs[i] = job{Duration(r.IntN(500)), Duration(r.IntN(100))}
		}
		sort.Slice(jobs, func(i, j int) bool { return jobs[i].arrive < jobs[j].arrive })
		ends := make([]Time, n)
		for i, j := range jobs {
			i, j := i, j
			e.Schedule(j.arrive, func() {
				ends[i] = s.Submit(j.service, nil)
			})
		}
		e.Run()
		// Lindley: start_i = max(arrive_i, end_{i-1}).
		var prevEnd Time
		for i, j := range jobs {
			start := Time(j.arrive)
			if prevEnd > start {
				start = prevEnd
			}
			want := start.Add(j.service)
			if ends[i] != want {
				return false
			}
			prevEnd = want
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkEngineSchedule measures the Schedule→fire cycle in steady state;
// run with -benchmem to see the free list holding allocs/op at zero.
func BenchmarkEngineSchedule(b *testing.B) {
	e := New()
	fn := func() {}
	for i := 0; i < 1024; i++ {
		e.Schedule(Duration(i), fn)
	}
	e.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(Duration(i&1023), fn)
		if i&1023 == 1023 {
			e.Run()
		}
	}
	e.Run()
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	e := New()
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(Duration(r.IntN(1000)), func() {})
		if i%1024 == 0 {
			e.Run()
		}
	}
	e.Run()
}

func TestEventTimeAccessor(t *testing.T) {
	e := New()
	ev := e.Schedule(7*Nanosecond, func() {})
	if ev.Time() != Time(7*Nanosecond) {
		t.Fatalf("Event.Time() = %v", ev.Time())
	}
}

// Property: interleaved Schedule/Cancel/Step sequences never violate clock
// monotonicity and never execute a cancelled event. Because fired Event
// structs are recycled by later Schedule calls, the test tracks each
// struct's *current occupant*: a successful Cancel always belongs to the
// logical event most recently scheduled into that struct.
func TestPropertyCancelNeverFires(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		e := New()
		fired := map[int]bool{}
		cancelled := map[int]bool{}
		occupant := map[*Event]int{}
		var evs []*Event
		id := 0
		for step := 0; step < 300; step++ {
			switch r.IntN(3) {
			case 0:
				myID := id
				id++
				ev := e.Schedule(Duration(r.IntN(100)), func() { fired[myID] = true })
				occupant[ev] = myID
				evs = append(evs, ev)
			case 1:
				if len(evs) > 0 {
					ev := evs[r.IntN(len(evs))]
					if e.Cancel(ev) {
						cancelled[occupant[ev]] = true
					}
				}
			case 2:
				before := e.Now()
				e.Step()
				if e.Now() < before {
					return false
				}
			}
		}
		e.Run()
		for i := range cancelled {
			if fired[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestScheduleReusesFiredEvents: once the free list is warm, the
// Schedule→fire cycle must not allocate at all.
func TestScheduleReusesFiredEvents(t *testing.T) {
	e := New()
	fn := func() {}
	for i := 0; i < 64; i++ {
		e.Schedule(Duration(i), fn)
	}
	e.Run()
	allocs := testing.AllocsPerRun(200, func() {
		e.Schedule(1, fn)
		e.Run()
	})
	if allocs > 0 {
		t.Fatalf("Schedule allocates %v objects/op after warmup, want 0", allocs)
	}
}
