// Package sim implements the discrete-event simulation engine that underlies
// every experiment in this repository.
//
// All latencies reported by the reproduction are measured in the engine's
// virtual clock, never in wall-clock time, so the Go runtime (GC pauses,
// scheduler jitter) cannot contaminate µs-scale results. Time is kept in
// integer picoseconds: fine enough to express fractions of a 2 GHz cycle
// (500 ps) exactly, and wide enough (int64) for about 100 days of simulated
// time.
//
// The engine is intentionally minimal: a d-ary heap of timestamped events
// with deterministic FIFO ordering for ties. Determinism is a design goal —
// two runs with the same inputs execute events in exactly the same order.
package sim

import (
	"fmt"
	"strconv"
	"strings"
)

// Time is a point in virtual time, in picoseconds since the start of the
// simulation.
type Time int64

// Duration is a span of virtual time in picoseconds.
type Duration int64

// Convenient duration units.
const (
	Picosecond  Duration = 1
	Nanosecond           = 1000 * Picosecond
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Nanos reports d in nanoseconds as a float64.
func (d Duration) Nanos() float64 { return float64(d) / float64(Nanosecond) }

// Micros reports d in microseconds as a float64.
func (d Duration) Micros() float64 { return float64(d) / float64(Microsecond) }

// Seconds reports d in seconds as a float64.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// FromNanos converts a duration expressed in (possibly fractional)
// nanoseconds to a Duration, rounding to the nearest picosecond.
func FromNanos(ns float64) Duration {
	if ns <= 0 {
		return 0
	}
	return Duration(ns*float64(Nanosecond) + 0.5)
}

// FromMicros converts a duration expressed in microseconds to a Duration.
func FromMicros(us float64) Duration { return FromNanos(us * 1e3) }

// ParseDuration parses a virtual-time span written with an optional unit
// suffix: "500ns", "50us", "1.5ms", "2s", or a bare number meaning
// nanoseconds ("500"). It is the shared grammar of every CLI flag and spec
// string that names a simulated time.
func ParseDuration(s string) (Duration, error) {
	str := strings.TrimSpace(s)
	unit := 1.0 // ns
	switch {
	case strings.HasSuffix(str, "ns"):
		str = str[:len(str)-2]
	case strings.HasSuffix(str, "us"), strings.HasSuffix(str, "µs"):
		str = strings.TrimSuffix(strings.TrimSuffix(str, "us"), "µs")
		unit = 1e3
	case strings.HasSuffix(str, "ms"):
		str, unit = str[:len(str)-2], 1e6
	case strings.HasSuffix(str, "s"):
		str, unit = str[:len(str)-1], 1e9
	}
	v, err := strconv.ParseFloat(str, 64)
	if err != nil {
		return 0, fmt.Errorf("sim: bad duration %q (want e.g. 500ns, 50us, 1.5ms)", s)
	}
	if v < 0 {
		return 0, fmt.Errorf("sim: negative duration %q", s)
	}
	return FromNanos(v * unit), nil
}

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Nanos reports t in nanoseconds since simulation start.
func (t Time) Nanos() float64 { return float64(t) / float64(Nanosecond) }

// Seconds reports t in seconds since simulation start.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

func (t Time) String() string { return fmt.Sprintf("%.3fns", t.Nanos()) }

// Event is a scheduled callback. The zero value is not useful; events are
// created by Engine.Schedule and friends.
//
// Fired (and cancelled) Event structs are recycled by later Schedule calls
// through the engine's free list, so a simulation's hot loop schedules
// without allocating. The pointer returned by Schedule is therefore only
// meaningful until the event fires: retaining it past that point and
// passing it to Cancel later may target an unrelated, recycled event. Hold
// Event pointers only for events you know are still pending.
type Event struct {
	at  Time
	seq uint64 // tie-break: FIFO among events with equal time
	fn  func()
	// Arg-carrying form (ScheduleArg): afn is a long-lived function value
	// (typically a method value bound once at setup) and arg its payload for
	// this firing. Splitting the callback this way keeps per-event closure
	// allocation off the simulation hot path: boxing a pointer-shaped arg
	// into the interface field allocates nothing.
	afn  func(any)
	arg  any
	idx  int // heap index, -1 when not queued
	dead bool
}

// Time returns the virtual time at which the event will fire.
func (e *Event) Time() Time { return e.at }

// eventQueue is a 4-ary min-heap of events ordered by (time, seq). It is
// hand-rolled rather than built on container/heap: the interface-dispatched
// Less/Swap calls of the generic heap dominated simulation CPU profiles, and
// (at, seq) is a strict total order — seq is unique — so any correct
// priority queue pops events in exactly the same sequence. Switching the
// heap's shape or sift implementation therefore cannot perturb event order,
// which keeps every determinism pin byte-identical. Arity 4 roughly halves
// tree depth versus a binary heap and keeps sibling keys on one cache line.
type eventQueue []*Event

const heapArity = 4

// siftUp moves q[i] toward the root until its parent is smaller. The moving
// event's key is held in registers; displaced parents shift down in place.
func (q eventQueue) siftUp(i int) {
	ev := q[i]
	at, seq := ev.at, ev.seq
	for i > 0 {
		p := (i - 1) / heapArity
		pe := q[p]
		if pe.at < at || (pe.at == at && pe.seq < seq) {
			break
		}
		q[i] = pe
		pe.idx = i
		i = p
	}
	q[i] = ev
	ev.idx = i
}

// siftDown moves q[i] toward the leaves, swapping with its smallest child
// while that child is smaller.
func (q eventQueue) siftDown(i int) {
	n := len(q)
	ev := q[i]
	at, seq := ev.at, ev.seq
	for {
		first := heapArity*i + 1
		if first >= n {
			break
		}
		m, me := first, q[first]
		end := first + heapArity
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			ce := q[c]
			if ce.at < me.at || (ce.at == me.at && ce.seq < me.seq) {
				m, me = c, ce
			}
		}
		if at < me.at || (at == me.at && seq < me.seq) {
			break
		}
		q[i] = me
		me.idx = i
		i = m
	}
	q[i] = ev
	ev.idx = i
}

// push appends ev and restores heap order.
func (e *Engine) push(ev *Event) {
	ev.idx = len(e.queue)
	e.queue = append(e.queue, ev)
	e.queue.siftUp(ev.idx)
}

// pop removes and returns the minimum event.
func (e *Engine) pop() *Event {
	q := e.queue
	top := q[0]
	top.idx = -1
	n := len(q) - 1
	last := q[n]
	q[n] = nil
	q = q[:n]
	e.queue = q
	if n > 0 {
		q[0] = last
		last.idx = 0
		q.siftDown(0)
	}
	return top
}

// remove deletes the event at heap index i (for Cancel).
func (e *Engine) remove(i int) {
	q := e.queue
	n := len(q) - 1
	q[i].idx = -1
	last := q[n]
	q[n] = nil
	e.queue = q[:n]
	if i < n {
		q = e.queue
		q[i] = last
		last.idx = i
		q.siftDown(i)
		if q[i] == last {
			q.siftUp(i)
		}
	}
}

// Engine is a discrete-event simulator. The zero value is ready to use.
// Engine is not safe for concurrent use; an entire simulation runs on one
// goroutine, which is what keeps it deterministic.
type Engine struct {
	now     Time
	queue   eventQueue
	free    []*Event // fired/cancelled events awaiting reuse
	seq     uint64
	fired   uint64
	stopped bool
}

// New returns a fresh Engine with the clock at zero.
func New() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are scheduled but not yet executed.
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule runs fn after delay d (relative to the current time). A negative
// delay is treated as zero. It returns the Event, which may be passed to
// Cancel while the event is still pending; once it fires the struct may be
// recycled for a later Schedule (see Event), so do not retain it past then.
func (e *Engine) Schedule(d Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.ScheduleAt(e.now.Add(d), fn)
}

// ScheduleAt runs fn at absolute time t. Scheduling in the past panics: it
// would silently corrupt causality, which in a simulator is always a bug.
func (e *Engine) ScheduleAt(t Time, fn func()) *Event {
	ev := e.next(t)
	ev.fn = fn
	return ev
}

// ScheduleArg runs fn(arg) after delay d. Unlike Schedule, the callback and
// its state travel separately: fn should be a long-lived function value (a
// method value bound once at setup) and arg the per-firing payload, so the
// simulation hot path schedules without allocating a closure. A negative
// delay is treated as zero.
func (e *Engine) ScheduleArg(d Duration, fn func(any), arg any) *Event {
	if d < 0 {
		d = 0
	}
	return e.ScheduleArgAt(e.now.Add(d), fn, arg)
}

// ScheduleArgAt runs fn(arg) at absolute time t. Scheduling in the past
// panics, exactly as ScheduleAt.
func (e *Engine) ScheduleArgAt(t Time, fn func(any), arg any) *Event {
	ev := e.next(t)
	ev.afn, ev.arg = fn, arg
	return ev
}

// next recycles (or allocates) an Event at time t and queues it with the
// next FIFO sequence number; the caller fills in the callback fields.
func (e *Engine) next(t Time) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: ScheduleAt(%v) is before now (%v)", t, e.now))
	}
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		*ev = Event{at: t, seq: e.seq}
	} else {
		ev = &Event{at: t, seq: e.seq}
	}
	e.seq++
	e.push(ev)
	return ev
}

// Cancel removes a scheduled event. Cancelling an event that already fired or
// was already cancelled is a no-op as long as the struct has not been
// recycled by a later Schedule (see Event). It reports whether the event was
// actually descheduled by this call.
func (e *Engine) Cancel(ev *Event) bool {
	if ev == nil || ev.dead || ev.idx < 0 {
		return false
	}
	ev.dead = true
	e.remove(ev.idx)
	ev.fn, ev.afn, ev.arg = nil, nil, nil
	e.free = append(e.free, ev)
	return true
}

// Stop makes the currently executing Run return after the current event
// completes. Pending events remain queued.
func (e *Engine) Stop() { e.stopped = true }

// Step executes the single earliest pending event. It reports false when the
// queue is empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := e.pop()
	e.now = ev.at
	e.fired++
	ev.dead = true
	fn, afn, arg := ev.fn, ev.afn, ev.arg
	ev.fn, ev.afn, ev.arg = nil, nil, nil
	e.free = append(e.free, ev)
	if afn != nil {
		afn(arg)
	} else {
		fn()
	}
	return true
}

// Run executes events until the queue drains or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil executes events with time ≤ deadline, then advances the clock to
// the deadline (if the clock has not already passed it). Events scheduled
// exactly at the deadline do fire.
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for !e.stopped && len(e.queue) > 0 && e.queue[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// RunFor executes events for a span d of virtual time starting now.
func (e *Engine) RunFor(d Duration) { e.RunUntil(e.now.Add(d)) }
