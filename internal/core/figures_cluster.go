package core

import (
	"fmt"

	"rpcvalet/internal/cluster"
	"rpcvalet/internal/machine"
	"rpcvalet/internal/report"
	"rpcvalet/internal/sim"
	"rpcvalet/internal/workload"
)

func init() {
	register("cluster", figCluster)
	FigureIDs = append(FigureIDs, "cluster")
}

// ClusterNodes is the rack size the cluster experiments model.
const ClusterNodes = 4

// ClusterHop is the balancer→node network hop the cluster experiments
// charge every routed RPC.
const ClusterHop = 500 * sim.Nanosecond

// clusterBase assembles a cluster config over the given per-node mode.
// Options.Shards is threaded through, so every cluster figure and sweep in
// the harness runs sharded when asked to.
func clusterBase(o Options, wl workload.Profile, mode machine.Mode, pol cluster.Policy) cluster.Config {
	p := machine.Defaults()
	p.Mode = mode
	return cluster.Config{
		Nodes:   ClusterNodes,
		Node:    machine.Config{Params: p, Workload: wl},
		Policy:  pol,
		Hop:     ClusterHop,
		Warmup:  o.Warmup,
		Measure: o.Measure,
		Seed:    o.Seed,
		Shards:  o.Shards,
	}
}

// ClusterSweep runs the cluster at every aggregate rate (concurrently, on
// runPoints) and returns the curve in rate order. Each point gets freshly
// cloned policies (rack and, when hierarchical, global), so rotation state
// never leaks across points or goroutines. When base is sharded, each point
// is itself a team of goroutines, so the fan-out narrows to keep `workers`
// the cap on total goroutines.
func ClusterSweep(base cluster.Config, rates []float64, label string, workers int) (cluster.Curve, error) {
	points, err := runPoints(len(rates), BudgetWorkers(workers, RunCost(base)), func(i int) (cluster.Point, error) {
		rate := rates[i]
		cfg := base
		cfg.RateMRPS = rate
		cfg.Seed = base.Seed + uint64(i)*1_000_003
		cfg.Policy = base.Policy.Clone()
		if base.GlobalPolicy != nil {
			cfg.GlobalPolicy = base.GlobalPolicy.Clone()
		}
		if cfg.MaxSimTime == 0 {
			est := ClusterCapacityMRPS(cfg)
			if rate < est {
				est = rate
			}
			need := float64(cfg.Warmup+cfg.Measure) / est * 1000 // ns
			cfg.MaxSimTime = sim.FromNanos(need * 10)
		}
		res, err := cluster.Run(cfg)
		if err != nil {
			return cluster.Point{}, fmt.Errorf("cluster sweep %s at %.2f MRPS: %w", label, rate, err)
		}
		return cluster.Point{
			RateMRPS:       rate,
			ThroughputMRPS: res.ThroughputMRPS,
			P50:            res.Latency.P50,
			P99:            res.Latency.P99,
			Mean:           res.Latency.Mean,
			Imbalance:      res.Imbalance,
			MeetsSLO:       res.MeetsSLO,
		}, nil
	})
	if err != nil {
		return cluster.Curve{}, err
	}
	return cluster.Curve{Label: label, Points: points}, nil
}

// ClusterCapacityMRPS estimates the cluster's aggregate saturation
// throughput: node count × single-node capacity.
func ClusterCapacityMRPS(cfg cluster.Config) float64 {
	return float64(cfg.Nodes) * CapacityMRPS(cfg.Node.Params, cfg.Node.Workload)
}

// figCluster produces the rack-scale composition study: p99 versus offered
// load for every {cluster policy} × {node NI model} pair, on the
// synthetic-exponential workload. It is the experiment the single-node seed
// cannot express: whether cluster-level imbalance re-creates the 16×1
// pathology one level up, and how much a queue-aware front end recovers.
func figCluster(o Options) (Figure, error) {
	wl := workload.SyntheticExp()
	loads := theoryLoads(o.Points) // fractions of cluster capacity

	type key struct {
		mode   machine.Mode
		policy string
	}
	var cells []key
	for _, mode := range hwModes {
		for _, polName := range cluster.PolicyNames {
			cells = append(cells, key{mode, polName})
		}
	}
	// One layer of concurrency: runPoints fans out over the (mode, policy)
	// cells and each cell runs its sweep sequentially (workers=1), so
	// o.Workers caps the number of in-flight simulations exactly. (An
	// earlier version spawned a goroutine per cell around a parallel
	// ClusterSweep, multiplying concurrency to cells × o.Workers.)
	// ClusterSweep's points are deterministic for any worker count, so the
	// flattening is result-identical. With Options.Shards > 1 every in-flight
	// simulation is a team of goroutines, so the cell fan-out narrows by the
	// team size — o.Workers keeps bounding total goroutines either way.
	cellWorkers := BudgetWorkers(o.Workers,
		RunCost(cluster.Config{Nodes: ClusterNodes, Shards: o.Shards}))
	cellCurves, err := runPoints(len(cells), cellWorkers, func(i int) (cluster.Curve, error) {
		c := cells[i]
		pol, err := cluster.PolicyByName(c.policy)
		if err != nil {
			return cluster.Curve{}, err
		}
		base := clusterBase(o, wl, c.mode, pol)
		rates := make([]float64, len(loads))
		for j, f := range loads {
			rates[j] = f * ClusterCapacityMRPS(base)
		}
		return ClusterSweep(base, rates, c.policy+"/"+modeShort(c.mode), 1)
	})
	if err != nil {
		return Figure{}, err
	}
	curves := make(map[key]cluster.Curve, len(cells))
	for i, c := range cells {
		curves[c] = cellCurves[i]
	}

	fig := Figure{
		ID: "cluster",
		Title: fmt.Sprintf("Cluster: p99 vs offered load, %d nodes, %s workload, %v hop",
			ClusterNodes, wl.Name, ClusterHop),
	}
	for _, mode := range hwModes {
		cols := []string{"load"}
		for _, polName := range cluster.PolicyNames {
			cols = append(cols, "p99ns_"+polName)
		}
		tbl := report.NewTable(
			fmt.Sprintf("Cluster of %s nodes: p99 (ns) vs load by policy", modeShort(mode)), cols...)
		for li, load := range loads {
			row := []any{load}
			for _, polName := range cluster.PolicyNames {
				row = append(row, curves[key{mode, polName}].Points[li].P99)
			}
			tbl.AddRowf(row...)
		}
		fig.Tables = append(fig.Tables, tbl)
	}

	// Claims at the grid's top load (0.95 of capacity — still below
	// saturation): mid-load points separate the policies by less than
	// sampling noise, so that is where the comparison means something.
	hi := len(loads) - 1
	at := func(mode machine.Mode, pol string) cluster.Point {
		return curves[key{mode, pol}].Points[hi]
	}
	jsqP99 := at(machine.ModeSingleQueue, "jsq2").P99
	randP99 := at(machine.ModeSingleQueue, "random").P99
	fig.Claims = append(fig.Claims, Claim{
		Name:     "cluster JSQ(2) p99 <= random p99 (1x16 nodes)",
		Paper:    "power-of-d choices tames tail (cluster-level analogue of NI dispatch)",
		Measured: fmt.Sprintf("jsq2=%.0fns random=%.0fns at load %.2f", jsqP99, randP99, loads[hi]),
		Ok:       jsqP99 <= randP99,
	})
	worst := at(machine.ModePartitioned, "random").P99
	best := at(machine.ModeSingleQueue, "jsq2").P99
	fig.Claims = append(fig.Claims, Claim{
		Name:     "random x 16x1 re-creates the partitioned pathology",
		Paper:    "blind balancing at both tiers compounds (Model QxU intuition, §2.2)",
		Measured: fmt.Sprintf("random/16x1=%.0fns vs jsq2/1x16=%.0fns at load %.2f", worst, best, loads[hi]),
		Ok:       worst > best,
	})
	return fig, nil
}
