package core

import (
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"rpcvalet/internal/arrival"
	"rpcvalet/internal/cluster"
	"rpcvalet/internal/machine"
	"rpcvalet/internal/workload"
)

// tinyOptions keeps unit tests fast; claim checks at this scale are noisy,
// so tests here verify structure and the direction of effects, while
// claim-level validation happens at QuickOptions scale in TestFigures.
func tinyOptions() Options {
	return Options{Warmup: 300, Measure: 4000, QGen: 8000, Points: 4, Seed: 7, Workers: 4}
}

func TestCapacityMRPS(t *testing.T) {
	got := CapacityMRPS(machine.Defaults(), workload.HERD())
	// 16 cores / (330 + 200) ns ≈ 30 MRPS.
	if got < 28 || got < 0 || got > 33 {
		t.Fatalf("capacity = %v MRPS, want ~30", got)
	}
}

func TestRateGrid(t *testing.T) {
	g := RateGrid(100, 0.1, 0.9, 5)
	if len(g) != 5 || g[0] != 10 || g[4] != 90 {
		t.Fatalf("grid = %v", g)
	}
	if mid := g[2]; mid != 50 {
		t.Fatalf("grid midpoint = %v", mid)
	}
	if one := RateGrid(100, 0.1, 0.9, 1); len(one) != 1 || one[0] != 90 {
		t.Fatalf("single-point grid = %v", one)
	}
}

func TestCurveHelpers(t *testing.T) {
	c := Curve{Points: []CurvePoint{
		{RateMRPS: 1, ThroughputMRPS: 1, P99: 100, MeetsSLO: true},
		{RateMRPS: 2, ThroughputMRPS: 2, P99: 200, MeetsSLO: true},
		{RateMRPS: 3, ThroughputMRPS: 2.5, P99: 900, MeetsSLO: false},
	}}
	if got := c.ThroughputUnderSLO(); got != 2 {
		t.Fatalf("thr under SLO = %v", got)
	}
	other := Curve{Points: []CurvePoint{
		{RateMRPS: 1, P99: 400}, {RateMRPS: 2, P99: 500}, {RateMRPS: 3, P99: 1000},
	}}
	if got := c.MaxTailRatioVs(other); got != 4 {
		t.Fatalf("max tail ratio = %v, want 4 (400/100)", got)
	}
	empty := Curve{}
	if empty.ThroughputUnderSLO() != 0 || empty.MaxTailRatioVs(c) != 0 {
		t.Fatal("empty curve helpers should return 0")
	}
}

func TestSafeRatio(t *testing.T) {
	if safeRatio(4, 2) != 2 || safeRatio(1, 0) != 0 {
		t.Fatal("safeRatio wrong")
	}
}

func TestMachineSweepDeterministic(t *testing.T) {
	cfg := machineBase(tinyOptions(), workload.HERD(), machine.ModeSingleQueue)
	rates := []float64{3, 9, 15}
	a, err := MachineSweep(cfg, rates, "a", 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MachineSweep(cfg, rates, "b", 1) // different worker count
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatalf("point %d differs across worker counts: %+v vs %+v", i, a.Points[i], b.Points[i])
		}
	}
}

func TestMachineSweepPropagatesError(t *testing.T) {
	cfg := machineBase(tinyOptions(), workload.HERD(), machine.ModeSingleQueue)
	cfg.Params.Cores = 0
	if _, err := MachineSweep(cfg, []float64{1}, "x", 1); err == nil {
		t.Fatal("expected error")
	}
}

func TestRegistryComplete(t *testing.T) {
	for _, id := range FigureIDs {
		if _, ok := Figures[id]; !ok {
			t.Errorf("figure %q in FigureIDs but not registered", id)
		}
	}
	if len(Figures) != len(FigureIDs) {
		t.Fatalf("registered %d figures, listed %d", len(Figures), len(FigureIDs))
	}
}

func TestClaimString(t *testing.T) {
	ok := Claim{Name: "n", Paper: "p", Measured: "m", Ok: true}
	if !strings.Contains(ok.String(), "OK") {
		t.Fatal("ok claim string")
	}
	bad := Claim{Name: "n", Paper: "p", Measured: "m"}
	if !strings.Contains(bad.String(), "MISS") {
		t.Fatal("miss claim string")
	}
}

// TestFigureStructure runs the cheap figures end to end at tiny scale and
// checks they produce tables with data. (Claims may be noisy at this scale;
// structure must hold regardless.)
func TestFigureStructure(t *testing.T) {
	o := tinyOptions()
	for _, id := range []string{"2a", "2b", "6", "table1", "ablation-outstanding", "ablation-rss"} {
		fig, err := Figures[id](o)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if fig.ID != id {
			t.Errorf("%s: ID mismatch %q", id, fig.ID)
		}
		if len(fig.Tables) == 0 {
			t.Errorf("%s: no tables", id)
		}
		for _, tbl := range fig.Tables {
			if len(tbl.Rows) == 0 {
				t.Errorf("%s: empty table %q", id, tbl.Title)
			}
		}
	}
}

// TestRunPointsHonorsWorkerCap is the oversubscription regression test: an
// atomic high-water-mark counter in the point fn proves Options.Workers is a
// true cap on concurrently running simulations. (figCluster once spawned a
// goroutine per (mode, policy) cell around a parallel ClusterSweep,
// multiplying concurrency to cells × Workers; every sweep now runs through
// this one pool.)
// concurrencyHighWater runs n points through runPoints at the given cap,
// with each point holding its slot for `hold` so any overlap beyond the cap
// would register, and returns the atomic high-water mark of concurrently
// running points.
func concurrencyHighWater(t *testing.T, n, workers int, hold time.Duration) int {
	t.Helper()
	var cur, high atomic.Int32
	_, err := runPoints(n, workers, func(i int) (int, error) {
		c := cur.Add(1)
		for {
			h := high.Load()
			if c <= h || high.CompareAndSwap(h, c) {
				break
			}
		}
		time.Sleep(hold)
		cur.Add(-1)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return int(high.Load())
}

func TestRunPointsHonorsWorkerCap(t *testing.T) {
	const workers = 3
	got := concurrencyHighWater(t, 24, workers, 2*time.Millisecond)
	if got > workers {
		t.Fatalf("observed %d concurrent points, cap is %d", got, workers)
	}
	if got < 1 {
		t.Fatalf("high-water mark %d never registered a running point", got)
	}
}

// TestRunPointsDefaultCap: a zero worker count falls back to NumCPU, never
// unbounded.
func TestRunPointsDefaultCap(t *testing.T) {
	if got, limit := concurrencyHighWater(t, 64, 0, time.Millisecond), runtime.NumCPU(); got > limit {
		t.Fatalf("observed %d concurrent points with a zero cap, NumCPU is %d", got, limit)
	}
}

// TestFigClusterDeterministic: the flattened figCluster must produce
// identical tables and claims for any worker cap — the property that made
// flattening the per-cell goroutine pool result-identical.
func TestFigClusterDeterministic(t *testing.T) {
	o := tinyOptions()
	o.Points = 2
	o.Measure = 2000
	run := func(workers int) Figure {
		o := o
		o.Workers = workers
		fig, err := figCluster(o)
		if err != nil {
			t.Fatal(err)
		}
		return fig
	}
	a, b := run(1), run(8)
	if len(a.Tables) != len(b.Tables) {
		t.Fatalf("table count differs: %d vs %d", len(a.Tables), len(b.Tables))
	}
	for ti := range a.Tables {
		at, bt := a.Tables[ti], b.Tables[ti]
		if len(at.Rows) != len(bt.Rows) {
			t.Fatalf("table %q row count differs", at.Title)
		}
		for ri := range at.Rows {
			for ci := range at.Rows[ri] {
				if at.Rows[ri][ci] != bt.Rows[ri][ci] {
					t.Fatalf("table %q cell [%d][%d] differs across worker caps: %v vs %v",
						at.Title, ri, ci, at.Rows[ri][ci], bt.Rows[ri][ci])
				}
			}
		}
	}
	for i := range a.Claims {
		if a.Claims[i] != b.Claims[i] {
			t.Fatalf("claim %d differs across worker caps:\n  %s\n  %s", i, a.Claims[i], b.Claims[i])
		}
	}
}

// TestClusterSweepDeterministic: cluster sweeps must give identical points
// regardless of worker count, like the machine sweeps.
func TestClusterSweepDeterministic(t *testing.T) {
	o := tinyOptions()
	base := clusterBase(o, workload.SyntheticExp(), machine.ModeSingleQueue, cluster.JSQ{D: 2})
	cap := ClusterCapacityMRPS(base)
	rates := []float64{0.3 * cap, 0.6 * cap, 0.8 * cap}
	a, err := ClusterSweep(base, rates, "a", 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ClusterSweep(base, rates, "b", 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatalf("point %d differs across worker counts: %+v vs %+v", i, a.Points[i], b.Points[i])
		}
	}
}

func TestClusterSweepPropagatesError(t *testing.T) {
	o := tinyOptions()
	base := clusterBase(o, workload.SyntheticExp(), machine.ModeSingleQueue, cluster.JSQ{D: 2})
	base.Node.Params.Cores = 0
	if _, err := ClusterSweep(base, []float64{1}, "x", 1); err == nil {
		t.Fatal("expected error")
	}
}

// TestClusterFigure runs the rack-scale composition figure at tiny scale:
// three node modes × four policies must each yield a full curve.
func TestClusterFigure(t *testing.T) {
	o := tinyOptions()
	o.Points = 3
	o.Measure = 3000
	fig, err := Figures["cluster"](o)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Tables) != 3 {
		t.Fatalf("cluster figure tables = %d, want 3 (one per node mode)", len(fig.Tables))
	}
	for _, tbl := range fig.Tables {
		if len(tbl.Rows) != o.Points || len(tbl.Columns) != 1+len(cluster.PolicyNames) {
			t.Fatalf("table %q shape %dx%d", tbl.Title, len(tbl.Rows), len(tbl.Columns))
		}
	}
	if len(fig.Claims) != 2 {
		t.Fatalf("cluster figure claims = %d, want 2", len(fig.Claims))
	}
}

// TestFig9ModelComparison checks the Fig 9 machinery at small scale: the
// machine curve must sit above (or near) the idealized model at every load,
// never dramatically below it.
func TestFig9ModelComparison(t *testing.T) {
	o := tinyOptions()
	o.Points = 3
	fig, err := Figures["9"](o)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Tables) != 4 || len(fig.Claims) != 4 {
		t.Fatalf("fig9 shape: %d tables %d claims", len(fig.Tables), len(fig.Claims))
	}
}

func TestRefineKnee(t *testing.T) {
	o := tinyOptions()
	base := machineBase(o, workload.HERD(), machine.ModeSingleQueue)
	cap := CapacityMRPS(base.Params, base.Workload)
	coarse, err := MachineSweep(base, RateGrid(cap, 0.3, 1.05, 4), "knee", 2)
	if err != nil {
		t.Fatal(err)
	}
	refined, err := RefineKnee(base, coarse, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if refined.Knee == nil {
		t.Skip("grid had no SLO crossing at tiny scale")
	}
	if !refined.Knee.MeetsSLO {
		t.Fatal("refined knee violates SLO")
	}
	if refined.ThroughputUnderSLO() < coarse.ThroughputUnderSLO() {
		t.Fatalf("refinement reduced throughput under SLO: %v -> %v",
			coarse.ThroughputUnderSLO(), refined.ThroughputUnderSLO())
	}
}

func TestRefineKneeNoCrossing(t *testing.T) {
	// All points meet the SLO: nothing to refine, no error.
	o := tinyOptions()
	base := machineBase(o, workload.HERD(), machine.ModeSingleQueue)
	cap := CapacityMRPS(base.Params, base.Workload)
	coarse, err := MachineSweep(base, RateGrid(cap, 0.1, 0.4, 3), "low", 2)
	if err != nil {
		t.Fatal(err)
	}
	refined, err := RefineKnee(base, coarse, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if refined.Knee != nil {
		t.Fatal("refinement invented a knee without a crossing")
	}
}

// TestRefineKneeEdgeCases exercises the refinement's degenerate inputs with
// synthetic curves: every early-return path must leave the curve untouched
// (and run zero extra simulations — these paths return before any sweep).
func TestRefineKneeEdgeCases(t *testing.T) {
	base := machineBase(tinyOptions(), workload.HERD(), machine.ModeSingleQueue)
	mk := func(meets ...bool) Curve {
		c := Curve{Label: "synthetic"}
		for i, m := range meets {
			c.Points = append(c.Points, CurvePoint{
				RateMRPS: float64(i + 1), ThroughputMRPS: float64(i + 1),
				P99: 100 * float64(i+1), SLONanos: 250, MeetsSLO: m,
			})
		}
		return c
	}
	cases := map[string]Curve{
		"noneMeetSLO":    mk(false, false, false),
		"allMeetSLO":     mk(true, true, true),
		"kneeAtLowEdge":  mk(false, true, true), // SLO region touches the grid's top: nothing above to bisect toward
		"kneeBeyondGrid": mk(true),              // single point, trivially at the edge
		"emptyCurve":     mk(),
	}
	for name, c := range cases {
		refined, err := RefineKnee(base, c, 5, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if refined.Knee != nil {
			t.Errorf("%s: refinement invented a knee", name)
		}
		if len(refined.Points) != len(c.Points) {
			t.Errorf("%s: points changed", name)
		}
		for i := range c.Points {
			if refined.Points[i] != c.Points[i] {
				t.Errorf("%s: point %d mutated", name, i)
			}
		}
	}
}

// TestRefineKneeAtGridEdge drives a real refinement whose knee sits at the
// top of the grid: the last grid point meets the SLO, so there is no
// violating point to bisect against and the curve must come back unchanged,
// while a grid extended past saturation must produce a refined knee between
// the crossing points.
func TestRefineKneeAtGridEdge(t *testing.T) {
	o := tinyOptions()
	base := machineBase(o, workload.HERD(), machine.ModeSingleQueue)
	cap := CapacityMRPS(base.Params, base.Workload)

	// Grid confined below the knee: every point meets, edge case.
	low, err := MachineSweep(base, RateGrid(cap, 0.2, 0.5, 3), "low", 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range low.Points {
		if !p.MeetsSLO {
			t.Skipf("low-load grid unexpectedly violated SLO at tiny scale: %+v", p)
		}
	}
	refined, err := RefineKnee(base, low, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if refined.Knee != nil {
		t.Fatal("knee refined despite the whole grid meeting the SLO")
	}

	// Grid crossing saturation: the knee must land inside the crossing
	// bracket and meet the SLO.
	wide, err := MachineSweep(base, RateGrid(cap, 0.5, 1.3, 4), "wide", 2)
	if err != nil {
		t.Fatal(err)
	}
	refined, err = RefineKnee(base, wide, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if refined.Knee == nil {
		t.Skip("no SLO crossing materialized at tiny scale")
	}
	lastOK, firstBad := -1.0, -1.0
	for _, p := range wide.Points {
		if p.MeetsSLO {
			lastOK = p.RateMRPS
		} else if firstBad < 0 && lastOK >= 0 {
			firstBad = p.RateMRPS
		}
	}
	if k := refined.Knee.RateMRPS; k < lastOK || (firstBad > 0 && k > firstBad) {
		t.Fatalf("knee at %.2f outside bracket [%.2f, %.2f]", k, lastOK, firstBad)
	}
}

// TestMachineSweepDeterministicPerArrival mirrors TestMachineSweepDeterministic
// for every built-in arrival process: the worker count must never change a
// sweep's points.
func TestMachineSweepDeterministicPerArrival(t *testing.T) {
	o := tinyOptions()
	rates := []float64{4, 10, 14}
	for _, kind := range arrival.Names {
		arr, err := arrival.ByName(kind, rates[0])
		if err != nil {
			t.Fatal(err)
		}
		cfg := machineBase(o, workload.HERD(), machine.ModeSingleQueue)
		cfg.Arrival = arr
		a, err := MachineSweep(cfg, rates, kind+"-a", 3)
		if err != nil {
			t.Fatal(err)
		}
		b, err := MachineSweep(cfg, rates, kind+"-b", 1)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a.Points {
			if a.Points[i] != b.Points[i] {
				t.Fatalf("%s: point %d differs across worker counts: %+v vs %+v",
					kind, i, a.Points[i], b.Points[i])
			}
		}
	}
}

// TestClusterSweepDeterministicPerArrival is the cluster-layer counterpart.
func TestClusterSweepDeterministicPerArrival(t *testing.T) {
	o := tinyOptions()
	o.Measure = 3000
	base := clusterBase(o, workload.SyntheticExp(), machine.ModeSingleQueue, cluster.JSQ{D: 2})
	cap := ClusterCapacityMRPS(base)
	rates := []float64{0.4 * cap, 0.7 * cap}
	for _, kind := range arrival.Names {
		arr, err := arrival.ByName(kind, rates[0])
		if err != nil {
			t.Fatal(err)
		}
		cfg := base
		cfg.Arrival = arr
		a, err := ClusterSweep(cfg, rates, kind+"-a", 2)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ClusterSweep(cfg, rates, kind+"-b", 1)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a.Points {
			if a.Points[i] != b.Points[i] {
				t.Fatalf("%s: point %d differs across worker counts: %+v vs %+v",
					kind, i, a.Points[i], b.Points[i])
			}
		}
	}
}

// TestFigureBurstStructure checks the burst study's shape at tiny scale.
func TestFigureBurstStructure(t *testing.T) {
	o := tinyOptions()
	fig, err := Figures["burst"](o)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Tables) != 3 {
		t.Fatalf("burst tables = %d, want 3", len(fig.Tables))
	}
	for _, tbl := range fig.Tables {
		if len(tbl.Rows) != len(arrival.Names) || len(tbl.Columns) != 1+len(hwModes) {
			t.Fatalf("table %q shape %dx%d", tbl.Title, len(tbl.Rows), len(tbl.Columns))
		}
	}
	if len(fig.Claims) != 2 {
		t.Fatalf("burst claims = %d, want 2", len(fig.Claims))
	}
}

// TestFigurePolicyStructure checks the dispatch-policy study's shape at tiny
// scale: two tables per workload (curve + SLO summary) and three claims.
func TestFigurePolicyStructure(t *testing.T) {
	o := tinyOptions()
	o.Points = 3
	o.Measure = 3000
	fig, err := Figures["policy"](o)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * len(policyWorkloads); len(fig.Tables) != want {
		t.Fatalf("policy tables = %d, want %d", len(fig.Tables), want)
	}
	for i, tbl := range fig.Tables {
		if i%2 == 0 { // curve table: one row per rate, one p99 column per plan
			if len(tbl.Rows) != o.Points || len(tbl.Columns) != 1+len(policyPlans) {
				t.Fatalf("table %q shape %dx%d", tbl.Title, len(tbl.Rows), len(tbl.Columns))
			}
		} else if len(tbl.Rows) != len(policyPlans) {
			t.Fatalf("summary %q rows = %d", tbl.Title, len(tbl.Rows))
		}
	}
	if len(fig.Claims) != 3 {
		t.Fatalf("policy claims = %d, want 3", len(fig.Claims))
	}
}

// TestFigurePolicyClaims regenerates the policy study at QuickOptions scale —
// the acceptance scale — and requires every claim to hold: occupancy
// feedback never loses to blind dispatch, JBSQ(1) tracks the single-queue
// ideal where the partitioned baseline collapses, and two random choices
// recover most of the full-information gain.
func TestFigurePolicyClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("QuickOptions-scale regeneration")
	}
	fig, err := Figures["policy"](QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range fig.Claims {
		if !c.Ok {
			t.Errorf("claim failed: %s", c)
		}
	}
	// The random-of-2 recovery claim is enforced by name: it was the
	// EXPERIMENTS.md known-flaky cell until its estimator moved to median
	// recovery over the top SLO-meeting loads, and a silent rename or
	// removal must not let it regress to a single-point statistic.
	found := false
	for _, c := range fig.Claims {
		if strings.HasPrefix(c.Name, "random-of-2 recovers") {
			found = true
			if !c.Ok {
				t.Errorf("deflaked recovery claim failed: %s", c)
			}
			if !strings.Contains(c.Measured, "median over top") {
				t.Errorf("recovery claim regressed to a single-point estimator: %s", c.Measured)
			}
		}
	}
	if !found {
		t.Error("random-of-2 recovery claim missing from the policy figure")
	}
}

// TestFigureTransientStructure checks the transient study's shape: the
// pulse comparison, the rendered timeline, the recovery summary, the
// degraded-node table, and three claims.
func TestFigureTransientStructure(t *testing.T) {
	o := tinyOptions()
	fig, err := Figures["transient"](o)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Tables) != 4 {
		t.Fatalf("transient tables = %d, want 4", len(fig.Tables))
	}
	for _, tbl := range fig.Tables {
		if len(tbl.Rows) == 0 {
			t.Fatalf("empty table %q", tbl.Title)
		}
	}
	if len(fig.Claims) != 3 {
		t.Fatalf("transient claims = %d, want 3", len(fig.Claims))
	}
}

// TestFigureTransientClaims regenerates the transient study at QuickOptions
// scale — the acceptance scale — and requires every claim to hold: the
// single queue out-recovers the partitioned baseline after a 2× pulse, its
// pulse peak stays lower, and JSQ's margin over random widens under a
// degraded node.
func TestFigureTransientClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("QuickOptions-scale regeneration")
	}
	fig, err := Figures["transient"](QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range fig.Claims {
		if !c.Ok {
			t.Errorf("claim failed: %s", c)
		}
	}
}

// TestFigureAnatomyStructure checks the tail-anatomy figure's shape: one
// summary row per dispatch plan, a span table per plan with the slowest
// requests decomposed, and three claims.
func TestFigureAnatomyStructure(t *testing.T) {
	fig, err := Figures["anatomy"](tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Tables) != 1+len(anatomyPlans) {
		t.Fatalf("anatomy tables = %d, want %d", len(fig.Tables), 1+len(anatomyPlans))
	}
	if got := len(fig.Tables[0].Rows); got != len(anatomyPlans) {
		t.Fatalf("summary rows = %d, want %d", got, len(anatomyPlans))
	}
	for _, tbl := range fig.Tables[1:] {
		if len(tbl.Rows) == 0 {
			t.Fatalf("empty span table %q", tbl.Title)
		}
	}
	if len(fig.Claims) != 3 {
		t.Fatalf("anatomy claims = %d, want 3", len(fig.Claims))
	}
}

// TestFigureAnatomyClaims regenerates the tail-anatomy figure at
// QuickOptions scale — the acceptance scale — and requires every claim to
// hold: the partitioned tail is queue-wait dominated, and both the ideal
// single queue and JBSQ(2) cut the tail's wait share below half of the
// partitioned baseline's.
func TestFigureAnatomyClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("QuickOptions-scale regeneration")
	}
	fig, err := Figures["anatomy"](QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range fig.Claims {
		if !c.Ok {
			t.Errorf("claim failed: %s", c)
		}
	}
}

// TestRecoveryHelpers pins the transient figure's analysis helpers.
func TestRecoveryHelpers(t *testing.T) {
	if got := median([]float64{5, 1, 3}); got != 3 {
		t.Fatalf("median = %v", got)
	}
	if got := median([]float64{4, 1}); got != 4 {
		t.Fatalf("even median = %v (upper-middle)", got)
	}
	in := []float64{9, 2}
	_ = median(in)
	if in[0] != 9 {
		t.Fatal("median mutated its input")
	}
}

// TestFigureBurstClaims regenerates the burst study at QuickOptions scale —
// the acceptance scale — and requires both claims to hold: MMPP2 punishes
// the partitioned system disproportionately, and deterministic arrivals
// tighten every tail.
func TestFigureBurstClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("QuickOptions-scale regeneration")
	}
	fig, err := Figures["burst"](QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range fig.Claims {
		if !c.Ok {
			t.Errorf("claim failed: %s", c)
		}
	}
}

// TestRunCost: the goroutine team one cluster.Run occupies — 1 on the
// serial path, shard count (clamped to nodes) plus the balancer shard on
// the parallel path.
func TestRunCost(t *testing.T) {
	cases := []struct {
		nodes, shards, want int
	}{
		{8, 0, 1},  // zero value: serial
		{8, 1, 1},  // explicit serial
		{8, 4, 5},  // 4 node shards + balancer
		{2, 16, 3}, // clamped to nodes
		{1, 16, 1}, // one node degrades to serial
	}
	for _, c := range cases {
		if got := RunCost(cluster.Config{Nodes: c.nodes, Shards: c.shards}); got != c.want {
			t.Errorf("RunCost(nodes=%d, shards=%d) = %d, want %d", c.nodes, c.shards, got, c.want)
		}
	}
}

// TestBudgetWorkers: sweep fan-out divides by the per-run goroutine team so
// the worker cap bounds total goroutines, never dropping below one
// simulation in flight.
func TestBudgetWorkers(t *testing.T) {
	cases := []struct {
		workers, cost, want int
	}{
		{16, 1, 16},
		{16, 5, 3},
		{4, 5, 1},  // team wider than the cap: sequential points
		{1, 99, 1}, // never zero
	}
	for _, c := range cases {
		if got := BudgetWorkers(c.workers, c.cost); got != c.want {
			t.Errorf("BudgetWorkers(%d, %d) = %d, want %d", c.workers, c.cost, got, c.want)
		}
	}
	if got := BudgetWorkers(0, 1); got != runtime.NumCPU() {
		t.Errorf("BudgetWorkers(0, 1) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
}

// TestShardSmoke is the `make shard-smoke` target: a short sharded
// figCluster run under the race detector in CI — the full harness path
// (figure → budgeted fan-out → sharded cluster.Run → pdes rounds) with
// every policy × mode cell exercising cross-shard traffic concurrently.
// Run twice to also smoke run-to-run determinism of the sharded figure.
func TestShardSmoke(t *testing.T) {
	o := tinyOptions()
	o.Points = 2
	o.Measure = 1500
	o.Shards = 4
	gen := func() Figure {
		fig, err := figCluster(o)
		if err != nil {
			t.Fatal(err)
		}
		if len(fig.Tables) == 0 {
			t.Fatal("sharded figCluster produced no tables")
		}
		for _, tbl := range fig.Tables {
			if len(tbl.Rows) != o.Points {
				t.Fatalf("table %q has %d rows, want %d", tbl.Title, len(tbl.Rows), o.Points)
			}
		}
		return fig
	}
	a, b := gen(), gen()
	for ti := range a.Tables {
		for ri := range a.Tables[ti].Rows {
			for ci := range a.Tables[ti].Rows[ri] {
				if a.Tables[ti].Rows[ri][ci] != b.Tables[ti].Rows[ri][ci] {
					t.Fatalf("sharded figCluster diverged run-to-run: table %q cell [%d][%d]: %v vs %v",
						a.Tables[ti].Title, ri, ci, a.Tables[ti].Rows[ri][ci], b.Tables[ti].Rows[ri][ci])
				}
			}
		}
	}
}

// TestRackFigure checks the rack figure's structure and determinism at toy
// cluster sizes: registered ID, both tables fully populated across the
// policy set, the claim set present, and identical cells run-to-run.
func TestRackFigure(t *testing.T) {
	if _, ok := Figures["rack"]; !ok {
		t.Fatal("rack figure not registered")
	}
	o := tinyOptions()
	o.Measure = 1500
	ns := []int{4, 9}
	gen := func() Figure {
		fig, err := figRackOver(o, ns)
		if err != nil {
			t.Fatal(err)
		}
		if len(fig.Tables) != 2 {
			t.Fatalf("rack figure has %d tables, want 2", len(fig.Tables))
		}
		for _, tbl := range fig.Tables {
			if len(tbl.Rows) != len(ns) || len(tbl.Columns) != 1+len(rackPolicyNames) {
				t.Fatalf("table %q is %d×%d, want %d×%d",
					tbl.Title, len(tbl.Rows), len(tbl.Columns), len(ns), 1+len(rackPolicyNames))
			}
		}
		if len(fig.Claims) != 4 {
			t.Fatalf("rack figure has %d claims, want 4", len(fig.Claims))
		}
		return fig
	}
	a, b := gen(), gen()
	for ti := range a.Tables {
		for ri := range a.Tables[ti].Rows {
			for ci := range a.Tables[ti].Rows[ri] {
				if a.Tables[ti].Rows[ri][ci] != b.Tables[ti].Rows[ri][ci] {
					t.Fatalf("rack figure diverged run-to-run: table %q cell [%d][%d]: %v vs %v",
						a.Tables[ti].Title, ri, ci, a.Tables[ti].Rows[ri][ci], b.Tables[ti].Rows[ri][ci])
				}
			}
		}
	}
}

// TestRackSmoke is the `make rack-smoke` CI gate: the rack figure at its
// full 1000-node size (reduced completion counts), generated twice, every
// table cell byte-identical — the depth-indexed balancer must stay
// deterministic at the scale that motivated it. The per-size memory cap in
// figRackOver keeps the 1000-node cells sequential, so the test stays inside
// race-detector memory budgets.
func TestRackSmoke(t *testing.T) {
	o := tinyOptions()
	o.Measure = 1500
	gen := func() Figure {
		fig, err := figRackOver(o, []int{1000})
		if err != nil {
			t.Fatal(err)
		}
		for _, tbl := range fig.Tables {
			if len(tbl.Rows) != 1 {
				t.Fatalf("table %q has %d rows, want 1", tbl.Title, len(tbl.Rows))
			}
		}
		return fig
	}
	a, b := gen(), gen()
	for ti := range a.Tables {
		for ci := range a.Tables[ti].Rows[0] {
			if a.Tables[ti].Rows[0][ci] != b.Tables[ti].Rows[0][ci] {
				t.Fatalf("1000-node rack figure diverged run-to-run: table %q cell [%d]: %v vs %v",
					a.Tables[ti].Title, ci, a.Tables[ti].Rows[0][ci], b.Tables[ti].Rows[0][ci])
			}
		}
	}
}

// TestHierFigure checks the hierarchical figure's structure and determinism
// at toy datacenter sizes: registered ID, all four tables populated, the
// five-claim set present, and identical cells run-to-run.
func TestHierFigure(t *testing.T) {
	if _, ok := Figures["hier"]; !ok {
		t.Fatal("hier figure not registered")
	}
	o := tinyOptions()
	o.Measure = 1500
	ns := []int{16, 24} // multiples of HierRacks
	gen := func() Figure {
		fig, err := figHierOver(o, ns)
		if err != nil {
			t.Fatal(err)
		}
		if len(fig.Tables) != 4 {
			t.Fatalf("hier figure has %d tables, want 4", len(fig.Tables))
		}
		for _, tbl := range fig.Tables[:2] {
			if len(tbl.Rows) != len(ns) || len(tbl.Columns) != 1+len(hierTopologies) {
				t.Fatalf("table %q is %d×%d, want %d×%d",
					tbl.Title, len(tbl.Rows), len(tbl.Columns), len(ns), 1+len(hierTopologies))
			}
		}
		for _, tbl := range fig.Tables[2:] {
			if len(tbl.Rows) != 2 {
				t.Fatalf("table %q has %d rows, want 2", tbl.Title, len(tbl.Rows))
			}
		}
		if len(fig.Claims) != 5 {
			t.Fatalf("hier figure has %d claims, want 5", len(fig.Claims))
		}
		return fig
	}
	a, b := gen(), gen()
	for ti := range a.Tables {
		for ri := range a.Tables[ti].Rows {
			for ci := range a.Tables[ti].Rows[ri] {
				if a.Tables[ti].Rows[ri][ci] != b.Tables[ti].Rows[ri][ci] {
					t.Fatalf("hier figure diverged run-to-run: table %q cell [%d][%d]: %v vs %v",
						a.Tables[ti].Title, ri, ci, a.Tables[ti].Rows[ri][ci], b.Tables[ti].Rows[ri][ci])
				}
			}
		}
	}
}

// TestHierSmoke is the `make hier-smoke` CI gate: the hierarchical figure at
// its full 1000-node size (reduced completion counts), generated twice,
// every table cell byte-identical — the stacked dispatch tier must stay as
// deterministic as the flat balancer at the scale that motivated it. The
// per-size memory cap in figHierOver keeps the 1000-node cells sequential,
// so the test stays inside race-detector memory budgets.
func TestHierSmoke(t *testing.T) {
	o := tinyOptions()
	o.Measure = 1500
	gen := func() Figure {
		fig, err := figHierOver(o, []int{1000})
		if err != nil {
			t.Fatal(err)
		}
		for _, tbl := range fig.Tables[:2] {
			if len(tbl.Rows) != 1 {
				t.Fatalf("table %q has %d rows, want 1", tbl.Title, len(tbl.Rows))
			}
		}
		return fig
	}
	a, b := gen(), gen()
	for ti := range a.Tables {
		for ri := range a.Tables[ti].Rows {
			for ci := range a.Tables[ti].Rows[ri] {
				if a.Tables[ti].Rows[ri][ci] != b.Tables[ti].Rows[ri][ci] {
					t.Fatalf("1000-node hier figure diverged run-to-run: table %q cell [%d][%d]: %v vs %v",
						a.Tables[ti].Title, ri, ci, a.Tables[ti].Rows[ri][ci], b.Tables[ti].Rows[ri][ci])
				}
			}
		}
	}
}
