package core

import (
	"fmt"

	"rpcvalet/internal/arrival"
	"rpcvalet/internal/machine"
	"rpcvalet/internal/report"
	"rpcvalet/internal/workload"
)

func init() {
	register("burst", figBurst)
	FigureIDs = append(FigureIDs, "burst")
}

// BurstLoadFraction is the fixed mean load (fraction of estimated capacity)
// the burst study offers under every arrival process. With the default
// MMPP2 shape (short-term rate 1.67× the mean) bursts then run right at
// chip capacity: the single queue rides them out while partitioned per-core
// queues, each fed a random share, transiently overload — the regime that
// separates the designs. Higher mean loads push the bursts into sustained
// whole-chip overload, where every design drowns alike and the comparison
// flattens.
const BurstLoadFraction = 0.6

// figBurst is the arrival-process study the paper does not run: every NI
// dispatch mode × every traffic model at the same mean load, on the
// synthetic-exponential workload. Poisson is the baseline; MMPP2 offers the
// same mean rate in bursts that transiently exceed capacity; deterministic
// arrivals remove all arrival variance; lognormal gaps clump arrivals.
//
// The point of the figure is that the single-queue advantage is not a
// Poisson artifact — burstiness *widens* the gap between ModeSingleQueue and
// ModePartitioned, because a shared queue absorbs a burst with the whole
// chip while a partitioned system drains it core by core.
func figBurst(o Options) (Figure, error) {
	wl := workload.SyntheticExp()
	rate := BurstLoadFraction * CapacityMRPS(machine.Defaults(), wl)

	// A p99 under MMPP2 only converges once the run spans many modulation
	// cycles (one cycle ≈ 60 µs ≈ 720 completions at this study's rate), so
	// clamp the sample to the quick-options floor even when the caller asks
	// for a faster, smaller run.
	if o.Measure < 10000 {
		o.Warmup, o.Measure = 1000, 10000
	}

	type combo struct {
		mode machine.Mode
		kind string
	}
	var combos []combo
	for _, mode := range hwModes {
		for _, kind := range arrival.Names {
			combos = append(combos, combo{mode, kind})
		}
	}

	points, err := runPoints(len(combos), o.Workers, func(i int) (CurvePoint, error) {
		c := combos[i]
		cfg := machineBase(o, wl, c.mode)
		arr, err := arrival.ByName(c.kind, rate)
		if err != nil {
			return CurvePoint{}, err
		}
		cfg.Arrival = arr
		cfg.RateMRPS = rate
		// Same seed for every combo: the comparison is paired — each
		// (mode, arrival) cell sees statistically identical draws.
		if cfg.MaxSimTime == 0 {
			cfg.MaxSimTime = machineCapSimTime(cfg, rate)
		}
		res, err := machine.Run(cfg)
		if err != nil {
			return CurvePoint{}, fmt.Errorf("burst %s/%s: %w", modeShort(c.mode), c.kind, err)
		}
		return CurvePoint{
			RateMRPS:       rate,
			ThroughputMRPS: res.ThroughputMRPS,
			P50:            res.Latency.P50,
			P99:            res.Latency.P99,
			Mean:           res.Latency.Mean,
			SLONanos:       res.SLONanos,
			MeetsSLO:       res.MeetsSLO,
			ServiceMean:    res.ServiceMeanNanos,
		}, nil
	})
	if err != nil {
		return Figure{}, err
	}
	p99 := make(map[machine.Mode]map[string]float64, len(hwModes))
	mean := make(map[machine.Mode]map[string]float64, len(hwModes))
	for i, c := range combos {
		if p99[c.mode] == nil {
			p99[c.mode] = map[string]float64{}
			mean[c.mode] = map[string]float64{}
		}
		p99[c.mode][c.kind] = points[i].P99
		mean[c.mode][c.kind] = points[i].Mean
	}

	fig := Figure{
		ID: "burst",
		Title: fmt.Sprintf("Burst study: arrival process × dispatch mode at %.0f%% load (%s, %.1f MRPS)",
			BurstLoadFraction*100, wl.Name, rate),
	}
	cols := func(prefix string) []string {
		c := []string{"arrival"}
		for _, m := range hwModes {
			c = append(c, prefix+modeShort(m))
		}
		return c
	}
	tbl := report.NewTable("p99 latency (ns) by arrival process and mode", cols("p99ns_")...)
	ratioTbl := report.NewTable("p99 inflation over Poisson by mode", cols("x_")...)
	for _, kind := range arrival.Names {
		row, ratioRow := []any{kind}, []any{kind}
		for _, m := range hwModes {
			row = append(row, p99[m][kind])
			ratioRow = append(ratioRow, safeRatio(p99[m][kind], p99[m]["poisson"]))
		}
		tbl.AddRowf(row...)
		ratioTbl.AddRowf(ratioRow...)
	}
	meanTbl := report.NewTable("mean latency (ns) by arrival process and mode", cols("meanns_")...)
	for _, kind := range arrival.Names {
		row := []any{kind}
		for _, m := range hwModes {
			row = append(row, mean[m][kind])
		}
		meanTbl.AddRowf(row...)
	}
	fig.Tables = append(fig.Tables, tbl, ratioTbl, meanTbl)

	// Claim (a): MMPP2 bursts hurt the partitioned system far more than the
	// single queue — its p99 inflation over Poisson must be well above
	// RPCValet's.
	sqInfl := safeRatio(p99[machine.ModeSingleQueue]["mmpp2"], p99[machine.ModeSingleQueue]["poisson"])
	ptInfl := safeRatio(p99[machine.ModePartitioned]["mmpp2"], p99[machine.ModePartitioned]["poisson"])
	fig.Claims = append(fig.Claims, Claim{
		Name:     "MMPP2 inflates 16x1 p99 far more than 1x16",
		Paper:    "single queue absorbs bursts the partitioned system cannot (§2.2 intuition)",
		Measured: fmt.Sprintf("16x1 ×%.2f vs 1x16 ×%.2f over Poisson", ptInfl, sqInfl),
		Ok:       ptInfl > 1.25*sqInfl && ptInfl > 1.5,
	})

	// Claim (b): removing arrival variance tightens every mode's tail below
	// its Poisson run — latency tails need variance somewhere to exist.
	allTighter := true
	detail := ""
	for _, m := range hwModes {
		d, p := p99[m]["det"], p99[m]["poisson"]
		if d >= p {
			allTighter = false
		}
		detail += fmt.Sprintf("%s %.0f/%.0f ", modeShort(m), d, p)
	}
	fig.Claims = append(fig.Claims, Claim{
		Name:     "deterministic arrivals tighten every mode's p99 below Poisson",
		Paper:    "D/·/· waits below M/·/· at equal load (queueing theory)",
		Measured: "det/poisson ns: " + detail,
		Ok:       allTighter,
	})
	return fig, nil
}
