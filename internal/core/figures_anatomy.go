package core

import (
	"fmt"

	"rpcvalet/internal/machine"
	"rpcvalet/internal/report"
	"rpcvalet/internal/trace"
	"rpcvalet/internal/workload"
)

func init() {
	register("anatomy", figAnatomy)
	FigureIDs = append(FigureIDs, "anatomy")
}

// anatomyPlans are the dispatch plans whose tails the figure dissects: the
// partitioned baseline, the paper's bounded single queue, and the ideal
// single queue.
var anatomyPlans = []string{"16x1", "jbsq2", "1x16"}

// anatomyTailK is how many slowest requests each run retains with full span
// breakdowns. At DefaultOptions' 50k measured completions the set is the
// slowest ~0.13% — the p99.9 request and everything above it.
const anatomyTailK = 64

// anatomyLoad is the offered-load fraction of estimated capacity. 0.75 is
// past the partitioned knee for the GEV workload (its tail is already
// queueing-dominated) while the single queue still runs comfortably.
const anatomyLoad = 0.75

// tailAnatomy aggregates a tail-sample set into its wait/service split.
type tailAnatomy struct {
	res       machine.Result
	waitShare float64 // Σ queue-wait / Σ (arrive→complete) over the tail set
	svcShare  float64
}

func tailShares(spans []trace.Span) (wait, svc float64) {
	var w, s, tot float64
	for _, sp := range spans {
		w += sp.QueueWaitNs()
		s += sp.ServiceNs()
		tot += sp.TotalNs()
	}
	if tot == 0 {
		return 0, 0
	}
	return w / tot, s / tot
}

// figAnatomy reproduces the paper's core argument at the level of individual
// requests (§2.2, §3): under partitioned dispatch the slowest requests are
// slow because they *waited* behind someone else's long request; a single
// queue (ideal or JBSQ-bounded) removes the wait, leaving the tail dominated
// by the requests' own service time. The figure runs the heavy-tailed GEV
// workload at the same offered rate under each plan with tail capture on,
// then decomposes the retained p99.9-and-above spans into queue-wait vs
// service legs.
func figAnatomy(o Options) (Figure, error) {
	wl := workload.SyntheticGEV()
	rate := anatomyLoad * CapacityMRPS(machine.Defaults(), wl)

	runs, err := runPoints(len(anatomyPlans), o.Workers, func(i int) (tailAnatomy, error) {
		pl, err := machine.ParsePlan(anatomyPlans[i])
		if err != nil {
			return tailAnatomy{}, err
		}
		cfg := machineBase(o, wl, machine.ModeSingleQueue)
		cfg.Params.Plan = pl
		cfg.RateMRPS = rate
		cfg.TailSamples = anatomyTailK
		cfg.MaxSimTime = machineCapSimTime(cfg, rate)
		res, err := machine.Run(cfg)
		if err != nil {
			return tailAnatomy{}, fmt.Errorf("anatomy %s: %w", anatomyPlans[i], err)
		}
		w, s := tailShares(res.TailSpans)
		return tailAnatomy{res: res, waitShare: w, svcShare: s}, nil
	})
	if err != nil {
		return Figure{}, err
	}
	byPlan := make(map[string]tailAnatomy, len(runs))
	for i, r := range runs {
		byPlan[anatomyPlans[i]] = r
	}

	summary := report.NewTable("anatomy-summary",
		"plan", "rate_mrps", "thr_mrps", "p99_ns", "p999_ns",
		"tail_k", "tail_wait_share", "tail_service_share", "slowest_total_ns", "slowest_wait_ns")
	tables := []*report.Table{summary}
	for i, spec := range anatomyPlans {
		r := runs[i]
		slowest := trace.Span{}
		if len(r.res.TailSpans) > 0 {
			slowest = r.res.TailSpans[0]
		}
		summary.AddRow(spec,
			fmt.Sprintf("%.3f", rate),
			fmt.Sprintf("%.3f", r.res.ThroughputMRPS),
			fmt.Sprintf("%.0f", r.res.Latency.P99),
			fmt.Sprintf("%.0f", r.res.Latency.P999),
			fmt.Sprint(len(r.res.TailSpans)),
			fmt.Sprintf("%.3f", r.waitShare),
			fmt.Sprintf("%.3f", r.svcShare),
			fmt.Sprintf("%.0f", slowest.TotalNs()),
			fmt.Sprintf("%.0f", slowest.QueueWaitNs()),
		)
		top := r.res.TailSpans
		if len(top) > 8 {
			top = top[:8]
		}
		tables = append(tables, report.SpanTable("anatomy-tail-"+spec, top))
	}

	part, jbsq, single := byPlan["16x1"], byPlan["jbsq2"], byPlan["1x16"]
	claims := []Claim{
		{
			Name:     "16x1 tail is queue-wait dominated",
			Paper:    "partitioned tails come from waiting behind long requests (§2.2)",
			Measured: fmt.Sprintf("tail wait share %.2f", part.waitShare),
			Ok:       part.waitShare > 0.5,
		},
		{
			Name:     "1x16 collapses the tail's wait share",
			Paper:    "single-queue tail latency is the request's own service time (§3)",
			Measured: fmt.Sprintf("wait share %.2f vs 16x1's %.2f", single.waitShare, part.waitShare),
			Ok:       single.waitShare < 0.5*part.waitShare,
		},
		{
			Name:     "JBSQ(2) matches the single-queue anatomy",
			Paper:    "bounded queues approach the single-queue ideal (§4.3)",
			Measured: fmt.Sprintf("wait share %.2f vs 16x1's %.2f", jbsq.waitShare, part.waitShare),
			Ok:       jbsq.waitShare < 0.5*part.waitShare,
		},
	}

	return Figure{
		ID:     "anatomy",
		Title:  fmt.Sprintf("Tail anatomy: wait vs service in the %d slowest requests (GEV @ %.0f%% load)", anatomyTailK, anatomyLoad*100),
		Tables: tables,
		Claims: claims,
	}, nil
}
