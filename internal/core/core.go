// Package core is the experiment harness of the reproduction: it drives the
// machine model (internal/machine) and the queueing models
// (internal/queueing) through the paper's evaluation (§2.2, §6), producing
// the data behind every figure as report tables plus pass/fail checks of the
// paper's headline claims.
//
// Each figure has a generator registered in Figures; cmd/rpcvalet-bench and
// the repository's bench_test.go both call into this package, so the CLI,
// the benchmarks, and EXPERIMENTS.md all describe the same code paths.
package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"rpcvalet/internal/cluster"
	"rpcvalet/internal/machine"
	"rpcvalet/internal/report"
	"rpcvalet/internal/sim"
	"rpcvalet/internal/workload"
)

// Options scales the experiments: full-size runs for figure regeneration,
// quick runs for the benchmark suite and smoke tests.
type Options struct {
	Warmup    int // machine-run completions discarded
	Measure   int // machine-run completions measured
	QGen      int // queueing-model requests measured per point
	Points    int // points per latency-throughput curve
	KneeIters int // bisection steps refining each curve's SLO knee
	Seed      uint64
	Workers   int // concurrent simulations (each is single-threaded); 0 = NumCPU
	// Shards splits every cluster simulation across parallel event engines
	// (cluster.Config.Shards): ≤ 1 runs the historical single-clock engine,
	// byte-identical to every pinned result. With Shards > 1 each cluster run
	// occupies a team of goroutines (node shards + the balancer shard), so
	// sweeps budget their fan-out accordingly: Workers stays the cap on
	// *total* goroutines, and the number of simulations in flight shrinks to
	// Workers / team size (see BudgetWorkers). Machine-only figures ignore it.
	Shards int
}

// DefaultOptions sizes runs for figure regeneration (seconds per figure).
// Sweeps fan out over all CPUs: each point is a single-threaded simulation,
// so NumCPU workers is the throughput-optimal cap (results are
// worker-count-independent).
func DefaultOptions() Options {
	return Options{Warmup: 5000, Measure: 50000, QGen: 100000, Points: 10, KneeIters: 5, Seed: 42, Workers: runtime.NumCPU()}
}

// QuickOptions sizes runs for benchmarks and smoke tests.
func QuickOptions() Options {
	return Options{Warmup: 1000, Measure: 10000, QGen: 20000, Points: 6, KneeIters: 3, Seed: 42, Workers: runtime.NumCPU()}
}

// Claim is one checkable statement from the paper, with the measured
// counterpart from this reproduction.
type Claim struct {
	Name     string // what is being checked
	Paper    string // what the paper reports
	Measured string // what this reproduction measured
	Ok       bool   // whether the measured value matches the claim's shape
}

func (c Claim) String() string {
	status := "OK "
	if !c.Ok {
		status = "MISS"
	}
	return fmt.Sprintf("[%s] %s: paper=%s measured=%s", status, c.Name, c.Paper, c.Measured)
}

// Figure is the reproduced data for one paper figure or table.
type Figure struct {
	ID     string
	Title  string
	Tables []*report.Table
	Claims []Claim
}

// CurvePoint is one measured point of a latency-throughput curve.
type CurvePoint struct {
	RateMRPS       float64
	ThroughputMRPS float64
	P50, P99, Mean float64 // ns
	SLONanos       float64
	MeetsSLO       bool
	ServiceMean    float64 // ns
}

// Curve is a labeled series of points for one configuration.
type Curve struct {
	Label  string
	Points []CurvePoint
	// Knee, if non-nil, is a bisection-refined point at the highest
	// offered rate that still meets the SLO (see RefineKnee). It sharpens
	// ThroughputUnderSLO beyond the coarse grid's resolution.
	Knee *CurvePoint
}

// ThroughputUnderSLO returns the best throughput among points meeting their
// SLO (including the refined knee, when present), or 0 if none do.
func (c Curve) ThroughputUnderSLO() float64 {
	best := 0.0
	for _, p := range c.Points {
		if p.MeetsSLO && p.ThroughputMRPS > best {
			best = p.ThroughputMRPS
		}
	}
	if c.Knee != nil && c.Knee.MeetsSLO && c.Knee.ThroughputMRPS > best {
		best = c.Knee.ThroughputMRPS
	}
	return best
}

// RefineKnee bisects between the curve's last SLO-meeting grid rate and the
// first violating one, running `iters` extra simulations to localize the
// knee. The coarse grid bounds throughput-under-SLO to one grid step; the
// paper's 1.1–1.4× mode ratios need finer resolution than a 10-point grid
// provides. The refined point is stored on the returned curve.
func RefineKnee(base machine.Config, c Curve, iters, workers int) (Curve, error) {
	lastOK, firstBad := -1, -1
	for i, p := range c.Points {
		if p.MeetsSLO {
			lastOK = i
		} else if lastOK == i-1 && lastOK >= 0 && firstBad == -1 {
			firstBad = i
		}
	}
	if lastOK == -1 || firstBad == -1 {
		// Nothing to refine: either no point meets the SLO or the whole
		// grid does (the knee lies beyond the grid).
		return c, nil
	}
	lo, hi := c.Points[lastOK].RateMRPS, c.Points[firstBad].RateMRPS
	best := c.Points[lastOK]
	for it := 0; it < iters; it++ {
		mid := (lo + hi) / 2
		pts, err := MachineSweep(base, []float64{mid}, c.Label+"-knee", workers)
		if err != nil {
			return c, err
		}
		p := pts.Points[0]
		if p.MeetsSLO {
			best = p
			lo = mid
		} else {
			hi = mid
		}
	}
	c.Knee = &best
	return c, nil
}

// MaxTailRatioVs returns the largest p99(other)/p99(c) over point pairs at
// equal offered rate where both systems still meet their SLO — the paper's
// "up to N× lower tail latency before saturation" metric.
func (c Curve) MaxTailRatioVs(other Curve) float64 {
	ratio := 0.0
	n := len(c.Points)
	if len(other.Points) < n {
		n = len(other.Points)
	}
	for i := 0; i < n; i++ {
		a, b := c.Points[i], other.Points[i]
		if a.RateMRPS != b.RateMRPS || !a.MeetsSLO {
			continue
		}
		if a.P99 > 0 && b.P99/a.P99 > ratio {
			ratio = b.P99 / a.P99
		}
	}
	return ratio
}

// CapacityMRPS estimates the machine's saturation throughput for a workload:
// cores / (mean handler time + fixed per-request core overhead).
func CapacityMRPS(p machine.Params, wl workload.Profile) float64 {
	return float64(p.Cores) / (wl.MeanService() + p.CoreOverheadNanos()) * 1000
}

// RateGrid builds n offered-load points spanning lo..hi fractions of the
// estimated capacity.
func RateGrid(capacity float64, lo, hi float64, n int) []float64 {
	if n < 2 {
		return []float64{capacity * hi}
	}
	rates := make([]float64, n)
	for i := range rates {
		f := lo + (hi-lo)*float64(i)/float64(n-1)
		rates[i] = capacity * f
	}
	return rates
}

// GeometricRateGrid spaces n points geometrically between lo and hi
// fractions of capacity — denser at low loads, which resolves the knee of a
// system that saturates far below capacity (the software single queue).
func GeometricRateGrid(capacity float64, lo, hi float64, n int) []float64 {
	if n < 2 {
		return []float64{capacity * hi}
	}
	rates := make([]float64, n)
	for i := range rates {
		f := lo * math.Pow(hi/lo, float64(i)/float64(n-1))
		rates[i] = capacity * f
	}
	return rates
}

// RunCost reports how many goroutines one cluster.Run of cfg occupies: 1 on
// the serial single-clock path, the whole shard team (node shards plus the
// balancer shard) on the parallel path. A hierarchical sharded run teams one
// engine per rack plus the global balancer's. Sweep layers divide their
// worker cap by it so Options.Workers stays a true bound on total running
// goroutines.
func RunCost(cfg cluster.Config) int {
	if cfg.Hierarchical() {
		if cfg.Shards > 1 {
			return cfg.Racks + 1
		}
		return 1
	}
	if shards := min(cfg.Shards, cfg.Nodes); shards > 1 {
		return shards + 1
	}
	return 1
}

// BudgetWorkers converts a sweep-level worker cap (0 = NumCPU) into the
// number of simulations allowed in flight when each simulation itself runs
// costPerRun goroutines. At least one simulation always proceeds, so a
// Shards setting wider than the cap degrades to sequential points rather
// than failing.
func BudgetWorkers(workers, costPerRun int) int {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if costPerRun > 1 {
		workers /= costPerRun
	}
	return max(workers, 1)
}

// runPoints is the shared worker pool behind every sweep in the harness: it
// evaluates point(i) for i in [0, n) concurrently — each point is an
// independent, single-threaded, deterministic simulation — and returns the
// results in index order. The first error aborts the whole sweep.
func runPoints[P any](n, workers int, point func(i int) (P, error)) ([]P, error) {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	points := make([]P, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			points[i], errs[i] = point(i)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return points, nil
}

// machineCapSimTime caps a sweep point's virtual time generously: ten times
// the time the run needs at its actual completion rate — the offered rate
// below saturation, the capacity above it.
func machineCapSimTime(cfg machine.Config, rate float64) sim.Duration {
	est := CapacityMRPS(cfg.Params, cfg.Workload)
	if rate < est {
		est = rate
	}
	need := float64(cfg.Warmup+cfg.Measure) / est * 1000 // ns
	return sim.FromNanos(need * 10)
}

// MachineSweep runs the machine at every rate (concurrently, on runPoints)
// and returns the curve in rate order.
func MachineSweep(base machine.Config, rates []float64, label string, workers int) (Curve, error) {
	points, err := runPoints(len(rates), workers, func(i int) (CurvePoint, error) {
		rate := rates[i]
		cfg := base
		cfg.RateMRPS = rate
		cfg.Seed = base.Seed + uint64(i)*1_000_003
		if cfg.MaxSimTime == 0 {
			cfg.MaxSimTime = machineCapSimTime(cfg, rate)
		}
		res, err := machine.Run(cfg)
		if err != nil {
			return CurvePoint{}, fmt.Errorf("sweep %s at %.2f MRPS: %w", label, rate, err)
		}
		return CurvePoint{
			RateMRPS:       rate,
			ThroughputMRPS: res.ThroughputMRPS,
			P50:            res.Latency.P50,
			P99:            res.Latency.P99,
			Mean:           res.Latency.Mean,
			SLONanos:       res.SLONanos,
			MeetsSLO:       res.MeetsSLO,
			ServiceMean:    res.ServiceMeanNanos,
		}, nil
	})
	if err != nil {
		return Curve{}, err
	}
	return Curve{Label: label, Points: points}, nil
}

// ratioClaim builds a Claim comparing a measured ratio against an expected
// band, formatting both for the report.
func ratioClaim(name, paper string, measured, lo, hi float64) Claim {
	return Claim{
		Name:     name,
		Paper:    paper,
		Measured: fmt.Sprintf("%.2f×", measured),
		Ok:       measured >= lo && measured <= hi,
	}
}

// Generator produces one figure's data at the given scale.
type Generator func(Options) (Figure, error)

// Figures maps figure IDs ("2a", "7c", "table1", ...) to their generators.
// The map is populated by the figure files' init functions.
var Figures = map[string]Generator{}

// FigureIDs lists the registered figures in presentation order.
var FigureIDs = []string{"2a", "2b", "2c", "6", "7a", "7b", "7c", "8", "9", "table1"}

func register(id string, g Generator) {
	if _, dup := Figures[id]; dup {
		panic(fmt.Sprintf("core: duplicate figure %q", id))
	}
	Figures[id] = g
}
