package core

import (
	"fmt"

	"rpcvalet/internal/arrival"
	"rpcvalet/internal/cluster"
	"rpcvalet/internal/machine"
	"rpcvalet/internal/metrics"
	"rpcvalet/internal/report"
	"rpcvalet/internal/sim"
	"rpcvalet/internal/workload"
)

func init() {
	register("transient", figTransient)
	FigureIDs = append(FigureIDs, "transient")
}

// Transient-study geometry. The pulse is a 2× load step held for
// TransientPulse, landing mid-run so the timeline captures calm → overload →
// recovery; epochs are fixed at TransientEpoch so recovery is measured in
// comparable 25 µs units across modes.
const (
	TransientBaseLoad   = 0.55 // fraction of capacity offered outside the pulse
	TransientFactor     = 2.0  // pulse rate multiplier (drives the chip past capacity)
	TransientPulseStart = 400 * sim.Microsecond
	TransientPulse      = 200 * sim.Microsecond
	TransientEpoch      = 25 * sim.Microsecond
	// TransientMaxEpochs bounds the timeline well above the run's ~58
	// epochs so a mode that drains slowly can never trip the recorder's
	// epoch-doubling and silently change its granularity mid-comparison.
	TransientMaxEpochs = 128
	// transientRecoveryBand: an epoch counts as recovered when its p99 is
	// back within this factor of the pre-pulse baseline.
	transientRecoveryBand = 1.5
)

// recoveryEpochs measures how many epochs after the pulse ends the system
// needs before its per-epoch p99 returns (and stays, for the remainder of
// the timeline) within band× the pre-pulse baseline. It returns the epoch
// count and the baseline used. A system that never recovers within the
// timeline reports the full remaining epoch count.
func recoveryEpochs(tl metrics.Timeline, pulseEndNs float64, band float64) (int, float64) {
	end := tl.EpochIndex(pulseEndNs)
	start := tl.EpochIndex(TransientPulseStart.Nanos())
	if end < 0 || start <= 2 {
		return 0, 0
	}
	// Baseline: median per-epoch p99 over the settled pre-pulse window
	// (skip the first two epochs, which include cold-start fill).
	var pre []float64
	for i := 2; i < start; i++ {
		if tl.Epochs[i].Latency.Count > 0 {
			pre = append(pre, tl.Epochs[i].Latency.P99)
		}
	}
	if len(pre) == 0 {
		return 0, 0
	}
	baseline := median(pre)
	limit := band * baseline
	// Find the first epoch at/after the pulse end from which every later
	// epoch with data stays under the limit.
	recoveredAt := len(tl.Epochs)
	for i := len(tl.Epochs) - 1; i >= end; i-- {
		e := tl.Epochs[i]
		if e.Latency.Count > 0 && e.Latency.P99 > limit {
			break
		}
		recoveredAt = i
	}
	return recoveredAt - end, baseline
}

// median returns the middle element (upper-middle for even lengths) without
// mutating the input.
func median(v []float64) float64 {
	c := append([]float64(nil), v...)
	for i := 1; i < len(c); i++ { // insertion sort; the slices are tiny
		for j := i; j > 0 && c[j] < c[j-1]; j-- {
			c[j], c[j-1] = c[j-1], c[j]
		}
	}
	return c[len(c)/2]
}

// peakP99 returns the highest per-epoch p99 at/after fromNs.
func peakP99(tl metrics.Timeline, fromNs float64) float64 {
	peak := 0.0
	from := tl.EpochIndex(fromNs)
	if from < 0 {
		return 0
	}
	for _, e := range tl.Epochs[from:] {
		if e.Latency.P99 > peak {
			peak = e.Latency.P99
		}
	}
	return peak
}

// figTransient is the time-resolved study the steady-state figures cannot
// express, built on the epoch-sliced metrics layer:
//
//   - Load step (machine): a 2× Poisson rate pulse drives the chip past
//     capacity for 200 µs. The single-queue NI dispatch absorbs the burst
//     with the whole chip and drains the backlog collectively; the
//     partitioned 16×1 baseline splits the backlog unevenly across private
//     core queues, so its tail stays elevated for more epochs after the
//     pulse ends.
//
//   - Degraded node (cluster): one of four nodes runs at 2/3 speed (1.5×
//     service slowdown). A queue-aware JSQ front end routes around the slow
//     node; blind random routing keeps overloading it, so the JSQ-over-random
//     p99 margin widens well beyond its uniform-speed value.
func figTransient(o Options) (Figure, error) {
	wl := workload.SyntheticExp()
	baseRate := TransientBaseLoad * CapacityMRPS(machine.Defaults(), wl)

	// The pulse geometry is fixed in virtual time, so the run length must
	// cover calm + pulse + recovery regardless of the caller's scale: at
	// ~0.64×capacity mean rate, 18k completions span ≈1.25 ms ≈ 50 epochs.
	const warmup, measure = 500, 17500

	pulse := arrival.NewPulse(TransientPulseStart.Nanos(), TransientPulse.Nanos(), TransientFactor)
	pulseEndNs := TransientPulseStart.Nanos() + TransientPulse.Nanos()

	runMode := func(mode machine.Mode) (machine.Result, error) {
		p := machine.Defaults()
		p.Mode = mode
		cfg := machine.Config{
			Params:    p,
			Workload:  wl,
			RateMRPS:  baseRate,
			Arrival:   arrival.NewModulated(arrival.PoissonAtMRPS(baseRate), pulse),
			Warmup:    warmup,
			Measure:   measure,
			Seed:      o.Seed,
			Epoch:     TransientEpoch,
			MaxEpochs: TransientMaxEpochs,
		}
		cfg.MaxSimTime = machineCapSimTime(cfg, baseRate)
		return machine.Run(cfg)
	}

	type stepOut struct {
		mode machine.Mode
		res  machine.Result
	}
	stepModes := []machine.Mode{machine.ModeSingleQueue, machine.ModePartitioned}
	stepRes, err := runPoints(len(stepModes), o.Workers, func(i int) (stepOut, error) {
		res, err := runMode(stepModes[i])
		if err != nil {
			return stepOut{}, fmt.Errorf("transient step %s: %w", modeShort(stepModes[i]), err)
		}
		return stepOut{stepModes[i], res}, nil
	})
	if err != nil {
		return Figure{}, err
	}
	sqTL := stepRes[0].res.Timeline
	ptTL := stepRes[1].res.Timeline

	// Degraded-node cluster: {random, jsq2} × {uniform, degraded}, paired
	// seeds and loads, concurrently.
	clusterPoint := func(polName string, degraded bool) (cluster.Result, error) {
		pol, err := cluster.PolicyByName(polName)
		if err != nil {
			return cluster.Result{}, err
		}
		base := clusterBase(o, wl, machine.ModeSingleQueue, pol)
		base.Warmup = 1000
		base.Measure = o.Measure
		if base.Measure < 8000 {
			base.Measure = 8000
		}
		base.RateMRPS = 0.7 * ClusterCapacityMRPS(base)
		base.Epoch = TransientEpoch
		if degraded {
			base.Faults = []cluster.NodeFault{{Node: 0, Slowdown: 1.5}}
		}
		est := ClusterCapacityMRPS(base)
		need := float64(base.Warmup+base.Measure) / est * 1000
		base.MaxSimTime = sim.FromNanos(need * 20)
		return cluster.Run(base)
	}
	type cell struct {
		pol      string
		degraded bool
	}
	cells := []cell{{"random", false}, {"jsq2", false}, {"random", true}, {"jsq2", true}}
	clRes, err := runPoints(len(cells), o.Workers, func(i int) (cluster.Result, error) {
		res, err := clusterPoint(cells[i].pol, cells[i].degraded)
		if err != nil {
			return cluster.Result{}, fmt.Errorf("transient cluster %s/degraded=%v: %w", cells[i].pol, cells[i].degraded, err)
		}
		return res, nil
	})
	if err != nil {
		return Figure{}, err
	}
	randUni, jsqUni, randDeg, jsqDeg := clRes[0], clRes[1], clRes[2], clRes[3]

	fig := Figure{
		ID: "transient",
		Title: fmt.Sprintf("Transient study: 2× load pulse (%gus+%gus) and a 1.5× degraded node, %s workload",
			TransientPulseStart.Micros(), TransientPulse.Micros(), wl.Name),
	}

	// Table 1: side-by-side per-epoch p99/utilization through the pulse.
	// Rows pair by *time*, not index: with TransientMaxEpochs both modes
	// share a 25 µs granularity and this is the identity pairing, but the
	// lookup stays correct even if one timeline were ever re-sliced.
	cmp := report.NewTable(
		fmt.Sprintf("Load pulse: per-epoch p99 (ns) and utilization, %.1f MRPS base ×%.1f pulse",
			baseRate, TransientFactor),
		"epoch", "t_us", "p99ns_1x16", "p99ns_16x1", "util_1x16", "util_16x1")
	for i, e := range sqTL.Epochs {
		pi := ptTL.EpochIndex(e.StartNanos)
		if pi < 0 {
			break
		}
		pt := ptTL.Epochs[pi]
		cmp.AddRowf(i, e.StartNanos/1000, e.Latency.P99, pt.Latency.P99, e.Utilization, pt.Utilization)
	}
	fig.Tables = append(fig.Tables, cmp)
	// Table 2: the full timeline of the single-queue run through the
	// shared renderer (depth, throughput — the production-style view).
	fig.Tables = append(fig.Tables, report.TimelineTable("RPCValet 1x16 timeline through the pulse", sqTL))

	sqRec, sqBase := recoveryEpochs(sqTL, pulseEndNs, transientRecoveryBand)
	ptRec, ptBase := recoveryEpochs(ptTL, pulseEndNs, transientRecoveryBand)
	// Compare recovery in time, not raw epoch counts, so the claim stays
	// meaningful even if the two timelines ever carried different epoch
	// lengths (they share 25 µs under TransientMaxEpochs).
	sqRecNs := float64(sqRec) * sqTL.EpochNanos
	ptRecNs := float64(ptRec) * ptTL.EpochNanos
	sqPeak := peakP99(sqTL, TransientPulseStart.Nanos())
	ptPeak := peakP99(ptTL, TransientPulseStart.Nanos())

	rec := report.NewTable("Recovery after the pulse (epochs of 25us to re-enter 1.5x pre-pulse baseline)",
		"mode", "baseline_p99ns", "peak_p99ns", "recovery_epochs")
	rec.AddRowf("1x16", sqBase, sqPeak, sqRec)
	rec.AddRowf("16x1", ptBase, ptPeak, ptRec)
	fig.Tables = append(fig.Tables, rec)

	// Table 3: degraded-node cluster margins.
	marginUni := safeRatio(randUni.Latency.P99, jsqUni.Latency.P99)
	marginDeg := safeRatio(randDeg.Latency.P99, jsqDeg.Latency.P99)
	deg := report.NewTable("Degraded node (node 0 at 1.5x service): p99 (ns) by policy",
		"rack", "random", "jsq2", "random/jsq2")
	deg.AddRowf("uniform", randUni.Latency.P99, jsqUni.Latency.P99, marginUni)
	deg.AddRowf("degraded", randDeg.Latency.P99, jsqDeg.Latency.P99, marginDeg)
	fig.Tables = append(fig.Tables, deg)

	fig.Claims = append(fig.Claims,
		Claim{
			Name:     "1x16 recovers from a 2x pulse in fewer epochs than 16x1",
			Paper:    "single queue drains a burst with the whole chip; partitioned queues drain core by core (§2.2 intuition)",
			Measured: fmt.Sprintf("1x16 %d epochs (%.0fus) vs 16x1 %d epochs (%.0fus); baselines %.0f/%.0f ns", sqRec, sqRecNs/1000, ptRec, ptRecNs/1000, sqBase, ptBase),
			Ok:       sqRecNs < ptRecNs,
		},
		Claim{
			Name:     "16x1 pulse peak p99 exceeds 1x16's",
			Paper:    "random split overloads some partitions far past the mean during the burst",
			Measured: fmt.Sprintf("16x1 peak %.0f ns vs 1x16 peak %.0f ns", ptPeak, sqPeak),
			Ok:       ptPeak > sqPeak,
		},
		Claim{
			Name:     "JSQ-over-random margin widens under one 1.5x-degraded node",
			Paper:    "queue-aware balancing routes around slow servers; blind routing cannot",
			Measured: fmt.Sprintf("degraded %.2f× vs uniform %.2f×", marginDeg, marginUni),
			Ok:       marginDeg > marginUni && marginDeg > 1.15,
		},
	)
	return fig, nil
}
