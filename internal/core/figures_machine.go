package core

import (
	"fmt"

	"rpcvalet/internal/machine"
	"rpcvalet/internal/queueing"
	"rpcvalet/internal/report"
	"rpcvalet/internal/workload"
)

func init() {
	register("7a", fig7a)
	register("7b", fig7b)
	register("7c", fig7c)
	register("8", fig8)
	register("9", fig9)
}

// machineBase assembles a machine config for one mode/workload at the
// harness's measurement scale.
func machineBase(o Options, wl workload.Profile, mode machine.Mode) machine.Config {
	p := machine.Defaults()
	p.Mode = mode
	return machine.Config{
		Params:   p,
		Workload: wl,
		Warmup:   o.Warmup,
		Measure:  o.Measure,
		Seed:     o.Seed,
	}
}

// hwModes are the three hardware queuing configurations of §6.1, ordered as
// the paper's legends list them.
var hwModes = []machine.Mode{machine.ModePartitioned, machine.ModeGrouped, machine.ModeSingleQueue}

func modeShort(m machine.Mode) string {
	switch m {
	case machine.ModeSingleQueue:
		return "1x16"
	case machine.ModeGrouped:
		return "4x4"
	case machine.ModePartitioned:
		return "16x1"
	case machine.ModeSoftware:
		return "sw"
	}
	return m.String()
}

// sweepModes runs one workload across several modes on a shared rate grid,
// then bisects each curve's SLO knee so throughput-under-SLO comparisons are
// not limited to the grid's resolution.
func sweepModes(o Options, wl workload.Profile, modes []machine.Mode, loFrac, hiFrac float64) (map[machine.Mode]Curve, []float64, error) {
	cap := CapacityMRPS(machine.Defaults(), wl)
	rates := RateGrid(cap, loFrac, hiFrac, o.Points)
	out := make(map[machine.Mode]Curve, len(modes))
	for _, mode := range modes {
		base := machineBase(o, wl, mode)
		c, err := MachineSweep(base, rates, modeShort(mode), o.Workers)
		if err != nil {
			return nil, nil, err
		}
		if c, err = RefineKnee(base, c, o.KneeIters, o.Workers); err != nil {
			return nil, nil, err
		}
		out[mode] = c
	}
	return out, rates, nil
}

// curveTable renders p99-vs-throughput series for several modes.
func curveTable(title string, modes []machine.Mode, curves map[machine.Mode]Curve) *report.Table {
	cols := []string{"rate_mrps"}
	for _, m := range modes {
		cols = append(cols, "thr_"+modeShort(m), "p99ns_"+modeShort(m))
	}
	tbl := report.NewTable(title, cols...)
	n := len(curves[modes[0]].Points)
	for i := 0; i < n; i++ {
		row := []any{curves[modes[0]].Points[i].RateMRPS}
		for _, m := range modes {
			p := curves[m].Points[i]
			row = append(row, p.ThroughputMRPS, p.P99)
		}
		tbl.AddRowf(row...)
	}
	return tbl
}

// sloTable summarizes throughput under SLO per mode.
func sloTable(title string, modes []machine.Mode, curves map[machine.Mode]Curve) *report.Table {
	tbl := report.NewTable(title, "mode", "thr_under_slo_mrps", "slo_ns", "mean_service_ns")
	for _, m := range modes {
		c := curves[m]
		last := c.Points[len(c.Points)-1]
		tbl.AddRowf(modeShort(m), c.ThroughputUnderSLO(), last.SLONanos, last.ServiceMean)
	}
	return tbl
}

// fig7a reproduces Fig 7a: HERD under the three hardware configurations.
func fig7a(o Options) (Figure, error) {
	curves, _, err := sweepModes(o, workload.HERD(), hwModes, 0.1, 1.02)
	if err != nil {
		return Figure{}, err
	}
	sq, gr, pt := curves[machine.ModeSingleQueue], curves[machine.ModeGrouped], curves[machine.ModePartitioned]
	sThr, gThr, pThr := sq.ThroughputUnderSLO(), gr.ThroughputUnderSLO(), pt.ThroughputUnderSLO()

	fig := Figure{
		ID:    "7a",
		Title: "Fig 7a: HERD, hardware queuing systems",
		Tables: []*report.Table{
			curveTable("Fig 7a: HERD p99 vs throughput", hwModes, curves),
			sloTable("Fig 7a summary: throughput under 10×S̄ SLO", hwModes, curves),
		},
	}
	sbar := sq.Points[0].ServiceMean
	fig.Claims = []Claim{
		{
			Name:     "HERD mean service time S̄",
			Paper:    "~550 ns (330 ns handler + overhead)",
			Measured: fmt.Sprintf("%.0f ns", sbar),
			Ok:       sbar > 480 && sbar < 620,
		},
		ratioClaim("1x16 vs 4x4 throughput under SLO", "1.16×", safeRatio(sThr, gThr), 1.0, 1.5),
		ratioClaim("1x16 vs 16x1 throughput under SLO", "1.18×", safeRatio(sThr, pThr), 1.02, 1.8),
		ratioClaim("max tail reduction before saturation", "up to 4×", sq.MaxTailRatioVs(pt), 1.5, 1e9),
	}
	return fig, nil
}

// fig7b reproduces Fig 7b: Masstree gets with 1% scan interference.
func fig7b(o Options) (Figure, error) {
	curves, rates, err := sweepModes(o, workload.Masstree(), hwModes, 0.15, 0.92)
	if err != nil {
		return Figure{}, err
	}
	sq, gr, pt := curves[machine.ModeSingleQueue], curves[machine.ModeGrouped], curves[machine.ModePartitioned]

	fig := Figure{
		ID:    "7b",
		Title: "Fig 7b: Masstree (99% gets + 1% scans), 12.5µs SLO on gets",
		Tables: []*report.Table{
			curveTable("Fig 7b: Masstree get p99 vs throughput", hwModes, curves),
			sloTable("Fig 7b summary: throughput under 12.5µs SLO", hwModes, curves),
		},
	}
	fig.Claims = []Claim{
		{
			Name:     "16x1 violates the SLO even at the lowest load",
			Paper:    "cannot meet SLO even at 2 MRPS",
			Measured: fmt.Sprintf("p99=%.1fµs at %.1f MRPS", pt.Points[0].P99/1000, rates[0]),
			Ok:       !pt.Points[0].MeetsSLO,
		},
		// Our 4×4 degrades harder than the paper's: with only four cores
		// per group, overlapping scans (P[≥3 concurrent] ≈ 1%) starve a
		// group right at the 99th percentile, so the measured advantage
		// of full-chip balancing is larger than the paper's 1.37×.
		ratioClaim("1x16 vs 4x4 throughput under SLO", "1.37×", safeRatio(sq.ThroughputUnderSLO(), gr.ThroughputUnderSLO()), 1.1, 4.5),
		{
			Name:     "1x16 throughput under SLO",
			Paper:    "4.1 MRPS",
			Measured: fmt.Sprintf("%.2f MRPS", sq.ThroughputUnderSLO()),
			Ok:       sq.ThroughputUnderSLO() > 2 && sq.ThroughputUnderSLO() < 6.5,
		},
	}
	return fig, nil
}

// fig7c reproduces Fig 7c: the fixed and GEV synthetic distributions under
// the three hardware configurations.
func fig7c(o Options) (Figure, error) {
	fig := Figure{ID: "7c", Title: "Fig 7c: synthetic fixed and GEV distributions"}
	expect := map[string]struct {
		vs4x4, vs16x1 string
		lo4, hi4      float64
		lo16, hi16    float64
	}{
		// The 16×1 bands are wide at the top: with a heavy-tailed
		// service our partitioned baseline degrades harder than the
		// paper's (EXPERIMENTS.md discusses tail-sampling sensitivity).
		"fixed": {"1.13×", "1.2×", 1.0, 1.4, 1.05, 1.8},
		"gev":   {"1.17×", "1.4×", 1.0, 1.6, 1.1, 4.5},
	}
	for _, kind := range []string{"fixed", "gev"} {
		wl, err := workload.Synthetic(kind)
		if err != nil {
			return Figure{}, err
		}
		curves, _, err := sweepModes(o, wl, hwModes, 0.1, 1.02)
		if err != nil {
			return Figure{}, err
		}
		sq, gr, pt := curves[machine.ModeSingleQueue], curves[machine.ModeGrouped], curves[machine.ModePartitioned]
		fig.Tables = append(fig.Tables,
			curveTable(fmt.Sprintf("Fig 7c (%s): p99 vs throughput", kind), hwModes, curves),
			sloTable(fmt.Sprintf("Fig 7c (%s) summary", kind), hwModes, curves),
		)
		e := expect[kind]
		fig.Claims = append(fig.Claims,
			ratioClaim(kind+": 1x16 vs 4x4 under SLO", e.vs4x4,
				safeRatio(sq.ThroughputUnderSLO(), gr.ThroughputUnderSLO()), e.lo4, e.hi4),
			ratioClaim(kind+": 1x16 vs 16x1 under SLO", e.vs16x1,
				safeRatio(sq.ThroughputUnderSLO(), pt.ThroughputUnderSLO()), e.lo16, e.hi16),
		)
		if kind == "gev" {
			fig.Claims = append(fig.Claims,
				ratioClaim("gev: max tail reduction before saturation", "up to 4×",
					sq.MaxTailRatioVs(pt), 1.5, 1e9))
		}
	}
	return fig, nil
}

// fig8 reproduces Fig 8: hardware versus software single-queue across the
// four synthetic distributions.
func fig8(o Options) (Figure, error) {
	fig := Figure{ID: "8", Title: "Fig 8: 1x16 hardware vs software (MCS) load balancing"}
	modes := []machine.Mode{machine.ModeSingleQueue, machine.ModeSoftware}
	for _, kind := range distOrder {
		wl, err := workload.Synthetic(kind)
		if err != nil {
			return Figure{}, err
		}
		// Geometric spacing: the software system saturates near the MCS
		// lock's ≈5.3 MRPS ceiling, far below chip capacity, so the
		// interesting region is the low-rate end.
		cap := CapacityMRPS(machine.Defaults(), wl)
		rates := GeometricRateGrid(cap, 0.05, 0.95, o.Points)
		curves := make(map[machine.Mode]Curve, len(modes))
		for _, mode := range modes {
			base := machineBase(o, wl, mode)
			c, err := MachineSweep(base, rates, modeShort(mode), o.Workers)
			if err != nil {
				return Figure{}, err
			}
			if c, err = RefineKnee(base, c, o.KneeIters, o.Workers); err != nil {
				return Figure{}, err
			}
			curves[mode] = c
		}
		hw, sw := curves[machine.ModeSingleQueue], curves[machine.ModeSoftware]
		fig.Tables = append(fig.Tables,
			curveTable(fmt.Sprintf("Fig 8 (%s): p99 vs throughput, hw vs sw", kind), modes, curves))
		// The paper measures 2.3–2.7×. Our hardware path has lower fixed
		// overhead than the authors', so it sustains SLO closer to its
		// physical capacity and the measured ratio runs higher; the
		// qualitative result — the lock serializes the software design
		// several times below hardware — is what the band checks.
		fig.Claims = append(fig.Claims,
			ratioClaim(kind+": hw vs sw throughput under SLO", "2.3–2.7×",
				safeRatio(hw.ThroughputUnderSLO(), sw.ThroughputUnderSLO()), 1.9, 6.0))
	}
	return fig, nil
}

// fig9 reproduces Fig 9: the full-machine RPCValet (1×16) against the
// theoretical single-queue model, using §6.3's methodology — the measured S̄
// is split into a distributed part D (the synthetic extra, mean 300 ns) and
// a fixed remainder S̄−D.
func fig9(o Options) (Figure, error) {
	fig := Figure{ID: "9", Title: "Fig 9: RPCValet vs theoretical 1x16 queueing model"}
	unit := unitDists()
	for _, kind := range distOrder {
		wl, err := workload.Synthetic(kind)
		if err != nil {
			return Figure{}, err
		}
		cap := CapacityMRPS(machine.Defaults(), wl)
		rates := RateGrid(cap, 0.1, 0.95, o.Points)
		simCurve, err := MachineSweep(machineBase(o, wl, machine.ModeSingleQueue), rates, kind, o.Workers)
		if err != nil {
			return Figure{}, err
		}
		sbar := simCurve.Points[0].ServiceMean

		// Model: D = 300 ns distributed per §5's construction; the rest
		// of S̄ is fixed (the paper's conservative assumption).
		svc := queueing.SplitService(unit[kind], workload.SyntheticExtra, sbar)
		tbl := report.NewTable(
			fmt.Sprintf("Fig 9 (%s): p99 (ns) vs load, machine vs model (S̄=%.0fns)", kind, sbar),
			"load", "machine_p99", "model_p99")
		var modelCurve Curve
		for i, r := range rates {
			rho := r * sbar / 1000 / float64(machine.Defaults().Cores)
			if rho >= 0.99 {
				rho = 0.99
			}
			res, err := queueing.Run(queueing.Config{
				Queues: 1, ServersPerQueue: machine.Defaults().Cores,
				Service: svc, Load: rho,
				Warmup: o.QGen / 10, Measure: o.QGen,
				Seed: o.Seed + uint64(i),
			})
			if err != nil {
				return Figure{}, err
			}
			mp := CurvePoint{
				RateMRPS:       r,
				ThroughputMRPS: res.Throughput * 1000,
				P99:            res.Latency.P99,
				SLONanos:       10 * sbar,
				MeetsSLO:       res.Latency.P99 <= 10*sbar,
			}
			modelCurve.Points = append(modelCurve.Points, mp)
			tbl.AddRowf(rho, simCurve.Points[i].P99, mp.P99)
		}
		fig.Tables = append(fig.Tables, tbl)

		simThr := simCurve.ThroughputUnderSLO()
		modelThr := modelCurve.ThroughputUnderSLO()
		gap := 0.0
		if modelThr > 0 {
			gap = (1 - simThr/modelThr) * 100
		}
		// Near the SLO knee the p99 of a heavy-tailed distribution is
		// noisy at finite sample sizes, so the measured gap can land on
		// either side of zero; the claim checks its magnitude.
		fig.Claims = append(fig.Claims, Claim{
			Name:     kind + ": machine-vs-model throughput gap under SLO",
			Paper:    "3–15% (worst case GEV)",
			Measured: fmt.Sprintf("%.1f%%", gap),
			Ok:       gap >= -16 && gap <= 22,
		})
	}
	return fig, nil
}

// safeRatio returns a/b, or 0 when b is 0 (e.g. a mode that never met SLO).
func safeRatio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
