package core

import (
	"fmt"

	"rpcvalet/internal/machine"
	"rpcvalet/internal/ni"
	"rpcvalet/internal/report"
	"rpcvalet/internal/sim"
	"rpcvalet/internal/workload"
)

// Ablations quantify the design choices the paper discusses qualitatively:
// the outstanding-requests threshold (§4.3), the sensitivity to dispatcher
// indirection latency (the argument for on-chip NI integration, §3.2), the
// RSS keying granularity, and the dispatch policy hook.

func init() {
	register("ablation-outstanding", ablationOutstanding)
	register("ablation-dispatcher", ablationDispatcher)
	register("ablation-rss", ablationRSS)
	register("ablation-policy", ablationPolicy)
	FigureIDs = append(FigureIDs,
		"ablation-outstanding", "ablation-dispatcher", "ablation-rss", "ablation-policy")
}

// ablationOutstanding sweeps the per-core outstanding threshold K. The paper
// sets K=2 to hide the dispatch round trip; K=1 is the strict single-queue
// system with an execution bubble.
func ablationOutstanding(o Options) (Figure, error) {
	wl := workload.HERD() // sub-µs service: the case where the bubble shows
	cap := CapacityMRPS(machine.Defaults(), wl)
	rate := cap * 0.9
	tbl := report.NewTable("Ablation: outstanding threshold K (HERD @90% load)",
		"K", "thr_mrps", "p99_ns", "mean_ns")
	var thr []float64
	for _, k := range []int{1, 2, 3, 4} {
		cfg := machineBase(o, wl, machine.ModeSingleQueue)
		cfg.Params.Threshold = k
		cfg.RateMRPS = rate
		res, err := machine.Run(cfg)
		if err != nil {
			return Figure{}, err
		}
		tbl.AddRowf(k, res.ThroughputMRPS, res.Latency.P99, res.Latency.Mean)
		thr = append(thr, res.ThroughputMRPS)
	}
	return Figure{
		ID:     "ablation-outstanding",
		Title:  "Outstanding-requests threshold",
		Tables: []*report.Table{tbl},
		Claims: []Claim{{
			Name:     "K=2 recovers the K=1 bubble",
			Paper:    "K=2 offsets the bubble; marginal gains for sub-µs RPCs (§4.3)",
			Measured: fmt.Sprintf("thr K1=%.2f K2=%.2f MRPS", thr[0], thr[1]),
			Ok:       thr[1] >= thr[0]*0.995,
		}},
	}, nil
}

// ablationDispatcher injects extra backend→dispatcher latency to test the
// integration argument: ns-scale indirection is free, µs-scale (I/O-attached
// NI, ~1.5µs PCIe round trip) destroys the benefit.
func ablationDispatcher(o Options) (Figure, error) {
	wl := workload.HERD()
	cap := CapacityMRPS(machine.Defaults(), wl)
	rate := cap * 0.75
	tbl := report.NewTable("Ablation: dispatcher indirection latency (HERD @75% load)",
		"extra_ns", "thr_mrps", "p99_ns", "mean_ns")
	var p99s []float64
	extras := []sim.Duration{0, 10 * sim.Nanosecond, 50 * sim.Nanosecond,
		200 * sim.Nanosecond, sim.FromNanos(1500)}
	for _, extra := range extras {
		cfg := machineBase(o, wl, machine.ModeSingleQueue)
		cfg.Params.DispatchExtra = extra
		cfg.RateMRPS = rate
		res, err := machine.Run(cfg)
		if err != nil {
			return Figure{}, err
		}
		tbl.AddRowf(extra.Nanos(), res.ThroughputMRPS, res.Latency.P99, res.Latency.Mean)
		p99s = append(p99s, res.Latency.P99)
	}
	return Figure{
		ID:     "ablation-dispatcher",
		Title:  "Dispatcher indirection latency",
		Tables: []*report.Table{tbl},
		Claims: []Claim{
			{
				Name:     "few-ns indirection is negligible",
				Paper:    "adds just a few ns end to end (§4.3)",
				Measured: fmt.Sprintf("p99 +%.0fns at +50ns indirection", p99s[2]-p99s[0]),
				Ok:       p99s[2] <= p99s[0]*1.15,
			},
			{
				Name:     "PCIe-scale indirection hurts",
				Paper:    "I/O-attached NIs are too far for µs-scale balancing (§3.2)",
				Measured: fmt.Sprintf("p99 %.0f→%.0fns at +1.5µs", p99s[0], p99s[len(p99s)-1]),
				Ok:       p99s[len(p99s)-1] > p99s[0]*1.5,
			},
		},
	}, nil
}

// ablationRSS compares per-flow RSS hashing (static skew across 200 flows)
// with per-message uniform assignment for the 16×1 baseline.
func ablationRSS(o Options) (Figure, error) {
	wl := workload.SyntheticExp()
	cap := CapacityMRPS(machine.Defaults(), wl)
	rate := cap * 0.6
	tbl := report.NewTable("Ablation: 16x1 RSS keying (synthetic-exp @60% load)",
		"keying", "thr_mrps", "p99_ns")
	var p99s []float64
	for _, byFlow := range []bool{false, true} {
		cfg := machineBase(o, wl, machine.ModePartitioned)
		cfg.Params.RSSByFlow = byFlow
		cfg.RateMRPS = rate
		res, err := machine.Run(cfg)
		if err != nil {
			return Figure{}, err
		}
		name := "uniform-per-message"
		if byFlow {
			name = "hash-per-flow"
		}
		tbl.AddRowf(name, res.ThroughputMRPS, res.Latency.P99)
		p99s = append(p99s, res.Latency.P99)
	}
	return Figure{
		ID:     "ablation-rss",
		Title:  "RSS keying granularity",
		Tables: []*report.Table{tbl},
		Claims: []Claim{{
			Name:     "flow-hash skew does not beat uniform splitting",
			Paper:    "RSS spreads blindly; imbalance is inherent (§2.3)",
			Measured: fmt.Sprintf("p99 uniform=%.0f flow=%.0f ns", p99s[0], p99s[1]),
			Ok:       p99s[1] >= p99s[0]*0.9,
		}},
	}, nil
}

// ablationPolicy compares dispatch policies on the single-queue design.
// With the outstanding threshold above 1, the arbiter is not quite
// immaterial: a blind policy can queue a request behind a long-running RPC
// while another core is idle, so occupancy-aware dispatch (the paper's
// "occupancy feedback", §6.1) trims the tail under heavy-tailed service.
func ablationPolicy(o Options) (Figure, error) {
	wl := workload.SyntheticGEV()
	cap := CapacityMRPS(machine.Defaults(), wl)
	rate := cap * 0.8
	policies := []struct {
		name string
		mk   func() ni.Policy
	}{
		{"first-available", func() ni.Policy { return ni.FirstAvailable{} }},
		{"round-robin", func() ni.Policy { return &ni.RoundRobin{} }},
		{"least-outstanding-rr", func() ni.Policy { return &ni.LeastOutstandingRR{} }},
	}
	tbl := report.NewTable("Ablation: dispatch policy (synthetic-gev @80% load)",
		"policy", "thr_mrps", "p99_ns")
	var p99s []float64
	for _, pol := range policies {
		cfg := machineBase(o, wl, machine.ModeSingleQueue)
		cfg.Params.Policy = pol.mk()
		cfg.RateMRPS = rate
		res, err := machine.Run(cfg)
		if err != nil {
			return Figure{}, err
		}
		tbl.AddRowf(pol.name, res.ThroughputMRPS, res.Latency.P99)
		p99s = append(p99s, res.Latency.P99)
	}
	blindBest := p99s[0]
	if p99s[1] < blindBest {
		blindBest = p99s[1]
	}
	aware := p99s[2]
	return Figure{
		ID:     "ablation-policy",
		Title:  "Dispatch policy",
		Tables: []*report.Table{tbl},
		Claims: []Claim{{
			Name:     "occupancy-aware dispatch never loses to blind arbitration",
			Paper:    "occupancy feedback eliminates excess queueing (§6.1)",
			Measured: fmt.Sprintf("p99 aware=%.0f vs best blind=%.0f ns", aware, blindBest),
			Ok:       aware <= blindBest*1.05,
		}},
	}, nil
}
