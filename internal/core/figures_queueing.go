package core

import (
	"fmt"
	"math"

	"rpcvalet/internal/dist"
	"rpcvalet/internal/machine"
	"rpcvalet/internal/queueing"
	"rpcvalet/internal/report"
	"rpcvalet/internal/rng"
	"rpcvalet/internal/workload"
)

func init() {
	register("2a", fig2a)
	register("2b", fig2b)
	register("2c", fig2c)
	register("6", fig6)
	register("table1", table1)
}

// theoryLoads builds the offered-load grid used by the §2.2 queueing plots.
func theoryLoads(n int) []float64 {
	loads := make([]float64, n)
	for i := range loads {
		loads[i] = 0.05 + 0.90*float64(i)/float64(n-1)
	}
	return loads
}

// unitDists returns the four §2.2 service distributions normalized to mean 1.
func unitDists() map[string]dist.Sampler {
	return map[string]dist.Sampler{
		"fixed":   dist.Fixed{Value: 1},
		"uniform": dist.Uniform{Lo: 0, Hi: 2},
		"exp":     dist.Exponential{MeanValue: 1},
		"gev":     dist.Normalized(dist.GEV{Loc: 363, Scale: 100, Shape: 0.65}),
	}
}

var distOrder = []string{"fixed", "uniform", "exp", "gev"}

// fig2a reproduces Fig 2a: 99th-percentile latency versus load for five Q×U
// systems under exponential service times (values in multiples of S̄).
func fig2a(o Options) (Figure, error) {
	shapes := []struct{ q, u int }{{1, 16}, {2, 8}, {4, 4}, {8, 2}, {16, 1}}
	loads := theoryLoads(o.Points)

	tbl := report.NewTable("Fig 2a: p99 latency (×S̄) vs load, exponential service",
		"load", "1x16", "2x8", "4x4", "8x2", "16x1")
	curves := make([]queueing.Curve, len(shapes))
	for i, s := range shapes {
		cfg := queueing.Config{
			Queues: s.q, ServersPerQueue: s.u,
			Service: dist.Exponential{MeanValue: 1},
			Warmup:  o.QGen / 10, Measure: o.QGen, Seed: o.Seed,
		}
		c, err := queueing.Sweep(cfg, loads, fmt.Sprintf("%dx%d", s.q, s.u))
		if err != nil {
			return Figure{}, err
		}
		curves[i] = c
	}
	for li, load := range loads {
		row := []any{load}
		for _, c := range curves {
			row = append(row, c.Points[li].P99)
		}
		tbl.AddRowf(row...)
	}

	// Claim: performance is proportional to U — at high load the p99
	// ordering is monotone from 1×16 (best) to 16×1 (worst).
	hi := len(loads) - 2 // one step before the saturation point for stability
	monotone := true
	for i := 1; i < len(curves); i++ {
		if curves[i].Points[hi].P99 < curves[i-1].Points[hi].P99 {
			monotone = false
		}
	}
	return Figure{
		ID:     "2a",
		Title:  "Queueing systems under exponential service",
		Tables: []*report.Table{tbl},
		Claims: []Claim{{
			Name:     "p99 ordering 1x16 < 2x8 < 4x4 < 8x2 < 16x1 at high load",
			Paper:    "performance proportional to U (Fig 2a)",
			Measured: fmt.Sprintf("monotone=%v at load %.2f", monotone, loads[hi]),
			Ok:       monotone,
		}},
	}, nil
}

// fig2bc is the shared engine for Fig 2b (1×16) and Fig 2c (16×1): the four
// service distributions on one queueing shape.
func fig2bc(o Options, q, u int, id, title string) (Figure, error) {
	loads := theoryLoads(o.Points)
	dists := unitDists()

	tbl := report.NewTable(title, append([]string{"load"}, distOrder...)...)
	curves := map[string]queueing.Curve{}
	for _, name := range distOrder {
		cfg := queueing.Config{
			Queues: q, ServersPerQueue: u, Service: dists[name],
			Warmup: o.QGen / 10, Measure: o.QGen, Seed: o.Seed,
		}
		c, err := queueing.Sweep(cfg, loads, name)
		if err != nil {
			return Figure{}, err
		}
		curves[name] = c
	}
	for li, load := range loads {
		row := []any{load}
		for _, name := range distOrder {
			row = append(row, curves[name].Points[li].P99)
		}
		tbl.AddRowf(row...)
	}

	// Claim: tail ordering by service-time variance at moderate load.
	mid := len(loads) / 2
	ordered := true
	for i := 1; i < len(distOrder); i++ {
		a := curves[distOrder[i-1]].Points[mid].P99
		b := curves[distOrder[i]].Points[mid].P99
		if b < a*0.98 {
			ordered = false
		}
	}
	fig := Figure{
		ID:     id,
		Title:  title,
		Tables: []*report.Table{tbl},
		Claims: []Claim{{
			Name:     "TL(fixed) < TL(uniform) < TL(exp) < TL(gev)",
			Paper:    "higher variance ⇒ higher tail before saturation (§2.2)",
			Measured: fmt.Sprintf("ordered=%v at load %.2f", ordered, loads[mid]),
			Ok:       ordered,
		}},
	}

	// For the pair of figures, also check the 16×1-vs-1×16 throughput gap
	// under the 10×S̄ SLO. The paper reports 25–73% across distributions;
	// our GEV (infinite variance) sits at the extreme of that trend, so
	// the acceptance bands are per-distribution and require the loss to
	// grow with variance.
	if id == "2c" {
		bands := map[string][2]float64{
			"fixed":   {10, 45},
			"uniform": {20, 60},
			"exp":     {35, 80},
			"gev":     {60, 100},
		}
		for _, name := range distOrder {
			cfg := queueing.Config{
				Queues: 1, ServersPerQueue: 16, Service: dists[name],
				Warmup: o.QGen / 10, Measure: o.QGen, Seed: o.Seed,
			}
			single, err := queueing.Sweep(cfg, loads, name)
			if err != nil {
				return Figure{}, err
			}
			sThr := queueing.ThroughputUnderSLO(single, 10)
			pThr := queueing.ThroughputUnderSLO(curves[name], 10)
			if sThr <= 0 {
				continue
			}
			lossPct := (1 - pThr/sThr) * 100
			band := bands[name]
			fig.Claims = append(fig.Claims, Claim{
				Name:     fmt.Sprintf("16x1 throughput loss under SLO, %s", name),
				Paper:    "25–73% lower than 1x16, growing with variance (§2.2)",
				Measured: fmt.Sprintf("%.0f%%", lossPct),
				Ok:       lossPct >= band[0] && lossPct <= band[1],
			})
		}
	}
	return fig, nil
}

func fig2b(o Options) (Figure, error) {
	return fig2bc(o, 1, 16, "2b", "Fig 2b: Model 1x16, p99 (×S̄) vs load, four distributions")
}

func fig2c(o Options) (Figure, error) {
	return fig2bc(o, 16, 1, "2c", "Fig 2c: Model 16x1, p99 (×S̄) vs load, four distributions")
}

// fig6 reproduces Fig 6: the PDFs of the modeled RPC processing-time
// distributions (synthetic, HERD-like, Masstree-like gets).
func fig6(o Options) (Figure, error) {
	const samples = 200000
	pdf := func(d dist.Sampler, lo, hi float64, bins int, seed uint64) []float64 {
		r := rng.New(seed)
		counts := make([]float64, bins)
		w := (hi - lo) / float64(bins)
		for i := 0; i < samples; i++ {
			v := d.Sample(r)
			if v < lo || v >= hi {
				continue
			}
			counts[int((v-lo)/w)]++
		}
		for i := range counts {
			counts[i] /= samples
		}
		return counts
	}

	fig := Figure{ID: "6", Title: "Fig 6: modeled RPC processing time distributions"}

	// 6a: the four synthetic profiles on a 0–1200 ns axis.
	synth := report.NewTable("Fig 6a: synthetic PDFs (bin width 25ns)",
		"bin_ns", "fixed", "uniform", "exp", "gev")
	var cols [][]float64
	for _, kind := range distOrder {
		p, err := workload.Synthetic(kind)
		if err != nil {
			return Figure{}, err
		}
		cols = append(cols, pdf(p.Classes[0].Service, 0, 1200, 48, o.Seed))
	}
	for b := 0; b < 48; b++ {
		synth.AddRowf(b*25, cols[0][b], cols[1][b], cols[2][b], cols[3][b])
	}
	fig.Tables = append(fig.Tables, synth)

	// 6b: HERD on the same axis.
	herd := report.NewTable("Fig 6b: HERD-like PDF (bin width 25ns)", "bin_ns", "p")
	for b, v := range pdf(workload.HERD().Classes[0].Service, 0, 1200, 48, o.Seed+1) {
		herd.AddRowf(b*25, v)
	}
	fig.Tables = append(fig.Tables, herd)

	// 6c: Masstree gets on a 0–4000 ns axis.
	mt := report.NewTable("Fig 6c: Masstree-like get PDF (bin width 100ns)", "bin_ns", "p")
	for b, v := range pdf(workload.MasstreeGets(), 0, 4000, 40, o.Seed+2) {
		mt.AddRowf(b*100, v)
	}
	fig.Tables = append(fig.Tables, mt)

	check := func(name string, d dist.Sampler, want, tol float64) Claim {
		m := d.Mean()
		return Claim{
			Name:     name + " mean",
			Paper:    fmt.Sprintf("%.0f ns", want),
			Measured: fmt.Sprintf("%.0f ns", m),
			Ok:       math.Abs(m-want) <= tol,
		}
	}
	gevProfile, _ := workload.Synthetic("gev")
	fig.Claims = []Claim{
		check("synthetic-gev", gevProfile.Classes[0].Service, 600, 8),
		check("herd", workload.HERD().Classes[0].Service, 330, 5),
		check("masstree-get", workload.MasstreeGets(), 1250, 15),
	}
	return fig, nil
}

// table1 prints the live machine defaults alongside Table 1's parameters.
func table1(Options) (Figure, error) {
	p := machine.Defaults()
	tbl := report.NewTable("Table 1: modeled system parameters", "component", "value")
	tbl.AddRow("Cores", fmt.Sprintf("%d @ %.0f GHz", p.Cores, p.Mesh.FreqGHz))
	tbl.AddRow("NI backends", fmt.Sprintf("%d (mesh edge)", p.Backends))
	tbl.AddRow("Interconnect", fmt.Sprintf("%dx%d mesh, %dB links, %d cycles/hop",
		p.Mesh.Width, p.Mesh.Height, p.Mesh.LinkBytes, p.Mesh.CyclesPerHop))
	tbl.AddRow("L1 latency", fmt.Sprintf("%d cycles", p.Mem.L1Cycles))
	tbl.AddRow("LLC latency", fmt.Sprintf("%d cycles + NUCA distance", p.Mem.LLCCycles))
	tbl.AddRow("Memory", fmt.Sprintf("%.0f ns", p.Mem.DRAMNanos))
	tbl.AddRow("MTU / cache block", fmt.Sprintf("%d B", p.Domain.MTU))
	tbl.AddRow("Messaging domain", fmt.Sprintf("N=%d nodes, S=%d slots, max msg %d B",
		p.Domain.Nodes, p.Domain.Slots, p.Domain.MaxMsgSize))
	tbl.AddRow("Messaging footprint", fmt.Sprintf("%.1f MB/node",
		float64(p.Domain.FootprintBytes())/(1<<20)))
	tbl.AddRow("Outstanding threshold", fmt.Sprintf("%d per core", p.Threshold))
	tbl.AddRow("Core overhead", fmt.Sprintf("%.0f ns/request", p.CoreOverheadNanos()))
	return Figure{ID: "table1", Title: "System parameters", Tables: []*report.Table{tbl}}, nil
}
