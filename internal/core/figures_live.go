package core

import (
	"fmt"
	"time"

	"rpcvalet/internal/live"
	"rpcvalet/internal/machine"
	"rpcvalet/internal/report"
	"rpcvalet/internal/workload"
)

func init() {
	register("live", figLive)
	FigureIDs = append(FigureIDs, "live")
}

// liveLoad is the offered fraction of the live runtime's estimated capacity:
// high enough that queueing separates the shapes, low enough that the open
// loop stays below saturation on a noisy host.
const liveLoad = 0.65

// livePlans are the dispatch shapes the live study compares, in report
// order: the shared single queue, its bounded-dispatch JBSQ variant, and the
// partitioned RSS baseline. The JBSQ bound is 1 — the strict single-queue
// ideal — because the live runtime has no dispatch bubble for a threshold of
// 2 to hide (dispatch costs ~µs against a service floor of tens of µs), and
// with heavy-tailed scaled service JBSQ(2) genuinely strands one committed
// request behind each monster draw while the shared queue never strands
// work. That stranding is a real property of n=2, not noise; the "tracks
// the ideal" cell wants n=1.
var livePlans = []string{"1x16", "jbsq1", "16x1"}

// liveDuration sizes each cell's offered-load window to target the harness's
// measurement scale, clamped so a full bench run stays in seconds and a tiny
// test run still collects a real sample.
func liveDuration(o Options, rateMRPS float64) time.Duration {
	d := time.Duration(float64(o.Measure) / rateMRPS * 1000) // ns per completion target
	if d < 250*time.Millisecond {
		d = 250 * time.Millisecond
	}
	if d > 3*time.Second {
		d = 3 * time.Second
	}
	return d
}

// figLive cross-validates the paper's qualitative claims on real hardware:
// actual goroutines serving synthesized service times on the wall clock
// (internal/live), the same move nanoPU and Dagger make when they measure
// the single-queue-versus-partitioned argument instead of simulating it.
// Wall-clock noise rules out calibrated magnitudes (DESIGN.md §6), so every
// claim is an ordering with a generous band, on the workload where the
// effect dwarfs the noise: high-variance GEV service.
//
// The cells run sequentially, never through runPoints: each is a wall-clock
// measurement that must own the machine's cores for its window — concurrent
// cells would contend and corrupt each other.
func figLive(o Options) (Figure, error) {
	wl := workload.SyntheticGEV()
	base := live.Config{
		Workload: wl,
		Workers:  live.DefaultWorkers,
		Seed:     o.Seed,
	}
	base.RateMRPS = liveLoad * live.CapacityMRPS(base)
	base.Duration = liveDuration(o, base.RateMRPS)

	results := make(map[string]live.Result, len(livePlans))
	for _, spec := range livePlans {
		pl, err := machine.ParsePlan(spec)
		if err != nil {
			return Figure{}, err
		}
		cfg := base
		cfg.Plan = pl
		res, err := live.Run(cfg)
		if err != nil {
			return Figure{}, fmt.Errorf("live %s: %w", spec, err)
		}
		results[spec] = res
	}
	ref := results[livePlans[0]]

	fig := Figure{
		ID: "live",
		Title: fmt.Sprintf("Live runtime: %d goroutine workers (%s emulation, service ×%.0f), %s workload, %.0f ms per shape",
			ref.Workers, ref.Emulation, ref.ServiceScale, wl.Name, float64(base.Duration.Milliseconds())),
	}
	tbl := report.NewTable(
		fmt.Sprintf("Live shapes at %.2f of capacity (%.4f MRPS offered)", liveLoad, base.RateMRPS),
		"plan", "completed", "dropped", "thr_mrps", "p50_ns", "p99_ns", "svc_mean_ns")
	for _, spec := range livePlans {
		r := results[spec]
		tbl.AddRowf(spec, r.Completed, r.Dropped, r.ThroughputMRPS, r.Latency.P50, r.Latency.P99, r.ServiceMeanNanos)
	}
	fig.Tables = append(fig.Tables, tbl)

	shared, jbsq, part := results["1x16"], results["jbsq1"], results["16x1"]
	fig.Claims = append(fig.Claims,
		Claim{
			Name:  "live: single shared queue beats partitioned p99 under GEV service",
			Paper: "single-queue dispatch tames the tail; RSS partitioning cannot (§2.2, measured like nanoPU/Dagger)",
			Measured: fmt.Sprintf("shared p99 %.0f ns vs partitioned %.0f ns (%.2f×)",
				shared.Latency.P99, part.Latency.P99, safeRatio(part.Latency.P99, shared.Latency.P99)),
			Ok: shared.Latency.Count > 0 && part.Latency.Count > 0 && shared.Latency.P99 < part.Latency.P99,
		},
		Claim{
			Name:  "live: JBSQ(1) tracks the single queue where partitioned collapses",
			Paper: "bounded single-queue dispatch ≈ ideal (nanoPU JBSQ)",
			Measured: fmt.Sprintf("jbsq1 p99 %.2f× the shared queue's (partitioned %.2f×)",
				safeRatio(jbsq.Latency.P99, shared.Latency.P99), safeRatio(part.Latency.P99, shared.Latency.P99)),
			Ok: jbsq.Latency.Count > 0 && jbsq.Latency.P99 <= 2.5*shared.Latency.P99 &&
				jbsq.Latency.P99 < part.Latency.P99,
		},
		Claim{
			Name:  "live: the open loop delivered the offered load below saturation",
			Paper: "load generator sanity (offered ≈ completed at 0.65 of capacity)",
			Measured: fmt.Sprintf("shared completed %d of %d offered, %d dropped, thr %.4f MRPS vs offered %.4f",
				shared.Completed, shared.Offered, shared.Dropped, shared.ThroughputMRPS, base.RateMRPS),
			Ok: shared.Dropped == 0 && shared.Completed == shared.Offered &&
				shared.ThroughputMRPS > 0.7*base.RateMRPS && shared.ThroughputMRPS < 1.3*base.RateMRPS,
		},
	)
	return fig, nil
}
