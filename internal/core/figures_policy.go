package core

import (
	"fmt"

	"rpcvalet/internal/machine"
	"rpcvalet/internal/report"
	"rpcvalet/internal/workload"
)

func init() {
	register("policy", figPolicy)
	FigureIDs = append(FigureIDs, "policy")
}

// policyPlans are the dispatch plans the policy study compares, in report
// order: the default occupancy-feedback single queue as the reference, the
// NI policies the plan layer unlocked on that same single queue, the strict
// JBSQ(1) bound, and the partitioned baseline for contrast.
var policyPlans = []string{
	"1x16",                   // reference: least-outstanding-rr, threshold 2
	"1x16:first-available",   // the paper's blind greedy arbiter
	"1x16:least-outstanding", // full occupancy feedback, fixed tie-break
	"1x16:random2",           // power-of-two-choices sampling
	"1x16:local",             // mesh-row locality first, spill on saturation
	"jbsq1",                  // strict single queue: at most 1 outstanding
	"16x1",                   // partitioned RSS baseline
}

// policyWorkloads spans the service-time shapes that separate the policies:
// fixed (no service variance — policies should not matter), GEV (heavy
// tail — occupancy feedback should matter), and Masstree (bimodal scans —
// blind arbitration parks gets behind 60–120µs scans).
var policyWorkloads = []struct {
	kind     string
	profile  func() workload.Profile
	lo, hi   float64
	headline bool // workload used for the headline claims
}{
	{"fixed", workload.SyntheticFixed, 0.1, 0.9, false},
	{"gev", workload.SyntheticGEV, 0.1, 0.9, true},
	{"masstree", workload.Masstree, 0.15, 0.8, false},
}

// figPolicy is the dispatch-policy study the Mode enum could not express:
// every plan in policyPlans × every workload shape, swept over load. It
// checks the refactor's headline claims — occupancy feedback
// (least-outstanding) never loses to blind first-available dispatch, and
// the bounded JBSQ(1) plan stays near the single-queue ideal at loads where
// the partitioned baseline has already collapsed.
func figPolicy(o Options) (Figure, error) {
	fig := Figure{
		ID:    "policy",
		Title: "Policy study: dispatch plan × workload, p99 vs load",
	}

	type key struct{ wl, plan string }
	curves := make(map[key]Curve)
	for _, w := range policyWorkloads {
		wl := w.profile()
		cap := CapacityMRPS(machine.Defaults(), wl)
		rates := RateGrid(cap, w.lo, w.hi, o.Points)
		for _, spec := range policyPlans {
			pl, err := machine.ParsePlan(spec)
			if err != nil {
				return Figure{}, err
			}
			base := machineBase(o, wl, machine.ModeSingleQueue)
			base.Params.Plan = pl
			c, err := MachineSweep(base, rates, spec, o.Workers)
			if err != nil {
				return Figure{}, fmt.Errorf("policy %s/%s: %w", w.kind, spec, err)
			}
			curves[key{w.kind, spec}] = c
		}

		cols := []string{"rate_mrps"}
		for _, spec := range policyPlans {
			cols = append(cols, "p99ns_"+spec)
		}
		tbl := report.NewTable(fmt.Sprintf("Policy study (%s): p99 (ns) vs offered load", w.kind), cols...)
		for i, r := range rates {
			row := []any{r}
			for _, spec := range policyPlans {
				row = append(row, curves[key{w.kind, spec}].Points[i].P99)
			}
			tbl.AddRowf(row...)
		}
		sum := report.NewTable(fmt.Sprintf("Policy study (%s): throughput under SLO", w.kind),
			"plan", "thr_under_slo_mrps")
		for _, spec := range policyPlans {
			sum.AddRowf(spec, curves[key{w.kind, spec}].ThroughputUnderSLO())
		}
		fig.Tables = append(fig.Tables, tbl, sum)
	}

	// Claim 1: occupancy feedback never loses — least-outstanding matches
	// or beats first-available p99 at every load, on every workload, over
	// the loads where the blind arbiter still meets its SLO (past its own
	// saturation point both tails diverge and the comparison is vacuous).
	worst, worstAt := 0.0, ""
	for _, w := range policyWorkloads {
		lo := curves[key{w.kind, "1x16:least-outstanding"}]
		fa := curves[key{w.kind, "1x16:first-available"}]
		for i := range fa.Points {
			if !fa.Points[i].MeetsSLO || fa.Points[i].P99 <= 0 {
				continue
			}
			if r := lo.Points[i].P99 / fa.Points[i].P99; r > worst {
				worst, worstAt = r, fmt.Sprintf("%s @%.1fMRPS", w.kind, fa.Points[i].RateMRPS)
			}
		}
	}
	fig.Claims = append(fig.Claims, Claim{
		Name:     "least-outstanding matches or beats first-available p99 at every load",
		Paper:    "occupancy feedback eliminates avoidable queueing (§6.1)",
		Measured: fmt.Sprintf("worst p99 ratio %.2f× (%s)", worst, worstAt),
		Ok:       worst > 0 && worst <= 1.05,
	})

	// Claims 2+3 read the headline (GEV) workload at the reference plan's
	// highest SLO-meeting load — the regime where partitioned queues have
	// already collapsed.
	for _, w := range policyWorkloads {
		if !w.headline {
			continue
		}
		ref := curves[key{w.kind, "1x16"}]
		idx := -1
		for i, p := range ref.Points {
			if p.MeetsSLO {
				idx = i
			}
		}
		if idx < 0 {
			// Keep the figure's declared shape: both headline claims are
			// present (and failed) when the reference never met its SLO.
			fig.Claims = append(fig.Claims,
				Claim{
					Name:     "jbsq1 tracks the single-queue ideal where partitioned collapses",
					Paper:    "bounded single-queue dispatch ≈ ideal (nanoPU JBSQ); RSS cannot follow",
					Measured: "reference 1x16 never met SLO",
				},
				Claim{
					Name:     "random-of-2 recovers most of the least-outstanding gain",
					Paper:    "two choices suffice (Mitzenmacher); a cheap microcoded policy",
					Measured: "reference 1x16 never met SLO",
				})
			continue
		}
		refP99 := ref.Points[idx].P99
		jb := curves[key{w.kind, "jbsq1"}].Points[idx].P99
		pt := curves[key{w.kind, "16x1"}].Points[idx].P99
		rate := ref.Points[idx].RateMRPS
		fig.Claims = append(fig.Claims, Claim{
			Name:  "jbsq1 tracks the single-queue ideal where partitioned collapses",
			Paper: "bounded single-queue dispatch ≈ ideal (nanoPU JBSQ); RSS cannot follow",
			Measured: fmt.Sprintf("@%.1fMRPS (%s) p99: jbsq1 %.2f× vs 16x1 %.2f× the 1x16 reference",
				rate, w.kind, safeRatio(jb, refP99), safeRatio(pt, refP99)),
			Ok: refP99 > 0 && jb <= 1.5*refP99 && pt >= 1.5*refP99,
		})

		// Power of two choices: sampling just two occupancy counters
		// recovers most of the gap between blind and fully informed
		// dispatch. The estimator is deliberately not a single load's p99
		// ratio — that statistic sits on its own noise band at full scale
		// (the EXPERIMENTS.md known-flaky entry this replaced): measured
		// across seeds, two choices truly recover ≈2/3 of the
		// blind→informed *mean*-latency gap but only ≈40% of the extreme
		// GEV p99 gap, and a one-point p99 estimate swings ±10 points.
		// So the claim reads the medians over the top three SLO-meeting
		// loads — an enlarged, multi-load measure window — and checks
		// "most" where Mitzenmacher's result lives (the mean) plus a
		// substantial share (≥25%) of the tail gap.
		faC := curves[key{w.kind, "1x16:first-available"}]
		loC := curves[key{w.kind, "1x16:least-outstanding"}]
		r2C := curves[key{w.kind, "1x16:random2"}]
		var okIdx []int
		for i, p := range faC.Points {
			if p.MeetsSLO {
				okIdx = append(okIdx, i)
			}
		}
		if len(okIdx) > 3 {
			okIdx = okIdx[len(okIdx)-3:]
		}
		var recMean, recP99 []float64
		for _, i := range okIdx {
			if f, l, r := faC.Points[i].Mean, loC.Points[i].Mean, r2C.Points[i].Mean; f > l {
				recMean = append(recMean, (f-r)/(f-l))
			}
			if f, l, r := faC.Points[i].P99, loC.Points[i].P99, r2C.Points[i].P99; f > l {
				recP99 = append(recP99, (f-r)/(f-l))
			}
		}
		if len(recMean) == 0 || len(recP99) == 0 {
			fig.Claims = append(fig.Claims, Claim{
				Name:     "random-of-2 recovers most of the least-outstanding gain",
				Paper:    "two choices suffice (Mitzenmacher); a cheap microcoded policy",
				Measured: "no load with a positive first-available→least-outstanding gap",
			})
			continue
		}
		medMean, medP99 := median(recMean), median(recP99)
		fig.Claims = append(fig.Claims, Claim{
			Name:  "random-of-2 recovers most of the least-outstanding gain",
			Paper: "two choices suffice (Mitzenmacher); a cheap microcoded policy",
			Measured: fmt.Sprintf("(%s) median over top %d SLO loads: %.0f%% of the mean gap, %.0f%% of the p99 gap",
				w.kind, len(okIdx), medMean*100, medP99*100),
			Ok: medMean >= 0.5 && medP99 >= 0.25,
		})
	}
	return fig, nil
}
