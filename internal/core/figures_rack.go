package core

import (
	"fmt"

	"rpcvalet/internal/cluster"
	"rpcvalet/internal/machine"
	"rpcvalet/internal/report"
	"rpcvalet/internal/workload"
)

func init() {
	register("rack", figRack)
	FigureIDs = append(FigureIDs, "rack")
}

// RackSizes are the cluster sizes the rack figure scales across — up to the
// ROADMAP's 1000-node target, which the balancer's depth index makes
// affordable to route (O(N/64) per decision instead of O(N)).
var RackSizes = []int{100, 400, 1000}

// rackPolicyNames is the rack figure's policy set: the canonical policies
// plus whole-cluster JSQ, the policy whose decision cost motivated the
// index. (It stays out of cluster.PolicyNames so the long-standing cluster
// figure keeps its exact cell grid and cost.)
var rackPolicyNames = []string{"random", "rr", "jsq2", "jsqfull", "bounded"}

// RackLoad is the offered load of every rack cell, as a fraction of
// aggregate cluster capacity: high enough that the policies separate by far
// more than sampling noise, below the saturation cliff.
const RackLoad = 0.85

// figRack produces the rack-scaling study: p99 and completion imbalance
// versus cluster size for every balancer policy, on 1×16 (single-queue)
// nodes at RackLoad of aggregate capacity. It is the experiment the depth
// index unlocks: whole-cluster queue-aware policies (full JSQ,
// bounded-load) at 1000 nodes, where the naive O(N) scans made the
// balancer's decision the simulation bottleneck.
func figRack(o Options) (Figure, error) {
	return figRackOver(o, RackSizes)
}

// figRackOver runs the rack study over the given cluster sizes (the smoke
// tests pass reduced grids). Size groups run sequentially — a 1000-node run
// holds ~1 GB of node-model state, so the policy fan-out inside each group
// is capped to keep nodes-in-flight bounded no matter how many workers the
// host offers.
func figRackOver(o Options, ns []int) (Figure, error) {
	wl := workload.SyntheticExp()

	type cell struct {
		p99       float64
		imbalance float64
	}
	cells := make(map[int]map[string]cell, len(ns))
	for _, n := range ns {
		pols := rackPolicyNames
		// Cap concurrent runs so at most ~1500 node models are live at once
		// (each holds its soNUMA domain buffers), then let the shard budget
		// narrow further if the engine itself is parallel.
		memCap := max(1, 1500/n)
		workers := min(memCap, BudgetWorkers(o.Workers, RunCost(cluster.Config{Nodes: n, Shards: o.Shards})))
		results, err := runPoints(len(pols), workers, func(i int) (cluster.Point, error) {
			pol, err := cluster.PolicyByName(pols[i])
			if err != nil {
				return cluster.Point{}, err
			}
			base := clusterBase(o, wl, machine.ModeSingleQueue, pol)
			base.Nodes = n
			rate := RackLoad * ClusterCapacityMRPS(base)
			curve, err := ClusterSweep(base, []float64{rate}, fmt.Sprintf("%s/n%d", pols[i], n), 1)
			if err != nil {
				return cluster.Point{}, err
			}
			return curve.Points[0], nil
		})
		if err != nil {
			return Figure{}, err
		}
		group := make(map[string]cell, len(pols))
		for i, name := range pols {
			group[name] = cell{p99: results[i].P99, imbalance: results[i].Imbalance}
		}
		cells[n] = group
	}

	fig := Figure{
		ID: "rack",
		Title: fmt.Sprintf("Rack scaling: p99 and imbalance vs cluster size by policy, 1x16 nodes, %s workload, load %.2f, %v hop",
			wl.Name, RackLoad, ClusterHop),
	}
	p99Cols := []string{"nodes"}
	imbCols := []string{"nodes"}
	for _, name := range rackPolicyNames {
		p99Cols = append(p99Cols, "p99ns_"+name)
		imbCols = append(imbCols, "imbalance_"+name)
	}
	p99Tbl := report.NewTable("Rack p99 (ns) vs cluster size by policy", p99Cols...)
	imbTbl := report.NewTable("Rack completion imbalance (max/mean) vs cluster size by policy", imbCols...)
	for _, n := range ns {
		p99Row, imbRow := []any{n}, []any{n}
		for _, name := range rackPolicyNames {
			p99Row = append(p99Row, cells[n][name].p99)
			imbRow = append(imbRow, cells[n][name].imbalance)
		}
		p99Tbl.AddRowf(p99Row...)
		imbTbl.AddRowf(imbRow...)
	}
	fig.Tables = append(fig.Tables, p99Tbl, imbTbl)

	// Claims at the largest size in the grid: comparative orderings that
	// hold from Quick to Default scales (absolute thresholds would drown in
	// sampling noise at smoke-test completion counts).
	top := ns[len(ns)-1]
	at := func(pol string) cell { return cells[top][pol] }
	claims := []struct {
		name, paper string
		a, b        float64
	}{
		{fmt.Sprintf("rack jsqfull p99 <= random p99 (%d nodes)", top),
			"full queue-state awareness tames the tail at rack scale",
			at("jsqfull").p99, at("random").p99},
		{fmt.Sprintf("rack jsq2 p99 <= random p99 (%d nodes)", top),
			"power-of-d choices captures most of full JSQ's win",
			at("jsq2").p99, at("random").p99},
		{fmt.Sprintf("rack bounded p99 <= random p99 (%d nodes)", top),
			"bounded-load rotation avoids blind balancing's deep queues",
			at("bounded").p99, at("random").p99},
		{fmt.Sprintf("rack rr imbalance <= random imbalance (%d nodes)", top),
			"deterministic rotation beats blind sampling on arrival spread",
			at("rr").imbalance, at("random").imbalance},
	}
	for _, c := range claims {
		fig.Claims = append(fig.Claims, Claim{
			Name:     c.name,
			Paper:    c.paper,
			Measured: fmt.Sprintf("%.4g vs %.4g", c.a, c.b),
			Ok:       c.a <= c.b,
		})
	}
	return fig, nil
}
