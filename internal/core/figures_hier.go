package core

import (
	"fmt"
	"math"

	"rpcvalet/internal/cluster"
	"rpcvalet/internal/machine"
	"rpcvalet/internal/report"
	"rpcvalet/internal/sim"
	"rpcvalet/internal/workload"
)

func init() {
	register("hier", figHier)
	FigureIDs = append(FigureIDs, "hier")
}

// HierSizes are the datacenter sizes the hierarchical figure scales across —
// the same 400/1000-node range as the rack study, now split into racks
// behind a global balancer.
var HierSizes = []int{400, 1000}

// HierRacks is the rack count of every hierarchical cell: wide enough that
// the global tier has a real placement decision, small enough that each rack
// still holds a rack's worth of servers at both sizes.
const HierRacks = 8

// HierLoad is the offered load of every hierarchical cell, as a fraction of
// aggregate capacity — the same operating point as the flat rack study, so
// the two figures' tails are directly comparable.
const HierLoad = 0.85

// HierGlobalHop is the extra network hop the global balancer charges on the
// way to a rack balancer — symmetric with the rack-internal hop.
const HierGlobalHop = ClusterHop

// hierTopologies are the figure's columns: the flat single-tier baseline and
// three two-tier stacks over the same jsqfull racks, varying only the global
// policy — full queue-state awareness over rack aggregates, power-of-two
// choices over racks, and blind random placement.
var hierTopologies = []struct {
	label  string
	global string // "" = flat single-tier cluster
	rack   string
}{
	{"flat-jsqfull", "", "jsqfull"},
	{"jsqfullxjsqfull", "jsqfull", "jsqfull"},
	{"jsq2xjsqfull", "jsq2", "jsqfull"},
	{"randomxjsqfull", "random", "jsqfull"},
}

// hierConfigAt assembles one hierarchical (or, with global == "", flat) cell
// config at n nodes and HierLoad of aggregate capacity.
func hierConfigAt(o Options, n int, global, rack string) (cluster.Config, error) {
	pol, err := cluster.PolicyByName(rack)
	if err != nil {
		return cluster.Config{}, err
	}
	cfg := clusterBase(o, workload.SyntheticExp(), machine.ModeSingleQueue, pol)
	cfg.Nodes = n
	if global != "" {
		gpol, err := cluster.PolicyByName(global)
		if err != nil {
			return cluster.Config{}, err
		}
		cfg.Racks = HierRacks
		cfg.GlobalPolicy = gpol
		cfg.GlobalHop = HierGlobalHop
	}
	rate := HierLoad * ClusterCapacityMRPS(cfg)
	cfg.RateMRPS = rate
	need := float64(cfg.Warmup+cfg.Measure) / rate * 1000 // ns
	cfg.MaxSimTime = sim.FromNanos(need * 10)
	return cfg, nil
}

// hierPause sizes the rack-balancer outage of the failover study relative to
// the run's virtual length: long enough to strand a tail's worth of requests
// at any completion count, opening after warmup traffic has filled the
// queues.
func hierPause(cfg cluster.Config) machine.Pause {
	need := float64(cfg.Warmup+cfg.Measure) / cfg.RateMRPS * 1000 // ns
	return machine.Pause{
		Start: sim.FromNanos(0.3 * need),
		Dur:   sim.FromNanos(math.Max(0.25*need, 2000)),
	}
}

// figHier produces the two-tier datacenter study: tail latency versus size
// for a flat balancer against hierarchical stacks (global policy × rack
// policy), plus the failover cost of freezing one rack — the experiment the
// dispatch-tier refactor unlocks, with the rack balancer exposing the same
// depth-observable surface a node does.
func figHier(o Options) (Figure, error) {
	return figHierOver(o, HierSizes)
}

// figHierOver runs the hierarchical study over the given datacenter sizes
// (the smoke tests pass reduced grids). As in the rack figure, per-size
// memory caps keep at most ~1500 node models in flight regardless of worker
// count.
func figHierOver(o Options, ns []int) (Figure, error) {
	results := make(map[int]map[string]cluster.Result, len(ns))
	for _, n := range ns {
		memCap := max(1, 1500/n)
		workers := min(memCap, BudgetWorkers(o.Workers,
			RunCost(cluster.Config{Nodes: n, Racks: HierRacks, Shards: o.Shards})))
		group, err := runPoints(len(hierTopologies), workers, func(i int) (cluster.Result, error) {
			tp := hierTopologies[i]
			cfg, err := hierConfigAt(o, n, tp.global, tp.rack)
			if err != nil {
				return cluster.Result{}, err
			}
			res, err := cluster.Run(cfg)
			if err != nil {
				return cluster.Result{}, fmt.Errorf("hier %s at %d nodes: %w", tp.label, n, err)
			}
			return res, nil
		})
		if err != nil {
			return Figure{}, err
		}
		byLabel := make(map[string]cluster.Result, len(hierTopologies))
		for i, tp := range hierTopologies {
			byLabel[tp.label] = group[i]
		}
		results[n] = byLabel
	}

	// Degraded-rack study at the largest size: rack 0 running at half speed,
	// under a queue-aware global tier versus a blind one — paired seeds.
	// Healthy racks absorb placement skew inside the rack, so this is where
	// the global policy earns its keep: at the figure's load a 2× slower
	// rack is past saturation on its share, and only a global tier that
	// watches rack aggregate depth sheds the excess.
	top := ns[len(ns)-1]
	slowFault := []cluster.NodeFault{{Node: 0, Rack: true, Slowdown: 2}}
	degraded, err := runPoints(2, max(1, 1500/top), func(i int) (cluster.Result, error) {
		global := []string{"jsqfull", "random"}[i]
		cfg, err := hierConfigAt(o, top, global, "jsqfull")
		if err != nil {
			return cluster.Result{}, err
		}
		cfg.Faults = slowFault
		res, err := cluster.Run(cfg)
		if err != nil {
			return cluster.Result{}, fmt.Errorf("hier degraded %sxjsqfull at %d nodes: %w", global, top, err)
		}
		return res, nil
	})
	if err != nil {
		return Figure{}, err
	}
	degJSQFull, degRandom := degraded[0], degraded[1]

	// Failover study at the largest size: the jsqfullxjsqfull stack with rack
	// 0's balancer (and its nodes) frozen mid-measurement, against the healthy
	// run already measured above — paired seeds, identical arrivals.
	failCfg, err := hierConfigAt(o, top, "jsqfull", "jsqfull")
	if err != nil {
		return Figure{}, err
	}
	pause := hierPause(failCfg)
	failCfg.Faults = []cluster.NodeFault{{Node: 0, Rack: true, Pauses: []machine.Pause{pause}}}
	failRes, err := cluster.Run(failCfg)
	if err != nil {
		return Figure{}, fmt.Errorf("hier failover at %d nodes: %w", top, err)
	}
	healthyRes := results[top]["jsqfullxjsqfull"]

	wl := workload.SyntheticExp()
	fig := Figure{
		ID: "hier",
		Title: fmt.Sprintf("Two-tier datacenter: tail latency vs size, flat balancer vs %d racks (global x rack policy), %s workload, load %.2f, %v global hop + %v rack hop",
			HierRacks, wl.Name, HierLoad, HierGlobalHop, ClusterHop),
	}

	p99Cols, p999Cols := []string{"nodes"}, []string{"nodes"}
	for _, tp := range hierTopologies {
		p99Cols = append(p99Cols, "p99ns_"+tp.label)
		p999Cols = append(p999Cols, "p999ns_"+tp.label)
	}
	p99Tbl := report.NewTable("Hier p99 (ns) vs datacenter size by topology", p99Cols...)
	p999Tbl := report.NewTable("Hier p99.9 (ns) vs datacenter size by topology", p999Cols...)
	for _, n := range ns {
		p99Row, p999Row := []any{n}, []any{n}
		for _, tp := range hierTopologies {
			p99Row = append(p99Row, results[n][tp.label].Latency.P99)
			p999Row = append(p999Row, results[n][tp.label].Latency.P999)
		}
		p99Tbl.AddRowf(p99Row...)
		p999Tbl.AddRowf(p999Row...)
	}

	share := func(res cluster.Result) float64 {
		if res.Completed == 0 || len(res.RackCompleted) == 0 {
			return 0
		}
		return float64(res.RackCompleted[0]) / float64(res.Completed)
	}
	degTbl := report.NewTable(
		fmt.Sprintf("Degraded rack at %d nodes (rack 0 at x2, global policy varies)", top),
		"variant", "p99ns", "p999ns", "rack0_share")
	degTbl.AddRowf("jsqfullxjsqfull", degJSQFull.Latency.P99, degJSQFull.Latency.P999, share(degJSQFull))
	degTbl.AddRowf("randomxjsqfull", degRandom.Latency.P99, degRandom.Latency.P999, share(degRandom))
	failTbl := report.NewTable(
		fmt.Sprintf("Rack failover at %d nodes (jsqfullxjsqfull, rack 0 %v)", top, pause),
		"variant", "p99ns", "p999ns", "rack0_share")
	failTbl.AddRowf("healthy", healthyRes.Latency.P99, healthyRes.Latency.P999, share(healthyRes))
	failTbl.AddRowf("rack0-paused", failRes.Latency.P99, failRes.Latency.P999, share(failRes))
	fig.Tables = append(fig.Tables, p99Tbl, p999Tbl, degTbl, failTbl)

	// Claims at the largest size: comparative orderings that hold from Quick
	// to Default scales.
	at := func(label string) cluster.Result { return results[top][label] }
	orderings := []struct {
		name, paper string
		a, b        float64
	}{
		{fmt.Sprintf("hier flat jsqfull p99 <= jsqfullxjsqfull p99 (%d nodes)", top),
			"a second dispatch tier pays its hop: flat routing lower-bounds the stacked tail",
			at("flat-jsqfull").Latency.P99, at("jsqfullxjsqfull").Latency.P99},
		{fmt.Sprintf("hier degraded-rack jsqfullxjsqfull p99 <= randomxjsqfull p99 (%d nodes)", top),
			"queue-aware global placement routes around a slow rack; blind placement overloads it",
			degJSQFull.Latency.P99, degRandom.Latency.P99},
		{fmt.Sprintf("hier degraded-rack jsqfull global sheds slow-rack load vs random (%d nodes)", top),
			"only a global tier watching rack aggregate depth can shed a saturating rack's excess",
			share(degJSQFull), share(degRandom)},
	}
	for _, c := range orderings {
		fig.Claims = append(fig.Claims, Claim{
			Name:     c.name,
			Paper:    c.paper,
			Measured: fmt.Sprintf("%.4g vs %.4g", c.a, c.b),
			Ok:       c.a <= c.b,
		})
	}
	fig.Claims = append(fig.Claims, Claim{
		Name:  fmt.Sprintf("hier rack failover costs at p99.9 (%d nodes)", top),
		Paper: "freezing one rack balancer strands in-flight requests: the outage prices into the far tail",
		Measured: fmt.Sprintf("paused p999=%.4g vs healthy p999=%.4g",
			failRes.Latency.P999, healthyRes.Latency.P999),
		Ok: failRes.Latency.P999 > healthyRes.Latency.P999,
	})
	fig.Claims = append(fig.Claims, Claim{
		Name:  fmt.Sprintf("hier failover shifts load off the frozen rack (%d nodes)", top),
		Paper: "the global tier routes around a rack whose aggregate depth stops draining",
		Measured: fmt.Sprintf("rack0 share %.4f paused vs %.4f healthy (fair %.4f)",
			share(failRes), share(healthyRes), 1.0/HierRacks),
		Ok: share(failRes) < share(healthyRes),
	})
	return fig, nil
}
