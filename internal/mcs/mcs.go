// Package mcs implements the MCS queue-based spinlock of Mellor-Crummey and
// Scott, the synchronization primitive the paper's software single-queue
// baseline uses to let 16 cores pull requests from one shared queue (§5,
// §6.2).
//
// Two artifacts live here. Lock is a real, runnable MCS lock over Go
// atomics, used by the examples/livebalancer demo and property-tested for
// mutual exclusion and FIFO fairness — it exists so the repository contains
// the actual algorithm the paper models, not just its cost abstraction.
// CostModel is the first-order timing abstraction the simulator charges for
// each lock acquisition (internal/machine uses the same constants); keeping
// it next to the real lock documents what the numbers stand for.
//
// An MCS lock queues waiters in a linked list of per-waiter qnodes; each
// waiter spins on its own node's flag, so under contention the only
// cross-core traffic is one cache-line handoff per transfer — which is
// exactly why its handoff latency, not spinning overhead, bounds the
// software single queue's throughput.
package mcs

import (
	"sync/atomic"

	"rpcvalet/internal/sim"
)

// node is one waiter's queue entry. Padding separates the hot flag from
// neighbouring allocations to avoid false sharing.
type node struct {
	next   atomic.Pointer[node]
	locked atomic.Bool
	_      [48]byte // pad to a cache line
}

// Lock is an MCS queue lock. The zero value is an unlocked lock. A Lock
// must not be copied after first use.
type Lock struct {
	tail atomic.Pointer[node]
}

// Handle is a caller's queue node, created by Acquire and consumed by
// Release. Each Acquire returns a fresh Handle; the caller passes it to the
// matching Release.
type Handle struct {
	n *node
	l *Lock
}

// Acquire joins the queue and spins until the lock is held. It returns a
// Handle that must be passed to Release exactly once.
func (l *Lock) Acquire() Handle {
	n := &node{}
	pred := l.tail.Swap(n)
	if pred != nil {
		n.locked.Store(true)
		pred.next.Store(n)
		for n.locked.Load() {
			// Spin on our own cache line, as MCS prescribes. A real
			// deployment pins one goroutine per core; under the Go
			// scheduler we must not monopolize the thread, so this
			// spin is bounded by the runtime's preemption.
		}
	}
	return Handle{n: n, l: l}
}

// Release hands the lock to the next waiter, if any.
func (h Handle) Release() {
	n, l := h.n, h.l
	if n == nil {
		panic("mcs: Release of zero Handle")
	}
	next := n.next.Load()
	if next == nil {
		// No known successor: try to swing tail back to nil.
		if l.tail.CompareAndSwap(n, nil) {
			return
		}
		// A successor is linking in; wait for it to appear.
		for next == nil {
			next = n.next.Load()
		}
	}
	next.locked.Store(false)
}

// CostModel is the simulator's first-order accounting for one lock-protected
// dequeue from the shared request queue.
type CostModel struct {
	// Uncontended is the cost of acquiring a free lock: one atomic swap
	// hitting the LLC.
	Uncontended sim.Duration
	// Handoff is the cost of transferring the lock under contention: the
	// releasing core's write must reach the spinning core's cache line,
	// a coherence round trip between tiles.
	Handoff sim.Duration
	// CriticalSection is the time spent holding the lock to dequeue: the
	// shared queue's head pointer and entry are two more contended lines.
	CriticalSection sim.Duration
}

// DefaultCostModel mirrors machine.Defaults: ≈190 ns per contended dequeue,
// which caps a single shared queue near 5.3 M dequeues/s — the §6.2 result.
func DefaultCostModel() CostModel {
	return CostModel{
		Uncontended:     15 * sim.Nanosecond,
		Handoff:         120 * sim.Nanosecond,
		CriticalSection: 70 * sim.Nanosecond,
	}
}

// DequeueCost returns the modeled cost of one dequeue given whether the lock
// was contended at acquisition time.
func (c CostModel) DequeueCost(contended bool) sim.Duration {
	if contended {
		return c.Handoff + c.CriticalSection
	}
	return c.Uncontended + c.CriticalSection
}

// SaturationMRPS returns the throughput ceiling (in millions of requests per
// second) the serialized dequeue path imposes on the whole server.
func (c CostModel) SaturationMRPS() float64 {
	return 1000 / c.DequeueCost(true).Nanos()
}
