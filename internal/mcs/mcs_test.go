package mcs

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestMutualExclusion(t *testing.T) {
	var l Lock
	var counter int64 // protected by l; deliberately non-atomic increments
	const goroutines = 8
	const iters = 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				h := l.Acquire()
				counter++ // data race iff mutual exclusion is broken
				h.Release()
			}
		}()
	}
	wg.Wait()
	if counter != goroutines*iters {
		t.Fatalf("counter = %d, want %d (lost updates ⇒ exclusion violated)", counter, goroutines*iters)
	}
}

func TestCriticalSectionNeverConcurrent(t *testing.T) {
	var l Lock
	var inside atomic.Int32
	var violations atomic.Int32
	var wg sync.WaitGroup
	for g := 0; g < runtime.GOMAXPROCS(0); g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3000; i++ {
				h := l.Acquire()
				if inside.Add(1) != 1 {
					violations.Add(1)
				}
				inside.Add(-1)
				h.Release()
			}
		}()
	}
	wg.Wait()
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d concurrent critical-section entries", v)
	}
}

func TestUncontendedAcquireRelease(t *testing.T) {
	var l Lock
	for i := 0; i < 100; i++ {
		h := l.Acquire()
		h.Release()
	}
	// Tail must be nil again: the lock fully resets when uncontended.
	if l.tail.Load() != nil {
		t.Fatal("lock tail not reset after uncontended use")
	}
}

func TestReleaseZeroHandlePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Release of zero Handle did not panic")
		}
	}()
	var h Handle
	h.Release()
}

// TestFIFOFairness: with a slow critical section, waiters are served in
// arrival order (MCS's defining property). We serialize arrivals with a
// barrier chain so arrival order is deterministic, then check service order.
func TestFIFOFairness(t *testing.T) {
	var l Lock
	const waiters = 6
	var order []int
	var mu sync.Mutex

	// Hold the lock while the waiters line up.
	h := l.Acquire()
	arrived := make([]chan struct{}, waiters)
	for i := range arrived {
		arrived[i] = make(chan struct{})
	}
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			if i > 0 {
				<-arrived[i-1] // ensure strict arrival order
			}
			go func() { // signal after our Swap has happened; give it a moment
			}()
			hh := queueUp(&l, arrived[i])
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			hh.Release()
		}()
	}
	<-arrived[waiters-1] // all queued
	h.Release()
	wg.Wait()
	for i, v := range order {
		if v != i {
			t.Fatalf("service order %v, want FIFO", order)
		}
	}
}

// queueUp swaps into the lock queue and then signals it has joined before
// spinning, so the test can order arrivals deterministically.
func queueUp(l *Lock, joined chan struct{}) Handle {
	n := &node{}
	pred := l.tail.Swap(n)
	close(joined)
	if pred != nil {
		n.locked.Store(true)
		pred.next.Store(n)
		for n.locked.Load() {
		}
	}
	return Handle{n: n, l: l}
}

func TestCostModel(t *testing.T) {
	c := DefaultCostModel()
	if got := c.DequeueCost(true); got != c.Handoff+c.CriticalSection {
		t.Fatalf("contended cost = %v", got)
	}
	if got := c.DequeueCost(false); got != c.Uncontended+c.CriticalSection {
		t.Fatalf("uncontended cost = %v", got)
	}
	// The default model must cap a single queue in the ~5 MRPS regime the
	// paper's Fig 8 exhibits (2.3–2.7× below ~13 MRPS hardware).
	s := c.SaturationMRPS()
	if s < 4 || s > 7 {
		t.Fatalf("saturation = %.2f MRPS, want ~5", s)
	}
}

func BenchmarkUncontended(b *testing.B) {
	var l Lock
	for i := 0; i < b.N; i++ {
		h := l.Acquire()
		h.Release()
	}
}

func BenchmarkContended(b *testing.B) {
	var l Lock
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h := l.Acquire()
			h.Release()
		}
	})
}
