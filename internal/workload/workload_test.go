package workload

import (
	"math"
	"testing"

	"rpcvalet/internal/dist"
	"rpcvalet/internal/rng"
)

func sampleMean(d dist.Sampler, n int) float64 {
	r := rng.New(42)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += d.Sample(r)
	}
	return sum / float64(n)
}

func TestAllProfilesValid(t *testing.T) {
	for _, p := range []Profile{
		SyntheticFixed(), SyntheticUniform(), SyntheticExp(), SyntheticGEV(),
		HERD(), Masstree(),
	} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	good := SyntheticFixed()
	cases := map[string]func(p *Profile){
		"noClasses":  func(p *Profile) { p.Classes = nil },
		"badWeight":  func(p *Profile) { p.Classes[0].Weight = 0 },
		"nilService": func(p *Profile) { p.Classes[0].Service = nil },
		"noMeasured": func(p *Profile) { p.Classes[0].Measured = false },
		"badSizes":   func(p *Profile) { p.RequestBytes = 0 },
		"noSLO":      func(p *Profile) { p.SLOFactor = 0 },
		"infMean": func(p *Profile) {
			p.Classes[0].Service = dist.GEV{Loc: 0, Scale: 1, Shape: 2}
		},
	}
	for name, mutate := range cases {
		p := good
		p.Classes = append([]Class(nil), good.Classes...)
		mutate(&p)
		if p.Validate() == nil {
			t.Errorf("%s: invalid profile accepted", name)
		}
	}
}

// TestSyntheticMeans checks §5's construction: every synthetic profile has a
// 300 ns base plus a 300 ns average extra, i.e. 600 ns mean.
func TestSyntheticMeans(t *testing.T) {
	for _, p := range []Profile{SyntheticFixed(), SyntheticUniform(), SyntheticExp(), SyntheticGEV()} {
		m := p.MeanService()
		if math.Abs(m-600) > 6 { // GEV lands within 1%
			t.Errorf("%s mean = %v, want ~600", p.Name, m)
		}
	}
}

// TestHERDCalibration checks the HERD-like profile against Fig 6b's
// statistics: mean 330 ns, effectively all mass below ~1.2 µs.
func TestHERDCalibration(t *testing.T) {
	p := HERD()
	d := p.Classes[0].Service
	if math.Abs(d.Mean()-330) > 3 {
		t.Fatalf("HERD mean = %v, want 330", d.Mean())
	}
	if m := sampleMean(d, 200000); math.Abs(m-330) > 5 {
		t.Fatalf("HERD sampled mean = %v", m)
	}
	r := rng.New(7)
	over := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if d.Sample(r) > 1200 {
			over++
		}
	}
	if frac := float64(over) / n; frac > 0.005 {
		t.Fatalf("HERD tail beyond 1.2µs = %v of mass, want <0.5%%", frac)
	}
}

// TestMasstreeCalibration checks Fig 6c's statistics: get mean 1.25 µs,
// scans 60–120 µs at 1% weight.
func TestMasstreeCalibration(t *testing.T) {
	gets := MasstreeGets()
	if math.Abs(gets.Mean()-1250) > 10 {
		t.Fatalf("get mean = %v, want 1250", gets.Mean())
	}
	scans := MasstreeScans()
	if scans.Mean() != 90_000 {
		t.Fatalf("scan mean = %v, want 90000", scans.Mean())
	}
	r := rng.New(8)
	for i := 0; i < 10000; i++ {
		v := scans.Sample(r)
		if v < 60_000 || v > 120_000 {
			t.Fatalf("scan sample %v outside [60,120]µs", v)
		}
	}
	p := Masstree()
	// Weighted mean: 0.99×1.25µs + 0.01×90µs ≈ 2.14µs.
	if m := p.MeanService(); math.Abs(m-2137.5) > 15 {
		t.Fatalf("masstree mean service = %v, want ~2137", m)
	}
	if p.SLONanos != 12500 {
		t.Fatalf("masstree SLO = %v, want 12.5µs", p.SLONanos)
	}
	if p.Classes[1].Measured {
		t.Fatal("scans must not be latency-measured")
	}
}

func TestPickClassFrequencies(t *testing.T) {
	p := Masstree()
	r := rng.New(9)
	scans := 0
	const n = 200000
	for i := 0; i < n; i++ {
		if p.PickClass(r) == 1 {
			scans++
		}
	}
	frac := float64(scans) / n
	if math.Abs(frac-0.01) > 0.002 {
		t.Fatalf("scan frequency = %v, want ~0.01", frac)
	}
}

func TestSyntheticLookup(t *testing.T) {
	for _, kind := range []string{"fixed", "uniform", "exp", "gev"} {
		p, err := Synthetic(kind)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if p.Name != "synthetic-"+kind {
			t.Fatalf("name = %q", p.Name)
		}
	}
	if _, err := Synthetic("zipf"); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestProfileFraming(t *testing.T) {
	// The paper's microbenchmark sends 512B replies.
	for _, p := range []Profile{SyntheticFixed(), HERD(), Masstree()} {
		if p.ReplyBytes != 512 {
			t.Errorf("%s reply = %dB, want 512", p.Name, p.ReplyBytes)
		}
		if p.RequestBytes <= 0 {
			t.Errorf("%s request size missing", p.Name)
		}
	}
}

// TestVarianceOrdering: the synthetic profiles must be ordered by variance
// (fixed < uniform < exp < gev), which drives the Fig 2/7 tail ordering.
func TestVarianceOrdering(t *testing.T) {
	variance := func(d dist.Sampler) float64 {
		r := rng.New(11)
		const n = 300000
		sum, sumSq := 0.0, 0.0
		for i := 0; i < n; i++ {
			v := d.Sample(r)
			sum += v
			sumSq += v * v
		}
		m := sum / n
		return sumSq/n - m*m
	}
	profiles := []Profile{SyntheticFixed(), SyntheticUniform(), SyntheticExp(), SyntheticGEV()}
	var prev float64 = -1
	for _, p := range profiles {
		v := variance(p.Classes[0].Service)
		if v <= prev {
			t.Fatalf("variance ordering violated at %s: %v <= %v", p.Name, v, prev)
		}
		prev = v
	}
}
