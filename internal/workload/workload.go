// Package workload defines the RPC service-time profiles of the paper's
// evaluation (§5, Fig 6): the four synthetic distributions (fixed, uniform,
// exponential, GEV — 300 ns base plus 300 ns average distributed extra), an
// HERD-like key-value-store profile, and a Masstree-like profile mixing
// latency-critical gets with long-running scans.
//
// The HERD and Masstree profiles are substitutions: the authors measured
// real binaries on a Xeon and replayed the recorded distributions into their
// simulator, and we do not have those traces. We instead synthesize
// right-skewed distributions calibrated to the published statistics (HERD:
// mean 330 ns, mode ≈300 ns, tail to ≈1 µs; Masstree gets: mean 1.25 µs,
// spread to ≈4 µs; scans: 60–120 µs, 1% of requests). What the load-balancing
// experiments exercise is the shape of these distributions, not the identity
// of the software that produced them; DESIGN.md discusses the substitution.
package workload

import (
	"fmt"
	"math"

	"rpcvalet/internal/dist"
	"rpcvalet/internal/rng"
)

// Class is one request class within a profile.
type Class struct {
	Name    string
	Weight  float64      // relative frequency
	Service dist.Sampler // processing-time distribution, ns
	// Measured marks classes whose latency counts toward the reported
	// tail. Masstree's scans run on the same cores but are not
	// latency-critical (§6.1), so they are excluded there.
	Measured bool
}

// Profile is a complete workload description for the machine model.
type Profile struct {
	Name    string
	Classes []Class

	RequestBytes int // inbound RPC payload size
	ReplyBytes   int // outbound RPC reply size (512 B in the paper's microbenchmark)

	// SLOFactor expresses the tail SLO as a multiple of the measured mean
	// service time (the paper uses 10×). If SLONanos is nonzero it takes
	// precedence (Masstree uses an absolute 12.5 µs SLO on gets).
	SLOFactor float64
	SLONanos  float64
}

// Validate reports whether the profile is well formed.
func (p Profile) Validate() error {
	if len(p.Classes) == 0 {
		return fmt.Errorf("workload %q: no classes", p.Name)
	}
	anyMeasured := false
	for _, c := range p.Classes {
		if c.Weight <= 0 {
			return fmt.Errorf("workload %q: class %q has non-positive weight", p.Name, c.Name)
		}
		if c.Service == nil {
			return fmt.Errorf("workload %q: class %q has nil service distribution", p.Name, c.Name)
		}
		m := c.Service.Mean()
		if !(m > 0) || math.IsInf(m, 1) {
			return fmt.Errorf("workload %q: class %q has unusable mean %g", p.Name, c.Name, m)
		}
		anyMeasured = anyMeasured || c.Measured
	}
	if !anyMeasured {
		return fmt.Errorf("workload %q: no measured class", p.Name)
	}
	if p.RequestBytes <= 0 || p.ReplyBytes <= 0 {
		return fmt.Errorf("workload %q: request/reply sizes must be positive", p.Name)
	}
	if p.SLOFactor <= 0 && p.SLONanos <= 0 {
		return fmt.Errorf("workload %q: no SLO specified", p.Name)
	}
	return nil
}

// MeanService returns the weighted mean processing time over all classes —
// the E[S] that determines the machine's saturation throughput.
func (p Profile) MeanService() float64 {
	total, sum := 0.0, 0.0
	for _, c := range p.Classes {
		total += c.Weight
		sum += c.Weight * c.Service.Mean()
	}
	return sum / total
}

// PickClass samples a class index according to the weights.
func (p Profile) PickClass(r *rng.Source) int {
	return p.PickClassAt(r.Float64() * p.TotalWeight())
}

// TotalWeight sums the class weights — the scale factor PickClassAt expects.
func (p Profile) TotalWeight() float64 {
	total := 0.0
	for _, c := range p.Classes {
		total += c.Weight
	}
	return total
}

// PickClassAt maps a pre-drawn uniform u ∈ [0, TotalWeight()) to a class
// index with exactly PickClass's weight walk, so callers batching their
// Float64 draws (rng.FloatBatch) select byte-identical classes.
func (p Profile) PickClassAt(u float64) int {
	for i, c := range p.Classes {
		if u < c.Weight {
			return i
		}
		u -= c.Weight
	}
	return len(p.Classes) - 1
}

// single builds a one-class profile with the paper's standard microbenchmark
// framing: small request, 512 B reply, 10× SLO.
func single(name string, d dist.Sampler) Profile {
	return Profile{
		Name:         name,
		Classes:      []Class{{Name: name, Weight: 1, Service: d, Measured: true}},
		RequestBytes: 64,
		ReplyBytes:   512,
		SLOFactor:    10,
	}
}

// SyntheticBase is the fixed component of the synthetic profiles: 300 ns.
const SyntheticBase = 300.0

// SyntheticExtra is the mean of the distributed component: 300 ns.
const SyntheticExtra = 300.0

// paperGEV is §5's GEV(363, 100, 0.65) in 2 GHz cycles, converted to ns
// (divide by 2), giving a mean of ≈300 ns.
var paperGEV = dist.GEV{Loc: 363.0 / 2, Scale: 100.0 / 2, Shape: 0.65}

// SyntheticFixed is the fixed 600 ns profile (ideal for balancing).
func SyntheticFixed() Profile {
	return single("synthetic-fixed", dist.Fixed{Value: SyntheticBase + SyntheticExtra})
}

// SyntheticUniform adds a uniform[0, 600) ns extra to the 300 ns base.
func SyntheticUniform() Profile {
	return single("synthetic-uniform",
		dist.Shifted{Base: SyntheticBase, Inner: dist.Uniform{Lo: 0, Hi: 2 * SyntheticExtra}})
}

// SyntheticExp adds an exponential extra with mean 300 ns.
func SyntheticExp() Profile {
	return single("synthetic-exp",
		dist.Shifted{Base: SyntheticBase, Inner: dist.Exponential{MeanValue: SyntheticExtra}})
}

// SyntheticGEV adds the paper's GEV extra (mean ≈300 ns, heavy tail).
func SyntheticGEV() Profile {
	return single("synthetic-gev", dist.Shifted{Base: SyntheticBase, Inner: paperGEV})
}

// Synthetic returns the named synthetic profile ("fixed", "uniform", "exp",
// "gev") or an error for anything else.
func Synthetic(kind string) (Profile, error) {
	switch kind {
	case "fixed":
		return SyntheticFixed(), nil
	case "uniform":
		return SyntheticUniform(), nil
	case "exp":
		return SyntheticExp(), nil
	case "gev":
		return SyntheticGEV(), nil
	default:
		return Profile{}, fmt.Errorf("workload: unknown synthetic kind %q", kind)
	}
}

// HERD models the HERD key-value store's RPC processing times (Fig 6b):
// a 150 ns floor plus a right-skewed lognormal body, calibrated to the
// published mean of 330 ns with a tail reaching ≈1 µs.
func HERD() Profile {
	// mean = 150 + exp(mu + sigma²/2) = 330  =>  lognormal mean 180.
	const sigma = 0.55
	mu := math.Log(180) - sigma*sigma/2
	return single("herd", dist.Shifted{Base: 150, Inner: dist.Lognormal{Mu: mu, Sigma: sigma}})
}

// MasstreeGets models Masstree get operations (Fig 6c): 400 ns floor plus a
// lognormal body, mean 1.25 µs, spreading to ≈4 µs.
func MasstreeGets() dist.Sampler {
	const sigma = 0.6
	mu := math.Log(850) - sigma*sigma/2
	return dist.Shifted{Base: 400, Inner: dist.Lognormal{Mu: mu, Sigma: sigma}}
}

// MasstreeScans models the 100-key ordered scans: 60–120 µs of continuous
// occupancy.
func MasstreeScans() dist.Sampler {
	return dist.Uniform{Lo: 60_000, Hi: 120_000}
}

// Masstree is the §6.1 interference workload: 99% latency-critical gets and
// 1% long scans sharing the same cores, with the paper's absolute 12.5 µs
// SLO applied to gets only.
func Masstree() Profile {
	return Profile{
		Name: "masstree",
		Classes: []Class{
			{Name: "get", Weight: 0.99, Service: MasstreeGets(), Measured: true},
			{Name: "scan", Weight: 0.01, Service: MasstreeScans(), Measured: false},
		},
		RequestBytes: 64,
		ReplyBytes:   512,
		SLONanos:     12_500,
	}
}
